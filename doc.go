// Package skute is a self-managed, scattered key-value store with
// cost-efficient and differentiated data availability guarantees — a
// reproduction of Bonvin, Papaioannou and Aberer, "Cost-efficient and
// Differentiated Data Availability Guarantees in Data Clouds" (ICDE 2010).
//
// Skute rents a cloud of geographically distributed servers to several
// applications at once. Each application gets its own virtual rings — one
// per availability class it requires — and every data-partition replica is
// managed by an autonomous economic agent that replicates, migrates or
// deletes itself to keep the partition's availability above its SLA at the
// minimum rent cost (see DESIGN.md for the full model).
//
// The package offers two front doors:
//
//   - Cluster: an embeddable replicated key-value store (the paper's
//     "future work" prototype) with quorum reads/writes, read repair,
//     Merkle anti-entropy and economy-driven replica management. See
//     examples/quickstart.
//   - RunExperiment: the discrete-epoch simulator behind every figure of
//     the paper's evaluation. See cmd/skute-sim and EXPERIMENTS.md.
package skute
