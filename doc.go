// Package skute is a self-managed, scattered key-value store with
// cost-efficient and differentiated data availability guarantees — a
// reproduction of Bonvin, Papaioannou and Aberer, "Cost-efficient and
// Differentiated Data Availability Guarantees in Data Clouds" (ICDE 2010).
//
// Skute rents a cloud of geographically distributed servers to several
// applications at once. Each application gets its own virtual rings — one
// per availability class it requires — and every data-partition replica is
// managed by an autonomous economic agent that replicates, migrates or
// deletes itself to keep the partition's availability above its SLA at the
// minimum rent cost (see DESIGN.md for the full model).
//
// The package offers two front doors:
//
//   - Cluster: an embeddable replicated key-value store (the paper's
//     "future work" prototype) with quorum reads/writes, read repair,
//     Merkle anti-entropy, economy-driven replica management and
//     bounded-recovery durability (write-ahead log + checkpoint
//     snapshots, see internal/store). Every request takes a
//     context.Context honored through the quorum fan-out, per-request
//     ReadOptions/WriteOptions trade consistency for latency (One,
//     Quorum, All), and MGet/MPut batch multi-key operations into one
//     envelope per replica per partition (see DESIGN.md, "The request
//     path"). One-level reads ride a tiered fast path — leased local
//     reads, a placement-stamped coordinator hot-key cache, and hedged
//     quorum fan-out that sends one backup request only after a
//     p99-tracked delay (DESIGN.md, "The read
//     path"). Over TCP, every RPC rides persistent, pooled, multiplexed
//     connections — length-prefixed frames with request IDs, typed
//     error codes surviving the wire, and a 7-8x win over the old
//     dial-per-call wire (DESIGN.md, "The wire"). Replica placement
//     travels as versioned, gossip-carried
//     deltas (DESIGN.md, "Control plane"). Under saturation the node
//     degrades gracefully rather than collapsing: a priority-classed
//     admission gate sheds excess load fast with a retryable
//     ErrOverloaded, retries are jittered and budget-bounded, and
//     per-peer circuit breakers route reads around slow or failing
//     replicas (internal/resilience; DESIGN.md, "Overload and graceful
//     degradation"). Start/Stop switch the
//     cluster into autonomous mode: per-server heartbeat,
//     gossip-reconcile, anti-entropy and economic-epoch loops on
//     jittered intervals, with RunEpoch still available for
//     deterministic stepping. See examples/quickstart; the standalone
//     node is cmd/skuted and its client CLI cmd/skutectl.
//   - RunExperiment: the discrete-epoch simulator behind every figure of
//     the paper's evaluation. See cmd/skute-sim and EXPERIMENTS.md.
//
// README.md is the guided tour; DESIGN.md maps the paper's model onto
// the packages and documents the concurrency and durability
// architecture.
package skute
