package skute

import (
	"fmt"
	"os"
	"sync/atomic"
	"testing"

	"skute/internal/store"
	"skute/internal/vclock"
)

// benchScale selects the experiment scale for the figure benchmarks:
// Quick by default so `go test -bench=.` stays fast; set
// SKUTE_BENCH_SCALE=paper to regenerate every figure at the full Section
// III-A setup (200 servers, 3 x 200 partitions — minutes, and the numbers
// recorded in EXPERIMENTS.md).
func benchScale() bool { return os.Getenv("SKUTE_BENCH_SCALE") == "paper" }

// benchExperiment runs one experiment per benchmark iteration and reports
// a headline metric so regressions in the *result* (not just the runtime)
// are visible.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	paper := benchScale()
	for i := 0; i < b.N; i++ {
		res, err := RunExperiment(id, paper)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for k, v := range res.Facts {
				b.ReportMetric(v, k)
			}
		}
	}
}

// BenchmarkFig2 regenerates Fig. 2: startup replication and convergence
// of virtual nodes per server (cheap vs expensive price classes).
func BenchmarkFig2(b *testing.B) { benchExperiment(b, "fig2") }

// BenchmarkFig3 regenerates Fig. 3: per-ring virtual-node totals under a
// server upgrade and a correlated failure.
func BenchmarkFig3(b *testing.B) { benchExperiment(b, "fig3") }

// BenchmarkFig4 regenerates Fig. 4: per-ring per-server query load
// through the Slashdot spike.
func BenchmarkFig4(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkFig5 regenerates Fig. 5: storage saturation and insert
// failures.
func BenchmarkFig5(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkAblationPlacement compares the economy against random
// placement (cost and SLA compliance).
func BenchmarkAblationPlacement(b *testing.B) { benchExperiment(b, "ablation-placement") }

// BenchmarkAblationDiversity compares diversity-aware and count-only
// placement under a datacenter failure.
func BenchmarkAblationDiversity(b *testing.B) { benchExperiment(b, "ablation-diversity") }

// BenchmarkAblationFloor measures the anti-churn effect of the utility
// floor.
func BenchmarkAblationFloor(b *testing.B) { benchExperiment(b, "ablation-floor") }

// benchCluster builds a 6-server embedded cluster for the store-path
// benchmarks.
func benchCluster(b *testing.B) *Cluster {
	b.Helper()
	c, err := NewCluster(Options{
		Servers: []Server{
			{Name: "eu-1", Location: "eu/ch/dc0/r0/k0/s0", MonthlyRent: 100},
			{Name: "eu-2", Location: "eu/de/dc0/r0/k0/s1", MonthlyRent: 100},
			{Name: "us-1", Location: "us/us-east/dc0/r0/k0/s2", MonthlyRent: 100},
			{Name: "us-2", Location: "us/us-west/dc0/r0/k0/s3", MonthlyRent: 100},
			{Name: "ap-1", Location: "ap/jp/dc0/r0/k0/s4", MonthlyRent: 125},
			{Name: "ap-2", Location: "ap/sg/dc0/r0/k0/s5", MonthlyRent: 125},
		},
		Apps: []App{{Name: "bench", SLA: SLA{Class: "std", Replicas: 3}, Partitions: 32}},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	return c
}

// BenchmarkClusterPut measures a quorum write (W=2 of 3 replicas) through
// the embedded cluster.
func BenchmarkClusterPut(b *testing.B) {
	c := benchCluster(b)
	val := make([]byte, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Put(ctx, "bench", fmt.Sprintf("key-%d", i%4096), val, nil, WriteOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusterGet measures a quorum read with read repair through the
// embedded cluster.
func BenchmarkClusterGet(b *testing.B) {
	c := benchCluster(b)
	val := make([]byte, 256)
	for i := 0; i < 1024; i++ {
		if err := c.Put(ctx, "bench", fmt.Sprintf("key-%d", i), val, nil, WriteOptions{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Get(ctx, "bench", fmt.Sprintf("key-%d", i%1024), ReadOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreParallel measures the sharded engine under parallel
// mixed load (1 put : 3 gets per iteration group) across all cores —
// the scaling the per-shard locks buy over the old single-mutex engine.
// Compare with -cpu 1,4,8: throughput should rise with cores instead of
// flatlining on lock contention.
func BenchmarkStoreParallel(b *testing.B) {
	e := store.NewMemory()
	val := make([]byte, 256)
	for i := 0; i < 4096; i++ {
		if _, err := e.Put(fmt.Sprintf("key-%d", i), store.Version{Value: val, Clock: vclock.VC{"seed": uint64(i + 1)}}); err != nil {
			b.Fatal(err)
		}
	}
	var worker atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		node := fmt.Sprintf("w%d", worker.Add(1))
		var clock uint64
		i := 0
		for pb.Next() {
			k := fmt.Sprintf("key-%d", i%4096)
			if i%4 == 0 {
				clock++
				if _, err := e.Put(k, store.Version{Value: val, Clock: vclock.VC{node: clock}}); err != nil {
					b.Error(err) // Fatal is not allowed off the benchmark goroutine
					return
				}
			} else {
				e.Get(k)
			}
			i++
		}
	})
}

// BenchmarkClusterPutParallel measures quorum writes issued from many
// client goroutines at once — the parallel replica fan-out plus the
// sharded engine on the replica side.
func BenchmarkClusterPutParallel(b *testing.B) {
	c := benchCluster(b)
	val := make([]byte, 256)
	var worker atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		g := worker.Add(1)
		i := 0
		for pb.Next() {
			if err := c.Put(ctx, "bench", fmt.Sprintf("key-%d-%d", g, i%1024), val, nil, WriteOptions{}); err != nil {
				b.Error(err) // Fatal is not allowed off the benchmark goroutine
				return
			}
			i++
		}
	})
}

// BenchmarkEconomicEpoch measures one full cluster-wide economic epoch
// (rent announcements + every hosted virtual node deciding).
func BenchmarkEconomicEpoch(b *testing.B) {
	c := benchCluster(b)
	for i := 0; i < 256; i++ {
		if err := c.Put(ctx, "bench", fmt.Sprintf("key-%d", i), []byte("v"), nil, WriteOptions{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.RunEpoch(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// benchMGetKeys seeds and returns 64 keys for the batched-read
// benchmarks.
func benchMGetKeys(b *testing.B, c *Cluster) []string {
	b.Helper()
	entries := make([]Entry, 64)
	keys := make([]string, 64)
	for i := range keys {
		keys[i] = fmt.Sprintf("mget-%d", i)
		entries[i] = Entry{Key: keys[i], Value: make([]byte, 256)}
	}
	if err := c.MPut(ctx, "bench", entries, WriteOptions{}); err != nil {
		b.Fatal(err)
	}
	return keys
}

// BenchmarkMGet measures a 64-key batched read: the keys group by
// partition and each replica receives one envelope per partition group.
// Compare with BenchmarkMGetLoopedGets — the same 64 keys read as
// independent quorum rounds — to see what the batching buys.
func BenchmarkMGet(b *testing.B) {
	c := benchCluster(b)
	keys := benchMGetKeys(b, c)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := c.MGet(ctx, "bench", keys, ReadOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if len(res) != len(keys) {
			b.Fatalf("got %d results", len(res))
		}
	}
}

// BenchmarkMGetLoopedGets is the baseline BenchmarkMGet beats: the same
// 64 keys, one independent quorum Get each.
func BenchmarkMGetLoopedGets(b *testing.B) {
	c := benchCluster(b)
	keys := benchMGetKeys(b, c)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, k := range keys {
			if _, _, err := c.Get(ctx, "bench", k, ReadOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkMPut measures a 64-key batched write against its looped
// counterpart below.
func BenchmarkMPut(b *testing.B) {
	c := benchCluster(b)
	entries := make([]Entry, 64)
	for i := range entries {
		entries[i] = Entry{Key: fmt.Sprintf("mput-%d", i), Value: make([]byte, 256)}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.MPut(ctx, "bench", entries, WriteOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
