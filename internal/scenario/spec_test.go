package scenario

import (
	"strings"
	"testing"
	"time"
)

const sampleSpec = `
name: rolling-restart
seed: 7
topology:
  nodes: 5
  partitions: 8
  replicas: 3
phases:
  - name: steady
    duration: 10s
    rate: 200
    read-fraction: 0.8
    min-availability: 0.95
faults:
  - at: 6s
    action: restart
    node: n0
  - at: 2s
    action: kill
    node: n0
invariants:
  converge-within: 20s
`

func TestParseSpec(t *testing.T) {
	s, err := ParseSpec(sampleSpec)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "rolling-restart" || s.Seed != 7 {
		t.Fatalf("header = %q seed %d", s.Name, s.Seed)
	}
	if s.Topology.Nodes != 5 || s.Topology.Partitions != 8 || s.Topology.Replicas != 3 {
		t.Fatalf("topology = %+v", s.Topology)
	}
	// Defaults survive partial topology blocks.
	if s.Topology.Heartbeat != 300*time.Millisecond || s.Topology.SuspectAfter != 1200*time.Millisecond {
		t.Fatalf("defaults = %+v", s.Topology)
	}
	if len(s.Phases) != 1 {
		t.Fatalf("phases = %+v", s.Phases)
	}
	p := s.Phases[0]
	if p.Name != "steady" || p.Duration != 10*time.Second || p.Rate != 200 || p.ReadFraction != 0.8 || p.MinAvailability != 0.95 {
		t.Fatalf("phase = %+v", p)
	}
	if p.Keys != 64 {
		t.Fatalf("keys default = %d", p.Keys)
	}
	// Faults come back sorted by schedule time.
	if len(s.Faults) != 2 || s.Faults[0].Action != ActionKill || s.Faults[1].Action != ActionRestart {
		t.Fatalf("faults = %+v", s.Faults)
	}
	if s.Invariants.ConvergeWithin != 20*time.Second || !s.Invariants.NoLostAckedWrites {
		t.Fatalf("invariants = %+v", s.Invariants)
	}
	if s.RequiresProcesses() {
		t.Fatal("kill/restart should run in-process")
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"missing name", "topology:\n  nodes: 3\n  replicas: 2\nphases:\n  - duration: 1s\n    rate: 10\n", "missing name"},
		{"no phases", "name: x\ntopology:\n  nodes: 3\n  replicas: 2\n", "at least one phase"},
		{"replicas exceed nodes", "name: x\ntopology:\n  nodes: 2\n  replicas: 3\nphases:\n  - duration: 1s\n    rate: 10\n", "replicas"},
		{"unknown action", "name: x\ntopology:\n  nodes: 2\n  replicas: 2\nphases:\n  - duration: 1s\n    rate: 10\nfaults:\n  - at: 1s\n    action: explode\n    node: n0\n", "unknown action"},
		{"unknown node", "name: x\ntopology:\n  nodes: 2\n  replicas: 2\nphases:\n  - duration: 1s\n    rate: 10\nfaults:\n  - at: 1s\n    action: kill\n    node: n9\n", "unknown node"},
		{"join of existing node", "name: x\ntopology:\n  nodes: 2\n  replicas: 2\nphases:\n  - duration: 1s\n    rate: 10\nfaults:\n  - at: 1s\n    action: join\n    node: n0\n", "already-known"},
		{"slow without delay", "name: x\ntopology:\n  nodes: 2\n  replicas: 2\nphases:\n  - duration: 1s\n    rate: 10\nfaults:\n  - at: 1s\n    action: slow\n    node: n0\n", "delay"},
		{"slashdot without peak", "name: x\ntopology:\n  nodes: 2\n  replicas: 2\nphases:\n  - duration: 1s\n    rate: 10\n    profile: slashdot\n", "peak-rate"},
		{"unknown top-level key", "name: x\nbogus: 1\n", "unknown top-level"},
		{"unknown phase key", "name: x\ntopology:\n  nodes: 2\n  replicas: 2\nphases:\n  - duration: 1s\n    rate: 10\n    bogus: 1\n", "unknown key"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSpec(tc.src)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
}

func TestRequiresProcesses(t *testing.T) {
	s, err := ParseSpec("name: x\ntopology:\n  nodes: 3\n  replicas: 2\nphases:\n  - duration: 1s\n    rate: 10\nfaults:\n  - at: 1s\n    action: partition\n    node: n0\n  - at: 2s\n    action: heal\n    node: n0\n")
	if err != nil {
		t.Fatal(err)
	}
	if !s.RequiresProcesses() {
		t.Fatal("partition fault must force the process harness")
	}
	s2, err := ParseSpec("name: x\nprocess-only: true\ntopology:\n  nodes: 3\n  replicas: 2\nphases:\n  - duration: 1s\n    rate: 10\n")
	if err != nil {
		t.Fatal(err)
	}
	if !s2.RequiresProcesses() {
		t.Fatal("process-only flag must force the process harness")
	}
}

func TestNodeNames(t *testing.T) {
	names := Topology{Nodes: 3}.NodeNames()
	if len(names) != 3 || names[0] != "n0" || names[2] != "n2" {
		t.Fatalf("names = %v", names)
	}
}
