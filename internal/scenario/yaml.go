// Package scenario is the declarative test harness of the prototype:
// YAML files declare a cluster topology, workload phases and a fault
// schedule; the runner executes them — against an in-process
// skute.Cluster for tier-1 speed, or against real cmd/skuted processes
// over TCP for cmd/skute-scenario and CI — and checks the declared
// invariants (no acknowledged write lost, placement convergence within
// a deadline, availability over the phase SLA). A violation produces a
// correlated per-node decision trace, so a failed CI run is debuggable
// from its artifacts alone.
package scenario

import (
	"fmt"
	"strings"
)

// The repo carries zero dependencies, so scenarios are parsed by a
// hand-written subset of YAML sufficient for flat-ish config files:
//
//   - indentation-scoped mappings (`key: value`, nested blocks)
//   - block sequences (`- item`), including sequences of mappings
//     (`- key: value` with continuation lines indented past the dash)
//   - scalars: everything is a string until the typed decode in
//     spec.go; single/double quotes strip; `#` comments and blank
//     lines skip
//
// Not supported (rejected or misparsed on purpose — scenarios should
// stay simple): flow syntax ({a: 1}, [1, 2]), anchors, multi-line
// scalars, tabs for indentation.

// yamlValue is the parsed form: map[string]any, []any, or string.
type yamlValue = any

type yamlLine struct {
	num    int // 1-based, for errors
	indent int
	text   string // content without indentation
}

// parseYAML parses a document into nested maps/slices/strings.
func parseYAML(src string) (yamlValue, error) {
	var lines []yamlLine
	for i, raw := range strings.Split(src, "\n") {
		if strings.Contains(raw, "\t") {
			return nil, fmt.Errorf("yaml line %d: tabs are not allowed for indentation", i+1)
		}
		text := stripComment(raw)
		trimmed := strings.TrimLeft(text, " ")
		if trimmed == "" {
			continue
		}
		lines = append(lines, yamlLine{num: i + 1, indent: len(text) - len(trimmed), text: strings.TrimRight(trimmed, " ")})
	}
	if len(lines) == 0 {
		return map[string]any{}, nil
	}
	v, rest, err := parseBlock(lines, lines[0].indent)
	if err != nil {
		return nil, err
	}
	if len(rest) > 0 {
		return nil, fmt.Errorf("yaml line %d: unexpected dedent past the document root", rest[0].num)
	}
	return v, nil
}

// stripComment removes a trailing comment outside quotes.
func stripComment(s string) string {
	var quote byte
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case quote != 0:
			if c == quote {
				quote = 0
			}
		case c == '\'' || c == '"':
			quote = c
		case c == '#' && (i == 0 || s[i-1] == ' '):
			return s[:i]
		}
	}
	return s
}

// parseBlock parses the run of lines at exactly `indent` (plus their
// deeper children) into one value and returns the remaining lines.
func parseBlock(lines []yamlLine, indent int) (yamlValue, []yamlLine, error) {
	if len(lines) == 0 || lines[0].indent != indent {
		return nil, lines, fmt.Errorf("yaml line %d: bad indentation", lines[0].num)
	}
	if strings.HasPrefix(lines[0].text, "- ") || lines[0].text == "-" {
		return parseSequence(lines, indent)
	}
	return parseMapping(lines, indent)
}

// parseMapping parses `key: value` lines at `indent`.
func parseMapping(lines []yamlLine, indent int) (yamlValue, []yamlLine, error) {
	m := map[string]any{}
	for len(lines) > 0 {
		ln := lines[0]
		if ln.indent < indent {
			break
		}
		if ln.indent > indent {
			return nil, nil, fmt.Errorf("yaml line %d: unexpected indentation", ln.num)
		}
		if strings.HasPrefix(ln.text, "- ") || ln.text == "-" {
			return nil, nil, fmt.Errorf("yaml line %d: sequence item inside a mapping", ln.num)
		}
		key, rest, err := splitKey(ln)
		if err != nil {
			return nil, nil, err
		}
		if _, dup := m[key]; dup {
			return nil, nil, fmt.Errorf("yaml line %d: duplicate key %q", ln.num, key)
		}
		lines = lines[1:]
		if rest != "" {
			m[key] = unquote(rest)
			continue
		}
		// Block value: the following deeper lines; nothing deeper means
		// an empty string.
		if len(lines) == 0 || lines[0].indent <= indent {
			m[key] = ""
			continue
		}
		v, remaining, err := parseBlock(lines, lines[0].indent)
		if err != nil {
			return nil, nil, err
		}
		m[key] = v
		lines = remaining
	}
	return m, lines, nil
}

// parseSequence parses `- item` lines at `indent`.
func parseSequence(lines []yamlLine, indent int) (yamlValue, []yamlLine, error) {
	var seq []any
	for len(lines) > 0 {
		ln := lines[0]
		if ln.indent != indent || (!strings.HasPrefix(ln.text, "- ") && ln.text != "-") {
			if ln.indent > indent {
				return nil, nil, fmt.Errorf("yaml line %d: unexpected indentation", ln.num)
			}
			break
		}
		rest := strings.TrimPrefix(strings.TrimPrefix(ln.text, "-"), " ")
		lines = lines[1:]
		itemIndent := indent + 2 // the dash and its space count as indentation
		switch {
		case rest == "":
			// `-` alone: the item is the deeper block that follows.
			if len(lines) == 0 || lines[0].indent <= indent {
				seq = append(seq, "")
				continue
			}
			v, remaining, err := parseBlock(lines, lines[0].indent)
			if err != nil {
				return nil, nil, err
			}
			seq = append(seq, v)
			lines = remaining
		case isMappingStart(rest):
			// `- key: value`: a mapping whose first entry shares the
			// dash's line; continuation lines sit at itemIndent.
			first := yamlLine{num: ln.num, indent: itemIndent, text: rest}
			block := []yamlLine{first}
			for len(lines) > 0 && lines[0].indent >= itemIndent {
				block = append(block, lines[0])
				lines = lines[1:]
			}
			v, remaining, err := parseMapping(block, itemIndent)
			if err != nil {
				return nil, nil, err
			}
			if len(remaining) > 0 {
				return nil, nil, fmt.Errorf("yaml line %d: bad indentation in sequence item", remaining[0].num)
			}
			seq = append(seq, v)
		default:
			seq = append(seq, unquote(rest))
		}
	}
	return seq, lines, nil
}

// isMappingStart reports whether an inline sequence item opens a
// mapping (`key: ...` or `key:`), as opposed to a plain scalar. A
// colon inside quotes does not count.
func isMappingStart(s string) bool {
	if s[0] == '\'' || s[0] == '"' {
		return false
	}
	i := strings.Index(s, ":")
	if i < 0 {
		return false
	}
	return i == len(s)-1 || s[i+1] == ' '
}

// splitKey splits `key: rest` (or `key:`), rejecting anything else.
func splitKey(ln yamlLine) (key, rest string, err error) {
	i := strings.Index(ln.text, ":")
	for i >= 0 && i != len(ln.text)-1 && ln.text[i+1] != ' ' {
		j := strings.Index(ln.text[i+1:], ":")
		if j < 0 {
			i = -1
			break
		}
		i += 1 + j
	}
	if i < 0 {
		return "", "", fmt.Errorf("yaml line %d: expected `key: value`, got %q", ln.num, ln.text)
	}
	key = strings.TrimSpace(ln.text[:i])
	if key == "" {
		return "", "", fmt.Errorf("yaml line %d: empty key", ln.num)
	}
	return key, strings.TrimSpace(ln.text[i+1:]), nil
}

// unquote strips one level of matching quotes.
func unquote(s string) string {
	if len(s) >= 2 {
		if (s[0] == '\'' && s[len(s)-1] == '\'') || (s[0] == '"' && s[len(s)-1] == '"') {
			return s[1 : len(s)-1]
		}
	}
	return s
}
