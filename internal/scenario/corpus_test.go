package scenario

import (
	"os"
	"path/filepath"
	"testing"
)

// TestCorpus runs every scenarios/*.yaml against the in-process
// harness as a subtest. Process-only scenarios are skipped here — CI
// runs the whole corpus against real skuted binaries via
// cmd/skute-scenario. Heavy soak: gated behind -short.
func TestCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario corpus is a multi-minute soak")
	}
	files, err := filepath.Glob(filepath.Join("..", "..", "scenarios", "*.yaml"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 9 {
		t.Fatalf("scenario corpus has %d files, want at least 9", len(files))
	}
	for _, f := range files {
		raw, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		spec, err := ParseSpec(string(raw))
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		t.Run(spec.Name, func(t *testing.T) {
			if spec.RequiresProcesses() {
				t.Skipf("process-only (run via cmd/skute-scenario)")
			}
			h, err := NewMemHarness(spec)
			if err != nil {
				t.Fatal(err)
			}
			defer h.Close()
			res := Run(h, spec, Options{Logf: t.Logf, Scale: 0.5})
			if res.Failed() {
				t.Errorf("violations: %v", res.Violations)
				t.Logf("correlated trace:\n%s", res.TraceDump())
			}
		})
	}
}
