package scenario

import (
	"reflect"
	"strings"
	"testing"
)

func TestYAMLMappingAndNesting(t *testing.T) {
	doc, err := parseYAML(`
name: steady
topology:
  nodes: 5
  heartbeat: 300ms
invariants:
  no-lost-acked-writes: true
`)
	if err != nil {
		t.Fatal(err)
	}
	root := doc.(map[string]any)
	if root["name"] != "steady" {
		t.Fatalf("name = %v", root["name"])
	}
	topo := root["topology"].(map[string]any)
	if topo["nodes"] != "5" || topo["heartbeat"] != "300ms" {
		t.Fatalf("topology = %v", topo)
	}
	if root["invariants"].(map[string]any)["no-lost-acked-writes"] != "true" {
		t.Fatalf("invariants = %v", root["invariants"])
	}
}

func TestYAMLSequenceOfMappings(t *testing.T) {
	doc, err := parseYAML(`
faults:
  - at: 2s
    action: kill
    node: n1
  - at: 6s
    action: restart
    node: n1
`)
	if err != nil {
		t.Fatal(err)
	}
	faults := doc.(map[string]any)["faults"].([]any)
	if len(faults) != 2 {
		t.Fatalf("got %d items", len(faults))
	}
	want := map[string]any{"at": "2s", "action": "kill", "node": "n1"}
	if !reflect.DeepEqual(faults[0], want) {
		t.Fatalf("faults[0] = %v, want %v", faults[0], want)
	}
}

func TestYAMLScalarSequence(t *testing.T) {
	doc, err := parseYAML("items:\n  - one\n  - two\n")
	if err != nil {
		t.Fatal(err)
	}
	items := doc.(map[string]any)["items"].([]any)
	if !reflect.DeepEqual(items, []any{"one", "two"}) {
		t.Fatalf("items = %v", items)
	}
}

func TestYAMLCommentsAndQuotes(t *testing.T) {
	doc, err := parseYAML(`
# full-line comment
name: "hello # not a comment"  # trailing comment
note: 'single # quoted'
plain: value # stripped
`)
	if err != nil {
		t.Fatal(err)
	}
	root := doc.(map[string]any)
	if root["name"] != "hello # not a comment" {
		t.Fatalf("name = %q", root["name"])
	}
	if root["note"] != "single # quoted" {
		t.Fatalf("note = %q", root["note"])
	}
	if root["plain"] != "value" {
		t.Fatalf("plain = %q", root["plain"])
	}
}

func TestYAMLEmptyValue(t *testing.T) {
	doc, err := parseYAML("a:\nb: x\n")
	if err != nil {
		t.Fatal(err)
	}
	root := doc.(map[string]any)
	if root["a"] != "" || root["b"] != "x" {
		t.Fatalf("root = %v", root)
	}
}

func TestYAMLRejectsTabs(t *testing.T) {
	if _, err := parseYAML("a:\n\tb: 1\n"); err == nil || !strings.Contains(err.Error(), "tab") {
		t.Fatalf("want tab error, got %v", err)
	}
}

func TestYAMLRejectsDuplicateKeys(t *testing.T) {
	if _, err := parseYAML("a: 1\na: 2\n"); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("want duplicate-key error, got %v", err)
	}
}

func TestYAMLValueWithColon(t *testing.T) {
	doc, err := parseYAML("addr: 127.0.0.1:7000\n")
	if err != nil {
		t.Fatal(err)
	}
	if got := doc.(map[string]any)["addr"]; got != "127.0.0.1:7000" {
		t.Fatalf("addr = %q", got)
	}
}
