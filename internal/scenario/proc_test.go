package scenario

import (
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"
)

var (
	skutedOnce sync.Once
	skutedPath string
	skutedErr  error
)

// buildSkuted compiles cmd/skuted once for every process test.
func buildSkuted(t *testing.T) string {
	t.Helper()
	skutedOnce.Do(func() {
		goBin, err := exec.LookPath("go")
		if err != nil {
			skutedErr = err
			return
		}
		dir, err := os.MkdirTemp("", "skuted-bin-")
		if err != nil {
			skutedErr = err
			return
		}
		skutedPath = filepath.Join(dir, "skuted")
		cmd := exec.Command(goBin, "build", "-o", skutedPath, "skute/cmd/skuted")
		if out, err := cmd.CombinedOutput(); err != nil {
			skutedErr = err
			t.Logf("go build skuted:\n%s", out)
		}
	})
	if skutedErr != nil {
		t.Skipf("cannot build skuted: %v", skutedErr)
	}
	return skutedPath
}

// TestProcSuspicionRefute runs the process-only SWIM-refutation
// scenario against real skuted processes behind fault proxies: the
// blackholed node must be suspected, refute on heal, and nobody may be
// evicted. Heavy soak: gated behind -short.
func TestProcSuspicionRefute(t *testing.T) {
	if testing.Short() {
		t.Skip("boots real processes")
	}
	bin := buildSkuted(t)
	raw, err := os.ReadFile(filepath.Join("..", "..", "scenarios", "suspicion-eviction-then-refute.yaml"))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := ParseSpec(string(raw))
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewProcHarness(spec, ProcConfig{SkutedPath: bin, Dir: t.TempDir(), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	res := Run(h, spec, Options{Logf: t.Logf})
	if res.Failed() {
		t.Errorf("violations: %v", res.Violations)
		t.Logf("correlated trace:\n%s", res.TraceDump())
	}
}

// TestProcViolationTrace drives the deliberately violating testdata
// scenario against real processes and asserts the failure contract:
// violations reported, correlated multi-node trace attached. Heavy
// soak: gated behind -short.
func TestProcViolationTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("boots real processes")
	}
	bin := buildSkuted(t)
	raw, err := os.ReadFile(filepath.Join("testdata", "violation-lost-quorum.yaml"))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := ParseSpec(string(raw))
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewProcHarness(spec, ProcConfig{SkutedPath: bin, Dir: t.TempDir(), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	res := Run(h, spec, Options{Logf: t.Logf})
	if !res.Failed() {
		t.Fatal("expected the lost-quorum scenario to violate its SLA")
	}
	if len(res.Trace) == 0 {
		t.Fatal("violation must carry a correlated trace")
	}
	// The dump must interleave events from more than one node — that's
	// what "correlated" means.
	nodes := map[string]bool{}
	for _, e := range res.Trace {
		nodes[e.Node] = true
	}
	if len(nodes) < 2 {
		t.Fatalf("trace covers %v, want multiple nodes", nodes)
	}
}
