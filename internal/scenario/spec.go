package scenario

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Spec is one parsed scenario file.
type Spec struct {
	// Name identifies the scenario in output and reports.
	Name string
	// Seed makes workload draws reproducible (default 1).
	Seed int64
	// ProcessOnly marks scenarios that only make sense against real
	// skuted processes (also implied by process-only fault actions);
	// the in-process corpus test skips them.
	ProcessOnly bool

	Topology   Topology
	Phases     []Phase
	Faults     []Fault
	Invariants Invariants
}

// Topology declares the cluster under test.
type Topology struct {
	// Nodes is the number of skuted processes (names n0..n{N-1}).
	Nodes int
	// Partitions and Replicas shape the single test ring (app "app",
	// class "gold"): Replicas is the SLA target.
	Partitions int
	Replicas   int
	// ReadQuorum/WriteQuorum override the majority defaults (0 = majority).
	ReadQuorum  int
	WriteQuorum int
	// Loop intervals for every node's autonomous runtime.
	Heartbeat   time.Duration
	Reconcile   time.Duration
	AntiEntropy time.Duration
	Epoch       time.Duration
	// Failure-detector windows.
	SuspectAfter time.Duration
	DeadAfter    time.Duration
	// Partition-transfer tuning (0 = defaults).
	TransferChunk int
	TransferRate  int64
	// MaxInflight bounds each node's admission gate (0 = the cluster
	// default, 256). Overload scenarios shrink it so saturation — and
	// the fast-fail shedding it must trigger — happens at harness-scale
	// rates.
	MaxInflight int
	// Circuit-breaker tuning (0 = cluster defaults). BreakerSlowAfter
	// additionally trips breakers on successful-but-slow calls, the
	// signal that routes quorum fan-out around a node degraded with the
	// `slow` fault.
	BreakerFailures  int
	BreakerOpenFor   time.Duration
	BreakerSlowAfter time.Duration
}

// Phase is one workload period: open-loop load at an offered rate for
// a duration, with an availability floor.
type Phase struct {
	Name     string
	Duration time.Duration
	// Rate is the offered ops/sec (the base rate for profile slashdot).
	Rate float64
	// ReadFraction in [0,1] (default 0.5).
	ReadFraction float64
	// Keys is the working-set size (default 64).
	Keys int
	// Popularity is "pareto" (the paper's Pareto(1,50) skew, default)
	// or "uniform".
	Popularity string
	// Profile is "constant" (default) or "slashdot": ramp linearly from
	// Rate to PeakRate over the first third of the phase, decay back
	// over the second third, hold Rate for the rest.
	Profile  string
	PeakRate float64
	// Consistency names the read consistency level for the phase's read
	// operations: "one", "quorum", "all", or ""/"default" for the
	// topology's configured read quorum. Writes always use the
	// configured write quorum, so acked writes stay durable and the
	// no-lost-acked-writes invariant keeps meaning the same thing
	// across phases.
	Consistency string
	// MinAvailability is the phase SLA: acked/issued must not drop
	// below it (0 disables the check).
	MinAvailability float64
	// Overload marks a phase whose offered rate deliberately exceeds
	// what the cluster sustains. The goodput-under-overload invariant
	// compares these phases' acked throughput against the best
	// non-overload phase, and availability SLAs obviously don't apply —
	// shedding IS the correct behavior here.
	Overload bool
}

// Fault is one scheduled fault, At measured from workload start.
type Fault struct {
	At     time.Duration
	Action string
	// Node names the target, e.g. "n2" (join introduces a new name).
	Node string
	// Delay is the injected per-connection latency for action slow.
	Delay time.Duration
}

// Invariants declare what the runner asserts.
type Invariants struct {
	// NoLostAckedWrites: after teardown convergence, every key's
	// stored write sequence must be >= the highest acked sequence
	// (default true).
	NoLostAckedWrites bool
	// ConvergeWithin bounds how long after the workload (and at
	// baseline, after boot) the cluster may take to converge: equal
	// placement digests on every expected-up node, zero SLA
	// violations, full mutual liveness (default 30s).
	ConvergeWithin time.Duration
	// JoinersHostVNodes: every node added by a join fault must host at
	// least one partition replica at teardown.
	JoinersHostVNodes bool
	// NoStaleOneReads: after teardown convergence, One-consistency
	// reads of every acked key (rotating coordinators) must reach the
	// highest acked sequence before the convergence deadline. One reads
	// may be transiently stale by contract — but a leased local read or
	// a cached entry that keeps serving an old value after the replica
	// set churned means lease invalidation is broken, and this catches
	// it.
	NoStaleOneReads bool
	// GoodputUnderOverload asserts graceful degradation: every phase
	// marked overload must ack at least this fraction of the best
	// non-overload phase's acked ops/sec (0 disables). A saturated
	// cluster that sheds excess load cleanly keeps goodput near the
	// sustainable rate; one that queues everything into its deadlines
	// collapses — admitted and shed work alike time out.
	GoodputUnderOverload float64
	// MaxTimeoutFraction bounds, per overload phase, the fraction of
	// failures that burned a full deadline instead of failing fast with
	// the overloaded error (negative disables; zero with an overload
	// phase present means "no timeout tolerance"). It distinguishes
	// "shed cleanly" from "collapsed" — the exact property admission
	// control buys. Only meaningful alongside overload phases; parsed
	// default is -1 (disabled).
	MaxTimeoutFraction float64
}

// Fault actions.
const (
	ActionKill      = "kill"      // SIGKILL / FailServer
	ActionRestart   = "restart"   // relaunch with the same descriptor and data dir
	ActionJoin      = "join"      // boot a brand-new node through a seed
	ActionLeave     = "leave"     // graceful leave
	ActionSlow      = "slow"      // inject per-connection latency (proxy; process-only)
	ActionPartition = "partition" // blackhole inbound traffic (proxy; process-only)
	ActionHeal      = "heal"      // undo slow/partition
	ActionDiskFull  = "disk-full" // make the WAL dir unwritable (process-only)
	ActionDiskHeal  = "disk-heal" // undo disk-full (process-only)
)

// processOnlyActions require a real process behind a proxy or a real
// WAL directory. slow and heal are NOT process-only: the in-memory
// mesh injects per-node delivery latency directly (Memory.SetDelay),
// so breaker scenarios run in-process — and under -race in tier-1 CI.
// heal of a partition never arises in-process because partition itself
// forces the process harness.
var processOnlyActions = map[string]bool{
	ActionPartition: true,
	ActionDiskFull:  true,
	ActionDiskHeal:  true,
}

var knownActions = map[string]bool{
	ActionKill: true, ActionRestart: true, ActionJoin: true, ActionLeave: true,
	ActionSlow: true, ActionPartition: true, ActionHeal: true,
	ActionDiskFull: true, ActionDiskHeal: true,
}

// NodeNames lists the boot topology's node names: n0..n{N-1}.
func (t Topology) NodeNames() []string {
	names := make([]string, t.Nodes)
	for i := range names {
		names[i] = fmt.Sprintf("n%d", i)
	}
	return names
}

// ParseSpec parses and validates one scenario document.
func ParseSpec(src string) (*Spec, error) {
	doc, err := parseYAML(src)
	if err != nil {
		return nil, err
	}
	root, ok := doc.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("scenario: document root must be a mapping")
	}
	d := &decoder{}
	s := &Spec{
		Seed: 1,
		Topology: Topology{
			Partitions:   16,
			Heartbeat:    300 * time.Millisecond,
			Reconcile:    500 * time.Millisecond,
			AntiEntropy:  2 * time.Second,
			Epoch:        time.Second,
			SuspectAfter: 1200 * time.Millisecond,
			DeadAfter:    3 * time.Second,
		},
		Invariants: Invariants{NoLostAckedWrites: true, ConvergeWithin: 30 * time.Second, MaxTimeoutFraction: -1},
	}
	for key, v := range root {
		switch key {
		case "name":
			s.Name = d.str(key, v)
		case "seed":
			s.Seed = d.i64(key, v)
		case "process-only":
			s.ProcessOnly = d.boolean(key, v)
		case "topology":
			d.topology(&s.Topology, v)
		case "phases":
			s.Phases = d.phases(v)
		case "faults":
			s.Faults = d.faults(v)
		case "invariants":
			d.invariants(&s.Invariants, v)
		default:
			return nil, fmt.Errorf("scenario: unknown top-level key %q", key)
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	sort.SliceStable(s.Faults, func(i, j int) bool { return s.Faults[i].At < s.Faults[j].At })
	return s, nil
}

// Validate rejects unusable specs.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: missing name")
	}
	t := s.Topology
	if t.Nodes < 1 {
		return fmt.Errorf("scenario %s: topology.nodes must be >= 1", s.Name)
	}
	if t.Replicas < 1 || t.Replicas > t.Nodes {
		return fmt.Errorf("scenario %s: topology.replicas %d outside [1,%d]", s.Name, t.Replicas, t.Nodes)
	}
	if t.Partitions < 1 {
		return fmt.Errorf("scenario %s: topology.partitions must be >= 1", s.Name)
	}
	if t.Heartbeat <= 0 || t.SuspectAfter <= 0 || t.DeadAfter <= 0 {
		return fmt.Errorf("scenario %s: heartbeat/suspect-after/dead-after must be positive", s.Name)
	}
	if len(s.Phases) == 0 {
		return fmt.Errorf("scenario %s: needs at least one phase", s.Name)
	}
	for i, p := range s.Phases {
		if p.Duration <= 0 {
			return fmt.Errorf("scenario %s: phase %d needs a positive duration", s.Name, i)
		}
		if p.Rate <= 0 {
			return fmt.Errorf("scenario %s: phase %d needs a positive rate", s.Name, i)
		}
		if p.ReadFraction < 0 || p.ReadFraction > 1 {
			return fmt.Errorf("scenario %s: phase %d read-fraction %v outside [0,1]", s.Name, i, p.ReadFraction)
		}
		switch p.Popularity {
		case "", "pareto", "uniform":
		default:
			return fmt.Errorf("scenario %s: phase %d unknown popularity %q", s.Name, i, p.Popularity)
		}
		switch p.Profile {
		case "", "constant":
		case "slashdot":
			if p.PeakRate <= p.Rate {
				return fmt.Errorf("scenario %s: phase %d slashdot needs peak-rate above rate", s.Name, i)
			}
		default:
			return fmt.Errorf("scenario %s: phase %d unknown profile %q", s.Name, i, p.Profile)
		}
		switch p.Consistency {
		case "", "default", "one", "quorum", "all":
		default:
			return fmt.Errorf("scenario %s: phase %d unknown consistency %q", s.Name, i, p.Consistency)
		}
		if p.MinAvailability < 0 || p.MinAvailability > 1 {
			return fmt.Errorf("scenario %s: phase %d min-availability %v outside [0,1]", s.Name, i, p.MinAvailability)
		}
	}
	known := map[string]bool{}
	for _, n := range s.Topology.NodeNames() {
		known[n] = true
	}
	for i, f := range s.Faults {
		if !knownActions[f.Action] {
			return fmt.Errorf("scenario %s: fault %d unknown action %q", s.Name, i, f.Action)
		}
		if f.At < 0 {
			return fmt.Errorf("scenario %s: fault %d negative at", s.Name, i)
		}
		if f.Node == "" {
			return fmt.Errorf("scenario %s: fault %d (%s) needs a node", s.Name, i, f.Action)
		}
		if f.Action == ActionJoin {
			if known[f.Node] {
				return fmt.Errorf("scenario %s: fault %d joins already-known node %q", s.Name, i, f.Node)
			}
			known[f.Node] = true
			continue
		}
		if !known[f.Node] {
			return fmt.Errorf("scenario %s: fault %d (%s) targets unknown node %q", s.Name, i, f.Action, f.Node)
		}
		if f.Action == ActionSlow && f.Delay <= 0 {
			return fmt.Errorf("scenario %s: fault %d slow needs a positive delay", s.Name, i)
		}
	}
	if s.Invariants.ConvergeWithin <= 0 {
		return fmt.Errorf("scenario %s: converge-within must be positive", s.Name)
	}
	if t.MaxInflight < 0 || t.BreakerFailures < 0 || t.BreakerOpenFor < 0 || t.BreakerSlowAfter < 0 {
		return fmt.Errorf("scenario %s: negative overload tuning", s.Name)
	}
	if g := s.Invariants.GoodputUnderOverload; g < 0 || g > 1 {
		return fmt.Errorf("scenario %s: goodput-under-overload %v outside [0,1]", s.Name, g)
	}
	if s.Invariants.MaxTimeoutFraction > 1 {
		return fmt.Errorf("scenario %s: max-timeout-fraction %v above 1", s.Name, s.Invariants.MaxTimeoutFraction)
	}
	overloads, baselines := 0, 0
	for _, p := range s.Phases {
		if p.Overload {
			overloads++
		} else {
			baselines++
		}
	}
	if (s.Invariants.GoodputUnderOverload > 0 || s.Invariants.MaxTimeoutFraction >= 0) && overloads == 0 {
		return fmt.Errorf("scenario %s: overload invariants need at least one phase marked overload", s.Name)
	}
	if s.Invariants.GoodputUnderOverload > 0 && baselines == 0 {
		return fmt.Errorf("scenario %s: goodput-under-overload needs a non-overload baseline phase", s.Name)
	}
	return nil
}

// RequiresProcesses reports whether the spec can only run against real
// skuted processes.
func (s *Spec) RequiresProcesses() bool {
	if s.ProcessOnly {
		return true
	}
	for _, f := range s.Faults {
		if processOnlyActions[f.Action] {
			return true
		}
	}
	return false
}

// decoder accumulates the first conversion error instead of threading
// error returns through every field.
type decoder struct{ err error }

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("scenario: "+format, args...)
	}
}

func (d *decoder) str(key string, v any) string {
	s, ok := v.(string)
	if !ok {
		d.fail("%s: expected a scalar", key)
		return ""
	}
	return s
}

func (d *decoder) i64(key string, v any) int64 {
	n, err := strconv.ParseInt(d.str(key, v), 10, 64)
	if err != nil && d.err == nil {
		d.fail("%s: %v", key, err)
	}
	return n
}

func (d *decoder) integer(key string, v any) int { return int(d.i64(key, v)) }

func (d *decoder) f64(key string, v any) float64 {
	f, err := strconv.ParseFloat(d.str(key, v), 64)
	if err != nil && d.err == nil {
		d.fail("%s: %v", key, err)
	}
	return f
}

func (d *decoder) boolean(key string, v any) bool {
	switch strings.ToLower(d.str(key, v)) {
	case "true", "yes", "on":
		return true
	case "false", "no", "off", "":
		return false
	default:
		d.fail("%s: expected a boolean", key)
		return false
	}
}

func (d *decoder) dur(key string, v any) time.Duration {
	t, err := time.ParseDuration(d.str(key, v))
	if err != nil && d.err == nil {
		d.fail("%s: %v", key, err)
	}
	return t
}

func (d *decoder) mapping(key string, v any) map[string]any {
	m, ok := v.(map[string]any)
	if !ok {
		d.fail("%s: expected a mapping", key)
		return nil
	}
	return m
}

func (d *decoder) sequence(key string, v any) []any {
	l, ok := v.([]any)
	if !ok {
		d.fail("%s: expected a sequence", key)
		return nil
	}
	return l
}

func (d *decoder) topology(t *Topology, v any) {
	for key, val := range d.mapping("topology", v) {
		switch key {
		case "nodes":
			t.Nodes = d.integer(key, val)
		case "partitions":
			t.Partitions = d.integer(key, val)
		case "replicas":
			t.Replicas = d.integer(key, val)
		case "read-quorum":
			t.ReadQuorum = d.integer(key, val)
		case "write-quorum":
			t.WriteQuorum = d.integer(key, val)
		case "heartbeat":
			t.Heartbeat = d.dur(key, val)
		case "reconcile":
			t.Reconcile = d.dur(key, val)
		case "anti-entropy":
			t.AntiEntropy = d.dur(key, val)
		case "epoch":
			t.Epoch = d.dur(key, val)
		case "suspect-after":
			t.SuspectAfter = d.dur(key, val)
		case "dead-after":
			t.DeadAfter = d.dur(key, val)
		case "transfer-chunk":
			t.TransferChunk = d.integer(key, val)
		case "transfer-rate":
			t.TransferRate = d.i64(key, val)
		case "max-inflight":
			t.MaxInflight = d.integer(key, val)
		case "breaker-failures":
			t.BreakerFailures = d.integer(key, val)
		case "breaker-open-for":
			t.BreakerOpenFor = d.dur(key, val)
		case "breaker-slow-after":
			t.BreakerSlowAfter = d.dur(key, val)
		default:
			d.fail("topology: unknown key %q", key)
		}
	}
}

func (d *decoder) phases(v any) []Phase {
	var out []Phase
	for i, item := range d.sequence("phases", v) {
		p := Phase{ReadFraction: 0.5, Keys: 64}
		for key, val := range d.mapping(fmt.Sprintf("phases[%d]", i), item) {
			switch key {
			case "name":
				p.Name = d.str(key, val)
			case "duration":
				p.Duration = d.dur(key, val)
			case "rate":
				p.Rate = d.f64(key, val)
			case "read-fraction":
				p.ReadFraction = d.f64(key, val)
			case "keys":
				p.Keys = d.integer(key, val)
			case "popularity":
				p.Popularity = d.str(key, val)
			case "profile":
				p.Profile = d.str(key, val)
			case "peak-rate":
				p.PeakRate = d.f64(key, val)
			case "consistency":
				p.Consistency = d.str(key, val)
			case "min-availability":
				p.MinAvailability = d.f64(key, val)
			case "overload":
				p.Overload = d.boolean(key, val)
			default:
				d.fail("phases[%d]: unknown key %q", i, key)
			}
		}
		if p.Name == "" {
			p.Name = fmt.Sprintf("phase%d", i)
		}
		out = append(out, p)
	}
	return out
}

func (d *decoder) faults(v any) []Fault {
	var out []Fault
	for i, item := range d.sequence("faults", v) {
		var f Fault
		for key, val := range d.mapping(fmt.Sprintf("faults[%d]", i), item) {
			switch key {
			case "at":
				f.At = d.dur(key, val)
			case "action":
				f.Action = d.str(key, val)
			case "node":
				f.Node = d.str(key, val)
			case "delay":
				f.Delay = d.dur(key, val)
			default:
				d.fail("faults[%d]: unknown key %q", i, key)
			}
		}
		out = append(out, f)
	}
	return out
}

func (d *decoder) invariants(iv *Invariants, v any) {
	for key, val := range d.mapping("invariants", v) {
		switch key {
		case "no-lost-acked-writes":
			iv.NoLostAckedWrites = d.boolean(key, val)
		case "converge-within":
			iv.ConvergeWithin = d.dur(key, val)
		case "joiners-host-vnodes":
			iv.JoinersHostVNodes = d.boolean(key, val)
		case "no-stale-one-reads":
			iv.NoStaleOneReads = d.boolean(key, val)
		case "goodput-under-overload":
			iv.GoodputUnderOverload = d.f64(key, val)
		case "max-timeout-fraction":
			iv.MaxTimeoutFraction = d.f64(key, val)
		default:
			d.fail("invariants: unknown key %q", key)
		}
	}
}
