package scenario

import (
	"strings"
	"testing"
)

// runMem parses src, boots the in-process harness and runs the scenario.
func runMem(t *testing.T, src string, opts Options) *Result {
	t.Helper()
	spec, err := ParseSpec(src)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewMemHarness(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if opts.Logf == nil {
		opts.Logf = t.Logf
	}
	return Run(h, spec, opts)
}

func TestRunnerSteadyState(t *testing.T) {
	res := runMem(t, `
name: steady-mini
topology:
  nodes: 3
  partitions: 4
  replicas: 2
phases:
  - name: load
    duration: 1s
    rate: 100
    min-availability: 0.9
`, Options{})
	if res.Failed() {
		t.Fatalf("violations: %v\ntrace:\n%s", res.Violations, res.TraceDump())
	}
	if len(res.Phases) != 1 || res.Phases[0].Report.Issued == 0 {
		t.Fatalf("phases = %+v", res.Phases)
	}
}

func TestRunnerKillRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second fault schedule")
	}
	res := runMem(t, `
name: kill-restart-mini
topology:
  nodes: 3
  partitions: 4
  replicas: 2
phases:
  - name: load
    duration: 4s
    rate: 100
faults:
  - at: 1s
    action: kill
    node: n2
  - at: 2500ms
    action: restart
    node: n2
invariants:
  converge-within: 20s
`, Options{})
	if res.Failed() {
		t.Fatalf("violations: %v\ntrace:\n%s", res.Violations, res.TraceDump())
	}
}

func TestRunnerViolationDumpsTrace(t *testing.T) {
	// Killing the quorum majority at t=0 with no restart guarantees the
	// availability SLA fails; the result must carry the violation plus
	// a correlated trace.
	res := runMem(t, `
name: doomed
topology:
  nodes: 3
  partitions: 4
  replicas: 2
phases:
  - name: load
    duration: 800ms
    rate: 100
    min-availability: 0.9
faults:
  - at: 0s
    action: kill
    node: n1
  - at: 0s
    action: kill
    node: n2
invariants:
  no-lost-acked-writes: false
  converge-within: 3s
`, Options{})
	if !res.Failed() {
		t.Fatal("expected a violation")
	}
	found := false
	for _, v := range res.Violations {
		if strings.Contains(v, "availability") {
			found = true
		}
	}
	if !found {
		t.Fatalf("violations = %v", res.Violations)
	}
	if len(res.Trace) == 0 {
		t.Fatal("violation must carry a correlated trace")
	}
	dump := res.TraceDump()
	if !strings.Contains(dump, "VIOLATION") {
		t.Fatalf("dump missing the runner's violation event:\n%s", dump)
	}
}

func TestRunnerRejectsProcessOnlyFaults(t *testing.T) {
	res := runMem(t, `
name: needs-procs
topology:
  nodes: 3
  partitions: 4
  replicas: 2
phases:
  - name: load
    duration: 1s
    rate: 50
faults:
  - at: 200ms
    action: partition
    node: n1
  - at: 600ms
    action: heal
    node: n1
`, Options{})
	if !res.Failed() || !strings.Contains(res.Violations[0], "process-only") {
		t.Fatalf("violations = %v", res.Violations)
	}
}
