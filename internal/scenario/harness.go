package scenario

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"time"

	"skute"
	"skute/internal/cluster"
	"skute/internal/workload"
)

// The app/class every scenario ring uses.
const (
	scenarioApp   = "app"
	scenarioClass = "gold"
)

// opTimeout bounds one workload operation: long enough to ride out a
// quorum retry, short enough that a blackholed coordinator turns into
// a counted failure instead of wedging a driver slot for the phase.
const opTimeout = 2 * time.Second

// Harness abstracts what the runner drives: an in-process
// skute.Cluster (fast, runs in tier-1 `go test`) or a fleet of real
// cmd/skuted processes over TCP (cmd/skute-scenario, CI). Both expose
// the same operations, stats and traces, so every invariant check is
// written once.
type Harness interface {
	// Nodes lists the currently known node names (joined ones
	// included, departed ones too — they stay addressable for traces).
	Nodes() []string
	// Do performs one workload op. Writes store the op's sequence
	// number; reads fetch the key.
	Do(ctx context.Context, op workload.Op) error
	// ReadSeq returns the highest write sequence stored under key (the
	// max across siblings), and whether the key exists at all. The
	// consistency name follows Phase.Consistency ("" = default quorum);
	// invariant checks use "one" to probe the leased/cached fast path.
	ReadSeq(ctx context.Context, key, consistency string) (uint64, bool, error)
	// Apply injects one fault.
	Apply(ctx context.Context, f Fault) error
	// Supports reports whether this harness can inject the action.
	Supports(action string) bool
	// StatsOf scrapes one node's observability snapshot.
	StatsOf(name string) (cluster.Stats, error)
	// TraceOf scrapes one node's decision trace.
	TraceOf(name string) ([]cluster.TraceEvent, error)
	// Close tears the cluster down.
	Close() error
}

// readConsistency maps a spec-level consistency name (already
// validated by Spec.Validate) to the cluster's read level.
func readConsistency(name string) cluster.Consistency {
	switch name {
	case "one":
		return cluster.ConsistencyOne
	case "quorum":
		return cluster.ConsistencyQuorum
	case "all":
		return cluster.ConsistencyAll
	default:
		return cluster.ConsistencyDefault
	}
}

// encodeSeq / decodeSeq turn a write sequence into the stored value.
func encodeSeq(seq uint64) []byte { return []byte(strconv.FormatUint(seq, 10)) }

func decodeSeq(v []byte) (uint64, bool) {
	n, err := strconv.ParseUint(string(v), 10, 64)
	return n, err == nil
}

// maxSeq folds sibling values into the highest stored sequence.
func maxSeq(values [][]byte) (uint64, bool) {
	var best uint64
	found := false
	for _, v := range values {
		if n, ok := decodeSeq(v); ok {
			found = true
			if n > best {
				best = n
			}
		}
	}
	return best, found
}

// scenarioSites are the continents scenario nodes cycle through. The
// SLA threshold for k replicas (ThresholdForReplicas) is only
// attainable with pairwise cross-continent spread, so consecutive
// nodes land on different continents — mirroring the paper's
// Zurich/Virginia/Tokyo deployment.
var scenarioSites = []string{"eu/ch", "us/us-east", "ap/jp"}

// locPath spreads node i across continents, then datacenters and racks
// within one, so Eq. 2 can always reach the availability threshold.
func locPath(i int, name string) string {
	site := scenarioSites[i%len(scenarioSites)]
	return fmt.Sprintf("%s/dc%d/r0/k%d/%s", site, i/len(scenarioSites), i, name)
}

// memHarness runs the scenario against an embedded skute.Cluster: the
// same node logic as skuted over the in-memory mesh. Partition- and
// disk-shaped faults don't exist here (specs using them are
// process-only), but slow/heal do — the mesh injects per-node delivery
// latency, so breaker scenarios run in-process and under -race.
type memHarness struct {
	c *skute.Cluster

	mu    sync.Mutex
	names []string
	up    map[string]bool
	next  int // server index for locPath diversity of joiners
}

// NewMemHarness boots the spec's topology in-process and starts the
// autonomous runtime.
func NewMemHarness(spec *Spec) (Harness, error) {
	t := spec.Topology
	opts := skute.Options{
		ReadQuorum:       t.ReadQuorum,
		WriteQuorum:      t.WriteQuorum,
		MaxInflight:      t.MaxInflight,
		BreakerFailures:  t.BreakerFailures,
		BreakerOpenFor:   t.BreakerOpenFor,
		BreakerSlowAfter: t.BreakerSlowAfter,
		Apps: []skute.App{{
			Name:       scenarioApp,
			SLA:        skute.SLA{Class: scenarioClass, Replicas: t.Replicas},
			Partitions: t.Partitions,
		}},
	}
	for i, name := range t.NodeNames() {
		opts.Servers = append(opts.Servers, skute.Server{
			Name:        name,
			Location:    locPath(i, name),
			MonthlyRent: 100,
		})
	}
	c, err := skute.NewCluster(opts)
	if err != nil {
		return nil, err
	}
	h := &memHarness{c: c, up: make(map[string]bool), next: t.Nodes}
	for _, name := range t.NodeNames() {
		h.names = append(h.names, name)
		h.up[name] = true
	}
	if err := c.Start(context.Background(), skute.Runtime{
		Heartbeat:   t.Heartbeat,
		Reconcile:   t.Reconcile,
		AntiEntropy: t.AntiEntropy,
		Epoch:       t.Epoch,
	}); err != nil {
		c.Close()
		return nil, err
	}
	return h, nil
}

func (h *memHarness) Nodes() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]string(nil), h.names...)
}

func (h *memHarness) Do(ctx context.Context, op workload.Op) error {
	cctx, cancel := context.WithTimeout(ctx, opTimeout)
	defer cancel()
	if op.Read {
		_, _, err := h.c.Get(cctx, scenarioApp, op.Key, skute.ReadOptions{Consistency: readConsistency(op.Consistency)})
		return err
	}
	// Read-modify-write: the Get's causal context makes this write
	// dominate every version it saw. A blind Put would be concurrent
	// with its serialized predecessor under vector clocks, and sibling
	// resolution could legitimately keep either — faking a data loss.
	// The pre-read stays at the default quorum regardless of the
	// phase's read consistency: a One-level causal context could miss
	// the predecessor and fork a sibling, faking exactly that loss.
	_, vctx, err := h.c.Get(cctx, scenarioApp, op.Key, skute.ReadOptions{})
	if err != nil {
		return err
	}
	return h.c.Put(cctx, scenarioApp, op.Key, encodeSeq(op.Seq), vctx, skute.WriteOptions{})
}

func (h *memHarness) ReadSeq(ctx context.Context, key, consistency string) (uint64, bool, error) {
	cctx, cancel := context.WithTimeout(ctx, opTimeout)
	defer cancel()
	values, _, err := h.c.Get(cctx, scenarioApp, key, skute.ReadOptions{Consistency: readConsistency(consistency)})
	if err != nil {
		return 0, false, err
	}
	seq, ok := maxSeq(values)
	return seq, ok, nil
}

func (h *memHarness) Supports(action string) bool { return !processOnlyActions[action] }

func (h *memHarness) Apply(ctx context.Context, f Fault) error {
	switch f.Action {
	case ActionKill:
		err := h.c.FailServer(f.Node)
		if err == nil {
			h.mu.Lock()
			h.up[f.Node] = false
			h.mu.Unlock()
		}
		return err
	case ActionRestart:
		err := h.c.ReviveServer(f.Node)
		if err == nil {
			h.mu.Lock()
			h.up[f.Node] = true
			h.mu.Unlock()
		}
		return err
	case ActionLeave:
		err := h.c.RemoveServer(ctx, f.Node)
		if err == nil {
			h.mu.Lock()
			h.up[f.Node] = false
			h.mu.Unlock()
		}
		return err
	case ActionJoin:
		h.mu.Lock()
		seed := ""
		for _, name := range h.names {
			if h.up[name] {
				seed = name
				break
			}
		}
		idx := h.next
		h.next++
		h.mu.Unlock()
		if seed == "" {
			return fmt.Errorf("scenario: no alive seed for join of %s", f.Node)
		}
		err := h.c.AddServer(ctx, skute.Server{
			Name:        f.Node,
			Location:    locPath(idx, f.Node),
			MonthlyRent: 100,
		}, seed)
		if err == nil {
			h.mu.Lock()
			h.names = append(h.names, f.Node)
			h.up[f.Node] = true
			h.mu.Unlock()
		}
		return err
	case ActionSlow:
		return h.c.SlowServer(f.Node, f.Delay)
	case ActionHeal:
		return h.c.SlowServer(f.Node, 0)
	default:
		return fmt.Errorf("scenario: action %q not supported in-process", f.Action)
	}
}

func (h *memHarness) StatsOf(name string) (cluster.Stats, error) { return h.c.StatsOf(name) }

func (h *memHarness) TraceOf(name string) ([]cluster.TraceEvent, error) { return h.c.TraceOf(name) }

func (h *memHarness) Close() error { return h.c.Close() }
