package scenario

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"skute/internal/cluster"
	"skute/internal/workload"
)

// Options tune one scenario run.
type Options struct {
	// Logf receives progress lines (nil discards).
	Logf func(format string, args ...any)
	// Scale multiplies every phase duration, fault time and convergence
	// deadline — testing.Short() runs the corpus at a fraction of the
	// declared wall time (0 selects 1).
	Scale float64
	// Timeout aborts the whole run (0 selects 5 minutes).
	Timeout time.Duration
}

// PhaseResult is one phase's workload outcome.
type PhaseResult struct {
	Name         string
	Report       workload.Report
	Availability float64
}

// Result is one scenario run's outcome. Violations empty = pass.
type Result struct {
	Scenario   string
	Wall       time.Duration
	Phases     []PhaseResult
	Violations []string
	// Trace is the correlated per-node decision dump, collected only
	// when the run violated an invariant.
	Trace []cluster.TraceEvent
}

// Failed reports whether any invariant was violated.
func (r *Result) Failed() bool { return len(r.Violations) > 0 }

// TraceDump renders the correlated trace for artifacts and stderr.
func (r *Result) TraceDump() string {
	var b strings.Builder
	for _, e := range r.Trace {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// runState is the runner's live bookkeeping, shared between the phase
// loop and the fault timeline.
type runState struct {
	mu      sync.Mutex
	up      map[string]bool // nodes expected alive and connected
	joiners []string        // nodes added by join faults
	acked   map[string]uint64
	viols   []string
	trace   *cluster.TraceRing // runner-side events, merged into the dump
}

func (st *runState) violate(format string, args ...any) {
	st.mu.Lock()
	st.viols = append(st.viols, fmt.Sprintf(format, args...))
	st.mu.Unlock()
	st.trace.Add("VIOLATION", format, args...)
}

func (st *runState) expectedUp() []string {
	st.mu.Lock()
	defer st.mu.Unlock()
	var out []string
	for n, ok := range st.up {
		if ok {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// Run executes one scenario against the harness and reports the
// outcome; it never panics the harness and always returns a Result.
func Run(h Harness, spec *Spec, opts Options) *Result {
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	if opts.Scale <= 0 {
		opts.Scale = 1
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 5 * time.Minute
	}
	scale := func(d time.Duration) time.Duration {
		return time.Duration(float64(d) * opts.Scale)
	}
	ctx, cancel := context.WithTimeout(context.Background(), opts.Timeout)
	defer cancel()

	start := time.Now()
	res := &Result{Scenario: spec.Name}
	st := &runState{
		up:    make(map[string]bool),
		acked: make(map[string]uint64),
		trace: cluster.NewTraceRing("runner", 512),
	}
	for _, n := range spec.Topology.NodeNames() {
		st.up[n] = true
	}

	// Unsupported faults are a spec/harness mismatch, not a scenario
	// failure mode worth a trace dump: fail fast and clearly.
	for _, f := range spec.Faults {
		if !h.Supports(f.Action) {
			res.Violations = append(res.Violations,
				fmt.Sprintf("fault %q at %v: not supported by this harness (process-only)", f.Action, f.At))
			res.Wall = time.Since(start)
			return res
		}
	}

	// Baseline: the freshly booted cluster must converge before any
	// load or fault — otherwise every later check is noise.
	convergeDeadline := scale(spec.Invariants.ConvergeWithin)
	if msg := waitConverged(ctx, h, st.expectedUp(), convergeDeadline); msg != "" {
		st.violate("baseline convergence: %s", msg)
		return finish(h, st, res, start)
	}
	st.trace.Add("runner", "baseline converged on %v", st.expectedUp())
	opts.Logf("%s: baseline converged (%d nodes)", spec.Name, len(st.expectedUp()))

	// Fault timeline: fires relative to workload start, concurrent
	// with the phases.
	workloadStart := time.Now()
	var faultWG sync.WaitGroup
	for _, f := range spec.Faults {
		faultWG.Add(1)
		go func(f Fault) {
			defer faultWG.Done()
			at := scale(f.At)
			select {
			case <-ctx.Done():
				return
			case <-time.After(time.Until(workloadStart.Add(at))):
			}
			st.trace.Add("fault", "%s %s", f.Action, f.Node)
			opts.Logf("%s: fault %s %s (t=%v)", spec.Name, f.Action, f.Node, at)
			if err := h.Apply(ctx, f); err != nil {
				st.violate("fault %s %s failed: %v", f.Action, f.Node, err)
				return
			}
			st.mu.Lock()
			switch f.Action {
			case ActionKill, ActionLeave, ActionPartition:
				st.up[f.Node] = false
			case ActionRestart, ActionHeal:
				st.up[f.Node] = true
			case ActionJoin:
				st.up[f.Node] = true
				st.joiners = append(st.joiners, f.Node)
			}
			st.mu.Unlock()
		}(f)
	}

	// Phases run sequentially; each drives open-loop load. Write
	// sequences chain across phases: a fresh driver restarting every
	// key at seq 1 would read-modify-write OVER the previous phase's
	// higher values, and the acked floor below (a max across phases)
	// would then report phantom data loss.
	seqs := map[string]uint64{}
	for i, p := range spec.Phases {
		rep := runPhase(ctx, h, spec, p, scale, int64(i), seqs)
		for k, s := range rep.LastSeqs {
			if s > seqs[k] {
				seqs[k] = s
			}
		}
		pr := PhaseResult{Name: p.Name, Report: rep, Availability: rep.Availability()}
		res.Phases = append(res.Phases, pr)
		st.trace.Add("phase", "%s done: issued=%d acked=%d failed=%d (shed=%d timeouts=%d) dropped=%d avail=%.4f",
			p.Name, rep.Issued, rep.Acked, rep.Failed, rep.Overloaded, rep.Timeouts, rep.Dropped, pr.Availability)
		opts.Logf("%s: phase %s issued=%d acked=%d failed=%d avail=%.4f",
			spec.Name, p.Name, rep.Issued, rep.Acked, rep.Failed, pr.Availability)
		st.mu.Lock()
		for k, seq := range rep.LastAcked {
			if seq > st.acked[k] {
				st.acked[k] = seq
			}
		}
		st.mu.Unlock()
		if p.MinAvailability > 0 && pr.Availability < p.MinAvailability {
			st.violate("phase %s availability %.4f below SLA %.4f (issued=%d acked=%d failed=%d)",
				p.Name, pr.Availability, p.MinAvailability, rep.Issued, rep.Acked, rep.Failed)
		}
	}

	// Let straggler faults (scheduled past the workload end) fire.
	faultWG.Wait()

	checkOverloadInvariants(spec, res, st, scale)

	// Teardown invariants.
	if msg := waitConverged(ctx, h, st.expectedUp(), convergeDeadline); msg != "" {
		st.violate("teardown convergence within %v: %s", convergeDeadline, msg)
	} else {
		st.trace.Add("runner", "teardown converged on %v", st.expectedUp())
	}
	if spec.Invariants.NoLostAckedWrites {
		checkAckedWrites(ctx, h, st, convergeDeadline)
	}
	if spec.Invariants.NoStaleOneReads {
		checkStaleOneReads(ctx, h, st, convergeDeadline)
	}
	if spec.Invariants.JoinersHostVNodes {
		checkJoiners(ctx, h, st, convergeDeadline)
	}
	return finish(h, st, res, start)
}

// runPhase drives one phase's open-loop workload. seqs seeds per-key
// write sequences so they stay monotonic across the scenario's phases.
func runPhase(ctx context.Context, h Harness, spec *Spec, p Phase, scale func(time.Duration) time.Duration, salt int64, seqs map[string]uint64) workload.Report {
	keys := make([]string, p.Keys)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%04d", i)
	}
	var weights []float64
	if p.Popularity != "uniform" {
		rng := rand.New(rand.NewSource(spec.Seed))
		weights, _ = workload.PaperPopularity().Weights(rng, p.Keys, 1000)
	}
	dur := scale(p.Duration)
	rate := func(elapsed time.Duration) float64 { return p.Rate }
	if p.Profile == "slashdot" {
		// Compress the paper's spike into the phase: ramp over the
		// first third, decay over the second, base for the rest.
		s := workload.Slashdot{
			Base: p.Rate, Peak: p.PeakRate,
			StartEpoch: 0, RampEpochs: 100, DecayEpochs: 100,
		}
		third := float64(dur) / 3
		rate = func(elapsed time.Duration) float64 {
			epoch := int(float64(elapsed) / third * 100)
			return s.Rate(epoch)
		}
	}
	d := &workload.Driver{
		Rate:         rate,
		ReadFraction: p.ReadFraction,
		Keys:         keys,
		Weights:      weights,
		Seed:         spec.Seed + salt,
		MaxInFlight:  256,
		StartSeqs:    seqs,
		Do: func(ctx context.Context, op workload.Op) error {
			op.Consistency = p.Consistency
			return h.Do(ctx, op)
		},
	}
	return d.Run(ctx, dur)
}

// checkOverloadInvariants asserts graceful degradation over the phase
// results: every phase marked overload must keep acked throughput at or
// above the configured fraction of the best non-overload phase
// (goodput-under-overload), and its failures must be fast-fail
// admission sheds rather than burned deadlines (max-timeout-fraction) —
// the difference between a cluster that degrades and one that
// collapses.
func checkOverloadInvariants(spec *Spec, res *Result, st *runState, scale func(time.Duration) time.Duration) {
	iv := spec.Invariants
	if iv.GoodputUnderOverload <= 0 && iv.MaxTimeoutFraction < 0 {
		return
	}
	goodput := func(i int) float64 {
		d := scale(spec.Phases[i].Duration).Seconds()
		if d <= 0 {
			return 0
		}
		return float64(res.Phases[i].Report.Acked) / d
	}
	baseline := 0.0
	for i, p := range spec.Phases {
		if i >= len(res.Phases) { // run aborted before this phase
			break
		}
		if !p.Overload {
			if g := goodput(i); g > baseline {
				baseline = g
			}
		}
	}
	for i, p := range spec.Phases {
		if i >= len(res.Phases) || !p.Overload {
			continue
		}
		rep := res.Phases[i].Report
		if iv.GoodputUnderOverload > 0 && baseline > 0 {
			if g := goodput(i); g < iv.GoodputUnderOverload*baseline {
				st.violate("phase %s goodput %.1f/s below %.0f%% of baseline %.1f/s (acked=%d shed=%d timeouts=%d)",
					p.Name, g, iv.GoodputUnderOverload*100, baseline, rep.Acked, rep.Overloaded, rep.Timeouts)
			}
		}
		if iv.MaxTimeoutFraction >= 0 && rep.Failed > 0 {
			if frac := float64(rep.Timeouts) / float64(rep.Failed); frac > iv.MaxTimeoutFraction {
				st.violate("phase %s: %.0f%% of failures burned their deadline, max %.0f%% — collapsed instead of shedding (failed=%d timeouts=%d shed=%d)",
					p.Name, frac*100, iv.MaxTimeoutFraction*100, rep.Failed, rep.Timeouts, rep.Overloaded)
			}
		}
	}
}

// waitConverged polls until every expected-up node reports the same
// placement digest, zero SLA violations, and exactly the expected-up
// set alive. It returns "" on convergence or a description of the last
// obstacle.
func waitConverged(ctx context.Context, h Harness, up []string, within time.Duration) string {
	if len(up) == 0 {
		return "no nodes expected up"
	}
	deadline := time.Now().Add(within)
	last := "not yet polled"
	for {
		last = convergenceObstacle(h, up)
		if last == "" {
			return ""
		}
		if time.Now().After(deadline) || ctx.Err() != nil {
			return last
		}
		select {
		case <-ctx.Done():
			return last
		case <-time.After(150 * time.Millisecond):
		}
	}
}

// convergenceObstacle checks the convergence predicate once.
func convergenceObstacle(h Harness, up []string) string {
	want := append([]string(nil), up...)
	sort.Strings(want)
	var digest uint64
	for i, name := range up {
		s, err := h.StatsOf(name)
		if err != nil {
			return fmt.Sprintf("node %s unreachable: %v", name, err)
		}
		if i == 0 {
			digest = s.PlacementDigest
		} else if s.PlacementDigest != digest {
			return fmt.Sprintf("placement digests diverge: %s=%016x vs %s=%016x", up[0], digest, name, s.PlacementDigest)
		}
		for _, r := range s.Rings {
			if r.Violations > 0 {
				return fmt.Sprintf("node %s sees %d partitions below the %s/%s SLA (min avail %.3f)",
					name, r.Violations, r.App, r.Class, r.MinAvail)
			}
		}
		got := append([]string(nil), s.AlivePeers...)
		sort.Strings(got)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			return fmt.Sprintf("node %s alive set %v, want %v", name, got, want)
		}
	}
	return ""
}

// checkAckedWrites verifies the no-lost-acked-writes invariant: every
// key must read back at or above its highest acknowledged sequence.
// Keys are retried until the deadline — read repair and anti-entropy
// are allowed to finish healing, losing data is not.
func checkAckedWrites(ctx context.Context, h Harness, st *runState, within time.Duration) {
	checkAckedSeqs(ctx, h, st, within, "", "acked write lost")
}

// checkStaleOneReads verifies the no-stale-one-reads invariant with the
// same sequence floor, probed through the One-consistency fast path.
// One reads are allowed to be transiently stale by contract, but lease
// invalidation and the read cache's placement stamp bound that
// staleness: after the churned cluster converges, rotating-coordinator
// One reads that still return a pre-churn value mean a revoked lease or
// a stale cache entry kept serving — exactly the bug class this guards.
func checkStaleOneReads(ctx context.Context, h Harness, st *runState, within time.Duration) {
	checkAckedSeqs(ctx, h, st, within, "one", "stale one-read")
}

// checkAckedSeqs retries every acked key at the given consistency until
// it reads back at or above its acked sequence, then reports survivors.
func checkAckedSeqs(ctx context.Context, h Harness, st *runState, within time.Duration, consistency, label string) {
	st.mu.Lock()
	acked := make(map[string]uint64, len(st.acked))
	for k, v := range st.acked {
		acked[k] = v
	}
	st.mu.Unlock()
	deadline := time.Now().Add(within)
	pending := acked
	for len(pending) > 0 {
		still := map[string]uint64{}
		for key, want := range pending {
			got, found, err := h.ReadSeq(ctx, key, consistency)
			if err != nil || !found || got < want {
				still[key] = want
			}
		}
		pending = still
		if len(pending) == 0 || time.Now().After(deadline) || ctx.Err() != nil {
			break
		}
		select {
		case <-ctx.Done():
		case <-time.After(200 * time.Millisecond):
		}
	}
	// Report the survivors precisely: what was acked, what reads back.
	keys := make([]string, 0, len(pending))
	for k := range pending {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		got, found, err := h.ReadSeq(ctx, key, consistency)
		switch {
		case err != nil:
			st.violate("%s: key %s acked seq %d, read error: %v", label, key, pending[key], err)
		case !found:
			st.violate("%s: key %s acked seq %d, key missing", label, key, pending[key])
		default:
			st.violate("%s: key %s acked seq %d, stored seq %d", label, key, pending[key], got)
		}
	}
}

// checkJoiners verifies every joined node ended up hosting replicas.
func checkJoiners(ctx context.Context, h Harness, st *runState, within time.Duration) {
	st.mu.Lock()
	joiners := append([]string(nil), st.joiners...)
	st.mu.Unlock()
	deadline := time.Now().Add(within)
	for _, name := range joiners {
		for {
			s, err := h.StatsOf(name)
			if err == nil && s.Hosted > 0 {
				break
			}
			if time.Now().After(deadline) || ctx.Err() != nil {
				if err != nil {
					st.violate("joiner %s hosts no vnodes: %v", name, err)
				} else {
					st.violate("joiner %s hosts no vnodes after %v", name, within)
				}
				break
			}
			select {
			case <-ctx.Done():
			case <-time.After(200 * time.Millisecond):
			}
		}
	}
}

// finish seals the result: on violation it collects and correlates
// every node's decision trace with the runner's own events.
func finish(h Harness, st *runState, res *Result, start time.Time) *Result {
	st.mu.Lock()
	res.Violations = append(res.Violations, st.viols...)
	st.mu.Unlock()
	if res.Failed() {
		traces := [][]cluster.TraceEvent{st.trace.Events()}
		for _, name := range h.Nodes() {
			if t, err := h.TraceOf(name); err == nil {
				traces = append(traces, t)
			}
		}
		res.Trace = cluster.MergeTraces(traces...)
	}
	res.Wall = time.Since(start)
	return res
}
