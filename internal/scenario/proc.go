package scenario

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"skute/internal/cluster"
	"skute/internal/ring"
	"skute/internal/transport"
	"skute/internal/workload"
)

// ProcConfig configures the real-process harness.
type ProcConfig struct {
	// SkutedPath is the skuted binary to launch.
	SkutedPath string
	// Dir receives descriptors, per-node WAL directories and log files
	// (the CI artifacts on failure).
	Dir string
	// Logf receives supervisor progress (nil discards).
	Logf func(format string, args ...any)
}

// procNode is one supervised skuted process and its fault proxy.
type procNode struct {
	name      string
	bindAddr  string // the process's real listener
	proxyAddr string // what the cluster advertises (the proxy front)
	adminAddr string
	walDir    string
	logPath   string
	locPath   string
	joined    bool // booted via -join rather than the descriptor

	proxy *proxy
	cmd   *exec.Cmd
	logF  *os.File
	// waitDone closes when the reaper goroutine's cmd.Wait returns —
	// the only synchronization allowed with a running Wait (polling
	// cmd.ProcessState races with Wait writing it).
	waitDone chan struct{}
}

// exited reports whether the reaper observed the process exit.
func exited(done chan struct{}) bool {
	if done == nil {
		return true
	}
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// procHarness drives a fleet of real cmd/skuted processes over TCP,
// each fronted by a fault-injection proxy, with WAL-backed storage so
// kill -9 and restart exercise real recovery.
type procHarness struct {
	spec *Spec
	pc   ProcConfig
	tr   transport.Transport
	ring ring.RingID

	cfgPath string

	mu        sync.Mutex
	nodes     map[string]*procNode
	order     []string
	reachable map[string]bool // process up AND proxy forwarding

	coord atomic.Uint64
}

// NewProcHarness boots the spec's topology as real processes and waits
// for every admin endpoint to answer.
func NewProcHarness(spec *Spec, pc ProcConfig) (Harness, error) {
	if pc.Logf == nil {
		pc.Logf = func(string, ...any) {}
	}
	if pc.SkutedPath == "" {
		return nil, fmt.Errorf("scenario: proc harness needs the skuted binary path")
	}
	if pc.Dir == "" {
		return nil, fmt.Errorf("scenario: proc harness needs a work dir")
	}
	h := &procHarness{
		spec:      spec,
		pc:        pc,
		tr:        transport.NewTCP(),
		ring:      ring.RingID{App: scenarioApp, Class: scenarioClass},
		nodes:     make(map[string]*procNode),
		reachable: make(map[string]bool),
	}
	t := spec.Topology
	var cfg cluster.Config
	cfg.Rings = []cluster.RingSpec{{App: scenarioApp, Class: scenarioClass, Partitions: t.Partitions, Replicas: t.Replicas}}
	cfg.ReadQuorum, cfg.WriteQuorum = t.ReadQuorum, t.WriteQuorum
	cfg.SuspectAfter, cfg.DeadAfter = t.SuspectAfter, t.DeadAfter
	cfg.TransferChunkItems, cfg.TransferBytesPerSec = t.TransferChunk, t.TransferRate
	cfg.MaxInflight = t.MaxInflight
	cfg.BreakerFailures = t.BreakerFailures
	cfg.BreakerOpenFor, cfg.BreakerSlowAfter = t.BreakerOpenFor, t.BreakerSlowAfter
	for i, name := range t.NodeNames() {
		pn, err := h.prepareNode(name, i)
		if err != nil {
			h.Close()
			return nil, err
		}
		cfg.Nodes = append(cfg.Nodes, cluster.NodeInfo{
			Name: name, Addr: pn.proxyAddr, LocPath: pn.locPath,
			Confidence: 1, MonthlyRent: 100,
			Capacity: 16 << 30, QueryCapacity: 1e9,
		})
	}
	raw, err := json.MarshalIndent(cfg, "", "  ")
	if err != nil {
		h.Close()
		return nil, err
	}
	h.cfgPath = filepath.Join(pc.Dir, "cluster.json")
	if err := os.WriteFile(h.cfgPath, raw, 0o644); err != nil {
		h.Close()
		return nil, err
	}
	for _, name := range t.NodeNames() {
		if err := h.launch(h.nodes[name], ""); err != nil {
			h.Close()
			return nil, err
		}
	}
	for _, name := range t.NodeNames() {
		if err := h.waitHealthy(h.nodes[name], 20*time.Second); err != nil {
			h.Close()
			return nil, err
		}
	}
	return h, nil
}

// prepareNode allocates addresses, proxy, WAL dir and log file.
func (h *procHarness) prepareNode(name string, idx int) (*procNode, error) {
	bindAddr, err := freeAddr()
	if err != nil {
		return nil, err
	}
	adminAddr, err := freeAddr()
	if err != nil {
		return nil, err
	}
	px, err := newProxy("127.0.0.1:0", bindAddr)
	if err != nil {
		return nil, err
	}
	walDir := filepath.Join(h.pc.Dir, name, "wal")
	if err := os.MkdirAll(walDir, 0o755); err != nil {
		px.Close()
		return nil, err
	}
	pn := &procNode{
		name:      name,
		bindAddr:  bindAddr,
		proxyAddr: px.Addr(),
		adminAddr: adminAddr,
		walDir:    walDir,
		logPath:   filepath.Join(h.pc.Dir, name+".log"),
		locPath:   locPath(idx, name),
		proxy:     px,
	}
	h.mu.Lock()
	h.nodes[name] = pn
	h.order = append(h.order, name)
	h.mu.Unlock()
	return pn, nil
}

// launch starts (or restarts) one node's process. seedAddr non-empty
// boots it through -join instead of the shared descriptor; nodes first
// booted by join also rejoin on restart (their name is not in the
// descriptor).
func (h *procHarness) launch(pn *procNode, seedAddr string) error {
	t := h.spec.Topology
	args := []string{
		"-name", pn.name,
		"-wal", pn.walDir,
		// Small segments so WAL rotation — where an unwritable
		// directory actually bites — happens within a scenario.
		"-wal-segment-bytes", "65536",
		"-trace-events", "512",
		"-admin", pn.adminAddr,
		"-heartbeat", t.Heartbeat.String(),
		"-reconcile", t.Reconcile.String(),
		"-anti-entropy", t.AntiEntropy.String(),
		"-epoch", t.Epoch.String(),
		"-bind", pn.bindAddr,
	}
	if seedAddr != "" {
		args = append(args,
			"-join", seedAddr,
			"-listen", pn.proxyAddr,
			"-locpath", pn.locPath,
			"-rent", "100",
			"-query-capacity", "1000000000",
		)
		if t.TransferChunk > 0 {
			args = append(args, "-transfer-chunk", strconv.Itoa(t.TransferChunk))
		}
		if t.TransferRate > 0 {
			args = append(args, "-transfer-rate", strconv.FormatInt(t.TransferRate, 10))
		}
		if t.MaxInflight > 0 {
			args = append(args, "-max-inflight", strconv.Itoa(t.MaxInflight))
		}
		if t.BreakerFailures > 0 {
			args = append(args, "-breaker-failures", strconv.Itoa(t.BreakerFailures))
		}
		if t.BreakerOpenFor > 0 {
			args = append(args, "-breaker-open-for", t.BreakerOpenFor.String())
		}
		if t.BreakerSlowAfter > 0 {
			args = append(args, "-breaker-slow-after", t.BreakerSlowAfter.String())
		}
	} else {
		args = append(args, "-config", h.cfgPath)
	}
	logF, err := os.OpenFile(pn.logPath, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	cmd := exec.Command(h.pc.SkutedPath, args...)
	cmd.Stdout, cmd.Stderr = logF, logF
	if err := cmd.Start(); err != nil {
		logF.Close()
		return fmt.Errorf("scenario: launch %s: %w", pn.name, err)
	}
	h.pc.Logf("scenario: %s up (pid %d, addr %s via proxy, admin %s)", pn.name, cmd.Process.Pid, pn.proxyAddr, pn.adminAddr)
	waitDone := make(chan struct{})
	h.mu.Lock()
	pn.cmd, pn.logF, pn.waitDone = cmd, logF, waitDone
	pn.joined = seedAddr != ""
	h.reachable[pn.name] = true
	h.mu.Unlock()
	go func() { cmd.Wait(); close(waitDone) }() // reap; exit status lands in the log
	return nil
}

// waitHealthy polls the node's admin /healthz.
func (h *procHarness) waitHealthy(pn *procNode, within time.Duration) error {
	deadline := time.Now().Add(within)
	url := "http://" + pn.adminAddr + "/healthz"
	for {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("scenario: node %s never became healthy on %s", pn.name, pn.adminAddr)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func freeAddr() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr, nil
}

func (h *procHarness) Nodes() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]string(nil), h.order...)
}

// coordinator rotates over reachable nodes' proxy addresses.
func (h *procHarness) coordinator() (string, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.order) == 0 {
		return "", fmt.Errorf("scenario: no nodes")
	}
	start := int(h.coord.Add(1)-1) % len(h.order)
	for i := 0; i < len(h.order); i++ {
		name := h.order[(start+i)%len(h.order)]
		if h.reachable[name] {
			return h.nodes[name].proxyAddr, nil
		}
	}
	return "", fmt.Errorf("scenario: no reachable nodes")
}

func (h *procHarness) Do(ctx context.Context, op workload.Op) error {
	addr, err := h.coordinator()
	if err != nil {
		return err
	}
	c := cluster.NewClient(h.tr, addr)
	if op.Read {
		_, _, err = c.Get(ctx, h.ring, op.Key, cluster.ReadOptions{Timeout: opTimeout, Consistency: readConsistency(op.Consistency)})
		return err
	}
	// Read-modify-write, as in memHarness.Do: the causal context makes
	// each serialized write dominate the last instead of forking a
	// concurrent sibling. The pre-read stays at the default quorum (see
	// memHarness.Do).
	_, vctx, err := c.Get(ctx, h.ring, op.Key, cluster.ReadOptions{Timeout: opTimeout})
	if err != nil {
		return err
	}
	return c.Put(ctx, h.ring, op.Key, encodeSeq(op.Seq), vctx, cluster.WriteOptions{Timeout: opTimeout})
}

func (h *procHarness) ReadSeq(ctx context.Context, key, consistency string) (uint64, bool, error) {
	addr, err := h.coordinator()
	if err != nil {
		return 0, false, err
	}
	values, _, err := cluster.NewClient(h.tr, addr).Get(ctx, h.ring, key, cluster.ReadOptions{Timeout: opTimeout, Consistency: readConsistency(consistency)})
	if err != nil {
		return 0, false, err
	}
	seq, ok := maxSeq(values)
	return seq, ok, nil
}

func (h *procHarness) Supports(string) bool { return true }

func (h *procHarness) Apply(ctx context.Context, f Fault) error {
	h.mu.Lock()
	pn := h.nodes[f.Node]
	h.mu.Unlock()
	if pn == nil && f.Action != ActionJoin {
		return fmt.Errorf("scenario: unknown node %q", f.Node)
	}
	switch f.Action {
	case ActionKill:
		return h.kill(pn, syscall.SIGKILL)
	case ActionLeave:
		// Graceful shutdown: the process checkpoints and exits; peers
		// notice through suspicion and evict — the paper's ordinary
		// departure path for a node that stops paying rent.
		return h.kill(pn, syscall.SIGTERM)
	case ActionRestart:
		if pn.cmd != nil && !exited(pn.waitDone) {
			return fmt.Errorf("scenario: restart of %s while still running", f.Node)
		}
		pn.proxy.SetMode("forward", 0)
		seed := ""
		if pn.joined {
			var err error
			if seed, err = h.seedAddr(f.Node); err != nil {
				return err
			}
		}
		if err := h.launch(pn, seed); err != nil {
			return err
		}
		return h.waitHealthy(pn, 20*time.Second)
	case ActionJoin:
		seed, err := h.seedAddr(f.Node)
		if err != nil {
			return err
		}
		h.mu.Lock()
		idx := len(h.order)
		h.mu.Unlock()
		newPN, err := h.prepareNode(f.Node, idx)
		if err != nil {
			return err
		}
		if err := h.launch(newPN, seed); err != nil {
			return err
		}
		return h.waitHealthy(newPN, 20*time.Second)
	case ActionSlow:
		pn.proxy.SetMode("delay", f.Delay)
		return nil
	case ActionPartition:
		pn.proxy.SetMode("drop", 0)
		h.setReachable(f.Node, false)
		// Sever the node's pooled outbound state too? No: the drop is
		// deliberately asymmetric (see proxy.go) — inbound dies, the
		// node's own dials still leave. SWIM must handle exactly that.
		return nil
	case ActionHeal:
		pn.proxy.SetMode("forward", 0)
		h.setReachable(f.Node, true)
		return nil
	case ActionDiskFull:
		if os.Geteuid() == 0 {
			h.pc.Logf("scenario: warning: running as root, chmod-based disk-full on %s will not block writes", f.Node)
		}
		return os.Chmod(pn.walDir, 0o555)
	case ActionDiskHeal:
		return os.Chmod(pn.walDir, 0o755)
	default:
		return fmt.Errorf("scenario: unknown action %q", f.Action)
	}
}

func (h *procHarness) setReachable(name string, ok bool) {
	h.mu.Lock()
	h.reachable[name] = ok
	h.mu.Unlock()
}

// seedAddr picks a reachable node other than `not` to join through.
func (h *procHarness) seedAddr(not string) (string, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, name := range h.order {
		if name != not && h.reachable[name] {
			return h.nodes[name].proxyAddr, nil
		}
	}
	return "", fmt.Errorf("scenario: no reachable seed")
}

// kill signals the process and waits for it to die.
func (h *procHarness) kill(pn *procNode, sig syscall.Signal) error {
	h.mu.Lock()
	cmd, done := pn.cmd, pn.waitDone
	h.mu.Unlock()
	if cmd == nil || cmd.Process == nil {
		return fmt.Errorf("scenario: %s not running", pn.name)
	}
	if err := cmd.Process.Signal(sig); err != nil {
		return err
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
	}
	h.setReachable(pn.name, false)
	// Sever in-flight sockets so peers see the death promptly rather
	// than waiting out half-open connections.
	pn.proxy.SetMode("forward", 0)
	return nil
}

// StatsOf scrapes GET /stats from the node's admin endpoint.
func (h *procHarness) StatsOf(name string) (cluster.Stats, error) {
	h.mu.Lock()
	pn := h.nodes[name]
	h.mu.Unlock()
	if pn == nil {
		return cluster.Stats{}, fmt.Errorf("scenario: unknown node %q", name)
	}
	var s cluster.Stats
	if err := getJSON("http://"+pn.adminAddr+"/stats", &s); err != nil {
		return cluster.Stats{}, err
	}
	return s, nil
}

// TraceOf scrapes GET /trace.
func (h *procHarness) TraceOf(name string) ([]cluster.TraceEvent, error) {
	h.mu.Lock()
	pn := h.nodes[name]
	h.mu.Unlock()
	if pn == nil {
		return nil, fmt.Errorf("scenario: unknown node %q", name)
	}
	var evs []cluster.TraceEvent
	if err := getJSON("http://"+pn.adminAddr+"/trace", &evs); err != nil {
		return nil, err
	}
	return evs, nil
}

func getJSON(url string, v any) error {
	client := http.Client{Timeout: 3 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("scenario: GET %s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// Close kills every process and proxy. The work dir (descriptors,
// WALs, logs) is left for the caller — it is the failure artifact.
func (h *procHarness) Close() error {
	h.mu.Lock()
	nodes := make([]*procNode, 0, len(h.nodes))
	for _, pn := range h.nodes {
		nodes = append(nodes, pn)
	}
	h.mu.Unlock()
	for _, pn := range nodes {
		if pn.cmd != nil && pn.cmd.Process != nil && !exited(pn.waitDone) {
			pn.cmd.Process.Kill()
		}
		if pn.proxy != nil {
			pn.proxy.Close()
		}
		if pn.logF != nil {
			pn.logF.Close()
		}
	}
	if c, ok := h.tr.(interface{ Close() error }); ok {
		c.Close()
	}
	return nil
}
