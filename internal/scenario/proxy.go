package scenario

import (
	"io"
	"net"
	"sync"
	"time"
)

// proxy is a TCP fault-injection forwarder fronting one skuted
// process: peers and clients dial the proxy (the node's advertised
// Addr) while the process listens on its private Bind address behind
// it. Modes:
//
//	forward — pass bytes through untouched
//	drop    — blackhole: refuse nothing, accept and discard (new
//	          connections stall, established ones are severed on the
//	          mode switch), modeling an asymmetric network partition
//	          of the node's INBOUND traffic; its outbound dials still
//	          flow, which is exactly the nasty half-open failure SWIM
//	          suspicion has to handle
//	delay   — per-connection latency added before each copied chunk
//	          (a slow peer, not a dead one)
type proxy struct {
	ln     net.Listener
	target string

	mu    sync.Mutex
	mode  string
	delay time.Duration
	conns map[net.Conn]struct{}
	done  chan struct{}
}

// newProxy listens on addr (e.g. "127.0.0.1:0") forwarding to target.
func newProxy(addr, target string) (*proxy, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	p := &proxy{
		ln:     ln,
		target: target,
		mode:   "forward",
		conns:  make(map[net.Conn]struct{}),
		done:   make(chan struct{}),
	}
	go p.accept()
	return p, nil
}

// Addr is the proxy's listen address — what the cluster advertises.
func (p *proxy) Addr() string { return p.ln.Addr().String() }

// SetMode switches fault mode. Established connections are severed on
// every switch: a partition must cut live sockets, not only future
// dials, and a heal must force clean re-dials through the new mode.
func (p *proxy) SetMode(mode string, delay time.Duration) {
	p.mu.Lock()
	p.mode = mode
	p.delay = delay
	conns := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.conns = make(map[net.Conn]struct{})
	p.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// Close stops the listener and severs everything.
func (p *proxy) Close() error {
	close(p.done)
	err := p.ln.Close()
	p.SetMode("closed", 0)
	return err
}

func (p *proxy) accept() {
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		go p.serve(conn)
	}
}

func (p *proxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.mode == "closed" {
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

func (p *proxy) serve(down net.Conn) {
	if !p.track(down) {
		down.Close()
		return
	}
	defer func() { p.untrack(down); down.Close() }()

	p.mu.Lock()
	mode := p.mode
	p.mu.Unlock()
	if mode == "drop" {
		// Blackhole: hold the connection open, deliver nothing. The
		// dialer's own timeouts decide how long it waits — like a
		// firewalled host, not a refused port.
		io.Copy(io.Discard, down)
		return
	}

	up, err := net.Dial("tcp", p.target)
	if err != nil {
		return
	}
	if !p.track(up) {
		up.Close()
		return
	}
	defer func() { p.untrack(up); up.Close() }()

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); p.copy(up, down) }()
	go func() { defer wg.Done(); p.copy(down, up) }()
	wg.Wait()
}

// copy forwards bytes, injecting the configured delay per chunk.
func (p *proxy) copy(dst, src net.Conn) {
	buf := make([]byte, 32<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			p.mu.Lock()
			d := time.Duration(0)
			if p.mode == "delay" {
				d = p.delay
			}
			p.mu.Unlock()
			if d > 0 {
				select {
				case <-p.done:
					return
				case <-time.After(d):
				}
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
		}
		if err != nil {
			// Half-close propagates so framed RPCs finish cleanly.
			if tc, ok := dst.(*net.TCPConn); ok {
				tc.CloseWrite()
			}
			return
		}
	}
}
