// Package parallel provides the bounded fork-join helper shared by the
// hot paths that fan independent work out over a worker pool: the cluster
// economic epoch, the simulator's snapshot statistics and the storage
// benchmarks.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEach runs fn(i) for every i in [0, n) on at most workers goroutines
// and returns when all calls have finished. workers <= 0 selects
// GOMAXPROCS. Small inputs (n <= 1, or workers resolving to 1) run inline
// on the caller's goroutine, so the helper is safe to use unconditionally
// on hot paths.
//
// fn must be safe to call concurrently; iteration order is unspecified.
func ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if n == 1 || workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
