package parallel

import (
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 2, 7, 64} {
		const n = 100
		var hits [n]atomic.Int32
		ForEach(n, workers, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	ForEach(0, 4, func(int) { t.Fatal("fn called for n=0") })
	ForEach(-3, 4, func(int) { t.Fatal("fn called for n<0") })
}

func TestForEachInlineForSingleItem(t *testing.T) {
	// n == 1 must run on the caller's goroutine (no pool spin-up).
	ran := false
	ForEach(1, 8, func(i int) { ran = true })
	if !ran {
		t.Fatal("fn not called for n=1")
	}
}
