// Package server models the physical servers of the data cloud: their
// location and confidence, their real monthly rent, and the per-epoch
// resource budgets the paper fixes in Section III-A — storage capacity,
// reserved replication bandwidth (300 MB/epoch), reserved migration
// bandwidth (100 MB/epoch) and query-serving capacity.
//
// Servers only do accounting; all placement intelligence lives in the
// virtual-node agents. A server can fail and come back, matching the
// upgrade/failure experiment of Section III-C.
package server

import (
	"fmt"

	"skute/internal/ring"
	"skute/internal/topology"
)

// Capacities are the per-server resource limits.
type Capacities struct {
	Storage       int64   // bytes of usable storage
	ReplBandwidth int64   // bytes/epoch reserved for incoming replications
	MigrBandwidth int64   // bytes/epoch reserved for incoming migrations
	QueryCapacity float64 // queries/epoch the server can absorb at load 1.0
}

// PaperCapacities mirrors Section III-A: 300 MB/epoch replication budget,
// 100 MB/epoch migration budget, plus storage and query capacity sized for
// the 200-server evaluation cloud (fixed but not numerically specified in
// the paper).
func PaperCapacities() Capacities {
	return Capacities{
		Storage:       16 << 30, // 16 GiB per server
		ReplBandwidth: 300 << 20,
		MigrBandwidth: 100 << 20,
		QueryCapacity: 2000,
	}
}

// Validate reports an error for non-positive limits.
func (c Capacities) Validate() error {
	if c.Storage <= 0 || c.ReplBandwidth <= 0 || c.MigrBandwidth <= 0 || c.QueryCapacity <= 0 {
		return fmt.Errorf("server: capacities must be positive: %+v", c)
	}
	return nil
}

// Server is one physical node of the cloud.
type Server struct {
	id         ring.ServerID
	loc        topology.Location
	confidence float64
	rent       float64 // real monthly rent in dollars
	caps       Capacities

	alive       bool
	usedStorage int64

	// Per-epoch budgets and counters, reset by BeginEpoch.
	replBudget int64
	migrBudget int64
	queries    float64
}

// New creates an alive server.
func New(id ring.ServerID, loc topology.Location, confidence, monthlyRent float64, caps Capacities) (*Server, error) {
	if err := caps.Validate(); err != nil {
		return nil, err
	}
	if confidence < 0 || confidence > 1 {
		return nil, fmt.Errorf("server %d: confidence %v outside [0,1]", id, confidence)
	}
	if monthlyRent <= 0 {
		return nil, fmt.Errorf("server %d: monthly rent %v must be positive", id, monthlyRent)
	}
	return &Server{
		id:         id,
		loc:        loc,
		confidence: confidence,
		rent:       monthlyRent,
		caps:       caps,
		alive:      true,
		replBudget: caps.ReplBandwidth,
		migrBudget: caps.MigrBandwidth,
	}, nil
}

// ID returns the server's identity.
func (s *Server) ID() ring.ServerID { return s.id }

// Location returns the server's position in the topology.
func (s *Server) Location() topology.Location { return s.loc }

// Confidence returns the subjective reliability estimate in [0,1].
func (s *Server) Confidence() float64 { return s.confidence }

// MonthlyRent returns the real monthly rent in dollars.
func (s *Server) MonthlyRent() float64 { return s.rent }

// Capacities returns the resource limits.
func (s *Server) Capacities() Capacities { return s.caps }

// Alive reports whether the server is up.
func (s *Server) Alive() bool { return s.alive }

// Fail takes the server down: its budgets drop to zero and its data is
// gone (the simulator removes the replicas). Storage accounting is reset
// because a failed server's disks are considered lost.
func (s *Server) Fail() {
	s.alive = false
	s.usedStorage = 0
	s.replBudget = 0
	s.migrBudget = 0
	s.queries = 0
}

// Revive brings a failed server back, empty.
func (s *Server) Revive() {
	s.alive = true
	s.usedStorage = 0
}

// BeginEpoch resets the per-epoch bandwidth budgets and the query counter.
func (s *Server) BeginEpoch() {
	if !s.alive {
		return
	}
	s.replBudget = s.caps.ReplBandwidth
	s.migrBudget = s.caps.MigrBandwidth
	s.queries = 0
}

// AddQueries accounts incoming query traffic for the current epoch.
func (s *Server) AddQueries(n float64) {
	if s.alive && n > 0 {
		s.queries += n
	}
}

// Queries returns the query traffic of the current epoch.
func (s *Server) Queries() float64 { return s.queries }

// QueryLoad is the query traffic normalized by the query capacity; it is
// the query_load term of the rent formula (Eq. 1). It can exceed 1 when a
// server is overloaded.
func (s *Server) QueryLoad() float64 { return s.queries / s.caps.QueryCapacity }

// StorageUsage is used/capacity in [0,1+]; the storage_usage term of
// Eq. 1.
func (s *Server) StorageUsage() float64 {
	return float64(s.usedStorage) / float64(s.caps.Storage)
}

// UsedStorage returns the bytes currently stored.
func (s *Server) UsedStorage() int64 { return s.usedStorage }

// FreeStorage returns the bytes still available.
func (s *Server) FreeStorage() int64 { return s.caps.Storage - s.usedStorage }

// CanHost reports whether the server is alive and has room for size bytes.
func (s *Server) CanHost(size int64) bool {
	return s.alive && s.usedStorage+size <= s.caps.Storage
}

// Store accounts size bytes of partition data; it fails when the server is
// down or full, leaving the accounting untouched.
func (s *Server) Store(size int64) error {
	if size < 0 {
		return fmt.Errorf("server %d: negative store size %d", s.id, size)
	}
	if !s.alive {
		return fmt.Errorf("server %d: down", s.id)
	}
	if s.usedStorage+size > s.caps.Storage {
		return fmt.Errorf("server %d: storage full (%d used + %d requested > %d)", s.id, s.usedStorage, size, s.caps.Storage)
	}
	s.usedStorage += size
	return nil
}

// Release frees size bytes; freeing more than is used clamps to zero.
func (s *Server) Release(size int64) {
	s.usedStorage -= size
	if s.usedStorage < 0 {
		s.usedStorage = 0
	}
}

// ReserveReplication consumes incoming replication bandwidth for the
// epoch; it reports false (reserving nothing) when the remaining budget is
// insufficient.
func (s *Server) ReserveReplication(bytes int64) bool {
	if !s.alive || bytes < 0 || bytes > s.replBudget {
		return false
	}
	s.replBudget -= bytes
	return true
}

// ReserveMigration consumes incoming migration bandwidth for the epoch.
func (s *Server) ReserveMigration(bytes int64) bool {
	if !s.alive || bytes < 0 || bytes > s.migrBudget {
		return false
	}
	s.migrBudget -= bytes
	return true
}

// ReplBudget returns the remaining replication bandwidth of the epoch.
func (s *Server) ReplBudget() int64 { return s.replBudget }

// MigrBudget returns the remaining migration bandwidth of the epoch.
func (s *Server) MigrBudget() int64 { return s.migrBudget }
