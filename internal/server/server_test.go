package server

import (
	"testing"

	"skute/internal/topology"
)

func loc() topology.Location {
	return topology.Qualified("eu", "ch", "dc0", "room0", "rack0", "srv0")
}

func newTestServer(t *testing.T) *Server {
	t.Helper()
	caps := Capacities{Storage: 1000, ReplBandwidth: 300, MigrBandwidth: 100, QueryCapacity: 50}
	s, err := New(1, loc(), 1, 100, caps)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	caps := PaperCapacities()
	if err := caps.Validate(); err != nil {
		t.Fatalf("paper capacities invalid: %v", err)
	}
	cases := []struct {
		name string
		fn   func() (*Server, error)
	}{
		{"bad storage", func() (*Server, error) {
			c := caps
			c.Storage = 0
			return New(1, loc(), 1, 100, c)
		}},
		{"bad confidence", func() (*Server, error) { return New(1, loc(), 1.5, 100, caps) }},
		{"negative confidence", func() (*Server, error) { return New(1, loc(), -0.1, 100, caps) }},
		{"bad rent", func() (*Server, error) { return New(1, loc(), 1, 0, caps) }},
	}
	for _, c := range cases {
		if _, err := c.fn(); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
}

func TestAccessors(t *testing.T) {
	s := newTestServer(t)
	if s.ID() != 1 || s.Location() != loc() || s.Confidence() != 1 || s.MonthlyRent() != 100 {
		t.Error("accessors wrong")
	}
	if !s.Alive() {
		t.Error("new server not alive")
	}
	if s.Capacities().Storage != 1000 {
		t.Error("capacities not preserved")
	}
}

func TestStorageAccounting(t *testing.T) {
	s := newTestServer(t)
	if err := s.Store(400); err != nil {
		t.Fatalf("Store(400): %v", err)
	}
	if s.UsedStorage() != 400 || s.FreeStorage() != 600 {
		t.Errorf("used/free = %d/%d", s.UsedStorage(), s.FreeStorage())
	}
	if got := s.StorageUsage(); got != 0.4 {
		t.Errorf("StorageUsage = %v", got)
	}
	if !s.CanHost(600) || s.CanHost(601) {
		t.Error("CanHost boundary wrong")
	}
	if err := s.Store(601); err == nil {
		t.Error("Store beyond capacity: want error")
	}
	if s.UsedStorage() != 400 {
		t.Error("failed Store changed accounting")
	}
	if err := s.Store(-1); err == nil {
		t.Error("negative Store: want error")
	}
	s.Release(100)
	if s.UsedStorage() != 300 {
		t.Errorf("after Release: %d", s.UsedStorage())
	}
	s.Release(10000)
	if s.UsedStorage() != 0 {
		t.Error("Release did not clamp at zero")
	}
}

func TestQueryAccounting(t *testing.T) {
	s := newTestServer(t)
	s.AddQueries(25)
	s.AddQueries(-5) // ignored
	if s.Queries() != 25 {
		t.Errorf("Queries = %v", s.Queries())
	}
	if s.QueryLoad() != 0.5 {
		t.Errorf("QueryLoad = %v", s.QueryLoad())
	}
	s.BeginEpoch()
	if s.Queries() != 0 {
		t.Error("BeginEpoch did not reset queries")
	}
}

func TestBandwidthBudgets(t *testing.T) {
	s := newTestServer(t)
	if !s.ReserveReplication(200) {
		t.Fatal("ReserveReplication(200) failed")
	}
	if s.ReplBudget() != 100 {
		t.Errorf("ReplBudget = %d", s.ReplBudget())
	}
	if s.ReserveReplication(101) {
		t.Error("over-budget replication reserved")
	}
	if !s.ReserveReplication(100) {
		t.Error("exact budget refused")
	}
	if s.ReserveReplication(1) {
		t.Error("empty budget reserved")
	}
	if s.ReserveMigration(-1) {
		t.Error("negative reservation accepted")
	}
	if !s.ReserveMigration(100) || s.MigrBudget() != 0 {
		t.Error("migration budget wrong")
	}
	s.BeginEpoch()
	if s.ReplBudget() != 300 || s.MigrBudget() != 100 {
		t.Error("BeginEpoch did not reset budgets")
	}
}

func TestFailAndRevive(t *testing.T) {
	s := newTestServer(t)
	if err := s.Store(500); err != nil {
		t.Fatal(err)
	}
	s.AddQueries(10)
	s.Fail()
	if s.Alive() {
		t.Fatal("server alive after Fail")
	}
	if s.UsedStorage() != 0 || s.Queries() != 0 {
		t.Error("Fail did not clear state")
	}
	if err := s.Store(1); err == nil {
		t.Error("Store on dead server: want error")
	}
	if s.CanHost(1) {
		t.Error("dead server CanHost")
	}
	if s.ReserveReplication(1) || s.ReserveMigration(1) {
		t.Error("dead server reserved bandwidth")
	}
	s.AddQueries(5)
	if s.Queries() != 0 {
		t.Error("dead server accumulated queries")
	}
	s.BeginEpoch() // must be a no-op on a dead server
	if s.ReplBudget() != 0 {
		t.Error("BeginEpoch revived budgets of dead server")
	}
	s.Revive()
	if !s.Alive() || s.UsedStorage() != 0 {
		t.Error("Revive state wrong")
	}
	s.BeginEpoch()
	if s.ReplBudget() != 300 {
		t.Error("budgets not restored after revive")
	}
}
