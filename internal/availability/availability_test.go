package availability

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"skute/internal/ring"
	"skute/internal/topology"
)

func host(id int, conf float64, path ...string) Host {
	return Host{
		ID:   ring.ServerID(id),
		Conf: conf,
		Loc:  topology.Qualified(path[0], path[1], path[2], path[3], path[4], path[5]),
	}
}

func TestOfPairwise(t *testing.T) {
	// Two replicas on different continents: 1*1*63.
	hs := []Host{
		host(1, 1, "eu", "ch", "dc0", "r0", "k0", "s0"),
		host(2, 1, "us", "us-e", "dc0", "r0", "k0", "s1"),
	}
	if got := Of(hs); got != 63 {
		t.Errorf("Of(2 continents) = %v, want 63", got)
	}
	// Confidence scales multiplicatively per pair.
	hs[0].Conf = 0.5
	if got := Of(hs); got != 31.5 {
		t.Errorf("Of with conf 0.5 = %v, want 31.5", got)
	}
}

func TestOfSmallSets(t *testing.T) {
	if Of(nil) != 0 {
		t.Error("Of(nil) != 0")
	}
	single := []Host{host(1, 1, "eu", "ch", "dc0", "r0", "k0", "s0")}
	if Of(single) != 0 {
		t.Error("single replica availability must be 0")
	}
}

func TestOfThreeReplicas(t *testing.T) {
	// Three replicas on three continents: 3 pairs * 63 = 189.
	hs := []Host{
		host(1, 1, "eu", "a", "dc0", "r0", "k0", "s0"),
		host(2, 1, "us", "b", "dc0", "r0", "k0", "s1"),
		host(3, 1, "ap", "c", "dc0", "r0", "k0", "s2"),
	}
	if got := Of(hs); got != 189 {
		t.Errorf("Of = %v, want 189", got)
	}
	// Same rack replicas add almost nothing: pairs (1,2)=63, (1,3)=63,
	// (2,3 same rack)=1 => 127.
	hs[2] = host(3, 1, "us", "b", "dc0", "r0", "k0", "s3")
	if got := Of(hs); got != 127 {
		t.Errorf("Of with rack sibling = %v, want 127", got)
	}
}

func TestWithMatchesOf(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	randHost := func(id int) Host {
		return Host{
			ID:   ring.ServerID(id),
			Conf: 0.5 + rng.Float64()/2,
			Loc: topology.Qualified(
				string(rune('a'+rng.Intn(4))), string(rune('a'+rng.Intn(3))),
				"dc0", "r0", string(rune('a'+rng.Intn(2))), string(rune('a'+rng.Intn(6)))),
		}
	}
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(5)
		hs := make([]Host, n)
		for i := range hs {
			hs[i] = randHost(i)
		}
		extra := randHost(99)
		want := Of(append(append([]Host(nil), hs...), extra))
		if got := With(hs, extra); math.Abs(got-want) > 1e-9 {
			t.Fatalf("With = %v, Of(appended) = %v", got, want)
		}
	}
}

func TestWithoutMatchesOf(t *testing.T) {
	hs := []Host{
		host(1, 1, "eu", "a", "dc0", "r0", "k0", "s0"),
		host(2, 0.9, "us", "b", "dc0", "r0", "k0", "s1"),
		host(3, 0.8, "ap", "c", "dc0", "r0", "k0", "s2"),
	}
	want := Of([]Host{hs[0], hs[2]})
	if got := Without(hs, 2); got != want {
		t.Errorf("Without(2) = %v, want %v", got, want)
	}
	if got := Without(hs, 42); got != Of(hs) {
		t.Errorf("Without(absent) = %v, want %v", got, Of(hs))
	}
}

func TestAvailabilityMonotoneProperty(t *testing.T) {
	// Adding a replica never decreases availability (diversity >= 0).
	rng := rand.New(rand.NewSource(2))
	f := func() bool {
		n := rng.Intn(6)
		hs := make([]Host, n)
		for i := range hs {
			hs[i] = Host{
				ID:   ring.ServerID(i),
				Conf: rng.Float64(),
				Loc: topology.Qualified(
					string(rune('a'+rng.Intn(3))), "x", "dc", "r",
					string(rune('a'+rng.Intn(2))), string(rune('a'+rng.Intn(8)))),
			}
		}
		extra := Host{ID: 99, Conf: rng.Float64(), Loc: topology.Qualified("q", "q", "q", "q", "q", "q")}
		return With(hs, extra) >= Of(hs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestThresholds(t *testing.T) {
	// k=2: 0.95*63 = 59.85; two cross-continent replicas (63) satisfy it,
	// one replica (0) does not.
	th2 := ThresholdForReplicas(2)
	if !(th2 > 0 && th2 <= 63) {
		t.Errorf("th2 = %v", th2)
	}
	th3 := ThresholdForReplicas(3)
	if !(th3 > MaxAchievable(2) && th3 <= MaxAchievable(3)) {
		t.Errorf("th3 = %v not in (%v, %v]", th3, MaxAchievable(2), MaxAchievable(3))
	}
	th4 := ThresholdForReplicas(4)
	if !(th4 > MaxAchievable(3) && th4 <= MaxAchievable(4)) {
		t.Errorf("th4 = %v not in (%v, %v]", th4, MaxAchievable(3), MaxAchievable(4))
	}
	if ThresholdForReplicas(1) != 0 || ThresholdForReplicas(0) != 0 {
		t.Error("k<2 thresholds must be 0")
	}
}

func TestReplicasForThreshold(t *testing.T) {
	for k := 2; k <= 8; k++ {
		if got := ReplicasForThreshold(ThresholdForReplicas(k)); got != k {
			t.Errorf("ReplicasForThreshold(th(%d)) = %d", k, got)
		}
	}
	if ReplicasForThreshold(0) != 1 {
		t.Error("zero threshold needs 1 replica")
	}
}

func TestScoreEquationThree(t *testing.T) {
	current := []Host{
		host(1, 1, "eu", "a", "dc0", "r0", "k0", "s0"),
		host(2, 1, "us", "b", "dc0", "r0", "k0", "s1"),
	}
	cand := Candidate{
		Host: host(9, 0.5, "ap", "c", "dc0", "r0", "k0", "s9"),
		Rent: 10,
		G:    0.8,
	}
	// diversity to both = 63+63 = 126; score = 0.8*0.5*126 - 10 = 40.4
	if got := Score(current, cand); math.Abs(got-40.4) > 1e-9 {
		t.Errorf("Score = %v, want 40.4", got)
	}
}

func TestBestPrefersDiversityThenRent(t *testing.T) {
	current := []Host{host(1, 1, "eu", "a", "dc0", "r0", "k0", "s0")}
	sameRack := Candidate{Host: host(2, 1, "eu", "a", "dc0", "r0", "k0", "s2"), Rent: 1, G: 1}
	otherCont := Candidate{Host: host(3, 1, "us", "b", "dc0", "r0", "k0", "s3"), Rent: 5, G: 1}
	best, ok := Best(current, []Candidate{sameRack, otherCont})
	if !ok || best.ID != 3 {
		t.Errorf("Best = %v, want cross-continent server 3", best.ID)
	}

	// Equal diversity: cheaper rent wins.
	contA := Candidate{Host: host(4, 1, "us", "b", "dc0", "r0", "k0", "s4"), Rent: 7, G: 1}
	contB := Candidate{Host: host(5, 1, "ap", "c", "dc0", "r0", "k0", "s5"), Rent: 3, G: 1}
	// Make scores equal by construction: both cross-continent, so score =
	// 63 - rent; contB is cheaper and must win outright.
	best, ok = Best(current, []Candidate{contA, contB})
	if !ok || best.ID != 5 {
		t.Errorf("Best = %v, want cheaper server 5", best.ID)
	}
}

func TestBestDeterministicTieBreak(t *testing.T) {
	current := []Host{host(1, 1, "eu", "a", "dc0", "r0", "k0", "s0")}
	a := Candidate{Host: host(7, 1, "us", "b", "dc0", "r0", "k0", "s7"), Rent: 2, G: 1}
	b := Candidate{Host: host(4, 1, "ap", "c", "dc0", "r0", "k0", "s4"), Rent: 2, G: 1}
	best, _ := Best(current, []Candidate{a, b})
	if best.ID != 4 {
		t.Errorf("tie-break by ID: got %d, want 4", best.ID)
	}
	best2, _ := Best(current, []Candidate{b, a})
	if best2.ID != best.ID {
		t.Error("Best depends on candidate order")
	}
}

func TestBestEmpty(t *testing.T) {
	if _, ok := Best(nil, nil); ok {
		t.Error("Best of empty candidates reported ok")
	}
}

func BenchmarkOf(b *testing.B) {
	hs := []Host{
		host(1, 1, "eu", "a", "dc0", "r0", "k0", "s0"),
		host(2, 1, "us", "b", "dc0", "r0", "k0", "s1"),
		host(3, 1, "ap", "c", "dc0", "r0", "k0", "s2"),
		host(4, 1, "af", "d", "dc0", "r0", "k0", "s3"),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Of(hs)
	}
}

func BenchmarkBest200Candidates(b *testing.B) {
	current := []Host{
		host(1, 1, "eu", "a", "dc0", "r0", "k0", "s0"),
		host(2, 1, "us", "b", "dc0", "r0", "k0", "s1"),
	}
	cands := make([]Candidate, 200)
	for i := range cands {
		cands[i] = Candidate{
			Host: host(10+i, 1, string(rune('a'+i%5)), "c", "dc0", "r0", "k0", "s"),
			Rent: float64(i % 7),
			G:    1,
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := Best(current, cands); !ok {
			b.Fatal("no best")
		}
	}
}
