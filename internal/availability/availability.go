// Package availability implements Skute's availability estimation and
// replica-placement scoring.
//
// Estimating true per-server failure probabilities would require an
// enormous amount of historical and private information, so the paper
// approximates the availability of a partition by the geographic diversity
// of the servers hosting its replicas (Eq. 2):
//
//	avail = sum_{i<j} conf_i * conf_j * diversity(s_i, s_j)
//
// and places new replicas by maximizing the net benefit between the added
// diversity and the candidate's virtual rent (Eq. 3):
//
//	argmax_j sum_k g_j * conf_j * diversity(s_k, s_j) - c_j
package availability

import (
	"skute/internal/ring"
	"skute/internal/topology"
)

// Host is the placement-relevant view of a server: identity, location and
// confidence.
type Host struct {
	ID   ring.ServerID
	Loc  topology.Location
	Conf float64
}

// Of computes Eq. 2 over the replica hosts of a partition. Fewer than two
// replicas have availability 0: a lone copy provides no diversity at all.
func Of(hosts []Host) float64 {
	var sum float64
	for i := 0; i < len(hosts); i++ {
		for j := i + 1; j < len(hosts); j++ {
			sum += hosts[i].Conf * hosts[j].Conf * float64(topology.Diversity(hosts[i].Loc, hosts[j].Loc))
		}
	}
	return sum
}

// With computes Eq. 2 for the replica set extended by one extra host,
// without building a new slice.
func With(hosts []Host, extra Host) float64 {
	sum := Of(hosts)
	for _, h := range hosts {
		sum += h.Conf * extra.Conf * float64(topology.Diversity(h.Loc, extra.Loc))
	}
	return sum
}

// Without computes Eq. 2 for the replica set with the identified host
// removed; it is the check a virtual node runs before committing suicide.
// Removing an absent host returns Of(hosts) unchanged.
func Without(hosts []Host, id ring.ServerID) float64 {
	var sum float64
	for i := 0; i < len(hosts); i++ {
		if hosts[i].ID == id {
			continue
		}
		for j := i + 1; j < len(hosts); j++ {
			if hosts[j].ID == id {
				continue
			}
			sum += hosts[i].Conf * hosts[j].Conf * float64(topology.Diversity(hosts[i].Loc, hosts[j].Loc))
		}
	}
	return sum
}

// ThresholdForReplicas returns the availability threshold that a partition
// with k geographically well-spread replicas (pairwise on different
// continents, confidence 1) satisfies, while k-1 replicas cannot possibly
// reach it: 95% of k*(k-1)/2 * MaxDiversity. The paper's three
// applications use k = 2, 3, 4. k below 2 yields 0 (no replication
// pressure), matching Eq. 2 where a single replica scores 0.
func ThresholdForReplicas(k int) float64 {
	if k < 2 {
		return 0
	}
	pairs := float64(k*(k-1)) / 2
	return 0.95 * pairs * float64(topology.MaxDiversity)
}

// Candidate is a server being evaluated as the target of a replication or
// migration: its placement view plus its announced virtual rent and the
// geographic preference g of the partition's clients for it (Eq. 4).
type Candidate struct {
	Host
	Rent float64
	G    float64
}

// Score evaluates Eq. 3 for one candidate against the current replica
// hosts: the g- and confidence-weighted diversity the candidate adds,
// minus its rent.
func Score(current []Host, c Candidate) float64 {
	var div float64
	for _, h := range current {
		div += float64(topology.Diversity(h.Loc, c.Loc))
	}
	return c.G*c.Conf*div - c.Rent
}

// Best returns the candidate maximizing Eq. 3. Ties break toward the lower
// rent and then the lower server ID so that concurrent agents make
// deterministic, reproducible choices. The boolean is false when the
// candidate list is empty.
func Best(current []Host, cands []Candidate) (Candidate, bool) {
	if len(cands) == 0 {
		return Candidate{}, false
	}
	best := cands[0]
	bestScore := Score(current, best)
	for _, c := range cands[1:] {
		s := Score(current, c)
		if s > bestScore ||
			(s == bestScore && (c.Rent < best.Rent || (c.Rent == best.Rent && c.ID < best.ID))) {
			best, bestScore = c, s
		}
	}
	return best, true
}

// MaxAchievable returns the largest availability k replicas can reach in
// any topology: all pairs across continents at full confidence. It bounds
// sanity checks in tests and guards against unreachable thresholds.
func MaxAchievable(k int) float64 {
	if k < 2 {
		return 0
	}
	return float64(k*(k-1)) / 2 * float64(topology.MaxDiversity)
}

// ReplicasForThreshold returns the minimum number of perfectly spread
// replicas needed to satisfy the threshold — the inverse of
// ThresholdForReplicas, useful for SLA introspection.
func ReplicasForThreshold(th float64) int {
	if th <= 0 {
		return 1
	}
	k := 2
	for MaxAchievable(k) < th && k < 1<<20 {
		k++
	}
	return k
}
