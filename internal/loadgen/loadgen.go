// Package loadgen is the open-loop load engine behind cmd/skute-load:
// it offers requests to a target at a FIXED arrival schedule computed up
// front, so a stalling system makes latency numbers worse instead of
// quietly slowing the arrival rate down (the coordinated-omission trap a
// closed loop falls into). Latency is measured from each request's
// scheduled send time, not from when a worker got around to sending it —
// time spent queued behind a stalled system is the system's fault and is
// charged to it.
//
// The engine shares its building blocks with the rest of the repo: key
// popularity comes from workload.Picker (Pareto weights by default),
// Poisson arrivals from workload.Interarrival, and every latency number
// is a telemetry.Snapshot — the identical quantile machinery a live
// node serves on GET /metrics, so BENCH_load.json and /metrics can be
// compared number for number.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"skute/internal/resilience"
	"skute/internal/telemetry"
	"skute/internal/workload"
)

// Target is the system under test. Implementations must be safe for
// concurrent use by many workers.
type Target interface {
	// Read fetches one key.
	Read(ctx context.Context, key string) error
	// Write stores value under key.
	Write(ctx context.Context, key string, value []byte) error
}

// Phase is one segment of the offered-rate timeline.
type Phase struct {
	// Name labels the phase in the report ("warmup", "ramp", "peak").
	Name string
	// Rate is the offered arrival rate in ops/sec.
	Rate float64
	// Duration is the phase's length on the shared timeline.
	Duration time.Duration
	// Warmup phases run full load but are excluded from every aggregate
	// statistic (connection pools fill, caches warm, JITs settle).
	Warmup bool
	// Overload phases run at a rate chosen to EXCEED the target's
	// capacity. Like Warmup they are excluded from the aggregates and
	// from MaxSustainedQPS (an overload phase misses its SLO by design);
	// their outcome is scored separately in Report.Overload — goodput
	// held, and whether the excess was shed fast or queued into its
	// deadline.
	Overload bool
}

// Options configure one run.
type Options struct {
	// Phases is the offered-rate schedule, executed back to back on one
	// timeline anchored at the run's start — no barriers between phases,
	// so a stall in one phase cannot shift the arrival times of the
	// next.
	Phases []Phase
	// Workers is the number of concurrent senders (and therefore the
	// in-flight bound); <= 0 selects 64.
	Workers int
	// ReadFraction in [0,1] is the probability an arrival is a read.
	ReadFraction float64
	// Keys and Weights define the popularity distribution (nil Weights
	// means uniform), exactly as in workload.Driver.
	Keys    []string
	Weights []float64
	// ValueBytes sizes the payload of every write; <= 0 selects 128.
	ValueBytes int
	// UniformArrivals spaces arrivals evenly instead of drawing
	// exponential (Poisson) gaps. Poisson is the default: real traffic
	// is bursty, and evenly spaced arrivals understate tail latency.
	UniformArrivals bool
	// Seed makes the schedule, op mix and key choices reproducible.
	Seed int64
	// SustainedSLO is the p99 scheduled-time latency bound a phase must
	// meet to count toward MaxSustainedQPS; <= 0 selects 200ms. Counts
	// alone cannot detect saturation in an open loop — every arrival is
	// eventually issued — so the divergence shows up only as latency.
	SustainedSLO time.Duration
}

// OpStats aggregates one operation kind over the measured (non-warmup)
// portion of a run.
type OpStats struct {
	// OfferedQPS is the scheduled arrival rate; AchievedQPS counts only
	// acknowledged operations against the measured wall-clock span.
	OfferedQPS  float64 `json:"offered_qps"`
	AchievedQPS float64 `json:"achieved_qps"`
	// Issued/Acked/Errors count operations; open-loop never drops an
	// arrival, so Issued = Acked + Errors.
	Issued int64 `json:"issued"`
	Acked  int64 `json:"acked"`
	Errors int64 `json:"errors"`
	// Overloaded and Timeouts split Errors by how the operation failed:
	// Overloaded counts explicit admission-gate sheds
	// (resilience.ErrOverloaded) that failed FAST, Timeouts counts
	// operations that burned their whole deadline — the collapse
	// signature. A healthy saturated target sheds; a collapsing one
	// times out.
	Overloaded int64 `json:"overloaded,omitempty"`
	Timeouts   int64 `json:"timeouts,omitempty"`
	// Latency is measured from each op's SCHEDULED send time.
	Latency telemetry.Stats `json:"latency"`
}

// PhaseReport is one phase's outcome.
type PhaseReport struct {
	Name        string  `json:"name"`
	RateQPS     float64 `json:"rate_qps"`
	DurationSec float64 `json:"duration_sec"`
	Warmup      bool    `json:"warmup,omitempty"`
	Get         OpStats `json:"get"`
	Put         OpStats `json:"put"`
}

// Report is the run's outcome: per-phase and aggregate offered vs.
// achieved QPS with latency quantiles, the shape BENCH_load.json stores.
type Report struct {
	DurationSec float64       `json:"duration_sec"`
	Workers     int           `json:"workers"`
	KeyCount    int           `json:"key_count"`
	Phases      []PhaseReport `json:"phases"`
	// Get/Put aggregate every measured phase.
	Get OpStats `json:"get"`
	Put OpStats `json:"put"`
	// MaxSustainedQPS is the highest measured phase rate the target kept
	// up with: p99 scheduled-time latency within the SLO and no error
	// storm (< 1% of issued).
	MaxSustainedQPS float64 `json:"max_sustained_qps"`
	// Overload scores the overload-marked phases; absent when the run
	// had none.
	Overload *OverloadStats `json:"overload,omitempty"`
}

// OverloadStats is the graceful-degradation scorecard for the
// overload-marked phases. A robust target holds GoodputRatio near 1 by
// shedding the excess fast (ShedFraction dominates); a collapsing
// target queues everything into its deadline, inverting the fractions
// and dragging goodput down with them.
type OverloadStats struct {
	// OfferedQPS and GoodputQPS are the offered and the acknowledged
	// rates across the overload phases; Issued and Failed are the raw
	// op counts behind them.
	OfferedQPS float64 `json:"offered_qps"`
	GoodputQPS float64 `json:"goodput_qps"`
	Issued     int64   `json:"issued"`
	Failed     int64   `json:"failed"`
	// GoodputRatio is GoodputQPS over the best measured (non-warmup,
	// non-overload) phase's acknowledged rate: "goodput at Nx the
	// sustainable rate" as a fraction of the sustainable goodput.
	GoodputRatio float64 `json:"goodput_ratio"`
	// ShedFraction and TimeoutFraction split the overload-phase
	// failures: shed fast with ErrOverloaded vs burned the full
	// deadline. They need not sum to 1 — other failures (quorum loss,
	// connection errors) count in neither bucket.
	ShedFraction    float64 `json:"shed_fraction"`
	TimeoutFraction float64 `json:"timeout_fraction"`
}

// arrival is one scheduled request: its offset on the run timeline, the
// phase it belongs to, and the op it performs.
type arrival struct {
	at    time.Duration
	phase int
	read  bool
	key   string
}

// phaseTelemetry accumulates one phase's histograms and counters.
type phaseTelemetry struct {
	getHist    *telemetry.Histogram
	putHist    *telemetry.Histogram
	getErrs    atomic.Int64
	putErrs    atomic.Int64
	getShed    atomic.Int64
	putShed    atomic.Int64
	getTimeout atomic.Int64
	putTimeout atomic.Int64
}

// record charges one completed operation to the phase, classifying a
// failure as a fast admission shed, a burned deadline, or neither.
func (t *phaseTelemetry) record(read bool, ns int64, err error) {
	hist, errs, shed, timeout := t.putHist, &t.putErrs, &t.putShed, &t.putTimeout
	if read {
		hist, errs, shed, timeout = t.getHist, &t.getErrs, &t.getShed, &t.getTimeout
	}
	hist.Record(ns)
	if err == nil {
		return
	}
	errs.Add(1)
	switch {
	case errors.Is(err, resilience.ErrOverloaded):
		shed.Add(1)
	case errors.Is(err, context.DeadlineExceeded):
		timeout.Add(1)
	}
}

// Run executes the schedule against the target and reports. The context
// aborts the run early (workers stop taking arrivals); the report then
// covers what was sent.
func Run(ctx context.Context, opts Options, target Target) (*Report, error) {
	if len(opts.Phases) == 0 {
		return nil, fmt.Errorf("loadgen: no phases")
	}
	if len(opts.Keys) == 0 {
		return nil, fmt.Errorf("loadgen: no keys")
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = 64
	}
	valueBytes := opts.ValueBytes
	if valueBytes <= 0 {
		valueBytes = 128
	}

	// The whole schedule is computed before the first byte moves: fixed
	// arrival times are what make the load open-loop. Workers take
	// arrivals round-robin so a single slow request delays only 1/Nth of
	// the schedule behind it.
	schedule, err := buildSchedule(opts)
	if err != nil {
		return nil, err
	}
	tels := make([]*phaseTelemetry, len(opts.Phases))
	for i := range tels {
		tels[i] = &phaseTelemetry{getHist: telemetry.NewHistogram(), putHist: telemetry.NewHistogram()}
	}
	value := make([]byte, valueBytes)
	for i := range value {
		value[i] = byte('a' + i%26)
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			timer := time.NewTimer(time.Hour)
			defer timer.Stop()
			for i := w; i < len(schedule); i += workers {
				a := schedule[i]
				sched := start.Add(a.at)
				if wait := time.Until(sched); wait > 0 {
					timer.Reset(wait)
					select {
					case <-ctx.Done():
						return
					case <-timer.C:
					}
				} else if ctx.Err() != nil {
					return
				}
				tel := tels[a.phase]
				var err error
				if a.read {
					err = target.Read(ctx, a.key)
				} else {
					err = target.Write(ctx, a.key, value)
				}
				// Latency from the SCHEDULED time: lateness caused by a
				// stalled earlier request on this worker is charged to
				// the system, which is the point.
				tel.record(a.read, time.Since(sched).Nanoseconds(), err)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	return buildReport(opts, schedule, tels, workers, elapsed), nil
}

// buildSchedule lays every phase's arrivals on one timeline.
func buildSchedule(opts Options) ([]arrival, error) {
	rng := rand.New(rand.NewSource(opts.Seed))
	picker := workload.NewPicker(opts.Keys, opts.Weights)
	var schedule []arrival
	base := time.Duration(0)
	for pi, ph := range opts.Phases {
		if ph.Rate <= 0 || ph.Duration <= 0 {
			return nil, fmt.Errorf("loadgen: phase %q needs positive rate and duration", ph.Name)
		}
		emit := func(t time.Duration) {
			schedule = append(schedule, arrival{
				at:    base + t,
				phase: pi,
				read:  rng.Float64() < opts.ReadFraction,
				key:   picker.Pick(rng.Float64()),
			})
		}
		if opts.UniformArrivals {
			gap := time.Duration(float64(time.Second) / ph.Rate)
			if gap <= 0 {
				gap = 1 // >1e9 qps: schedule at nanosecond granularity
			}
			for t := time.Duration(0); t < ph.Duration; t += gap {
				emit(t)
			}
		} else {
			// Poisson: exponential gaps at the phase rate. The first gap
			// is drawn too — a Poisson process pins no arrival at t=0.
			for t := workload.Interarrival(rng, ph.Rate); t < ph.Duration; t += workload.Interarrival(rng, ph.Rate) {
				emit(t)
			}
		}
		base += ph.Duration
	}
	return schedule, nil
}

// buildReport aggregates the per-phase telemetry.
func buildReport(opts Options, schedule []arrival, tels []*phaseTelemetry, workers int, elapsed time.Duration) *Report {
	rep := &Report{
		DurationSec: elapsed.Seconds(),
		Workers:     workers,
		KeyCount:    len(opts.Keys),
	}
	totalGet := telemetry.NewHistogram().Snapshot()
	totalPut := telemetry.NewHistogram().Snapshot()
	var totGetErrs, totPutErrs int64
	var totGetShed, totPutShed, totGetTimeout, totPutTimeout int64
	var measuredDur time.Duration
	var measuredGetOffered, measuredPutOffered int64
	var bestGoodput float64
	var ovDur time.Duration
	var ovOffered, ovAcked, ovErrs, ovShed, ovTimeout int64
	for pi, ph := range opts.Phases {
		var getOffered, putOffered int64
		for _, a := range schedule {
			if a.phase != pi {
				continue
			}
			if a.read {
				getOffered++
			} else {
				putOffered++
			}
		}
		gs := tels[pi].getHist.Snapshot()
		ps := tels[pi].putHist.Snapshot()
		tel := tels[pi]
		pr := PhaseReport{
			Name:        ph.Name,
			RateQPS:     ph.Rate,
			DurationSec: ph.Duration.Seconds(),
			Warmup:      ph.Warmup,
			Get:         opStats(gs, getOffered, tel.getErrs.Load(), tel.getShed.Load(), tel.getTimeout.Load(), ph.Duration),
			Put:         opStats(ps, putOffered, tel.putErrs.Load(), tel.putShed.Load(), tel.putTimeout.Load(), ph.Duration),
		}
		rep.Phases = append(rep.Phases, pr)
		if ph.Warmup {
			continue
		}
		if ph.Overload {
			// Overload phases are scored on their own: folding them
			// into the aggregates would report deliberate saturation as
			// a latency regression.
			ovDur += ph.Duration
			ovOffered += getOffered + putOffered
			ovAcked += pr.Get.Acked + pr.Put.Acked
			ovErrs += pr.Get.Errors + pr.Put.Errors
			ovShed += pr.Get.Overloaded + pr.Put.Overloaded
			ovTimeout += pr.Get.Timeouts + pr.Put.Timeouts
			continue
		}
		totalGet = totalGet.Merge(gs)
		totalPut = totalPut.Merge(ps)
		totGetErrs += tel.getErrs.Load()
		totPutErrs += tel.putErrs.Load()
		totGetShed += tel.getShed.Load()
		totPutShed += tel.putShed.Load()
		totGetTimeout += tel.getTimeout.Load()
		totPutTimeout += tel.putTimeout.Load()
		measuredDur += ph.Duration
		measuredGetOffered += getOffered
		measuredPutOffered += putOffered
		if g := float64(pr.Get.Acked+pr.Put.Acked) / ph.Duration.Seconds(); g > bestGoodput {
			bestGoodput = g
		}

		slo := opts.SustainedSLO
		if slo <= 0 {
			slo = 200 * time.Millisecond
		}
		p99 := pr.Get.Latency.P99NS
		if pr.Put.Latency.P99NS > p99 {
			p99 = pr.Put.Latency.P99NS
		}
		issued := pr.Get.Issued + pr.Put.Issued
		errs := pr.Get.Errors + pr.Put.Errors
		offered := getOffered + putOffered
		if offered > 0 && issued >= offered*95/100 &&
			float64(errs) < 0.01*float64(issued) &&
			p99 <= int64(slo) &&
			ph.Rate > rep.MaxSustainedQPS {
			rep.MaxSustainedQPS = ph.Rate
		}
	}
	if measuredDur > 0 {
		rep.Get = opStats(totalGet, measuredGetOffered, totGetErrs, totGetShed, totGetTimeout, measuredDur)
		rep.Put = opStats(totalPut, measuredPutOffered, totPutErrs, totPutShed, totPutTimeout, measuredDur)
	}
	if ovDur > 0 {
		ov := &OverloadStats{
			OfferedQPS: float64(ovOffered) / ovDur.Seconds(),
			GoodputQPS: float64(ovAcked) / ovDur.Seconds(),
			Issued:     ovAcked + ovErrs,
			Failed:     ovErrs,
		}
		if bestGoodput > 0 {
			ov.GoodputRatio = ov.GoodputQPS / bestGoodput
		}
		if ovErrs > 0 {
			ov.ShedFraction = float64(ovShed) / float64(ovErrs)
			ov.TimeoutFraction = float64(ovTimeout) / float64(ovErrs)
		}
		rep.Overload = ov
	}
	return rep
}

func opStats(s *telemetry.Snapshot, offered, errs, shed, timeouts int64, dur time.Duration) OpStats {
	st := OpStats{
		Issued:     s.Count,
		Acked:      s.Count - errs,
		Errors:     errs,
		Overloaded: shed,
		Timeouts:   timeouts,
		Latency:    s.Stats(),
	}
	if secs := dur.Seconds(); secs > 0 {
		st.OfferedQPS = float64(offered) / secs
		st.AchievedQPS = float64(st.Acked) / secs
	}
	return st
}
