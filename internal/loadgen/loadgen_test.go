package loadgen

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// fakeTarget answers instantly, optionally stalling every request for a
// fixed time, and counts what it served.
type fakeTarget struct {
	stall  time.Duration
	reads  atomic.Int64
	writes atomic.Int64
	fail   atomic.Bool
}

func (f *fakeTarget) Read(ctx context.Context, key string) error {
	f.reads.Add(1)
	return f.wait(ctx)
}

func (f *fakeTarget) Write(ctx context.Context, key string, value []byte) error {
	f.writes.Add(1)
	return f.wait(ctx)
}

func (f *fakeTarget) wait(ctx context.Context) error {
	if f.stall > 0 {
		select {
		case <-time.After(f.stall):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	if f.fail.Load() {
		return fmt.Errorf("injected failure")
	}
	return nil
}

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("u%04d", i)
	}
	return keys
}

func TestScheduleIsOpenLoop(t *testing.T) {
	opts := Options{
		Phases:          []Phase{{Name: "p0", Rate: 1000, Duration: time.Second}, {Name: "p1", Rate: 2000, Duration: time.Second}},
		Keys:            testKeys(100),
		ReadFraction:    0.5,
		Seed:            1,
		UniformArrivals: true,
	}
	sched, err := buildSchedule(opts)
	if err != nil {
		t.Fatal(err)
	}
	// 1000 + 2000 arrivals on one fixed timeline, strictly within the
	// phases' spans, monotonically non-decreasing.
	if len(sched) != 3000 {
		t.Fatalf("schedule has %d arrivals, want 3000", len(sched))
	}
	for i, a := range sched {
		if i > 0 && a.at < sched[i-1].at {
			t.Fatalf("arrival %d at %v precedes %v", i, a.at, sched[i-1].at)
		}
		if a.phase == 0 && a.at >= time.Second {
			t.Fatalf("phase-0 arrival at %v past the phase end", a.at)
		}
		if a.phase == 1 && (a.at < time.Second || a.at >= 2*time.Second) {
			t.Fatalf("phase-1 arrival at %v outside its span", a.at)
		}
	}
	// The schedule is a pure function of the options.
	again, _ := buildSchedule(opts)
	for i := range sched {
		if sched[i] != again[i] {
			t.Fatalf("schedule not reproducible at %d", i)
		}
	}
}

func TestPoissonScheduleRate(t *testing.T) {
	opts := Options{
		Phases: []Phase{{Name: "p", Rate: 5000, Duration: 2 * time.Second}},
		Keys:   testKeys(10),
		Seed:   7,
	}
	sched, err := buildSchedule(opts)
	if err != nil {
		t.Fatal(err)
	}
	// 10k expected arrivals; Poisson fluctuation at this count is ~1%.
	if n := len(sched); n < 9500 || n > 10500 {
		t.Fatalf("%d arrivals for offered 10000", n)
	}
}

func TestRunReportsOfferedAndAchieved(t *testing.T) {
	target := &fakeTarget{}
	rep, err := Run(context.Background(), Options{
		Phases: []Phase{
			{Name: "warmup", Rate: 500, Duration: 200 * time.Millisecond, Warmup: true},
			{Name: "steady", Rate: 500, Duration: 400 * time.Millisecond},
		},
		Keys:            testKeys(50),
		ReadFraction:    0.5,
		Workers:         8,
		Seed:            3,
		UniformArrivals: true,
	}, target)
	if err != nil {
		t.Fatal(err)
	}
	issued := rep.Get.Issued + rep.Put.Issued
	// The measured phase offered 200 arrivals; warmup's 100 are excluded
	// from the aggregates but still hit the target.
	if issued != 200 {
		t.Fatalf("measured issued = %d, want 200", issued)
	}
	if total := target.reads.Load() + target.writes.Load(); total != 300 {
		t.Fatalf("target served %d, want 300 (incl. warmup)", total)
	}
	if rep.Get.Errors != 0 || rep.Put.Errors != 0 {
		t.Fatalf("unexpected errors: %+v / %+v", rep.Get, rep.Put)
	}
	if rep.MaxSustainedQPS != 500 {
		t.Fatalf("max sustained = %v, want 500", rep.MaxSustainedQPS)
	}
	if len(rep.Phases) != 2 || !rep.Phases[0].Warmup {
		t.Fatalf("phase reports: %+v", rep.Phases)
	}
	// An instant target keeps scheduled-time latency in the millisecond
	// range (timer slack), far under the stall test's floor below.
	if p99 := rep.Get.Latency.P99NS; p99 > int64(100*time.Millisecond) {
		t.Fatalf("instant target p99 = %v", time.Duration(p99))
	}
}

// TestStallChargedToLatency pins the open-loop property: a target that
// stalls every request cannot slow the offered rate down; the backlog
// shows up as scheduled-time latency far above the stall itself.
func TestStallChargedToLatency(t *testing.T) {
	target := &fakeTarget{stall: 20 * time.Millisecond}
	// 2 workers serving 200 offered/sec with a 20ms stall can achieve at
	// most 100/sec: the schedule runs twice as fast as the target can
	// serve, so the last arrivals wait ~half the phase behind schedule.
	rep, err := Run(context.Background(), Options{
		Phases:          []Phase{{Name: "sat", Rate: 200, Duration: 500 * time.Millisecond}},
		Keys:            testKeys(10),
		ReadFraction:    1,
		Workers:         2,
		Seed:            5,
		UniformArrivals: true,
	}, target)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Get.Issued != 100 {
		t.Fatalf("issued %d, want 100", rep.Get.Issued)
	}
	// Max latency must reflect schedule lag (hundreds of ms), not the
	// 20ms per-request stall a closed loop would report.
	if max := rep.Get.Latency.MaxNS; max < int64(100*time.Millisecond) {
		t.Fatalf("max scheduled-time latency %v; coordinated omission not corrected", time.Duration(max))
	}
	if rep.MaxSustainedQPS != 0 {
		t.Fatalf("saturated phase counted as sustained (%v qps)", rep.MaxSustainedQPS)
	}
}

func TestErrorsCounted(t *testing.T) {
	target := &fakeTarget{}
	target.fail.Store(true)
	rep, err := Run(context.Background(), Options{
		Phases:          []Phase{{Name: "p", Rate: 300, Duration: 300 * time.Millisecond}},
		Keys:            testKeys(10),
		ReadFraction:    0,
		Workers:         4,
		Seed:            9,
		UniformArrivals: true,
	}, target)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Put.Errors != rep.Put.Issued || rep.Put.Acked != 0 {
		t.Fatalf("all ops failed but report says %+v", rep.Put)
	}
	if rep.MaxSustainedQPS != 0 {
		t.Fatalf("error storm counted as sustained")
	}
}
