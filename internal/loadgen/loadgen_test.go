package loadgen

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"skute/internal/resilience"
)

// fakeTarget answers instantly, optionally stalling every request for a
// fixed time, and counts what it served.
type fakeTarget struct {
	stall  time.Duration
	reads  atomic.Int64
	writes atomic.Int64
	fail   atomic.Bool
}

func (f *fakeTarget) Read(ctx context.Context, key string) error {
	f.reads.Add(1)
	return f.wait(ctx)
}

func (f *fakeTarget) Write(ctx context.Context, key string, value []byte) error {
	f.writes.Add(1)
	return f.wait(ctx)
}

func (f *fakeTarget) wait(ctx context.Context) error {
	if f.stall > 0 {
		select {
		case <-time.After(f.stall):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	if f.fail.Load() {
		return fmt.Errorf("injected failure")
	}
	return nil
}

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("u%04d", i)
	}
	return keys
}

func TestScheduleIsOpenLoop(t *testing.T) {
	opts := Options{
		Phases:          []Phase{{Name: "p0", Rate: 1000, Duration: time.Second}, {Name: "p1", Rate: 2000, Duration: time.Second}},
		Keys:            testKeys(100),
		ReadFraction:    0.5,
		Seed:            1,
		UniformArrivals: true,
	}
	sched, err := buildSchedule(opts)
	if err != nil {
		t.Fatal(err)
	}
	// 1000 + 2000 arrivals on one fixed timeline, strictly within the
	// phases' spans, monotonically non-decreasing.
	if len(sched) != 3000 {
		t.Fatalf("schedule has %d arrivals, want 3000", len(sched))
	}
	for i, a := range sched {
		if i > 0 && a.at < sched[i-1].at {
			t.Fatalf("arrival %d at %v precedes %v", i, a.at, sched[i-1].at)
		}
		if a.phase == 0 && a.at >= time.Second {
			t.Fatalf("phase-0 arrival at %v past the phase end", a.at)
		}
		if a.phase == 1 && (a.at < time.Second || a.at >= 2*time.Second) {
			t.Fatalf("phase-1 arrival at %v outside its span", a.at)
		}
	}
	// The schedule is a pure function of the options.
	again, _ := buildSchedule(opts)
	for i := range sched {
		if sched[i] != again[i] {
			t.Fatalf("schedule not reproducible at %d", i)
		}
	}
}

func TestPoissonScheduleRate(t *testing.T) {
	opts := Options{
		Phases: []Phase{{Name: "p", Rate: 5000, Duration: 2 * time.Second}},
		Keys:   testKeys(10),
		Seed:   7,
	}
	sched, err := buildSchedule(opts)
	if err != nil {
		t.Fatal(err)
	}
	// 10k expected arrivals; Poisson fluctuation at this count is ~1%.
	if n := len(sched); n < 9500 || n > 10500 {
		t.Fatalf("%d arrivals for offered 10000", n)
	}
}

func TestRunReportsOfferedAndAchieved(t *testing.T) {
	target := &fakeTarget{}
	rep, err := Run(context.Background(), Options{
		Phases: []Phase{
			{Name: "warmup", Rate: 500, Duration: 200 * time.Millisecond, Warmup: true},
			{Name: "steady", Rate: 500, Duration: 400 * time.Millisecond},
		},
		Keys:            testKeys(50),
		ReadFraction:    0.5,
		Workers:         8,
		Seed:            3,
		UniformArrivals: true,
	}, target)
	if err != nil {
		t.Fatal(err)
	}
	issued := rep.Get.Issued + rep.Put.Issued
	// The measured phase offered 200 arrivals; warmup's 100 are excluded
	// from the aggregates but still hit the target.
	if issued != 200 {
		t.Fatalf("measured issued = %d, want 200", issued)
	}
	if total := target.reads.Load() + target.writes.Load(); total != 300 {
		t.Fatalf("target served %d, want 300 (incl. warmup)", total)
	}
	if rep.Get.Errors != 0 || rep.Put.Errors != 0 {
		t.Fatalf("unexpected errors: %+v / %+v", rep.Get, rep.Put)
	}
	if rep.MaxSustainedQPS != 500 {
		t.Fatalf("max sustained = %v, want 500", rep.MaxSustainedQPS)
	}
	if len(rep.Phases) != 2 || !rep.Phases[0].Warmup {
		t.Fatalf("phase reports: %+v", rep.Phases)
	}
	// An instant target keeps scheduled-time latency in the millisecond
	// range (timer slack), far under the stall test's floor below.
	if p99 := rep.Get.Latency.P99NS; p99 > int64(100*time.Millisecond) {
		t.Fatalf("instant target p99 = %v", time.Duration(p99))
	}
}

// TestStallChargedToLatency pins the open-loop property: a target that
// stalls every request cannot slow the offered rate down; the backlog
// shows up as scheduled-time latency far above the stall itself.
func TestStallChargedToLatency(t *testing.T) {
	target := &fakeTarget{stall: 20 * time.Millisecond}
	// 2 workers serving 200 offered/sec with a 20ms stall can achieve at
	// most 100/sec: the schedule runs twice as fast as the target can
	// serve, so the last arrivals wait ~half the phase behind schedule.
	rep, err := Run(context.Background(), Options{
		Phases:          []Phase{{Name: "sat", Rate: 200, Duration: 500 * time.Millisecond}},
		Keys:            testKeys(10),
		ReadFraction:    1,
		Workers:         2,
		Seed:            5,
		UniformArrivals: true,
	}, target)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Get.Issued != 100 {
		t.Fatalf("issued %d, want 100", rep.Get.Issued)
	}
	// Max latency must reflect schedule lag (hundreds of ms), not the
	// 20ms per-request stall a closed loop would report.
	if max := rep.Get.Latency.MaxNS; max < int64(100*time.Millisecond) {
		t.Fatalf("max scheduled-time latency %v; coordinated omission not corrected", time.Duration(max))
	}
	if rep.MaxSustainedQPS != 0 {
		t.Fatalf("saturated phase counted as sustained (%v qps)", rep.MaxSustainedQPS)
	}
}

// sheddingTarget serves everything instantly until the offered
// concurrency passes its admission limit, then fails the excess fast
// with ErrOverloaded — a miniature of a gated cluster.
type sheddingTarget struct {
	limit    int64
	inflight atomic.Int64
}

func (s *sheddingTarget) op(ctx context.Context) error {
	if n := s.inflight.Add(1); n > s.limit {
		s.inflight.Add(-1)
		return fmt.Errorf("gated: %w", resilience.ErrOverloaded)
	}
	defer s.inflight.Add(-1)
	select {
	case <-time.After(5 * time.Millisecond):
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *sheddingTarget) Read(ctx context.Context, key string) error { return s.op(ctx) }
func (s *sheddingTarget) Write(ctx context.Context, key string, value []byte) error {
	return s.op(ctx)
}

// TestOverloadScorecard pins the overload accounting: an overload-marked
// phase driven past a shedding target's capacity must be excluded from
// the aggregates and MaxSustainedQPS, its rejections must land in the
// Overloaded bucket (not Timeouts), and the report's overload section
// must score goodput against the sustainable phase.
func TestOverloadScorecard(t *testing.T) {
	// Capacity = limit / service = 8 / 5ms = 1600/s. The measured phase
	// offers 150/s (demand concurrency ~0.75 against a gate of 8); the
	// overload phase offers 6000/s (demand concurrency 30).
	target := &sheddingTarget{limit: 8}
	rep, err := Run(context.Background(), Options{
		Phases: []Phase{
			{Name: "steady", Rate: 150, Duration: time.Second},
			{Name: "spike", Rate: 6000, Duration: 400 * time.Millisecond, Overload: true},
		},
		Keys:            testKeys(20),
		ReadFraction:    0.5,
		Workers:         64,
		Seed:            11,
		UniformArrivals: true,
	}, target)
	if err != nil {
		t.Fatal(err)
	}
	// Aggregates cover only the steady phase's ~150 arrivals, none of
	// the spike's 2400.
	if issued := rep.Get.Issued + rep.Put.Issued; issued < 140 || issued > 160 {
		t.Fatalf("aggregate issued %d, want the steady phase's ~150", issued)
	}
	// The spike rate must never count as sustained, no matter how the
	// steady phase fared on a stalling test box.
	if rep.MaxSustainedQPS > 150 {
		t.Fatalf("max sustained %v includes the overload phase", rep.MaxSustainedQPS)
	}
	ov := rep.Overload
	if ov == nil {
		t.Fatal("report has no overload section")
	}
	spike := rep.Phases[1]
	shed := spike.Get.Overloaded + spike.Put.Overloaded
	if shed == 0 {
		t.Fatalf("overload phase shed nothing: %+v %+v", spike.Get, spike.Put)
	}
	if timeouts := spike.Get.Timeouts + spike.Put.Timeouts; timeouts != 0 {
		t.Fatalf("fast sheds misclassified as timeouts: %d", timeouts)
	}
	if ov.ShedFraction != 1 || ov.TimeoutFraction != 0 {
		t.Fatalf("failure split wrong: shed %v timeout %v", ov.ShedFraction, ov.TimeoutFraction)
	}
	if ov.GoodputQPS <= 0 || ov.GoodputRatio <= 0 {
		t.Fatalf("goodput not scored: %+v", ov)
	}
	if ov.OfferedQPS < 1000 {
		t.Fatalf("overload offered rate %v, want ~1500", ov.OfferedQPS)
	}
}

func TestErrorsCounted(t *testing.T) {
	target := &fakeTarget{}
	target.fail.Store(true)
	rep, err := Run(context.Background(), Options{
		Phases:          []Phase{{Name: "p", Rate: 300, Duration: 300 * time.Millisecond}},
		Keys:            testKeys(10),
		ReadFraction:    0,
		Workers:         4,
		Seed:            9,
		UniformArrivals: true,
	}, target)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Put.Errors != rep.Put.Issued || rep.Put.Acked != 0 {
		t.Fatalf("all ops failed but report says %+v", rep.Put)
	}
	if rep.MaxSustainedQPS != 0 {
		t.Fatalf("error storm counted as sustained")
	}
}
