package topology

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLevelBits(t *testing.T) {
	want := map[Level]uint8{
		Continent:  32,
		Country:    16,
		Datacenter: 8,
		Room:       4,
		Rack:       2,
		Server:     1,
	}
	for l, w := range want {
		if got := l.Bit(); got != w {
			t.Errorf("%s.Bit() = %d, want %d", l, got, w)
		}
	}
}

func TestLevelString(t *testing.T) {
	names := []string{"continent", "country", "datacenter", "room", "rack", "server"}
	for i, want := range names {
		if got := Level(i).String(); got != want {
			t.Errorf("Level(%d).String() = %q, want %q", i, got, want)
		}
	}
	if got := Level(42).String(); got != "level(42)" {
		t.Errorf("Level(42).String() = %q", got)
	}
}

func TestDiversityPaperExample(t *testing.T) {
	// The paper's worked example: same continent, country and datacenter,
	// different room, rack, server => similarity 111000, diversity 7.
	a := Qualified("eu", "ch", "dc0", "room0", "rack0", "srv0")
	b := Qualified("eu", "ch", "dc0", "room1", "rack1", "srv1")
	if sim := Similarity(a, b); sim != 0b111000 {
		t.Errorf("Similarity = %06b, want 111000", sim)
	}
	if d := Diversity(a, b); d != 7 {
		t.Errorf("Diversity = %d, want 7", d)
	}
}

func TestDiversityExtremes(t *testing.T) {
	a := Qualified("eu", "ch", "dc0", "room0", "rack0", "srv0")
	if d := Diversity(a, a); d != 0 {
		t.Errorf("Diversity(a,a) = %d, want 0", d)
	}
	b := Qualified("us", "us-east", "dc9", "room9", "rack9", "srv9")
	if d := Diversity(a, b); d != MaxDiversity {
		t.Errorf("Diversity across continents = %d, want %d", d, MaxDiversity)
	}
}

func TestDiversityAtLevel(t *testing.T) {
	want := map[Level]int{
		Continent:  63,
		Country:    31,
		Datacenter: 15,
		Room:       7,
		Rack:       3,
		Server:     1,
	}
	for l, w := range want {
		if got := DiversityAtLevel(l); got != w {
			t.Errorf("DiversityAtLevel(%s) = %d, want %d", l, got, w)
		}
	}
}

func TestQualifiedHierarchy(t *testing.T) {
	// Sibling subtrees reuse child names; qualification must keep them
	// distinct at the deeper levels.
	a := Qualified("eu", "ch", "dc0", "room0", "rack0", "srv0")
	b := Qualified("eu", "fr", "dc0", "room0", "rack0", "srv0")
	// Different country implies different datacenter/room/rack/server even
	// though the short names match.
	if d := Diversity(a, b); d != 31 {
		t.Errorf("Diversity(different country, same short names) = %d, want 31", d)
	}
}

func TestParsePathRoundTrip(t *testing.T) {
	loc, err := ParsePath("eu/ch/dc0/room0/rack1/srv7")
	if err != nil {
		t.Fatalf("ParsePath: %v", err)
	}
	if got := loc.Path(); got != "eu/ch/dc0/room0/rack1/srv7" {
		t.Errorf("Path() = %q", got)
	}
	if loc.At(Country) != "eu/ch" {
		t.Errorf("country label = %q, want qualified \"eu/ch\"", loc.At(Country))
	}
}

func TestParsePathErrors(t *testing.T) {
	cases := []string{
		"",
		"eu/ch",
		"eu/ch/dc0/room0/rack1/srv7/extra",
		"eu//dc0/room0/rack1/srv7",
	}
	for _, c := range cases {
		if _, err := ParsePath(c); err == nil {
			t.Errorf("ParsePath(%q): want error, got nil", c)
		}
	}
}

func TestMustParsePathPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParsePath on malformed path did not panic")
		}
	}()
	MustParsePath("not/a/location")
}

func TestBuildPaperSpec(t *testing.T) {
	spec := PaperSpec()
	if got := spec.TotalServers(); got != 200 {
		t.Fatalf("PaperSpec total servers = %d, want 200", got)
	}
	sites := MustBuild(spec)
	if len(sites) != 200 {
		t.Fatalf("Build produced %d sites, want 200", len(sites))
	}
	// 10 distinct countries, 20 datacenters, 40 racks.
	countries := map[string]bool{}
	dcs := map[string]bool{}
	racks := map[string]bool{}
	servers := map[string]bool{}
	for i, s := range sites {
		if s.Index != i {
			t.Fatalf("site %d has index %d", i, s.Index)
		}
		if s.Confidence != 1 {
			t.Fatalf("default confidence = %v, want 1", s.Confidence)
		}
		countries[s.Loc.At(Country)] = true
		dcs[s.Loc.At(Datacenter)] = true
		racks[s.Loc.At(Rack)] = true
		servers[s.Loc.At(Server)] = true
	}
	if len(countries) != 10 || len(dcs) != 20 || len(racks) != 40 || len(servers) != 200 {
		t.Errorf("distinct countries/dcs/racks/servers = %d/%d/%d/%d, want 10/20/40/200",
			len(countries), len(dcs), len(racks), len(servers))
	}
}

func TestBuildConfidenceOverride(t *testing.T) {
	spec := PaperSpec()
	spec.ConfidenceByCountry = map[string]float64{"ct0.cn0": 0.5}
	sites := MustBuild(spec)
	seen := false
	for _, s := range sites {
		if s.Loc.At(Country) == "ct0/ct0.cn0" {
			seen = true
			if s.Confidence != 0.5 {
				t.Fatalf("confidence = %v, want 0.5", s.Confidence)
			}
		} else if s.Confidence != 1 {
			t.Fatalf("confidence of %s = %v, want 1", s.Loc, s.Confidence)
		}
	}
	if !seen {
		t.Fatal("country ct0.cn0 not found in built topology")
	}
}

func TestBuildInvalidSpec(t *testing.T) {
	spec := PaperSpec()
	spec.RacksPerRoom = 0
	if _, err := Build(spec); err == nil {
		t.Fatal("Build with zero racks per room: want error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild on invalid spec did not panic")
		}
	}()
	MustBuild(spec)
}

// randomLoc draws a random location from a small hierarchical namespace so
// that collisions at every level are likely.
func randomLoc(r *rand.Rand) Location {
	pick := func(prefix string, n int) string {
		return prefix + string(rune('a'+r.Intn(n)))
	}
	return Qualified(
		pick("ct", 3), pick("cn", 3), pick("dc", 3),
		pick("rm", 2), pick("rk", 2), pick("sv", 4),
	)
}

func TestDiversityPropertySymmetric(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func() bool {
		a, b := randomLoc(r), randomLoc(r)
		return Diversity(a, b) == Diversity(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDiversityPropertyRangeAndIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	f := func() bool {
		a, b := randomLoc(r), randomLoc(r)
		d := Diversity(a, b)
		if d < 0 || d > MaxDiversity {
			return false
		}
		if a == b && d != 0 {
			return false
		}
		if d == 0 && a != b {
			return false
		}
		return Diversity(a, a) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestDiversityPropertyHierarchical(t *testing.T) {
	// For locations built by Qualified, the set of similar levels is always
	// a (possibly empty) prefix of the hierarchy: once a level differs all
	// finer levels differ too. Hence diversity is one of the seven values
	// 0,1,3,7,15,31,63.
	valid := map[int]bool{0: true, 1: true, 3: true, 7: true, 15: true, 31: true, 63: true}
	r := rand.New(rand.NewSource(3))
	f := func() bool {
		a, b := randomLoc(r), randomLoc(r)
		return valid[Diversity(a, b)]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func BenchmarkDiversity(b *testing.B) {
	x := Qualified("eu", "ch", "dc0", "room0", "rack0", "srv0")
	y := Qualified("eu", "ch", "dc1", "room0", "rack1", "srv9")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if Diversity(x, y) == 0 {
			b.Fatal("unexpected zero diversity")
		}
	}
}
