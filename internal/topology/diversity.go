package topology

// MaxDiversity is the diversity of two servers that differ at every level
// of the hierarchy (binary 111111).
const MaxDiversity = 1<<NumLevels - 1

// Similarity compares the location parts of two servers one by one and
// returns the 6-bit similarity word of the paper: the bit of a level is set
// when both servers carry the same label at that level, with the continent
// at the leftmost (most significant) position.
func Similarity(a, b Location) uint8 {
	var sim uint8
	for l := Continent; l <= Server; l++ {
		// Interned ids make equality one integer compare; ids are 0 only
		// for the zero Location, whose labels are empty and equal anyway.
		if a.ids[l] == b.ids[l] {
			sim |= l.Bit()
		}
	}
	return sim
}

// Diversity returns the geographic diversity of two servers: the bitwise
// NOT of their similarity word, as an integer in [0, 63]. Identical
// locations have diversity 0; locations on different continents have
// diversity 63 (the paper's example: similarity 111000 -> diversity
// 000111 = 7 for two servers sharing continent, country and datacenter).
func Diversity(a, b Location) int {
	return int(^Similarity(a, b) & MaxDiversity)
}

// DiversityAtLevel returns the diversity of two servers that share labels
// for every level strictly coarser than l and differ from l downwards —
// the only diversity values that occur inside a hierarchical topology
// (two servers differing at the rack also differ at the server, etc.):
// Server -> 1, Rack -> 3, Room -> 7, Datacenter -> 15, Country -> 31,
// Continent -> 63.
func DiversityAtLevel(l Level) int {
	// Levels l..Server differ: their bits are set in the diversity word.
	var d int
	for lv := l; lv <= Server; lv++ {
		d |= int(lv.Bit())
	}
	return d
}
