package topology

import "fmt"

// Spec describes a regular cloud layout: how many children each level of
// the hierarchy has. The paper's evaluation uses 10 countries spread over
// continents with 2 datacenters per country, 1 room per datacenter,
// 2 racks per room and 5 servers per rack (200 servers).
type Spec struct {
	Continents          int
	CountriesPerCont    int
	DCsPerCountry       int
	RoomsPerDC          int
	RacksPerRoom        int
	ServersPerRack      int
	ConfidenceByCountry map[string]float64 // optional; default confidence is 1
}

// PaperSpec returns the layout of Section III-A: 200 servers in 10
// countries (5 continents x 2 countries), 2 datacenters per country, 1 room
// per datacenter, 2 racks per room, 5 servers per rack.
func PaperSpec() Spec {
	return Spec{
		Continents:       5,
		CountriesPerCont: 2,
		DCsPerCountry:    2,
		RoomsPerDC:       1,
		RacksPerRoom:     2,
		ServersPerRack:   5,
	}
}

// TotalServers returns the number of servers the spec generates.
func (s Spec) TotalServers() int {
	return s.Continents * s.CountriesPerCont * s.DCsPerCountry * s.RoomsPerDC * s.RacksPerRoom * s.ServersPerRack
}

// Validate reports a descriptive error when any branching factor is not
// positive.
func (s Spec) Validate() error {
	checks := []struct {
		name string
		v    int
	}{
		{"continents", s.Continents},
		{"countries per continent", s.CountriesPerCont},
		{"datacenters per country", s.DCsPerCountry},
		{"rooms per datacenter", s.RoomsPerDC},
		{"racks per room", s.RacksPerRoom},
		{"servers per rack", s.ServersPerRack},
	}
	for _, c := range checks {
		if c.v <= 0 {
			return fmt.Errorf("topology: spec has %d %s, need at least 1", c.v, c.name)
		}
	}
	return nil
}

// Site is one generated server slot: a location plus the subjective
// confidence of the hosting site (Eq. 2's conf terms).
type Site struct {
	Index      int // dense index in generation order
	Loc        Location
	Confidence float64
}

// Build enumerates every server slot of the spec in a deterministic order
// (continent-major). Confidence defaults to 1 and can be overridden per
// country through Spec.ConfidenceByCountry keyed by the short country name
// (e.g. "ct0.cn1").
func Build(s Spec) ([]Site, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	sites := make([]Site, 0, s.TotalServers())
	idx := 0
	for ct := 0; ct < s.Continents; ct++ {
		ctName := fmt.Sprintf("ct%d", ct)
		for cn := 0; cn < s.CountriesPerCont; cn++ {
			cnName := fmt.Sprintf("%s.cn%d", ctName, cn)
			conf := 1.0
			if c, ok := s.ConfidenceByCountry[cnName]; ok {
				conf = c
			}
			for dc := 0; dc < s.DCsPerCountry; dc++ {
				dcName := fmt.Sprintf("dc%d", dc)
				for rm := 0; rm < s.RoomsPerDC; rm++ {
					rmName := fmt.Sprintf("room%d", rm)
					for rk := 0; rk < s.RacksPerRoom; rk++ {
						rkName := fmt.Sprintf("rack%d", rk)
						for sv := 0; sv < s.ServersPerRack; sv++ {
							svName := fmt.Sprintf("srv%d", idx)
							sites = append(sites, Site{
								Index:      idx,
								Loc:        Qualified(ctName, cnName, dcName, rmName, rkName, svName),
								Confidence: conf,
							})
							idx++
						}
					}
				}
			}
		}
	}
	return sites, nil
}

// MustBuild is Build that panics on an invalid spec; for tests and fixed
// literals such as PaperSpec().
func MustBuild(s Spec) []Site {
	sites, err := Build(s)
	if err != nil {
		panic(err)
	}
	return sites
}
