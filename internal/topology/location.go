// Package topology models the 6-level geographic hierarchy of Skute
// (ICDE 2010): continent, country, datacenter, room, rack, server.
//
// The paper encodes the geographic distance between two servers as a 6-bit
// word. Each bit corresponds to one level of the hierarchy with the
// continent carrying the leftmost (most significant) bit. Comparing the
// location parts of two servers level by level yields a *similarity* word
// (bit set when the parts are equal); the bitwise NOT of the similarity is
// the *diversity* value used by the availability estimate (Eq. 2) and the
// replica-placement score (Eq. 3). Two servers in the same rack have
// diversity 1, two servers on different continents have diversity 63.
//
// Locations must be built through Qualified, ParsePath or WithLevel: the
// constructors intern every label into a process-wide table so that the
// diversity of two locations — evaluated millions of times per simulated
// epoch — reduces to six integer comparisons.
package topology

import (
	"fmt"
	"strings"
	"sync"
)

// NumLevels is the number of levels in the location hierarchy.
const NumLevels = 6

// Level identifies one tier of the geographic hierarchy, ordered from the
// coarsest (Continent) to the finest (Server).
type Level int

// Hierarchy levels, coarsest first. The continent contributes the most
// significant bit of the similarity/diversity words.
const (
	Continent Level = iota
	Country
	Datacenter
	Room
	Rack
	Server
)

// String returns the lower-case level name.
func (l Level) String() string {
	switch l {
	case Continent:
		return "continent"
	case Country:
		return "country"
	case Datacenter:
		return "datacenter"
	case Room:
		return "room"
	case Rack:
		return "rack"
	case Server:
		return "server"
	default:
		return fmt.Sprintf("level(%d)", int(l))
	}
}

// Bit returns the weight of the level inside a similarity or diversity
// word. Continent is the leftmost bit (weight 32), Server the rightmost
// (weight 1).
func (l Level) Bit() uint8 {
	return 1 << uint(NumLevels-1-int(l))
}

// intern maps every distinct label to a small integer, so label equality
// becomes integer equality, and keeps the reverse table for display. The
// tables only grow at topology-construction time; the hot comparison path
// never touches them.
var (
	internMu sync.RWMutex
	byLabel  = map[string]uint32{}
	labels   = []string{""} // id 0 is the empty label of the zero Location
)

func intern(label string) uint32 {
	internMu.Lock()
	defer internMu.Unlock()
	if id, ok := byLabel[label]; ok {
		return id
	}
	id := uint32(len(labels))
	byLabel[label] = id
	labels = append(labels, label)
	return id
}

func labelOf(id uint32) string {
	internMu.RLock()
	defer internMu.RUnlock()
	return labels[id]
}

// Location places a server inside the hierarchy. Labels are opaque; two
// locations are compared label by label, so labels only need to be unique
// among the children of one parent. The constructors in this package
// always produce fully qualified labels ("eu", "eu/ch", "eu/ch/dc0", ...)
// which makes per-level comparison equivalent to hierarchical comparison
// even when sibling subtrees reuse child names.
//
// Location stores only the interned label ids (24 bytes), so it is cheap
// to copy and compare. It is a comparable value type: two locations built
// from the same labels compare equal, and the zero Location is valid and
// compares different from every constructed one.
type Location struct {
	ids [NumLevels]uint32
}

// At reports the label of the given level.
func (loc Location) At(l Level) string { return labelOf(loc.ids[l]) }

// WithLevel returns a copy of the location with one level's label
// replaced (and interned).
func (loc Location) WithLevel(l Level, label string) Location {
	loc.ids[l] = intern(label)
	return loc
}

// Path renders the location as a slash-separated path, e.g.
// "eu/ch/dc1/room0/rack2/srv42", showing only the last component of each
// fully qualified label to keep the output readable.
func (loc Location) Path() string {
	parts := make([]string, NumLevels)
	for i := range loc.ids {
		p := labelOf(loc.ids[i])
		if idx := strings.LastIndexByte(p, '/'); idx >= 0 {
			p = p[idx+1:]
		}
		parts[i] = p
	}
	return strings.Join(parts[:], "/")
}

// String implements fmt.Stringer.
func (loc Location) String() string { return loc.Path() }

// ParsePath parses a slash-separated path with exactly six components into
// a Location with fully qualified labels, so that sibling subtrees reusing
// component names (e.g. every datacenter having a "room0") still compare
// as different at the deeper levels.
func ParsePath(path string) (Location, error) {
	comps := strings.Split(path, "/")
	if len(comps) != NumLevels {
		return Location{}, fmt.Errorf("topology: path %q must have %d components, has %d", path, NumLevels, len(comps))
	}
	var loc Location
	qualified := ""
	for i, c := range comps {
		if c == "" {
			return Location{}, fmt.Errorf("topology: path %q has an empty component at level %s", path, Level(i))
		}
		if i == 0 {
			qualified = c
		} else {
			qualified += "/" + c
		}
		loc.ids[i] = intern(qualified)
	}
	return loc, nil
}

// MustParsePath is ParsePath that panics on malformed input. Intended for
// tests and literals.
func MustParsePath(path string) Location {
	loc, err := ParsePath(path)
	if err != nil {
		panic(err)
	}
	return loc
}

// Qualified builds a Location from six per-level short names, qualifying
// each label with its ancestors. It is the canonical constructor used by
// the topology builder.
func Qualified(continent, country, datacenter, room, rack, server string) Location {
	var loc Location
	names := [NumLevels]string{continent, country, datacenter, room, rack, server}
	qualified := ""
	for i, n := range names {
		if i == 0 {
			qualified = n
		} else {
			qualified += "/" + n
		}
		loc.ids[i] = intern(qualified)
	}
	return loc
}

// SameAt reports whether the two locations share the label at level l.
func SameAt(a, b Location, l Level) bool { return a.ids[l] == b.ids[l] }
