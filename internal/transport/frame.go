package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// The TCP wire speaks length-prefixed binary frames over persistent
// connections:
//
//	[4B length N] [8B request ID] [1B flags] [1B error code]
//	[2B kind length] [2B error-message length] [kind] [error] [payload]
//
// where N covers everything after the length prefix. Every frame
// carries a request ID: many calls share one socket, requests and
// responses interleave freely, and a slow response never head-of-line
// blocks a fast one behind it. The header is hand-encoded — no
// reflection, no per-call type descriptors — and the opaque payload
// rides as raw bytes (the cluster layer's pooled codec sessions keep
// gob's type descriptors out of the per-call payload too; see
// internal/cluster).
const (
	// flagResponse marks a response frame; requests have no flags.
	flagResponse = 1 << 0
	// frameHeaderBytes is the fixed header size after the length prefix.
	frameHeaderBytes = 8 + 1 + 1 + 2 + 2
	// maxFrameBytes bounds a single frame — a corrupt or hostile length
	// prefix cannot make a reader allocate unbounded memory.
	maxFrameBytes = 64 << 20
	// maxRetainedBufferBytes caps how much staging buffer a connection
	// keeps between frames: one huge anti-entropy transfer must not pin
	// tens of MB on a long-lived pooled connection forever.
	maxRetainedBufferBytes = 1 << 20
	// maxPooledPayloadBytes caps the payload buffers the recycle pool
	// retains — quorum-read and heartbeat payloads are well under this,
	// while a bulk transfer chunk passes through unpooled rather than
	// pinning its buffer for the pool's lifetime.
	maxPooledPayloadBytes = 64 << 10
)

// payloadPool recycles the per-frame payload staging buffers between
// readFrame (which must copy the payload out of the connection's reused
// read buffer) and RecyclePayload. Buffers are stored as *[]byte so
// repooling does not allocate an interface box per slice header.
var payloadPool sync.Pool

// newPayloadBuf hands out a payload buffer of length n, reusing a pooled
// one when it fits. Fresh allocations round their capacity up to a power
// of two (min 1 KiB) so a recycled buffer serves many payload sizes.
func newPayloadBuf(n int) []byte {
	if n > maxPooledPayloadBytes {
		return make([]byte, n) // oversized: bypass the pool entirely
	}
	if bp, _ := payloadPool.Get().(*[]byte); bp != nil && cap(*bp) >= n {
		return (*bp)[:n]
	}
	c := 1 << 10
	for c < n {
		c <<= 1
	}
	return make([]byte, n, c)
}

// RecyclePayload returns a payload buffer to the staging pool. The
// transport calls it for every request payload once its handler returns;
// clients that fully consume a response payload (the cluster layer's gob
// decode copies every byte out) may call it too, turning the per-frame
// payload copy into a pool hit. Callers must not touch the slice
// afterwards. Recycling a slice the pool never produced is harmless —
// oversized or zero-cap buffers are simply dropped.
func RecyclePayload(p []byte) {
	if cap(p) == 0 || cap(p) > maxPooledPayloadBytes {
		return
	}
	p = p[:0]
	payloadPool.Put(&p)
}

// frameSizeError reports a frame that failed validation BEFORE any byte
// reached the socket: the connection is still healthy, so callers must
// surface the error without tearing the stream down.
type frameSizeError struct{ msg string }

func (e *frameSizeError) Error() string { return e.msg }

// frame is the unit on the socket.
type frame struct {
	ID      uint64
	Flags   uint8
	Code    uint8  // ErrorCode of a failed response (0 = success)
	Kind    string // Envelope kind (request) or reply kind (response)
	Err     string // error message of a failed response
	Payload []byte
}

// streamCodec is one connection's codec state: a reusable staging
// buffer so each frame hits the socket as a single write, and a write
// mutex that lets any number of goroutines interleave whole frames on
// the shared socket. The read side is single-consumer (one reader
// goroutine per connection), so it needs no lock.
type streamCodec struct {
	conn net.Conn

	wmu  sync.Mutex
	wbuf []byte
	bw   *bufio.Writer

	br   *bufio.Reader
	rbuf []byte
}

func newStreamCodec(conn net.Conn) *streamCodec {
	return &streamCodec{
		conn: conn,
		bw:   bufio.NewWriter(conn),
		br:   bufio.NewReader(conn),
	}
}

// writeFrame encodes and sends one frame before the deadline (a zero
// deadline leaves the connection's current deadline untouched — the
// fresh-dial path manages it around its cancellation hook). Except for
// *frameSizeError (validation, nothing written), a failed write leaves
// a partial frame on the wire, so callers must treat it as a broken
// connection.
//
// Known limitation: the write mutex is held for one frame's flush, and
// a mutex wait is not context-interruptible — a caller whose deadline
// fires while another goroutine flushes a huge frame to a slow peer
// overshoots until that flush's own write deadline (bounded by
// CallTimeout) releases the lock. An async writer queue would remove
// this; at this store's frame sizes it has not been worth the
// complexity.
func (sc *streamCodec) writeFrame(f *frame, deadline time.Time) error {
	if len(f.Kind) > 0xffff || len(f.Err) > 0xffff {
		return &frameSizeError{msg: fmt.Sprintf("transport: frame kind/error field too long (%d/%d bytes)", len(f.Kind), len(f.Err))}
	}
	n := frameHeaderBytes + len(f.Kind) + len(f.Err) + len(f.Payload)
	if n > maxFrameBytes {
		return &frameSizeError{msg: fmt.Sprintf("transport: frame of %d bytes exceeds the %d byte limit", n, maxFrameBytes)}
	}
	sc.wmu.Lock()
	defer sc.wmu.Unlock()
	if cap(sc.wbuf) < 4+n {
		sc.wbuf = make([]byte, 4+n)
	}
	b := sc.wbuf[:4+n]
	binary.BigEndian.PutUint32(b[0:4], uint32(n))
	binary.BigEndian.PutUint64(b[4:12], f.ID)
	b[12] = f.Flags
	b[13] = f.Code
	binary.BigEndian.PutUint16(b[14:16], uint16(len(f.Kind)))
	binary.BigEndian.PutUint16(b[16:18], uint16(len(f.Err)))
	off := 4 + frameHeaderBytes
	off += copy(b[off:], f.Kind)
	off += copy(b[off:], f.Err)
	copy(b[off:], f.Payload)
	if !deadline.IsZero() {
		if err := sc.conn.SetWriteDeadline(deadline); err != nil {
			return err
		}
	}
	if _, err := sc.bw.Write(b); err != nil {
		return err
	}
	err := sc.bw.Flush()
	if cap(sc.wbuf) > maxRetainedBufferBytes {
		sc.wbuf = nil // an oversized frame must not pin its buffer forever
	}
	return err
}

// readFrame blocks for the next frame. The read buffer is reused across
// frames; the decoded Kind/Err strings are fresh allocations safe to
// retain. The Payload is staged in a buffer from payloadPool: ownership
// passes to the frame's consumer, who may hand it back through
// RecyclePayload once the payload is fully consumed.
func (sc *streamCodec) readFrame(f *frame) error {
	var lenb [4]byte
	if _, err := io.ReadFull(sc.br, lenb[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(lenb[:])
	if n < frameHeaderBytes || n > maxFrameBytes {
		return fmt.Errorf("transport: invalid frame length %d", n)
	}
	if cap(sc.rbuf) < int(n) {
		sc.rbuf = make([]byte, n)
	}
	b := sc.rbuf[:n]
	if _, err := io.ReadFull(sc.br, b); err != nil {
		return err
	}
	f.ID = binary.BigEndian.Uint64(b[0:8])
	f.Flags = b[8]
	f.Code = b[9]
	kindLen := int(binary.BigEndian.Uint16(b[10:12]))
	errLen := int(binary.BigEndian.Uint16(b[12:14]))
	if frameHeaderBytes+kindLen+errLen > int(n) {
		return fmt.Errorf("transport: frame field lengths exceed frame size")
	}
	off := frameHeaderBytes
	f.Kind = string(b[off : off+kindLen])
	off += kindLen
	f.Err = string(b[off : off+errLen])
	off += errLen
	payload := b[off:]
	if len(payload) > 0 {
		f.Payload = newPayloadBuf(len(payload))
		copy(f.Payload, payload)
	} else {
		f.Payload = nil
	}
	if cap(sc.rbuf) > maxRetainedBufferBytes {
		sc.rbuf = nil // see writeFrame: don't pin a huge buffer between frames
	}
	return nil
}
