package transport

import (
	"skute/internal/metrics"
	"skute/internal/telemetry"
)

// Counters are the wire-path observability counters of a TCP transport:
// how the pool behaves (dials vs. reuses vs. evictions) and how much
// traffic is in flight. cmd/skuted exposes them on GET /counters next
// to the control-plane and durability counters.
type Counters struct {
	// Dials counts established outbound connections (pooled and
	// fresh-dial alike).
	Dials metrics.Counter
	// Reuses counts calls served by an already pooled connection — the
	// dials the pool saved.
	Reuses metrics.Counter
	// Evictions counts pooled connections dropped: broken mid-flight,
	// idle-reaped, or evicted because their peer was declared dead.
	Evictions metrics.Counter
	// InFlight is the current number of in-flight request frames across
	// all pooled connections (incremented on send, decremented on
	// response, abandonment or failure).
	InFlight metrics.Counter
	// Retries counts calls re-sent after their pooled connection broke
	// mid-exchange — each one paid a jittered backoff and a retry-budget
	// token first.
	Retries metrics.Counter
	// RetriesDenied counts broken-connection failures that surfaced to
	// the caller because the retry budget or deadline refused the retry.
	RetriesDenied metrics.Counter
}

// Counters exposes the transport's wire counters.
func (t *TCP) Counters() *Counters { return &t.counters }

// PoolSize reports the pooled connection count across all addresses.
func (t *TCP) PoolSize() int {
	t.mu.Lock()
	p := t.clientPool
	t.mu.Unlock()
	if p == nil {
		return 0
	}
	return p.size()
}

// RTT exposes the per-call round-trip histogram (nil on a transport not
// built with NewTCP).
func (t *TCP) RTT() *telemetry.Histogram { return t.rtt }

// RegisterTelemetry attaches the transport's latency histograms to a
// telemetry registry; cmd/skuted serves them on GET /metrics.
func (t *TCP) RegisterTelemetry(reg *telemetry.Registry) {
	if t.rtt == nil {
		t.rtt = telemetry.NewHistogram()
	}
	reg.Register("transport_call_ns", t.rtt)
}

// RegisterMetrics registers the wire counters on the registry under
// stable names, next to the durability and control-plane counters
// cmd/skuted already exports.
func (t *TCP) RegisterMetrics(reg *metrics.Registry) {
	reg.Gauge("transport_dials_total", t.counters.Dials.Value)
	reg.Gauge("transport_conn_reuses_total", t.counters.Reuses.Value)
	reg.Gauge("transport_conn_evictions_total", t.counters.Evictions.Value)
	reg.Gauge("transport_inflight_frames", t.counters.InFlight.Value)
	reg.Gauge("transport_pool_conns", func() int64 { return int64(t.PoolSize()) })
	reg.Gauge("transport_call_retries_total", t.counters.Retries.Value)
	reg.Gauge("transport_call_retries_denied_total", t.counters.RetriesDenied.Value)
}
