package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

func echoHandler(prefix string) Handler {
	return func(ctx context.Context, req Envelope) (Envelope, error) {
		if req.Kind == "boom" {
			return Envelope{}, fmt.Errorf("%s: handler error", prefix)
		}
		return Envelope{Kind: req.Kind + "-reply", Payload: append([]byte(prefix+":"), req.Payload...)}, nil
	}
}

func TestMemoryRoundTrip(t *testing.T) {
	m := NewMemory()
	defer m.Close()
	if err := m.Serve("a", echoHandler("A")); err != nil {
		t.Fatal(err)
	}
	resp, err := m.Call(context.Background(), "a", Envelope{Kind: "ping", Payload: []byte("x")})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Kind != "ping-reply" || string(resp.Payload) != "A:x" {
		t.Errorf("resp = %+v", resp)
	}
}

func TestMemoryUnreachable(t *testing.T) {
	m := NewMemory()
	defer m.Close()
	ctx := context.Background()
	if _, err := m.Call(ctx, "ghost", Envelope{}); !errors.Is(err, ErrUnreachable) {
		t.Errorf("err = %v, want ErrUnreachable", err)
	}
	m.Serve("a", echoHandler("A"))
	m.SetDown("a", true)
	if _, err := m.Call(ctx, "a", Envelope{}); !errors.Is(err, ErrUnreachable) {
		t.Errorf("down endpoint err = %v", err)
	}
	m.SetDown("a", false)
	if _, err := m.Call(ctx, "a", Envelope{Kind: "k"}); err != nil {
		t.Errorf("healed endpoint err = %v", err)
	}
}

func TestMemoryHandlerError(t *testing.T) {
	m := NewMemory()
	defer m.Close()
	m.Serve("a", echoHandler("A"))
	if _, err := m.Call(context.Background(), "a", Envelope{Kind: "boom"}); err == nil || !strings.Contains(err.Error(), "handler error") {
		t.Errorf("err = %v", err)
	}
}

// TestMemoryCancelledContext: a context that is already done fails the
// call with ctx.Err() before the handler runs.
func TestMemoryCancelledContext(t *testing.T) {
	m := NewMemory()
	defer m.Close()
	invoked := false
	m.Serve("a", func(ctx context.Context, req Envelope) (Envelope, error) {
		invoked = true
		return Envelope{}, nil
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.Call(ctx, "a", Envelope{Kind: "k"}); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if invoked {
		t.Error("handler ran despite cancelled context")
	}
}

// TestMemoryContextReachesHandler: the caller's context flows into the
// handler, so nested calls observe the same deadline.
func TestMemoryContextReachesHandler(t *testing.T) {
	m := NewMemory()
	defer m.Close()
	m.Serve("a", func(ctx context.Context, req Envelope) (Envelope, error) {
		if _, ok := ctx.Deadline(); !ok {
			return Envelope{}, errors.New("no deadline in handler context")
		}
		return Envelope{Kind: "ok"}, nil
	})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if _, err := m.Call(ctx, "a", Envelope{Kind: "k"}); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryClosed(t *testing.T) {
	m := NewMemory()
	m.Serve("a", echoHandler("A"))
	m.Close()
	if _, err := m.Call(context.Background(), "a", Envelope{}); !errors.Is(err, ErrUnreachable) {
		t.Errorf("call after close: %v", err)
	}
	if err := m.Serve("b", echoHandler("B")); err == nil {
		t.Error("serve after close accepted")
	}
}

func TestMemoryConcurrentCalls(t *testing.T) {
	m := NewMemory()
	defer m.Close()
	m.Serve("a", echoHandler("A"))
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if _, err := m.Call(context.Background(), "a", Envelope{Kind: "k"}); err != nil {
					t.Errorf("call: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestTCPRoundTrip(t *testing.T) {
	tr := NewTCP()
	defer tr.Close()
	if err := tr.Serve("127.0.0.1:0", echoHandler("S")); err != nil {
		t.Fatal(err)
	}
	addrs := tr.Addrs()
	if len(addrs) != 1 {
		t.Fatalf("addrs = %v", addrs)
	}
	resp, err := tr.Call(context.Background(), addrs[0], Envelope{Kind: "ping", Payload: []byte("hello")})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Kind != "ping-reply" || string(resp.Payload) != "S:hello" {
		t.Errorf("resp = %+v", resp)
	}
}

func TestTCPHandlerErrorPropagates(t *testing.T) {
	tr := NewTCP()
	defer tr.Close()
	if err := tr.Serve("127.0.0.1:0", echoHandler("S")); err != nil {
		t.Fatal(err)
	}
	_, err := tr.Call(context.Background(), tr.Addrs()[0], Envelope{Kind: "boom"})
	if err == nil || !strings.Contains(err.Error(), "handler error") {
		t.Errorf("err = %v", err)
	}
}

func TestTCPUnreachable(t *testing.T) {
	tr := NewTCP()
	defer tr.Close()
	if _, err := tr.Call(context.Background(), "127.0.0.1:1", Envelope{}); !errors.Is(err, ErrUnreachable) {
		t.Errorf("err = %v, want ErrUnreachable", err)
	}
}

// TestTCPContextDeadlineBoundsCall: a short context deadline overrides
// the 10s default exchange timeout — a hung server (accepts, never
// replies) releases the caller when the context expires.
func TestTCPContextDeadlineBoundsCall(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close() // hold the connection open, never respond
		}
	}()

	tr := NewTCP()
	defer tr.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = tr.Call(ctx, ln.Addr().String(), Envelope{Kind: "k"})
	if err == nil {
		t.Fatal("call to hung server succeeded")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("call took %v; the context deadline did not bound the exchange", elapsed)
	}
}

// TestTCPCancellationAbortsCall: cancelling mid-exchange (no deadline)
// releases a caller blocked on a hung server.
func TestTCPCancellationAbortsCall(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
		}
	}()

	tr := NewTCP()
	defer tr.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = tr.Call(ctx, ln.Addr().String(), Envelope{Kind: "k"})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("call took %v; cancellation did not abort the exchange", elapsed)
	}
}

// TestTCPPreCancelledContext: an already-cancelled context fails before
// dialing.
func TestTCPPreCancelledContext(t *testing.T) {
	tr := NewTCP()
	defer tr.Close()
	if err := tr.Serve("127.0.0.1:0", echoHandler("S")); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := tr.Call(ctx, tr.Addrs()[0], Envelope{Kind: "k"}); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestTCPConcurrentCalls(t *testing.T) {
	tr := NewTCP()
	defer tr.Close()
	if err := tr.Serve("127.0.0.1:0", echoHandler("S")); err != nil {
		t.Fatal(err)
	}
	addr := tr.Addrs()[0]
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				if _, err := tr.Call(context.Background(), addr, Envelope{Kind: "k"}); err != nil {
					t.Errorf("call: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestTCPCloseStopsServing(t *testing.T) {
	tr := NewTCP()
	if err := tr.Serve("127.0.0.1:0", echoHandler("S")); err != nil {
		t.Fatal(err)
	}
	addr := tr.Addrs()[0]
	tr.Close()
	if _, err := tr.Call(context.Background(), addr, Envelope{Kind: "k"}); err == nil {
		t.Error("call succeeded after close")
	}
	if err := tr.Serve("127.0.0.1:0", echoHandler("S")); err == nil {
		t.Error("serve after close accepted")
	}
}

func BenchmarkMemoryCall(b *testing.B) {
	m := NewMemory()
	defer m.Close()
	m.Serve("a", echoHandler("A"))
	env := Envelope{Kind: "k", Payload: []byte("payload")}
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Call(ctx, "a", env); err != nil {
			b.Fatal(err)
		}
	}
}
