package transport

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func echoHandler(prefix string) Handler {
	return func(req Envelope) (Envelope, error) {
		if req.Kind == "boom" {
			return Envelope{}, fmt.Errorf("%s: handler error", prefix)
		}
		return Envelope{Kind: req.Kind + "-reply", Payload: append([]byte(prefix+":"), req.Payload...)}, nil
	}
}

func TestMemoryRoundTrip(t *testing.T) {
	m := NewMemory()
	defer m.Close()
	if err := m.Serve("a", echoHandler("A")); err != nil {
		t.Fatal(err)
	}
	resp, err := m.Call("a", Envelope{Kind: "ping", Payload: []byte("x")})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Kind != "ping-reply" || string(resp.Payload) != "A:x" {
		t.Errorf("resp = %+v", resp)
	}
}

func TestMemoryUnreachable(t *testing.T) {
	m := NewMemory()
	defer m.Close()
	if _, err := m.Call("ghost", Envelope{}); !errors.Is(err, ErrUnreachable) {
		t.Errorf("err = %v, want ErrUnreachable", err)
	}
	m.Serve("a", echoHandler("A"))
	m.SetDown("a", true)
	if _, err := m.Call("a", Envelope{}); !errors.Is(err, ErrUnreachable) {
		t.Errorf("down endpoint err = %v", err)
	}
	m.SetDown("a", false)
	if _, err := m.Call("a", Envelope{Kind: "k"}); err != nil {
		t.Errorf("healed endpoint err = %v", err)
	}
}

func TestMemoryHandlerError(t *testing.T) {
	m := NewMemory()
	defer m.Close()
	m.Serve("a", echoHandler("A"))
	if _, err := m.Call("a", Envelope{Kind: "boom"}); err == nil || !strings.Contains(err.Error(), "handler error") {
		t.Errorf("err = %v", err)
	}
}

func TestMemoryClosed(t *testing.T) {
	m := NewMemory()
	m.Serve("a", echoHandler("A"))
	m.Close()
	if _, err := m.Call("a", Envelope{}); !errors.Is(err, ErrUnreachable) {
		t.Errorf("call after close: %v", err)
	}
	if err := m.Serve("b", echoHandler("B")); err == nil {
		t.Error("serve after close accepted")
	}
}

func TestMemoryConcurrentCalls(t *testing.T) {
	m := NewMemory()
	defer m.Close()
	m.Serve("a", echoHandler("A"))
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if _, err := m.Call("a", Envelope{Kind: "k"}); err != nil {
					t.Errorf("call: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestTCPRoundTrip(t *testing.T) {
	tr := NewTCP()
	defer tr.Close()
	if err := tr.Serve("127.0.0.1:0", echoHandler("S")); err != nil {
		t.Fatal(err)
	}
	addrs := tr.Addrs()
	if len(addrs) != 1 {
		t.Fatalf("addrs = %v", addrs)
	}
	resp, err := tr.Call(addrs[0], Envelope{Kind: "ping", Payload: []byte("hello")})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Kind != "ping-reply" || string(resp.Payload) != "S:hello" {
		t.Errorf("resp = %+v", resp)
	}
}

func TestTCPHandlerErrorPropagates(t *testing.T) {
	tr := NewTCP()
	defer tr.Close()
	if err := tr.Serve("127.0.0.1:0", echoHandler("S")); err != nil {
		t.Fatal(err)
	}
	_, err := tr.Call(tr.Addrs()[0], Envelope{Kind: "boom"})
	if err == nil || !strings.Contains(err.Error(), "handler error") {
		t.Errorf("err = %v", err)
	}
}

func TestTCPUnreachable(t *testing.T) {
	tr := NewTCP()
	defer tr.Close()
	if _, err := tr.Call("127.0.0.1:1", Envelope{}); !errors.Is(err, ErrUnreachable) {
		t.Errorf("err = %v, want ErrUnreachable", err)
	}
}

func TestTCPConcurrentCalls(t *testing.T) {
	tr := NewTCP()
	defer tr.Close()
	if err := tr.Serve("127.0.0.1:0", echoHandler("S")); err != nil {
		t.Fatal(err)
	}
	addr := tr.Addrs()[0]
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				if _, err := tr.Call(addr, Envelope{Kind: "k"}); err != nil {
					t.Errorf("call: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestTCPCloseStopsServing(t *testing.T) {
	tr := NewTCP()
	if err := tr.Serve("127.0.0.1:0", echoHandler("S")); err != nil {
		t.Fatal(err)
	}
	addr := tr.Addrs()[0]
	tr.Close()
	if _, err := tr.Call(addr, Envelope{Kind: "k"}); err == nil {
		t.Error("call succeeded after close")
	}
	if err := tr.Serve("127.0.0.1:0", echoHandler("S")); err == nil {
		t.Error("serve after close accepted")
	}
}

func BenchmarkMemoryCall(b *testing.B) {
	m := NewMemory()
	defer m.Close()
	m.Serve("a", echoHandler("A"))
	env := Envelope{Kind: "k", Payload: []byte("payload")}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Call("a", env); err != nil {
			b.Fatal(err)
		}
	}
}
