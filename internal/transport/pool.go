package transport

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"time"

	"skute/internal/resilience"
)

// Pool policy defaults (overridable per TCP instance).
const (
	// defaultMaxConnsPerAddr bounds the pool per peer address.
	defaultMaxConnsPerAddr = 4
	// defaultIdleTimeout reaps pooled connections idle this long.
	defaultIdleTimeout = 60 * time.Second
	// busyInflightThreshold is the in-flight count above which the pool
	// prefers dialing another connection (up to the per-address bound)
	// over multiplexing more calls onto an already loaded one.
	busyInflightThreshold = 8
)

// dialBackoff paces re-dials after a lost coalesced dial (the winner's
// dial failed). Attempts are unbounded — the caller's context, not a
// count, decides when to give up — and there is no budget: the dials
// themselves are already coalesced, the jitter only de-synchronizes the
// waiters.
var dialBackoff = resilience.RetryPolicy{
	MaxAttempts: math.MaxInt,
	BaseDelay:   2 * time.Millisecond,
	MaxDelay:    250 * time.Millisecond,
}

// callResult is what a waiting caller receives: a response frame, or
// the connection-level failure that voided the exchange.
type callResult struct {
	f   *frame
	err error
}

// brokenConnError marks a connection-level failure (as opposed to a
// handler error that arrived in a well-formed response frame). The Call
// retry loop uses it to decide that a pooled connection went stale and
// one retry on a fresh dial is warranted.
type brokenConnError struct{ err error }

func (e *brokenConnError) Error() string { return e.err.Error() }
func (e *brokenConnError) Unwrap() error { return e.err }

// mconn is one pooled, multiplexed connection: a dedicated reader
// goroutine demultiplexes response frames to waiting callers by request
// ID while writers interleave request frames through the codec's write
// mutex.
type mconn struct {
	addr string
	conn net.Conn
	sc   *streamCodec
	t    *TCP
	p    *pool

	// mu guards the demux state.
	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan callResult
	broken  bool

	// inflight/idleSince are pool bookkeeping, guarded by the pool's
	// mutex (not mu).
	inflight  int
	idleSince time.Time
}

// readLoop is the connection's single reader: it routes response frames
// to their callers and, on any read error, fails every pending call and
// evicts the connection from the pool.
func (mc *mconn) readLoop() {
	for {
		var f frame
		if err := mc.sc.readFrame(&f); err != nil {
			mc.fail(fmt.Errorf("%w: %s: connection lost: %v", ErrUnreachable, mc.addr, err))
			return
		}
		if f.Flags&flagResponse == 0 {
			RecyclePayload(f.Payload)
			continue // not ours to handle; tolerate and keep the stream alive
		}
		mc.mu.Lock()
		ch, ok := mc.pending[f.ID]
		delete(mc.pending, f.ID)
		mc.mu.Unlock()
		if ok {
			fc := f
			ch <- callResult{f: &fc} // buffered: never blocks the reader
		} else {
			// A late response whose caller already gave up: nobody will
			// consume the payload, so return its staging buffer now.
			RecyclePayload(f.Payload)
		}
	}
}

// fail marks the connection broken exactly once: every pending call
// learns the failure, the socket closes, and the pool evicts the
// connection.
func (mc *mconn) fail(err error) {
	mc.mu.Lock()
	if mc.broken {
		mc.mu.Unlock()
		return
	}
	mc.broken = true
	pending := mc.pending
	mc.pending = nil
	mc.mu.Unlock()
	for _, ch := range pending {
		ch <- callResult{err: err}
	}
	mc.conn.Close()
	mc.p.evict(mc)
}

// deregister abandons a pending call (context cancellation, fallback
// timeout). A response arriving later is discarded by the reader.
func (mc *mconn) deregister(id uint64) {
	mc.mu.Lock()
	delete(mc.pending, id)
	mc.mu.Unlock()
}

// resultChanPool recycles the per-call result channels. A channel is
// repooled only on the clean response path: an abandoned call's channel
// may still receive a late frame from the reader, so it must never be
// handed to another call.
var resultChanPool = sync.Pool{New: func() any { return make(chan callResult, 1) }}

// roundTrip runs one multiplexed exchange. timeout bounds the wait only
// when the context carries no deadline, mirroring the old CallTimeout
// contract.
func (mc *mconn) roundTrip(ctx context.Context, req Envelope, timeout time.Duration) (Envelope, error) {
	ch := resultChanPool.Get().(chan callResult)
	mc.mu.Lock()
	if mc.broken {
		mc.mu.Unlock()
		return Envelope{}, &brokenConnError{err: fmt.Errorf("%w: %s: connection broken", ErrUnreachable, mc.addr)}
	}
	mc.nextID++
	id := mc.nextID
	mc.pending[id] = ch
	mc.mu.Unlock()

	mc.t.counters.InFlight.Add(1)
	defer mc.t.counters.InFlight.Add(-1)

	deadline, hasDeadline := ctx.Deadline()
	var timeoutC <-chan time.Time
	if !hasDeadline {
		deadline = time.Now().Add(timeout)
		timer := time.NewTimer(timeout)
		defer timer.Stop()
		timeoutC = timer.C
	}
	// A deadline that expired while waiting for the connection (dial,
	// coalescing) must fail HERE, caller-local: nothing is on the wire
	// yet, so the shared socket stays healthy for everyone else.
	if err := ctx.Err(); err != nil {
		mc.deregister(id)
		return Envelope{}, err
	}
	if err := mc.sc.writeFrame(&frame{ID: id, Kind: req.Kind, Payload: req.Payload}, deadline); err != nil {
		mc.deregister(id)
		// A validation failure wrote nothing: the connection is still
		// healthy, so surface the error to this caller alone instead of
		// collaterally failing every in-flight call on the shared socket.
		var fse *frameSizeError
		if errors.As(err, &fse) {
			return Envelope{}, fmt.Errorf("transport: call to %s: %v", mc.addr, err)
		}
		// Any other write failure may have left a partial frame on the
		// wire, so the stream is unusable either way — but if the
		// caller's own deadline expired mid-write, report THAT, not a
		// phantom unreachable peer.
		mc.fail(fmt.Errorf("%w: %s: write failed: %v", ErrUnreachable, mc.addr, err))
		if ctxErr := ctxError(ctx); ctxErr != nil {
			return Envelope{}, ctxErr
		}
		return Envelope{}, &brokenConnError{err: fmt.Errorf("%w: %s: write failed: %v", ErrUnreachable, mc.addr, err)}
	}
	select {
	case res := <-ch:
		resultChanPool.Put(ch) // delivered: no late send can follow
		if res.err != nil {
			return Envelope{}, &brokenConnError{err: res.err}
		}
		if res.f.Code != 0 {
			return Envelope{}, CodeToError(ErrorCode(res.f.Code), res.f.Err)
		}
		return Envelope{Kind: res.f.Kind, Payload: res.f.Payload}, nil
	case <-ctx.Done():
		mc.deregister(id)
		return Envelope{}, ctx.Err()
	case <-timeoutC:
		mc.deregister(id)
		return Envelope{}, fmt.Errorf("transport: call to %s timed out after %v", mc.addr, timeout)
	}
}

// pool is the per-TCP client connection pool: bounded per address, with
// dial coalescing (concurrent cold calls to one address share a single
// dial) and a background reaper for idle connections.
type pool struct {
	t *TCP

	mu      sync.Mutex
	conns   map[string][]*mconn
	dialing map[string]chan struct{}
	closed  bool
	done    chan struct{}
}

func newPool(t *TCP) *pool {
	p := &pool{
		t:       t,
		conns:   make(map[string][]*mconn),
		dialing: make(map[string]chan struct{}),
		done:    make(chan struct{}),
	}
	go p.reapLoop()
	return p
}

// get hands out a connection for one call, dialing when the pool is
// cold or every pooled connection is loaded past the multiplexing
// threshold (and the per-address bound allows another socket). reused
// reports whether the connection predates this call — the signal that a
// broken exchange deserves a retry. The retry path goes through get
// like everyone else (broken connections were already evicted), so the
// per-address bound and dial coalescing hold even when a mass
// connection break sends every in-flight call here at once — no dial
// storm.
func (p *pool) get(ctx context.Context, addr string) (mc *mconn, reused bool, err error) {
	// waited counts coalesced dials this call already lost (woke up and
	// found no usable connection — the winner's dial failed). Before
	// such a call starts its own dial it sleeps a jittered backoff, so
	// the waiters of a failed dial fan out over time instead of
	// re-dialing the dead peer in lockstep.
	waited := 0
	for {
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			return nil, false, fmt.Errorf("transport: tcp transport closed")
		}
		list := p.pruneLocked(addr)
		if len(list) > 0 {
			best := list[0]
			for _, c := range list[1:] {
				if c.inflight < best.inflight {
					best = c
				}
			}
			if best.inflight < busyInflightThreshold || len(list) >= p.t.maxConnsPerAddr() {
				best.inflight++
				p.mu.Unlock()
				p.t.counters.Reuses.Inc()
				return best, true, nil
			}
		}
		if ch, inFlight := p.dialing[addr]; inFlight {
			p.mu.Unlock()
			select {
			case <-ch: // coalesced: reuse the winner's connection
				waited++
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
			continue
		}
		if waited > 0 {
			// The dial this call coalesced onto failed. Back off with
			// full jitter before dialing ourselves; deadline-aware, so a
			// caller with no remaining budget fails now instead of
			// sleeping into its timeout.
			p.mu.Unlock()
			if !dialBackoff.Retry(ctx, waited) {
				if err := ctxError(ctx); err != nil {
					return nil, false, err
				}
				return nil, false, fmt.Errorf("%w: %s: dial failed", ErrUnreachable, addr)
			}
			waited = 0
			continue // re-check the pool: the backoff may have outlived a recovery
		}
		ch := make(chan struct{})
		p.dialing[addr] = ch
		p.mu.Unlock()

		conn, derr := p.t.dial(ctx, addr)
		p.mu.Lock()
		delete(p.dialing, addr)
		close(ch)
		if derr != nil {
			p.mu.Unlock()
			return nil, false, derr
		}
		if p.closed {
			p.mu.Unlock()
			conn.Close()
			return nil, false, fmt.Errorf("transport: tcp transport closed")
		}
		mc = &mconn{addr: addr, conn: conn, sc: newStreamCodec(conn), t: p.t, p: p, pending: make(map[uint64]chan callResult)}
		mc.inflight = 1
		p.conns[addr] = append(p.conns[addr], mc)
		p.mu.Unlock()
		go mc.readLoop()
		return mc, false, nil
	}
}

// put returns a connection after a call completed (in any way).
func (p *pool) put(mc *mconn) {
	p.mu.Lock()
	mc.inflight--
	if mc.inflight <= 0 {
		mc.idleSince = time.Now()
	}
	p.mu.Unlock()
}

// pruneLocked drops broken connections from the address's slice. A
// broken connection leaves the pool exactly once — through here or
// through evict, whichever runs first — and whoever removes it counts
// the eviction. Callers hold p.mu.
func (p *pool) pruneLocked(addr string) []*mconn {
	list := p.conns[addr]
	kept := list[:0]
	for _, c := range list {
		c.mu.Lock()
		broken := c.broken
		c.mu.Unlock()
		if !broken {
			kept = append(kept, c)
		} else {
			p.t.counters.Evictions.Inc()
		}
	}
	if len(kept) == 0 {
		delete(p.conns, addr)
		return nil
	}
	p.conns[addr] = kept
	return kept
}

// evict removes the connection from the pool (counted once) and closes
// its socket.
func (p *pool) evict(mc *mconn) {
	p.mu.Lock()
	list := p.conns[mc.addr]
	for i, c := range list {
		if c == mc {
			list = append(list[:i], list[i+1:]...)
			if len(list) == 0 {
				delete(p.conns, mc.addr)
			} else {
				p.conns[mc.addr] = list
			}
			p.t.counters.Evictions.Inc()
			break
		}
	}
	p.mu.Unlock()
	mc.conn.Close()
}

// evictAddr drops every pooled connection to the address — used when a
// peer is declared dead so sockets to it don't linger until the reaper.
func (p *pool) evictAddr(addr string) {
	p.mu.Lock()
	list := p.conns[addr]
	delete(p.conns, addr)
	p.t.counters.Evictions.Add(int64(len(list)))
	p.mu.Unlock()
	for _, mc := range list {
		mc.conn.Close() // readLoop observes the close and fails pending calls
	}
}

// size reports the pooled connection count across all addresses.
func (p *pool) size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, list := range p.conns {
		n += len(list)
	}
	return n
}

// reapLoop closes connections idle past the idle timeout.
func (p *pool) reapLoop() {
	for {
		idle := p.t.idleTimeout()
		tick := idle / 2
		if tick < 10*time.Millisecond {
			tick = 10 * time.Millisecond
		}
		timer := time.NewTimer(tick)
		select {
		case <-p.done:
			timer.Stop()
			return
		case <-timer.C:
		}
		now := time.Now()
		var reap []*mconn
		p.mu.Lock()
		for _, list := range p.conns {
			for _, c := range list {
				if c.inflight <= 0 && now.Sub(c.idleSince) >= idle {
					reap = append(reap, c)
				}
			}
		}
		p.mu.Unlock()
		for _, c := range reap {
			p.evict(c)
		}
	}
}

// close tears the pool down: every pooled connection closes (their
// readers fail any in-flight calls) and the reaper stops.
func (p *pool) close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	var all []*mconn
	for _, list := range p.conns {
		all = append(all, list...)
	}
	p.conns = make(map[string][]*mconn)
	p.mu.Unlock()
	close(p.done)
	for _, mc := range all {
		mc.conn.Close()
	}
}
