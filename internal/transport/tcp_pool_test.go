package transport

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"skute/internal/metrics"
)

// TestTCPPoolReusesConnections: sequential calls to one address share a
// single pooled connection — the dial counter observes exactly one dial.
func TestTCPPoolReusesConnections(t *testing.T) {
	srv := NewTCP()
	defer srv.Close()
	if err := srv.Serve("127.0.0.1:0", echoHandler("S")); err != nil {
		t.Fatal(err)
	}
	addr := srv.Addrs()[0]

	cli := NewTCP()
	defer cli.Close()
	ctx := context.Background()
	for i := 0; i < 50; i++ {
		if _, err := cli.Call(ctx, addr, Envelope{Kind: "k"}); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if dials := cli.Counters().Dials.Value(); dials != 1 {
		t.Errorf("50 sequential calls used %d dials, want 1", dials)
	}
	if reuses := cli.Counters().Reuses.Value(); reuses != 49 {
		t.Errorf("reuses = %d, want 49", reuses)
	}
	if size := cli.PoolSize(); size != 1 {
		t.Errorf("pool size = %d, want 1", size)
	}

	// The counters register on a metrics.Registry under stable names
	// (cmd/skuted exposes them on GET /counters).
	reg := metrics.NewRegistry()
	cli.RegisterMetrics(reg)
	snap := reg.Snapshot()
	if snap["transport_dials_total"] != 1 || snap["transport_conn_reuses_total"] != 49 ||
		snap["transport_pool_conns"] != 1 || snap["transport_inflight_frames"] != 0 {
		t.Errorf("registry snapshot = %v", snap)
	}
	if _, ok := snap["transport_conn_evictions_total"]; !ok {
		t.Errorf("evictions counter missing from registry: %v", snap)
	}
}

// TestTCPPoolEvictsBrokenConn: a pooled connection the server closed
// between calls is evicted and the call retried on a fresh dial — the
// caller never sees the stale socket.
func TestTCPPoolEvictsBrokenConn(t *testing.T) {
	srv := NewTCP()
	defer srv.Close()
	if err := srv.Serve("127.0.0.1:0", echoHandler("S")); err != nil {
		t.Fatal(err)
	}
	addr := srv.Addrs()[0]

	cli := NewTCP()
	defer cli.Close()
	ctx := context.Background()
	if _, err := cli.Call(ctx, addr, Envelope{Kind: "k"}); err != nil {
		t.Fatal(err)
	}

	// Break the pooled connection from the server side and wait for the
	// client reader to notice the close.
	srv.mu.Lock()
	for c := range srv.serverConns {
		c.Close()
	}
	srv.mu.Unlock()
	deadline := time.Now().Add(2 * time.Second)
	for cli.Counters().Evictions.Value() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	// The next call must succeed via a fresh dial.
	if _, err := cli.Call(ctx, addr, Envelope{Kind: "k"}); err != nil {
		t.Fatalf("call after broken conn: %v", err)
	}
	if ev := cli.Counters().Evictions.Value(); ev < 1 {
		t.Errorf("evictions = %d, want >= 1", ev)
	}
	if dials := cli.Counters().Dials.Value(); dials != 2 {
		t.Errorf("dials = %d, want 2 (original + fresh redial)", dials)
	}
}

// TestTCPPoolRetriesBrokenMidflight: a connection that dies while a
// call is in flight fails the call over to one retry on a fresh dial,
// transparently to the caller.
func TestTCPPoolRetriesBrokenMidflight(t *testing.T) {
	srv := NewTCP()
	defer srv.Close()
	died := false
	var mu sync.Mutex
	if err := srv.Serve("127.0.0.1:0", func(ctx context.Context, req Envelope) (Envelope, error) {
		mu.Lock()
		firstDie := req.Kind == "die" && !died
		if firstDie {
			died = true
		}
		mu.Unlock()
		if firstDie {
			// Kill every server connection instead of answering: the
			// client's in-flight call observes a mid-flight break.
			srv.mu.Lock()
			for c := range srv.serverConns {
				c.Close()
			}
			srv.mu.Unlock()
			return Envelope{}, nil
		}
		return Envelope{Kind: "ok"}, nil
	}); err != nil {
		t.Fatal(err)
	}
	addr := srv.Addrs()[0]

	cli := NewTCP()
	defer cli.Close()
	ctx := context.Background()
	// Seed the pool so the dying call happens on a REUSED connection
	// (fresh-dial failures are not retried).
	if _, err := cli.Call(ctx, addr, Envelope{Kind: "warm"}); err != nil {
		t.Fatal(err)
	}
	resp, err := cli.Call(ctx, addr, Envelope{Kind: "die"})
	if err != nil {
		t.Fatalf("mid-flight break was not retried: %v", err)
	}
	if resp.Kind != "ok" {
		t.Errorf("resp = %+v", resp)
	}
	if ev := cli.Counters().Evictions.Value(); ev < 1 {
		t.Errorf("evictions = %d, want >= 1", ev)
	}
}

// TestTCPMultiplexingNoHeadOfLineBlocking: a stalled data-plane request
// does not delay a concurrent heartbeat on the same peer — both calls
// share one pooled connection (one dial), yet the fast call completes
// while the slow one is still pending.
func TestTCPMultiplexingNoHeadOfLineBlocking(t *testing.T) {
	release := make(chan struct{})
	stalled := make(chan struct{})
	var once sync.Once
	srv := NewTCP()
	defer srv.Close()
	if err := srv.Serve("127.0.0.1:0", func(ctx context.Context, req Envelope) (Envelope, error) {
		if req.Kind == "data-plane" {
			once.Do(func() { close(stalled) })
			select {
			case <-release:
			case <-ctx.Done():
			}
		}
		return Envelope{Kind: req.Kind + "-reply"}, nil
	}); err != nil {
		t.Fatal(err)
	}
	addr := srv.Addrs()[0]

	cli := NewTCP()
	defer cli.Close()
	ctx := context.Background()

	slowDone := make(chan error, 1)
	go func() {
		_, err := cli.Call(ctx, addr, Envelope{Kind: "data-plane"})
		slowDone <- err
	}()
	<-stalled // the data-plane request is now stuck inside its handler

	start := time.Now()
	hbCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if _, err := cli.Call(hbCtx, addr, Envelope{Kind: "heartbeat"}); err != nil {
		t.Fatalf("heartbeat behind a stalled data-plane request: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("heartbeat took %v behind a stalled request — head-of-line blocking", elapsed)
	}
	select {
	case err := <-slowDone:
		t.Fatalf("data-plane call finished early: %v", err)
	default:
	}
	close(release)
	if err := <-slowDone; err != nil {
		t.Fatalf("released data-plane call: %v", err)
	}
	if dials := cli.Counters().Dials.Value(); dials != 1 {
		t.Errorf("dials = %d, want 1 (both calls must share one socket)", dials)
	}
}

// TestTCPConcurrentMultiplexedCalls: many goroutines hammer one address;
// everything completes under -race and the pool stays within its
// per-address bound.
func TestTCPConcurrentMultiplexedCalls(t *testing.T) {
	srv := NewTCP()
	defer srv.Close()
	if err := srv.Serve("127.0.0.1:0", echoHandler("S")); err != nil {
		t.Fatal(err)
	}
	addr := srv.Addrs()[0]

	cli := NewTCP()
	defer cli.Close()
	ctx := context.Background()
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				env := Envelope{Kind: "k", Payload: []byte(fmt.Sprintf("%d-%d", i, j))}
				resp, err := cli.Call(ctx, addr, env)
				if err != nil {
					t.Errorf("call: %v", err)
					return
				}
				if want := "S:" + string(env.Payload); string(resp.Payload) != want {
					t.Errorf("resp payload = %q, want %q (cross-wired multiplexing?)", resp.Payload, want)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if size := cli.PoolSize(); size > cli.maxConnsPerAddr() {
		t.Errorf("pool size %d exceeds the per-address bound %d", size, cli.maxConnsPerAddr())
	}
	if inflight := cli.Counters().InFlight.Value(); inflight != 0 {
		t.Errorf("in-flight frames = %d after all calls returned, want 0", inflight)
	}
}

// TestTCPIdleReaping: a pooled connection idle past IdleTimeout is
// closed by the reaper.
func TestTCPIdleReaping(t *testing.T) {
	srv := NewTCP()
	defer srv.Close()
	if err := srv.Serve("127.0.0.1:0", echoHandler("S")); err != nil {
		t.Fatal(err)
	}
	cli := NewTCP()
	cli.IdleTimeout = 30 * time.Millisecond
	defer cli.Close()
	if _, err := cli.Call(context.Background(), srv.Addrs()[0], Envelope{Kind: "k"}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for cli.PoolSize() > 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if size := cli.PoolSize(); size != 0 {
		t.Errorf("pool size = %d after idle timeout, want 0", size)
	}
}

// TestTCPCloseClosesActiveConns: Close tears down pooled and
// established connections, not just listeners — an in-flight call is
// released with an error instead of stranding until its timeout.
func TestTCPCloseClosesActiveConns(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	srv := NewTCP()
	if err := srv.Serve("127.0.0.1:0", func(ctx context.Context, req Envelope) (Envelope, error) {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return Envelope{Kind: "late"}, nil
	}); err != nil {
		t.Fatal(err)
	}
	addr := srv.Addrs()[0]

	cli := NewTCP()
	done := make(chan error, 1)
	go func() {
		_, err := cli.Call(context.Background(), addr, Envelope{Kind: "k"})
		done <- err
	}()
	// Wait until the call is in flight, then close the CLIENT transport:
	// the pooled connection must close and release the caller.
	deadline := time.Now().Add(2 * time.Second)
	for cli.Counters().InFlight.Value() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	cli.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Error("in-flight call succeeded after Close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight call stranded after Close")
	}

	// Closing the SERVER transport closes its established sockets too: a
	// fresh client's pooled connection observes the close promptly.
	cli2 := NewTCP()
	defer cli2.Close()
	if _, err := cli2.Call(context.Background(), addr, Envelope{Kind: "k2"}); err == nil {
		t.Log("first call served before close (handler blocked)") // the call blocks in the handler; expected to fail below
	}
	srv.Close()
	if _, err := cli2.Call(context.Background(), addr, Envelope{Kind: "k3"}); err == nil {
		t.Error("call succeeded after the server transport closed")
	}
}

// TestTCPCloseReleasesGoroutines: after Close, the transport's reader,
// reaper and server goroutines all exit — no leaks.
func TestTCPCloseReleasesGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()

	srv := NewTCP()
	if err := srv.Serve("127.0.0.1:0", echoHandler("S")); err != nil {
		t.Fatal(err)
	}
	addr := srv.Addrs()[0]
	cli := NewTCP()
	ctx := context.Background()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				if _, err := cli.Call(ctx, addr, Envelope{Kind: "k"}); err != nil {
					t.Errorf("call: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	cli.Close()
	srv.Close()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 { // tolerate runtime noise
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines: %d before, %d after Close — leak", before, runtime.NumGoroutine())
}

// TestTCPDialCoalescing: concurrent cold calls to one address share a
// single dial instead of racing N sockets open.
func TestTCPDialCoalescing(t *testing.T) {
	srv := NewTCP()
	defer srv.Close()
	if err := srv.Serve("127.0.0.1:0", echoHandler("S")); err != nil {
		t.Fatal(err)
	}
	addr := srv.Addrs()[0]

	cli := NewTCP()
	defer cli.Close()
	ctx := context.Background()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := cli.Call(ctx, addr, Envelope{Kind: "k"}); err != nil {
				t.Errorf("call: %v", err)
			}
		}()
	}
	wg.Wait()
	// All 16 cold calls arrive together; coalescing must keep the dial
	// count well under one-per-call (the first dial completes and the
	// waiters multiplex onto it, modulo the busy threshold).
	if dials := cli.Counters().Dials.Value(); dials > int64(cli.maxConnsPerAddr()) {
		t.Errorf("16 concurrent cold calls used %d dials, want <= %d", dials, cli.maxConnsPerAddr())
	}
}

// TestTCPErrorCodesRoundTrip: typed sentinels returned by a handler
// cross the wire as codes and match errors.Is on the caller's side,
// with the remote message preserved.
func TestTCPErrorCodesRoundTrip(t *testing.T) {
	srv := NewTCP()
	defer srv.Close()
	if err := srv.Serve("127.0.0.1:0", func(ctx context.Context, req Envelope) (Envelope, error) {
		switch req.Kind {
		case "unreachable":
			return Envelope{}, fmt.Errorf("%w: peer n3", ErrUnreachable)
		case "canceled":
			return Envelope{}, context.Canceled
		case "deadline":
			return Envelope{}, fmt.Errorf("quorum wait: %w", context.DeadlineExceeded)
		default:
			return Envelope{}, errors.New("plain failure")
		}
	}); err != nil {
		t.Fatal(err)
	}
	addr := srv.Addrs()[0]
	cli := NewTCP()
	defer cli.Close()
	ctx := context.Background()

	_, err := cli.Call(ctx, addr, Envelope{Kind: "unreachable"})
	if !errors.Is(err, ErrUnreachable) {
		t.Errorf("unreachable: errors.Is = false, err = %v", err)
	}
	if err == nil || err.Error() != "transport: endpoint unreachable: peer n3" {
		t.Errorf("unreachable message lost: %v", err)
	}
	if _, err := cli.Call(ctx, addr, Envelope{Kind: "canceled"}); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled: errors.Is = false, err = %v", err)
	}
	if _, err := cli.Call(ctx, addr, Envelope{Kind: "deadline"}); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("deadline: errors.Is = false, err = %v", err)
	}
	_, err = cli.Call(ctx, addr, Envelope{Kind: "plain"})
	if err == nil || err.Error() != "plain failure" {
		t.Errorf("plain error message: %v", err)
	}
	if errors.Is(err, ErrUnreachable) || errors.Is(err, context.Canceled) {
		t.Errorf("plain error wrongly matches a sentinel: %v", err)
	}
}

// TestTCPOversizedFramesDontBreakConn: a frame that fails validation
// (nothing written) must error out to its own caller without tearing
// down the healthy shared connection — and an unwritable RESPONSE must
// come back as an error frame instead of leaving the caller to hang.
func TestTCPOversizedFramesDontBreakConn(t *testing.T) {
	srv := NewTCP()
	defer srv.Close()
	hugeErr := strings.Repeat("x", 0x10000+1) // error text over the 2-byte field limit
	if err := srv.Serve("127.0.0.1:0", func(ctx context.Context, req Envelope) (Envelope, error) {
		if req.Kind == "huge-error" {
			return Envelope{}, errors.New(hugeErr)
		}
		return Envelope{Kind: "ok"}, nil
	}); err != nil {
		t.Fatal(err)
	}
	addr := srv.Addrs()[0]
	cli := NewTCP()
	defer cli.Close()
	ctx := context.Background()

	// Warm the pool, then send a request whose kind field exceeds the
	// frame's 2-byte length: the call fails, the connection survives.
	if _, err := cli.Call(ctx, addr, Envelope{Kind: "warm"}); err != nil {
		t.Fatal(err)
	}
	_, err := cli.Call(ctx, addr, Envelope{Kind: strings.Repeat("k", 0x10000+1)})
	if err == nil || !strings.Contains(err.Error(), "too long") {
		t.Fatalf("oversized kind: err = %v", err)
	}
	if _, err := cli.Call(ctx, addr, Envelope{Kind: "after"}); err != nil {
		t.Fatalf("call after oversized request: %v", err)
	}
	if dials := cli.Counters().Dials.Value(); dials != 1 {
		t.Errorf("dials = %d, want 1 (validation failure must not break the conn)", dials)
	}

	// A response the server cannot frame comes back as an explicit
	// error instead of a hang-until-timeout.
	start := time.Now()
	_, err = cli.Call(ctx, addr, Envelope{Kind: "huge-error"})
	if err == nil || !strings.Contains(err.Error(), "response frame invalid") {
		t.Fatalf("unwritable response: err = %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("unwritable response took %v (caller left hanging)", elapsed)
	}
	if _, err := cli.Call(ctx, addr, Envelope{Kind: "after2"}); err != nil {
		t.Fatalf("call after unwritable response: %v", err)
	}
}

// TestTCPFreshDialBaseline: the DisablePooling mode (the benchmark
// baseline) still works end-to-end and never pools.
func TestTCPFreshDialBaseline(t *testing.T) {
	srv := NewTCP()
	defer srv.Close()
	if err := srv.Serve("127.0.0.1:0", echoHandler("S")); err != nil {
		t.Fatal(err)
	}
	cli := NewTCP()
	cli.DisablePooling = true
	defer cli.Close()
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		resp, err := cli.Call(ctx, srv.Addrs()[0], Envelope{Kind: "k", Payload: []byte("x")})
		if err != nil {
			t.Fatal(err)
		}
		if string(resp.Payload) != "S:x" {
			t.Fatalf("resp = %+v", resp)
		}
	}
	if dials := cli.Counters().Dials.Value(); dials != 5 {
		t.Errorf("fresh-dial mode used %d dials for 5 calls, want 5", dials)
	}
	if size := cli.PoolSize(); size != 0 {
		t.Errorf("fresh-dial mode pooled %d conns", size)
	}
}
