package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"skute/internal/resilience"
	"skute/internal/telemetry"
)

// TCP is a Transport over real sockets. Connections are persistent,
// pooled per address and multiplexed: every call travels as a
// length-prefixed binary frame carrying a request ID (see frame.go), so
// many in-flight calls share one socket and a slow response never
// head-of-line blocks a fast one. The frame header is hand-encoded —
// the per-call gob type descriptors of the old wire are gone entirely
// (the cluster layer's pooled codec sessions keep them out of the
// payload as well). The server side dispatches every frame to its
// handler on its own goroutine, so a slow quorum read does not delay a
// heartbeat arriving on the same connection.
//
// The pool is bounded per address (MaxConnsPerAddr), reaps idle
// connections (IdleTimeout), evicts broken ones, and coalesces
// concurrent dials to a cold address into one. A call that fails
// because a POOLED connection went stale retries through the pool
// (which dials afresh once the broken connections are evicted, still
// coalesced and bounded); a failure on a connection dialed for that
// very call surfaces as ErrUnreachable.
//
// The Call context governs the exchange: a context deadline bounds both
// dialing and the wait for the response, and cancellation abandons an
// in-flight exchange promptly (the connection stays healthy — the late
// response frame is discarded by the reader). The fixed timeouts below
// apply only when the context carries no deadline.
type TCP struct {
	// DialTimeout bounds connection establishment when the context has
	// no deadline (default 2s).
	DialTimeout time.Duration
	// CallTimeout bounds a full request/response exchange when the
	// context has no deadline (default 10s).
	CallTimeout time.Duration
	// MaxConnsPerAddr bounds the pooled connections per peer address
	// (default 4). The pool opens another connection only when every
	// existing one is loaded past the multiplexing threshold.
	MaxConnsPerAddr int
	// IdleTimeout is how long a pooled connection may sit idle before
	// the reaper closes it (default 60s).
	IdleTimeout time.Duration
	// DisablePooling makes every Call dial a fresh connection, exchange
	// one frame and close — the pre-pooling behavior, kept as the
	// measured baseline for the wire-path benchmarks.
	DisablePooling bool
	// Retry paces the re-send of calls whose pooled connection broke
	// mid-exchange: exponential backoff with full jitter (so a mass
	// connection break cannot re-converge into a synchronized retry
	// burst) spent from a token-bucket budget (so retries cannot amplify
	// an overload). The zero value keeps the historical 3-attempt bound
	// but with jittered pacing and no budget; NewTCP installs a shared
	// budget.
	Retry resilience.RetryPolicy

	counters Counters
	// rtt is the request-RTT histogram: every Call records its wall time
	// (queueing in the pool, frame round trip, retries) regardless of
	// outcome. RegisterTelemetry exposes it on GET /metrics.
	rtt *telemetry.Histogram

	mu          sync.Mutex
	listeners   []net.Listener
	serverConns map[net.Conn]struct{}
	clientPool  *pool
	closed      bool
}

// NewTCP returns a TCP transport with default timeouts, pool policy and
// a budgeted retry: one retry token per ten calls (burst 10), so even
// with every peer's connections breaking the wire sees at most ~10%
// extra traffic from retries.
func NewTCP() *TCP {
	return &TCP{
		DialTimeout: 2 * time.Second,
		CallTimeout: 10 * time.Second,
		Retry:       resilience.RetryPolicy{Budget: resilience.NewRetryBudget(0.1, 10)},
		rtt:         telemetry.NewHistogram(),
	}
}

func (t *TCP) dialTimeout() time.Duration {
	if t.DialTimeout > 0 {
		return t.DialTimeout
	}
	return 2 * time.Second
}

func (t *TCP) callTimeout() time.Duration {
	if t.CallTimeout > 0 {
		return t.CallTimeout
	}
	return 10 * time.Second
}

func (t *TCP) maxConnsPerAddr() int {
	if t.MaxConnsPerAddr > 0 {
		return t.MaxConnsPerAddr
	}
	return defaultMaxConnsPerAddr
}

func (t *TCP) idleTimeout() time.Duration {
	if t.IdleTimeout > 0 {
		return t.IdleTimeout
	}
	return defaultIdleTimeout
}

// pool returns the lazily created client pool (nil when closed).
func (t *TCP) getPool() (*pool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, fmt.Errorf("transport: tcp transport closed")
	}
	if t.clientPool == nil {
		t.clientPool = newPool(t)
	}
	return t.clientPool, nil
}

// Serve implements Transport: it binds the address and serves requests
// until Close. The returned error covers bind failures only; per-
// connection errors are contained.
func (t *TCP) Serve(addr string, h Handler) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		ln.Close()
		return errors.New("transport: tcp transport closed")
	}
	t.listeners = append(t.listeners, ln)
	t.mu.Unlock()

	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			go t.serveConn(conn, h)
		}
	}()
	return nil
}

// maxServerFramesPerConn bounds the handler goroutines one connection
// may have in flight — backpressure against a peer flooding frames
// faster than handlers complete.
const maxServerFramesPerConn = 256

// serveConn demultiplexes one client connection: every request frame is
// dispatched to the handler on its own goroutine, so responses complete
// (and are written back) in whatever order the handlers finish. The
// handler context is cancelled when the connection dies, so a peer
// disconnect now interrupts handlers already running. Deadline
// propagation into a handler's coordinated work still travels in the
// request payload (the cluster layer's client envelopes carry the
// caller's timeout budget).
func (t *TCP) serveConn(conn net.Conn, h Handler) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		conn.Close()
		return
	}
	if t.serverConns == nil {
		t.serverConns = make(map[net.Conn]struct{})
	}
	t.serverConns[conn] = struct{}{}
	t.mu.Unlock()
	defer func() {
		t.mu.Lock()
		delete(t.serverConns, conn)
		t.mu.Unlock()
		conn.Close()
	}()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sc := newStreamCodec(conn)

	// Dispatch through a per-connection pool of reused worker
	// goroutines instead of one fresh goroutine per frame: handler
	// stacks (gob decode runs deep) stay warm across requests, which
	// profiling showed removes the stack-growth cost from the hot path.
	// A new worker spawns whenever the outstanding (enqueued but not
	// finished) frame count exceeds the worker count — `outstanding` is
	// incremented only here and decremented only after a handler
	// completes, so the check can never under-spawn while a frame still
	// lacks a worker, and a fast frame never queues behind a stalled
	// handler (no head-of-line blocking). Concurrency stays bounded by
	// maxServerFramesPerConn.
	work := make(chan frame, maxServerFramesPerConn)
	defer close(work) // drains the workers; their late writes hit the closed conn harmlessly
	var outstanding atomic.Int64
	workers := 0
	serve := func(f frame) {
		resp := frame{ID: f.ID, Flags: flagResponse}
		env, err := h(ctx, Envelope{Kind: f.Kind, Payload: f.Payload})
		if err != nil {
			code, msg := ErrorToCode(err)
			resp.Code, resp.Err = uint8(code), msg
		} else {
			resp.Kind, resp.Payload = env.Kind, env.Payload
		}
		if werr := sc.writeFrame(&resp, time.Now().Add(t.callTimeout())); werr != nil {
			// A response that fails validation (oversized payload or
			// error text) wrote nothing — tell the caller instead of
			// leaving it to hang until its timeout. Any other write
			// failure means the connection is gone; the read loop
			// observes the same failure and tears down.
			var fse *frameSizeError
			if errors.As(werr, &fse) {
				code, _ := ErrorToCode(werr)
				errResp := frame{ID: f.ID, Flags: flagResponse, Code: uint8(code),
					Err: fmt.Sprintf("transport: response frame invalid: %v", fse)}
				_ = sc.writeFrame(&errResp, time.Now().Add(t.callTimeout()))
			}
		}
	}
	for {
		var f frame
		if err := sc.readFrame(&f); err != nil {
			return
		}
		if f.Flags&flagResponse != 0 {
			RecyclePayload(f.Payload)
			continue // a confused peer; ignore rather than kill the stream
		}
		if outstanding.Add(1) > int64(workers) && workers < maxServerFramesPerConn {
			workers++
			go func() {
				for f := range work {
					serve(f)
					// The handler contract (see Handler) forbids retaining
					// the request payload past return, and the response is
					// already flushed — the staging buffer can go back to
					// the pool even when the handler echoed it.
					RecyclePayload(f.Payload)
					outstanding.Add(-1)
				}
			}()
		}
		work <- f // blocks when every worker is busy and the buffer is full: backpressure
	}
}

// dial opens one connection, honoring the context deadline (or the
// DialTimeout default). Dial failures are ErrUnreachable.
func (t *TCP) dial(ctx context.Context, addr string) (net.Conn, error) {
	dialTO := t.dialTimeout()
	if _, ok := ctx.Deadline(); ok {
		dialTO = 0 // DialContext honors the ctx deadline on its own
	}
	dialer := net.Dialer{Timeout: dialTO}
	conn, err := dialer.DialContext(ctx, "tcp", addr)
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ctxErr
		}
		return nil, fmt.Errorf("%w: %s: %v", ErrUnreachable, addr, err)
	}
	t.counters.Dials.Inc()
	return conn, nil
}

// Call implements Transport over the pooled, multiplexed wire. A call
// that fails because its POOLED connection went stale retries (safe for
// this store: every payload is an idempotent versioned operation) —
// the broken connection was already evicted, so the retry reaches a
// different pooled connection or a fresh dial, still under the pool's
// per-address bound and dial coalescing. A failure on a connection
// dialed for this very call surfaces as ErrUnreachable: the peer is
// really gone.
func (t *TCP) Call(ctx context.Context, addr string, req Envelope) (Envelope, error) {
	if err := ctx.Err(); err != nil {
		return Envelope{}, err
	}
	if t.rtt != nil { // nil only for a hand-rolled struct literal
		defer t.rtt.RecordSince(time.Now())
	}
	if t.DisablePooling {
		return t.callFreshDial(ctx, addr, req)
	}
	p, err := t.getPool()
	if err != nil {
		return Envelope{}, err
	}
	// Up to two retries tolerate the mass-break case where the first
	// retry lands on another pooled connection whose death the reader
	// has not observed yet — but each retry must clear the budget and
	// sleep a jittered backoff, so a mass break drains into staggered,
	// bounded re-sends instead of an immediate synchronized burst.
	t.Retry.Budget.OnAttempt()
	for attempt := 1; ; attempt++ {
		mc, reused, err := p.get(ctx, addr)
		if err != nil {
			return Envelope{}, err
		}
		env, err := mc.roundTrip(ctx, req, t.callTimeout())
		p.put(mc)
		var broken *brokenConnError
		if err != nil && errors.As(err, &broken) {
			if reused && t.Retry.Retry(ctx, attempt) {
				t.counters.Retries.Inc()
				continue
			}
			if reused {
				t.counters.RetriesDenied.Inc()
			}
			return Envelope{}, broken.err
		}
		return env, err
	}
}

// callFreshDial is the unpooled baseline: dial, one framed exchange,
// close. Each call pays the dial and the per-connection gob type
// descriptors — exactly the cost profile of the old wire protocol.
func (t *TCP) callFreshDial(ctx context.Context, addr string, req Envelope) (Envelope, error) {
	conn, err := t.dial(ctx, addr)
	if err != nil {
		return Envelope{}, err
	}
	defer conn.Close()
	ioDeadline := time.Now().Add(t.callTimeout())
	if d, ok := ctx.Deadline(); ok {
		ioDeadline = d
	}
	if err := conn.SetDeadline(ioDeadline); err != nil {
		return Envelope{}, err
	}
	// Cancellation mid-exchange: expire the connection deadline so any
	// blocked read/write returns immediately. Registered after the
	// deadline above so a context that fires concurrently cannot have
	// its immediate deadline overwritten — writeFrame is passed the
	// zero deadline so it leaves the connection deadline alone.
	stop := context.AfterFunc(ctx, func() { conn.SetDeadline(time.Unix(1, 0)) })
	defer stop()
	sc := newStreamCodec(conn)
	if err := sc.writeFrame(&frame{ID: 1, Kind: req.Kind, Payload: req.Payload}, time.Time{}); err != nil {
		if ctxErr := ctxError(ctx); ctxErr != nil {
			return Envelope{}, ctxErr
		}
		return Envelope{}, fmt.Errorf("transport: encode to %s: %w", addr, err)
	}
	var resp frame
	if err := sc.readFrame(&resp); err != nil {
		if ctxErr := ctxError(ctx); ctxErr != nil {
			return Envelope{}, ctxErr
		}
		return Envelope{}, fmt.Errorf("transport: decode from %s: %w", addr, err)
	}
	if resp.Code != 0 {
		return Envelope{}, CodeToError(ErrorCode(resp.Code), resp.Err)
	}
	return Envelope{Kind: resp.Kind, Payload: resp.Payload}, nil
}

// ctxError reports why the context ended an exchange. The socket
// deadline mirrors the context deadline, so an I/O timeout can surface a
// few microseconds before the context's own timer fires — treat a passed
// deadline as expired rather than racing the timer.
func ctxError(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d, ok := ctx.Deadline(); ok && !time.Now().Before(d) {
		return context.DeadlineExceeded
	}
	return nil
}

// Evict drops every pooled connection to the address. The cluster layer
// calls it when a peer is declared dead, so sockets to a failed node
// don't linger until the idle reaper finds them.
func (t *TCP) Evict(addr string) {
	t.mu.Lock()
	p := t.clientPool
	t.mu.Unlock()
	if p != nil {
		p.evictAddr(addr)
	}
}

// Addrs returns the bound listener addresses (useful with ":0").
func (t *TCP) Addrs() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, len(t.listeners))
	for i, ln := range t.listeners {
		out[i] = ln.Addr().String()
	}
	return out
}

// Close stops the listeners, closes every established server connection
// (interrupting their running handlers via context cancellation) and
// tears down the client pool, failing any in-flight calls. The old
// implementation closed only the listeners, leaking established sockets
// and stranding in-flight calls on shutdown.
func (t *TCP) Close() error {
	t.mu.Lock()
	t.closed = true
	var first error
	for _, ln := range t.listeners {
		if err := ln.Close(); err != nil && first == nil {
			first = err
		}
	}
	t.listeners = nil
	conns := make([]net.Conn, 0, len(t.serverConns))
	for c := range t.serverConns {
		conns = append(conns, c)
	}
	p := t.clientPool
	t.clientPool = nil
	t.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	if p != nil {
		p.close()
	}
	return first
}
