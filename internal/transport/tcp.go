package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// TCP is a Transport over real sockets with a gob wire codec. Addresses
// are host:port strings. Each Call opens a fresh connection — simple and
// adequate for the prototype's request rates; a production deployment
// would pool connections.
type TCP struct {
	// DialTimeout bounds connection establishment (default 2s).
	DialTimeout time.Duration
	// CallTimeout bounds a full request/response exchange (default 10s).
	CallTimeout time.Duration

	mu        sync.Mutex
	listeners []net.Listener
	closed    bool
}

// NewTCP returns a TCP transport with default timeouts.
func NewTCP() *TCP {
	return &TCP{DialTimeout: 2 * time.Second, CallTimeout: 10 * time.Second}
}

// wireRequest/wireResponse are the gob frames on the socket.
type wireRequest struct {
	Env Envelope
}

type wireResponse struct {
	Env Envelope
	Err string
}

// Serve implements Transport: it binds the address and serves requests
// until Close. The returned error covers bind failures only; per-
// connection errors are contained.
func (t *TCP) Serve(addr string, h Handler) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		ln.Close()
		return errors.New("transport: tcp transport closed")
	}
	t.listeners = append(t.listeners, ln)
	t.mu.Unlock()

	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			go t.serveConn(conn, h)
		}
	}()
	return nil
}

// serveConn answers sequential requests on one connection.
func (t *TCP) serveConn(conn net.Conn, h Handler) {
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req wireRequest
		if err := dec.Decode(&req); err != nil {
			return
		}
		var resp wireResponse
		env, err := h(req.Env)
		if err != nil {
			resp.Err = err.Error()
		} else {
			resp.Env = env
		}
		if err := enc.Encode(&resp); err != nil {
			return
		}
	}
}

// Call implements Transport.
func (t *TCP) Call(addr string, req Envelope) (Envelope, error) {
	dialTO, callTO := t.DialTimeout, t.CallTimeout
	if dialTO == 0 {
		dialTO = 2 * time.Second
	}
	if callTO == 0 {
		callTO = 10 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, dialTO)
	if err != nil {
		return Envelope{}, fmt.Errorf("%w: %s: %v", ErrUnreachable, addr, err)
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(callTO)); err != nil {
		return Envelope{}, err
	}
	if err := gob.NewEncoder(conn).Encode(wireRequest{Env: req}); err != nil {
		return Envelope{}, fmt.Errorf("transport: encode to %s: %w", addr, err)
	}
	var resp wireResponse
	if err := gob.NewDecoder(conn).Decode(&resp); err != nil {
		return Envelope{}, fmt.Errorf("transport: decode from %s: %w", addr, err)
	}
	if resp.Err != "" {
		return Envelope{}, errors.New(resp.Err)
	}
	return resp.Env, nil
}

// Addrs returns the bound listener addresses (useful with ":0").
func (t *TCP) Addrs() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, len(t.listeners))
	for i, ln := range t.listeners {
		out[i] = ln.Addr().String()
	}
	return out
}

// Close stops all listeners.
func (t *TCP) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.closed = true
	var first error
	for _, ln := range t.listeners {
		if err := ln.Close(); err != nil && first == nil {
			first = err
		}
	}
	t.listeners = nil
	return first
}
