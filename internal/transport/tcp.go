package transport

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// TCP is a Transport over real sockets with a gob wire codec. Addresses
// are host:port strings. Each Call opens a fresh connection — simple and
// adequate for the prototype's request rates; a production deployment
// would pool connections.
//
// The Call context governs the exchange: a context deadline bounds both
// dialing and socket I/O (replacing DialTimeout/CallTimeout), and
// cancellation aborts an in-flight exchange promptly. The fixed timeouts
// below apply only when the context carries no deadline.
type TCP struct {
	// DialTimeout bounds connection establishment when the context has
	// no deadline (default 2s).
	DialTimeout time.Duration
	// CallTimeout bounds a full request/response exchange when the
	// context has no deadline (default 10s).
	CallTimeout time.Duration

	mu        sync.Mutex
	listeners []net.Listener
	closed    bool
}

// NewTCP returns a TCP transport with default timeouts.
func NewTCP() *TCP {
	return &TCP{DialTimeout: 2 * time.Second, CallTimeout: 10 * time.Second}
}

// wireRequest/wireResponse are the gob frames on the socket.
type wireRequest struct {
	Env Envelope
}

type wireResponse struct {
	Env Envelope
	Err string
}

// Serve implements Transport: it binds the address and serves requests
// until Close. The returned error covers bind failures only; per-
// connection errors are contained.
func (t *TCP) Serve(addr string, h Handler) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		ln.Close()
		return errors.New("transport: tcp transport closed")
	}
	t.listeners = append(t.listeners, ln)
	t.mu.Unlock()

	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			go t.serveConn(conn, h)
		}
	}()
	return nil
}

// serveConn answers sequential requests on one connection. The handler
// context is scoped to the connection, but because the protocol is
// strictly sequential a peer disconnect is only observed at the next
// Decode — it does NOT interrupt a handler already running. Deadline
// propagation into a handler's coordinated work therefore travels in
// the request payload instead (the cluster layer's client envelopes
// carry the caller's timeout budget).
func (t *TCP) serveConn(conn net.Conn, h Handler) {
	defer conn.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req wireRequest
		if err := dec.Decode(&req); err != nil {
			return
		}
		var resp wireResponse
		env, err := h(ctx, req.Env)
		if err != nil {
			resp.Err = err.Error()
		} else {
			resp.Env = env
		}
		if err := enc.Encode(&resp); err != nil {
			return
		}
	}
}

// Call implements Transport. The context deadline (when set) bounds the
// dial and the full request/response exchange; cancellation interrupts
// in-flight socket I/O by expiring the connection deadline.
func (t *TCP) Call(ctx context.Context, addr string, req Envelope) (Envelope, error) {
	if err := ctx.Err(); err != nil {
		return Envelope{}, err
	}
	dialTO, callTO := t.DialTimeout, t.CallTimeout
	if dialTO == 0 {
		dialTO = 2 * time.Second
	}
	if callTO == 0 {
		callTO = 10 * time.Second
	}
	// The context deadline, when present, overrides the fixed defaults
	// for both dialing and I/O.
	ioDeadline := time.Now().Add(callTO)
	if d, ok := ctx.Deadline(); ok {
		ioDeadline = d
		dialTO = 0 // DialContext honors the ctx deadline on its own
	}
	dialer := net.Dialer{Timeout: dialTO}
	conn, err := dialer.DialContext(ctx, "tcp", addr)
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return Envelope{}, ctxErr
		}
		return Envelope{}, fmt.Errorf("%w: %s: %v", ErrUnreachable, addr, err)
	}
	defer conn.Close()
	if err := conn.SetDeadline(ioDeadline); err != nil {
		return Envelope{}, err
	}
	// Cancellation mid-exchange: expire the connection deadline so any
	// blocked read/write returns immediately. Registered after the
	// deadline above so a context that fires concurrently cannot have
	// its immediate deadline overwritten.
	stop := context.AfterFunc(ctx, func() { conn.SetDeadline(time.Unix(1, 0)) })
	defer stop()
	if err := gob.NewEncoder(conn).Encode(wireRequest{Env: req}); err != nil {
		if ctxErr := ctxError(ctx); ctxErr != nil {
			return Envelope{}, ctxErr
		}
		return Envelope{}, fmt.Errorf("transport: encode to %s: %w", addr, err)
	}
	var resp wireResponse
	if err := gob.NewDecoder(conn).Decode(&resp); err != nil {
		if ctxErr := ctxError(ctx); ctxErr != nil {
			return Envelope{}, ctxErr
		}
		return Envelope{}, fmt.Errorf("transport: decode from %s: %w", addr, err)
	}
	if resp.Err != "" {
		return Envelope{}, errors.New(resp.Err)
	}
	return resp.Env, nil
}

// ctxError reports why the context ended an exchange. The socket
// deadline mirrors the context deadline, so an I/O timeout can surface a
// few microseconds before the context's own timer fires — treat a passed
// deadline as expired rather than racing the timer.
func ctxError(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d, ok := ctx.Deadline(); ok && !time.Now().Before(d) {
		return context.DeadlineExceeded
	}
	return nil
}

// Addrs returns the bound listener addresses (useful with ":0").
func (t *TCP) Addrs() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, len(t.listeners))
	for i, ln := range t.listeners {
		out[i] = ln.Addr().String()
	}
	return out
}

// Close stops all listeners.
func (t *TCP) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.closed = true
	var first error
	for _, ln := range t.listeners {
		if err := ln.Close(); err != nil && first == nil {
			first = err
		}
	}
	t.listeners = nil
	return first
}
