package transport

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// Wire error codes. A handler error crossing the TCP wire travels as a
// (code, message) pair instead of bare stringified text, so typed
// sentinel errors survive the round trip: the caller's errors.Is sees
// the same sentinel the handler returned, while Error() still shows the
// remote's exact message. Codes below CodeAppBase are reserved for the
// transport itself; higher layers claim codes from CodeAppBase upward
// with RegisterErrorCode (the cluster layer registers its own sentinels
// there).
type ErrorCode uint8

const (
	// codeOK marks a successful response frame.
	codeOK ErrorCode = 0
	// CodeError is the generic code: an error with no registered
	// sentinel, carried as text only.
	CodeError ErrorCode = 1
	// CodeCanceled marks context.Canceled.
	CodeCanceled ErrorCode = 2
	// CodeDeadlineExceeded marks context.DeadlineExceeded.
	CodeDeadlineExceeded ErrorCode = 3
	// CodeUnreachable marks ErrUnreachable (a handler that itself failed
	// to reach a peer propagates the sentinel to its own caller).
	CodeUnreachable ErrorCode = 4
	// CodeAppBase is the first code available to higher layers via
	// RegisterErrorCode.
	CodeAppBase ErrorCode = 16
)

// errCodeRegistry maps codes to sentinels both ways. Registration order
// is preserved so ErrorToCode matches deterministically (built-ins
// first).
var errCodeRegistry = struct {
	mu     sync.RWMutex
	byCode map[ErrorCode]error
	order  []ErrorCode
}{byCode: map[ErrorCode]error{}}

func init() {
	registerErrorCode(CodeCanceled, context.Canceled)
	registerErrorCode(CodeDeadlineExceeded, context.DeadlineExceeded)
	registerErrorCode(CodeUnreachable, ErrUnreachable)
}

func registerErrorCode(code ErrorCode, sentinel error) {
	errCodeRegistry.mu.Lock()
	defer errCodeRegistry.mu.Unlock()
	if _, dup := errCodeRegistry.byCode[code]; dup {
		panic(fmt.Sprintf("transport: error code %d registered twice", code))
	}
	errCodeRegistry.byCode[code] = sentinel
	errCodeRegistry.order = append(errCodeRegistry.order, code)
}

// RegisterErrorCode claims a wire code (CodeAppBase or above) for a
// sentinel error. Handler errors matching the sentinel (per errors.Is)
// are sent as the code and reconstructed on the caller's side as an
// error that both matches the sentinel under errors.Is and preserves
// the remote message. Registration is global and must happen before
// traffic flows (package init of the owning layer); duplicate or
// reserved codes panic.
func RegisterErrorCode(code ErrorCode, sentinel error) {
	if code < CodeAppBase {
		panic(fmt.Sprintf("transport: error code %d is reserved (app codes start at %d)", code, CodeAppBase))
	}
	if sentinel == nil {
		panic("transport: nil sentinel error")
	}
	registerErrorCode(code, sentinel)
}

// ErrorToCode maps a handler error to its wire representation.
func ErrorToCode(err error) (ErrorCode, string) {
	if err == nil {
		return codeOK, ""
	}
	errCodeRegistry.mu.RLock()
	defer errCodeRegistry.mu.RUnlock()
	for _, code := range errCodeRegistry.order {
		if errors.Is(err, errCodeRegistry.byCode[code]) {
			return code, err.Error()
		}
	}
	return CodeError, err.Error()
}

// CodeToError reconstructs the caller-side error from a response
// frame's (code, message) pair.
func CodeToError(code ErrorCode, msg string) error {
	if code == codeOK {
		return nil
	}
	errCodeRegistry.mu.RLock()
	sentinel, known := errCodeRegistry.byCode[code]
	errCodeRegistry.mu.RUnlock()
	if !known {
		return errors.New(msg)
	}
	if msg == "" {
		msg = sentinel.Error()
	}
	return &wireError{code: code, sentinel: sentinel, msg: msg}
}

// wireError is a decoded remote error: it prints the remote's message
// and matches the registered sentinel under errors.Is.
type wireError struct {
	code     ErrorCode
	sentinel error
	msg      string
}

func (e *wireError) Error() string { return e.msg }

// Is matches the registered sentinel (and anything the sentinel itself
// wraps).
func (e *wireError) Is(target error) bool { return errors.Is(e.sentinel, target) }
