// Package transport provides the message plane of the Skute prototype
// store: a tiny request/response RPC with two interchangeable
// implementations — an in-memory mesh for tests and simulations (with
// failure injection) and a TCP transport for real deployments
// (cmd/skuted).
//
// The TCP wire is persistent, pooled and multiplexed: calls travel as
// hand-encoded, length-prefixed binary frames carrying a request ID
// over a bounded per-address connection pool, and the server dispatches
// every frame concurrently — see frame.go, pool.go and DESIGN.md, "The
// wire". No gob runs at the transport layer at all; the payload codec's
// long-lived gob sessions live in internal/cluster (descriptors once
// per session, not once per call). Handler errors cross the wire as
// typed codes (errcode.go), so sentinels like ErrUnreachable and
// context cancellation survive errors.Is on the far side.
//
// Every Call carries a context.Context: cancellation or a deadline on
// the caller's side aborts the exchange (for TCP, the context deadline
// bounds dialing and the response wait instead of the transport's
// defaults).
package transport

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Envelope is the unit of exchange: a kind tag and an opaque payload the
// cluster layer encodes with gob.
type Envelope struct {
	Kind    string
	Payload []byte
}

// Handler serves one request. The context is the caller's for in-memory
// calls (cancellation propagates into nested quorum operations) and a
// per-connection context for TCP. The request payload is only valid for
// the duration of the call: the TCP server returns its staging buffer to
// a pool once the handler completes (see RecyclePayload), so handlers
// must copy any payload bytes they need to retain — decoding with gob
// does that inherently.
type Handler func(ctx context.Context, req Envelope) (Envelope, error)

// Transport connects named endpoints.
type Transport interface {
	// Serve registers the handler for the address; it replaces any
	// previous handler at that address.
	Serve(addr string, h Handler) error
	// Call sends the envelope to the address and waits for the reply.
	// A cancelled or expired context aborts the call with ctx.Err()
	// before any bytes move.
	Call(ctx context.Context, addr string, req Envelope) (Envelope, error)
	// Close releases resources; subsequent calls fail.
	Close() error
}

// ErrUnreachable is returned for addresses with no live endpoint.
var ErrUnreachable = errors.New("transport: endpoint unreachable")

// Memory is an in-process transport: addresses are plain strings and
// calls are direct function invocations. Partition sets can be injected
// to simulate network failures.
type Memory struct {
	mu       sync.RWMutex
	handlers map[string]Handler
	down     map[string]bool
	delay    map[string]time.Duration
	closed   bool
}

// NewMemory returns an empty in-memory mesh.
func NewMemory() *Memory {
	return &Memory{
		handlers: make(map[string]Handler),
		down:     make(map[string]bool),
		delay:    make(map[string]time.Duration),
	}
}

// Serve implements Transport.
func (m *Memory) Serve(addr string, h Handler) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return errors.New("transport: memory mesh closed")
	}
	m.handlers[addr] = h
	return nil
}

// Call implements Transport. The handler runs synchronously on the
// caller's goroutine; a context that is already done fails before the
// handler is invoked, and the caller's context flows into the handler so
// nested calls it makes observe the same cancellation.
func (m *Memory) Call(ctx context.Context, addr string, req Envelope) (Envelope, error) {
	if err := ctx.Err(); err != nil {
		return Envelope{}, err
	}
	m.mu.RLock()
	h, ok := m.handlers[addr]
	down := m.down[addr] || m.closed
	delay := m.delay[addr]
	m.mu.RUnlock()
	if !ok || down {
		return Envelope{}, fmt.Errorf("%w: %s", ErrUnreachable, addr)
	}
	if delay > 0 {
		t := time.NewTimer(delay)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return Envelope{}, ctx.Err()
		}
	}
	return h(ctx, req)
}

// SetDown injects (or heals) a failure of the address: calls fail with
// ErrUnreachable while down.
func (m *Memory) SetDown(addr string, down bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.down[addr] = down
}

// SetDelay injects d of latency in front of every call to the address
// (0 heals it) — the in-process analogue of the scenario harness's TCP
// slow proxy, so slow-peer behaviour (hedging, circuit breakers) is
// testable under the race detector without real processes. The delay
// respects the caller's context: a call whose deadline expires mid-delay
// fails with ctx.Err() without invoking the handler.
func (m *Memory) SetDelay(addr string, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if d <= 0 {
		delete(m.delay, addr)
		return
	}
	m.delay[addr] = d
}

// Close implements Transport.
func (m *Memory) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	return nil
}
