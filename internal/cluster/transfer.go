package cluster

import (
	"context"
	"fmt"
	"sync"
	"time"

	"skute/internal/ring"
	"skute/internal/transport"
)

// Partition transfer: a node adopting a replica (economic replication,
// migration, or the standby fill after a join) pulls the partition from
// the donor in bounded, key-ordered chunks instead of one giant
// envelope. The donor throttles outbound bytes with a token bucket so a
// mass rebalance cannot starve the data path, and the adopter remembers
// a per-(partition, donor) resume cursor so a pull interrupted
// mid-stream restarts after the last applied key, not from scratch.

// defaultChunkItems bounds one fetchChunk response when the descriptor
// does not set Config.TransferChunkItems.
const defaultChunkItems = 128

// rateLimiter is a token-bucket byte throttle. A nil limiter means
// unlimited. The bucket holds at most one second of budget, so a long
// idle gap cannot bank an arbitrarily large burst.
type rateLimiter struct {
	mu          sync.Mutex
	bytesPerSec float64
	tokens      float64
	last        time.Time
}

// newRateLimiter returns nil (no throttling) when bytesPerSec <= 0.
func newRateLimiter(bytesPerSec int64) *rateLimiter {
	if bytesPerSec <= 0 {
		return nil
	}
	return &rateLimiter{bytesPerSec: float64(bytesPerSec)}
}

// wait blocks until nbytes of budget are available (or the context
// ends). Oversized single requests are allowed through after draining
// the bucket — the debt delays the next caller — so a chunk larger than
// one second of budget still makes progress.
func (rl *rateLimiter) wait(ctx context.Context, nbytes int) error {
	if rl == nil || nbytes <= 0 {
		return nil
	}
	rl.mu.Lock()
	now := time.Now()
	if rl.last.IsZero() {
		rl.last = now
		rl.tokens = rl.bytesPerSec // start with one second of budget
	}
	rl.tokens += now.Sub(rl.last).Seconds() * rl.bytesPerSec
	if rl.tokens > rl.bytesPerSec {
		rl.tokens = rl.bytesPerSec
	}
	rl.last = now
	rl.tokens -= float64(nbytes)
	var delay time.Duration
	if rl.tokens < 0 {
		delay = time.Duration(-rl.tokens / rl.bytesPerSec * float64(time.Second))
	}
	rl.mu.Unlock()
	if delay <= 0 {
		return nil
	}
	timer := time.NewTimer(delay)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}

// handleFetchChunk serves one key-ordered chunk of a partition, resumed
// after the caller's cursor. The byte throttle is paid before the reply
// leaves, so donors under a bandwidth cap naturally pace their adopters.
func (n *Node) handleFetchChunk(ctx context.Context, req fetchChunkReq) (transport.Envelope, error) {
	if _, _, err := n.partition(req.Ring, req.Part); err != nil {
		return transport.Envelope{}, err
	}
	max := req.MaxItems
	if max <= 0 || max > n.chunkItems {
		max = n.chunkItems
	}
	leaves := n.treeFor(req.Ring, req.Part).LeavesAfter(req.After, max)
	resp := fetchChunkResp{Done: len(leaves) < max, Next: req.After}
	bytes := 0
	for _, l := range leaves {
		resp.Next = l.Key
		vs := n.eng.Get(l.Key)
		if len(vs) == 0 {
			// Dropped between the leaf export and this read; the tree
			// already reflects it, the adopter just skips the key.
			continue
		}
		for _, v := range vs {
			bytes += len(v.Value)
		}
		resp.Items = append(resp.Items, kv{Key: l.Key, Versions: vs})
	}
	if err := n.throttle.wait(ctx, bytes); err != nil {
		return transport.Envelope{}, err
	}
	n.counters.TransferChunksServed.Inc()
	n.counters.TransferBytesOut.Add(int64(bytes))
	return transport.Envelope{Kind: "ok", Payload: encode(resp)}, nil
}

// pullPartition streams a partition from the donor in chunks, applying
// each as it lands. The resume cursor survives failed pulls: a retry —
// the coordinator re-issuing the adopt, or the joiner's next standby
// round — continues after the last applied key. The cursor is cleared
// on completion and kept on error.
func (n *Node) pullPartition(ctx context.Context, id ring.RingID, part int, donorAddr string) error {
	cursorKey := fmt.Sprintf("%s#%d@%s", id, part, donorAddr)
	n.xmu.Lock()
	after, resumed := n.resume[cursorKey]
	n.xmu.Unlock()
	if resumed {
		n.counters.TransferResumes.Inc()
		n.trace.Add("transfer", "resume %s#%d from %s after %q", id, part, donorAddr, after)
	} else {
		n.trace.Add("transfer", "pull %s#%d from %s", id, part, donorAddr)
	}
	for {
		resp, err := n.tr.Call(ctx, donorAddr, transport.Envelope{
			Kind:    kindFetchChunk,
			Payload: encode(fetchChunkReq{Ring: id, Part: part, After: after, MaxItems: n.chunkItems}),
		})
		if err != nil {
			return fmt.Errorf("cluster: chunk fetch from %s: %w", donorAddr, err)
		}
		var chunk fetchChunkResp
		if err := decode(resp.Payload, &chunk); err != nil {
			return err
		}
		for _, item := range chunk.Items {
			for _, v := range item.Versions {
				if _, err := n.eng.Put(item.Key, v); err != nil {
					return err
				}
			}
		}
		n.counters.TransferChunks.Inc()
		n.counters.TransferItems.Add(int64(len(chunk.Items)))
		after = chunk.Next
		n.xmu.Lock()
		if chunk.Done {
			delete(n.resume, cursorKey)
		} else {
			n.resume[cursorKey] = after
		}
		n.xmu.Unlock()
		if chunk.Done {
			n.trace.Add("transfer", "complete %s#%d from %s", id, part, donorAddr)
			return nil
		}
		if err := ctx.Err(); err != nil {
			return err
		}
	}
}

// handleAdopt makes this node a replica of the partition: it pulls the
// data from the donor address, chunk by chunk. Membership is NOT
// mutated here — the coordinator stamps the versioned placement delta
// after the adopt succeeds and disseminates it (this node included), so
// the replica set changes only through the one Apply path.
func (n *Node) handleAdopt(ctx context.Context, req adoptReq) (transport.Envelope, error) {
	if err := n.pullPartition(ctx, req.Ring, req.Part, req.FromAddr); err != nil {
		return transport.Envelope{}, err
	}
	return transport.Envelope{Kind: "ok"}, nil
}
