package cluster

import (
	"sync/atomic"

	"skute/internal/telemetry"
)

// Coordinator latency histograms are named cluster_<op>_<class>_ns where
// op is the client-facing operation and class the requested consistency
// level. Positive Count(n) overrides share one "count" class so the
// metric namespace stays bounded regardless of replica targets.
const (
	opGet = iota
	opPut
	opDel
	opMGet
	opMPut
	numOps
)

var opNames = [numOps]string{"get", "put", "del", "mget", "mput"}

var consistencyClasses = []string{"default", "one", "quorum", "all", "count"}

// classIndex buckets a consistency level for the histogram table. An
// invalid level lands in the default bucket; the operation itself fails
// resolution before doing any work, so the sample just records how fast
// it was rejected.
func classIndex(c Consistency) int {
	switch {
	case c == ConsistencyOne:
		return 1
	case c == ConsistencyQuorum:
		return 2
	case c == ConsistencyAll:
		return 3
	case c > 0:
		return 4
	default:
		return 0
	}
}

// opHists caches the coordinator histograms so the request path loads an
// atomic pointer instead of taking the registry lock. Cells fill lazily
// on first use — only op×consistency combinations the workload actually
// exercises appear on GET /metrics. Racing fillers are harmless: the
// registry hands every caller of a name the same histogram.
type opHists struct {
	reg *telemetry.Registry
	tab [numOps][5]atomic.Pointer[telemetry.Histogram]
}

func (t *opHists) hist(op int, c Consistency) *telemetry.Histogram {
	if t == nil {
		return nil // bare test-constructed Node; Record on nil is a no-op
	}
	ci := classIndex(c)
	if h := t.tab[op][ci].Load(); h != nil {
		return h
	}
	h := t.reg.Histogram("cluster_" + opNames[op] + "_" + consistencyClasses[ci] + "_ns")
	t.tab[op][ci].Store(h)
	return h
}

// Telemetry exposes the node's latency registry: the coordinator per-op
// histograms record here, and cmd/skuted attaches the transport RTT and
// WAL fsync histograms before serving the whole set on GET /metrics.
func (n *Node) Telemetry() *telemetry.Registry { return n.tel }
