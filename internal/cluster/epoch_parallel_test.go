package cluster

import (
	"fmt"
	"sync"
	"testing"

	"skute/internal/agent"
	"skute/internal/economy"
	"skute/internal/store"
	"skute/internal/transport"
)

// TestParallelEpochUnderConcurrentTraffic exercises the parallel economic
// epoch while quorum reads and writes keep hammering the cluster from
// several goroutines — the scenario the per-vnode worker pool and the
// sharded engine exist for. Run with -race this doubles as the epoch
// data-race regression test. After the epochs settle, every seeded key
// must still be readable with its value intact.
func TestParallelEpochUnderConcurrentTraffic(t *testing.T) {
	_, nodes := testCluster(t)
	const seeded = 24
	for i := 0; i < seeded; i++ {
		if err := nodes[i%len(nodes)].Put(ctx, goldRing, fmt.Sprintf("key-%d", i), []byte("payload"), nil, WriteOptions{}); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for j := 0; ; j++ {
				select {
				case <-stop:
					return
				default:
				}
				n := nodes[(g+j)%len(nodes)]
				// Transient quorum errors while replicas move between
				// servers are expected mid-epoch; only data loss after
				// the epochs settle is a failure (checked below).
				_, _ = n.Get(ctx, goldRing, fmt.Sprintf("key-%d", j%seeded), ReadOptions{})
				if j%3 == 0 {
					_ = n.Put(ctx, goldRing, fmt.Sprintf("live-%d-%d", g, j), []byte("v"), nil, WriteOptions{})
				}
			}
		}(g)
	}

	params := agent.DefaultParams()
	params.F = 1 // fast hysteresis so migrations actually fire under test
	rent := economy.DefaultRentParams()
	for epoch := 0; epoch < 3; epoch++ {
		for _, n := range nodes {
			if _, _, err := n.AnnounceRent(ctx, rent); err != nil {
				t.Fatalf("announce: %v", err)
			}
		}
		for _, n := range nodes {
			if _, err := n.RunEconomicEpoch(ctx, params, rent); err != nil {
				t.Fatalf("epoch: %v", err)
			}
		}
	}
	close(stop)
	wg.Wait()

	for i := 0; i < seeded; i++ {
		res, err := nodes[0].Get(ctx, goldRing, fmt.Sprintf("key-%d", i), ReadOptions{})
		if err != nil {
			t.Fatalf("Get key-%d after epochs: %v", i, err)
		}
		if len(res.Values) != 1 || string(res.Values[0]) != "payload" {
			t.Fatalf("key-%d corrupted after parallel epochs: %q", i, res.Values)
		}
	}
}

// TestEpochWorkersBounded pins the config contract: a negative worker
// count is rejected, an explicit bound of 1 degrades to the sequential
// epoch and still converges.
func TestEpochWorkersBounded(t *testing.T) {
	cfg := testConfig()
	cfg.EpochWorkers = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative EpochWorkers accepted")
	}

	cfg = testConfig()
	cfg.EpochWorkers = 1
	mesh := transport.NewMemory()
	t.Cleanup(func() { mesh.Close() })
	var nodes []*Node
	for _, ni := range cfg.Nodes {
		n, err := NewNode(cfg, ni.Name, mesh, store.NewMemory())
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	for _, n := range nodes {
		n.ConfirmPeers()
	}
	if err := nodes[0].Put(ctx, goldRing, "k", []byte("v"), nil, WriteOptions{}); err != nil {
		t.Fatal(err)
	}
	rent := economy.DefaultRentParams()
	for _, n := range nodes {
		if _, _, err := n.AnnounceRent(ctx, rent); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range nodes {
		if _, err := n.RunEconomicEpoch(ctx, agent.DefaultParams(), rent); err != nil {
			t.Fatal(err)
		}
	}
	res, err := nodes[1].Get(ctx, goldRing, "k", ReadOptions{})
	if err != nil || len(res.Values) != 1 || string(res.Values[0]) != "v" {
		t.Fatalf("sequential-epoch cluster lost data: %q, %v", res.Values, err)
	}
}
