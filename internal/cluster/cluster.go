// Package cluster implements the Skute prototype store the paper lists as
// future work: a replicated key-value cluster whose replica placement is
// driven by the same virtual economy as the simulator.
//
// Each Node serves reads and writes with configurable R/W quorums over the
// multi-ring partition layout, performs read repair, synchronizes replicas
// with Merkle-tree anti-entropy, detects failed peers through heartbeats,
// and — at the end of each economic epoch — runs the Section II-C agent
// for every virtual node it hosts, replicating, migrating or deleting
// partition replicas across the cluster accordingly. Rents are announced
// to a board node elected as the lowest-named alive member.
//
// Replica placement is a versioned, gossip-carried cluster state
// (internal/placement): epoch decisions stamp last-writer-wins deltas,
// heartbeats piggyback per-ring digests, and digest mismatches trigger
// delta pulls, so every node converges to the same replica map under
// churn without coordinated broadcasts. Start/Stop run the node's
// autonomous loops (heartbeat, gossip-reconcile, anti-entropy, economic
// epoch) on jittered intervals.
package cluster

import (
	"fmt"
	"sort"
	"time"

	"skute/internal/availability"
	"skute/internal/ring"
	"skute/internal/topology"
)

// NodeInfo describes one member of the cluster. Locations travel as
// slash-separated 6-level paths (see topology.ParsePath) so that the
// descriptor is plainly serializable.
type NodeInfo struct {
	Name string
	Addr string
	// Bind optionally overrides the address the node LISTENS on while
	// Addr stays what peers and clients dial. Scenario harnesses use it
	// to front a node with a fault-injection proxy: Addr is the proxy,
	// Bind the real socket behind it. Empty means listen on Addr. Bind
	// is node-local and never gossiped.
	Bind        string
	LocPath     string
	Confidence  float64
	MonthlyRent float64
	// Capacity is the storage capacity in bytes used for the rent's
	// storage_usage term.
	Capacity int64
	// QueryCapacity is the per-epoch query capacity for the rent's
	// query_load term.
	QueryCapacity float64
}

// Loc parses the node's location path.
func (n NodeInfo) Loc() (topology.Location, error) { return topology.ParsePath(n.LocPath) }

// RingSpec declares one virtual ring: an application's availability class
// with its partition count and SLA replica target.
type RingSpec struct {
	App        string
	Class      string
	Partitions int
	// Replicas is the SLA target; the availability threshold is
	// availability.ThresholdForReplicas(Replicas).
	Replicas int
}

// ID returns the ring identity.
func (r RingSpec) ID() ring.RingID { return ring.RingID{App: r.App, Class: r.Class} }

// Config is the static cluster descriptor every node boots from.
type Config struct {
	Nodes []NodeInfo
	Rings []RingSpec
	// ReadQuorum/WriteQuorum are the R/W parameters; both default to a
	// majority of the smallest ring's replica target when zero.
	ReadQuorum  int
	WriteQuorum int
	// SuspectAfter is the heartbeat staleness after which a peer counts
	// as suspect (default 10s).
	SuspectAfter time.Duration
	// DeadAfter is the additional refutation grace after suspicion
	// before a member is declared dead and its partitions re-placed
	// (default 3× SuspectAfter).
	DeadAfter time.Duration
	// EpochWorkers bounds the worker pool RunEconomicEpoch uses to run
	// hosted virtual-node decisions concurrently; 0 selects GOMAXPROCS,
	// negative is invalid.
	EpochWorkers int
	// TransferChunkItems caps the keys per partition-transfer chunk
	// (default 128); TransferBytesPerSec throttles this node's donor-side
	// transfer bandwidth (0 = unlimited).
	TransferChunkItems  int
	TransferBytesPerSec int64
	// TraceEvents bounds the control-plane decision-trace ring served on
	// GET /trace (0 selects the default 1024).
	TraceEvents int
	// ReadCacheEntries bounds the coordinator hot-key read cache (total
	// entries across shards; 0 selects the default 4096). The cache
	// serves only ConsistencyOne reads of keys the node does not host —
	// see readpath.go.
	ReadCacheEntries int
	// ReadCacheTTL bounds how long a cached read may be served when no
	// placement delta invalidates it first (0 selects the default
	// 500ms).
	ReadCacheTTL time.Duration
	// MaxInflight bounds the node's admission gate: the concurrent
	// requests (client ops plus background traffic; membership
	// heartbeats are exempt) admitted before the node sheds with
	// ErrOverloaded. Background anti-entropy/transfer/epoch traffic
	// sheds at half this bound, reads at 90%, writes at the full bound.
	// 0 selects the default (256); set DisableAdmission to turn
	// shedding off entirely.
	MaxInflight int
	// DisableAdmission turns the admission gate off: every request is
	// admitted no matter the load, restoring the pre-resilience
	// queue-until-timeout behavior (the -shed=false daemon flag).
	DisableAdmission bool
	// BreakerFailures is the consecutive-failure count that opens a
	// peer's circuit breaker (0 selects the default 5).
	BreakerFailures int
	// BreakerOpenFor is how long an opened breaker refuses the peer
	// before half-open probing (0 selects the default 2s).
	BreakerOpenFor time.Duration
	// BreakerSlowAfter, when positive, additionally counts successful
	// calls slower than this as breaker failures — the signal that
	// routes hedged reads and quorum fan-out around a peer that is up
	// but sick. 0 disables latency-based tripping.
	BreakerSlowAfter time.Duration
}

// defaultMaxInflight is the admission-gate bound when Config.MaxInflight
// is zero: generous enough that a healthy node never sheds, small enough
// that a saturated node fast-fails instead of queueing every request
// into its deadline.
const defaultMaxInflight = 256

// Validate rejects unusable descriptors.
func (c Config) Validate() error {
	if len(c.Nodes) == 0 {
		return fmt.Errorf("cluster: no nodes")
	}
	seenName := map[string]bool{}
	seenAddr := map[string]bool{}
	for i, n := range c.Nodes {
		if n.Name == "" || n.Addr == "" {
			return fmt.Errorf("cluster: node %d needs a name and an address", i)
		}
		if seenName[n.Name] || seenAddr[n.Addr] {
			return fmt.Errorf("cluster: duplicate node name or address %q/%q", n.Name, n.Addr)
		}
		seenName[n.Name] = true
		seenAddr[n.Addr] = true
		if _, err := n.Loc(); err != nil {
			return fmt.Errorf("cluster: node %s: %w", n.Name, err)
		}
		if n.Confidence < 0 || n.Confidence > 1 {
			return fmt.Errorf("cluster: node %s confidence %v outside [0,1]", n.Name, n.Confidence)
		}
		if n.MonthlyRent <= 0 || n.Capacity <= 0 || n.QueryCapacity <= 0 {
			return fmt.Errorf("cluster: node %s needs positive rent, capacity and query capacity", n.Name)
		}
	}
	if len(c.Rings) == 0 {
		return fmt.Errorf("cluster: no rings")
	}
	for i, r := range c.Rings {
		if r.App == "" || r.Class == "" {
			return fmt.Errorf("cluster: ring %d needs app and class", i)
		}
		if r.Partitions < 1 {
			return fmt.Errorf("cluster: ring %s needs partitions", r.ID())
		}
		if r.Replicas < 1 || r.Replicas > len(c.Nodes) {
			return fmt.Errorf("cluster: ring %s replica target %d outside [1,%d]", r.ID(), r.Replicas, len(c.Nodes))
		}
	}
	if c.ReadQuorum < 0 || c.WriteQuorum < 0 {
		return fmt.Errorf("cluster: negative quorum")
	}
	if c.EpochWorkers < 0 {
		return fmt.Errorf("cluster: negative epoch workers")
	}
	if c.SuspectAfter < 0 || c.DeadAfter < 0 {
		return fmt.Errorf("cluster: negative failure-detector timeout")
	}
	if c.TransferChunkItems < 0 || c.TransferBytesPerSec < 0 {
		return fmt.Errorf("cluster: negative transfer tuning")
	}
	if c.TraceEvents < 0 {
		return fmt.Errorf("cluster: negative trace capacity")
	}
	if c.ReadCacheEntries < 0 || c.ReadCacheTTL < 0 {
		return fmt.Errorf("cluster: negative read-cache tuning")
	}
	if c.MaxInflight < 0 {
		return fmt.Errorf("cluster: negative admission gate")
	}
	if c.BreakerFailures < 0 || c.BreakerOpenFor < 0 || c.BreakerSlowAfter < 0 {
		return fmt.Errorf("cluster: negative breaker tuning")
	}
	return nil
}

// quorums resolves the effective R/W values for a ring target.
func (c Config) quorums(target int) (r, w int) {
	r, w = c.ReadQuorum, c.WriteQuorum
	if r == 0 {
		r = target/2 + 1
	}
	if w == 0 {
		w = target/2 + 1
	}
	if r > target {
		r = target
	}
	if w > target {
		w = target
	}
	return r, w
}

// buildLayout constructs the multi-ring with a deterministic,
// diversity-aware initial placement: every node derives the identical
// layout from the descriptor, so no coordination is needed at bootstrap.
// Placement seeds each partition on a node chosen round-robin and greedily
// adds the replica maximizing Eq. 3 (pure diversity at bootstrap: equal
// rents, g = 1) until the SLA target is met.
func buildLayout(cfg Config) (*ring.MultiRing, map[ring.RingID]RingSpec, error) {
	hosts := make([]availability.Host, len(cfg.Nodes))
	for i, n := range cfg.Nodes {
		loc, err := n.Loc()
		if err != nil {
			return nil, nil, err
		}
		hosts[i] = availability.Host{ID: ring.ServerID(i), Loc: loc, Conf: n.Confidence}
	}
	mr := ring.NewMultiRing()
	specs := make(map[ring.RingID]RingSpec, len(cfg.Rings))
	for _, spec := range cfg.Rings {
		r, err := mr.Add(spec.ID(), spec.Partitions)
		if err != nil {
			return nil, nil, err
		}
		specs[spec.ID()] = spec
		for pi, p := range r.Partitions() {
			seed := hosts[pi%len(hosts)]
			p.AddReplica(seed.ID)
			current := []availability.Host{seed}
			for len(current) < spec.Replicas {
				var cands []availability.Candidate
				for _, h := range hosts {
					if !p.HasReplica(h.ID) {
						cands = append(cands, availability.Candidate{Host: h, G: 1})
					}
				}
				best, ok := availability.Best(current, cands)
				if !ok {
					break
				}
				p.AddReplica(best.ID)
				current = append(current, best.Host)
			}
		}
	}
	return mr, specs, nil
}

// boardOf elects the board: the lowest-named alive node.
func boardOf(alive []string) (string, bool) {
	if len(alive) == 0 {
		return "", false
	}
	sorted := append([]string(nil), alive...)
	sort.Strings(sorted)
	return sorted[0], true
}
