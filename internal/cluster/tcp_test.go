package cluster

import (
	"context"
	"fmt"
	"testing"
	"time"

	"skute/internal/ring"
	"skute/internal/store"
	"skute/internal/transport"
)

// TestTCPEndToEnd boots a 3-node cluster over real sockets — the same
// code path as cmd/skuted — and drives it through the Client used by
// cmd/skutectl.
func TestTCPEndToEnd(t *testing.T) {
	// Bind three listeners first to learn their ports, then build the
	// descriptor around them.
	trs := make([]*transport.TCP, 3)
	addrs := make([]string, 3)
	for i := range trs {
		trs[i] = transport.NewTCP()
		defer trs[i].Close()
		// Bind a throwaway handler to allocate the port, then the real
		// node re-serves on the same transport at the same address.
		if err := trs[i].Serve("127.0.0.1:0", func(context.Context, transport.Envelope) (transport.Envelope, error) {
			return transport.Envelope{}, fmt.Errorf("not ready")
		}); err != nil {
			t.Fatal(err)
		}
		addrs[i] = trs[i].Addrs()[0]
	}

	cfg := Config{
		Rings: []RingSpec{{App: "app1", Class: "gold", Partitions: 4, Replicas: 2}},
	}
	conts := []string{"eu", "us", "ap"}
	for i := range trs {
		cfg.Nodes = append(cfg.Nodes, NodeInfo{
			Name:          fmt.Sprintf("n%d", i),
			Addr:          addrs[i],
			LocPath:       fmt.Sprintf("%s/c/dc0/r0/k0/s%d", conts[i], i),
			Confidence:    1,
			MonthlyRent:   100,
			Capacity:      1 << 30,
			QueryCapacity: 1000,
		})
	}

	nodes := make([]*Node, 3)
	for i := range trs {
		// A second Serve on the same TCP transport binds a new port; for
		// the test we want the node on the already-bound address, so use
		// a fresh transport per node bound to the reserved address. The
		// original listener must be released first.
		trs[i].Close()
		nt := transport.NewTCP()
		defer nt.Close()
		var err error
		nodes[i], err = NewNode(cfg, fmt.Sprintf("n%d", i), &fixedAddrTCP{TCP: nt, addr: addrs[i]}, store.NewMemory())
		if err != nil {
			t.Fatalf("NewNode over TCP: %v", err)
		}
	}
	for _, n := range nodes {
		n.ConfirmPeers()
	}

	id := ring.RingID{App: "app1", Class: "gold"}
	client := NewClient(transport.NewTCP(), addrs[0])
	if err := client.Put(ctx, id, "greeting", []byte("hello tcp"), nil, WriteOptions{}); err != nil {
		t.Fatalf("client put: %v", err)
	}
	// Read through a different node.
	client2 := NewClient(transport.NewTCP(), addrs[2])
	values, vctx, err := client2.Get(ctx, id, "greeting", ReadOptions{})
	if err != nil {
		t.Fatalf("client get: %v", err)
	}
	if len(values) != 1 || string(values[0]) != "hello tcp" {
		t.Fatalf("get = %q", values)
	}
	if err := client2.Put(ctx, id, "greeting", []byte("v2"), vctx, WriteOptions{}); err != nil {
		t.Fatal(err)
	}
	values, vctx, _ = client.Get(ctx, id, "greeting", ReadOptions{})
	if len(values) != 1 || string(values[0]) != "v2" {
		t.Fatalf("after rmw: %q", values)
	}
	if err := client.Delete(ctx, id, "greeting", vctx, WriteOptions{}); err != nil {
		t.Fatal(err)
	}
	values, _, _ = client.Get(ctx, id, "greeting", ReadOptions{})
	if len(values) != 0 {
		t.Fatalf("after delete: %q", values)
	}

	// Batched multi-key operations flow over the same wire: one MPut,
	// one MGet, per-request consistency and timeout included.
	entries := []Entry{
		{Key: "batch-a", Value: []byte("va")},
		{Key: "batch-b", Value: []byte("vb")},
		{Key: "batch-c", Value: []byte("vc")},
	}
	wopts := WriteOptions{Consistency: ConsistencyQuorum, Timeout: 5 * time.Second}
	if err := client.MPut(ctx, id, entries, wopts); err != nil {
		t.Fatalf("client mput: %v", err)
	}
	got, err := client2.MGet(ctx, id, []string{"batch-a", "batch-b", "batch-c", "batch-missing"},
		ReadOptions{Consistency: ConsistencyQuorum, Timeout: 5 * time.Second})
	if err != nil {
		t.Fatalf("client mget: %v", err)
	}
	for _, e := range entries {
		r := got[e.Key]
		if len(r.Values) != 1 || string(r.Values[0]) != string(e.Value) {
			t.Errorf("mget %s = %q, want %q", e.Key, r.Values, e.Value)
		}
	}
	if len(got["batch-missing"].Values) != 0 {
		t.Errorf("missing key returned %q", got["batch-missing"].Values)
	}
	// Heartbeats flow over TCP too.
	for _, n := range nodes {
		n.SendHeartbeats(ctx)
	}
	for _, n := range nodes {
		for _, p := range nodes {
			if !n.alive(p.Name()) {
				t.Errorf("%s sees %s dead over TCP", n.Name(), p.Name())
			}
		}
	}
}

// fixedAddrTCP redirects Serve to a predetermined address so the
// descriptor (written before the nodes boot) stays accurate.
type fixedAddrTCP struct {
	*transport.TCP
	addr string
}

func (f *fixedAddrTCP) Serve(_ string, h transport.Handler) error {
	return f.TCP.Serve(f.addr, h)
}
