package cluster

import (
	"context"
	"fmt"
	"time"

	"skute/internal/vclock"
)

// withTimeout layers an optional per-request timeout over the caller's
// context (the earlier deadline wins); the returned cancel must run.
// Every per-request Timeout in this package flows through here. Without
// a timeout the context passes through untouched — deliberately NOT
// wrapped in a cancel — so that a write returning at its ack threshold
// does not abort the still-in-flight replication to the remaining
// replicas.
func withTimeout(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	if d > 0 {
		return context.WithTimeout(ctx, d)
	}
	return ctx, func() {}
}

// Consistency selects how many replicas must acknowledge a request,
// overriding the cluster Config quorums per request. Zero is the default
// (use the Config quorums); the negative sentinels name the symbolic
// levels; a positive value demands exactly that many replicas and is
// validated against the ring's replica target.
type Consistency int

const (
	// ConsistencyDefault uses the Config.ReadQuorum/WriteQuorum values
	// (themselves defaulting to a majority of the ring's replica target).
	ConsistencyDefault Consistency = 0
	// ConsistencyOne acknowledges after a single replica — the paper's
	// cheap/fast end of the availability-vs-latency trade.
	ConsistencyOne Consistency = -1
	// ConsistencyQuorum acknowledges after a majority of the ring's
	// replica target, regardless of the Config override.
	ConsistencyQuorum Consistency = -2
	// ConsistencyAll acknowledges only after every replica.
	ConsistencyAll Consistency = -3
)

// ConsistencyCount demands exactly n replica acknowledgements. Requests
// carrying a count above the ring's replica target are rejected.
func ConsistencyCount(n int) Consistency { return Consistency(n) }

// String names the level for errors and logs.
func (c Consistency) String() string {
	switch {
	case c == ConsistencyDefault:
		return "default"
	case c == ConsistencyOne:
		return "one"
	case c == ConsistencyQuorum:
		return "quorum"
	case c == ConsistencyAll:
		return "all"
	case c > 0:
		return fmt.Sprintf("count(%d)", int(c))
	default:
		return fmt.Sprintf("invalid(%d)", int(c))
	}
}

// resolve maps the level to a concrete replica count for a ring with the
// given replica target, falling back to cfgDefault (the Config quorum,
// already clamped) for ConsistencyDefault.
func (c Consistency) resolve(target, cfgDefault int) (int, error) {
	switch {
	case c == ConsistencyDefault:
		return cfgDefault, nil
	case c == ConsistencyOne:
		return 1, nil
	case c == ConsistencyQuorum:
		return target/2 + 1, nil
	case c == ConsistencyAll:
		return target, nil
	case c > 0:
		if int(c) > target {
			return 0, fmt.Errorf("cluster: consistency %s exceeds the ring's %d replicas", c, target)
		}
		return int(c), nil
	default:
		return 0, fmt.Errorf("cluster: invalid consistency level %d", int(c))
	}
}

// ReadOptions tune one read request.
//
// Read-only contract: the value slices a Get returns must not be
// mutated by the caller. At Quorum and above every slice is a private
// copy, but ConsistencyOne reads may be served from the coordinator's
// hot-key cache, whose slices are shared across hits — writing into
// one would corrupt what every later cache hit observes.
type ReadOptions struct {
	// Consistency is the per-request R override.
	Consistency Consistency
	// Timeout, when positive, bounds the whole request: the coordinator
	// derives a deadline from it (combined with whatever deadline the
	// caller's context already carries — the earlier one wins).
	Timeout time.Duration
}

// WriteOptions tune one write (or delete) request.
type WriteOptions struct {
	// Consistency is the per-request W override.
	Consistency Consistency
	// Timeout, when positive, bounds the whole request.
	Timeout time.Duration
}

// Entry is one key/value pair of a batched MultiPut. Context carries the
// causal version context from a preceding read of the key (nil for a
// blind write).
type Entry struct {
	Key     string
	Value   []byte
	Context vclock.VC
}
