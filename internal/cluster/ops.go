package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"

	"skute/internal/ring"
	"skute/internal/store"
	"skute/internal/transport"
	"skute/internal/vclock"
)

// GetResult is the outcome of a quorum read: the surviving sibling values
// and the causal context to pass back into Put for a read-modify-write.
type GetResult struct {
	// Values are the concurrent sibling values (one element in the common
	// no-conflict case). Empty means not found.
	Values [][]byte
	// Context is the merged clock of everything observed; a Put carrying
	// it supersedes all read siblings.
	Context vclock.VC
	// Replied is how many replicas answered.
	Replied int
}

// Get performs a quorum read of the key on its partition's replicas,
// merges the versions under vector-clock causality, read-repairs stale
// replicas and returns the surviving siblings.
func (n *Node) Get(id ring.RingID, key string) (GetResult, error) {
	spec, ok := n.specs[id]
	if !ok {
		return GetResult{}, fmt.Errorf("cluster: unknown ring %s", id)
	}
	n.mu.RLock()
	r := n.rings.Ring(id)
	p := r.Lookup(ring.HashKey(key))
	part := p.ID
	n.mu.RUnlock()
	replicas := n.replicasOf(p)
	readQ, _ := n.cfg.quorums(spec.Replicas)

	n.countQuery(id, part)

	// Query readQ+1 replicas concurrently (the +1 over-read improves
	// repair, matching the old sequential loop's contact count) and
	// return as soon as that many answered: one hung-but-not-yet-
	// suspected replica must not pin every read to the transport timeout
	// when a quorum already responded. A failure launches the next
	// standby replica; stragglers complete into the buffered channel and
	// are discarded. The sibling merge below is order-independent.
	alive := replicas[:0:0]
	for _, name := range replicas {
		if n.alive(name) {
			alive = append(alive, name)
		}
	}
	type replicaResp struct {
		name string
		vs   []store.Version
		ok   bool
	}
	resps := make(chan replicaResp, len(alive))
	env := transport.Envelope{Kind: kindGet, Payload: encode(getReq{Ring: id, Key: key})}
	target := readQ + 1
	if target > len(alive) {
		target = len(alive)
	}
	next, inflight := 0, 0
	startNext := func() {
		name := alive[next]
		next++
		inflight++
		if name == n.self.Name {
			resps <- replicaResp{name: name, vs: n.eng.Get(storageKey(id, key)), ok: true}
			return
		}
		go func(name string) {
			info, _ := n.info(name)
			resp, err := n.tr.Call(info.Addr, env)
			if err != nil {
				resps <- replicaResp{name: name}
				return
			}
			var gr getResp
			if err := decode(resp.Payload, &gr); err != nil {
				resps <- replicaResp{name: name}
				return
			}
			resps <- replicaResp{name: name, vs: gr.Versions, ok: true}
		}(name)
	}
	for next < target {
		startNext()
	}

	var gathered []store.Version
	var responders []string
	for inflight > 0 && len(responders) < target {
		r := <-resps
		inflight--
		if r.ok {
			gathered = append(gathered, r.vs...)
			responders = append(responders, r.name)
		} else if next < len(alive) {
			startNext()
		}
	}
	if len(responders) < readQ {
		return GetResult{}, fmt.Errorf("cluster: read quorum not met for %s/%s: %d/%d replicas answered",
			id, key, len(responders), readQ)
	}

	merged := store.MergeSiblings(gathered)
	// Read repair: push the merged set back to the responders; engines
	// reject anything they already dominate, so this is idempotent.
	for _, v := range merged {
		n.fanoutPut(id, key, v, responders)
	}

	res := GetResult{Replied: len(responders), Context: vclock.New()}
	for _, v := range merged {
		res.Context = vclock.Merge(res.Context, v.Clock)
		if !v.Tombstone {
			res.Values = append(res.Values, v.Value)
		}
	}
	return res, nil
}

// Put writes the value under a clock derived from the read context,
// requiring the write quorum of live replicas to acknowledge.
func (n *Node) Put(id ring.RingID, key string, value []byte, context vclock.VC) error {
	return n.write(id, key, store.Version{Value: value, Clock: context.Clone().Tick(n.self.Name)})
}

// Delete writes a tombstone derived from the read context.
func (n *Node) Delete(id ring.RingID, key string, context vclock.VC) error {
	return n.write(id, key, store.Version{Tombstone: true, Clock: context.Clone().Tick(n.self.Name)})
}

// write fans a version out to the partition's replicas.
func (n *Node) write(id ring.RingID, key string, v store.Version) error {
	spec, ok := n.specs[id]
	if !ok {
		return fmt.Errorf("cluster: unknown ring %s", id)
	}
	n.mu.RLock()
	r := n.rings.Ring(id)
	p := r.Lookup(ring.HashKey(key))
	part := p.ID
	n.mu.RUnlock()
	replicas := n.replicasOf(p)
	_, writeQ := n.cfg.quorums(spec.Replicas)

	n.countQuery(id, part)

	acks := n.fanoutPut(id, key, v, replicas)
	if acks < writeQ {
		return fmt.Errorf("cluster: write quorum not met for %s/%s: %d/%d acks", id, key, acks, writeQ)
	}
	return nil
}

// fanoutPut stores the version on every named alive replica concurrently
// and returns the ack count.
func (n *Node) fanoutPut(id ring.RingID, key string, v store.Version, replicas []string) int {
	acks := 0
	var remotes []string
	for _, name := range replicas {
		if !n.alive(name) {
			continue
		}
		if name == n.self.Name {
			if _, err := n.eng.Put(storageKey(id, key), v); err == nil {
				acks++
			}
			continue
		}
		remotes = append(remotes, name)
	}
	if len(remotes) == 0 {
		return acks
	}
	env := transport.Envelope{Kind: kindPut, Payload: encode(putReq{Ring: id, Key: key, Version: v})}
	if len(remotes) == 1 { // skip the pool for the common R=2 local-write case
		info, _ := n.info(remotes[0])
		if _, err := n.tr.Call(info.Addr, env); err == nil {
			acks++
		}
		return acks
	}
	var remoteAcks int32
	var wg sync.WaitGroup
	for _, name := range remotes {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			info, _ := n.info(name)
			if _, err := n.tr.Call(info.Addr, env); err == nil {
				atomic.AddInt32(&remoteAcks, 1)
			}
		}(name)
	}
	wg.Wait()
	return acks + int(remoteAcks)
}

// countQuery accounts one query against the vnode hosting the partition
// locally (if any), feeding the economy.
func (n *Node) countQuery(id ring.RingID, part int) {
	n.qmu.Lock()
	n.queries[vnodeKey(id, part)]++
	n.qmu.Unlock()
}

// vnodeKey names a hosted vnode for the ledgers/queries maps.
func vnodeKey(id ring.RingID, part int) string {
	return fmt.Sprintf("%s#%d", id, part)
}
