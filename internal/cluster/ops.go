package cluster

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"skute/internal/resilience"
	"skute/internal/ring"
	"skute/internal/store"
	"skute/internal/transport"
	"skute/internal/vclock"
)

// GetResult is the outcome of a quorum read: the surviving sibling values
// and the causal context to pass back into Put for a read-modify-write.
type GetResult struct {
	// Values are the concurrent sibling values (one element in the common
	// no-conflict case). Empty means not found.
	Values [][]byte
	// Context is the merged clock of everything observed; a Put carrying
	// it supersedes all read siblings.
	Context vclock.VC
	// Replied is how many replicas answered.
	Replied int
}

// tailSendTimeout bounds the detached post-quorum fan-out sends in
// callAll: long enough to ride out a slow replica, short enough that a
// dead one releases the goroutine and pooled connection promptly.
const tailSendTimeout = 10 * time.Second

// readQuorum resolves the effective per-request R for a ring.
func (n *Node) readQuorum(id ring.RingID, c Consistency) (int, error) {
	spec, ok := n.specs[id]
	if !ok {
		return 0, fmt.Errorf("%w %s", ErrUnknownRing, id)
	}
	cfgR, _ := n.cfg.quorums(spec.Replicas)
	return c.resolve(spec.Replicas, cfgR)
}

// writeQuorum resolves the effective per-request W for a ring.
func (n *Node) writeQuorum(id ring.RingID, c Consistency) (int, error) {
	spec, ok := n.specs[id]
	if !ok {
		return 0, fmt.Errorf("%w %s", ErrUnknownRing, id)
	}
	_, cfgW := n.cfg.quorums(spec.Replicas)
	return c.resolve(spec.Replicas, cfgW)
}

// quorumForGroup re-sizes a ring-resolved quorum for the replica set one
// partition group actually carries. During churn a placement entry can
// temporarily hold MORE replicas than the ring's spec target — a
// transfer lists donor and adopter side by side until the handoff
// completes — and a majority of the spec target does not overlap on such
// an inflated set (2 of an entry's 5 replicas can ack a write that a
// later 2-of-5 read never sees). The symbolic levels therefore
// re-resolve against the live count: default and quorum take a majority
// of it, all takes all of it. One and an explicit Count(n) keep their
// fixed sizes — the caller asked for an absolute number, not an overlap
// guarantee. Entries at or below the spec target keep the ring-resolved
// quorum unchanged.
func (n *Node) quorumForGroup(ringQ int, c Consistency, id ring.RingID, liveN int, write bool) int {
	spec, ok := n.specs[id]
	if !ok || liveN <= spec.Replicas || c == ConsistencyOne || c > 0 {
		return ringQ
	}
	switch c {
	case ConsistencyAll:
		return liveN
	case ConsistencyQuorum:
		return liveN/2 + 1
	default: // ConsistencyDefault
		r, w := n.cfg.quorums(liveN)
		if write {
			return w
		}
		return r
	}
}

// Get performs a quorum read of the key on its partition's replicas,
// merges the versions under vector-clock causality, read-repairs stale
// replicas and returns the surviving siblings. The context cancels or
// bounds the whole operation; opts select the per-request R and timeout.
// It shares the partition-group read with MultiGet but skips the batch
// bookkeeping — single-key reads are the hot path.
//
// A ConsistencyOne read takes the tiered fast path first (readpath.go):
// served from the local store when this node hosts a current replica
// under a fresh read lease, or from the coordinator hot-key cache when
// it does not — no synchronous remote envelope either way. Fast-path
// misses fall through to the fan-out below, whose merged result refills
// the cache.
func (n *Node) Get(ctx context.Context, id ring.RingID, key string, opts ReadOptions) (GetResult, error) {
	defer n.opTel.hist(opGet, opts.Consistency).RecordSince(time.Now())
	readQ, err := n.readQuorum(id, opts.Consistency)
	if err != nil {
		return GetResult{}, err
	}
	ctx, cancel := withTimeout(ctx, opts.Timeout)
	defer cancel()
	if err := ctx.Err(); err != nil {
		return GetResult{}, err
	}
	release, err := n.gate.Enter(ctx, resilience.Read)
	if err != nil {
		return GetResult{}, err
	}
	defer release()
	n.mu.RLock()
	p := n.rings.Ring(id).Lookup(ring.HashKey(key))
	part := p.ID
	selfHosts := p.HasReplica(ring.ServerID(n.selfI))
	g := partGroup{part: p.ID, keys: []string{key}, replicas: make([]string, len(p.Replicas))}
	for i, rid := range p.Replicas {
		g.replicas[i] = n.nodeName(rid)
	}
	n.mu.RUnlock()

	one := opts.Consistency == ConsistencyOne
	if one {
		if res, ok := n.tryFastOne(id, part, key, selfHosts); ok {
			return res, nil
		}
	}
	readQ = n.quorumForGroup(readQ, opts.Consistency, id, len(g.replicas), false)
	res, merged, err := n.readPartitionGroup(ctx, id, g, readQ)
	if err != nil {
		return GetResult{}, err
	}
	if one && !selfHosts {
		pver, porigin := n.pmap.Stamp(id, part)
		n.rcache.fill(cacheKey{ring: id, part: part, key: key}, merged[key], pver, porigin, n.Now())
	}
	return res[key], nil
}

// tryFastOne attempts the no-envelope tiers of a ConsistencyOne read.
// Both tiers require a fresh read lease (contactFresh): a node that has
// not heard from any peer within the suspicion window may hold an
// arbitrarily stale placement view and must pay the fan-out, which
// fails fast when the cluster is truly unreachable.
func (n *Node) tryFastOne(id ring.RingID, part int, key string, selfHosts bool) (GetResult, bool) {
	if !n.contactFresh() {
		n.counters.ReadsLeaseStale.Inc()
		return GetResult{}, false
	}
	if selfHosts {
		// This node hosts a current replica (the materialized ring IS the
		// latest accepted placement view — any delta that evicted us
		// already rewrote it): serve the local copy and sample an async
		// repair read so hot local keys still converge.
		n.countQueries(id, part, 1)
		n.counters.ReadsLocal.Inc()
		res := resultOf(n.eng.Get(storageKey(id, key)))
		n.maybeSampleRepair(id, key)
		return res, true
	}
	pver, porigin := n.pmap.Stamp(id, part)
	if vs, hit := n.rcache.get(cacheKey{ring: id, part: part, key: key}, pver, porigin, n.Now()); hit {
		n.countQueries(id, part, 1)
		n.counters.ReadsCacheHit.Inc()
		return resultOf(vs), true
	}
	n.counters.ReadsCacheMiss.Inc()
	return GetResult{}, false
}

// resultOf builds a GetResult from one replica-local (or cached)
// sibling set. Values alias the input slices — copy-on-read: Engine.Get
// hands out private copies already, and cache-served slices are shared
// under the read-only contract documented on ReadOptions.
func resultOf(vs []store.Version) GetResult {
	res := GetResult{Replied: 1, Context: vclock.New()}
	for _, v := range vs {
		res.Context = vclock.Merge(res.Context, v.Clock)
		if !v.Tombstone {
			res.Values = append(res.Values, v.Value)
		}
	}
	return res
}

// maybeSampleRepair triggers a background quorum read — and with it the
// standard read-repair machinery — for roughly one in
// readRepairSampleEvery lease-served local reads, bounded to
// maxSampledRepairs in flight so a read burst cannot stack goroutines
// faster than quorum reads drain.
func (n *Node) maybeSampleRepair(id ring.RingID, key string) {
	if n.repairTick.Add(1)%readRepairSampleEvery != 0 {
		return
	}
	if n.repairInflight.Add(1) > maxSampledRepairs {
		n.repairInflight.Add(-1)
		return
	}
	n.counters.ReadRepairSampled.Inc()
	go func() {
		defer n.repairInflight.Add(-1)
		ctx, cancel := context.WithTimeout(context.Background(), tailSendTimeout)
		defer cancel()
		readQ, err := n.readQuorum(id, ConsistencyQuorum)
		if err != nil {
			return
		}
		groups := n.groupByPartition(id, []string{key})
		if len(groups) != 1 {
			return
		}
		g := groups[0]
		_, _, _ = n.readPartitionGroup(ctx, id, g, n.quorumForGroup(readQ, ConsistencyQuorum, id, len(g.replicas), false))
	}()
}

// MultiGet reads a batch of keys in one coordinated operation: keys are
// grouped by partition and each replica of a partition receives a single
// envelope covering the partition's whole key group — R+1 contacted
// replicas per partition instead of per key. Results map each requested
// key to its sibling values and causal context (a missing key maps to an
// empty GetResult, matching single-key Get).
func (n *Node) MultiGet(ctx context.Context, id ring.RingID, keys []string, opts ReadOptions) (map[string]GetResult, error) {
	defer n.opTel.hist(opMGet, opts.Consistency).RecordSince(time.Now())
	readQ, err := n.readQuorum(id, opts.Consistency)
	if err != nil {
		return nil, err
	}
	ctx, cancel := withTimeout(ctx, opts.Timeout)
	defer cancel()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	release, err := n.gate.Enter(ctx, resilience.Read)
	if err != nil {
		return nil, err
	}
	defer release()
	if len(keys) == 0 {
		return map[string]GetResult{}, nil
	}

	groups := n.groupByPartition(id, keys)
	if len(groups) == 1 { // single partition: no fan-out bookkeeping
		g := groups[0]
		res, _, err := n.readPartitionGroup(ctx, id, g, n.quorumForGroup(readQ, opts.Consistency, id, len(g.replicas), false))
		return res, err
	}
	results := make(map[string]GetResult, len(keys))
	var mu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup
	for _, g := range groups {
		wg.Add(1)
		go func(g partGroup) {
			defer wg.Done()
			part, _, err := n.readPartitionGroup(ctx, id, g, n.quorumForGroup(readQ, opts.Consistency, id, len(g.replicas), false))
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			for k, r := range part {
				results[k] = r
			}
		}(g)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

// partGroup is the slice of a multi-key batch that falls on one
// partition, with the partition's replica snapshot.
type partGroup struct {
	part     int
	keys     []string
	replicas []string
}

// groupByPartition buckets the (deduplicated) keys of a batch by the
// partition that owns them, snapshotting each partition's replica set
// under one read lock.
func (n *Node) groupByPartition(id ring.RingID, keys []string) []partGroup {
	n.mu.RLock()
	r := n.rings.Ring(id)
	byPart := make(map[int]*partGroup)
	seen := make(map[string]bool, len(keys))
	for _, key := range keys {
		if seen[key] {
			continue
		}
		seen[key] = true
		p := r.Lookup(ring.HashKey(key))
		g, ok := byPart[p.ID]
		if !ok {
			g = &partGroup{part: p.ID}
			g.replicas = make([]string, len(p.Replicas))
			for i, rid := range p.Replicas {
				g.replicas[i] = n.nodeName(rid)
			}
			byPart[p.ID] = g
		}
		g.keys = append(g.keys, key)
	}
	n.mu.RUnlock()
	out := make([]partGroup, 0, len(byPart))
	for _, g := range byPart {
		out = append(out, *g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].part < out[j].part })
	return out
}

// readPartitionGroup runs the quorum read of one partition's key group:
// it contacts exactly readQ alive replicas first — the coordinator's own
// copy ordered to the front, since it answers inline for free — each
// with ONE envelope covering every key of the group, and arms a single
// HEDGED backup request that fires only if the quorum is still short
// after the p99-tracked hedge delay (see hedgeTracker). Failures launch
// a standby replica immediately, and context cancellation is honored
// while waiting. It returns as soon as readQ replicas answered: a
// hung-but-not-yet-suspected replica cannot pin the read to the
// transport timeout once the quorum is met — remote calls run on a
// child context cancelled at return, so stragglers and fired hedges are
// abandoned at the transport layer instead of running to completion.
// Siblings merge per key; each stale responder gets one batched repair
// envelope (sent on the caller's context, not the cancelled child). The
// second return value is the merged sibling set per key, which One-level
// callers feed into the coordinator cache.
func (n *Node) readPartitionGroup(ctx context.Context, id ring.RingID, g partGroup, readQ int) (map[string]GetResult, map[string][]store.Version, error) {
	n.countQueries(id, g.part, len(g.keys))

	alive := g.replicas[:0:0]
	for _, name := range g.replicas {
		if n.alive(name) {
			alive = append(alive, name)
		}
	}
	// Order the contact list: the local copy first (it answers inline for
	// free), peers whose circuit breaker is open last. Open-breaker peers
	// are demoted rather than skipped — a small quorum may still need
	// them — but they serve only as standbys, so a peer that is up but
	// sick stops taxing every read and stops absorbing the hedged backup.
	// The demoted slot doubles as the breaker's half-open probe path.
	rank := func(name string) int {
		switch {
		case name == n.self.Name:
			return 0
		case n.breakers.State(name) == resilience.BreakerOpen:
			return 2
		default:
			return 1
		}
	}
	sort.SliceStable(alive, func(i, j int) bool { return rank(alive[i]) < rank(alive[j]) })
	type replicaResp struct {
		name    string
		vs      map[string][]store.Version
		ok      bool
		elapsed time.Duration // remote round trip; 0 for the local copy
	}
	resps := make(chan replicaResp, len(alive))
	env := transport.Envelope{Kind: kindMultiGet, Payload: encode(multiGetReq{Ring: id, Keys: g.keys})}
	callCtx, cancelCalls := context.WithCancel(ctx)
	defer cancelCalls()
	target := readQ
	if target > len(alive) {
		target = len(alive)
	}
	next, inflight := 0, 0
	startNext := func() {
		name := alive[next]
		next++
		inflight++
		if name == n.self.Name {
			local := make(map[string][]store.Version, len(g.keys))
			for _, k := range g.keys {
				local[k] = n.eng.Get(storageKey(id, k))
			}
			resps <- replicaResp{name: name, vs: local, ok: true}
			return
		}
		go func(name string) {
			start := time.Now()
			info, _ := n.info(name)
			resp, err := n.tr.Call(callCtx, info.Addr, env)
			n.breakers.Record(name, err, time.Since(start))
			if err != nil {
				resps <- replicaResp{name: name}
				return
			}
			var mr multiGetResp
			derr := decode(resp.Payload, &mr)
			// decode copied every byte out (gob never aliases its input),
			// so the frame's staging buffer can go back to the transport.
			transport.RecyclePayload(resp.Payload)
			if derr != nil {
				resps <- replicaResp{name: name}
				return
			}
			vs := make(map[string][]store.Version, len(mr.Items))
			for _, item := range mr.Items {
				vs[item.Key] = item.Versions
			}
			resps <- replicaResp{name: name, vs: vs, ok: true, elapsed: time.Since(start)}
		}(name)
	}
	for next < target {
		startNext()
	}

	// The hedge arms only when a spare replica exists. It fires at most
	// once: a firing clears the channel, and a quorum met before the
	// delay never sends the backup at all — the common case pays zero
	// extra envelopes for tail latency bounded near p99(healthy).
	var hedgeC <-chan time.Time
	if next < len(alive) {
		timer := time.NewTimer(n.hedge.delay(n.Now()))
		defer timer.Stop()
		hedgeC = timer.C
	}

	// Stragglers complete into the buffered channel and are discarded, so
	// a cancelled caller leaks no goroutines; the sibling merge below is
	// order-independent. RTTs are recorded only for responses accepted
	// toward the quorum — a slow replica that loses the race never feeds
	// the hedge delay meant to route around it.
	perResp := make(map[string]map[string][]store.Version)
	var responders []string
	for inflight > 0 && len(responders) < readQ {
		select {
		case r := <-resps:
			inflight--
			if r.ok {
				perResp[r.name] = r.vs
				responders = append(responders, r.name)
				if r.elapsed > 0 {
					n.hedge.observe(r.elapsed)
				}
			} else if next < len(alive) {
				startNext()
			}
		case <-hedgeC:
			hedgeC = nil
			if next < len(alive) {
				n.counters.ReadsHedged.Inc()
				startNext()
			}
		case <-ctx.Done():
			return nil, nil, ctx.Err()
		}
	}
	if len(responders) < readQ {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		return nil, nil, fmt.Errorf("cluster: read quorum not met for %s partition %d: %d/%d replicas answered",
			id, g.part, len(responders), readQ)
	}

	// Merge per key, then batch read repair: each responder that misses
	// part of a key's merged sibling set gets ONE repair envelope
	// covering all of its stale keys. In-sync replicas (the common case)
	// cost nothing; engines reject dominated versions, so repair is
	// idempotent.
	results := make(map[string]GetResult, len(g.keys))
	merged := make(map[string][]store.Version, len(g.keys))
	for _, k := range g.keys {
		var gathered []store.Version
		for _, name := range responders {
			gathered = append(gathered, perResp[name][k]...)
		}
		m := store.MergeSiblings(gathered)
		merged[k] = m
		res := GetResult{Replied: len(responders), Context: vclock.New()}
		for _, v := range m {
			res.Context = vclock.Merge(res.Context, v.Clock)
			if !v.Tombstone {
				res.Values = append(res.Values, v.Value)
			}
		}
		results[k] = res
	}
	for _, name := range responders {
		var stale []putItem
		for _, k := range g.keys {
			if needsRepair(perResp[name][k], merged[k]) {
				for _, v := range merged[k] {
					stale = append(stale, putItem{Key: k, Version: v})
				}
			}
		}
		if len(stale) == 0 {
			continue
		}
		if name == n.self.Name {
			for _, item := range stale {
				_, _ = n.eng.Put(storageKey(id, item.Key), item.Version)
			}
			continue
		}
		info, _ := n.info(name)
		repair := transport.Envelope{Kind: kindMultiPut, Payload: encode(multiPutReq{Ring: id, Items: stale})}
		_, _ = n.tr.Call(ctx, info.Addr, repair) // best effort; anti-entropy heals stragglers
	}
	return results, merged, nil
}

// needsRepair reports whether a responder's version set for one key
// diverges from the merged sibling set.
func needsRepair(have, merged []store.Version) bool {
	if len(have) != len(merged) {
		return true
	}
	for _, m := range merged {
		found := false
		for _, h := range have {
			if h.Clock.Compare(m.Clock) == vclock.Equal {
				found = true
				break
			}
		}
		if !found {
			return true
		}
	}
	return false
}

// stampClock derives the clock of a new coordinated write from the
// caller's read context: the context's entries plus this node's own
// entry set from a node-local monotonic counter. A plain tick of the
// context's own entry is not safe — when the read behind a
// read-modify-write was stale (it missed a version this same node
// coordinated), context+1 can land at or below the own entry of the
// stored clock, producing a write strictly dominated by data already
// on every replica. The engine silently discards dominated versions,
// so the write would be acknowledged by a full quorum yet survive
// nowhere. Stamping from a counter that never repeats an own entry
// makes a coordinated write dominating-or-concurrent, never dominated:
// the worst a stale context yields is a sibling for the client to
// reconcile. This is the dotted-version-vector refinement of classic
// coordinator-side ticking.
func (n *Node) stampClock(vctx vclock.VC) vclock.VC {
	c := vctx.Clone()
	own := c.Get(n.self.Name)
	for {
		cur := n.dot.Load()
		next := cur + 1
		// A context carrying an own entry at or above the counter means
		// the counter lost state (it is seeded from the local store at
		// boot, but the entry may only survive on peers); step past it.
		if own >= next {
			next = own + 1
		}
		if n.dot.CompareAndSwap(cur, next) {
			c[n.self.Name] = next
			return c
		}
	}
}

// Put writes the value under a clock derived from the read context,
// requiring the write quorum (or the per-request override) of live
// replicas to acknowledge before the context deadline.
func (n *Node) Put(ctx context.Context, id ring.RingID, key string, value []byte, vctx vclock.VC, opts WriteOptions) error {
	defer n.opTel.hist(opPut, opts.Consistency).RecordSince(time.Now())
	return n.write(ctx, id, key, store.Version{Value: value, Clock: n.stampClock(vctx)}, opts)
}

// Delete writes a tombstone derived from the read context.
func (n *Node) Delete(ctx context.Context, id ring.RingID, key string, vctx vclock.VC, opts WriteOptions) error {
	defer n.opTel.hist(opDel, opts.Consistency).RecordSince(time.Now())
	return n.write(ctx, id, key, store.Version{Tombstone: true, Clock: n.stampClock(vctx)}, opts)
}

// write fans a version out to the partition's replicas.
func (n *Node) write(ctx context.Context, id ring.RingID, key string, v store.Version, opts WriteOptions) error {
	writeQ, err := n.writeQuorum(id, opts.Consistency)
	if err != nil {
		return err
	}
	ctx, cancel := withTimeout(ctx, opts.Timeout)
	defer cancel()
	if err := ctx.Err(); err != nil {
		return err
	}
	release, err := n.gate.Enter(ctx, resilience.Write)
	if err != nil {
		return err
	}
	defer release()
	n.mu.RLock()
	r := n.rings.Ring(id)
	p := r.Lookup(ring.HashKey(key))
	part := p.ID
	n.mu.RUnlock()
	replicas := n.replicasOf(p)
	writeQ = n.quorumForGroup(writeQ, opts.Consistency, id, len(replicas), true)

	n.countQueries(id, part, 1)

	acks, err := n.fanoutPut(ctx, id, key, v, replicas, writeQ)
	if err != nil {
		return err
	}
	if acks < writeQ {
		return fmt.Errorf("cluster: write quorum not met for %s/%s: %d/%d acks", id, key, acks, writeQ)
	}
	n.cacheWriteThrough(id, part, key, v, replicas)
	return nil
}

// cacheWriteThrough upserts an acknowledged coordinated write into the
// hot-key cache (see readCache.upsert for the coherence argument).
// Partitions this node hosts are skipped — their One-reads are served
// from the store under the lease, never from the cache — and so are
// writes whose quorum was not met, since a failed write may exist on no
// replica at all and a One-read must never observe a value no replica
// holds.
func (n *Node) cacheWriteThrough(id ring.RingID, part int, key string, v store.Version, replicas []string) {
	for _, name := range replicas {
		if name == n.self.Name {
			return
		}
	}
	pver, porigin := n.pmap.Stamp(id, part)
	n.rcache.upsert(cacheKey{ring: id, part: part, key: key}, v, pver, porigin, n.Now())
}

// MultiPut writes a batch of entries in one coordinated operation: the
// entries are grouped by partition and every replica of a partition
// receives a single envelope with the partition's whole entry group.
// Each partition group must reach the write quorum (or the per-request
// override) independently; the first shortfall fails the batch.
func (n *Node) MultiPut(ctx context.Context, id ring.RingID, entries []Entry, opts WriteOptions) error {
	defer n.opTel.hist(opMPut, opts.Consistency).RecordSince(time.Now())
	writeQ, err := n.writeQuorum(id, opts.Consistency)
	if err != nil {
		return err
	}
	ctx, cancel := withTimeout(ctx, opts.Timeout)
	defer cancel()
	if err := ctx.Err(); err != nil {
		return err
	}
	release, err := n.gate.Enter(ctx, resilience.Write)
	if err != nil {
		return err
	}
	defer release()
	if len(entries) == 0 {
		return nil
	}

	// Version every entry up front (one clock tick per entry), then
	// bucket by partition. Later duplicates of a key win, matching the
	// sequential-Put semantics of applying the batch in order.
	versions := make(map[string]store.Version, len(entries))
	keys := make([]string, 0, len(entries))
	for _, e := range entries {
		if _, ok := versions[e.Key]; !ok {
			keys = append(keys, e.Key)
		}
		versions[e.Key] = store.Version{Value: e.Value, Clock: n.stampClock(e.Context)}
	}
	groups := n.groupByPartition(id, keys)

	var wg sync.WaitGroup
	errs := make([]error, len(groups))
	for i, g := range groups {
		wg.Add(1)
		go func(i int, g partGroup) {
			defer wg.Done()
			q := n.quorumForGroup(writeQ, opts.Consistency, id, len(g.replicas), true)
			errs[i] = n.writePartitionGroup(ctx, id, g, versions, q)
		}(i, g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// writePartitionGroup fans one partition's entry group out: one
// kindMultiPut envelope per alive replica, write quorum counted over
// whole-group acknowledgements.
func (n *Node) writePartitionGroup(ctx context.Context, id ring.RingID, g partGroup, versions map[string]store.Version, writeQ int) error {
	n.countQueries(id, g.part, len(g.keys))

	items := make([]putItem, len(g.keys))
	for i, k := range g.keys {
		items[i] = putItem{Key: k, Version: versions[k]}
	}
	acks := 0
	var remotes []string
	for _, name := range g.replicas {
		if !n.alive(name) {
			continue
		}
		if name == n.self.Name {
			ok := true
			for _, item := range items {
				if _, err := n.eng.Put(storageKey(id, item.Key), item.Version); err != nil {
					ok = false
					break
				}
			}
			if ok {
				acks++
			}
			continue
		}
		remotes = append(remotes, name)
	}
	if len(remotes) > 0 {
		env := transport.Envelope{Kind: kindMultiPut, Payload: encode(multiPutReq{Ring: id, Items: items})}
		remoteAcks, err := n.callAll(ctx, remotes, env, writeQ-acks)
		if err != nil {
			return err
		}
		acks += remoteAcks
	}
	if acks < writeQ {
		if err := ctx.Err(); err != nil {
			return err
		}
		return fmt.Errorf("cluster: write quorum not met for %s partition %d: %d/%d acks", id, g.part, acks, writeQ)
	}
	for _, item := range items {
		n.cacheWriteThrough(id, g.part, item.Key, item.Version, g.replicas)
	}
	return nil
}

// fanoutPut stores the version on every named alive replica concurrently
// and returns the ack count, waiting only until `need` acknowledgements
// arrived (per-request ConsistencyOne really is the fast end of the
// trade: remaining replicas receive the write asynchronously and their
// outcomes are discarded). Cancellation while waiting returns the
// context error; in-flight calls drain into a buffered channel.
func (n *Node) fanoutPut(ctx context.Context, id ring.RingID, key string, v store.Version, replicas []string, need int) (int, error) {
	acks := 0
	var remotes []string
	for _, name := range replicas {
		if !n.alive(name) {
			continue
		}
		if name == n.self.Name {
			if _, err := n.eng.Put(storageKey(id, key), v); err == nil {
				acks++
			}
			continue
		}
		remotes = append(remotes, name)
	}
	if len(remotes) == 0 {
		return acks, nil
	}
	env := transport.Envelope{Kind: kindPut, Payload: encode(putReq{Ring: id, Key: key, Version: v})}
	if len(remotes) == 1 && acks < need { // skip the pool for the common R=2 local-write case
		info, _ := n.info(remotes[0])
		start := time.Now()
		_, err := n.tr.Call(ctx, info.Addr, env)
		n.breakers.Record(remotes[0], err, time.Since(start))
		if err == nil {
			acks++
		} else if ctxErr := ctx.Err(); ctxErr != nil {
			return acks, ctxErr
		}
		return acks, nil
	}
	remoteAcks, err := n.callAll(ctx, remotes, env, need-acks)
	return acks + remoteAcks, err
}

// callAll sends one envelope to every named peer concurrently and counts
// successes, returning as soon as `need` of them acknowledged (or every
// peer responded, or the context fired). Late responses — and the sends
// themselves, when need is already met — complete asynchronously into
// the buffered channel, so nothing leaks and every peer still receives
// the envelope.
//
// The sends run on a context detached from the caller's cancellation:
// a write request that returns at its ack threshold immediately runs its
// withTimeout cancel (or the client cancels its context), and aborting
// the still-in-flight tail sends at that moment would strand the
// remaining replicas stale until anti-entropy finds them. Only the
// ack-wait loop below honors the caller's context; the sends get their
// own bounded deadline so a dead peer cannot pin the goroutines forever.
func (n *Node) callAll(ctx context.Context, peers []string, env transport.Envelope, need int) (int, error) {
	sendCtx, cancel := context.WithTimeout(context.WithoutCancel(ctx), tailSendTimeout)
	done := make(chan bool, len(peers))
	var sends sync.WaitGroup
	sends.Add(len(peers))
	for _, name := range peers {
		go func(name string) {
			defer sends.Done()
			info, _ := n.info(name)
			start := time.Now()
			_, err := n.tr.Call(sendCtx, info.Addr, env)
			n.breakers.Record(name, err, time.Since(start))
			done <- err == nil
		}(name)
	}
	go func() { sends.Wait(); cancel() }()
	acks := 0
	for i := 0; i < len(peers) && acks < need; i++ {
		select {
		case ok := <-done:
			if ok {
				acks++
			}
		case <-ctx.Done():
			return acks, ctx.Err()
		}
	}
	return acks, nil
}

// countQueries accounts queries against the vnode hosting the partition
// locally (if any), feeding the economy.
func (n *Node) countQueries(id ring.RingID, part int, count int) {
	n.qmu.Lock()
	n.queries[vnodeKey(id, part)] += float64(count)
	n.qmu.Unlock()
}

// vnodeKey names a hosted vnode for the ledgers/queries maps.
func vnodeKey(id ring.RingID, part int) string {
	return fmt.Sprintf("%s#%d", id, part)
}
