package cluster

import (
	"fmt"

	"skute/internal/ring"
	"skute/internal/store"
	"skute/internal/transport"
	"skute/internal/vclock"
)

// GetResult is the outcome of a quorum read: the surviving sibling values
// and the causal context to pass back into Put for a read-modify-write.
type GetResult struct {
	// Values are the concurrent sibling values (one element in the common
	// no-conflict case). Empty means not found.
	Values [][]byte
	// Context is the merged clock of everything observed; a Put carrying
	// it supersedes all read siblings.
	Context vclock.VC
	// Replied is how many replicas answered.
	Replied int
}

// Get performs a quorum read of the key on its partition's replicas,
// merges the versions under vector-clock causality, read-repairs stale
// replicas and returns the surviving siblings.
func (n *Node) Get(id ring.RingID, key string) (GetResult, error) {
	spec, ok := n.specs[id]
	if !ok {
		return GetResult{}, fmt.Errorf("cluster: unknown ring %s", id)
	}
	n.mu.Lock()
	r := n.rings.Ring(id)
	p := r.Lookup(ring.HashKey(key))
	part := p.ID
	n.mu.Unlock()
	replicas := n.replicasOf(p)
	readQ, _ := n.cfg.quorums(spec.Replicas)

	n.countQuery(id, part)

	var gathered []store.Version
	var responders []string
	env := transport.Envelope{Kind: kindGet, Payload: encode(getReq{Ring: id, Key: key})}
	for _, name := range replicas {
		if !n.alive(name) {
			continue
		}
		var vs []store.Version
		if name == n.self.Name {
			vs = n.eng.Get(storageKey(id, key))
		} else {
			info, _ := n.info(name)
			resp, err := n.tr.Call(info.Addr, env)
			if err != nil {
				continue
			}
			var gr getResp
			if err := decode(resp.Payload, &gr); err != nil {
				continue
			}
			vs = gr.Versions
		}
		gathered = append(gathered, vs...)
		responders = append(responders, name)
		if len(responders) >= readQ+1 { // over-read slightly to improve repair
			break
		}
	}
	if len(responders) < readQ {
		return GetResult{}, fmt.Errorf("cluster: read quorum not met for %s/%s: %d/%d replicas answered",
			id, key, len(responders), readQ)
	}

	merged := store.MergeSiblings(gathered)
	// Read repair: push the merged set back to the responders; engines
	// reject anything they already dominate, so this is idempotent.
	for _, v := range merged {
		n.fanoutPut(id, key, v, responders)
	}

	res := GetResult{Replied: len(responders), Context: vclock.New()}
	for _, v := range merged {
		res.Context = vclock.Merge(res.Context, v.Clock)
		if !v.Tombstone {
			res.Values = append(res.Values, v.Value)
		}
	}
	return res, nil
}

// Put writes the value under a clock derived from the read context,
// requiring the write quorum of live replicas to acknowledge.
func (n *Node) Put(id ring.RingID, key string, value []byte, context vclock.VC) error {
	return n.write(id, key, store.Version{Value: value, Clock: context.Clone().Tick(n.self.Name)})
}

// Delete writes a tombstone derived from the read context.
func (n *Node) Delete(id ring.RingID, key string, context vclock.VC) error {
	return n.write(id, key, store.Version{Tombstone: true, Clock: context.Clone().Tick(n.self.Name)})
}

// write fans a version out to the partition's replicas.
func (n *Node) write(id ring.RingID, key string, v store.Version) error {
	spec, ok := n.specs[id]
	if !ok {
		return fmt.Errorf("cluster: unknown ring %s", id)
	}
	n.mu.Lock()
	r := n.rings.Ring(id)
	p := r.Lookup(ring.HashKey(key))
	part := p.ID
	n.mu.Unlock()
	replicas := n.replicasOf(p)
	_, writeQ := n.cfg.quorums(spec.Replicas)

	n.countQuery(id, part)

	acks := n.fanoutPut(id, key, v, replicas)
	if acks < writeQ {
		return fmt.Errorf("cluster: write quorum not met for %s/%s: %d/%d acks", id, key, acks, writeQ)
	}
	return nil
}

// fanoutPut stores the version on every named alive replica and returns
// the ack count.
func (n *Node) fanoutPut(id ring.RingID, key string, v store.Version, replicas []string) int {
	env := transport.Envelope{Kind: kindPut, Payload: encode(putReq{Ring: id, Key: key, Version: v})}
	acks := 0
	for _, name := range replicas {
		if !n.alive(name) {
			continue
		}
		if name == n.self.Name {
			if _, err := n.eng.Put(storageKey(id, key), v); err == nil {
				acks++
			}
			continue
		}
		info, _ := n.info(name)
		if _, err := n.tr.Call(info.Addr, env); err == nil {
			acks++
		}
	}
	return acks
}

// countQuery accounts one query against the vnode hosting the partition
// locally (if any), feeding the economy.
func (n *Node) countQuery(id ring.RingID, part int) {
	n.mu.Lock()
	n.queries[vnodeKey(id, part)]++
	n.mu.Unlock()
}

// vnodeKey names a hosted vnode for the ledgers/queries maps.
func vnodeKey(id ring.RingID, part int) string {
	return fmt.Sprintf("%s#%d", id, part)
}
