package cluster

import (
	"encoding/hex"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"skute/internal/placement"
	"skute/internal/ring"
	"skute/internal/store"
	"skute/internal/vclock"
)

// codecSamples builds one representative (non-zero) value per hot wire
// payload type. Parent and child of the cross-process test construct
// the identical list.
func codecSamples() []any {
	id := ring.RingID{App: "app1", Class: "gold"}
	ver := store.Version{Value: []byte("v1"), Clock: vclock.VC{"n0": 3, "n1": 1}}
	return []any{
		clientGetReq{Ring: id, Key: "user:42", Consistency: ConsistencyQuorum, Timeout: 250 * time.Millisecond},
		clientPutReq{Ring: id, Key: "user:42", Value: []byte(`{"v":1}`), Context: map[string]uint64{"n0": 2}},
		clientGetResp{Values: [][]byte{[]byte("a"), []byte("b")}, Context: map[string]uint64{"n1": 9}},
		heartbeatReq{From: "n0", Digest: placement.Digest{}},
		getReq{Ring: id, Key: "k"},
		getResp{Versions: []store.Version{ver}},
		putReq{Ring: id, Key: "k", Version: ver},
		multiGetReq{Ring: id, Keys: []string{"a", "b", "c"}},
		multiPutReq{Ring: id, Items: []putItem{{Key: "a", Version: ver}}},
		clientMPutReq{Ring: id, Entries: []Entry{{Key: "a", Value: []byte("x"), Context: vclock.VC{"n2": 4}}}},
		deltaReq{Deltas: []placement.Delta{{Ring: id, Part: 3, Version: 7, Origin: "n1", Replicas: []string{"n0", "n1"}}}},
	}
}

// TestPayloadCodecRoundTrip: every registered wire payload type
// round-trips through the session codec (and the samples decode to
// equal field values for a few representative cases).
func TestPayloadCodecRoundTrip(t *testing.T) {
	for _, proto := range wirePayloadPrototypes {
		p := encode(proto)
		out := newPtr(proto)
		if err := decode(p, out); err != nil {
			t.Errorf("round-trip %T: %v", proto, err)
		}
	}
	var got clientPutReq
	want := codecSamples()[1].(clientPutReq)
	if err := decode(encode(want), &got); err != nil {
		t.Fatal(err)
	}
	if got.Key != want.Key || string(got.Value) != string(want.Value) || got.Context["n0"] != 2 {
		t.Errorf("decoded %+v, want %+v", got, want)
	}
	// Legacy payloads (marker 0x00) still decode — the knob the
	// fresh-dial baseline benchmarks flip.
	legacyPayloadCodec.Store(true)
	legacy := encode(want)
	legacyPayloadCodec.Store(false)
	var got2 clientPutReq
	if err := decode(legacy, &got2); err != nil || got2.Key != want.Key {
		t.Errorf("legacy decode: %v, %+v", err, got2)
	}
}

// newPtr returns a pointer to a fresh zero value of v's type.
func newPtr(v any) any { return reflect.New(reflect.TypeOf(v)).Interface() }

// TestPayloadCodecCrossProcess pins the skutectl/skuted interop bug:
// gob assigns wire type IDs from a process-global registry in
// first-use order, so value-only session payloads are only portable
// because registerWireTypes pins that order at package init. The test
// re-execs the test binary as a CHILD whose first gob activity is a
// different encode order (like skutectl, whose first payload is a
// client get, vs skuted, whose first is a heartbeat), then has the
// child decode every parent-encoded sample. Without the init pinning
// this fails with "gob: unknown type id or corrupted data".
func TestPayloadCodecCrossProcess(t *testing.T) {
	if os.Getenv("SKUTE_CODEC_CHILD") == "1" {
		t.Skip("child mode is driven by TestPayloadCodecCrossProcessChild")
	}
	samples := codecSamples()
	var lines []string
	for _, s := range samples {
		lines = append(lines, hex.EncodeToString(encode(s)))
	}
	input := filepath.Join(t.TempDir(), "payloads.hex")
	if err := os.WriteFile(input, []byte(strings.Join(lines, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(os.Args[0], "-test.run", "TestPayloadCodecCrossProcessChild", "-test.v")
	cmd.Env = append(os.Environ(), "SKUTE_CODEC_CHILD=1", "SKUTE_CODEC_INPUT="+input)
	out, err := cmd.CombinedOutput()
	if err != nil || !strings.Contains(string(out), "PASS") {
		t.Fatalf("child decode failed: %v\n%s", err, out)
	}
}

// TestPayloadCodecCrossProcessChild is the re-exec target. It encodes
// in a deliberately different order first (exercising lazy registration
// paths), then decodes every payload the parent produced.
func TestPayloadCodecCrossProcessChild(t *testing.T) {
	if os.Getenv("SKUTE_CODEC_CHILD") != "1" {
		t.Skip("parent drives this via re-exec")
	}
	// Mimic skutectl: the child's first encodes are client requests, in
	// reverse sample order — any registration-order dependence left in
	// the codec would surface as mismatched type IDs below.
	samples := codecSamples()
	for i := len(samples) - 1; i >= 0; i-- {
		_ = encode(samples[i])
	}
	raw, err := os.ReadFile(os.Getenv("SKUTE_CODEC_INPUT"))
	if err != nil {
		t.Fatal(err)
	}
	for i, line := range strings.Split(string(raw), "\n") {
		p, err := hex.DecodeString(strings.TrimSpace(line))
		if err != nil {
			t.Fatal(err)
		}
		out := newPtr(samples[i])
		if err := decode(p, out); err != nil {
			t.Fatalf("cross-process decode of %T: %v", samples[i], err)
		}
	}
	// Spot-check one decoded value end to end.
	var got clientGetReq
	p, _ := hex.DecodeString(strings.Split(string(raw), "\n")[0])
	if err := decode(p, &got); err != nil {
		t.Fatal(err)
	}
	want := samples[0].(clientGetReq)
	if got.Key != want.Key || got.Consistency != want.Consistency || got.Timeout != want.Timeout {
		t.Fatalf("decoded %+v, want %+v", got, want)
	}
}
