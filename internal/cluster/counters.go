package cluster

import "skute/internal/metrics"

// ControlCounters are a node's control-plane observability counters:
// what the economic epochs decided, how placement deltas fared under
// the last-writer-wins merge, and how often gossip reconciliation ran.
// cmd/skuted exposes them on GET /counters via RegisterMetrics.
type ControlCounters struct {
	// Epoch decision outcomes executed by this node as coordinator.
	EpochReplications metrics.Counter
	EpochMigrations   metrics.Counter
	EpochSuicides     metrics.Counter
	EpochRepairs      metrics.Counter // availability-driven replications

	// Placement delta merge outcomes on this node.
	DeltasApplied metrics.Counter
	DeltasStale   metrics.Counter // rejected: late, reordered or replayed

	// Gossip rounds.
	ReconcileRounds metrics.Counter // digest-triggered delta pulls
	HeartbeatRounds metrics.Counter

	// Anti-entropy outcome (data plane, driven by the runtime loop).
	AntiEntropyKeys metrics.Counter // keys repaired by Merkle sync
}

// Counters exposes the node's control-plane counters.
func (n *Node) Counters() *ControlCounters { return &n.counters }

// RegisterMetrics registers every control-plane counter on the registry
// under stable names, next to the durability gauges cmd/skuted already
// exports.
func (n *Node) RegisterMetrics(reg *metrics.Registry) {
	for _, g := range []struct {
		name string
		c    *metrics.Counter
	}{
		{"epoch_replications_total", &n.counters.EpochReplications},
		{"epoch_migrations_total", &n.counters.EpochMigrations},
		{"epoch_suicides_total", &n.counters.EpochSuicides},
		{"epoch_repairs_total", &n.counters.EpochRepairs},
		{"placement_deltas_applied_total", &n.counters.DeltasApplied},
		{"placement_deltas_stale_total", &n.counters.DeltasStale},
		{"gossip_reconcile_rounds_total", &n.counters.ReconcileRounds},
		{"gossip_heartbeat_rounds_total", &n.counters.HeartbeatRounds},
		{"antientropy_keys_repaired_total", &n.counters.AntiEntropyKeys},
	} {
		reg.Gauge(g.name, g.c.Value)
	}
}
