package cluster

import (
	"skute/internal/metrics"
	"skute/internal/resilience"
)

// ControlCounters are a node's control-plane observability counters:
// what the economic epochs decided, how placement deltas fared under
// the last-writer-wins merge, and how often gossip reconciliation ran.
// cmd/skuted exposes them on GET /counters via RegisterMetrics.
type ControlCounters struct {
	// Epoch decision outcomes executed by this node as coordinator.
	EpochReplications metrics.Counter
	EpochMigrations   metrics.Counter
	EpochSuicides     metrics.Counter
	EpochRepairs      metrics.Counter // availability-driven replications

	// Placement delta merge outcomes on this node.
	DeltasApplied metrics.Counter
	DeltasStale   metrics.Counter // rejected: late, reordered or replayed

	// Gossip rounds.
	ReconcileRounds metrics.Counter // digest-triggered delta pulls
	HeartbeatRounds metrics.Counter

	// Anti-entropy outcome (data plane, driven by the runtime loop).
	AntiEntropyKeys     metrics.Counter // keys repaired by Merkle sync
	AntiEntropyRounds   metrics.Counter // rounds run
	AntiEntropyRootHits metrics.Counter // partition syncs short-circuited on root equality

	// Membership: member-record merge outcomes, detector transitions and
	// the evictions they drive.
	MemberDeltasApplied metrics.Counter
	MemberDeltasStale   metrics.Counter
	MemberRefutations   metrics.Counter // accusations of this node it refuted
	MembersSuspected    metrics.Counter // local alive→suspect transitions
	MembersDead         metrics.Counter // local suspect→dead transitions
	MemberEvictions     metrics.Counter // dead members removed from hosted replica sets
	MemberPulls         metrics.Counter // digest-triggered member list pulls
	JoinsServed         metrics.Counter // join requests this node admitted

	// Tiered read path (see readpath.go): how One-level reads were
	// served and how often quorum reads needed the hedged backup.
	ReadsLocal        metrics.Counter // lease-served from the local store
	ReadsCacheHit     metrics.Counter // served from the coordinator cache
	ReadsCacheMiss    metrics.Counter // eligible for the cache but fell through to fan-out
	ReadsLeaseStale   metrics.Counter // lease not fresh; One-read fell back to fan-out
	ReadsHedged       metrics.Counter // quorum reads that fired the backup request
	ReadRepairSampled metrics.Counter // async repair reads sampled off local reads

	// Partition transfer (chunked, throttled; see transfer.go).
	TransferChunks       metrics.Counter // chunks pulled (adopter side)
	TransferItems        metrics.Counter // keys pulled (adopter side)
	TransferResumes      metrics.Counter // pulls resumed from a saved cursor
	TransferChunksServed metrics.Counter // chunks served (donor side)
	TransferBytesOut     metrics.Counter // value bytes served (donor side)

	// Overload robustness (see internal/resilience): per-peer breaker
	// lifecycle events on this node's outbound paths.
	BreakerTransitions metrics.Counter // every breaker state change
	BreakerOpens       metrics.Counter // transitions into open (peer cut off)
}

// Counters exposes the node's control-plane counters.
func (n *Node) Counters() *ControlCounters { return &n.counters }

// RegisterMetrics registers every control-plane counter on the registry
// under stable names, next to the durability gauges cmd/skuted already
// exports.
func (n *Node) RegisterMetrics(reg *metrics.Registry) {
	for _, g := range []struct {
		name string
		c    *metrics.Counter
	}{
		{"epoch_replications_total", &n.counters.EpochReplications},
		{"epoch_migrations_total", &n.counters.EpochMigrations},
		{"epoch_suicides_total", &n.counters.EpochSuicides},
		{"epoch_repairs_total", &n.counters.EpochRepairs},
		{"placement_deltas_applied_total", &n.counters.DeltasApplied},
		{"placement_deltas_stale_total", &n.counters.DeltasStale},
		{"gossip_reconcile_rounds_total", &n.counters.ReconcileRounds},
		{"gossip_heartbeat_rounds_total", &n.counters.HeartbeatRounds},
		{"antientropy_keys_repaired_total", &n.counters.AntiEntropyKeys},
		{"antientropy_rounds_total", &n.counters.AntiEntropyRounds},
		{"antientropy_root_hits_total", &n.counters.AntiEntropyRootHits},
		{"member_deltas_applied_total", &n.counters.MemberDeltasApplied},
		{"member_deltas_stale_total", &n.counters.MemberDeltasStale},
		{"member_refutations_total", &n.counters.MemberRefutations},
		{"members_suspected_total", &n.counters.MembersSuspected},
		{"members_dead_total", &n.counters.MembersDead},
		{"member_evictions_total", &n.counters.MemberEvictions},
		{"member_pulls_total", &n.counters.MemberPulls},
		{"joins_served_total", &n.counters.JoinsServed},
		{"reads_local_total", &n.counters.ReadsLocal},
		{"reads_cache_hit_total", &n.counters.ReadsCacheHit},
		{"reads_cache_miss_total", &n.counters.ReadsCacheMiss},
		{"reads_lease_stale_total", &n.counters.ReadsLeaseStale},
		{"reads_hedged_total", &n.counters.ReadsHedged},
		{"read_repair_sampled_total", &n.counters.ReadRepairSampled},
		{"transfer_chunks_total", &n.counters.TransferChunks},
		{"transfer_items_total", &n.counters.TransferItems},
		{"transfer_resumes_total", &n.counters.TransferResumes},
		{"transfer_chunks_served_total", &n.counters.TransferChunksServed},
		{"transfer_bytes_out_total", &n.counters.TransferBytesOut},
		{"breaker_transitions_total", &n.counters.BreakerTransitions},
		{"breaker_opens_total", &n.counters.BreakerOpens},
	} {
		reg.Gauge(g.name, g.c.Value)
	}
	// Admission gate: live in-flight plus per-class admitted/shed
	// outcomes. All zero (and the gauges still registered) when the gate
	// is disabled, so dashboards keep a stable schema.
	reg.Gauge("admission_inflight", n.gate.Inflight)
	reg.Gauge("admission_shed_deadline_total", n.gate.ShedLate)
	for _, p := range []resilience.Priority{
		resilience.Background, resilience.Read, resilience.Write, resilience.Critical,
	} {
		p := p
		reg.Gauge("admission_"+p.String()+"_admitted_total", func() int64 { return n.gate.Admitted(p) })
		reg.Gauge("admission_"+p.String()+"_shed_total", func() int64 { return n.gate.Shed(p) })
	}
}

// Breakers exposes the node's per-peer circuit breakers (admin surfaces
// and tests).
func (n *Node) Breakers() *resilience.BreakerSet { return n.breakers }

// Gate exposes the node's admission gate (nil when disabled).
func (n *Node) Gate() *resilience.Gate { return n.gate }
