package cluster

import (
	"context"
	"testing"
	"time"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestRuntimeLoopsRun: Start drives heartbeats (and with them the
// digest exchange) autonomously; Stop halts the loops; a stopped node
// can be started again.
func TestRuntimeLoopsRun(t *testing.T) {
	_, nodes := testCluster(t)
	rc := RuntimeConfig{
		Heartbeat: 5 * time.Millisecond,
		Reconcile: 7 * time.Millisecond,
	}
	rctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for _, n := range nodes {
		if err := n.Start(rctx, rc); err != nil {
			t.Fatalf("Start(%s): %v", n.Name(), err)
		}
	}
	// Double start is refused.
	if err := nodes[0].Start(rctx, rc); err == nil {
		t.Error("second Start accepted")
	}
	for _, n := range nodes {
		n := n
		waitFor(t, 2*time.Second, func() bool {
			return n.Counters().HeartbeatRounds.Value() >= 2
		}, n.Name()+" heartbeat rounds")
	}
	for _, n := range nodes {
		n.Stop()
	}
	// Stop is idempotent and the loops really halted.
	nodes[0].Stop()
	quiesced := nodes[0].Counters().HeartbeatRounds.Value()
	time.Sleep(20 * time.Millisecond)
	if got := nodes[0].Counters().HeartbeatRounds.Value(); got != quiesced {
		t.Errorf("heartbeats kept running after Stop: %d -> %d", quiesced, got)
	}
	// Restart after Stop works.
	if err := nodes[0].Start(rctx, rc); err != nil {
		t.Fatalf("restart: %v", err)
	}
	waitFor(t, 2*time.Second, func() bool {
		return nodes[0].Counters().HeartbeatRounds.Value() > quiesced
	}, "heartbeats after restart")
	nodes[0].Stop()
}

// TestRuntimeHealsPlacementDivergence: with only the runtime loops
// running (no explicit pushes), a node that missed a migration
// converges through the jittered heartbeat/reconcile machinery.
func TestRuntimeHealsPlacementDivergence(t *testing.T) {
	mesh, nodes := testCluster(t)
	const part = 3
	seed := entryOf(t, nodes[0], goldRing, part)
	byName := map[string]*Node{}
	for _, n := range nodes {
		byName[n.Name()] = n
	}
	var straggler *Node
	for _, n := range nodes {
		if n.Name() != seed.Replicas[0] && n.Name() != seed.Replicas[1] {
			straggler = n
			break
		}
	}
	// The straggler misses a replica-set change...
	mesh.SetDown(straggler.self.Addr, true)
	coord := byName[seed.Replicas[0]]
	if d, ok := coord.propose(goldRing, part, straggler.Name() /* irrelevant who */, ""); ok {
		coord.disseminate(ctx, d)
	}
	mesh.SetDown(straggler.self.Addr, false)

	// ...and the autonomous loops alone heal it.
	rctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rc := RuntimeConfig{Heartbeat: 5 * time.Millisecond, Reconcile: 7 * time.Millisecond}
	for _, n := range nodes {
		if err := n.Start(rctx, rc); err != nil {
			t.Fatal(err)
		}
	}
	defer func() {
		for _, n := range nodes {
			n.Stop()
		}
	}()
	want := entryOf(t, coord, goldRing, part)
	waitFor(t, 5*time.Second, func() bool {
		e, ok := straggler.PlacementEntry(goldRing, part)
		return ok && e.Version == want.Version && e.Origin == want.Origin
	}, "straggler to converge via runtime gossip")
}
