package cluster

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"skute/internal/agent"
	"skute/internal/economy"
	"skute/internal/merkle"
	"skute/internal/ring"
	"skute/internal/store"
	"skute/internal/transport"
	"skute/internal/vclock"
)

// testConfig builds a 6-node cluster over 3 continents with two rings.
func testConfig() Config {
	var nodes []NodeInfo
	conts := []string{"eu", "us", "ap"}
	for i := 0; i < 6; i++ {
		ct := conts[i%3]
		nodes = append(nodes, NodeInfo{
			Name:          fmt.Sprintf("n%d", i),
			Addr:          fmt.Sprintf("mem-n%d", i),
			LocPath:       fmt.Sprintf("%s/c%d/dc0/r0/k0/s%d", ct, i%3, i),
			Confidence:    1,
			MonthlyRent:   100,
			Capacity:      1 << 30,
			QueryCapacity: 1000,
		})
	}
	// n5 is the expensive server.
	nodes[5].MonthlyRent = 200
	return Config{
		Nodes: nodes,
		Rings: []RingSpec{
			{App: "appA", Class: "gold", Partitions: 8, Replicas: 2},
			{App: "appB", Class: "plat", Partitions: 4, Replicas: 3},
		},
	}
}

// testCluster boots every node over one in-memory mesh.
func testCluster(t *testing.T) (*transport.Memory, []*Node) {
	t.Helper()
	mesh := transport.NewMemory()
	cfg := testConfig()
	var nodes []*Node
	for _, ni := range cfg.Nodes {
		n, err := NewNode(cfg, ni.Name, mesh, store.NewMemory())
		if err != nil {
			t.Fatalf("NewNode(%s): %v", ni.Name, err)
		}
		nodes = append(nodes, n)
	}
	// All nodes booted together: skip the probation round so quorum
	// traffic flows without a heartbeat exchange first.
	for _, n := range nodes {
		n.ConfirmPeers()
	}
	t.Cleanup(func() { mesh.Close() })
	return mesh, nodes
}

// kill makes the node unreachable and dead in every member table.
func kill(mesh *transport.Memory, nodes []*Node, name string) {
	for _, n := range nodes {
		if n.Name() == name {
			mesh.SetDown(n.self.Addr, true)
		}
		n.Membership().Fail(name)
	}
}

// ctx is the background context most tests coordinate under; the
// context-specific behaviors have their own tests in ops_ctx_test.go.
var ctx = context.Background()

var goldRing = ring.RingID{App: "appA", Class: "gold"}
var platRing = ring.RingID{App: "appB", Class: "plat"}

func TestConfigValidate(t *testing.T) {
	good := testConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("good config invalid: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.Nodes = nil },
		func(c *Config) { c.Nodes[0].Name = "" },
		func(c *Config) { c.Nodes[1].Name = c.Nodes[0].Name },
		func(c *Config) { c.Nodes[1].Addr = c.Nodes[0].Addr },
		func(c *Config) { c.Nodes[0].LocPath = "bad" },
		func(c *Config) { c.Nodes[0].Confidence = 2 },
		func(c *Config) { c.Nodes[0].MonthlyRent = 0 },
		func(c *Config) { c.Nodes[0].Capacity = 0 },
		func(c *Config) { c.Rings = nil },
		func(c *Config) { c.Rings[0].App = "" },
		func(c *Config) { c.Rings[0].Partitions = 0 },
		func(c *Config) { c.Rings[0].Replicas = 99 },
		func(c *Config) { c.ReadQuorum = -1 },
	}
	for i, mut := range mutations {
		c := testConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d: want error", i)
		}
	}
}

func TestNewNodeUnknownName(t *testing.T) {
	mesh := transport.NewMemory()
	defer mesh.Close()
	if _, err := NewNode(testConfig(), "ghost", mesh, store.NewMemory()); err == nil {
		t.Fatal("unknown node accepted")
	}
}

func TestLayoutDeterministicAndDiverse(t *testing.T) {
	cfg := testConfig()
	mrA, _, err := buildLayout(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mrB, _, _ := buildLayout(cfg)
	for _, id := range mrA.IDs() {
		pa, pb := mrA.Ring(id).Partitions(), mrB.Ring(id).Partitions()
		for i := range pa {
			if fmt.Sprint(pa[i].Replicas) != fmt.Sprint(pb[i].Replicas) {
				t.Fatalf("layout not deterministic for %s partition %d", id, i)
			}
		}
	}
	// Gold ring: 2 replicas, and they must sit on different continents
	// (diversity-aware placement has 3 continents to choose from).
	gr := mrA.Ring(goldRing)
	for _, p := range gr.Partitions() {
		if len(p.Replicas) != 2 {
			t.Fatalf("partition %d has %d replicas", p.ID, len(p.Replicas))
		}
		c0 := cfg.Nodes[int(p.Replicas[0])].LocPath[:2]
		c1 := cfg.Nodes[int(p.Replicas[1])].LocPath[:2]
		if c0 == c1 {
			t.Errorf("partition %d replicas co-located on continent %s", p.ID, c0)
		}
	}
}

func TestPutGetAcrossCoordinators(t *testing.T) {
	_, nodes := testCluster(t)
	if err := nodes[0].Put(ctx, goldRing, "user:42", []byte("hello"), nil, WriteOptions{}); err != nil {
		t.Fatalf("Put: %v", err)
	}
	// Any node can coordinate the read.
	for _, n := range nodes {
		res, err := n.Get(ctx, goldRing, "user:42", ReadOptions{})
		if err != nil {
			t.Fatalf("Get via %s: %v", n.Name(), err)
		}
		if len(res.Values) != 1 || string(res.Values[0]) != "hello" {
			t.Fatalf("Get via %s = %q", n.Name(), res.Values)
		}
	}
	// Missing key.
	res, err := nodes[1].Get(ctx, goldRing, "missing", ReadOptions{})
	if err != nil {
		t.Fatalf("Get missing: %v", err)
	}
	if len(res.Values) != 0 {
		t.Errorf("missing key returned %q", res.Values)
	}
	// Unknown ring errors.
	if _, err := nodes[0].Get(ctx, ring.RingID{App: "x", Class: "y"}, "k", ReadOptions{}); err == nil {
		t.Error("unknown ring read accepted")
	}
	if err := nodes[0].Put(ctx, ring.RingID{App: "x", Class: "y"}, "k", nil, nil, WriteOptions{}); err == nil {
		t.Error("unknown ring write accepted")
	}
}

func TestReadModifyWrite(t *testing.T) {
	_, nodes := testCluster(t)
	if err := nodes[0].Put(ctx, goldRing, "counter", []byte("1"), nil, WriteOptions{}); err != nil {
		t.Fatal(err)
	}
	res, err := nodes[1].Get(ctx, goldRing, "counter", ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := nodes[1].Put(ctx, goldRing, "counter", []byte("2"), res.Context, WriteOptions{}); err != nil {
		t.Fatal(err)
	}
	res2, err := nodes[2].Get(ctx, goldRing, "counter", ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Values) != 1 || string(res2.Values[0]) != "2" {
		t.Fatalf("after RMW: %q", res2.Values)
	}
}

func TestConcurrentSiblingsAndReconcile(t *testing.T) {
	_, nodes := testCluster(t)
	// Two writers with no context produce concurrent siblings.
	if err := nodes[0].Put(ctx, goldRing, "conflict", []byte("from-n0"), nil, WriteOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := nodes[1].Put(ctx, goldRing, "conflict", []byte("from-n1"), nil, WriteOptions{}); err != nil {
		t.Fatal(err)
	}
	res, err := nodes[2].Get(ctx, goldRing, "conflict", ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 2 {
		t.Fatalf("want 2 siblings, got %q", res.Values)
	}
	// Writing with the merged context reconciles.
	if err := nodes[2].Put(ctx, goldRing, "conflict", []byte("merged"), res.Context, WriteOptions{}); err != nil {
		t.Fatal(err)
	}
	res, err = nodes[3].Get(ctx, goldRing, "conflict", ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 1 || string(res.Values[0]) != "merged" {
		t.Fatalf("after reconcile: %q", res.Values)
	}
}

func TestDelete(t *testing.T) {
	_, nodes := testCluster(t)
	nodes[0].Put(ctx, goldRing, "gone", []byte("x"), nil, WriteOptions{})
	res, _ := nodes[0].Get(ctx, goldRing, "gone", ReadOptions{})
	if err := nodes[0].Delete(ctx, goldRing, "gone", res.Context, WriteOptions{}); err != nil {
		t.Fatal(err)
	}
	res, err := nodes[1].Get(ctx, goldRing, "gone", ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 0 {
		t.Fatalf("deleted key returned %q", res.Values)
	}
}

func TestReadRepairHealsStaleReplica(t *testing.T) {
	_, nodes := testCluster(t)
	if err := nodes[0].Put(ctx, goldRing, "heal-me", []byte("v1"), nil, WriteOptions{}); err != nil {
		t.Fatal(err)
	}
	// Find the replicas and wipe the key from one of them directly.
	replicas, err := nodes[0].Replicas(goldRing, "heal-me")
	if err != nil {
		t.Fatal(err)
	}
	var victim *Node
	for _, n := range nodes {
		if n.Name() == replicas[0] {
			victim = n
		}
	}
	if _, err := victim.Engine().Drop(storageKey(goldRing, "heal-me")); err != nil {
		t.Fatal(err)
	}
	if victim.Engine().Get(storageKey(goldRing, "heal-me")) != nil {
		t.Fatal("drop failed")
	}
	// A quorum read from any coordinator repairs the victim.
	if _, err := nodes[3].Get(ctx, goldRing, "heal-me", ReadOptions{}); err != nil {
		t.Fatal(err)
	}
	if got := victim.Engine().Get(storageKey(goldRing, "heal-me")); len(got) != 1 || string(got[0].Value) != "v1" {
		t.Fatalf("read repair did not heal the victim: %+v", got)
	}
}

func TestQuorumFailure(t *testing.T) {
	mesh, nodes := testCluster(t)
	// Kill every node but the coordinator: most partitions lose their
	// replicas entirely, so writes through n0 must fail for keys whose
	// replica set excludes n0.
	for i := 1; i < len(nodes); i++ {
		kill(mesh, nodes, nodes[i].Name())
	}
	failures := 0
	for i := 0; i < 16; i++ {
		if err := nodes[0].Put(ctx, goldRing, fmt.Sprintf("k%d", i), []byte("v"), nil, WriteOptions{}); err != nil {
			if !strings.Contains(err.Error(), "quorum") {
				t.Fatalf("unexpected error: %v", err)
			}
			failures++
		}
	}
	if failures == 0 {
		t.Error("no quorum failures despite 5/6 nodes down")
	}
}

func TestAntiEntropyConvergence(t *testing.T) {
	_, nodes := testCluster(t)
	// ConsistencyAll: the test inspects replica engines directly, so the
	// write must complete on every replica before it returns.
	if err := nodes[0].Put(ctx, platRing, "sync-key", []byte("v1"), nil, WriteOptions{Consistency: ConsistencyAll}); err != nil {
		t.Fatal(err)
	}
	replicas, err := nodes[0].Replicas(platRing, "sync-key")
	if err != nil {
		t.Fatal(err)
	}
	if len(replicas) != 3 {
		t.Fatalf("replicas = %v", replicas)
	}
	byName := map[string]*Node{}
	for _, n := range nodes {
		byName[n.Name()] = n
	}
	a, b := byName[replicas[0]], byName[replicas[1]]
	// Diverge: write a newer version directly into a's engine only.
	sk := storageKey(platRing, "sync-key")
	cur := a.Engine().Get(sk)
	newer := store.Version{Value: []byte("v2"), Clock: vclock.Merge(cur[0].Clock, nil).Tick("direct")}
	if _, err := a.Engine().Put(sk, newer); err != nil {
		t.Fatal(err)
	}

	// Locate the partition id.
	n0 := nodes[0]
	n0.mu.Lock()
	part := n0.rings.Ring(platRing).Lookup(ring.HashKey("sync-key")).ID
	n0.mu.Unlock()

	repaired, err := b.SyncPartition(ctx, platRing, part, a.Name())
	if err != nil {
		t.Fatal(err)
	}
	if repaired != 1 {
		t.Errorf("repaired = %d, want 1", repaired)
	}
	// Both sides must now agree.
	ta := merkle.Build(a.partitionLeaves(platRing, part))
	tb := merkle.Build(b.partitionLeaves(platRing, part))
	if ta.Root() != tb.Root() {
		t.Error("replicas did not converge after anti-entropy")
	}
	if got := b.Engine().Get(sk); len(got) != 1 || string(got[0].Value) != "v2" {
		t.Errorf("b's state after sync: %+v", got)
	}
	// A second round finds nothing.
	repaired, err = b.SyncPartition(ctx, platRing, part, a.Name())
	if err != nil || repaired != 0 {
		t.Errorf("second sync: %d, %v", repaired, err)
	}
}

func TestEconomicEpochRepairsFailure(t *testing.T) {
	mesh, nodes := testCluster(t)
	// Seed data everywhere.
	for i := 0; i < 20; i++ {
		if err := nodes[i%6].Put(ctx, goldRing, fmt.Sprintf("key-%d", i), []byte("payload"), nil, WriteOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	kill(mesh, nodes, "n2")

	params := agent.DefaultParams()
	rent := economy.DefaultRentParams()
	// Run a few epochs: announce rents, then decisions, on every alive
	// node sequentially (the cluster's epoch driver).
	for epoch := 0; epoch < 3; epoch++ {
		for _, n := range nodes {
			if n.Name() == "n2" {
				continue
			}
			if _, _, err := n.AnnounceRent(ctx, rent); err != nil {
				t.Fatalf("announce %s: %v", n.Name(), err)
			}
		}
		for _, n := range nodes {
			if n.Name() == "n2" {
				continue
			}
			if _, err := n.RunEconomicEpoch(ctx, params, rent); err != nil {
				t.Fatalf("epoch %s: %v", n.Name(), err)
			}
		}
	}

	// Every partition of the gold ring must be back above its threshold
	// from every alive node's viewpoint.
	for _, n := range nodes {
		if n.Name() == "n2" {
			continue
		}
		avails, err := n.Availability(goldRing)
		if err != nil {
			t.Fatal(err)
		}
		for part, av := range avails {
			if av < 59 {
				t.Errorf("%s sees partition %d at availability %.1f", n.Name(), part, av)
			}
		}
	}
	// And all data must remain readable.
	for i := 0; i < 20; i++ {
		res, err := nodes[0].Get(ctx, goldRing, fmt.Sprintf("key-%d", i), ReadOptions{})
		if err != nil {
			t.Fatalf("Get after repair: %v", err)
		}
		if len(res.Values) != 1 || string(res.Values[0]) != "payload" {
			t.Fatalf("key-%d lost after failure+repair: %q", i, res.Values)
		}
	}
}

func TestEconomicEpochMigratesOffExpensiveNode(t *testing.T) {
	_, nodes := testCluster(t)
	params := agent.DefaultParams()
	params.F = 1 // fast hysteresis for the test
	rent := economy.DefaultRentParams()

	countOn := func(name string) int {
		n := nodes[0]
		n.mu.Lock()
		defer n.mu.Unlock()
		id, _ := n.nodeID(name)
		total := 0
		for _, rid := range n.rings.IDs() {
			for _, p := range n.rings.Ring(rid).Partitions() {
				if p.HasReplica(id) {
					total++
				}
			}
		}
		return total
	}

	before := countOn("n5") // the 200$/month server
	for epoch := 0; epoch < 6; epoch++ {
		for _, n := range nodes {
			if _, _, err := n.AnnounceRent(ctx, rent); err != nil {
				t.Fatal(err)
			}
		}
		for _, n := range nodes {
			if _, err := n.RunEconomicEpoch(ctx, params, rent); err != nil {
				t.Fatal(err)
			}
		}
	}
	after := countOn("n5")
	if after >= before && before > 0 {
		t.Errorf("expensive node n5 still hosts %d vnodes (was %d); economy should migrate away", after, before)
	}
	// SLAs must hold afterwards.
	for _, id := range []ring.RingID{goldRing, platRing} {
		avails, err := nodes[0].Availability(id)
		if err != nil {
			t.Fatal(err)
		}
		for part, av := range avails {
			if av <= 0 {
				t.Errorf("ring %s partition %d availability %.1f after migrations", id, part, av)
			}
		}
	}
}

func TestHeartbeatsKeepPeersAlive(t *testing.T) {
	_, nodes := testCluster(t)
	for _, n := range nodes {
		n.SendHeartbeats(ctx)
	}
	for _, n := range nodes {
		for _, p := range nodes {
			if !n.alive(p.Name()) {
				t.Errorf("%s considers %s dead after heartbeats", n.Name(), p.Name())
			}
		}
	}
}

func TestBoardElection(t *testing.T) {
	if b, ok := boardOf([]string{"n3", "n1", "n2"}); !ok || b != "n1" {
		t.Errorf("board = %q, %v", b, ok)
	}
	if _, ok := boardOf(nil); ok {
		t.Error("board elected from empty set")
	}
}

func TestSplitStorageKey(t *testing.T) {
	user, id := splitStorageKey("appA/gold/user:42/profile")
	if user != "user:42/profile" || id != goldRing {
		t.Errorf("split = %q %v", user, id)
	}
	if _, id := splitStorageKey("no-slashes"); id != (ring.RingID{}) {
		t.Error("malformed key produced a ring id")
	}
}
