package cluster

import (
	"fmt"
	"path/filepath"
	"testing"

	"skute/internal/merkle"
	"skute/internal/ring"
	"skute/internal/store"
	"skute/internal/transport"
)

// TestWALRecoveryRejoinsCluster restarts a node from its write-ahead log
// and verifies its data survives the crash and anti-entropy pulls in
// whatever it missed while down.
func TestWALRecoveryRejoinsCluster(t *testing.T) {
	dir := t.TempDir()
	mesh := transport.NewMemory()
	defer mesh.Close()
	cfg := testConfig()
	// Sloppy quorums (R=W=1) so the cluster keeps serving with one of two
	// gold replicas down; anti-entropy converges the stragglers.
	cfg.ReadQuorum, cfg.WriteQuorum = 1, 1

	nodes := make(map[string]*Node)
	engines := make(map[string]*store.Engine)
	for _, ni := range cfg.Nodes {
		eng, err := store.Open(filepath.Join(dir, ni.Name+".wal"))
		if err != nil {
			t.Fatal(err)
		}
		engines[ni.Name] = eng
		n, err := NewNode(cfg, ni.Name, mesh, eng)
		if err != nil {
			t.Fatal(err)
		}
		nodes[ni.Name] = n
	}
	for _, n := range nodes {
		n.ConfirmPeers()
	}

	for i := 0; i < 12; i++ {
		if err := nodes["n0"].Put(ctx, goldRing, fmt.Sprintf("durable-%d", i), []byte("v1"), nil, WriteOptions{Consistency: ConsistencyAll}); err != nil {
			t.Fatal(err)
		}
	}

	// Crash n1: mesh down, detectors notified, engine closed (flushes the
	// log).
	mesh.SetDown("mem-n1", true)
	for _, n := range nodes {
		n.Membership().Fail("n1")
	}
	if err := engines["n1"].Close(); err != nil {
		t.Fatal(err)
	}
	preBytes := engines["n1"].Bytes()

	// Writes continue while n1 is down (quorums tolerate one failure on
	// the 2- and 3-replica rings as long as another replica answers).
	for i := 0; i < 12; i++ {
		_ = nodes["n0"].Put(ctx, goldRing, fmt.Sprintf("durable-%d", i), []byte("v2"), mustCtx(t, nodes["n0"], fmt.Sprintf("durable-%d", i)), WriteOptions{Consistency: ConsistencyAll})
	}

	// Restart n1 from its WAL on the same address.
	recovered, err := store.Open(filepath.Join(dir, "n1.wal"))
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	if recovered.Bytes() != preBytes {
		t.Fatalf("recovered %d bytes, wal had %d at crash", recovered.Bytes(), preBytes)
	}
	mesh.SetDown("mem-n1", false)
	n1, err := NewNode(cfg, "n1", mesh, recovered)
	if err != nil {
		t.Fatal(err)
	}
	n1.ConfirmPeers()

	// Anti-entropy rounds pull in the writes n1 missed.
	if _, err := n1.RunAntiEntropy(ctx, 0); err != nil {
		t.Fatalf("anti-entropy: %v", err)
	}
	for i := 0; i < 12; i++ {
		sk := storageKey(goldRing, fmt.Sprintf("durable-%d", i))
		vs := recovered.Get(sk)
		if len(vs) == 0 {
			continue // n1 may not replicate this partition
		}
		if string(vs[0].Value) != "v2" {
			t.Errorf("key %d on recovered node = %q, want v2", i, vs[0].Value)
		}
	}
}

// TestCheckpointRecoveryRejoinsCluster is the bounded-recovery variant of
// the WAL test above: the node checkpoints (snapshot + WAL truncation),
// keeps serving, is killed without a clean close, and restarts through
// store.Restore — loading the snapshot and replaying only the log tail,
// checksums verified on both. The recovered state must match the engine at
// the crash bit-for-bit, and anti-entropy then pulls in what it missed.
func TestCheckpointRecoveryRejoinsCluster(t *testing.T) {
	dir := t.TempDir()
	mesh := transport.NewMemory()
	defer mesh.Close()
	cfg := testConfig()
	cfg.ReadQuorum, cfg.WriteQuorum = 1, 1

	walDir := func(name string) string { return filepath.Join(dir, name+".wal") }
	snapDir := func(name string) string { return filepath.Join(dir, name+".snaps") }

	nodes := make(map[string]*Node)
	engines := make(map[string]*store.Engine)
	for _, ni := range cfg.Nodes {
		eng, err := store.Restore(walDir(ni.Name), snapDir(ni.Name))
		if err != nil {
			t.Fatal(err)
		}
		engines[ni.Name] = eng
		n, err := NewNode(cfg, ni.Name, mesh, eng)
		if err != nil {
			t.Fatal(err)
		}
		nodes[ni.Name] = n
	}
	for _, n := range nodes {
		n.ConfirmPeers()
	}

	// History: overwrite the same keys repeatedly so the WAL grows well
	// past the live data, then checkpoint n1. Keys spread over both rings
	// so every node (n1 included) hosts some of the partitions written.
	for round := 0; round < 6; round++ {
		for i := 0; i < 24; i++ {
			key := fmt.Sprintf("ckpt-%d", i)
			_ = nodes["n0"].Put(ctx, goldRing, key, []byte(fmt.Sprintf("r%d", round)), ctxFor(t, nodes["n0"], goldRing, key), WriteOptions{Consistency: ConsistencyAll})
			_ = nodes["n0"].Put(ctx, platRing, key, []byte(fmt.Sprintf("r%d", round)), ctxFor(t, nodes["n0"], platRing, key), WriteOptions{Consistency: ConsistencyAll})
		}
	}
	preTail := engines["n1"].Durability().WALRecords
	if preTail == 0 || engines["n1"].Len() == 0 {
		t.Fatalf("test setup: n1 received no replicated writes (records=%d keys=%d)", preTail, engines["n1"].Len())
	}
	if _, err := engines["n1"].Checkpoint(snapDir("n1")); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}

	// A little more traffic lands in n1's post-checkpoint WAL tail.
	for i := 0; i < 24; i++ {
		key := fmt.Sprintf("ckpt-%d", i)
		_ = nodes["n0"].Put(ctx, goldRing, key, []byte("post-ckpt"), ctxFor(t, nodes["n0"], goldRing, key), WriteOptions{Consistency: ConsistencyAll})
	}

	// Kill n1: transport down, detectors notified, NO engine close — the
	// crash case. Acknowledged writes are already fsynced by group commit.
	mesh.SetDown("mem-n1", true)
	for _, n := range nodes {
		n.Membership().Fail("n1")
	}
	preRoot := merkle.Build(engines["n1"].MerkleLeaves(nil)).Root()
	preBytes := engines["n1"].Bytes()

	// Writes continue while n1 is down.
	for i := 0; i < 24; i++ {
		key := fmt.Sprintf("ckpt-%d", i)
		_ = nodes["n0"].Put(ctx, goldRing, key, []byte("while-down"), ctxFor(t, nodes["n0"], goldRing, key), WriteOptions{Consistency: ConsistencyAll})
	}

	// Restart n1 from snapshot + WAL tail.
	recovered, err := store.Restore(walDir("n1"), snapDir("n1"))
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	defer recovered.Close()
	if root := merkle.Build(recovered.MerkleLeaves(nil)).Root(); root != preRoot {
		t.Fatal("recovered state diverges from the engine at crash time")
	}
	if recovered.Bytes() != preBytes {
		t.Fatalf("recovered %d bytes, engine had %d at crash", recovered.Bytes(), preBytes)
	}
	d := recovered.Durability()
	if d.SnapshotSeq == 0 {
		t.Fatal("restart did not load the snapshot")
	}
	if d.TailRecords >= preTail {
		t.Fatalf("restart replayed %d records, want fewer than the %d-record pre-checkpoint history", d.TailRecords, preTail)
	}

	mesh.SetDown("mem-n1", false)
	n1, err := NewNode(cfg, "n1", mesh, recovered)
	if err != nil {
		t.Fatal(err)
	}
	n1.ConfirmPeers()
	if _, err := n1.RunAntiEntropy(ctx, 0); err != nil {
		t.Fatalf("anti-entropy: %v", err)
	}
	for i := 0; i < 24; i++ {
		sk := storageKey(goldRing, fmt.Sprintf("ckpt-%d", i))
		vs := recovered.Get(sk)
		if len(vs) == 0 {
			continue // n1 may not replicate this partition
		}
		if string(vs[0].Value) != "while-down" {
			t.Errorf("key %d on recovered node = %q, want while-down", i, vs[0].Value)
		}
	}
}

// mustCtx reads the current context of a key on the gold ring.
func mustCtx(t *testing.T, n *Node, key string) map[string]uint64 {
	t.Helper()
	return ctxFor(t, n, goldRing, key)
}

// ctxFor reads the current context of a key on the given ring. These
// tests write at ConsistencyAll (below), so every alive replica is in
// sync and a single-replica read returns the full context even while a
// peer is down.
func ctxFor(t *testing.T, n *Node, id ring.RingID, key string) map[string]uint64 {
	t.Helper()
	res, err := n.Get(ctx, id, key, ReadOptions{Consistency: ConsistencyOne})
	if err != nil {
		t.Fatal(err)
	}
	return res.Context
}

func TestRunAntiEntropyCleanCluster(t *testing.T) {
	_, nodes := testCluster(t)
	for i := 0; i < 10; i++ {
		if err := nodes[0].Put(ctx, platRing, fmt.Sprintf("k%d", i), []byte("v"), nil, WriteOptions{Consistency: ConsistencyAll}); err != nil {
			t.Fatal(err)
		}
	}
	// A converged cluster repairs nothing.
	for round, n := range nodes {
		repaired, err := n.RunAntiEntropy(ctx, round)
		if err != nil {
			t.Fatalf("%s: %v", n.Name(), err)
		}
		if repaired != 0 {
			t.Errorf("%s repaired %d keys on a converged cluster", n.Name(), repaired)
		}
	}
}
