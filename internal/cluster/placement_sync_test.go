package cluster

import (
	"fmt"
	"sync"
	"testing"

	"skute/internal/placement"
	"skute/internal/ring"
)

// entryOf reads a node's placement entry or fails the test.
func entryOf(t *testing.T, n *Node, id ring.RingID, part int) placement.Entry {
	t.Helper()
	e, ok := n.PlacementEntry(id, part)
	if !ok {
		t.Fatalf("%s has no placement entry for %s#%d", n.Name(), id, part)
	}
	return e
}

// routedReplicas reads a node's materialized routing view of a partition.
func routedReplicas(t *testing.T, n *Node, id ring.RingID, part int) []string {
	t.Helper()
	_, p, err := n.partition(id, part)
	if err != nil {
		t.Fatal(err)
	}
	return n.replicasOf(p)
}

// TestIsolatedNodeConvergesViaDigestPull pins the acceptance scenario of
// the versioned control plane: a node partitioned away during TWO
// migrations of the same partition learns nothing from the delta pushes
// (they cannot reach it), then converges to the correct replica map
// through the gossip digest pull alone — one heartbeat from an
// up-to-date peer carries the mismatching digest, and the isolated node
// pulls and merges the missed deltas.
func TestIsolatedNodeConvergesViaDigestPull(t *testing.T) {
	mesh, nodes := testCluster(t)
	const part = 0

	// The isolated observer: a node that does not replicate partition 0,
	// so the test isolates pure control-plane convergence.
	seed := entryOf(t, nodes[0], goldRing, part)
	isReplica := map[string]bool{}
	for _, r := range seed.Replicas {
		isReplica[r] = true
	}
	var isolated *Node
	for _, n := range nodes {
		if !isReplica[n.Name()] {
			isolated = n
			break
		}
	}
	mesh.SetDown(isolated.self.Addr, true)

	// Two migrations while the node is unreachable: replica 0 hands its
	// copy to a fresh node, which then hands it to another. Each
	// migration is an add+remove proposal pair, disseminated to whoever
	// is reachable (the delta push to the isolated node fails silently —
	// exactly the lost-broadcast scenario that used to corrupt the old
	// unversioned assign protocol).
	byName := map[string]*Node{}
	var free []string
	for _, n := range nodes {
		byName[n.Name()] = n
		if !isReplica[n.Name()] && n != isolated {
			free = append(free, n.Name())
		}
	}
	migrate := func(coord *Node, to string) {
		if d, ok := coord.propose(goldRing, part, to, ""); ok {
			coord.disseminate(ctx, d)
		} else {
			t.Fatalf("propose add %s was a no-op", to)
		}
		if d, ok := coord.propose(goldRing, part, "", coord.Name()); ok {
			coord.disseminate(ctx, d)
		} else {
			t.Fatalf("propose remove %s was a no-op", coord.Name())
		}
	}
	migrate(byName[seed.Replicas[0]], free[0]) // versions 2,3
	migrate(byName[free[0]], free[1])          // versions 4,5

	// The isolated node still holds the seed view.
	if e := entryOf(t, isolated, goldRing, part); e.Version != 1 {
		t.Fatalf("isolated node advanced to v%d while partitioned", e.Version)
	}

	// Heal the partition and let ONE heartbeat from an up-to-date peer
	// arrive. No delta is pushed; the digest mismatch alone must make
	// the isolated node pull everything it missed.
	mesh.SetDown(isolated.self.Addr, false)
	informed := byName[seed.Replicas[1]] // untouched replica, saw every delta
	before := isolated.Counters().DeltasApplied.Value()
	informed.SendHeartbeats(ctx)

	want := entryOf(t, informed, goldRing, part)
	got := entryOf(t, isolated, goldRing, part)
	if got.Version != want.Version || got.Origin != want.Origin ||
		fmt.Sprint(got.Replicas) != fmt.Sprint(want.Replicas) {
		t.Fatalf("isolated node did not converge: got %+v, want %+v", got, want)
	}
	if want.Version != 5 {
		t.Fatalf("two migrations should end at version 5, got %d", want.Version)
	}
	// The routing view materialized the pulled entries too.
	if fmt.Sprint(routedReplicas(t, isolated, goldRing, part)) != fmt.Sprint(want.Replicas) {
		t.Fatalf("routing view %v does not match placement %v",
			routedReplicas(t, isolated, goldRing, part), want.Replicas)
	}
	if isolated.Counters().DeltasApplied.Value()-before < 1 {
		t.Error("catch-up applied no deltas")
	}
	if isolated.Counters().ReconcileRounds.Value() == 0 {
		t.Error("no reconcile round recorded")
	}
	// Every node of the cluster agrees on the final replica map.
	for _, n := range nodes {
		if e := entryOf(t, n, goldRing, part); fmt.Sprint(e.Replicas) != fmt.Sprint(want.Replicas) {
			t.Errorf("%s diverged: %v", n.Name(), e.Replicas)
		}
	}
}

// TestStaleDeltaRejectedAndCounted: once a newer placement delta is in,
// an older one arriving late (the reordered-broadcast hazard) must be
// rejected and counted, never resurrect the superseded replica set.
func TestStaleDeltaRejectedAndCounted(t *testing.T) {
	_, nodes := testCluster(t)
	n := nodes[0]
	const part = 1
	seed := entryOf(t, n, goldRing, part)

	newer := placement.Delta{
		Ring: goldRing, Part: part,
		Replicas: []string{"n3", "n4"},
		Version:  seed.Version + 2, Origin: "n3",
	}
	stale := placement.Delta{
		Ring: goldRing, Part: part,
		Replicas: []string{"n0", "n5"},
		Version:  seed.Version + 1, Origin: "n0",
	}
	if got := n.applyDeltas([]placement.Delta{newer}); got != 1 {
		t.Fatalf("newer delta applied %d entries", got)
	}
	staleBefore := n.Counters().DeltasStale.Value()
	if got := n.applyDeltas([]placement.Delta{stale}); got != 0 {
		t.Fatalf("stale delta applied %d entries", got)
	}
	if d := n.Counters().DeltasStale.Value() - staleBefore; d != 1 {
		t.Fatalf("stale counter moved by %d, want 1", d)
	}
	if e := entryOf(t, n, goldRing, part); fmt.Sprint(e.Replicas) != "[n3 n4]" {
		t.Fatalf("stale delta mutated the entry: %+v", e)
	}
	// Redelivering the current delta is a duplicate: neither applied nor
	// stale.
	applied, staleC := n.Counters().DeltasApplied.Value(), n.Counters().DeltasStale.Value()
	if got := n.applyDeltas([]placement.Delta{newer}); got != 0 {
		t.Fatalf("duplicate delta applied %d entries", got)
	}
	if n.Counters().DeltasApplied.Value() != applied || n.Counters().DeltasStale.Value() != staleC {
		t.Error("duplicate delta moved the applied/stale counters")
	}
}

// TestConcurrentMigrationsConverge: two coordinators move the same
// partition concurrently — both proposals carry the same version, so
// the origin tie-break must make every node resolve to the same winner
// regardless of delivery order. Runs race-clean under -race.
func TestConcurrentMigrationsConverge(t *testing.T) {
	_, nodes := testCluster(t)
	const part = 2
	seed := entryOf(t, nodes[0], goldRing, part)
	byName := map[string]*Node{}
	for _, n := range nodes {
		byName[n.Name()] = n
	}
	coordA, coordB := byName[seed.Replicas[0]], byName[seed.Replicas[1]]

	// Each coordinator picks a distinct adoption target.
	var targets []string
	for _, n := range nodes {
		if n.Name() != seed.Replicas[0] && n.Name() != seed.Replicas[1] {
			targets = append(targets, n.Name())
		}
	}
	// Propose on both coordinators BEFORE any dissemination: both stamp
	// version seed+1 with different origins — a true concurrent
	// conflict. Then the pushes race each other across the cluster.
	dA, okA := coordA.propose(goldRing, part, targets[0], "")
	dB, okB := coordB.propose(goldRing, part, targets[1], "")
	if !okA || !okB || dA.Version != dB.Version {
		t.Fatalf("proposals not concurrent: %+v vs %+v", dA, dB)
	}
	var wg sync.WaitGroup
	for i, c := range []*Node{coordA, coordB} {
		wg.Add(1)
		go func(c *Node, d placement.Delta) {
			defer wg.Done()
			c.disseminate(ctx, d)
		}(c, []placement.Delta{dA, dB}[i])
	}
	wg.Wait()

	// Both proposals were version seed+1; the larger origin name wins
	// everywhere, including on the losing coordinator itself.
	wantOrigin := coordA.Name()
	if coordB.Name() > wantOrigin {
		wantOrigin = coordB.Name()
	}
	want := entryOf(t, byName[wantOrigin], goldRing, part)
	if want.Origin != wantOrigin || want.Version != seed.Version+1 {
		t.Fatalf("winner's own entry is %+v, want v%d@%s", want, seed.Version+1, wantOrigin)
	}
	for _, n := range nodes {
		got := entryOf(t, n, goldRing, part)
		if got.Version != want.Version || got.Origin != want.Origin ||
			fmt.Sprint(got.Replicas) != fmt.Sprint(want.Replicas) {
			t.Errorf("%s diverged: %+v, want %+v", n.Name(), got, want)
		}
		if fmt.Sprint(routedReplicas(t, n, goldRing, part)) != fmt.Sprint(want.Replicas) {
			t.Errorf("%s routing view diverged: %v", n.Name(), routedReplicas(t, n, goldRing, part))
		}
	}
}

// TestDeltaEvictingSelfDropsData: a node that learns — possibly long
// after the fact, via gossip — that a partition replica migrated off it
// must drop the partition's local data and ledger instead of serving a
// zombie copy.
func TestDeltaEvictingSelfDropsData(t *testing.T) {
	_, nodes := testCluster(t)
	// Write a key with ConsistencyAll so every replica holds it.
	if err := nodes[0].Put(ctx, goldRing, "evict-me", []byte("v"), nil, WriteOptions{Consistency: ConsistencyAll}); err != nil {
		t.Fatal(err)
	}
	n0 := nodes[0]
	n0.mu.RLock()
	p := n0.rings.Ring(goldRing).Lookup(ring.HashKey("evict-me"))
	part := p.ID
	n0.mu.RUnlock()
	seed := entryOf(t, n0, goldRing, part)

	byName := map[string]*Node{}
	for _, n := range nodes {
		byName[n.Name()] = n
	}
	victim := byName[seed.Replicas[0]]
	if got := victim.Engine().Get(storageKey(goldRing, "evict-me")); len(got) == 0 {
		t.Fatal("victim does not hold the key before eviction")
	}

	// A delta that drops the victim from the replica set.
	var rest []string
	for _, r := range seed.Replicas {
		if r != victim.Name() {
			rest = append(rest, r)
		}
	}
	evict := placement.Delta{
		Ring: goldRing, Part: part,
		Replicas: rest, Version: seed.Version + 1, Origin: rest[0],
	}
	if got := victim.applyDeltas([]placement.Delta{evict}); got != 1 {
		t.Fatalf("evicting delta applied %d entries", got)
	}
	if got := victim.Engine().Get(storageKey(goldRing, "evict-me")); len(got) != 0 {
		t.Fatalf("victim still holds the key after eviction: %+v", got)
	}
	victim.mu.RLock()
	_, hasLedger := victim.ledgers[vnodeKey(goldRing, part)]
	victim.mu.RUnlock()
	if hasLedger {
		t.Error("victim kept the evicted vnode's ledger")
	}
}

// TestProposeRefusesEmptyReplicaSet: removing the last listed replica
// must be a no-op — a partition stamped with zero replicas would be
// unreachable and unrepairable forever, since only hosting vnodes make
// placement decisions.
func TestProposeRefusesEmptyReplicaSet(t *testing.T) {
	_, nodes := testCluster(t)
	n := nodes[0]
	const part = 4
	seed := entryOf(t, n, goldRing, part)
	// Strip the set down to one replica...
	for _, r := range seed.Replicas[1:] {
		if _, ok := n.propose(goldRing, part, "", r); !ok {
			t.Fatalf("removing %s was refused with %d replicas left", r, len(seed.Replicas))
		}
	}
	before := entryOf(t, n, goldRing, part)
	if len(before.Replicas) != 1 {
		t.Fatalf("setup left %v", before.Replicas)
	}
	// ...and the final removal must be refused.
	if _, ok := n.propose(goldRing, part, "", before.Replicas[0]); ok {
		t.Fatal("propose stamped an empty replica set")
	}
	after := entryOf(t, n, goldRing, part)
	if after.Version != before.Version || len(after.Replicas) != 1 {
		t.Fatalf("refused propose still mutated the entry: %+v", after)
	}
}

// TestMutualSuicidePreservesData: the last two replicas of a partition
// decide to suicide in the same instant — both removal deltas cross
// during dissemination, the origin tie-break picks one winner, and the
// node the converged set still lists must KEEP its data (the drop
// happens only after dissemination, and only if the merged entry still
// excludes the dropper). No converged replica set may consist solely of
// empty copies.
func TestMutualSuicidePreservesData(t *testing.T) {
	_, nodes := testCluster(t)
	const key = "mutual-suicide"
	if err := nodes[0].Put(ctx, goldRing, key, []byte("v"), nil, WriteOptions{Consistency: ConsistencyAll}); err != nil {
		t.Fatal(err)
	}
	n0 := nodes[0]
	n0.mu.RLock()
	part := n0.rings.Ring(goldRing).Lookup(ring.HashKey(key)).ID
	n0.mu.RUnlock()
	seed := entryOf(t, n0, goldRing, part)
	if len(seed.Replicas) != 2 {
		t.Fatalf("gold partition has %d replicas", len(seed.Replicas))
	}
	byName := map[string]*Node{}
	for _, n := range nodes {
		byName[n.Name()] = n
	}
	a, b := byName[seed.Replicas[0]], byName[seed.Replicas[1]]

	// Both replicas stamp their self-removal before either delta has
	// crossed — the mutually invisible concurrent window.
	dA, okA := a.propose(goldRing, part, "", a.Name())
	dB, okB := b.propose(goldRing, part, "", b.Name())
	if !okA || !okB || dA.Version != dB.Version {
		t.Fatalf("proposals not concurrent: %+v vs %+v", dA, dB)
	}
	// The epoch path: disseminate first, then drop only if still evicted.
	a.disseminate(ctx, dA)
	b.disseminate(ctx, dB)
	a.dropIfEvicted(goldRing, part)
	b.dropIfEvicted(goldRing, part)

	// The winning delta is the one with the larger origin; it removed
	// its origin and kept the other node, which is therefore the
	// converged set's sole — and data-holding — replica.
	survivor, dropper := b, a // a won: its delta keeps b
	if b.Name() > a.Name() {  // b won: its delta keeps a
		survivor, dropper = a, b
	}
	for _, n := range []*Node{a, b} {
		e := entryOf(t, n, goldRing, part)
		if fmt.Sprint(e.Replicas) != fmt.Sprintf("[%s]", survivor.Name()) {
			t.Fatalf("%s converged to %v, want [%s]", n.Name(), e.Replicas, survivor.Name())
		}
	}
	if got := survivor.Engine().Get(storageKey(goldRing, key)); len(got) != 1 {
		t.Fatalf("surviving replica %s lost the data: %+v", survivor.Name(), got)
	}
	if got := dropper.Engine().Get(storageKey(goldRing, key)); len(got) != 0 {
		t.Errorf("evicted replica %s kept the data: %+v", dropper.Name(), got)
	}
}
