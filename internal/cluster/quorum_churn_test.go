package cluster

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"skute/internal/placement"
	"skute/internal/ring"
	"skute/internal/store"
	"skute/internal/transport"
)

// inflateEntry rewrites one partition's placement entry to the given
// replica set on every node — the state a mid-transfer churn episode
// leaves behind, where donor and adopter are listed side by side and the
// entry temporarily exceeds the ring's spec target.
func inflateEntry(t *testing.T, nodes []*Node, id ring.RingID, part int, replicas []string) {
	t.Helper()
	cur, ok := nodes[0].pmap.Get(id, part)
	if !ok {
		t.Fatalf("no placement entry for %s#%d", id, part)
	}
	d := placement.Delta{
		Ring:     id,
		Part:     part,
		Replicas: replicas,
		Version:  cur.Version + 1,
		Origin:   "churn-test",
	}
	for _, n := range nodes {
		n.applyDeltas([]placement.Delta{d})
	}
	for _, n := range nodes {
		if got := n.replicasOf(n.rings.Ring(id).Get(part)); len(got) != len(replicas) {
			t.Fatalf("%s materialized %d replicas, want %d", n.Name(), len(got), len(replicas))
		}
	}
}

// pickSpread returns a key owned by the plat ring partition, the
// partition id, and a 5-name replica set (the current 3 plus 2 others).
func pickSpread(t *testing.T, nodes []*Node) (key string, part int, five []string) {
	t.Helper()
	n0 := nodes[0]
	p := n0.rings.Ring(platRing).Lookup(ring.HashKey("churn-key"))
	in := make(map[string]bool)
	five = n0.replicasOf(p)
	for _, name := range five {
		in[name] = true
	}
	for _, n := range nodes {
		if !in[n.Name()] && len(five) < 5 {
			five = append(five, n.Name())
			in[n.Name()] = true
		}
	}
	if len(five) != 5 {
		t.Fatalf("could not build a 5-replica set: %v", five)
	}
	return "churn-key", p.ID, five
}

// TestQuorumSizesFromLiveReplicaSet pins roadmap item 6a: quorums must be
// sized from the placement entry's LIVE replica count, not the ring's
// spec target. With an entry inflated to 5 replicas (spec target 3) and
// 3 of the 5 down, a default-consistency write must fail — acking with 2
// of 5 would let a later majority read miss the write entirely.
func TestQuorumSizesFromLiveReplicaSet(t *testing.T) {
	mesh, nodes := testCluster(t)
	key, part, five := pickSpread(t, nodes)
	inflateEntry(t, nodes, platRing, part, five)

	// Down 3 of the 5 replicas: only 2 can ack.
	for _, name := range five[2:] {
		kill(mesh, nodes, name)
	}
	coord := nodes[0]
	err := coord.Put(ctx, platRing, key, []byte("v"), nil, WriteOptions{})
	if err == nil {
		t.Fatalf("default-consistency Put acked with 2 of 5 replicas live (quorum sized from spec target, not live entry)")
	}
	if !strings.Contains(err.Error(), "quorum") {
		t.Fatalf("Put failed for the wrong reason: %v", err)
	}
	if _, err := coord.Get(ctx, platRing, key, ReadOptions{}); err == nil {
		t.Fatalf("default-consistency Get answered with 2 of 5 replicas live")
	}

	// Heal one replica: 3 of 5 alive is a live majority again, and the
	// write a majority acks is visible to a majority read.
	revive := five[2]
	for _, n := range nodes {
		if n.Name() == revive {
			mesh.SetDown(n.self.Addr, false)
		}
		n.Membership().Revive(revive, n.Now())
	}
	if err := coord.Put(ctx, platRing, key, []byte("v2"), nil, WriteOptions{}); err != nil {
		t.Fatalf("Put with 3 of 5 alive: %v", err)
	}
	res, err := coord.Get(ctx, platRing, key, ReadOptions{})
	if err != nil {
		t.Fatalf("Get with 3 of 5 alive: %v", err)
	}
	if len(res.Values) != 1 || string(res.Values[0]) != "v2" {
		t.Fatalf("Get = %q, want v2", res.Values)
	}

	// An explicit Count(n) keeps its absolute meaning on the inflated
	// entry: 2 replicas can still satisfy ConsistencyCount(2)... but only
	// as an explicit opt-out of the overlap guarantee.
	if err := coord.Put(ctx, platRing, key, []byte("v3"), nil, WriteOptions{Consistency: 2}); err != nil {
		t.Fatalf("explicit count(2) Put with 3 alive: %v", err)
	}
}

// delayTo wraps a transport and delays calls to one address — a slow but
// healthy replica.
type delayTo struct {
	transport.Transport
	delay time.Duration

	mu       sync.Mutex
	addr     string
	released bool
}

func (d *delayTo) slowAddr(addr string) {
	d.mu.Lock()
	d.addr = addr
	d.mu.Unlock()
}

func (d *delayTo) release() {
	d.mu.Lock()
	d.released = true
	d.mu.Unlock()
}

func (d *delayTo) Call(ctx context.Context, addr string, req transport.Envelope) (transport.Envelope, error) {
	d.mu.Lock()
	slow := d.addr != "" && addr == d.addr && !d.released
	d.mu.Unlock()
	if slow {
		select {
		case <-time.After(d.delay):
		case <-ctx.Done():
			return transport.Envelope{}, ctx.Err()
		}
	}
	return d.Transport.Call(ctx, addr, req)
}

// TestTailFanoutSurvivesPostQuorumCancel pins roadmap item 6b: once the
// write quorum is met and the coordinator returns, its per-request
// timeout cancel fires — and must NOT abort the still-in-flight sends to
// the remaining replicas. All N replicas converge from the write fan-out
// alone, without anti-entropy.
func TestTailFanoutSurvivesPostQuorumCancel(t *testing.T) {
	mesh := transport.NewMemory()
	cfg := testConfig()
	var nodes []*Node
	wrappers := make([]*delayTo, len(cfg.Nodes))
	for i, ni := range cfg.Nodes {
		wrappers[i] = &delayTo{Transport: mesh, delay: 150 * time.Millisecond}
		n, err := NewNode(cfg, ni.Name, wrappers[i], store.NewMemory())
		if err != nil {
			t.Fatalf("NewNode(%s): %v", ni.Name, err)
		}
		nodes = append(nodes, n)
	}
	for _, n := range nodes {
		n.ConfirmPeers()
	}
	t.Cleanup(func() { mesh.Close() })

	// Find a coordinator and key whose plat-ring replica set excludes the
	// coordinator: all 3 replicas are remote, so the write goes through
	// callAll.
	var coord *Node
	var slow *delayTo
	var key string
	var replicas []string
search:
	for _, cand := range []string{"a", "b", "c", "d", "e", "f", "g", "h"} {
		p := nodes[0].rings.Ring(platRing).Lookup(ring.HashKey(cand))
		rs := nodes[0].replicasOf(p)
		in := make(map[string]bool, len(rs))
		for _, name := range rs {
			in[name] = true
		}
		for i, n := range nodes {
			if !in[n.Name()] {
				coord, slow, key, replicas = n, wrappers[i], cand, rs
				break search
			}
		}
	}
	if key == "" {
		t.Fatalf("no all-remote (coordinator, partition) pair in this layout")
	}
	// The last replica is slow: the other two meet W=2 and the write
	// returns while its send is still in flight.
	byName := make(map[string]*Node, len(nodes))
	for _, n := range nodes {
		byName[n.Name()] = n
	}
	slow.slowAddr(byName[replicas[2]].self.Addr)

	err := coord.Put(ctx, platRing, key, []byte("v"), nil, WriteOptions{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatalf("Put: %v", err)
	}

	// The write returned at quorum; the slow replica's send must still
	// land. No anti-entropy runs in this test — convergence can only come
	// from the original fan-out.
	deadline := time.Now().Add(3 * time.Second)
	for {
		vs := byName[replicas[2]].eng.Get(storageKey(platRing, key))
		if len(vs) == 1 && string(vs[0].Value) == "v" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slow replica never received the post-quorum write (tail send aborted by the request cancel)")
		}
		time.Sleep(10 * time.Millisecond)
	}
	slow.release()

	// Every replica converged from the fan-out alone.
	for _, name := range replicas {
		vs := byName[name].eng.Get(storageKey(platRing, key))
		if len(vs) != 1 || string(vs[0].Value) != "v" {
			t.Fatalf("replica %s did not converge: %v", name, vs)
		}
	}
}
