package cluster

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"skute/internal/economy"
	"skute/internal/gossip"
	"skute/internal/ring"
	"skute/internal/store"
	"skute/internal/topology"
	"skute/internal/transport"
)

// Message kinds on the wire.
const (
	kindGet       = "get"
	kindPut       = "put"
	kindHeartbeat = "heartbeat"
	kindLeaves    = "merkle-leaves"
	kindFetchPart = "fetch-partition"
	kindAdopt     = "adopt"
	kindAssign    = "assign"
	kindAnnounce  = "rent-announce"
	kindRents     = "rent-list"
	kindDropPart  = "drop-partition"
	// Multi-key replica kinds: one envelope carries a whole partition
	// key group, amortizing the per-call overhead of fan-out-heavy
	// batches (see Node.MultiGet/MultiPut).
	kindMultiGet = "multi-get"
	kindMultiPut = "multi-put"
	// Client-facing kinds: the receiving node coordinates the quorum
	// operation on the caller's behalf (cmd/skutectl uses these). The
	// requests carry the caller's consistency level and timeout budget so
	// the coordinator honors the caller's choice, not its own defaults.
	kindClientGet  = "client-get"
	kindClientPut  = "client-put"
	kindClientDel  = "client-del"
	kindClientMGet = "client-mget"
	kindClientMPut = "client-mput"
)

// Wire payloads (gob encoded inside transport.Envelope.Payload).
type (
	getReq struct {
		Ring ring.RingID
		Key  string
	}
	getResp struct {
		Versions []store.Version
	}
	putReq struct {
		Ring    ring.RingID
		Key     string
		Version store.Version
	}
	putResp struct {
		Accepted bool
	}
	heartbeatReq struct {
		From string
	}
	leavesReq struct {
		Ring ring.RingID
		Part int
	}
	leavesResp struct {
		Keys   []string
		Hashes [][]byte
	}
	fetchPartReq struct {
		Ring ring.RingID
		Part int
	}
	kv struct {
		Key      string
		Versions []store.Version
	}
	fetchPartResp struct {
		Items []kv
	}
	adoptReq struct {
		Ring     ring.RingID
		Part     int
		FromAddr string
	}
	assignReq struct {
		Ring   ring.RingID
		Part   int
		Add    string // node name to add ("" = none)
		Remove string // node name to remove ("" = none)
	}
	announceReq struct {
		Node string
		Rent float64
	}
	rentsResp struct {
		Rents map[string]float64
	}
	dropPartReq struct {
		Ring ring.RingID
		Part int
	}
	putItem struct {
		Key     string
		Version store.Version
	}
	multiGetReq struct {
		Ring ring.RingID
		Keys []string
	}
	multiGetResp struct {
		Items []kv
	}
	multiPutReq struct {
		Ring  ring.RingID
		Items []putItem
	}
	clientGetReq struct {
		Ring        ring.RingID
		Key         string
		Consistency Consistency
		Timeout     time.Duration
	}
	clientGetResp struct {
		Values  [][]byte
		Context map[string]uint64
	}
	clientPutReq struct {
		Ring        ring.RingID
		Key         string
		Value       []byte
		Delete      bool
		Context     map[string]uint64
		Consistency Consistency
		Timeout     time.Duration
	}
	clientMGetReq struct {
		Ring        ring.RingID
		Keys        []string
		Consistency Consistency
		Timeout     time.Duration
	}
	clientKV struct {
		Key     string
		Values  [][]byte
		Context map[string]uint64
	}
	clientMGetResp struct {
		Items []clientKV
	}
	clientMPutReq struct {
		Ring        ring.RingID
		Entries     []Entry
		Consistency Consistency
		Timeout     time.Duration
	}
)

func encode(v any) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		panic(fmt.Sprintf("cluster: encode %T: %v", v, err)) // all payloads are gob-safe by construction
	}
	return buf.Bytes()
}

func decode(p []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(p)).Decode(v)
}

// Node is one prototype server.
type Node struct {
	cfg   Config
	self  NodeInfo
	selfI int
	tr    transport.Transport
	eng   *store.Engine
	det   *gossip.Detector
	// Now is the clock source; overridable in tests.
	Now func() time.Time
	// epochWorkers bounds the economic-epoch worker pool (see
	// Config.EpochWorkers).
	epochWorkers int

	// mu guards the ring layout, ledgers and the board copy. The quorum
	// read/write path only ever read-locks it, so data-plane traffic does
	// not serialize behind control-plane updates.
	mu      sync.RWMutex
	rings   *ring.MultiRing
	specs   map[ring.RingID]RingSpec
	ledgers map[string]*ledgerState // per hosted vnode, keyed ring/part
	rents   map[string]float64      // board copy (only used on the board node)
	rng     *rand.Rand

	// qmu guards only the per-vnode query counters, which every quorum
	// operation bumps; keeping them off mu removes the last exclusive
	// lock from the hot path.
	qmu     sync.Mutex
	queries map[string]float64 // per hosted vnode epoch query count
}

// ledgerState is a hosted vnode's economic memory.
type ledgerState struct {
	ledger economyLedger
}

// economyLedger aliases the economy ledger to keep the import local.
type economyLedger = economy.Ledger

// NewNode boots a node from the shared descriptor. The engine may be a
// fresh in-memory engine or one recovered from a WAL.
func NewNode(cfg Config, name string, tr transport.Transport, eng *store.Engine) (*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	selfI := -1
	for i, n := range cfg.Nodes {
		if n.Name == name {
			selfI = i
			break
		}
	}
	if selfI < 0 {
		return nil, fmt.Errorf("cluster: node %q not in descriptor", name)
	}
	rings, specs, err := buildLayout(cfg)
	if err != nil {
		return nil, err
	}
	suspect := cfg.SuspectAfter
	if suspect == 0 {
		suspect = 10 * time.Second
	}
	n := &Node{
		cfg:          cfg,
		self:         cfg.Nodes[selfI],
		selfI:        selfI,
		tr:           tr,
		eng:          eng,
		det:          gossip.NewDetector(suspect),
		Now:          time.Now,
		epochWorkers: cfg.EpochWorkers,
		rings:        rings,
		specs:        specs,
		ledgers:      make(map[string]*ledgerState),
		queries:      make(map[string]float64),
		rents:        make(map[string]float64),
		rng:          rand.New(rand.NewSource(int64(selfI) + 1)),
	}
	// Optimistic bootstrap: all peers start alive; real liveness takes
	// over as heartbeats (or their absence) arrive.
	now := n.Now()
	for _, p := range cfg.Nodes {
		n.det.Heartbeat(p.Name, now)
	}
	if err := tr.Serve(n.self.Addr, n.handle); err != nil {
		return nil, err
	}
	return n, nil
}

// Name returns the node's name.
func (n *Node) Name() string { return n.self.Name }

// Engine exposes the local storage engine (read-mostly introspection).
func (n *Node) Engine() *store.Engine { return n.eng }

// Detector exposes the failure detector (tests drive time through it).
func (n *Node) Detector() *gossip.Detector { return n.det }

// info returns the NodeInfo of a named peer.
func (n *Node) info(name string) (NodeInfo, bool) {
	for _, p := range n.cfg.Nodes {
		if p.Name == name {
			return p, true
		}
	}
	return NodeInfo{}, false
}

// nodeName maps a ring.ServerID (descriptor index) to the node name.
func (n *Node) nodeName(id ring.ServerID) string { return n.cfg.Nodes[int(id)].Name }

// nodeID maps a name back to its descriptor index.
func (n *Node) nodeID(name string) (ring.ServerID, bool) {
	for i, p := range n.cfg.Nodes {
		if p.Name == name {
			return ring.ServerID(i), true
		}
	}
	return 0, false
}

// loc returns the location of a descriptor index.
func (n *Node) loc(id ring.ServerID) topology.Location {
	l, err := n.cfg.Nodes[int(id)].Loc()
	if err != nil {
		panic(err) // validated at construction
	}
	return l
}

// alive reports liveness; a node always trusts itself.
func (n *Node) alive(name string) bool {
	return name == n.self.Name || n.det.Alive(name, n.Now())
}

// aliveNames returns the names of peers (including self) currently alive.
func (n *Node) aliveNames() []string {
	var out []string
	for _, p := range n.cfg.Nodes {
		if n.alive(p.Name) {
			out = append(out, p.Name)
		}
	}
	return out
}

// storageKey namespaces a user key by ring.
func storageKey(id ring.RingID, key string) string {
	return id.App + "/" + id.Class + "/" + key
}

// SendHeartbeats announces this node to every peer; unreachable peers
// simply miss the beat and will fade in their detectors.
func (n *Node) SendHeartbeats() {
	req := transport.Envelope{Kind: kindHeartbeat, Payload: encode(heartbeatReq{From: n.self.Name})}
	for _, p := range n.cfg.Nodes {
		if p.Name == n.self.Name {
			continue
		}
		_, _ = n.tr.Call(context.Background(), p.Addr, req) // best effort
	}
}

// handle dispatches one incoming request. The context comes from the
// transport (the caller's own context for in-memory calls, the
// connection's lifetime for TCP) and flows into any nested quorum
// coordination this request triggers.
func (n *Node) handle(ctx context.Context, req transport.Envelope) (transport.Envelope, error) {
	switch req.Kind {
	case kindHeartbeat:
		var hb heartbeatReq
		if err := decode(req.Payload, &hb); err != nil {
			return transport.Envelope{}, err
		}
		n.det.Heartbeat(hb.From, n.Now())
		return transport.Envelope{Kind: "ok"}, nil

	case kindGet:
		var g getReq
		if err := decode(req.Payload, &g); err != nil {
			return transport.Envelope{}, err
		}
		vs := n.eng.Get(storageKey(g.Ring, g.Key))
		return transport.Envelope{Kind: "ok", Payload: encode(getResp{Versions: vs})}, nil

	case kindPut:
		var p putReq
		if err := decode(req.Payload, &p); err != nil {
			return transport.Envelope{}, err
		}
		acc, err := n.eng.Put(storageKey(p.Ring, p.Key), p.Version)
		if err != nil {
			return transport.Envelope{}, err
		}
		return transport.Envelope{Kind: "ok", Payload: encode(putResp{Accepted: acc})}, nil

	case kindMultiGet:
		var m multiGetReq
		if err := decode(req.Payload, &m); err != nil {
			return transport.Envelope{}, err
		}
		resp := multiGetResp{Items: make([]kv, len(m.Keys))}
		for i, k := range m.Keys {
			resp.Items[i] = kv{Key: k, Versions: n.eng.Get(storageKey(m.Ring, k))}
		}
		return transport.Envelope{Kind: "ok", Payload: encode(resp)}, nil

	case kindMultiPut:
		var m multiPutReq
		if err := decode(req.Payload, &m); err != nil {
			return transport.Envelope{}, err
		}
		for _, item := range m.Items {
			if _, err := n.eng.Put(storageKey(m.Ring, item.Key), item.Version); err != nil {
				return transport.Envelope{}, err
			}
		}
		return transport.Envelope{Kind: "ok"}, nil

	case kindLeaves:
		var l leavesReq
		if err := decode(req.Payload, &l); err != nil {
			return transport.Envelope{}, err
		}
		return n.handleLeaves(l)

	case kindFetchPart:
		var f fetchPartReq
		if err := decode(req.Payload, &f); err != nil {
			return transport.Envelope{}, err
		}
		return n.handleFetchPartition(f)

	case kindAdopt:
		var a adoptReq
		if err := decode(req.Payload, &a); err != nil {
			return transport.Envelope{}, err
		}
		return n.handleAdopt(ctx, a)

	case kindAssign:
		var a assignReq
		if err := decode(req.Payload, &a); err != nil {
			return transport.Envelope{}, err
		}
		n.applyAssign(a)
		return transport.Envelope{Kind: "ok"}, nil

	case kindDropPart:
		var d dropPartReq
		if err := decode(req.Payload, &d); err != nil {
			return transport.Envelope{}, err
		}
		n.dropPartitionData(d.Ring, d.Part)
		return transport.Envelope{Kind: "ok"}, nil

	case kindAnnounce:
		var a announceReq
		if err := decode(req.Payload, &a); err != nil {
			return transport.Envelope{}, err
		}
		n.mu.Lock()
		n.rents[a.Node] = a.Rent
		n.mu.Unlock()
		return transport.Envelope{Kind: "ok"}, nil

	case kindRents:
		n.mu.RLock()
		out := make(map[string]float64, len(n.rents))
		for k, v := range n.rents {
			out[k] = v
		}
		n.mu.RUnlock()
		return transport.Envelope{Kind: "ok", Payload: encode(rentsResp{Rents: out})}, nil

	case kindClientGet:
		var g clientGetReq
		if err := decode(req.Payload, &g); err != nil {
			return transport.Envelope{}, err
		}
		cctx, cancel := withTimeout(ctx, g.Timeout)
		defer cancel()
		res, err := n.Get(cctx, g.Ring, g.Key, ReadOptions{Consistency: g.Consistency})
		if err != nil {
			return transport.Envelope{}, err
		}
		return transport.Envelope{Kind: "ok", Payload: encode(clientGetResp{
			Values:  res.Values,
			Context: res.Context,
		})}, nil

	case kindClientPut, kindClientDel:
		var p clientPutReq
		if err := decode(req.Payload, &p); err != nil {
			return transport.Envelope{}, err
		}
		cctx, cancel := withTimeout(ctx, p.Timeout)
		defer cancel()
		opts := WriteOptions{Consistency: p.Consistency}
		var err error
		if req.Kind == kindClientDel || p.Delete {
			err = n.Delete(cctx, p.Ring, p.Key, p.Context, opts)
		} else {
			err = n.Put(cctx, p.Ring, p.Key, p.Value, p.Context, opts)
		}
		if err != nil {
			return transport.Envelope{}, err
		}
		return transport.Envelope{Kind: "ok"}, nil

	case kindClientMGet:
		var g clientMGetReq
		if err := decode(req.Payload, &g); err != nil {
			return transport.Envelope{}, err
		}
		cctx, cancel := withTimeout(ctx, g.Timeout)
		defer cancel()
		res, err := n.MultiGet(cctx, g.Ring, g.Keys, ReadOptions{Consistency: g.Consistency})
		if err != nil {
			return transport.Envelope{}, err
		}
		resp := clientMGetResp{Items: make([]clientKV, 0, len(res))}
		for k, r := range res {
			resp.Items = append(resp.Items, clientKV{Key: k, Values: r.Values, Context: r.Context})
		}
		return transport.Envelope{Kind: "ok", Payload: encode(resp)}, nil

	case kindClientMPut:
		var p clientMPutReq
		if err := decode(req.Payload, &p); err != nil {
			return transport.Envelope{}, err
		}
		cctx, cancel := withTimeout(ctx, p.Timeout)
		defer cancel()
		if err := n.MultiPut(cctx, p.Ring, p.Entries, WriteOptions{Consistency: p.Consistency}); err != nil {
			return transport.Envelope{}, err
		}
		return transport.Envelope{Kind: "ok"}, nil

	default:
		return transport.Envelope{}, fmt.Errorf("cluster: unknown message kind %q", req.Kind)
	}
}

// partition returns the ring and partition for a ring id + partition id.
func (n *Node) partition(id ring.RingID, part int) (*ring.Ring, *ring.Partition, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	r := n.rings.Ring(id)
	if r == nil {
		return nil, nil, fmt.Errorf("cluster: unknown ring %s", id)
	}
	p := r.Get(part)
	if p == nil {
		return nil, nil, fmt.Errorf("cluster: ring %s has no partition %d", id, part)
	}
	return r, p, nil
}

// replicasOf snapshots the replica names of a partition.
func (n *Node) replicasOf(p *ring.Partition) []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]string, len(p.Replicas))
	for i, id := range p.Replicas {
		out[i] = n.nodeName(id)
	}
	return out
}

// applyAssign applies a replica-set change broadcast.
func (n *Node) applyAssign(a assignReq) {
	n.mu.Lock()
	defer n.mu.Unlock()
	r := n.rings.Ring(a.Ring)
	if r == nil {
		return
	}
	p := r.Get(a.Part)
	if p == nil {
		return
	}
	if a.Add != "" {
		if id, ok := n.nodeID(a.Add); ok {
			p.AddReplica(id)
		}
	}
	if a.Remove != "" {
		if id, ok := n.nodeID(a.Remove); ok {
			p.RemoveReplica(id)
		}
	}
}

// broadcastAssign tells every alive peer (and self) about a replica-set
// change.
func (n *Node) broadcastAssign(a assignReq) {
	n.applyAssign(a)
	env := transport.Envelope{Kind: kindAssign, Payload: encode(a)}
	for _, p := range n.cfg.Nodes {
		if p.Name == n.self.Name || !n.alive(p.Name) {
			continue
		}
		_, _ = n.tr.Call(context.Background(), p.Addr, env) // best effort; anti-entropy heals stragglers
	}
}

// keysOfPartition lists local storage keys belonging to the partition.
func (n *Node) keysOfPartition(id ring.RingID, part int) []string {
	_, p, err := n.partition(id, part)
	if err != nil {
		return nil
	}
	prefix := id.App + "/" + id.Class + "/"
	var out []string
	for _, sk := range n.eng.Keys() {
		if len(sk) <= len(prefix) || sk[:len(prefix)] != prefix {
			continue
		}
		user := sk[len(prefix):]
		if p.Contains(ring.HashKey(user)) {
			out = append(out, sk)
		}
	}
	return out
}

// dropPartitionData removes the local data of a partition.
func (n *Node) dropPartitionData(id ring.RingID, part int) {
	for _, sk := range n.keysOfPartition(id, part) {
		_, _ = n.eng.Drop(sk)
	}
}
