package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"skute/internal/economy"
	"skute/internal/membership"
	"skute/internal/merkle"
	"skute/internal/parallel"
	"skute/internal/placement"
	"skute/internal/resilience"
	"skute/internal/ring"
	"skute/internal/store"
	"skute/internal/telemetry"
	"skute/internal/transport"
)

// Message kinds on the wire.
const (
	kindGet       = "get"
	kindPut       = "put"
	kindHeartbeat = "heartbeat"
	kindLeaves    = "merkle-leaves"
	kindAdopt     = "adopt"
	kindAnnounce  = "rent-announce"
	kindRents     = "rent-list"
	// Membership kinds: join-via-any-seed, the digest-driven member
	// pull, and the active push of fresh member records (suspicions,
	// deaths, joins) — see membership.go.
	kindJoin        = "member-join"
	kindMemberPull  = "member-pull"
	kindMemberDelta = "member-delta"
	// Chunked partition transfer: a joining or adopting replica pulls a
	// partition in bounded, resumable chunks instead of one giant
	// envelope — see transfer.go.
	kindFetchChunk = "fetch-chunk"
	// Control-plane placement kinds: a push of freshly proposed
	// versioned deltas, and the digest-driven pull that heals any node
	// the push missed (see internal/placement).
	kindDelta     = "placement-delta"
	kindDeltaPull = "placement-pull"
	// Multi-key replica kinds: one envelope carries a whole partition
	// key group, amortizing the per-call overhead of fan-out-heavy
	// batches (see Node.MultiGet/MultiPut).
	kindMultiGet = "multi-get"
	kindMultiPut = "multi-put"
	// Client-facing kinds: the receiving node coordinates the quorum
	// operation on the caller's behalf (cmd/skutectl uses these). The
	// requests carry the caller's consistency level and timeout budget so
	// the coordinator honors the caller's choice, not its own defaults.
	kindClientGet     = "client-get"
	kindClientPut     = "client-put"
	kindClientDel     = "client-del"
	kindClientMGet    = "client-mget"
	kindClientMPut    = "client-mput"
	kindClientMembers = "client-members"
)

// Wire payloads (gob encoded inside transport.Envelope.Payload via the
// pooled codec sessions in codec.go).
type (
	getReq struct {
		Ring ring.RingID
		Key  string
	}
	getResp struct {
		Versions []store.Version
	}
	putReq struct {
		Ring    ring.RingID
		Key     string
		Version store.Version
	}
	putResp struct {
		Accepted bool
	}
	heartbeatReq struct {
		From string
		// Digest piggybacks the sender's per-ring placement
		// fingerprints on every heartbeat; a receiver whose own digest
		// disagrees pulls the sender's deltas (gossip anti-entropy for
		// the control plane).
		Digest placement.Digest
		// Member is the sender's own membership record, so a receiver
		// that has never heard of the sender (a fresh joiner beating
		// before its join record gossiped this far) learns its metadata
		// from the beat itself.
		Member membership.Delta
		// MDigest fingerprints the sender's member table; a mismatch
		// triggers a member pull, mirroring the placement digest.
		MDigest uint64
	}
	heartbeatResp struct {
		// Member echoes the receiver's own record of the SENDER when the
		// two disagree (worse state, or a higher incarnation). This is
		// how an accusation reaches the accused: a node that restarted
		// after being declared dead gossips to nobody's benefit — peers
		// drop its stale records and never beat back (terminal members
		// attract no heartbeats) — so the echo is its only way to learn
		// of the standing death record and refute it.
		Member membership.Delta
	}
	leavesReq struct {
		Ring ring.RingID
		Part int
		// Root is the requester's incremental-tree root for the
		// partition; a responder whose own root matches answers
		// Same=true with no leaves at all — the O(1) fast path of
		// steady-state anti-entropy.
		Root []byte
	}
	leavesResp struct {
		Same   bool
		Keys   []string
		Hashes [][]byte
	}
	kv struct {
		Key      string
		Versions []store.Version
	}
	adoptReq struct {
		Ring     ring.RingID
		Part     int
		FromAddr string
	}
	// Chunked partition transfer (see transfer.go): the adopter pulls
	// key-ordered chunks after a cursor; the donor throttles by bytes.
	fetchChunkReq struct {
		Ring     ring.RingID
		Part     int
		After    string // resume cursor: last storage key already applied
		MaxItems int
	}
	fetchChunkResp struct {
		Items []kv
		Next  string // cursor to pass as After on the next chunk
		Done  bool
	}
	// Membership wire payloads (see membership.go).
	joinReq struct {
		Info membership.Info
	}
	joinResp struct {
		// Assigned is the incarnation the seed stamped the joiner with —
		// strictly above any prior record of the same name, so a rejoin
		// supersedes the old death everywhere.
		Assigned  uint64
		Members   []membership.Delta
		Rings     []RingSpec
		Placement []placement.Delta
		// Cluster-wide parameters the joiner adopts.
		ReadQuorum   int
		WriteQuorum  int
		SuspectAfter time.Duration
		DeadAfter    time.Duration
	}
	memberPullReq struct {
		Digest uint64
	}
	memberPullResp struct {
		Deltas []membership.Delta
	}
	memberDeltaReq struct {
		Deltas []membership.Delta
	}
	clientMembersResp struct {
		Members []MemberRecord
	}
	announceReq struct {
		Node string
		Rent float64
	}
	rentsResp struct {
		Rents map[string]float64
	}
	deltaReq struct {
		Deltas []placement.Delta
	}
	deltaPullReq struct {
		// Digest is the puller's own per-ring fingerprints; the serving
		// node answers with its entries for every mismatched ring.
		Digest placement.Digest
	}
	deltaPullResp struct {
		Deltas []placement.Delta
	}
	putItem struct {
		Key     string
		Version store.Version
	}
	multiGetReq struct {
		Ring ring.RingID
		Keys []string
	}
	multiGetResp struct {
		Items []kv
	}
	multiPutReq struct {
		Ring  ring.RingID
		Items []putItem
	}
	clientGetReq struct {
		Ring        ring.RingID
		Key         string
		Consistency Consistency
		Timeout     time.Duration
	}
	clientGetResp struct {
		Values  [][]byte
		Context map[string]uint64
	}
	clientPutReq struct {
		Ring        ring.RingID
		Key         string
		Value       []byte
		Delete      bool
		Context     map[string]uint64
		Consistency Consistency
		Timeout     time.Duration
	}
	clientMGetReq struct {
		Ring        ring.RingID
		Keys        []string
		Consistency Consistency
		Timeout     time.Duration
	}
	clientKV struct {
		Key     string
		Values  [][]byte
		Context map[string]uint64
	}
	clientMGetResp struct {
		Items []clientKV
	}
	clientMPutReq struct {
		Ring        ring.RingID
		Entries     []Entry
		Consistency Consistency
		Timeout     time.Duration
	}
)

// MemberRecord is one member-table row as reported to clients
// (skutectl members): the gossiped record plus the serving node's local
// probation/confirmation view.
type MemberRecord struct {
	Name        string
	Addr        string
	State       string // alive | probation | suspect | left | dead
	Incarnation uint64
	Confirmed   bool
	// AgeMillis is how long ago the serving node last heard evidence of
	// the member (0 when never heard from).
	AgeMillis int64
}

// Node is one prototype server.
type Node struct {
	cfg   Config
	self  NodeInfo
	selfI int
	tr    transport.Transport
	eng   *store.Engine
	// mt is the SWIM-style member table — the single authority on peer
	// liveness and metadata (see internal/membership). It subsumes the
	// old heartbeat detector and the static cfg.Nodes peer view: quorum
	// fan-out, board election and epoch candidates all read from it.
	mt           *membership.Table
	suspectAfter time.Duration
	deadAfter    time.Duration
	// Now is the clock source; overridable in tests.
	Now func() time.Time
	// epochWorkers bounds the economic-epoch worker pool (see
	// Config.EpochWorkers).
	epochWorkers int

	// nmu guards the node-local name↔ServerID registry. ServerIDs are
	// purely local handles — the wire carries names only — handed out
	// monotonically as members are first heard of, so a node joining
	// mid-flight needs no global ID coordination. Lock order: mu may be
	// held when taking nmu, never the reverse.
	nmu   sync.RWMutex
	names []string // index == ServerID
	ids   map[string]ring.ServerID

	// tmu guards the per-partition incremental Merkle trees the store
	// write hook maintains (see initTrees); anti-entropy compares their
	// always-current roots instead of rescanning the engine each round.
	tmu   sync.RWMutex
	trees map[placement.Key]*merkle.Incremental

	// throttle bounds outbound partition-transfer bandwidth and
	// chunkItems caps items per transfer chunk (see transfer.go); resume
	// holds adopter-side cursors keyed ring#part@donor so an interrupted
	// pull restarts mid-stream instead of from scratch.
	throttle   *rateLimiter
	chunkItems int
	xmu        sync.Mutex
	resume     map[string]string

	// counters are the control-plane observability counters; RegisterMetrics
	// exposes them on a metrics.Registry.
	counters ControlCounters

	// trace is the bounded control-plane decision ring served on the
	// admin endpoint's GET /trace (see trace.go).
	trace *TraceRing

	// tel is the latency registry (GET /metrics); opTel caches the
	// coordinator per-op histograms off the registry lock (telemetry.go).
	tel   *telemetry.Registry
	opTel *opHists

	// gate is the admission gate (nil when Config.DisableAdmission):
	// coordinator client ops and background traffic enter it, and a full
	// node sheds with ErrOverloaded instead of queueing work into its
	// deadline. breakers holds one circuit breaker per peer, fed by
	// remote call outcomes on the read and write paths; the read fan-out
	// orders replicas with open breakers last so a sick peer is probed,
	// not hammered.
	gate     *resilience.Gate
	breakers *resilience.BreakerSet

	// run tracks the autonomous runtime (Start/Stop); see runtime.go.
	run runState

	// dot is the node-local monotonic write counter: every coordinated
	// write stamps its clock's own entry from this counter instead of
	// incrementing whatever the read context carried (see stampClock).
	// Seeded at boot past every own entry in the recovered store.
	dot atomic.Uint64

	// Tiered read path state (see readpath.go): lastContact is the unix
	// nano timestamp of the last evidence a peer could reach this node —
	// the coordinator read lease; rcache is the bounded hot-key cache;
	// hedge tracks accepted read RTTs and derives the backup-request
	// delay; repairTick/repairInflight sample async read repair on
	// lease-served local reads.
	lastContact    atomic.Int64
	rcache         *readCache
	hedge          *hedgeTracker
	repairTick     atomic.Uint64
	repairInflight atomic.Int32

	// mu guards the ring layout, the placement map's materialization into
	// it, ledgers and the board copy. The quorum read/write path only ever
	// read-locks it, so data-plane traffic does not serialize behind
	// control-plane updates.
	mu    sync.RWMutex
	rings *ring.MultiRing
	// pmap is the versioned placement map — the authority on replica
	// sets. The ring partitions' replica slices are a materialized view
	// of it for routing; every accepted delta rewrites them under mu.
	pmap    *placement.Map
	specs   map[ring.RingID]RingSpec
	ledgers map[string]*ledgerState // per hosted vnode, keyed ring/part
	rents   map[string]float64      // board copy (only used on the board node)
	rng     *rand.Rand

	// qmu guards only the per-vnode query counters, which every quorum
	// operation bumps; keeping them off mu removes the last exclusive
	// lock from the hot path.
	qmu     sync.Mutex
	queries map[string]float64 // per hosted vnode epoch query count
}

// ledgerState is a hosted vnode's economic memory.
type ledgerState struct {
	ledger economyLedger
}

// economyLedger aliases the economy ledger to keep the import local.
type economyLedger = economy.Ledger

// NewNode boots a node from the shared descriptor. The engine may be a
// fresh in-memory engine or one recovered from a WAL.
func NewNode(cfg Config, name string, tr transport.Transport, eng *store.Engine) (*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	selfI := -1
	for i, n := range cfg.Nodes {
		if n.Name == name {
			selfI = i
			break
		}
	}
	if selfI < 0 {
		return nil, fmt.Errorf("cluster: node %q not in descriptor", name)
	}
	rings, specs, err := buildLayout(cfg)
	if err != nil {
		return nil, err
	}
	// Seed the versioned placement map from the deterministic bootstrap
	// layout: every node derives the identical version-1 entries, so the
	// cluster starts converged without any exchange.
	pmap := placement.NewMap()
	for _, rid := range rings.IDs() {
		for _, p := range rings.Ring(rid).Partitions() {
			names := make([]string, len(p.Replicas))
			for i, id := range p.Replicas {
				names[i] = cfg.Nodes[int(id)].Name
			}
			pmap.Seed(rid, p.ID, names)
		}
	}
	suspect := cfg.SuspectAfter
	if suspect == 0 {
		suspect = 10 * time.Second
	}
	dead := cfg.DeadAfter
	if dead == 0 {
		dead = 3 * suspect
	}
	n := &Node{
		cfg:          cfg,
		self:         cfg.Nodes[selfI],
		selfI:        selfI,
		tr:           tr,
		eng:          eng,
		mt:           membership.New(memberInfoOf(cfg.Nodes[selfI]), suspect, dead),
		suspectAfter: suspect,
		deadAfter:    dead,
		Now:          time.Now,
		epochWorkers: cfg.EpochWorkers,
		ids:          make(map[string]ring.ServerID, len(cfg.Nodes)),
		trees:        make(map[placement.Key]*merkle.Incremental),
		throttle:     newRateLimiter(cfg.TransferBytesPerSec),
		chunkItems:   cfg.TransferChunkItems,
		resume:       make(map[string]string),
		rings:        rings,
		pmap:         pmap,
		specs:        specs,
		ledgers:      make(map[string]*ledgerState),
		queries:      make(map[string]float64),
		rents:        make(map[string]float64),
		rng:          rand.New(rand.NewSource(int64(selfI) + 1)),
		trace:        NewTraceRing(cfg.Nodes[selfI].Name, cfg.TraceEvents),
		tel:          telemetry.NewRegistry(),
	}
	n.opTel = &opHists{reg: n.tel}
	if n.chunkItems <= 0 {
		n.chunkItems = defaultChunkItems
	}
	n.initResilience(cfg)
	n.rcache = newReadCache(cfg.ReadCacheEntries, cfg.ReadCacheTTL)
	n.hedge = newHedgeTracker(n.tel.Histogram("cluster_read_rtt_ns"))
	// The boot instant counts as contact: a freshly started node serves
	// lease reads until the suspicion window passes without hearing from
	// any peer (matching how descriptor peers get that same grace before
	// aging into suspicion).
	n.lastContact.Store(n.Now().UnixNano())
	// Seed the write dot past every own entry in the recovered store: a
	// restarted coordinator whose counter restarted below its stored
	// clocks could re-issue an own entry it already used, making a fresh
	// write's clock comparable-below an older one (see stampClock).
	seed := uint64(0)
	for _, sk := range eng.Keys() {
		for _, v := range eng.Get(sk) {
			if own := v.Clock.Get(name); own > seed {
				seed = own
			}
		}
	}
	n.dot.Store(seed)
	// The registry mirrors descriptor order, so the ServerIDs baked into
	// the bootstrap layout stay valid; members learned later (joiners)
	// get the next free IDs via registerName.
	for _, p := range cfg.Nodes {
		n.registerName(p.Name)
	}
	// Descriptor peers start in probation — known but unconfirmed — until
	// the first successful heartbeat exchange; a listed peer that never
	// answers ages into suspicion and death without ever having counted
	// as alive. (This replaces the old optimistic bootstrap that presumed
	// every listed peer up.)
	now := n.Now()
	for i, p := range cfg.Nodes {
		if i != selfI {
			n.mt.SeedPeer(memberInfoOf(p), now)
		}
	}
	n.initTrees()
	if err := tr.Serve(listenAddr(n.self), n.handle); err != nil {
		return nil, err
	}
	return n, nil
}

// listenAddr is the address a node binds: the optional Bind override,
// or the advertised Addr.
func listenAddr(n NodeInfo) string {
	if n.Bind != "" {
		return n.Bind
	}
	return n.Addr
}

// Name returns the node's name.
func (n *Node) Name() string { return n.self.Name }

// Engine exposes the local storage engine (read-mostly introspection).
func (n *Node) Engine() *store.Engine { return n.eng }

// Membership exposes the member table (tests and skutectl drive churn
// and inspect member states through it).
func (n *Node) Membership() *membership.Table { return n.mt }

// ConfirmPeers marks every known peer as directly confirmed. In-process
// harnesses (skute.NewCluster, tests) call it right after booting all
// nodes to skip the probation round a real deployment pays; production
// confirmation flows from successful heartbeat exchanges.
func (n *Node) ConfirmPeers() {
	now := n.Now()
	for _, m := range n.mt.Members() {
		n.mt.Confirm(m.Info.Name, now)
	}
	n.touchContact()
}

// registerName returns the node-local ServerID of a name, assigning the
// next free one on first sight.
func (n *Node) registerName(name string) ring.ServerID {
	n.nmu.Lock()
	defer n.nmu.Unlock()
	if id, ok := n.ids[name]; ok {
		return id
	}
	id := ring.ServerID(len(n.names))
	n.names = append(n.names, name)
	n.ids[name] = id
	return id
}

// info returns the cluster metadata of a named member.
func (n *Node) info(name string) (NodeInfo, bool) {
	if mi, ok := n.mt.Info(name); ok {
		return nodeInfoOf(mi), true
	}
	return NodeInfo{}, false
}

// nodeName maps a node-local ServerID back to the member name.
func (n *Node) nodeName(id ring.ServerID) string {
	n.nmu.RLock()
	defer n.nmu.RUnlock()
	if int(id) < len(n.names) {
		return n.names[int(id)]
	}
	return ""
}

// nodeID maps a name to its node-local ServerID, if one was assigned.
func (n *Node) nodeID(name string) (ring.ServerID, bool) {
	n.nmu.RLock()
	defer n.nmu.RUnlock()
	id, ok := n.ids[name]
	return id, ok
}

// alive reports liveness per the member table; a node always trusts
// itself, and probation members (never directly confirmed) count as
// down until their first successful heartbeat exchange.
func (n *Node) alive(name string) bool { return n.mt.Alive(name, n.Now()) }

// aliveNames returns the names of members (including self) currently alive.
func (n *Node) aliveNames() []string { return n.mt.AliveNames(n.Now()) }

// storageKey namespaces a user key by ring.
func storageKey(id ring.RingID, key string) string {
	return id.App + "/" + id.Class + "/" + key
}

// SendHeartbeats announces this node to every non-terminal member
// concurrently — suspects included (the beat doubles as the refutation
// probe) and probation members included (the answered beat is exactly
// what confirms them). Each beat piggybacks the sender's placement
// digest plus its own membership record and member-table digest, so
// membership spreads on the frames the cluster already exchanges. A
// peer that answers is directly confirmed; unreachable peers miss the
// beat and age toward suspicion. The fan-out runs on internal/parallel
// with one worker per peer, so one dead TCP peer burns only its own
// dial timeout, never the whole round.
func (n *Node) SendHeartbeats(ctx context.Context) {
	env := transport.Envelope{Kind: kindHeartbeat, Payload: encode(heartbeatReq{
		From:    n.self.Name,
		Digest:  n.pmap.Digest(),
		Member:  n.mt.SelfDelta(),
		MDigest: n.mt.Digest(),
	})}
	var peers []membership.Info
	for _, p := range n.mt.GossipPeers() {
		if p.Name != n.self.Name {
			peers = append(peers, p)
		}
	}
	parallel.ForEach(len(peers), len(peers), func(i int) {
		resp, err := n.tr.Call(ctx, peers[i].Addr, env)
		if err != nil {
			return
		}
		// The peer answered our beat: direct evidence it is up, which
		// ends probation even before its own beat reaches us — and
		// evidence the cluster can reach US, renewing the read lease.
		n.mt.Confirm(peers[i].Name, n.Now())
		n.touchContact()
		// The answer may echo the peer's record of US (an accusation we
		// have not heard — e.g. this node restarted after being declared
		// dead); applying it triggers the refutation path.
		var hr heartbeatResp
		if len(resp.Payload) > 0 && decode(resp.Payload, &hr) == nil && hr.Member.Info.Name != "" {
			n.applyMemberDeltas(ctx, hr.Member)
		}
		transport.RecyclePayload(resp.Payload) // decode copied it out
	})
	n.counters.HeartbeatRounds.Inc()
}

// kindPriority classifies an incoming request kind for admission.
// Membership traffic (heartbeats, joins, member gossip) is Critical:
// shedding it under load would turn an overload into a false-suspicion
// cascade. Replica-level data ops (kindGet/kindPut/...) are Critical
// too — the coordinator that fanned them out already paid admission at
// the client edge, so shedding them mid-quorum would fail work the
// cluster has committed to. Background covers anti-entropy, partition
// transfer, epoch/economy and placement gossip — everything that
// retries on its own schedule. Client kinds return gated=false: the
// coordinator op they invoke runs the gate itself (so the embedded
// in-process path is covered identically and nothing is gated twice).
// initResilience builds the node's admission gate and per-peer circuit
// breakers from the overload knobs of its config. NewNode and JoinNode
// both run it — a joiner faces the same saturation a descriptor-booted
// node does.
func (n *Node) initResilience(cfg Config) {
	if !cfg.DisableAdmission {
		maxInflight := cfg.MaxInflight
		if maxInflight == 0 {
			maxInflight = defaultMaxInflight
		}
		// The clock indirects through n.Now so tests that override the
		// node clock drive the gate's deadline math too.
		n.gate = resilience.NewGate(maxInflight, func() time.Time { return n.Now() })
		n.gate.RegisterTelemetry(n.tel)
	}
	n.breakers = resilience.NewBreakerSet(resilience.BreakerConfig{
		Failures:  cfg.BreakerFailures,
		OpenFor:   cfg.BreakerOpenFor,
		SlowAfter: cfg.BreakerSlowAfter,
		Now:       func() time.Time { return n.Now() },
		OnTransition: func(peer string, from, to resilience.BreakerState) {
			n.counters.BreakerTransitions.Inc()
			if to == resilience.BreakerOpen {
				n.counters.BreakerOpens.Inc()
			}
			n.trace.Add("breaker", "%s: %s -> %s", peer, from, to)
		},
	})
}

func kindPriority(kind string) (pri resilience.Priority, gated bool) {
	switch kind {
	case kindHeartbeat, kindJoin, kindMemberPull, kindMemberDelta,
		kindGet, kindPut, kindMultiGet, kindMultiPut:
		return resilience.Critical, true
	case kindLeaves, kindFetchChunk, kindAdopt, kindDelta, kindDeltaPull,
		kindAnnounce, kindRents:
		return resilience.Background, true
	default:
		return 0, false
	}
}

// handle dispatches one incoming request. The context comes from the
// transport (the caller's own context for in-memory calls, the
// connection's lifetime for TCP) and flows into any nested quorum
// coordination this request triggers. Gated kinds pass the admission
// gate first: a node past its in-flight bound sheds background work
// with ErrOverloaded instead of queueing it (client kinds are admitted
// inside the coordinator ops, see kindPriority).
func (n *Node) handle(ctx context.Context, req transport.Envelope) (transport.Envelope, error) {
	if pri, gated := kindPriority(req.Kind); gated {
		release, err := n.gate.Enter(ctx, pri)
		if err != nil {
			return transport.Envelope{}, err
		}
		defer release()
	}
	switch req.Kind {
	case kindHeartbeat:
		var hb heartbeatReq
		if err := decode(req.Payload, &hb); err != nil {
			return transport.Envelope{}, err
		}
		// The piggybacked self record first: a fresh joiner's beat may be
		// the first time we hear its name at all, and a refuting member's
		// bumped incarnation must land before liveness is judged.
		n.applyMemberDeltas(ctx, hb.Member)
		n.mt.Confirm(hb.From, n.Now())
		n.touchContact()
		// Digest mismatch: the sender's placement view differs from
		// ours, so pull its deltas right away. Last-writer-wins keeps
		// the merge safe in both directions; if WE hold the newer
		// entries, the sender converges when our own next heartbeat
		// reaches it.
		if dg := n.pmap.Digest(); len(dg.Mismatch(hb.Digest)) > 0 {
			_, _ = n.reconcileWith(ctx, hb.From, dg) // best effort; the next beat retries
		}
		// Same exchange for the member table: a digest mismatch pulls the
		// sender's full member list (anti-entropy for membership).
		if hb.MDigest != n.mt.Digest() {
			_ = n.pullMembers(ctx, hb.From)
		}
		// Echo our record of the sender when it supersedes the beat's
		// self record — the only channel an accusation has back to the
		// accused (see heartbeatResp.Member).
		var hr heartbeatResp
		if m, ok := n.mt.Get(hb.From); ok &&
			(m.State != membership.Alive || m.Incarnation > hb.Member.Incarnation) {
			hr.Member = membership.Delta{Info: m.Info, State: m.State, Incarnation: m.Incarnation}
		}
		return transport.Envelope{Kind: "ok", Payload: encode(hr)}, nil

	case kindJoin:
		var j joinReq
		if err := decode(req.Payload, &j); err != nil {
			return transport.Envelope{}, err
		}
		return n.handleJoin(ctx, j)

	case kindMemberPull:
		var mp memberPullReq
		if err := decode(req.Payload, &mp); err != nil {
			return transport.Envelope{}, err
		}
		var resp memberPullResp
		if mp.Digest != n.mt.Digest() {
			resp.Deltas = n.mt.Deltas()
		}
		return transport.Envelope{Kind: "ok", Payload: encode(resp)}, nil

	case kindMemberDelta:
		var md memberDeltaReq
		if err := decode(req.Payload, &md); err != nil {
			return transport.Envelope{}, err
		}
		n.applyMemberDeltas(ctx, md.Deltas...)
		return transport.Envelope{Kind: "ok"}, nil

	case kindClientMembers:
		now := n.Now()
		members := n.mt.Members()
		resp := clientMembersResp{Members: make([]MemberRecord, 0, len(members))}
		for _, m := range members {
			rec := MemberRecord{
				Name:        m.Info.Name,
				Addr:        m.Info.Addr,
				State:       m.State.String(),
				Incarnation: m.Incarnation,
				Confirmed:   m.Confirmed,
			}
			if m.Probation() {
				rec.State = "probation"
			}
			if !m.LastHeard.IsZero() {
				rec.AgeMillis = now.Sub(m.LastHeard).Milliseconds()
			}
			resp.Members = append(resp.Members, rec)
		}
		return transport.Envelope{Kind: "ok", Payload: encode(resp)}, nil

	case kindGet:
		var g getReq
		if err := decode(req.Payload, &g); err != nil {
			return transport.Envelope{}, err
		}
		vs := n.eng.Get(storageKey(g.Ring, g.Key))
		return transport.Envelope{Kind: "ok", Payload: encode(getResp{Versions: vs})}, nil

	case kindPut:
		var p putReq
		if err := decode(req.Payload, &p); err != nil {
			return transport.Envelope{}, err
		}
		acc, err := n.eng.Put(storageKey(p.Ring, p.Key), p.Version)
		if err != nil {
			return transport.Envelope{}, err
		}
		return transport.Envelope{Kind: "ok", Payload: encode(putResp{Accepted: acc})}, nil

	case kindMultiGet:
		var m multiGetReq
		if err := decode(req.Payload, &m); err != nil {
			return transport.Envelope{}, err
		}
		resp := multiGetResp{Items: make([]kv, len(m.Keys))}
		for i, k := range m.Keys {
			resp.Items[i] = kv{Key: k, Versions: n.eng.Get(storageKey(m.Ring, k))}
		}
		return transport.Envelope{Kind: "ok", Payload: encode(resp)}, nil

	case kindMultiPut:
		var m multiPutReq
		if err := decode(req.Payload, &m); err != nil {
			return transport.Envelope{}, err
		}
		for _, item := range m.Items {
			if _, err := n.eng.Put(storageKey(m.Ring, item.Key), item.Version); err != nil {
				return transport.Envelope{}, err
			}
		}
		return transport.Envelope{Kind: "ok"}, nil

	case kindLeaves:
		var l leavesReq
		if err := decode(req.Payload, &l); err != nil {
			return transport.Envelope{}, err
		}
		return n.handleLeaves(l)

	case kindFetchChunk:
		var f fetchChunkReq
		if err := decode(req.Payload, &f); err != nil {
			return transport.Envelope{}, err
		}
		return n.handleFetchChunk(ctx, f)

	case kindAdopt:
		var a adoptReq
		if err := decode(req.Payload, &a); err != nil {
			return transport.Envelope{}, err
		}
		return n.handleAdopt(ctx, a)

	case kindDelta:
		var dr deltaReq
		if err := decode(req.Payload, &dr); err != nil {
			return transport.Envelope{}, err
		}
		n.applyDeltas(dr.Deltas)
		return transport.Envelope{Kind: "ok"}, nil

	case kindDeltaPull:
		var pq deltaPullReq
		if err := decode(req.Payload, &pq); err != nil {
			return transport.Envelope{}, err
		}
		var resp deltaPullResp
		// Deltas() with no ring filter would export everything; an
		// empty mismatch must answer with nothing instead.
		if mismatched := n.pmap.Digest().Mismatch(pq.Digest); len(mismatched) > 0 {
			resp.Deltas = n.pmap.Deltas(mismatched...)
		}
		return transport.Envelope{Kind: "ok", Payload: encode(resp)}, nil

	case kindAnnounce:
		var a announceReq
		if err := decode(req.Payload, &a); err != nil {
			return transport.Envelope{}, err
		}
		n.mu.Lock()
		n.rents[a.Node] = a.Rent
		n.mu.Unlock()
		return transport.Envelope{Kind: "ok"}, nil

	case kindRents:
		n.mu.RLock()
		out := make(map[string]float64, len(n.rents))
		for k, v := range n.rents {
			out[k] = v
		}
		n.mu.RUnlock()
		return transport.Envelope{Kind: "ok", Payload: encode(rentsResp{Rents: out})}, nil

	case kindClientGet:
		var g clientGetReq
		if err := decode(req.Payload, &g); err != nil {
			return transport.Envelope{}, err
		}
		cctx, cancel := withTimeout(ctx, g.Timeout)
		defer cancel()
		res, err := n.Get(cctx, g.Ring, g.Key, ReadOptions{Consistency: g.Consistency})
		if err != nil {
			return transport.Envelope{}, err
		}
		return transport.Envelope{Kind: "ok", Payload: encode(clientGetResp{
			Values:  res.Values,
			Context: res.Context,
		})}, nil

	case kindClientPut, kindClientDel:
		var p clientPutReq
		if err := decode(req.Payload, &p); err != nil {
			return transport.Envelope{}, err
		}
		cctx, cancel := withTimeout(ctx, p.Timeout)
		defer cancel()
		opts := WriteOptions{Consistency: p.Consistency}
		var err error
		if req.Kind == kindClientDel || p.Delete {
			err = n.Delete(cctx, p.Ring, p.Key, p.Context, opts)
		} else {
			err = n.Put(cctx, p.Ring, p.Key, p.Value, p.Context, opts)
		}
		if err != nil {
			return transport.Envelope{}, err
		}
		return transport.Envelope{Kind: "ok"}, nil

	case kindClientMGet:
		var g clientMGetReq
		if err := decode(req.Payload, &g); err != nil {
			return transport.Envelope{}, err
		}
		cctx, cancel := withTimeout(ctx, g.Timeout)
		defer cancel()
		res, err := n.MultiGet(cctx, g.Ring, g.Keys, ReadOptions{Consistency: g.Consistency})
		if err != nil {
			return transport.Envelope{}, err
		}
		resp := clientMGetResp{Items: make([]clientKV, 0, len(res))}
		for k, r := range res {
			resp.Items = append(resp.Items, clientKV{Key: k, Values: r.Values, Context: r.Context})
		}
		return transport.Envelope{Kind: "ok", Payload: encode(resp)}, nil

	case kindClientMPut:
		var p clientMPutReq
		if err := decode(req.Payload, &p); err != nil {
			return transport.Envelope{}, err
		}
		cctx, cancel := withTimeout(ctx, p.Timeout)
		defer cancel()
		if err := n.MultiPut(cctx, p.Ring, p.Entries, WriteOptions{Consistency: p.Consistency}); err != nil {
			return transport.Envelope{}, err
		}
		return transport.Envelope{Kind: "ok"}, nil

	default:
		return transport.Envelope{}, fmt.Errorf("cluster: unknown message kind %q", req.Kind)
	}
}

// partition returns the ring and partition for a ring id + partition id.
func (n *Node) partition(id ring.RingID, part int) (*ring.Ring, *ring.Partition, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	r := n.rings.Ring(id)
	if r == nil {
		return nil, nil, fmt.Errorf("%w %s", ErrUnknownRing, id)
	}
	p := r.Get(part)
	if p == nil {
		return nil, nil, fmt.Errorf("cluster: ring %s has no partition %d", id, part)
	}
	return r, p, nil
}

// replicasOf snapshots the replica names of a partition.
func (n *Node) replicasOf(p *ring.Partition) []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]string, len(p.Replicas))
	for i, id := range p.Replicas {
		out[i] = n.nodeName(id)
	}
	return out
}

// materializeLocked rewrites the routing ring's replica view from an
// accepted placement entry. Callers hold n.mu. It reports whether this
// node just lost its own replica of the partition (the caller must then
// drop the partition's data, outside the lock).
func (n *Node) materializeLocked(d placement.Delta) (lostSelf bool) {
	r := n.rings.Ring(d.Ring)
	if r == nil {
		return false
	}
	p := r.Get(d.Part)
	if p == nil {
		return false
	}
	self := ring.ServerID(n.selfI)
	had := p.HasReplica(self)
	ids := make([]ring.ServerID, 0, len(d.Replicas))
	for _, name := range d.Replicas {
		// Replica names may precede their member records here (a
		// placement delta racing the membership gossip); registering on
		// sight keeps the routing view complete either way.
		ids = append(ids, n.registerName(name))
	}
	p.SetReplicas(ids)
	if had && !p.HasReplica(self) {
		delete(n.ledgers, vnodeKey(d.Ring, d.Part))
		return true
	}
	return false
}

// applyDeltas merges versioned placement deltas received from peers:
// last-writer-wins in the placement map, accepted entries materialized
// into the routing view, stale ones counted and rejected. A delta that
// evicts this node's own replica also drops the partition's local data
// — the isolated-during-a-migration node cleans itself up when it
// catches back up. It returns the number of deltas applied.
func (n *Node) applyDeltas(ds []placement.Delta) int {
	applied := 0
	var drops []placement.Delta
	n.mu.Lock()
	for _, d := range ds {
		switch n.pmap.Apply(d) {
		case placement.Applied:
			applied++
			n.counters.DeltasApplied.Inc()
			n.trace.Add("placement", "apply %s", d)
			if n.materializeLocked(d) {
				drops = append(drops, d)
				n.trace.Add("placement", "evicted self from %s#%d, dropping data", d.Ring, d.Part)
			}
		case placement.Stale:
			n.counters.DeltasStale.Inc()
		case placement.Duplicate:
			// Idempotent redelivery (a gossip pull usually re-sends a
			// whole ring); neither applied nor stale.
		}
	}
	n.mu.Unlock()
	if len(drops) > 0 {
		// Drain before dropping: the evicted copy may hold the only
		// replicas of writes this node acknowledged while its placement
		// view was stale — a freshly revived node coordinates with its
		// pre-death map and counts its own doomed copy toward the write
		// quorum until the catch-up lands. Deleting without a final
		// Merkle push to the surviving replicas would lose those
		// acknowledged writes globally.
		ctx, cancel := context.WithTimeout(context.Background(), evictDrainTimeout)
		defer cancel()
		for _, d := range drops {
			n.handoffSync(ctx, d.Ring, d.Part)
			n.dropPartitionData(d.Ring, d.Part)
		}
	}
	return applied
}

// evictDrainTimeout bounds the pre-drop Merkle drain of a self-evicting
// node across all partitions it just lost: long enough to push a few
// partitions of divergent keys, short enough that a rejoin catching up
// against unreachable peers cannot wedge the delta handler.
const evictDrainTimeout = 10 * time.Second

// propose stamps a replica-set change decided locally (adopt target,
// drop self, …) into the placement map — version bumped, this node as
// origin — and materializes it. The returned delta must be handed to
// disseminate; ok is false when the partition is unknown or the change
// is a no-op.
func (n *Node) propose(id ring.RingID, part int, add, remove string) (placement.Delta, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	e, ok := n.pmap.Get(id, part)
	if !ok {
		return placement.Delta{}, false
	}
	replicas := make([]string, 0, len(e.Replicas)+1)
	for _, name := range e.Replicas {
		if name != remove {
			replicas = append(replicas, name)
		}
	}
	changed := len(replicas) != len(e.Replicas)
	if add != "" {
		present := false
		for _, name := range replicas {
			if name == add {
				present = true
				break
			}
		}
		if !present {
			replicas = append(replicas, add)
			changed = true
		}
	}
	if !changed {
		return placement.Delta{}, false
	}
	// Never stamp an empty replica set: a suicide racing another
	// removal (the lone-replica check reads the materialized view
	// before this re-read of the authoritative entry) must become a
	// no-op here, or the partition would converge to zero replicas —
	// unreachable and unrepairable, since only hosting vnodes decide.
	if len(replicas) == 0 {
		return placement.Delta{}, false
	}
	d := n.pmap.Propose(id, part, n.self.Name, replicas)
	n.materializeLocked(d)
	n.trace.Add("propose", "%s (add=%q remove=%q)", d, add, remove)
	return d, true
}

// dropIfEvicted deletes the partition's local data only if, after a
// dissemination round, the merged placement entry still excludes this
// node. A migrating or suiciding replica calls this AFTER disseminate:
// if a concurrent proposal from another node won the last-writer-wins
// merge and kept this node in the set (two replicas suiciding at once
// being the fatal case — both removal deltas cross during the pushes
// and exactly one loses), the data is preserved on the node the
// converged set still lists, so no partition ends up with every listed
// replica empty. A push that never reached the concurrent proposer
// leaves a gossip-latency window, the price of an eventually
// consistent control plane; anti-entropy and read repair refill a
// transiently empty re-added copy.
func (n *Node) dropIfEvicted(id ring.RingID, part int) {
	if e, ok := n.pmap.Get(id, part); ok {
		for _, r := range e.Replicas {
			if r == n.self.Name {
				return
			}
		}
	}
	n.dropPartitionData(id, part)
}

// disseminate pushes freshly proposed deltas to every alive peer
// concurrently, best effort: a peer that misses the push converges
// through the digest exchange riding the next heartbeats. Unlike the
// old unversioned assign broadcast, a late or reordered arrival cannot
// resurrect a superseded replica set — the version stamps reject it.
func (n *Node) disseminate(ctx context.Context, ds ...placement.Delta) {
	if len(ds) == 0 {
		return
	}
	env := transport.Envelope{Kind: kindDelta, Payload: encode(deltaReq{Deltas: ds})}
	var addrs []string
	for _, p := range n.mt.GossipPeers() {
		if n.alive(p.Name) {
			addrs = append(addrs, p.Addr)
		}
	}
	parallel.ForEach(len(addrs), len(addrs), func(i int) {
		_, _ = n.tr.Call(ctx, addrs[i], env)
	})
}

// reconcileWith pulls the named peer's placement entries for every ring
// whose fingerprint differs from digest (this node's own, computed by
// the caller) and merges them — one round of control-plane
// anti-entropy. It returns the number of deltas applied.
func (n *Node) reconcileWith(ctx context.Context, peer string, digest placement.Digest) (int, error) {
	info, ok := n.info(peer)
	if !ok {
		return 0, fmt.Errorf("cluster: unknown peer %q", peer)
	}
	resp, err := n.tr.Call(ctx, info.Addr, transport.Envelope{
		Kind:    kindDeltaPull,
		Payload: encode(deltaPullReq{Digest: digest}),
	})
	if err != nil {
		return 0, err
	}
	var pr deltaPullResp
	if err := decode(resp.Payload, &pr); err != nil {
		return 0, err
	}
	n.counters.ReconcileRounds.Inc()
	return n.applyDeltas(pr.Deltas), nil
}

// PlacementEntry exposes the versioned placement entry of a partition —
// observability for tests and debugging.
func (n *Node) PlacementEntry(id ring.RingID, part int) (placement.Entry, bool) {
	return n.pmap.Get(id, part)
}

// keysOfPartition lists local storage keys belonging to the partition.
func (n *Node) keysOfPartition(id ring.RingID, part int) []string {
	_, p, err := n.partition(id, part)
	if err != nil {
		return nil
	}
	prefix := id.App + "/" + id.Class + "/"
	var out []string
	for _, sk := range n.eng.Keys() {
		if len(sk) <= len(prefix) || sk[:len(prefix)] != prefix {
			continue
		}
		user := sk[len(prefix):]
		if p.Contains(ring.HashKey(user)) {
			out = append(out, sk)
		}
	}
	return out
}

// dropPartitionData removes the local data of a partition.
func (n *Node) dropPartitionData(id ring.RingID, part int) {
	for _, sk := range n.keysOfPartition(id, part) {
		_, _ = n.eng.Drop(sk)
	}
}
