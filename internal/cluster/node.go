package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"skute/internal/economy"
	"skute/internal/gossip"
	"skute/internal/parallel"
	"skute/internal/placement"
	"skute/internal/ring"
	"skute/internal/store"
	"skute/internal/topology"
	"skute/internal/transport"
)

// Message kinds on the wire.
const (
	kindGet       = "get"
	kindPut       = "put"
	kindHeartbeat = "heartbeat"
	kindLeaves    = "merkle-leaves"
	kindFetchPart = "fetch-partition"
	kindAdopt     = "adopt"
	kindAnnounce  = "rent-announce"
	kindRents     = "rent-list"
	// Control-plane placement kinds: a push of freshly proposed
	// versioned deltas, and the digest-driven pull that heals any node
	// the push missed (see internal/placement).
	kindDelta     = "placement-delta"
	kindDeltaPull = "placement-pull"
	// Multi-key replica kinds: one envelope carries a whole partition
	// key group, amortizing the per-call overhead of fan-out-heavy
	// batches (see Node.MultiGet/MultiPut).
	kindMultiGet = "multi-get"
	kindMultiPut = "multi-put"
	// Client-facing kinds: the receiving node coordinates the quorum
	// operation on the caller's behalf (cmd/skutectl uses these). The
	// requests carry the caller's consistency level and timeout budget so
	// the coordinator honors the caller's choice, not its own defaults.
	kindClientGet  = "client-get"
	kindClientPut  = "client-put"
	kindClientDel  = "client-del"
	kindClientMGet = "client-mget"
	kindClientMPut = "client-mput"
)

// Wire payloads (gob encoded inside transport.Envelope.Payload via the
// pooled codec sessions in codec.go).
type (
	getReq struct {
		Ring ring.RingID
		Key  string
	}
	getResp struct {
		Versions []store.Version
	}
	putReq struct {
		Ring    ring.RingID
		Key     string
		Version store.Version
	}
	putResp struct {
		Accepted bool
	}
	heartbeatReq struct {
		From string
		// Digest piggybacks the sender's per-ring placement
		// fingerprints on every heartbeat; a receiver whose own digest
		// disagrees pulls the sender's deltas (gossip anti-entropy for
		// the control plane).
		Digest placement.Digest
	}
	leavesReq struct {
		Ring ring.RingID
		Part int
	}
	leavesResp struct {
		Keys   []string
		Hashes [][]byte
	}
	fetchPartReq struct {
		Ring ring.RingID
		Part int
	}
	kv struct {
		Key      string
		Versions []store.Version
	}
	fetchPartResp struct {
		Items []kv
	}
	adoptReq struct {
		Ring     ring.RingID
		Part     int
		FromAddr string
	}
	announceReq struct {
		Node string
		Rent float64
	}
	rentsResp struct {
		Rents map[string]float64
	}
	deltaReq struct {
		Deltas []placement.Delta
	}
	deltaPullReq struct {
		// Digest is the puller's own per-ring fingerprints; the serving
		// node answers with its entries for every mismatched ring.
		Digest placement.Digest
	}
	deltaPullResp struct {
		Deltas []placement.Delta
	}
	putItem struct {
		Key     string
		Version store.Version
	}
	multiGetReq struct {
		Ring ring.RingID
		Keys []string
	}
	multiGetResp struct {
		Items []kv
	}
	multiPutReq struct {
		Ring  ring.RingID
		Items []putItem
	}
	clientGetReq struct {
		Ring        ring.RingID
		Key         string
		Consistency Consistency
		Timeout     time.Duration
	}
	clientGetResp struct {
		Values  [][]byte
		Context map[string]uint64
	}
	clientPutReq struct {
		Ring        ring.RingID
		Key         string
		Value       []byte
		Delete      bool
		Context     map[string]uint64
		Consistency Consistency
		Timeout     time.Duration
	}
	clientMGetReq struct {
		Ring        ring.RingID
		Keys        []string
		Consistency Consistency
		Timeout     time.Duration
	}
	clientKV struct {
		Key     string
		Values  [][]byte
		Context map[string]uint64
	}
	clientMGetResp struct {
		Items []clientKV
	}
	clientMPutReq struct {
		Ring        ring.RingID
		Entries     []Entry
		Consistency Consistency
		Timeout     time.Duration
	}
)

// Node is one prototype server.
type Node struct {
	cfg   Config
	self  NodeInfo
	selfI int
	tr    transport.Transport
	eng   *store.Engine
	det   *gossip.Detector
	// Now is the clock source; overridable in tests.
	Now func() time.Time
	// epochWorkers bounds the economic-epoch worker pool (see
	// Config.EpochWorkers).
	epochWorkers int

	// counters are the control-plane observability counters; RegisterMetrics
	// exposes them on a metrics.Registry.
	counters ControlCounters

	// run tracks the autonomous runtime (Start/Stop); see runtime.go.
	run runState

	// mu guards the ring layout, the placement map's materialization into
	// it, ledgers and the board copy. The quorum read/write path only ever
	// read-locks it, so data-plane traffic does not serialize behind
	// control-plane updates.
	mu    sync.RWMutex
	rings *ring.MultiRing
	// pmap is the versioned placement map — the authority on replica
	// sets. The ring partitions' replica slices are a materialized view
	// of it for routing; every accepted delta rewrites them under mu.
	pmap    *placement.Map
	specs   map[ring.RingID]RingSpec
	ledgers map[string]*ledgerState // per hosted vnode, keyed ring/part
	rents   map[string]float64      // board copy (only used on the board node)
	rng     *rand.Rand

	// qmu guards only the per-vnode query counters, which every quorum
	// operation bumps; keeping them off mu removes the last exclusive
	// lock from the hot path.
	qmu     sync.Mutex
	queries map[string]float64 // per hosted vnode epoch query count
}

// ledgerState is a hosted vnode's economic memory.
type ledgerState struct {
	ledger economyLedger
}

// economyLedger aliases the economy ledger to keep the import local.
type economyLedger = economy.Ledger

// NewNode boots a node from the shared descriptor. The engine may be a
// fresh in-memory engine or one recovered from a WAL.
func NewNode(cfg Config, name string, tr transport.Transport, eng *store.Engine) (*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	selfI := -1
	for i, n := range cfg.Nodes {
		if n.Name == name {
			selfI = i
			break
		}
	}
	if selfI < 0 {
		return nil, fmt.Errorf("cluster: node %q not in descriptor", name)
	}
	rings, specs, err := buildLayout(cfg)
	if err != nil {
		return nil, err
	}
	// Seed the versioned placement map from the deterministic bootstrap
	// layout: every node derives the identical version-1 entries, so the
	// cluster starts converged without any exchange.
	pmap := placement.NewMap()
	for _, rid := range rings.IDs() {
		for _, p := range rings.Ring(rid).Partitions() {
			names := make([]string, len(p.Replicas))
			for i, id := range p.Replicas {
				names[i] = cfg.Nodes[int(id)].Name
			}
			pmap.Seed(rid, p.ID, names)
		}
	}
	suspect := cfg.SuspectAfter
	if suspect == 0 {
		suspect = 10 * time.Second
	}
	n := &Node{
		cfg:          cfg,
		self:         cfg.Nodes[selfI],
		selfI:        selfI,
		tr:           tr,
		eng:          eng,
		det:          gossip.NewDetector(suspect),
		Now:          time.Now,
		epochWorkers: cfg.EpochWorkers,
		rings:        rings,
		pmap:         pmap,
		specs:        specs,
		ledgers:      make(map[string]*ledgerState),
		queries:      make(map[string]float64),
		rents:        make(map[string]float64),
		rng:          rand.New(rand.NewSource(int64(selfI) + 1)),
	}
	// Optimistic bootstrap: all peers start alive; real liveness takes
	// over as heartbeats (or their absence) arrive.
	now := n.Now()
	for _, p := range cfg.Nodes {
		n.det.Heartbeat(p.Name, now)
	}
	if err := tr.Serve(n.self.Addr, n.handle); err != nil {
		return nil, err
	}
	return n, nil
}

// Name returns the node's name.
func (n *Node) Name() string { return n.self.Name }

// Engine exposes the local storage engine (read-mostly introspection).
func (n *Node) Engine() *store.Engine { return n.eng }

// Detector exposes the failure detector (tests drive time through it).
func (n *Node) Detector() *gossip.Detector { return n.det }

// info returns the NodeInfo of a named peer.
func (n *Node) info(name string) (NodeInfo, bool) {
	for _, p := range n.cfg.Nodes {
		if p.Name == name {
			return p, true
		}
	}
	return NodeInfo{}, false
}

// nodeName maps a ring.ServerID (descriptor index) to the node name.
func (n *Node) nodeName(id ring.ServerID) string { return n.cfg.Nodes[int(id)].Name }

// nodeID maps a name back to its descriptor index.
func (n *Node) nodeID(name string) (ring.ServerID, bool) {
	for i, p := range n.cfg.Nodes {
		if p.Name == name {
			return ring.ServerID(i), true
		}
	}
	return 0, false
}

// loc returns the location of a descriptor index.
func (n *Node) loc(id ring.ServerID) topology.Location {
	l, err := n.cfg.Nodes[int(id)].Loc()
	if err != nil {
		panic(err) // validated at construction
	}
	return l
}

// alive reports liveness; a node always trusts itself.
func (n *Node) alive(name string) bool {
	return name == n.self.Name || n.det.Alive(name, n.Now())
}

// aliveNames returns the names of peers (including self) currently alive.
func (n *Node) aliveNames() []string {
	var out []string
	for _, p := range n.cfg.Nodes {
		if n.alive(p.Name) {
			out = append(out, p.Name)
		}
	}
	return out
}

// storageKey namespaces a user key by ring.
func storageKey(id ring.RingID, key string) string {
	return id.App + "/" + id.Class + "/" + key
}

// SendHeartbeats announces this node to every peer concurrently, each
// beat piggybacking the sender's placement digest; unreachable peers
// simply miss the beat and fade in their detectors. The fan-out runs on
// internal/parallel with one worker per peer, so one dead TCP peer
// burns only its own dial timeout, never the whole round — the caller's
// context is the per-round deadline.
func (n *Node) SendHeartbeats(ctx context.Context) {
	env := transport.Envelope{Kind: kindHeartbeat, Payload: encode(heartbeatReq{
		From:   n.self.Name,
		Digest: n.pmap.Digest(),
	})}
	var peers []NodeInfo
	for _, p := range n.cfg.Nodes {
		if p.Name != n.self.Name {
			peers = append(peers, p)
		}
	}
	parallel.ForEach(len(peers), len(peers), func(i int) {
		_, _ = n.tr.Call(ctx, peers[i].Addr, env) // best effort
	})
	n.counters.HeartbeatRounds.Inc()
}

// handle dispatches one incoming request. The context comes from the
// transport (the caller's own context for in-memory calls, the
// connection's lifetime for TCP) and flows into any nested quorum
// coordination this request triggers.
func (n *Node) handle(ctx context.Context, req transport.Envelope) (transport.Envelope, error) {
	switch req.Kind {
	case kindHeartbeat:
		var hb heartbeatReq
		if err := decode(req.Payload, &hb); err != nil {
			return transport.Envelope{}, err
		}
		n.det.Heartbeat(hb.From, n.Now())
		// Digest mismatch: the sender's placement view differs from
		// ours, so pull its deltas right away. Last-writer-wins keeps
		// the merge safe in both directions; if WE hold the newer
		// entries, the sender converges when our own next heartbeat
		// reaches it.
		if dg := n.pmap.Digest(); len(dg.Mismatch(hb.Digest)) > 0 {
			_, _ = n.reconcileWith(ctx, hb.From, dg) // best effort; the next beat retries
		}
		return transport.Envelope{Kind: "ok"}, nil

	case kindGet:
		var g getReq
		if err := decode(req.Payload, &g); err != nil {
			return transport.Envelope{}, err
		}
		vs := n.eng.Get(storageKey(g.Ring, g.Key))
		return transport.Envelope{Kind: "ok", Payload: encode(getResp{Versions: vs})}, nil

	case kindPut:
		var p putReq
		if err := decode(req.Payload, &p); err != nil {
			return transport.Envelope{}, err
		}
		acc, err := n.eng.Put(storageKey(p.Ring, p.Key), p.Version)
		if err != nil {
			return transport.Envelope{}, err
		}
		return transport.Envelope{Kind: "ok", Payload: encode(putResp{Accepted: acc})}, nil

	case kindMultiGet:
		var m multiGetReq
		if err := decode(req.Payload, &m); err != nil {
			return transport.Envelope{}, err
		}
		resp := multiGetResp{Items: make([]kv, len(m.Keys))}
		for i, k := range m.Keys {
			resp.Items[i] = kv{Key: k, Versions: n.eng.Get(storageKey(m.Ring, k))}
		}
		return transport.Envelope{Kind: "ok", Payload: encode(resp)}, nil

	case kindMultiPut:
		var m multiPutReq
		if err := decode(req.Payload, &m); err != nil {
			return transport.Envelope{}, err
		}
		for _, item := range m.Items {
			if _, err := n.eng.Put(storageKey(m.Ring, item.Key), item.Version); err != nil {
				return transport.Envelope{}, err
			}
		}
		return transport.Envelope{Kind: "ok"}, nil

	case kindLeaves:
		var l leavesReq
		if err := decode(req.Payload, &l); err != nil {
			return transport.Envelope{}, err
		}
		return n.handleLeaves(l)

	case kindFetchPart:
		var f fetchPartReq
		if err := decode(req.Payload, &f); err != nil {
			return transport.Envelope{}, err
		}
		return n.handleFetchPartition(f)

	case kindAdopt:
		var a adoptReq
		if err := decode(req.Payload, &a); err != nil {
			return transport.Envelope{}, err
		}
		return n.handleAdopt(ctx, a)

	case kindDelta:
		var dr deltaReq
		if err := decode(req.Payload, &dr); err != nil {
			return transport.Envelope{}, err
		}
		n.applyDeltas(dr.Deltas)
		return transport.Envelope{Kind: "ok"}, nil

	case kindDeltaPull:
		var pq deltaPullReq
		if err := decode(req.Payload, &pq); err != nil {
			return transport.Envelope{}, err
		}
		var resp deltaPullResp
		// Deltas() with no ring filter would export everything; an
		// empty mismatch must answer with nothing instead.
		if mismatched := n.pmap.Digest().Mismatch(pq.Digest); len(mismatched) > 0 {
			resp.Deltas = n.pmap.Deltas(mismatched...)
		}
		return transport.Envelope{Kind: "ok", Payload: encode(resp)}, nil

	case kindAnnounce:
		var a announceReq
		if err := decode(req.Payload, &a); err != nil {
			return transport.Envelope{}, err
		}
		n.mu.Lock()
		n.rents[a.Node] = a.Rent
		n.mu.Unlock()
		return transport.Envelope{Kind: "ok"}, nil

	case kindRents:
		n.mu.RLock()
		out := make(map[string]float64, len(n.rents))
		for k, v := range n.rents {
			out[k] = v
		}
		n.mu.RUnlock()
		return transport.Envelope{Kind: "ok", Payload: encode(rentsResp{Rents: out})}, nil

	case kindClientGet:
		var g clientGetReq
		if err := decode(req.Payload, &g); err != nil {
			return transport.Envelope{}, err
		}
		cctx, cancel := withTimeout(ctx, g.Timeout)
		defer cancel()
		res, err := n.Get(cctx, g.Ring, g.Key, ReadOptions{Consistency: g.Consistency})
		if err != nil {
			return transport.Envelope{}, err
		}
		return transport.Envelope{Kind: "ok", Payload: encode(clientGetResp{
			Values:  res.Values,
			Context: res.Context,
		})}, nil

	case kindClientPut, kindClientDel:
		var p clientPutReq
		if err := decode(req.Payload, &p); err != nil {
			return transport.Envelope{}, err
		}
		cctx, cancel := withTimeout(ctx, p.Timeout)
		defer cancel()
		opts := WriteOptions{Consistency: p.Consistency}
		var err error
		if req.Kind == kindClientDel || p.Delete {
			err = n.Delete(cctx, p.Ring, p.Key, p.Context, opts)
		} else {
			err = n.Put(cctx, p.Ring, p.Key, p.Value, p.Context, opts)
		}
		if err != nil {
			return transport.Envelope{}, err
		}
		return transport.Envelope{Kind: "ok"}, nil

	case kindClientMGet:
		var g clientMGetReq
		if err := decode(req.Payload, &g); err != nil {
			return transport.Envelope{}, err
		}
		cctx, cancel := withTimeout(ctx, g.Timeout)
		defer cancel()
		res, err := n.MultiGet(cctx, g.Ring, g.Keys, ReadOptions{Consistency: g.Consistency})
		if err != nil {
			return transport.Envelope{}, err
		}
		resp := clientMGetResp{Items: make([]clientKV, 0, len(res))}
		for k, r := range res {
			resp.Items = append(resp.Items, clientKV{Key: k, Values: r.Values, Context: r.Context})
		}
		return transport.Envelope{Kind: "ok", Payload: encode(resp)}, nil

	case kindClientMPut:
		var p clientMPutReq
		if err := decode(req.Payload, &p); err != nil {
			return transport.Envelope{}, err
		}
		cctx, cancel := withTimeout(ctx, p.Timeout)
		defer cancel()
		if err := n.MultiPut(cctx, p.Ring, p.Entries, WriteOptions{Consistency: p.Consistency}); err != nil {
			return transport.Envelope{}, err
		}
		return transport.Envelope{Kind: "ok"}, nil

	default:
		return transport.Envelope{}, fmt.Errorf("cluster: unknown message kind %q", req.Kind)
	}
}

// partition returns the ring and partition for a ring id + partition id.
func (n *Node) partition(id ring.RingID, part int) (*ring.Ring, *ring.Partition, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	r := n.rings.Ring(id)
	if r == nil {
		return nil, nil, fmt.Errorf("%w %s", ErrUnknownRing, id)
	}
	p := r.Get(part)
	if p == nil {
		return nil, nil, fmt.Errorf("cluster: ring %s has no partition %d", id, part)
	}
	return r, p, nil
}

// replicasOf snapshots the replica names of a partition.
func (n *Node) replicasOf(p *ring.Partition) []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]string, len(p.Replicas))
	for i, id := range p.Replicas {
		out[i] = n.nodeName(id)
	}
	return out
}

// materializeLocked rewrites the routing ring's replica view from an
// accepted placement entry. Callers hold n.mu. It reports whether this
// node just lost its own replica of the partition (the caller must then
// drop the partition's data, outside the lock).
func (n *Node) materializeLocked(d placement.Delta) (lostSelf bool) {
	r := n.rings.Ring(d.Ring)
	if r == nil {
		return false
	}
	p := r.Get(d.Part)
	if p == nil {
		return false
	}
	self := ring.ServerID(n.selfI)
	had := p.HasReplica(self)
	ids := make([]ring.ServerID, 0, len(d.Replicas))
	for _, name := range d.Replicas {
		if id, ok := n.nodeID(name); ok {
			ids = append(ids, id)
		}
	}
	p.SetReplicas(ids)
	if had && !p.HasReplica(self) {
		delete(n.ledgers, vnodeKey(d.Ring, d.Part))
		return true
	}
	return false
}

// applyDeltas merges versioned placement deltas received from peers:
// last-writer-wins in the placement map, accepted entries materialized
// into the routing view, stale ones counted and rejected. A delta that
// evicts this node's own replica also drops the partition's local data
// — the isolated-during-a-migration node cleans itself up when it
// catches back up. It returns the number of deltas applied.
func (n *Node) applyDeltas(ds []placement.Delta) int {
	applied := 0
	var drops []placement.Delta
	n.mu.Lock()
	for _, d := range ds {
		switch n.pmap.Apply(d) {
		case placement.Applied:
			applied++
			n.counters.DeltasApplied.Inc()
			if n.materializeLocked(d) {
				drops = append(drops, d)
			}
		case placement.Stale:
			n.counters.DeltasStale.Inc()
		case placement.Duplicate:
			// Idempotent redelivery (a gossip pull usually re-sends a
			// whole ring); neither applied nor stale.
		}
	}
	n.mu.Unlock()
	for _, d := range drops {
		n.dropPartitionData(d.Ring, d.Part)
	}
	return applied
}

// propose stamps a replica-set change decided locally (adopt target,
// drop self, …) into the placement map — version bumped, this node as
// origin — and materializes it. The returned delta must be handed to
// disseminate; ok is false when the partition is unknown or the change
// is a no-op.
func (n *Node) propose(id ring.RingID, part int, add, remove string) (placement.Delta, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	e, ok := n.pmap.Get(id, part)
	if !ok {
		return placement.Delta{}, false
	}
	replicas := make([]string, 0, len(e.Replicas)+1)
	for _, name := range e.Replicas {
		if name != remove {
			replicas = append(replicas, name)
		}
	}
	changed := len(replicas) != len(e.Replicas)
	if add != "" {
		present := false
		for _, name := range replicas {
			if name == add {
				present = true
				break
			}
		}
		if !present {
			replicas = append(replicas, add)
			changed = true
		}
	}
	if !changed {
		return placement.Delta{}, false
	}
	// Never stamp an empty replica set: a suicide racing another
	// removal (the lone-replica check reads the materialized view
	// before this re-read of the authoritative entry) must become a
	// no-op here, or the partition would converge to zero replicas —
	// unreachable and unrepairable, since only hosting vnodes decide.
	if len(replicas) == 0 {
		return placement.Delta{}, false
	}
	d := n.pmap.Propose(id, part, n.self.Name, replicas)
	n.materializeLocked(d)
	return d, true
}

// dropIfEvicted deletes the partition's local data only if, after a
// dissemination round, the merged placement entry still excludes this
// node. A migrating or suiciding replica calls this AFTER disseminate:
// if a concurrent proposal from another node won the last-writer-wins
// merge and kept this node in the set (two replicas suiciding at once
// being the fatal case — both removal deltas cross during the pushes
// and exactly one loses), the data is preserved on the node the
// converged set still lists, so no partition ends up with every listed
// replica empty. A push that never reached the concurrent proposer
// leaves a gossip-latency window, the price of an eventually
// consistent control plane; anti-entropy and read repair refill a
// transiently empty re-added copy.
func (n *Node) dropIfEvicted(id ring.RingID, part int) {
	if e, ok := n.pmap.Get(id, part); ok {
		for _, r := range e.Replicas {
			if r == n.self.Name {
				return
			}
		}
	}
	n.dropPartitionData(id, part)
}

// disseminate pushes freshly proposed deltas to every alive peer
// concurrently, best effort: a peer that misses the push converges
// through the digest exchange riding the next heartbeats. Unlike the
// old unversioned assign broadcast, a late or reordered arrival cannot
// resurrect a superseded replica set — the version stamps reject it.
func (n *Node) disseminate(ctx context.Context, ds ...placement.Delta) {
	if len(ds) == 0 {
		return
	}
	env := transport.Envelope{Kind: kindDelta, Payload: encode(deltaReq{Deltas: ds})}
	var addrs []string
	for _, p := range n.cfg.Nodes {
		if p.Name != n.self.Name && n.alive(p.Name) {
			addrs = append(addrs, p.Addr)
		}
	}
	parallel.ForEach(len(addrs), len(addrs), func(i int) {
		_, _ = n.tr.Call(ctx, addrs[i], env)
	})
}

// reconcileWith pulls the named peer's placement entries for every ring
// whose fingerprint differs from digest (this node's own, computed by
// the caller) and merges them — one round of control-plane
// anti-entropy. It returns the number of deltas applied.
func (n *Node) reconcileWith(ctx context.Context, peer string, digest placement.Digest) (int, error) {
	info, ok := n.info(peer)
	if !ok {
		return 0, fmt.Errorf("cluster: unknown peer %q", peer)
	}
	resp, err := n.tr.Call(ctx, info.Addr, transport.Envelope{
		Kind:    kindDeltaPull,
		Payload: encode(deltaPullReq{Digest: digest}),
	})
	if err != nil {
		return 0, err
	}
	var pr deltaPullResp
	if err := decode(resp.Payload, &pr); err != nil {
		return 0, err
	}
	n.counters.ReconcileRounds.Inc()
	return n.applyDeltas(pr.Deltas), nil
}

// PlacementEntry exposes the versioned placement entry of a partition —
// observability for tests and debugging.
func (n *Node) PlacementEntry(id ring.RingID, part int) (placement.Entry, bool) {
	return n.pmap.Get(id, part)
}

// keysOfPartition lists local storage keys belonging to the partition.
func (n *Node) keysOfPartition(id ring.RingID, part int) []string {
	_, p, err := n.partition(id, part)
	if err != nil {
		return nil
	}
	prefix := id.App + "/" + id.Class + "/"
	var out []string
	for _, sk := range n.eng.Keys() {
		if len(sk) <= len(prefix) || sk[:len(prefix)] != prefix {
			continue
		}
		user := sk[len(prefix):]
		if p.Contains(ring.HashKey(user)) {
			out = append(out, sk)
		}
	}
	return out
}

// dropPartitionData removes the local data of a partition.
func (n *Node) dropPartitionData(id ring.RingID, part int) {
	for _, sk := range n.keysOfPartition(id, part) {
		_, _ = n.eng.Drop(sk)
	}
}
