package cluster

// Tests for the tiered read path (readpath.go): lease invalidation by
// placement deltas and by contact staleness, the coordinator cache's
// coherence under racing fills and write-throughs, and the
// at-most-once contract of the hedged backup request.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"skute/internal/placement"
	"skute/internal/ring"
	"skute/internal/store"
	"skute/internal/transport"
	"skute/internal/vclock"
)

// selfKey finds a key of the ring whose replica set includes the node —
// the complement of remoteKey, for exercising the lease-served local
// tier.
func selfKey(t *testing.T, n *Node, id ring.RingID) string {
	t.Helper()
	for i := 0; i < 4096; i++ {
		key := fmt.Sprintf("self-probe-%d", i)
		reps, err := n.Replicas(id, key)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range reps {
			if r == n.Name() {
				return key
			}
		}
	}
	t.Fatal("no key found hosted by the node")
	return ""
}

// TestLeaseInvalidationOnPlacementDelta: a One-level read is served from
// the local store only while the materialized ring lists this node as a
// replica. A placement delta that evicts the node must divert the very
// next read to the fan-out (the local copy was dropped — serving it
// would be a zombie read), and the fan-out's result then seeds the
// coordinator cache.
func TestLeaseInvalidationOnPlacementDelta(t *testing.T) {
	_, nodes := testCluster(t)
	n0 := nodes[0]
	key := selfKey(t, n0, goldRing)
	if err := n0.Put(ctx, goldRing, key, []byte("v"), nil, WriteOptions{Consistency: ConsistencyAll}); err != nil {
		t.Fatal(err)
	}

	if _, err := n0.Get(ctx, goldRing, key, ReadOptions{Consistency: ConsistencyOne}); err != nil {
		t.Fatal(err)
	}
	if got := n0.counters.ReadsLocal.Value(); got != 1 {
		t.Fatalf("lease-served reads = %d, want 1", got)
	}

	// Evict n0 from the key's partition via a versioned placement delta.
	n0.mu.RLock()
	part := n0.rings.Ring(goldRing).Lookup(ring.HashKey(key)).ID
	n0.mu.RUnlock()
	seed := entryOf(t, n0, goldRing, part)
	var rest []string
	for _, r := range seed.Replicas {
		if r != n0.Name() {
			rest = append(rest, r)
		}
	}
	if len(rest) == len(seed.Replicas) {
		t.Fatal("selfKey returned a key n0 does not host")
	}
	evict := placement.Delta{Ring: goldRing, Part: part, Replicas: rest, Version: seed.Version + 1, Origin: rest[0]}
	if got := n0.applyDeltas([]placement.Delta{evict}); got != 1 {
		t.Fatalf("evicting delta applied %d entries", got)
	}

	// The next One-read must NOT serve locally: it misses the cache, pays
	// the fan-out to the surviving replicas, and still returns the value.
	res, err := n0.Get(ctx, goldRing, key, ReadOptions{Consistency: ConsistencyOne})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 1 || string(res.Values[0]) != "v" {
		t.Fatalf("post-eviction One read = %q, want v", res.Values)
	}
	if got := n0.counters.ReadsLocal.Value(); got != 1 {
		t.Errorf("evicted node served %d local reads, want the count pinned at 1", got)
	}
	if got := n0.counters.ReadsCacheMiss.Value(); got != 1 {
		t.Errorf("cache misses = %d, want 1", got)
	}

	// The fan-out refilled the cache: a repeat One-read is a cache hit.
	res, err = n0.Get(ctx, goldRing, key, ReadOptions{Consistency: ConsistencyOne})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 1 || string(res.Values[0]) != "v" {
		t.Fatalf("cache-served One read = %q, want v", res.Values)
	}
	if got := n0.counters.ReadsCacheHit.Value(); got != 1 {
		t.Errorf("cache hits = %d, want 1", got)
	}
}

// TestLeaseStaleContactFallsBack: a coordinator that has heard from no
// peer within the suspicion window may hold an arbitrarily stale
// placement view, so its One-reads must pay the fan-out until contact
// resumes — and go back to the local tier the moment it does.
func TestLeaseStaleContactFallsBack(t *testing.T) {
	mesh := transport.NewMemory()
	cfg := testConfig()
	cfg.SuspectAfter = time.Second
	var nodes []*Node
	for _, ni := range cfg.Nodes {
		n, err := NewNode(cfg, ni.Name, mesh, store.NewMemory())
		if err != nil {
			t.Fatalf("NewNode(%s): %v", ni.Name, err)
		}
		nodes = append(nodes, n)
	}
	base := time.Now()
	var offset atomic.Int64
	now := func() time.Time { return base.Add(time.Duration(offset.Load())) }
	for _, n := range nodes {
		n.Now = now
		n.ConfirmPeers()
	}
	t.Cleanup(func() { mesh.Close() })

	n0 := nodes[0]
	key := selfKey(t, n0, goldRing)
	if err := n0.Put(ctx, goldRing, key, []byte("v"), nil, WriteOptions{Consistency: ConsistencyAll}); err != nil {
		t.Fatal(err)
	}
	if _, err := n0.Get(ctx, goldRing, key, ReadOptions{Consistency: ConsistencyOne}); err != nil {
		t.Fatal(err)
	}
	if got := n0.counters.ReadsLocal.Value(); got != 1 {
		t.Fatalf("lease-served reads = %d, want 1", got)
	}

	// Silence past the suspicion window: the lease is stale. The read
	// still succeeds — n0 hosts a replica, so the fan-out's local leg
	// answers — but it must travel the fan-out, not the lease tier.
	offset.Store(int64(2 * time.Second))
	res, err := n0.Get(ctx, goldRing, key, ReadOptions{Consistency: ConsistencyOne})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 1 || string(res.Values[0]) != "v" {
		t.Fatalf("stale-lease One read = %q, want v", res.Values)
	}
	if got := n0.counters.ReadsLeaseStale.Value(); got != 1 {
		t.Errorf("stale-lease fallbacks = %d, want 1", got)
	}
	if got := n0.counters.ReadsLocal.Value(); got != 1 {
		t.Errorf("local reads = %d, want the count pinned at 1 while the lease is stale", got)
	}

	// Fresh contact renews the lease; the local tier serves again.
	n0.ConfirmPeers()
	if _, err := n0.Get(ctx, goldRing, key, ReadOptions{Consistency: ConsistencyOne}); err != nil {
		t.Fatal(err)
	}
	if got := n0.counters.ReadsLocal.Value(); got != 2 {
		t.Errorf("local reads after contact renewal = %d, want 2", got)
	}
}

// TestReadCacheNoDominatedResurrection pins the cache's coherence rules:
// whichever order a read fill and a concurrent write-through land in,
// the dominated version never survives — fills MERGE into existing
// entries and writes UPSERT even when absent, so neither can clobber
// the other with stale data.
func TestReadCacheNoDominatedResurrection(t *testing.T) {
	id := ring.RingID{App: "a", Class: "c"}
	k := cacheKey{ring: id, part: 3, key: "hot"}
	old := store.Version{Value: []byte("old"), Clock: vclock.New().Tick("w")}
	newer := store.Version{Value: []byte("new"), Clock: vclock.Merge(old.Clock, nil).Tick("w")}
	t0 := time.Now()

	// Write-through first, slow fill second: the fill carries pre-write
	// data and must merge, not replace.
	c := newReadCache(64, time.Minute)
	c.upsert(k, newer, 7, "n1", t0)
	c.fill(k, []store.Version{old}, 7, "n1", t0)
	vs, ok := c.get(k, 7, "n1", t0)
	if !ok || len(vs) != 1 || string(vs[0].Value) != "new" {
		t.Fatalf("write-then-fill: cache = %+v, want only the dominating version", vs)
	}

	// Fill first, write-through second: the write must dominate the
	// cached read snapshot.
	c = newReadCache(64, time.Minute)
	c.fill(k, []store.Version{old}, 7, "n1", t0)
	c.upsert(k, newer, 7, "n1", t0)
	vs, ok = c.get(k, 7, "n1", t0)
	if !ok || len(vs) != 1 || string(vs[0].Value) != "new" {
		t.Fatalf("fill-then-write: cache = %+v, want only the dominating version", vs)
	}

	// A placement stamp mismatch invalidates on sight.
	if _, ok := c.get(k, 8, "n1", t0); ok {
		t.Error("entry served under a stale placement stamp")
	}

	// The TTL bounds staleness when placement never changes.
	c = newReadCache(64, 10*time.Millisecond)
	c.fill(k, []store.Version{newer}, 7, "n1", t0)
	if _, ok := c.get(k, 7, "n1", t0.Add(11*time.Millisecond)); ok {
		t.Error("entry served past its TTL")
	}

	// Empty sibling sets are not cached (no negative caching).
	c.fill(k, nil, 7, "n1", t0)
	if got := c.len(); got != 0 {
		t.Errorf("negative entry cached: len = %d", got)
	}
}

// blockingCountTransport counts calls by kind and parks every
// kindMultiGet until the caller's context fires — replicas that accept
// a read and never answer, for pinning the hedge counter.
type blockingCountTransport struct {
	transport.Transport
	mu    sync.Mutex
	calls map[string]int
}

func (b *blockingCountTransport) Call(ctx context.Context, addr string, req transport.Envelope) (transport.Envelope, error) {
	b.mu.Lock()
	if b.calls == nil {
		b.calls = make(map[string]int)
	}
	b.calls[req.Kind]++
	b.mu.Unlock()
	if req.Kind == kindMultiGet {
		<-ctx.Done()
		return transport.Envelope{}, ctx.Err()
	}
	return b.Transport.Call(ctx, addr, req)
}

func (b *blockingCountTransport) count(kind string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.calls[kind]
}

// TestHedgeFiresExactlyOnceUnderCancellation: with every replica hung, a
// quorum read fires its backup request exactly once — never again while
// the caller waits, and not at all when the caller cancels before the
// hedge delay elapses.
func TestHedgeFiresExactlyOnceUnderCancellation(t *testing.T) {
	var bt *blockingCountTransport
	nodes := instrumentedCluster(t, func(tr transport.Transport) transport.Transport {
		bt = &blockingCountTransport{Transport: tr}
		return bt
	})
	n0 := nodes[0]
	key := remoteKey(t, n0, platRing, 3)

	// Hedge quickly: every replica hangs, so the backup must fire.
	n0.hedge.delayNS.Store(int64(5 * time.Millisecond))
	cctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := n0.Get(cctx, platRing, key, ReadOptions{Consistency: ConsistencyQuorum})
		done <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for n0.counters.ReadsHedged.Value() < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := n0.counters.ReadsHedged.Value(); got != 1 {
		t.Fatalf("hedged reads = %d, want 1", got)
	}
	// The hedge armed once and disarmed: give it room to misfire, then
	// cancel and confirm the count and the envelope total never moved.
	time.Sleep(30 * time.Millisecond)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("hung quorum read err = %v, want context.Canceled", err)
	}
	if got := n0.counters.ReadsHedged.Value(); got != 1 {
		t.Errorf("hedged reads after cancellation = %d, want still 1", got)
	}
	// R=2 initial contacts + exactly one hedge.
	if got := bt.count(kindMultiGet); got != 3 {
		t.Errorf("read envelopes = %d, want 3 (quorum pair + one hedge)", got)
	}

	// Cancellation BEFORE the hedge delay: the backup never launches.
	n0.hedge.delayNS.Store(int64(time.Minute))
	cctx2, cancel2 := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel2()
	}()
	if _, err := n0.Get(cctx2, platRing, key, ReadOptions{Consistency: ConsistencyQuorum}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := n0.counters.ReadsHedged.Value(); got != 1 {
		t.Errorf("hedged reads = %d, want still 1 after pre-hedge cancellation", got)
	}
	if got := bt.count(kindMultiGet); got != 5 {
		t.Errorf("read envelopes = %d, want 5 (no hedge on the cancelled read)", got)
	}
}
