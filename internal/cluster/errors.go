package cluster

import (
	"errors"

	"skute/internal/transport"
)

// Typed sentinel errors. They are registered as transport error codes,
// so a coordinator returning one over TCP reaches the remote caller as
// the same sentinel under errors.Is — not as stringified text (the old
// wireResponse.Err string collapsed every typed error).
var (
	// ErrUnknownRing reports a request against a ring the cluster
	// descriptor does not declare — the store's not-found error for a
	// whole keyspace.
	ErrUnknownRing = errors.New("cluster: unknown ring")
)

func init() {
	transport.RegisterErrorCode(transport.CodeAppBase, ErrUnknownRing)
}
