package cluster

import (
	"errors"

	"skute/internal/resilience"
	"skute/internal/transport"
)

// Typed sentinel errors. They are registered as transport error codes,
// so a coordinator returning one over TCP reaches the remote caller as
// the same sentinel under errors.Is — not as stringified text (the old
// wireResponse.Err string collapsed every typed error).
var (
	// ErrUnknownRing reports a request against a ring the cluster
	// descriptor does not declare — the store's not-found error for a
	// whole keyspace.
	ErrUnknownRing = errors.New("cluster: unknown ring")

	// ErrOverloaded is resilience.ErrOverloaded re-exported at the
	// cluster surface: the node's admission gate refused the request
	// before any work started. It is retryable — against a DIFFERENT
	// coordinator or replica, never the same node immediately — and it
	// crosses the TCP wire as its own code so clients can tell a shed
	// from a timeout.
	ErrOverloaded = resilience.ErrOverloaded
)

func init() {
	transport.RegisterErrorCode(transport.CodeAppBase, ErrUnknownRing)
	transport.RegisterErrorCode(transport.CodeAppBase+1, ErrOverloaded)
}
