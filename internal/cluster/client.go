package cluster

import (
	"skute/internal/ring"
	"skute/internal/transport"
	"skute/internal/vclock"
)

// Client talks to one cluster node over a transport and has the node
// coordinate quorum operations on its behalf. It is what cmd/skutectl
// uses against a live cmd/skuted deployment.
type Client struct {
	tr   transport.Transport
	addr string
}

// NewClient returns a client bound to the node at addr.
func NewClient(tr transport.Transport, addr string) *Client {
	return &Client{tr: tr, addr: addr}
}

// Get reads a key through the node: sibling values plus causal context.
func (c *Client) Get(id ring.RingID, key string) ([][]byte, vclock.VC, error) {
	resp, err := c.tr.Call(c.addr, transport.Envelope{
		Kind:    kindClientGet,
		Payload: encode(clientGetReq{Ring: id, Key: key}),
	})
	if err != nil {
		return nil, nil, err
	}
	var r clientGetResp
	if err := decode(resp.Payload, &r); err != nil {
		return nil, nil, err
	}
	return r.Values, r.Context, nil
}

// Put writes a value through the node.
func (c *Client) Put(id ring.RingID, key string, value []byte, ctx vclock.VC) error {
	_, err := c.tr.Call(c.addr, transport.Envelope{
		Kind:    kindClientPut,
		Payload: encode(clientPutReq{Ring: id, Key: key, Value: value, Context: ctx}),
	})
	return err
}

// Delete tombstones a key through the node.
func (c *Client) Delete(id ring.RingID, key string, ctx vclock.VC) error {
	_, err := c.tr.Call(c.addr, transport.Envelope{
		Kind:    kindClientDel,
		Payload: encode(clientPutReq{Ring: id, Key: key, Delete: true, Context: ctx}),
	})
	return err
}
