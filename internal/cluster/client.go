package cluster

import (
	"context"

	"skute/internal/ring"
	"skute/internal/transport"
	"skute/internal/vclock"
)

// Client talks to one cluster node over a transport and has the node
// coordinate quorum operations on its behalf. It is what cmd/skutectl
// uses against a live cmd/skuted deployment.
//
// Every call takes a context and per-request options. The consistency
// level and timeout travel in the wire envelope, so the coordinating
// node honors the caller's choices instead of its own configured
// defaults; the timeout (and any context deadline) also bounds the
// client's own network exchange.
type Client struct {
	tr   transport.Transport
	addr string
}

// NewClient returns a client bound to the node at addr.
func NewClient(tr transport.Transport, addr string) *Client {
	return &Client{tr: tr, addr: addr}
}

// Get reads a key through the node: sibling values plus causal context.
func (c *Client) Get(ctx context.Context, id ring.RingID, key string, opts ReadOptions) ([][]byte, vclock.VC, error) {
	cctx, cancel := withTimeout(ctx, opts.Timeout)
	defer cancel()
	resp, err := c.tr.Call(cctx, c.addr, transport.Envelope{
		Kind:    kindClientGet,
		Payload: encode(clientGetReq{Ring: id, Key: key, Consistency: opts.Consistency, Timeout: opts.Timeout}),
	})
	if err != nil {
		return nil, nil, err
	}
	var r clientGetResp
	derr := decode(resp.Payload, &r)
	transport.RecyclePayload(resp.Payload) // decode copied it out
	if derr != nil {
		return nil, nil, derr
	}
	return r.Values, r.Context, nil
}

// Put writes a value through the node.
func (c *Client) Put(ctx context.Context, id ring.RingID, key string, value []byte, vctx vclock.VC, opts WriteOptions) error {
	cctx, cancel := withTimeout(ctx, opts.Timeout)
	defer cancel()
	resp, err := c.tr.Call(cctx, c.addr, transport.Envelope{
		Kind: kindClientPut,
		Payload: encode(clientPutReq{
			Ring: id, Key: key, Value: value, Context: vctx,
			Consistency: opts.Consistency, Timeout: opts.Timeout,
		}),
	})
	transport.RecyclePayload(resp.Payload) // ack payload is never inspected
	return err
}

// Delete tombstones a key through the node.
func (c *Client) Delete(ctx context.Context, id ring.RingID, key string, vctx vclock.VC, opts WriteOptions) error {
	cctx, cancel := withTimeout(ctx, opts.Timeout)
	defer cancel()
	resp, err := c.tr.Call(cctx, c.addr, transport.Envelope{
		Kind: kindClientDel,
		Payload: encode(clientPutReq{
			Ring: id, Key: key, Delete: true, Context: vctx,
			Consistency: opts.Consistency, Timeout: opts.Timeout,
		}),
	})
	transport.RecyclePayload(resp.Payload) // ack payload is never inspected
	return err
}

// MGet reads a batch of keys in one exchange; the node groups them by
// partition and fans out one envelope per replica per partition. Missing
// keys map to an empty GetResult.
func (c *Client) MGet(ctx context.Context, id ring.RingID, keys []string, opts ReadOptions) (map[string]GetResult, error) {
	cctx, cancel := withTimeout(ctx, opts.Timeout)
	defer cancel()
	resp, err := c.tr.Call(cctx, c.addr, transport.Envelope{
		Kind:    kindClientMGet,
		Payload: encode(clientMGetReq{Ring: id, Keys: keys, Consistency: opts.Consistency, Timeout: opts.Timeout}),
	})
	if err != nil {
		return nil, err
	}
	var r clientMGetResp
	derr := decode(resp.Payload, &r)
	transport.RecyclePayload(resp.Payload) // decode copied it out
	if derr != nil {
		return nil, derr
	}
	out := make(map[string]GetResult, len(r.Items))
	for _, item := range r.Items {
		out[item.Key] = GetResult{Values: item.Values, Context: item.Context}
	}
	return out, nil
}

// MPut writes a batch of entries in one exchange; the node groups them
// by partition and fans out one envelope per replica per partition.
func (c *Client) MPut(ctx context.Context, id ring.RingID, entries []Entry, opts WriteOptions) error {
	cctx, cancel := withTimeout(ctx, opts.Timeout)
	defer cancel()
	resp, err := c.tr.Call(cctx, c.addr, transport.Envelope{
		Kind:    kindClientMPut,
		Payload: encode(clientMPutReq{Ring: id, Entries: entries, Consistency: opts.Consistency, Timeout: opts.Timeout}),
	})
	transport.RecyclePayload(resp.Payload) // ack payload is never inspected
	return err
}

// Members dumps the node's member table: every member's gossiped state
// and incarnation plus the node's local probation/confirmation view
// (skutectl members).
func (c *Client) Members(ctx context.Context) ([]MemberRecord, error) {
	resp, err := c.tr.Call(ctx, c.addr, transport.Envelope{Kind: kindClientMembers})
	if err != nil {
		return nil, err
	}
	var r clientMembersResp
	if err := decode(resp.Payload, &r); err != nil {
		return nil, err
	}
	return r.Members, nil
}
