package cluster

import (
	"context"
	"sync"
	"testing"

	"skute/internal/store"
	"skute/internal/transport"
	"skute/internal/vclock"
)

// TestStampClockNeverDominated checks the core dotted-version-vector
// invariant: a clock stamped by a coordinator is never dominated by a
// clock that same coordinator stamped earlier, no matter how stale the
// read context is.
func TestStampClockNeverDominated(t *testing.T) {
	n := &Node{self: NodeInfo{Name: "n1"}}

	c1 := n.stampClock(nil)
	if got := c1.Get("n1"); got != 1 {
		t.Fatalf("first stamp own entry = %d, want 1", got)
	}
	c2 := n.stampClock(c1)
	if c2.Compare(c1) != vclock.After {
		t.Fatalf("fresh-context stamp must descend: %v vs %v", c2, c1)
	}

	// A completely stale context (the read missed both prior writes)
	// must still not be dominated by c2.
	c3 := n.stampClock(vclock.New())
	if ord := c3.Compare(c2); ord == vclock.Before || ord == vclock.Equal {
		t.Fatalf("stale-context stamp dominated: %v vs %v (ord %v)", c3, c2, ord)
	}

	// A context carrying only foreign entries yields a sibling, not a
	// dominated clock.
	c4 := n.stampClock(vclock.VC{"n2": 5})
	if ord := c4.Compare(c2); ord == vclock.Before || ord == vclock.Equal {
		t.Fatalf("foreign-context stamp dominated: %v vs %v (ord %v)", c4, c2, ord)
	}

	// A context whose own entry is ahead of the counter (counter lost
	// state) pushes the counter past it.
	c5 := n.stampClock(vclock.VC{"n1": 100})
	if got := c5.Get("n1"); got != 101 {
		t.Fatalf("catch-up stamp own entry = %d, want 101", got)
	}
	if got := n.stampClock(nil).Get("n1"); got != 102 {
		t.Fatalf("post-catch-up stamp own entry = %d, want 102", got)
	}
}

// TestStampClockConcurrent checks that concurrent stamps never repeat
// an own entry.
func TestStampClockConcurrent(t *testing.T) {
	n := &Node{self: NodeInfo{Name: "n1"}}
	const workers, per = 8, 200
	var mu sync.Mutex
	seen := make(map[uint64]bool, workers*per)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				own := n.stampClock(nil).Get("n1")
				mu.Lock()
				if seen[own] {
					mu.Unlock()
					t.Errorf("own entry %d issued twice", own)
					return
				}
				seen[own] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(seen) != workers*per {
		t.Fatalf("issued %d distinct entries, want %d", len(seen), workers*per)
	}
}

// TestDotSeededFromStore checks that a restarted node resumes its write
// counter past the highest own entry in its recovered store, so it
// cannot re-issue an entry it used before the crash.
func TestDotSeededFromStore(t *testing.T) {
	eng := store.NewMemory()
	if _, err := eng.Put("appA/gold/k", store.Version{
		Value: []byte("v"),
		Clock: vclock.VC{"n0": 7, "n3": 2},
	}); err != nil {
		t.Fatal(err)
	}
	n, err := NewNode(testConfig(), "n0", transport.NewMemory(), eng)
	if err != nil {
		t.Fatal(err)
	}
	if got := n.stampClock(nil).Get("n0"); got != 8 {
		t.Fatalf("seeded stamp own entry = %d, want 8", got)
	}
}

// TestStaleContextWriteSurvives is the end-to-end regression for the
// acknowledged-write-loss bug: a read-modify-write whose read context is
// stale (it missed the coordinator's latest write) must still produce a
// version that survives somewhere — as the winner or as a sibling —
// never a silently-discarded dominated clock that every replica rejects
// while the coordinator collects a full quorum of acks.
func TestStaleContextWriteSurvives(t *testing.T) {
	_, nodes := testCluster(t)
	ctx := context.Background()
	coord := nodes[0]

	if err := coord.Put(ctx, goldRing, "stale-key", []byte("v1"), nil, WriteOptions{}); err != nil {
		t.Fatal(err)
	}
	r1, err := coord.Get(ctx, goldRing, "stale-key", ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Put(ctx, goldRing, "stale-key", []byte("v2"), r1.Context, WriteOptions{}); err != nil {
		t.Fatal(err)
	}
	// Third write with the STALE context from before v2 — as if the
	// read behind the read-modify-write missed the latest version.
	if err := coord.Put(ctx, goldRing, "stale-key", []byte("v3"), r1.Context, WriteOptions{}); err != nil {
		t.Fatal(err)
	}

	r2, err := coord.Get(ctx, goldRing, "stale-key", ReadOptions{Consistency: ConsistencyAll})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range r2.Values {
		if string(v) == "v3" {
			return
		}
	}
	t.Fatalf("acknowledged stale-context write lost: siblings %q", r2.Values)
}
