package cluster

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"skute/internal/ring"
	"skute/internal/store"
	"skute/internal/telemetry"
	"skute/internal/transport"
)

// benchTCPCluster boots a 6-server cluster over real sockets (3-replica
// ring, majority quorums) and returns a client bound to the first node.
// freshDial selects the checked-in baseline: every RPC — client to
// coordinator AND coordinator to replica — dials a fresh connection and
// pays the per-call gob type descriptors, exactly the cost profile of
// the pre-pooling wire. With freshDial false, the same traffic rides
// the pooled, multiplexed frame protocol.
func benchTCPCluster(b *testing.B, freshDial bool) ([]*Node, *Client, ring.RingID) {
	return benchTCPClusterWrapped(b, freshDial, nil)
}

// benchTCPClusterWrapped is benchTCPCluster with an optional wrapper
// around the coordinator's (node 0's) outgoing transport — fault
// injection for the hedged-read benchmark.
func benchTCPClusterWrapped(b *testing.B, freshDial bool, wrap0 func(transport.Transport) transport.Transport) ([]*Node, *Client, ring.RingID) {
	b.Helper()
	if freshDial {
		// The baseline reproduces the old hot path end to end: per-call
		// payload descriptors too, not just per-call dials.
		legacyPayloadCodec.Store(true)
		b.Cleanup(func() { legacyPayloadCodec.Store(false) })
	}
	const servers = 6
	addrs := make([]string, servers)
	for i := range addrs {
		probe := transport.NewTCP()
		if err := probe.Serve("127.0.0.1:0", func(context.Context, transport.Envelope) (transport.Envelope, error) {
			return transport.Envelope{}, fmt.Errorf("not ready")
		}); err != nil {
			b.Fatal(err)
		}
		addrs[i] = probe.Addrs()[0]
		probe.Close()
	}

	cfg := Config{
		Rings: []RingSpec{{App: "bench", Class: "std", Partitions: 32, Replicas: 3}},
	}
	conts := []string{"eu", "eu", "us", "us", "ap", "ap"}
	for i := 0; i < servers; i++ {
		cfg.Nodes = append(cfg.Nodes, NodeInfo{
			Name:          fmt.Sprintf("n%d", i),
			Addr:          addrs[i],
			LocPath:       fmt.Sprintf("%s/c%d/dc0/r0/k0/s%d", conts[i], i, i),
			Confidence:    1,
			MonthlyRent:   100,
			Capacity:      1 << 30,
			QueryCapacity: 100000,
		})
	}

	nodes := make([]*Node, servers)
	for i := 0; i < servers; i++ {
		nt := transport.NewTCP()
		nt.DisablePooling = freshDial
		b.Cleanup(func() { nt.Close() })
		var err error
		var tr transport.Transport = &fixedAddrTCP{TCP: nt, addr: addrs[i]}
		if i == 0 && wrap0 != nil {
			tr = wrap0(tr)
		}
		nodes[i], err = NewNode(cfg, fmt.Sprintf("n%d", i), tr, store.NewMemory())
		if err != nil {
			b.Fatalf("NewNode over TCP: %v", err)
		}
	}
	for _, n := range nodes {
		n.ConfirmPeers()
	}
	ct := transport.NewTCP()
	ct.DisablePooling = freshDial
	b.Cleanup(func() { ct.Close() })
	return nodes, NewClient(ct, addrs[0]), ring.RingID{App: "bench", Class: "std"}
}

// benchTCPPut drives quorum writes (W=2 of 3 replicas) through the
// client — every leg over real sockets.
func benchTCPPut(b *testing.B, freshDial bool) {
	_, client, id := benchTCPCluster(b, freshDial)
	val := make([]byte, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := client.Put(ctx, id, fmt.Sprintf("key-%d", i%1024), val, nil, WriteOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchTCPGet seeds 512 keys and drives quorum reads through the client.
func benchTCPGet(b *testing.B, freshDial bool) {
	_, client, id := benchTCPCluster(b, freshDial)
	val := make([]byte, 256)
	for i := 0; i < 512; i++ {
		if err := client.Put(ctx, id, fmt.Sprintf("key-%d", i), val, nil, WriteOptions{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := client.Get(ctx, id, fmt.Sprintf("key-%d", i%512), ReadOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchTCPMGet drives 64-key batched reads; the batch still fans out
// one envelope per replica per partition group, all over the wire.
func benchTCPMGet(b *testing.B, freshDial bool) {
	_, client, id := benchTCPCluster(b, freshDial)
	entries := make([]Entry, 64)
	keys := make([]string, 64)
	for i := range keys {
		keys[i] = fmt.Sprintf("mget-%d", i)
		entries[i] = Entry{Key: keys[i], Value: make([]byte, 256)}
	}
	if err := client.MPut(ctx, id, entries, WriteOptions{}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := client.MGet(ctx, id, keys, ReadOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if len(res) != len(keys) {
			b.Fatalf("got %d results", len(res))
		}
	}
}

// BenchmarkTCPClusterPut measures a quorum write end-to-end over the
// pooled multiplexed transport. Compare with the FreshDial baseline:
// the gap is what persistent pooled connections buy on the wire path.
func BenchmarkTCPClusterPut(b *testing.B) { benchTCPPut(b, false) }

// BenchmarkTCPClusterPutFreshDial is the checked-in baseline: identical
// traffic, but every RPC dials a fresh connection (the pre-pooling wire).
func BenchmarkTCPClusterPutFreshDial(b *testing.B) { benchTCPPut(b, true) }

// BenchmarkTCPClusterGet measures a quorum read end-to-end over the
// pooled multiplexed transport.
func BenchmarkTCPClusterGet(b *testing.B) { benchTCPGet(b, false) }

// BenchmarkTCPClusterGetFreshDial is the fresh-dial-per-call baseline
// for BenchmarkTCPClusterGet.
func BenchmarkTCPClusterGetFreshDial(b *testing.B) { benchTCPGet(b, true) }

// BenchmarkTCPClusterMGet measures a 64-key batched read over the
// pooled wire.
func BenchmarkTCPClusterMGet(b *testing.B) { benchTCPMGet(b, false) }

// BenchmarkTCPClusterMGetFreshDial is the fresh-dial baseline for
// BenchmarkTCPClusterMGet.
func BenchmarkTCPClusterMGetFreshDial(b *testing.B) { benchTCPMGet(b, true) }

// BenchmarkTCPClusterGetOne measures the coordinator's ConsistencyOne
// fast path with the full TCP cluster standing: the key is replicated on
// the coordinator, so the read is served from the local store under the
// read lease — no envelope, no store round trip beyond the engine get
// (see readpath.go). This is the per-read cost a client co-located with
// a replica pays after its request frame lands.
func BenchmarkTCPClusterGetOne(b *testing.B) {
	nodes, client, id := benchTCPCluster(b, false)
	// Seed keys and keep the ones the coordinator hosts.
	var local []string
	for i := 0; len(local) < 256 && i < 8192; i++ {
		key := fmt.Sprintf("one-%d", i)
		reps, err := nodes[0].Replicas(id, key)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range reps {
			if r == nodes[0].Name() {
				if err := client.Put(ctx, id, key, make([]byte, 256), nil, WriteOptions{}); err != nil {
					b.Fatal(err)
				}
				local = append(local, key)
				break
			}
		}
	}
	if len(local) == 0 {
		b.Fatal("no coordinator-hosted keys found")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := nodes[0].Get(ctx, id, local[i%len(local)], ReadOptions{Consistency: ConsistencyOne})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Values) != 1 {
			b.Fatalf("lease-served read returned %d values", len(res.Values))
		}
	}
}

// slowReplicaTransport delays the coordinator's quorum-read envelopes to
// one replica address — the single-slow-replica regime the hedged
// backup request exists for.
type slowReplicaTransport struct {
	transport.Transport
	victim string
	delay  time.Duration
}

func (s *slowReplicaTransport) Call(ctx context.Context, addr string, req transport.Envelope) (transport.Envelope, error) {
	if addr == s.victim && req.Kind == kindMultiGet {
		select {
		case <-time.After(s.delay):
		case <-ctx.Done():
			return transport.Envelope{}, ctx.Err()
		}
	}
	return s.Transport.Call(ctx, addr, req)
}

// BenchmarkTCPClusterGetHedged measures quorum reads while one replica
// answers reads 5ms late. The hedged backup request bounds the tail near
// p99(healthy) instead of the slow replica's 5ms: the reported p99-ns
// should sit within ~2x of p50-ns, where the old unconditional wait
// would pin p99 at the injected delay.
func BenchmarkTCPClusterGetHedged(b *testing.B) {
	var slow *slowReplicaTransport
	nodes, client, id := benchTCPClusterWrapped(b, false, func(tr transport.Transport) transport.Transport {
		slow = &slowReplicaTransport{Transport: tr, delay: 5 * time.Millisecond}
		return slow
	})
	slow.victim = nodes[1].self.Addr
	// Keep only keys whose INITIAL quorum pair includes the slow replica
	// — the coordinator's own copy ordered to the front, then the first
	// R=2 of the replica list — so every measured read faces the slow
	// replica and must be rescued by the hedge. Keys that never touch it
	// would only dilute the distribution the benchmark exists to pin.
	var keys []string
	for i := 0; len(keys) < 256 && i < 8192; i++ {
		key := fmt.Sprintf("hedge-%d", i)
		reps, err := nodes[0].Replicas(id, key)
		if err != nil {
			b.Fatal(err)
		}
		for j, r := range reps {
			if r == nodes[0].Name() && j > 0 {
				reps[0], reps[j] = reps[j], reps[0]
				break
			}
		}
		if reps[0] != nodes[1].Name() && reps[1] != nodes[1].Name() {
			continue
		}
		if err := client.Put(ctx, id, key, make([]byte, 256), nil, WriteOptions{}); err != nil {
			b.Fatal(err)
		}
		keys = append(keys, key)
	}
	if len(keys) == 0 {
		b.Fatal("no keys found with the slow replica in the initial quorum pair")
	}
	// Warm the hedge tracker past its refresh interval so the delay has
	// converged from its 1ms default toward the cluster's healthy-read
	// p99 before the measured window.
	for start, i := time.Now(), 0; time.Since(start) < 1300*time.Millisecond; i++ {
		if _, err := nodes[0].Get(ctx, id, keys[i%len(keys)], ReadOptions{Consistency: ConsistencyQuorum}); err != nil {
			b.Fatal(err)
		}
	}
	hist := telemetry.NewHistogram()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		if _, err := nodes[0].Get(ctx, id, keys[i%len(keys)], ReadOptions{Consistency: ConsistencyQuorum}); err != nil {
			b.Fatal(err)
		}
		hist.RecordSince(start)
	}
	b.StopTimer()
	stats := hist.Snapshot()
	b.ReportMetric(float64(stats.Quantile(0.50)), "p50-ns")
	b.ReportMetric(float64(stats.Quantile(0.99)), "p99-ns")
}

// BenchmarkTCPMultiplexedHeartbeats measures a full heartbeat round
// while the data plane keeps the same peer connections busy with quorum
// writes — the multiplexing case: control-plane frames interleave with
// in-flight data-plane frames on the same pooled sockets instead of
// queueing behind them.
func BenchmarkTCPMultiplexedHeartbeats(b *testing.B) {
	nodes, client, id := benchTCPCluster(b, false)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			val := make([]byte, 256)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				_ = client.Put(ctx, id, fmt.Sprintf("bg-%d-%d", g, i%256), val, nil, WriteOptions{Timeout: 5 * time.Second})
			}
		}(g)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nodes[0].SendHeartbeats(ctx)
	}
	b.StopTimer()
	close(stop)
	wg.Wait()
}
