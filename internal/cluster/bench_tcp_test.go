package cluster

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"skute/internal/ring"
	"skute/internal/store"
	"skute/internal/transport"
)

// benchTCPCluster boots a 6-server cluster over real sockets (3-replica
// ring, majority quorums) and returns a client bound to the first node.
// freshDial selects the checked-in baseline: every RPC — client to
// coordinator AND coordinator to replica — dials a fresh connection and
// pays the per-call gob type descriptors, exactly the cost profile of
// the pre-pooling wire. With freshDial false, the same traffic rides
// the pooled, multiplexed frame protocol.
func benchTCPCluster(b *testing.B, freshDial bool) ([]*Node, *Client, ring.RingID) {
	b.Helper()
	if freshDial {
		// The baseline reproduces the old hot path end to end: per-call
		// payload descriptors too, not just per-call dials.
		legacyPayloadCodec.Store(true)
		b.Cleanup(func() { legacyPayloadCodec.Store(false) })
	}
	const servers = 6
	addrs := make([]string, servers)
	for i := range addrs {
		probe := transport.NewTCP()
		if err := probe.Serve("127.0.0.1:0", func(context.Context, transport.Envelope) (transport.Envelope, error) {
			return transport.Envelope{}, fmt.Errorf("not ready")
		}); err != nil {
			b.Fatal(err)
		}
		addrs[i] = probe.Addrs()[0]
		probe.Close()
	}

	cfg := Config{
		Rings: []RingSpec{{App: "bench", Class: "std", Partitions: 32, Replicas: 3}},
	}
	conts := []string{"eu", "eu", "us", "us", "ap", "ap"}
	for i := 0; i < servers; i++ {
		cfg.Nodes = append(cfg.Nodes, NodeInfo{
			Name:          fmt.Sprintf("n%d", i),
			Addr:          addrs[i],
			LocPath:       fmt.Sprintf("%s/c%d/dc0/r0/k0/s%d", conts[i], i, i),
			Confidence:    1,
			MonthlyRent:   100,
			Capacity:      1 << 30,
			QueryCapacity: 100000,
		})
	}

	nodes := make([]*Node, servers)
	for i := 0; i < servers; i++ {
		nt := transport.NewTCP()
		nt.DisablePooling = freshDial
		b.Cleanup(func() { nt.Close() })
		var err error
		nodes[i], err = NewNode(cfg, fmt.Sprintf("n%d", i), &fixedAddrTCP{TCP: nt, addr: addrs[i]}, store.NewMemory())
		if err != nil {
			b.Fatalf("NewNode over TCP: %v", err)
		}
	}
	for _, n := range nodes {
		n.ConfirmPeers()
	}
	ct := transport.NewTCP()
	ct.DisablePooling = freshDial
	b.Cleanup(func() { ct.Close() })
	return nodes, NewClient(ct, addrs[0]), ring.RingID{App: "bench", Class: "std"}
}

// benchTCPPut drives quorum writes (W=2 of 3 replicas) through the
// client — every leg over real sockets.
func benchTCPPut(b *testing.B, freshDial bool) {
	_, client, id := benchTCPCluster(b, freshDial)
	val := make([]byte, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := client.Put(ctx, id, fmt.Sprintf("key-%d", i%1024), val, nil, WriteOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchTCPGet seeds 512 keys and drives quorum reads through the client.
func benchTCPGet(b *testing.B, freshDial bool) {
	_, client, id := benchTCPCluster(b, freshDial)
	val := make([]byte, 256)
	for i := 0; i < 512; i++ {
		if err := client.Put(ctx, id, fmt.Sprintf("key-%d", i), val, nil, WriteOptions{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := client.Get(ctx, id, fmt.Sprintf("key-%d", i%512), ReadOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchTCPMGet drives 64-key batched reads; the batch still fans out
// one envelope per replica per partition group, all over the wire.
func benchTCPMGet(b *testing.B, freshDial bool) {
	_, client, id := benchTCPCluster(b, freshDial)
	entries := make([]Entry, 64)
	keys := make([]string, 64)
	for i := range keys {
		keys[i] = fmt.Sprintf("mget-%d", i)
		entries[i] = Entry{Key: keys[i], Value: make([]byte, 256)}
	}
	if err := client.MPut(ctx, id, entries, WriteOptions{}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := client.MGet(ctx, id, keys, ReadOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if len(res) != len(keys) {
			b.Fatalf("got %d results", len(res))
		}
	}
}

// BenchmarkTCPClusterPut measures a quorum write end-to-end over the
// pooled multiplexed transport. Compare with the FreshDial baseline:
// the gap is what persistent pooled connections buy on the wire path.
func BenchmarkTCPClusterPut(b *testing.B) { benchTCPPut(b, false) }

// BenchmarkTCPClusterPutFreshDial is the checked-in baseline: identical
// traffic, but every RPC dials a fresh connection (the pre-pooling wire).
func BenchmarkTCPClusterPutFreshDial(b *testing.B) { benchTCPPut(b, true) }

// BenchmarkTCPClusterGet measures a quorum read end-to-end over the
// pooled multiplexed transport.
func BenchmarkTCPClusterGet(b *testing.B) { benchTCPGet(b, false) }

// BenchmarkTCPClusterGetFreshDial is the fresh-dial-per-call baseline
// for BenchmarkTCPClusterGet.
func BenchmarkTCPClusterGetFreshDial(b *testing.B) { benchTCPGet(b, true) }

// BenchmarkTCPClusterMGet measures a 64-key batched read over the
// pooled wire.
func BenchmarkTCPClusterMGet(b *testing.B) { benchTCPMGet(b, false) }

// BenchmarkTCPClusterMGetFreshDial is the fresh-dial baseline for
// BenchmarkTCPClusterMGet.
func BenchmarkTCPClusterMGetFreshDial(b *testing.B) { benchTCPMGet(b, true) }

// BenchmarkTCPMultiplexedHeartbeats measures a full heartbeat round
// while the data plane keeps the same peer connections busy with quorum
// writes — the multiplexing case: control-plane frames interleave with
// in-flight data-plane frames on the same pooled sockets instead of
// queueing behind them.
func BenchmarkTCPMultiplexedHeartbeats(b *testing.B) {
	nodes, client, id := benchTCPCluster(b, false)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			val := make([]byte, 256)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				_ = client.Put(ctx, id, fmt.Sprintf("bg-%d-%d", g, i%256), val, nil, WriteOptions{Timeout: 5 * time.Second})
			}
		}(g)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nodes[0].SendHeartbeats(ctx)
	}
	b.StopTimer()
	close(stop)
	wg.Wait()
}
