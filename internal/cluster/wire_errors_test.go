package cluster

import (
	"context"
	"errors"
	"strings"
	"testing"

	"skute/internal/ring"
	"skute/internal/store"
	"skute/internal/transport"
)

// TestWireErrorFidelity: typed errors produced by a coordinating node
// survive the TCP wire as sentinels. The old wireResponse.Err string
// collapsed every handler error to stringified text, so errors.Is
// always failed on the client side; the frame protocol carries an error
// code that reconstructs the sentinel.
func TestWireErrorFidelity(t *testing.T) {
	tr := transport.NewTCP()
	defer tr.Close()
	if err := tr.Serve("127.0.0.1:0", func(ctx context.Context, req transport.Envelope) (transport.Envelope, error) {
		return transport.Envelope{}, nil
	}); err != nil {
		t.Fatal(err)
	}
	addr := tr.Addrs()[0]
	tr.Close()

	nt := transport.NewTCP()
	defer nt.Close()
	cfg := Config{
		Nodes: []NodeInfo{{
			Name: "n0", Addr: addr, LocPath: "eu/ch/dc0/r0/k0/s0",
			Confidence: 1, MonthlyRent: 100, Capacity: 1 << 30, QueryCapacity: 1000,
		}},
		Rings: []RingSpec{{App: "app1", Class: "gold", Partitions: 2, Replicas: 1}},
	}
	if _, err := NewNode(cfg, "n0", &fixedAddrTCP{TCP: nt, addr: addr}, store.NewMemory()); err != nil {
		t.Fatal(err)
	}

	ct := transport.NewTCP()
	defer ct.Close()
	client := NewClient(ct, addr)

	// Unknown ring: the coordinator's not-found sentinel must round-trip.
	_, _, err := client.Get(ctx, ring.RingID{App: "ghost", Class: "none"}, "k", ReadOptions{})
	if !errors.Is(err, ErrUnknownRing) {
		t.Errorf("unknown ring over TCP: errors.Is(err, ErrUnknownRing) = false, err = %v", err)
	}
	if err == nil || !strings.Contains(err.Error(), "ghost") {
		t.Errorf("remote message lost: %v", err)
	}

	// A live ring still works through the same client (sanity).
	id := ring.RingID{App: "app1", Class: "gold"}
	if err := client.Put(ctx, id, "k", []byte("v"), nil, WriteOptions{}); err != nil {
		t.Fatalf("put: %v", err)
	}

	// Client-side unreachability keeps its sentinel too: a dead address
	// fails with ErrUnreachable from the pool's dial.
	dead := NewClient(ct, "127.0.0.1:1")
	if _, _, err := dead.Get(ctx, id, "k", ReadOptions{}); !errors.Is(err, transport.ErrUnreachable) {
		t.Errorf("dead address: errors.Is(err, ErrUnreachable) = false, err = %v", err)
	}

	// The in-memory mesh passes error values through directly — the same
	// sentinel check must hold there without any wire codec involved.
	mem := transport.NewMemory()
	defer mem.Close()
	memCfg := cfg
	memCfg.Nodes = append([]NodeInfo(nil), cfg.Nodes...)
	memCfg.Nodes[0].Addr = "mem://n0"
	if _, err := NewNode(memCfg, "n0", mem, store.NewMemory()); err != nil {
		t.Fatal(err)
	}
	memClient := NewClient(mem, "mem://n0")
	if _, _, err := memClient.Get(ctx, ring.RingID{App: "ghost", Class: "none"}, "k", ReadOptions{}); !errors.Is(err, ErrUnknownRing) {
		t.Errorf("unknown ring over memory mesh: err = %v", err)
	}
}
