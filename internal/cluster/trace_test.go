package cluster

import (
	"strings"
	"testing"
	"time"
)

func TestTraceRingBoundsAndOrder(t *testing.T) {
	r := NewTraceRing("n0", 4)
	for i := 0; i < 6; i++ {
		r.Add("kind", "event %d", i)
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, e := range evs {
		want := []string{"event 2", "event 3", "event 4", "event 5"}[i]
		if e.Detail != want {
			t.Errorf("event %d detail = %q, want %q", i, e.Detail, want)
		}
		if e.Node != "n0" {
			t.Errorf("event %d node = %q", i, e.Node)
		}
	}
	if got := r.Dropped(); got != 2 {
		t.Errorf("dropped = %d, want 2", got)
	}
}

func TestTraceRingNilSafe(t *testing.T) {
	var r *TraceRing
	r.Add("kind", "discarded")
	if evs := r.Events(); evs != nil {
		t.Errorf("nil ring events = %v", evs)
	}
	if d := r.Dropped(); d != 0 {
		t.Errorf("nil ring dropped = %d", d)
	}
}

func TestTraceRingDefaultCapacity(t *testing.T) {
	r := NewTraceRing("n0", 0)
	for i := 0; i < defaultTraceEvents+10; i++ {
		r.Add("k", "e")
	}
	if got := len(r.Events()); got != defaultTraceEvents {
		t.Errorf("retained %d, want %d", got, defaultTraceEvents)
	}
}

func TestMergeTracesChronological(t *testing.T) {
	t0 := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	a := []TraceEvent{
		{T: t0, Node: "a", Kind: "k", Detail: "first"},
		{T: t0.Add(2 * time.Second), Node: "a", Kind: "k", Detail: "third"},
	}
	b := []TraceEvent{
		{T: t0.Add(time.Second), Node: "b", Kind: "k", Detail: "second"},
	}
	merged := MergeTraces(a, b)
	if len(merged) != 3 {
		t.Fatalf("merged %d events", len(merged))
	}
	for i, want := range []string{"first", "second", "third"} {
		if merged[i].Detail != want {
			t.Errorf("merged[%d] = %q, want %q", i, merged[i].Detail, want)
		}
	}
	if !strings.Contains(merged[0].String(), "12:00:00.000") {
		t.Errorf("String() = %q", merged[0].String())
	}
}
