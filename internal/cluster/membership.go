package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"skute/internal/membership"
	"skute/internal/merkle"
	"skute/internal/parallel"
	"skute/internal/placement"
	"skute/internal/ring"
	"skute/internal/store"
	"skute/internal/telemetry"
	"skute/internal/transport"
)

// Dynamic membership: the cluster-side plumbing around the SWIM table
// in internal/membership. Member records spread on the heartbeat frames
// the nodes already exchange (the sender's own record plus a table
// digest rides every beat; a digest mismatch pulls the full list), new
// nodes join through any seed with kindJoin, and members the table
// declares dead are evicted from every replica set through the same
// versioned placement deltas the economy uses — their partitions are
// then re-placed by the ordinary repair machinery.

// memberInfoOf converts the static descriptor entry to the gossiped
// member metadata.
func memberInfoOf(n NodeInfo) membership.Info {
	return membership.Info{
		Name:          n.Name,
		Addr:          n.Addr,
		LocPath:       n.LocPath,
		Confidence:    n.Confidence,
		MonthlyRent:   n.MonthlyRent,
		Capacity:      n.Capacity,
		QueryCapacity: n.QueryCapacity,
	}
}

// nodeInfoOf is the inverse conversion.
func nodeInfoOf(i membership.Info) NodeInfo {
	return NodeInfo{
		Name:          i.Name,
		Addr:          i.Addr,
		LocPath:       i.LocPath,
		Confidence:    i.Confidence,
		MonthlyRent:   i.MonthlyRent,
		Capacity:      i.Capacity,
		QueryCapacity: i.QueryCapacity,
	}
}

// applyMemberDeltas merges gossiped member records into the table,
// registering newly heard names in the local ID registry. A delta that
// accused this node itself of suspicion or death was refuted by the
// table (incarnation bumped); the refreshed self record is pushed out
// immediately so the accusation dies fast. It returns the number of
// records applied.
func (n *Node) applyMemberDeltas(ctx context.Context, ds ...membership.Delta) int {
	applied := 0
	refuted := false
	now := n.Now()
	for _, d := range ds {
		switch n.mt.Apply(d, now) {
		case membership.Applied:
			n.registerName(d.Info.Name)
			n.counters.MemberDeltasApplied.Inc()
			n.trace.Add("member", "apply %s=%s@%d", d.Info.Name, d.State, d.Incarnation)
			applied++
		case membership.Stale:
			n.counters.MemberDeltasStale.Inc()
		case membership.Refuted:
			n.counters.MemberRefutations.Inc()
			n.trace.Add("member", "refuted accusation %s@%d", d.State, d.Incarnation)
			refuted = true
		}
	}
	if refuted {
		n.spreadMembers(ctx, n.mt.SelfDelta())
	}
	return applied
}

// pullMembers fetches the named peer's full member list after a digest
// mismatch — anti-entropy for the member table, mirroring the placement
// delta pull.
func (n *Node) pullMembers(ctx context.Context, peer string) error {
	info, ok := n.mt.Info(peer)
	if !ok {
		return fmt.Errorf("cluster: unknown member %q", peer)
	}
	resp, err := n.tr.Call(ctx, info.Addr, transport.Envelope{
		Kind:    kindMemberPull,
		Payload: encode(memberPullReq{Digest: n.mt.Digest()}),
	})
	if err != nil {
		return err
	}
	var pr memberPullResp
	if err := decode(resp.Payload, &pr); err != nil {
		return err
	}
	n.counters.MemberPulls.Inc()
	n.applyMemberDeltas(ctx, pr.Deltas...)
	return nil
}

// spreadMembers pushes fresh member records (a join, a suspicion, a
// death, a refutation) to every non-terminal peer, best effort: a peer
// that misses the push converges through the digest exchange riding the
// next heartbeats.
func (n *Node) spreadMembers(ctx context.Context, ds ...membership.Delta) {
	if len(ds) == 0 {
		return
	}
	env := transport.Envelope{Kind: kindMemberDelta, Payload: encode(memberDeltaReq{Deltas: ds})}
	peers := n.mt.GossipPeers()
	parallel.ForEach(len(peers), len(peers), func(i int) {
		_, _ = n.tr.Call(ctx, peers[i].Addr, env)
	})
}

// RunMembershipRound advances the local failure detector one step
// (alive → suspect → dead on heartbeat silence), gossips whatever
// changed, and evicts dead members from the replica sets this node
// hosts. The runtime drives it on the heartbeat loop.
func (n *Node) RunMembershipRound(ctx context.Context) {
	suspects, deads := n.mt.Tick(n.Now())
	n.counters.MembersSuspected.Add(int64(len(suspects)))
	n.counters.MembersDead.Add(int64(len(deads)))
	for _, d := range suspects {
		n.trace.Add("detector", "suspect %s@%d", d.Info.Name, d.Incarnation)
	}
	for _, d := range deads {
		n.trace.Add("detector", "dead %s@%d", d.Info.Name, d.Incarnation)
	}
	if len(suspects)+len(deads) > 0 {
		n.spreadMembers(ctx, append(suspects, deads...)...)
	}
	n.evictDeadMembers(ctx)
}

// evictDeadMembers removes every Dead or Left member from the replica
// sets of partitions this node hosts, one versioned placement delta per
// partition. It is idempotent — once the replica sets are clean it does
// nothing — and deliberately re-runs every round, so deaths observed
// through gossip (another node's Tick, or an injected FailServer)
// trigger eviction here too, not only deaths this node's own detector
// declared. Only hosting vnodes decide, matching the economy's rule,
// and the re-placement itself is left to the ordinary repair machinery:
// the shrunken replica set fails the availability threshold and the
// next economic epoch replicates it somewhere alive.
func (n *Node) evictDeadMembers(ctx context.Context) {
	type eviction struct {
		id   ring.RingID
		part int
		name string
	}
	var evs []eviction
	for _, m := range n.mt.Members() {
		if m.State != membership.Dead && m.State != membership.Left {
			continue
		}
		id, ok := n.nodeID(m.Info.Name)
		if !ok {
			continue
		}
		n.mu.RLock()
		for _, rid := range n.rings.IDs() {
			for _, p := range n.rings.Ring(rid).Partitions() {
				if p.HasReplica(ring.ServerID(n.selfI)) && p.HasReplica(id) {
					evs = append(evs, eviction{rid, p.ID, m.Info.Name})
				}
			}
		}
		n.mu.RUnlock()
	}
	for _, ev := range evs {
		if d, ok := n.propose(ev.id, ev.part, "", ev.name); ok {
			n.disseminate(ctx, d)
			n.counters.MemberEvictions.Inc()
			n.trace.Add("evict", "%s out of %s#%d", ev.name, ev.id, ev.part)
		}
	}
}

// handleJoin admits a new (or returning) member through this node. The
// joiner is stamped with an incarnation strictly above any prior record
// of its name, so a rejoin supersedes the old death everywhere it
// gossips; the response hands back everything needed to become a
// functioning member: the full member list, the ring specs, the
// cluster parameters and the current placement map.
func (n *Node) handleJoin(ctx context.Context, req joinReq) (transport.Envelope, error) {
	if err := req.Info.Validate(); err != nil {
		return transport.Envelope{}, err
	}
	if req.Info.Name == n.self.Name {
		return transport.Envelope{}, fmt.Errorf("cluster: join under this node's own name %q", n.self.Name)
	}
	assigned := uint64(1)
	if m, ok := n.mt.Get(req.Info.Name); ok {
		assigned = m.Incarnation + 1
	}
	d := membership.Delta{Info: req.Info, State: membership.Alive, Incarnation: assigned}
	n.applyMemberDeltas(ctx, d)
	// The join RPC itself is direct contact: the joiner skips probation
	// on this seed (every other node still demands its own heartbeat
	// exchange before routing traffic to it).
	n.mt.Confirm(req.Info.Name, n.Now())
	n.spreadMembers(ctx, d)
	n.counters.JoinsServed.Inc()
	n.trace.Add("join", "admitted %s (%s) at incarnation %d", req.Info.Name, req.Info.Addr, assigned)
	return transport.Envelope{Kind: "ok", Payload: encode(joinResp{
		Assigned:     assigned,
		Members:      n.mt.Deltas(),
		Rings:        n.cfg.Rings,
		Placement:    n.pmap.Deltas(),
		ReadQuorum:   n.cfg.ReadQuorum,
		WriteQuorum:  n.cfg.WriteQuorum,
		SuspectAfter: n.suspectAfter,
		DeadAfter:    n.deadAfter,
	})}, nil
}

// JoinOptions tune a joining node; zero values select the defaults.
type JoinOptions struct {
	// EpochWorkers bounds the economic-epoch worker pool (see
	// Config.EpochWorkers).
	EpochWorkers int
	// TransferChunkItems / TransferBytesPerSec tune this node's donor
	// side of partition transfer (see the Config fields).
	TransferChunkItems  int
	TransferBytesPerSec int64
	// TraceEvents bounds the decision-trace ring (see Config.TraceEvents).
	TraceEvents int
	// ReadCacheEntries / ReadCacheTTL tune the coordinator hot-key read
	// cache (see the Config fields).
	ReadCacheEntries int
	ReadCacheTTL     time.Duration
	// MaxInflight / DisableAdmission tune the joiner's admission gate,
	// and BreakerFailures / BreakerOpenFor / BreakerSlowAfter its
	// per-peer circuit breakers (see the Config fields). These are
	// node-local robustness knobs, so the seed does not dictate them.
	MaxInflight      int
	DisableAdmission bool
	BreakerFailures  int
	BreakerOpenFor   time.Duration
	BreakerSlowAfter time.Duration
}

// JoinNode boots a node into an existing cluster through any live seed:
// no shared descriptor file, just the node's own metadata and one
// address. The seed answers with the member list, ring specs, cluster
// parameters and placement map; the joiner starts with EMPTY replica
// sets and materializes the real ones from the placement deltas, so it
// holds exactly the cluster's converged view. It owns no partitions
// until the economy places some on it — at which point the data arrives
// via throttled chunked transfer (handleAdopt).
func JoinNode(ctx context.Context, self NodeInfo, seedAddr string, opts JoinOptions, tr transport.Transport, eng *store.Engine) (*Node, error) {
	mi := memberInfoOf(self)
	if err := mi.Validate(); err != nil {
		return nil, err
	}
	resp, err := tr.Call(ctx, seedAddr, transport.Envelope{
		Kind:    kindJoin,
		Payload: encode(joinReq{Info: mi}),
	})
	if err != nil {
		return nil, fmt.Errorf("cluster: join via %s: %w", seedAddr, err)
	}
	var jr joinResp
	if err := decode(resp.Payload, &jr); err != nil {
		return nil, err
	}
	if len(jr.Rings) == 0 {
		return nil, fmt.Errorf("cluster: join via %s: seed returned no rings", seedAddr)
	}
	suspect := jr.SuspectAfter
	if suspect <= 0 {
		suspect = 10 * time.Second
	}
	dead := jr.DeadAfter
	if dead <= 0 {
		dead = 3 * suspect
	}

	// The ring layout starts EMPTY: partitions exist (the specs fix the
	// token space) but no replicas — the placement deltas below, not a
	// bootstrap computation, materialize the cluster's actual view.
	mr := ring.NewMultiRing()
	specs := make(map[ring.RingID]RingSpec, len(jr.Rings))
	for _, spec := range jr.Rings {
		if _, err := mr.Add(spec.ID(), spec.Partitions); err != nil {
			return nil, err
		}
		specs[spec.ID()] = spec
	}

	cfg := Config{
		Nodes:               []NodeInfo{self},
		Rings:               jr.Rings,
		ReadQuorum:          jr.ReadQuorum,
		WriteQuorum:         jr.WriteQuorum,
		SuspectAfter:        suspect,
		DeadAfter:           dead,
		EpochWorkers:        opts.EpochWorkers,
		TransferChunkItems:  opts.TransferChunkItems,
		TransferBytesPerSec: opts.TransferBytesPerSec,
		TraceEvents:         opts.TraceEvents,
		ReadCacheEntries:    opts.ReadCacheEntries,
		ReadCacheTTL:        opts.ReadCacheTTL,
		MaxInflight:         opts.MaxInflight,
		DisableAdmission:    opts.DisableAdmission,
		BreakerFailures:     opts.BreakerFailures,
		BreakerOpenFor:      opts.BreakerOpenFor,
		BreakerSlowAfter:    opts.BreakerSlowAfter,
	}
	n := &Node{
		cfg:          cfg,
		self:         self,
		selfI:        0,
		tr:           tr,
		eng:          eng,
		mt:           membership.New(mi, suspect, dead),
		suspectAfter: suspect,
		deadAfter:    dead,
		Now:          time.Now,
		epochWorkers: opts.EpochWorkers,
		ids:          make(map[string]ring.ServerID),
		trees:        make(map[placement.Key]*merkle.Incremental),
		throttle:     newRateLimiter(opts.TransferBytesPerSec),
		chunkItems:   opts.TransferChunkItems,
		trace:        NewTraceRing(self.Name, opts.TraceEvents),
		resume:       make(map[string]string),
		rings:        mr,
		pmap:         placement.NewMap(),
		specs:        specs,
		ledgers:      make(map[string]*ledgerState),
		queries:      make(map[string]float64),
		rents:        make(map[string]float64),
		rng:          rand.New(rand.NewSource(int64(len(jr.Members)) + 1)),
		tel:          telemetry.NewRegistry(),
	}
	n.opTel = &opHists{reg: n.tel}
	if n.chunkItems <= 0 {
		n.chunkItems = defaultChunkItems
	}
	n.initResilience(cfg)
	n.rcache = newReadCache(opts.ReadCacheEntries, opts.ReadCacheTTL)
	n.hedge = newHedgeTracker(n.tel.Histogram("cluster_read_rtt_ns"))
	// The answered join RPC below is contact evidence; seed the lease
	// from the boot instant like NewNode does.
	n.lastContact.Store(n.Now().UnixNano())
	n.registerName(self.Name) // ServerID 0 == selfI
	// The seed's member list includes this node's own record at the
	// assigned incarnation; Apply's self path adopts it, so a rejoin
	// immediately gossips above its old death record.
	n.applyMemberDeltas(ctx, jr.Members...)
	// The seed answered the join RPC: direct evidence it is up, so it is
	// immediately usable for quorum traffic while everyone else earns
	// confirmation through the first heartbeat round.
	for _, m := range n.mt.Members() {
		if m.Info.Addr == seedAddr {
			n.mt.Confirm(m.Info.Name, n.Now())
		}
	}
	n.applyDeltas(jr.Placement)
	n.initTrees()
	n.trace.Add("join", "joined via seed %s", seedAddr)
	if err := tr.Serve(listenAddr(self), n.handle); err != nil {
		return nil, err
	}
	return n, nil
}
