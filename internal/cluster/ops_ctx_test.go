package cluster

// Tests for the context-aware request path: per-request consistency
// overrides, deadlines and cancellation inside the quorum fan-out, and
// the envelope economy of the batched multi-key operations.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"skute/internal/ring"
	"skute/internal/store"
	"skute/internal/transport"
)

// countingTransport wraps a transport and counts outgoing calls by
// envelope kind — the instrument behind the replica-contact and
// envelope-bound assertions.
type countingTransport struct {
	transport.Transport
	mu    sync.Mutex
	calls map[string]int
}

func newCountingTransport(inner transport.Transport) *countingTransport {
	return &countingTransport{Transport: inner, calls: make(map[string]int)}
}

func (c *countingTransport) Call(ctx context.Context, addr string, req transport.Envelope) (transport.Envelope, error) {
	c.mu.Lock()
	c.calls[req.Kind]++
	c.mu.Unlock()
	return c.Transport.Call(ctx, addr, req)
}

func (c *countingTransport) count(kind string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls[kind]
}

func (c *countingTransport) reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.calls = make(map[string]int)
}

// hangTransport wraps a transport and blocks calls to one address until
// the caller's context fires — a replica that accepted the request and
// never answers. The victim address is guarded: straggler goroutines
// from earlier requests may still be calling when a test retargets it.
type hangTransport struct {
	transport.Transport
	mu     sync.Mutex
	victim string
}

func (h *hangTransport) setVictim(addr string) {
	h.mu.Lock()
	h.victim = addr
	h.mu.Unlock()
}

func (h *hangTransport) Call(ctx context.Context, addr string, req transport.Envelope) (transport.Envelope, error) {
	h.mu.Lock()
	victim := h.victim
	h.mu.Unlock()
	if addr == victim {
		<-ctx.Done()
		return transport.Envelope{}, ctx.Err()
	}
	return h.Transport.Call(ctx, addr, req)
}

// instrumentedCluster boots the standard 6-node test cluster with
// nodes[0]'s outgoing transport wrapped by wrap. All requests in these
// tests coordinate through nodes[0], so the wrapper sees every envelope
// the coordinator sends.
func instrumentedCluster(t *testing.T, wrap func(transport.Transport) transport.Transport) []*Node {
	t.Helper()
	mesh := transport.NewMemory()
	cfg := testConfig()
	var nodes []*Node
	for i, ni := range cfg.Nodes {
		var tr transport.Transport = mesh
		if i == 0 {
			tr = wrap(mesh)
		}
		n, err := NewNode(cfg, ni.Name, tr, store.NewMemory())
		if err != nil {
			t.Fatalf("NewNode(%s): %v", ni.Name, err)
		}
		nodes = append(nodes, n)
	}
	for _, n := range nodes {
		n.ConfirmPeers()
	}
	t.Cleanup(func() { mesh.Close() })
	return nodes
}

// remoteKey finds a key of the ring whose replica set excludes the
// coordinator, so every replica contact is a counted remote envelope.
func remoteKey(t *testing.T, n *Node, id ring.RingID, replicas int) string {
	t.Helper()
	for i := 0; i < 4096; i++ {
		key := fmt.Sprintf("probe-%d", i)
		reps, err := n.Replicas(id, key)
		if err != nil {
			t.Fatal(err)
		}
		if len(reps) != replicas {
			continue
		}
		self := false
		for _, r := range reps {
			if r == n.Name() {
				self = true
			}
		}
		if !self {
			return key
		}
	}
	t.Fatal("no key found with a fully remote replica set")
	return ""
}

func TestPreCancelledContextContactsNoReplica(t *testing.T) {
	var ct *countingTransport
	nodes := instrumentedCluster(t, func(tr transport.Transport) transport.Transport {
		ct = newCountingTransport(tr)
		return ct
	})
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := nodes[0].Get(cancelled, goldRing, "k", ReadOptions{}); !errors.Is(err, context.Canceled) {
		t.Errorf("Get err = %v, want context.Canceled", err)
	}
	if err := nodes[0].Put(cancelled, goldRing, "k", []byte("v"), nil, WriteOptions{}); !errors.Is(err, context.Canceled) {
		t.Errorf("Put err = %v, want context.Canceled", err)
	}
	if _, err := nodes[0].MultiGet(cancelled, goldRing, []string{"a", "b"}, ReadOptions{}); !errors.Is(err, context.Canceled) {
		t.Errorf("MultiGet err = %v, want context.Canceled", err)
	}
	if err := nodes[0].MultiPut(cancelled, goldRing, []Entry{{Key: "a", Value: []byte("v")}}, WriteOptions{}); !errors.Is(err, context.Canceled) {
		t.Errorf("MultiPut err = %v, want context.Canceled", err)
	}
	total := 0
	ct.mu.Lock()
	for kind, n := range ct.calls {
		if kind != kindHeartbeat {
			total += n
		}
	}
	ct.mu.Unlock()
	if total != 0 {
		t.Errorf("cancelled requests sent %d envelopes, want 0 (%v)", total, ct.calls)
	}
}

// settled polls until the counter for kind stops at want (requests may
// return at their ack threshold while hedge/straggler envelopes are
// still being launched) and returns the final count.
func (c *countingTransport) settled(kind string, want int) int {
	deadline := time.Now().Add(2 * time.Second)
	for c.count(kind) != want && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	return c.count(kind)
}

func TestConsistencyOverridesContactCounts(t *testing.T) {
	var ct *countingTransport
	nodes := instrumentedCluster(t, func(tr transport.Transport) transport.Transport {
		ct = newCountingTransport(tr)
		return ct
	})
	// A plat-ring key (3 replicas) fully remote from the coordinator, so
	// every replica contact is a counted envelope. ConsistencyAll makes
	// the write synchronous on all three replicas.
	key := remoteKey(t, nodes[0], platRing, 3)
	if err := nodes[0].Put(ctx, platRing, key, []byte("v"), nil, WriteOptions{Consistency: ConsistencyAll}); err != nil {
		t.Fatal(err)
	}

	// The ConsistencyAll write just write-through'd the key into the
	// coordinator hot-key cache, so a One-level read of it is served
	// with ZERO envelopes (see readpath.go).
	ct.reset()
	res, err := nodes[0].Get(ctx, platRing, key, ReadOptions{Consistency: ConsistencyOne})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 1 || string(res.Values[0]) != "v" {
		t.Fatalf("cache-served One read returned %q", res.Values)
	}
	if got := ct.settled(kindMultiGet, 0); got != 0 {
		t.Errorf("cache-served ConsistencyOne read sent %d envelopes, want 0", got)
	}

	// A cold remote key misses the cache and contacts exactly R = 1
	// replica: the hedged backup must not fire before its delay (pinned
	// high here so a scheduling stall cannot flake the count).
	nodes[0].hedge.delayNS.Store(int64(time.Minute))
	cold := ""
	for i := 0; i < 4096 && cold == ""; i++ {
		k := fmt.Sprintf("cold-%d", i)
		reps, err := nodes[0].Replicas(platRing, k)
		if err != nil {
			t.Fatal(err)
		}
		self := false
		for _, r := range reps {
			if r == nodes[0].Name() {
				self = true
			}
		}
		if len(reps) == 3 && !self {
			cold = k
		}
	}
	ct.reset()
	if _, err := nodes[0].Get(ctx, platRing, cold, ReadOptions{Consistency: ConsistencyOne}); err != nil {
		t.Fatal(err)
	}
	if got := ct.settled(kindMultiGet, 1); got != 1 {
		t.Errorf("ConsistencyOne cache miss contacted %d replicas, want 1", got)
	}
	ct.reset()
	if _, err := nodes[0].Get(ctx, platRing, key, ReadOptions{Consistency: ConsistencyAll}); err != nil {
		t.Fatal(err)
	}
	if got := ct.settled(kindMultiGet, 3); got != 3 {
		t.Errorf("ConsistencyAll contacted %d replicas, want 3", got)
	}
}

func TestConsistencyAckThresholds(t *testing.T) {
	mesh, nodes := testCluster(t)
	key := remoteKey(t, nodes[0], platRing, 3)
	reps, err := nodes[0].Replicas(platRing, key)
	if err != nil {
		t.Fatal(err)
	}
	// Kill one of the three replicas: All becomes unreachable, One and
	// Quorum still succeed.
	kill(mesh, nodes, reps[0])
	if err := nodes[0].Put(ctx, platRing, key, []byte("v"), nil, WriteOptions{Consistency: ConsistencyAll}); err == nil {
		t.Error("ConsistencyAll write succeeded with a replica down")
	} else if !strings.Contains(err.Error(), "quorum") {
		t.Errorf("unexpected error: %v", err)
	}
	if err := nodes[0].Put(ctx, platRing, key, []byte("v"), nil, WriteOptions{Consistency: ConsistencyQuorum}); err != nil {
		t.Errorf("ConsistencyQuorum write failed with 2/3 replicas up: %v", err)
	}
	if err := nodes[0].Put(ctx, platRing, key, []byte("v"), nil, WriteOptions{Consistency: ConsistencyOne}); err != nil {
		t.Errorf("ConsistencyOne write failed with 2/3 replicas up: %v", err)
	}
	if _, err := nodes[0].Get(ctx, platRing, key, ReadOptions{Consistency: ConsistencyAll}); err == nil {
		t.Error("ConsistencyAll read succeeded with a replica down")
	}
	if _, err := nodes[0].Get(ctx, platRing, key, ReadOptions{Consistency: ConsistencyOne}); err != nil {
		t.Errorf("ConsistencyOne read failed with 2/3 replicas up: %v", err)
	}
}

func TestInvalidOptionsRejected(t *testing.T) {
	_, nodes := testCluster(t)
	// platRing has 3 replicas; demanding 4 is impossible.
	if _, err := nodes[0].Get(ctx, platRing, "k", ReadOptions{Consistency: ConsistencyCount(4)}); err == nil {
		t.Error("R=4 on a 3-replica ring accepted")
	}
	if err := nodes[0].Put(ctx, platRing, "k", []byte("v"), nil, WriteOptions{Consistency: ConsistencyCount(4)}); err == nil {
		t.Error("W=4 on a 3-replica ring accepted")
	}
	if _, err := nodes[0].Get(ctx, platRing, "k", ReadOptions{Consistency: Consistency(-9)}); err == nil {
		t.Error("bogus consistency level accepted")
	}
	if _, err := nodes[0].MultiGet(ctx, platRing, []string{"k"}, ReadOptions{Consistency: ConsistencyCount(99)}); err == nil {
		t.Error("R=99 batch on a 3-replica ring accepted")
	}
	if err := nodes[0].MultiPut(ctx, platRing, []Entry{{Key: "k"}}, WriteOptions{Consistency: ConsistencyCount(99)}); err == nil {
		t.Error("W=99 batch on a 3-replica ring accepted")
	}
	// Valid explicit counts pass.
	if err := nodes[0].Put(ctx, platRing, "k", []byte("v"), nil, WriteOptions{Consistency: ConsistencyCount(3)}); err != nil {
		t.Errorf("W=3 on a 3-replica ring rejected: %v", err)
	}
}

// TestMidFanoutCancellationReturnsPromptly pins the headline contract:
// a caller whose context fires mid-fan-out gets its error immediately —
// not after the transport timeout — and the straggler goroutines drain
// instead of leaking (the race detector keeps this honest).
func TestMidFanoutCancellationReturnsPromptly(t *testing.T) {
	var ht *hangTransport
	nodes := instrumentedCluster(t, func(tr transport.Transport) transport.Transport {
		ht = &hangTransport{Transport: tr}
		return ht
	})
	key := remoteKey(t, nodes[0], platRing, 3)
	if err := nodes[0].Put(ctx, platRing, key, []byte("v"), nil, WriteOptions{Consistency: ConsistencyAll}); err != nil {
		t.Fatal(err)
	}
	reps, err := nodes[0].Replicas(platRing, key)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range nodes {
		if n.Name() == reps[0] {
			ht.setVictim(n.self.Addr)
		}
	}
	before := runtime.NumGoroutine()

	// ConsistencyAll must hear the hung replica, so the read blocks until
	// the context fires.
	cctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = nodes[0].Get(cctx, platRing, key, ReadOptions{Consistency: ConsistencyAll})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("cancelled read took %v", elapsed)
	}

	// A deadline behaves the same way.
	dctx, dcancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer dcancel()
	if _, err := nodes[0].Get(dctx, platRing, key, ReadOptions{Consistency: ConsistencyAll}); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want context.DeadlineExceeded", err)
	}
	// And the per-request Timeout option needs no caller-made context.
	if _, err := nodes[0].Get(ctx, platRing, key, ReadOptions{Consistency: ConsistencyAll, Timeout: 20 * time.Millisecond}); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want context.DeadlineExceeded", err)
	}

	// The straggler goroutines parked on the hung replica drain once
	// their contexts fire.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines grew %d -> %d after cancelled fan-outs", before, after)
	}
}

// TestMGetEnvelopeBound pins the batching contract: a 64-key batch over
// the plat ring's P partitions costs at most (R+1)·P request envelopes —
// independent of the key count — and an in-sync cluster triggers no
// repair traffic.
func TestMGetEnvelopeBound(t *testing.T) {
	var ct *countingTransport
	nodes := instrumentedCluster(t, func(tr transport.Transport) transport.Transport {
		ct = newCountingTransport(tr)
		return ct
	})
	keys := make([]string, 64)
	entries := make([]Entry, 64)
	for i := range keys {
		keys[i] = fmt.Sprintf("batch-%d", i)
		entries[i] = Entry{Key: keys[i], Value: []byte(fmt.Sprintf("v%d", i))}
	}
	// ConsistencyAll makes the batch land on every replica before MPut
	// returns: the no-repair assertion below needs in-sync replicas.
	if err := nodes[0].MultiPut(ctx, platRing, entries, WriteOptions{Consistency: ConsistencyAll}); err != nil {
		t.Fatal(err)
	}
	// plat ring: 4 partitions, 3 replicas, default readQ = 2.
	const parts, readQ = 4, 2

	// MPut cost: at most replicas·P write envelopes for 64 keys.
	if got, max := ct.count(kindMultiPut), 3*parts; got > max {
		t.Errorf("MultiPut sent %d envelopes for 64 keys, want <= %d", got, max)
	}

	ct.reset()
	res, err := nodes[0].MultiGet(ctx, platRing, keys, ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(keys) {
		t.Fatalf("MultiGet returned %d results, want %d", len(res), len(keys))
	}
	for i, k := range keys {
		r := res[k]
		if len(r.Values) != 1 || string(r.Values[0]) != fmt.Sprintf("v%d", i) {
			t.Fatalf("MultiGet[%s] = %q", k, r.Values)
		}
	}
	if got, max := ct.count(kindMultiGet), (readQ+1)*parts; got > max {
		t.Errorf("64-key MGet sent %d envelopes, want <= (R+1)*P = %d", got, max)
	}
	// Replicas were in sync: reading must not have produced repair
	// envelopes.
	if got := ct.count(kindMultiPut); got != 0 {
		t.Errorf("in-sync MGet sent %d repair envelopes", got)
	}
	// Reading the same batch key-by-key costs ~64·(R+1) envelopes — the
	// fan-out MGet amortizes away.
	ct.reset()
	for _, k := range keys {
		if _, err := nodes[0].Get(ctx, platRing, k, ReadOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	if batch, looped := (readQ+1)*parts, ct.count(kindMultiGet); looped < 3*batch {
		t.Errorf("looped Gets sent %d envelopes, batched bound is %d — batching should be the clear win", looped, batch)
	}
}

// TestMGetRepairsStaleReplica: the batched read path read-repairs a
// replica that lost a key, just like single-key Get.
func TestMGetRepairsStaleReplica(t *testing.T) {
	_, nodes := testCluster(t)
	if err := nodes[0].Put(ctx, platRing, "heal-batch", []byte("v1"), nil, WriteOptions{Consistency: ConsistencyAll}); err != nil {
		t.Fatal(err)
	}
	reps, err := nodes[0].Replicas(platRing, "heal-batch")
	if err != nil {
		t.Fatal(err)
	}
	var victim *Node
	for _, n := range nodes {
		if n.Name() == reps[0] {
			victim = n
		}
	}
	if _, err := victim.Engine().Drop(storageKey(platRing, "heal-batch")); err != nil {
		t.Fatal(err)
	}
	// An all-replica batched read must heal the victim.
	if _, err := nodes[0].MultiGet(ctx, platRing, []string{"heal-batch"}, ReadOptions{Consistency: ConsistencyAll}); err != nil {
		t.Fatal(err)
	}
	if got := victim.Engine().Get(storageKey(platRing, "heal-batch")); len(got) != 1 || string(got[0].Value) != "v1" {
		t.Fatalf("batched read repair did not heal the victim: %+v", got)
	}
}

// TestMultiPutLaterDuplicateWins pins the batch-apply semantics: within
// one MultiPut, a later entry for the same key supersedes an earlier
// one, matching sequential Puts.
func TestMultiPutLaterDuplicateWins(t *testing.T) {
	_, nodes := testCluster(t)
	err := nodes[0].MultiPut(ctx, goldRing, []Entry{
		{Key: "dup", Value: []byte("first")},
		{Key: "dup", Value: []byte("second")},
	}, WriteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := nodes[1].Get(ctx, goldRing, "dup", ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 1 || string(res.Values[0]) != "second" {
		t.Fatalf("after duplicate batch: %q", res.Values)
	}
}

func TestMultiGetEmptyAndUnknownRing(t *testing.T) {
	_, nodes := testCluster(t)
	res, err := nodes[0].MultiGet(ctx, goldRing, nil, ReadOptions{})
	if err != nil || len(res) != 0 {
		t.Errorf("empty MultiGet = %v, %v", res, err)
	}
	if _, err := nodes[0].MultiGet(ctx, ring.RingID{App: "x", Class: "y"}, []string{"k"}, ReadOptions{}); err == nil {
		t.Error("unknown ring batch read accepted")
	}
	if err := nodes[0].MultiPut(ctx, ring.RingID{App: "x", Class: "y"}, []Entry{{Key: "k"}}, WriteOptions{}); err == nil {
		t.Error("unknown ring batch write accepted")
	}
	if err := nodes[0].MultiPut(ctx, goldRing, nil, WriteOptions{}); err != nil {
		t.Errorf("empty MultiPut = %v", err)
	}
}
