package cluster

// The tiered read path (see DESIGN.md "The read path"): a ConsistencyOne
// Get is served without any synchronous remote envelope whenever the
// coordinator can prove its answer is as fresh as a one-replica read is
// allowed to be — either from its own store under a placement lease, or
// from a bounded hot-key cache stamped with the placement version it was
// filled under. Quorum reads keep their overlap guarantee but contact
// only the minimal replica set up front, hedging one backup request
// after a p99-tracked delay instead of paying an unconditional R+1
// fan-out. The mechanisms live here; ops.go wires them into Get.

import (
	"container/list"
	"sync"
	"sync/atomic"
	"time"

	"skute/internal/ring"
	"skute/internal/store"
	"skute/internal/telemetry"
)

// Read-lease freshness: a coordinator may serve a One-level read from
// local state only while it has heard from SOME peer within the
// suspicion window. A node partitioned away from the cluster stops
// hearing anything, so its placement view — and therefore its belief
// that it still hosts a current replica — can be arbitrarily stale; the
// contact check bounds that staleness to the same window the failure
// detector already trusts. Placement-delta invalidation is structural:
// every accepted delta rewrites the materialized ring and bumps the
// entry stamp, so the self-replica check and the cache stamp comparison
// fail immediately, with no lease bookkeeping per partition.

// touchContact records evidence that the cluster can still reach this
// node (an answered heartbeat in either direction, or an explicit
// confirmation), renewing the coordinator read lease.
func (n *Node) touchContact() {
	n.lastContact.Store(n.Now().UnixNano())
}

// contactFresh reports whether the read lease is current: the node heard
// from a peer within the suspicion window.
func (n *Node) contactFresh() bool {
	return n.Now().UnixNano()-n.lastContact.Load() <= int64(n.suspectAfter)
}

// Defaults for the read-path tunables (see Config.ReadCacheEntries and
// Config.ReadCacheTTL).
const (
	defaultReadCacheEntries = 4096
	defaultReadCacheTTL     = 500 * time.Millisecond
)

// readRepairSampleEvery is the sampling rate of async read repair on
// lease-served local reads: one in this many local reads triggers a
// background quorum read (whose standard repair machinery heals any
// divergence it finds), so a replica serving hot keys locally still
// participates in convergence without paying fan-out latency per read.
const readRepairSampleEvery = 16

// maxSampledRepairs bounds the background repair reads in flight so a
// read burst cannot stack up goroutines faster than quorum reads drain.
const maxSampledRepairs = 2

// cacheShards is the shard count of the coordinator read cache; hot-key
// workloads hammer few keys, so contention matters more than memory.
const cacheShards = 16

// cacheKey identifies one cached entry.
type cacheKey struct {
	ring ring.RingID
	part int
	key  string
}

// cacheEntry is one cached key: the merged sibling versions last
// observed by a coordinated read or write, the placement stamp they were
// observed under, and the fill time for the TTL bound.
type cacheEntry struct {
	k        cacheKey
	versions []store.Version
	pver     uint64
	porigin  string
	filled   time.Time
}

// readCache is the bounded coordinator hot-key cache: a sharded LRU
// serving repeated One-level reads of keys this node does NOT host
// without any store or network round trip. Entries are validated on
// every lookup against the partition's current placement stamp (O(1)
// invalidation by any placement delta) and a TTL that bounds staleness
// when nothing about placement changes.
//
// Coherence under concurrent fills and writes relies on two rules that
// together prevent a dominated version from resurrecting, whichever
// order the racing operations land in:
//   - a read fill MERGES with whatever entry exists (store.MergeSiblings
//     drops dominated versions), so a fill carrying pre-write data
//     cannot clobber a write-through that beat it;
//   - a coordinated write UPSERTS its version — inserting even when no
//     entry exists — so a slower fill always finds something to merge
//     against and the stale read data it carries is dominated away.
type readCache struct {
	ttl    time.Duration
	shards [cacheShards]cacheShard
}

type cacheShard struct {
	mu  sync.Mutex
	cap int
	lru *list.List // front = most recent; values are *cacheEntry
	m   map[cacheKey]*list.Element
}

// newReadCache sizes a cache for the given total entry bound.
func newReadCache(entries int, ttl time.Duration) *readCache {
	if entries <= 0 {
		entries = defaultReadCacheEntries
	}
	if ttl <= 0 {
		ttl = defaultReadCacheTTL
	}
	per := entries / cacheShards
	if per < 1 {
		per = 1
	}
	c := &readCache{ttl: ttl}
	for i := range c.shards {
		c.shards[i] = cacheShard{cap: per, lru: list.New(), m: make(map[cacheKey]*list.Element)}
	}
	return c
}

func (c *readCache) shard(k cacheKey) *cacheShard {
	h := uint64(ring.HashKey(k.key)) ^ uint64(k.part)*0x9e3779b97f4a7c15
	return &c.shards[h%cacheShards]
}

// get returns the cached versions of a key iff the entry was minted
// under the partition's CURRENT placement stamp and is within the TTL.
// Invalid entries are evicted on sight. The returned slice is shared
// with the cache (copy-on-read): callers must not mutate it.
func (c *readCache) get(k cacheKey, pver uint64, porigin string, now time.Time) ([]store.Version, bool) {
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.m[k]
	if !ok {
		return nil, false
	}
	e := el.Value.(*cacheEntry)
	if e.pver != pver || e.porigin != porigin || now.Sub(e.filled) > c.ttl {
		s.lru.Remove(el)
		delete(s.m, k)
		return nil, false
	}
	s.lru.MoveToFront(el)
	return e.versions, true
}

// fill installs the merged sibling set a coordinated read observed.
// An existing entry minted under the same placement stamp is MERGED
// with, never replaced: a concurrent write-through may already have
// installed a newer version, and replacing it with this (older) read
// snapshot would resurrect the dominated value. A stamp mismatch means
// placement moved between the read and the fill — drop the old entry
// and start over from this read.
func (c *readCache) fill(k cacheKey, versions []store.Version, pver uint64, porigin string, now time.Time) {
	if len(versions) == 0 {
		// Negative entries are not cached: an absent key is cheap to
		// re-read and caching it risks hiding a racing first write.
		return
	}
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.m[k]; ok {
		e := el.Value.(*cacheEntry)
		if e.pver == pver && e.porigin == porigin {
			e.versions = store.MergeSiblings(append(append([]store.Version(nil), e.versions...), versions...))
			e.filled = now
			s.lru.MoveToFront(el)
			return
		}
		s.lru.Remove(el)
		delete(s.m, k)
	}
	s.insert(&cacheEntry{k: k, versions: versions, pver: pver, porigin: porigin, filled: now})
}

// upsert write-throughs one coordinated write: the new version merges
// into an existing entry, or seeds a fresh one when absent (so a racing
// fill carrying pre-write data merges against it instead of installing
// stale data unopposed — see the readCache comment).
func (c *readCache) upsert(k cacheKey, v store.Version, pver uint64, porigin string, now time.Time) {
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.m[k]; ok {
		e := el.Value.(*cacheEntry)
		if e.pver == pver && e.porigin == porigin {
			e.versions = store.MergeSiblings(append(append([]store.Version(nil), e.versions...), v))
			e.filled = now
			s.lru.MoveToFront(el)
			return
		}
		s.lru.Remove(el)
		delete(s.m, k)
	}
	s.insert(&cacheEntry{k: k, versions: []store.Version{v}, pver: pver, porigin: porigin, filled: now})
}

// insert adds a fresh entry at the LRU front, evicting the coldest
// entry when the shard is full. Callers hold s.mu.
func (s *cacheShard) insert(e *cacheEntry) {
	s.m[e.k] = s.lru.PushFront(e)
	for s.lru.Len() > s.cap {
		old := s.lru.Back()
		s.lru.Remove(old)
		delete(s.m, old.Value.(*cacheEntry).k)
	}
}

// len reports the total cached entries (tests and stats).
func (c *readCache) len() int {
	total := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		total += s.lru.Len()
		s.mu.Unlock()
	}
	return total
}

// Hedge-delay tracking: quorum reads contact exactly R replicas first
// and fire ONE backup request only after the hedge delay — the p99 of
// recent healthy read RTTs — so a single slow replica costs roughly
// p99(healthy) instead of its own latency, while the common case sends
// zero extra envelopes.
const (
	hedgeRefreshInterval = time.Second
	hedgeMinDelay        = 25 * time.Microsecond
	hedgeMaxDelay        = 100 * time.Millisecond
	hedgeDefaultDelay    = time.Millisecond
	hedgeMinSamples      = 32
)

// hedgeTracker owns the read-RTT histogram and a cached hedge delay
// refreshed from its p99 at most once per hedgeRefreshInterval, so the
// hot path loads one atomic instead of walking histogram buckets.
//
// Only RTTs of responses that were ACCEPTED toward a read quorum are
// recorded: a straggler that loses the race drains into the fan-out's
// buffered channel after the read returned and never reaches the
// tracker, so a persistently slow replica cannot poison the delay that
// is supposed to route around it.
type hedgeTracker struct {
	hist    *telemetry.Histogram
	delayNS atomic.Int64
	lastNS  atomic.Int64 // unix nanos of the last refresh
}

func newHedgeTracker(hist *telemetry.Histogram) *hedgeTracker {
	t := &hedgeTracker{hist: hist}
	t.delayNS.Store(int64(hedgeDefaultDelay))
	return t
}

// observe records one accepted remote read RTT.
func (t *hedgeTracker) observe(d time.Duration) {
	if t == nil {
		return
	}
	t.hist.Record(d.Nanoseconds())
}

// delay returns the current hedge delay, refreshing the cached value
// from the histogram's p99 when it is stale. A losing CAS means another
// reader is refreshing; use the cached value.
func (t *hedgeTracker) delay(now time.Time) time.Duration {
	if t == nil {
		return hedgeDefaultDelay
	}
	nowNS := now.UnixNano()
	last := t.lastNS.Load()
	if nowNS-last >= int64(hedgeRefreshInterval) && t.lastNS.CompareAndSwap(last, nowNS) {
		if t.hist.Count() >= hedgeMinSamples {
			p99 := t.hist.Snapshot().Quantile(0.99)
			if p99 < int64(hedgeMinDelay) {
				p99 = int64(hedgeMinDelay)
			}
			if p99 > int64(hedgeMaxDelay) {
				p99 = int64(hedgeMaxDelay)
			}
			t.delayNS.Store(p99)
		}
	}
	return time.Duration(t.delayNS.Load())
}
