package cluster

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Decision trace: every node keeps a bounded in-memory ring of its
// control-plane events — member-state transitions, placement proposals
// and merges, epoch decisions, joins, partition transfers. The ring is
// scraped over GET /trace on the admin endpoint (see internal/httpadmin)
// and correlated across nodes by the scenario harness, so a failed
// invariant in a multi-process run is debuggable from the dump alone:
// which node suspected whom, which delta evicted which replica, and in
// what order, without re-running anything.

// defaultTraceEvents is the ring capacity when Config.TraceEvents is 0.
const defaultTraceEvents = 1024

// TraceEvent is one timestamped control-plane decision.
type TraceEvent struct {
	T      time.Time `json:"t"`
	Node   string    `json:"node"`
	Kind   string    `json:"kind"`
	Detail string    `json:"detail"`
}

// String renders one correlated-dump line.
func (e TraceEvent) String() string {
	return fmt.Sprintf("%s %-10s %-10s %s", e.T.Format("15:04:05.000"), e.Node, e.Kind, e.Detail)
}

// TraceRing is a fixed-capacity, concurrency-safe event ring. The
// newest events win: once the ring is full every Add overwrites the
// oldest entry, so the memory cost is bounded no matter how long the
// node runs. A nil ring discards events.
type TraceRing struct {
	mu   sync.Mutex
	node string
	buf  []TraceEvent
	next int
	full bool
	seen uint64
}

// NewTraceRing returns a ring stamped with the node name; capacity <= 0
// selects the default.
func NewTraceRing(node string, capacity int) *TraceRing {
	if capacity <= 0 {
		capacity = defaultTraceEvents
	}
	return &TraceRing{node: node, buf: make([]TraceEvent, capacity)}
}

// Add records one event.
func (r *TraceRing) Add(kind, format string, args ...any) {
	if r == nil {
		return
	}
	e := TraceEvent{T: time.Now(), Kind: kind, Detail: fmt.Sprintf(format, args...)}
	r.mu.Lock()
	e.Node = r.node
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next, r.full = 0, true
	}
	r.seen++
	r.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (r *TraceRing) Events() []TraceEvent {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []TraceEvent
	if r.full {
		out = append(out, r.buf[r.next:]...)
	}
	out = append(out, r.buf[:r.next]...)
	return out
}

// Dropped reports how many events the ring has overwritten.
func (r *TraceRing) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	retained := uint64(r.next)
	if r.full {
		retained = uint64(len(r.buf))
	}
	return r.seen - retained
}

// Trace exposes the node's decision-trace ring.
func (n *Node) Trace() *TraceRing { return n.trace }

// MergeTraces interleaves per-node traces into one chronological dump —
// the correlated view a scenario failure prints. The sort is stable, so
// same-timestamp events keep their per-node order.
func MergeTraces(traces ...[]TraceEvent) []TraceEvent {
	var out []TraceEvent
	for _, t := range traces {
		out = append(out, t...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].T.Before(out[j].T) })
	return out
}
