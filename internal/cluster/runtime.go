package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"skute/internal/agent"
	"skute/internal/economy"
	"skute/internal/gossip"
)

// RuntimeConfig configures the autonomous loops a node runs between
// Start and Stop. Each loop fires on its own jittered interval — nodes
// booted in lockstep desynchronize instead of gossiping in waves — and
// every round runs under a context bounded by the loop's interval, so
// a stalled peer can never wedge a loop past its next tick.
type RuntimeConfig struct {
	// Heartbeat is the liveness announcement interval; each beat
	// piggybacks the placement digest (default 2s).
	Heartbeat time.Duration
	// Reconcile is the proactive gossip-reconcile interval: pull
	// placement deltas from one random alive peer (0 disables; the
	// digest check riding incoming heartbeats still reconciles).
	Reconcile time.Duration
	// AntiEntropy is the Merkle anti-entropy round interval
	// (0 disables).
	AntiEntropy time.Duration
	// Epoch is the economic epoch length: announce rent, then run the
	// Section II-C agents (0 disables the economy).
	Epoch time.Duration
	// Jitter is the per-tick interval spread fraction in [0,1);
	// 0 selects the default 0.1, negative disables jitter entirely
	// (deterministic intervals, mainly for tests).
	Jitter float64
	// Agent and Rent parameterize the economy; zero values select the
	// package defaults.
	Agent agent.Params
	Rent  economy.RentParams
	// Logf receives loop errors and epoch reports (nil discards).
	Logf func(format string, args ...any)
}

// withDefaults fills the zero values.
func (rc RuntimeConfig) withDefaults() RuntimeConfig {
	if rc.Heartbeat <= 0 {
		rc.Heartbeat = 2 * time.Second
	}
	if rc.Jitter == 0 {
		rc.Jitter = 0.1
	} else if rc.Jitter < 0 {
		rc.Jitter = 0 // explicit opt-out: gossip.Jittered(d, 0, …) = d
	}
	if rc.Agent == (agent.Params{}) {
		rc.Agent = agent.DefaultParams()
	}
	if rc.Rent == (economy.RentParams{}) {
		rc.Rent = economy.DefaultRentParams()
	}
	if rc.Logf == nil {
		rc.Logf = func(string, ...any) {}
	}
	return rc
}

// runState tracks a node's running loops.
type runState struct {
	mu     sync.Mutex
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// Start launches the node's autonomous runtime: the heartbeat,
// gossip-reconcile, anti-entropy and economic-epoch loops, each on its
// own jittered ticker. The loops stop when ctx is cancelled or Stop is
// called; after Stop the node can be started again (skute.Cluster uses
// that to model process death and restart during churn). Start returns
// an error if the runtime is already running.
func (n *Node) Start(ctx context.Context, rc RuntimeConfig) error {
	rc = rc.withDefaults()
	n.run.mu.Lock()
	defer n.run.mu.Unlock()
	if n.run.cancel != nil {
		return fmt.Errorf("cluster: node %s runtime already running", n.self.Name)
	}
	rctx, cancel := context.WithCancel(ctx)
	n.run.cancel = cancel
	n.trace.Add("runtime", "start heartbeat=%s reconcile=%s anti-entropy=%s epoch=%s",
		rc.Heartbeat, rc.Reconcile, rc.AntiEntropy, rc.Epoch)

	n.startLoop(rctx, rc.Heartbeat, rc.Jitter, 1, func(cctx context.Context, _ int) {
		n.SendHeartbeats(cctx)
		n.RunMembershipRound(cctx)
		n.evictDeadPeerConns()
	})
	n.startLoop(rctx, rc.Reconcile, rc.Jitter, 2, func(cctx context.Context, _ int) {
		peer, ok := n.pickReconcilePeer()
		if !ok {
			return
		}
		if _, err := n.reconcileWith(cctx, peer, n.pmap.Digest()); err != nil {
			rc.Logf("cluster %s: reconcile with %s: %v", n.self.Name, peer, err)
		}
	})
	n.startLoop(rctx, rc.AntiEntropy, rc.Jitter, 3, func(cctx context.Context, round int) {
		repaired, err := n.RunAntiEntropy(cctx, round)
		if err != nil {
			rc.Logf("cluster %s: anti-entropy: %v", n.self.Name, err)
		}
		if repaired > 0 {
			rc.Logf("cluster %s: anti-entropy repaired %d keys", n.self.Name, repaired)
		}
	})
	n.startLoop(rctx, rc.Epoch, rc.Jitter, 4, func(cctx context.Context, _ int) {
		if _, _, err := n.AnnounceRent(cctx, rc.Rent); err != nil {
			rc.Logf("cluster %s: announce rent: %v", n.self.Name, err)
			return
		}
		rep, err := n.RunEconomicEpoch(cctx, rc.Agent, rc.Rent)
		if err != nil {
			rc.Logf("cluster %s: economic epoch: %v", n.self.Name, err)
			return
		}
		if rep.Repairs+rep.Replications+rep.Migrations+rep.Suicides > 0 {
			rc.Logf("cluster %s: epoch board=%s rent=%.2f repairs=%d repl=%d migr=%d suicides=%d",
				n.self.Name, rep.Board, rep.Rent, rep.Repairs, rep.Replications, rep.Migrations, rep.Suicides)
		}
	})
	return nil
}

// startLoop runs fn every jittered `every` until the context dies; a
// non-positive interval disables the loop. Each round gets a context
// bounded by the interval and its round number. The seed offsets the
// per-loop rng so the loops of one node don't share a jitter sequence.
func (n *Node) startLoop(ctx context.Context, every time.Duration, jitter float64, seed int64, fn func(ctx context.Context, round int)) {
	if every <= 0 {
		return
	}
	n.run.wg.Add(1)
	rng := rand.New(rand.NewSource(int64(n.selfI)*31 + seed))
	go func() {
		defer n.run.wg.Done()
		t := time.NewTimer(gossip.Jittered(every, jitter, rng))
		defer t.Stop()
		for round := 0; ; round++ {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
			}
			cctx, cancel := context.WithTimeout(ctx, every)
			fn(cctx, round)
			cancel()
			t.Reset(gossip.Jittered(every, jitter, rng))
		}
	}()
}

// evictDeadPeerConns drops pooled transport connections to peers the
// failure detector currently considers dead (pool lifecycle riding the
// heartbeat loop): sockets to a failed node are released right away
// instead of lingering until the idle reaper finds them, and a revived
// peer gets a clean fresh dial. A no-op for transports without a pool
// (the in-memory mesh).
func (n *Node) evictDeadPeerConns() {
	ev, ok := n.tr.(interface{ Evict(addr string) })
	if !ok {
		return
	}
	for _, m := range n.mt.Members() {
		if m.Info.Name != n.self.Name && !n.alive(m.Info.Name) {
			ev.Evict(m.Info.Addr)
		}
	}
}

// pickReconcilePeer selects one random alive peer for the proactive
// reconcile loop.
func (n *Node) pickReconcilePeer() (string, bool) {
	var peers []string
	for _, name := range n.aliveNames() {
		if name != n.self.Name {
			peers = append(peers, name)
		}
	}
	if len(peers) == 0 {
		return "", false
	}
	n.mu.Lock()
	pick := peers[n.rng.Intn(len(peers))]
	n.mu.Unlock()
	return pick, true
}

// Stop halts the runtime loops and waits for in-flight rounds to
// finish. It is a no-op when the runtime is not running; a stopped node
// can be started again.
func (n *Node) Stop() {
	n.run.mu.Lock()
	cancel := n.run.cancel
	n.run.cancel = nil
	n.run.mu.Unlock()
	if cancel == nil {
		return
	}
	cancel()
	n.run.wg.Wait()
	n.trace.Add("runtime", "stop")
}
