package cluster

import (
	"context"
	"fmt"
	"sort"

	"skute/internal/agent"
	"skute/internal/availability"
	"skute/internal/economy"
	"skute/internal/parallel"
	"skute/internal/ring"
	"skute/internal/topology"
	"skute/internal/transport"
)

// EpochReport summarizes what one economic epoch did on this node.
type EpochReport struct {
	Board        string
	Rent         float64
	Replications int
	Migrations   int
	Suicides     int
	Repairs      int // availability-driven replications
}

// AnnounceRent computes this node's virtual rent (Eq. 1) from its storage
// usage and the query traffic since the last epoch, and announces it to
// the board (the lowest-named alive node). It returns the rent and the
// board's name. The context bounds the announcement RPC.
func (n *Node) AnnounceRent(ctx context.Context, params economy.RentParams) (float64, string, error) {
	board, ok := boardOf(n.aliveNames())
	if !ok {
		return 0, "", fmt.Errorf("cluster: no alive nodes to elect a board")
	}
	n.qmu.Lock()
	var q float64
	for _, c := range n.queries {
		q += c
	}
	n.qmu.Unlock()
	usage := float64(n.eng.Bytes()) / float64(n.self.Capacity)
	load := q / n.self.QueryCapacity
	rent := params.Rent(params.UsagePrice(n.self.MonthlyRent), usage, load)

	env := transport.Envelope{Kind: kindAnnounce, Payload: encode(announceReq{Node: n.self.Name, Rent: rent})}
	if board == n.self.Name {
		n.mu.Lock()
		n.rents[n.self.Name] = rent
		n.mu.Unlock()
	} else {
		info, _ := n.info(board)
		if _, err := n.tr.Call(ctx, info.Addr, env); err != nil {
			return rent, board, fmt.Errorf("cluster: announce to board %s: %w", board, err)
		}
	}
	return rent, board, nil
}

// fetchRents pulls the rent board.
func (n *Node) fetchRents(ctx context.Context) (map[string]float64, string, error) {
	board, ok := boardOf(n.aliveNames())
	if !ok {
		return nil, "", fmt.Errorf("cluster: no alive nodes to elect a board")
	}
	if board == n.self.Name {
		n.mu.RLock()
		out := make(map[string]float64, len(n.rents))
		for k, v := range n.rents {
			out[k] = v
		}
		n.mu.RUnlock()
		return out, board, nil
	}
	info, _ := n.info(board)
	resp, err := n.tr.Call(ctx, info.Addr, transport.Envelope{Kind: kindRents})
	if err != nil {
		return nil, board, err
	}
	var rr rentsResp
	if err := decode(resp.Payload, &rr); err != nil {
		return nil, board, err
	}
	return rr.Rents, board, nil
}

// RunEconomicEpoch closes the epoch on this node: it runs the Section
// II-C decision process for every virtual node hosted here, using the
// rents on the board, and executes the decisions across the cluster
// (replicate = adopt on the target, migrate = adopt + local drop, suicide
// = local drop). Every replica-set change is stamped as a versioned
// placement delta — applied locally, pushed to alive peers, healed onto
// stragglers by the gossip digest exchange. Query counters reset
// afterwards. Callers should AnnounceRent on every node first. The
// context bounds all the epoch's RPCs (rent fetch, adopts, delta pushes).
//
// Hosted vnodes manage disjoint partitions, so their decisions run
// concurrently on a pool of Config.EpochWorkers workers; replica-table
// mutations stay serialized behind the node lock.
func (n *Node) RunEconomicEpoch(ctx context.Context, params agent.Params, rentParams economy.RentParams) (EpochReport, error) {
	rents, board, err := n.fetchRents(ctx)
	if err != nil {
		return EpochReport{}, err
	}
	rep := EpochReport{Board: board}
	rep.Rent = rents[n.self.Name]
	minRent := 0.0
	first := true
	for _, r := range rents {
		if first || r < minRent {
			minRent, first = r, false
		}
	}

	// Deterministic enumeration of hosted vnodes.
	type hosted struct {
		id   ring.RingID
		part int
	}
	var mine []hosted
	n.mu.RLock()
	for _, rid := range n.rings.IDs() {
		r := n.rings.Ring(rid)
		for _, p := range r.Partitions() {
			if p.HasReplica(ring.ServerID(n.selfI)) {
				mine = append(mine, hosted{rid, p.ID})
			}
		}
	}
	n.mu.RUnlock()
	sort.Slice(mine, func(i, j int) bool {
		if mine[i].id != mine[j].id {
			return mine[i].id.String() < mine[j].id.String()
		}
		return mine[i].part < mine[j].part
	})

	// One result slot per vnode: workers never contend on the report.
	type outcome struct{ repairs, replications, migrations, suicides int }
	outcomes := make([]outcome, len(mine))
	parallel.ForEach(len(mine), n.epochWorkers, func(i int) {
		h := mine[i]
		_, p, err := n.partition(h.id, h.part)
		if err != nil {
			return
		}
		spec := n.specs[h.id]
		hosts := n.hostsOf(p)
		cands := n.candidatesFor(p, rents)
		key := vnodeKey(h.id, h.part)
		n.mu.Lock()
		st, ok := n.ledgers[key]
		if !ok {
			st = &ledgerState{}
			n.ledgers[key] = st
		}
		n.mu.Unlock()
		n.qmu.Lock()
		queries := n.queries[key]
		n.qmu.Unlock()

		v := agent.VNode{
			Ring: h.id, Partition: h.part, Server: ring.ServerID(n.selfI),
			Ledger: st.ledger,
		}
		d := v.Decide(params, agent.Inputs{
			Threshold:  availability.ThresholdForReplicas(spec.Replicas),
			Hosts:      hosts,
			Candidates: cands,
			Queries:    queries,
			// Read per decision, not hoisted: vnodes that already shed
			// data this epoch relieve the pressure later deciders see,
			// the same feedback the sequential loop had (Bytes is an
			// atomic sum, so this stays cheap).
			StoragePressure: float64(n.eng.Bytes()) / float64(n.self.Capacity),
			G:               1,
			Rent:            rents[n.self.Name],
			MinRent:         minRent,
			ConsistencyCost: 0.1 * float64(len(hosts)),
		})
		st.ledger = v.Ledger

		switch d.Action {
		case agent.Replicate:
			repair := availability.Of(hosts) < availability.ThresholdForReplicas(spec.Replicas)
			if err := n.executeAdopt(ctx, h.id, h.part, d.Target); err == nil {
				if repair {
					outcomes[i].repairs = 1
				} else {
					outcomes[i].replications = 1
				}
				st.ledger.Reset()
			}
		case agent.Migrate:
			if err := n.executeAdopt(ctx, h.id, h.part, d.Target); err == nil {
				if del, ok := n.propose(h.id, h.part, "", n.self.Name); ok {
					n.disseminate(ctx, del)
					// Drain writes acked after the adopt pull's snapshot
					// into the survivors before deleting the local copy.
					n.handoffSync(ctx, h.id, h.part)
					n.dropIfEvicted(h.id, h.part)
					outcomes[i].migrations = 1
				} else {
					// The removal was a no-op (a concurrent delta beat
					// us to it, or we were the last listed replica):
					// the partition only gained the adopted copy.
					outcomes[i].replications = 1
				}
			}
		case agent.Suicide:
			n.mu.RLock()
			lone := len(p.Replicas) <= 1
			n.mu.RUnlock()
			if !lone {
				// propose refuses to stamp an empty replica set, so a
				// suicide racing another removal of the same partition
				// degrades to a no-op instead of orphaning it.
				if del, ok := n.propose(h.id, h.part, "", n.self.Name); ok {
					n.disseminate(ctx, del)
					// Same drain as Migrate: a suicide may hold the only
					// copy of a write it acknowledged moments ago.
					n.handoffSync(ctx, h.id, h.part)
					n.dropIfEvicted(h.id, h.part)
					outcomes[i].suicides = 1
				}
			}
		}
	})
	for _, o := range outcomes {
		rep.Repairs += o.repairs
		rep.Replications += o.replications
		rep.Migrations += o.migrations
		rep.Suicides += o.suicides
	}
	n.counters.EpochRepairs.Add(int64(rep.Repairs))
	n.counters.EpochReplications.Add(int64(rep.Replications))
	n.counters.EpochMigrations.Add(int64(rep.Migrations))
	n.counters.EpochSuicides.Add(int64(rep.Suicides))
	if rep.Repairs+rep.Replications+rep.Migrations+rep.Suicides > 0 {
		n.trace.Add("epoch", "board=%s rent=%.3f repairs=%d replications=%d migrations=%d suicides=%d",
			board, rep.Rent, rep.Repairs, rep.Replications, rep.Migrations, rep.Suicides)
	}

	n.qmu.Lock()
	n.queries = make(map[string]float64)
	n.qmu.Unlock()
	return rep, nil
}

// executeAdopt asks the target node to pull a replica of the partition
// from this node, then stamps and disseminates the versioned delta
// adding the target to the replica set.
func (n *Node) executeAdopt(ctx context.Context, id ring.RingID, part int, target ring.ServerID) error {
	name := n.nodeName(target)
	if !n.alive(name) {
		return fmt.Errorf("cluster: adopt target %s down", name)
	}
	info, _ := n.info(name)
	_, err := n.tr.Call(ctx, info.Addr, transport.Envelope{
		Kind:    kindAdopt,
		Payload: encode(adoptReq{Ring: id, Part: part, FromAddr: n.self.Addr}),
	})
	if err != nil {
		return err
	}
	n.trace.Add("adopt", "%s#%d -> %s", id, part, name)
	if d, ok := n.propose(id, part, name, ""); ok {
		n.disseminate(ctx, d)
	}
	return nil
}

// memberHost resolves one replica's availability view from the member
// table; members that are dead, suspect or still in probation
// contribute nothing.
func (n *Node) memberHost(id ring.ServerID) (availability.Host, bool) {
	name := n.nodeName(id)
	if name == "" || !n.alive(name) {
		return availability.Host{}, false
	}
	mi, ok := n.mt.Info(name)
	if !ok {
		return availability.Host{}, false
	}
	loc, err := topology.ParsePath(mi.LocPath)
	if err != nil {
		return availability.Host{}, false
	}
	return availability.Host{ID: id, Loc: loc, Conf: mi.Confidence}, true
}

// hostsOf builds the availability view of a partition's replica set,
// excluding replicas on members the table considers down: a failed
// server no longer contributes diversity, which is exactly what drives
// the repair replication of Section II-C.
func (n *Node) hostsOf(p *ring.Partition) []availability.Host {
	n.mu.RLock()
	defer n.mu.RUnlock()
	hosts := make([]availability.Host, 0, len(p.Replicas))
	for _, id := range p.Replicas {
		if h, ok := n.memberHost(id); ok {
			hosts = append(hosts, h)
		}
	}
	return hosts
}

// candidatesFor lists alive members not hosting the partition, priced
// from the board (members without an announced rent are skipped). The
// member table — not the boot descriptor — is the candidate source, so
// freshly joined nodes become adoption targets as soon as their rent
// lands on the board. The replica table is read under the node lock:
// peers broadcast assignment changes concurrently with epoch decisions.
func (n *Node) candidatesFor(p *ring.Partition, rents map[string]float64) []availability.Candidate {
	n.mu.RLock()
	defer n.mu.RUnlock()
	var cands []availability.Candidate
	for _, m := range n.mt.Members() {
		name := m.Info.Name
		if !n.alive(name) {
			continue
		}
		id := n.registerName(name)
		if p.HasReplica(id) {
			continue
		}
		rent, ok := rents[name]
		if !ok {
			continue
		}
		loc, err := topology.ParsePath(m.Info.LocPath)
		if err != nil {
			continue
		}
		cands = append(cands, availability.Candidate{
			Host: availability.Host{ID: id, Loc: loc, Conf: m.Info.Confidence},
			Rent: rent,
			G:    1,
		})
	}
	return cands
}

// Availability reports Eq. 2 for every partition of a ring, as seen from
// this node's replica table.
func (n *Node) Availability(id ring.RingID) (map[int]float64, error) {
	n.mu.RLock()
	r := n.rings.Ring(id)
	n.mu.RUnlock()
	if r == nil {
		return nil, fmt.Errorf("%w %s", ErrUnknownRing, id)
	}
	out := make(map[int]float64, r.Len())
	for _, p := range r.Partitions() {
		out[p.ID] = availability.Of(n.hostsOf(p))
	}
	return out, nil
}

// Stats is an observability snapshot of one node.
type Stats struct {
	Name        string
	Keys        int
	Bytes       int64
	Capacity    int64
	AlivePeers  []string
	Hosted      int
	Rings       []RingStats
	MonthlyRent float64
	// PlacementDigest folds the per-ring placement digests into one
	// comparable value: nodes agreeing on it hold identical replica
	// maps, the convergence check scenario invariants poll for.
	PlacementDigest uint64
}

// RingStats summarizes one ring from this node's replica table.
type RingStats struct {
	App        string
	Class      string
	Partitions int
	Replicas   int // SLA target
	Threshold  float64
	Violations int
	MinAvail   float64
}

// Stats gathers the node's observability snapshot.
func (n *Node) Stats() Stats {
	st := Stats{
		Name:        n.self.Name,
		Keys:        n.eng.Len(),
		Bytes:       n.eng.Bytes(),
		Capacity:    n.self.Capacity,
		AlivePeers:  n.aliveNames(),
		MonthlyRent: n.self.MonthlyRent,
	}
	st.PlacementDigest = n.pmap.Digest().Sum()
	st.Hosted, _ = n.HostedCount(n.self.Name)
	for _, spec := range n.cfg.Rings {
		rs := RingStats{
			App: spec.App, Class: spec.Class,
			Replicas:  spec.Replicas,
			Threshold: availability.ThresholdForReplicas(spec.Replicas),
			MinAvail:  -1,
		}
		avails, err := n.Availability(spec.ID())
		if err == nil {
			for _, av := range avails {
				rs.Partitions++
				if av < rs.Threshold {
					rs.Violations++
				}
				if rs.MinAvail < 0 || av < rs.MinAvail {
					rs.MinAvail = av
				}
			}
		}
		st.Rings = append(st.Rings, rs)
	}
	return st
}

// HostedCount reports how many partition replicas across all rings are
// currently assigned to the named peer, per this node's replica table.
func (n *Node) HostedCount(name string) (int, error) {
	id, ok := n.nodeID(name)
	if !ok {
		return 0, fmt.Errorf("cluster: unknown node %q", name)
	}
	n.mu.RLock()
	defer n.mu.RUnlock()
	total := 0
	for _, rid := range n.rings.IDs() {
		for _, p := range n.rings.Ring(rid).Partitions() {
			if p.HasReplica(id) {
				total++
			}
		}
	}
	return total, nil
}

// Replicas exposes the replica names of the partition holding a key —
// observability for tests and the CLI.
func (n *Node) Replicas(id ring.RingID, key string) ([]string, error) {
	n.mu.RLock()
	r := n.rings.Ring(id)
	n.mu.RUnlock()
	if r == nil {
		return nil, fmt.Errorf("%w %s", ErrUnknownRing, id)
	}
	n.mu.RLock()
	p := r.Lookup(ring.HashKey(key))
	n.mu.RUnlock()
	return n.replicasOf(p), nil
}
