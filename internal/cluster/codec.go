package cluster

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"io"
	"reflect"
	"sync"
	"sync/atomic"
)

// Payload codec: long-lived, pooled gob encoder/decoder sessions.
//
// The old encode/decode built a fresh gob encoder or decoder per call,
// so every wire payload carried the full type descriptors and every
// decode re-parsed and re-compiled them — profiling showed descriptor
// handling alone was ~40% of a quorum operation's CPU. A session is a
// gob stream primed once with the zero value of its payload type: after
// priming, the encoder emits value-only bytes and the decoder keeps its
// compiled engines, so type descriptors cross a process boundary
// exactly once per session prime instead of once per call.
//
// The sender primes its encoder by encoding a zero value into the
// discard pile; the receiver primes its decoder by consuming the
// canonical prime bytes computed locally from the same types. No
// handshake is needed, but this only works because the wire-type
// registry is PINNED at init (next comment) — both ends then emit
// byte-identical primes. Sessions are pooled per payload type with
// sync.Pool, making the steady-state cost of encode/decode a single
// value message with no descriptor work at all.

// Cross-process determinism. Gob assigns wire type IDs from a
// process-GLOBAL registry in first-use order, so two binaries that
// first encode different types (skuted's first payload is a heartbeat,
// skutectl's a client get) would bake different IDs into their
// value-only messages. registerWireTypes pins the registry: every wire
// payload type is registered at package init, in one canonical order,
// in every binary that imports this package — so all primes agree
// byte-for-byte across processes. Every payload also carries a marker
// byte whose low bits fingerprint the sender's canonical prime for the
// type, so any future drift (a wire type missing from this list, or
// mixed binaries) fails loudly as a codec mismatch instead of
// corrupting silently.
//
// ADD NEW WIRE PAYLOAD TYPES TO THIS LIST. The cross-process codec
// test re-execs the test binary to catch a forgotten registration.
var wirePayloadPrototypes = []any{
	getReq{}, getResp{}, putReq{}, putResp{},
	heartbeatReq{},
	leavesReq{}, leavesResp{}, kv{},
	adoptReq{}, announceReq{}, rentsResp{},
	deltaReq{}, deltaPullReq{}, deltaPullResp{},
	putItem{}, multiGetReq{}, multiGetResp{}, multiPutReq{},
	clientGetReq{}, clientGetResp{}, clientPutReq{},
	clientMGetReq{}, clientKV{}, clientMGetResp{}, clientMPutReq{},
	joinReq{}, joinResp{}, memberPullReq{}, memberPullResp{},
	memberDeltaReq{}, fetchChunkReq{}, fetchChunkResp{},
	MemberRecord{}, clientMembersResp{},
	heartbeatResp{},
}

func init() {
	enc := gob.NewEncoder(io.Discard)
	for _, v := range wirePayloadPrototypes {
		if err := enc.Encode(v); err != nil {
			panic(fmt.Sprintf("cluster: register wire type %T: %v", v, err))
		}
	}
}

// Payload markers: the first byte of every encoded payload. 0x00 is
// the legacy full-descriptor codec; a byte with the high bit set is
// the session codec, its low 7 bits fingerprinting the sender's
// canonical prime bytes for the payload type.
const legacyMarker = 0x00

// legacyPayloadCodec switches encode/decode back to fresh gob streams
// per call — full descriptors in every payload, the pre-session cost
// profile. Only the wire-path benchmarks flip it, to keep the
// checked-in fresh-dial baseline faithful to the old hot path end to
// end; it must never be toggled while traffic is in flight (sessions
// and legacy payloads are not interchangeable on the wire).
var legacyPayloadCodec atomic.Bool

// primeInfo caches, per payload type, the canonical bytes a fresh gob
// stream emits for the type's descriptors plus one zero value, and the
// marker byte fingerprinting them.
type primeInfo struct {
	bytes  []byte
	marker byte
}

var primes sync.Map // reflect.Type -> primeInfo

func primeFor(t reflect.Type) primeInfo {
	if p, ok := primes.Load(t); ok {
		return p.(primeInfo)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).EncodeValue(reflect.New(t).Elem()); err != nil {
		panic(fmt.Sprintf("cluster: prime %v: %v", t, err)) // all payloads are gob-safe by construction
	}
	h := fnv.New32a()
	h.Write(buf.Bytes())
	pi := primeInfo{bytes: buf.Bytes(), marker: 0x80 | byte(h.Sum32()&0x7f)}
	p, _ := primes.LoadOrStore(t, pi)
	return p.(primeInfo)
}

// encSession is a primed encoder stream: Encode after priming emits
// value-only bytes into buf.
type encSession struct {
	buf bytes.Buffer
	enc *gob.Encoder
}

// decSession is a primed decoder stream fed one payload at a time
// through a refillable reader; its compiled engines persist across
// payloads.
type decSession struct {
	src payloadReader
	dec *gob.Decoder
}

// payloadReader feeds the session decoder exactly one payload per
// Decode. It implements io.ByteReader so gob uses it directly instead
// of wrapping it in a bufio.Reader whose read-ahead would cross payload
// boundaries.
type payloadReader struct {
	buf []byte
	off int
}

func (r *payloadReader) Read(p []byte) (int, error) {
	if r.off >= len(r.buf) {
		return 0, io.EOF
	}
	n := copy(p, r.buf[r.off:])
	r.off += n
	return n, nil
}

func (r *payloadReader) ReadByte() (byte, error) {
	if r.off >= len(r.buf) {
		return 0, io.EOF
	}
	c := r.buf[r.off]
	r.off++
	return c, nil
}

var (
	encPools sync.Map // reflect.Type -> *sync.Pool of *encSession
	decPools sync.Map // reflect.Type -> *sync.Pool of *decSession
)

func encPoolFor(t reflect.Type) *sync.Pool {
	if p, ok := encPools.Load(t); ok {
		return p.(*sync.Pool)
	}
	pool := &sync.Pool{New: func() any {
		s := &encSession{}
		s.enc = gob.NewEncoder(&s.buf)
		if err := s.enc.EncodeValue(reflect.New(t).Elem()); err != nil {
			panic(fmt.Sprintf("cluster: prime encoder %v: %v", t, err))
		}
		s.buf.Reset() // discard the priming bytes; descriptors are now "sent"
		return s
	}}
	p, _ := encPools.LoadOrStore(t, pool)
	return p.(*sync.Pool)
}

func decPoolFor(t reflect.Type) *sync.Pool {
	if p, ok := decPools.Load(t); ok {
		return p.(*sync.Pool)
	}
	prime := primeFor(t).bytes
	pool := &sync.Pool{New: func() any {
		s := &decSession{}
		s.dec = gob.NewDecoder(&s.src)
		s.src.buf = prime
		if err := s.dec.DecodeValue(reflect.New(t).Elem()); err != nil {
			panic(fmt.Sprintf("cluster: prime decoder %v: %v", t, err))
		}
		return s
	}}
	p, _ := decPools.LoadOrStore(t, pool)
	return p.(*sync.Pool)
}

// encode serializes a wire payload through its type's pooled session:
// one marker byte, then value-only bytes with no per-call descriptors.
// The returned slice is an exact-size copy, so the session buffer never
// escapes.
func encode(v any) []byte {
	if legacyPayloadCodec.Load() {
		var buf bytes.Buffer
		buf.WriteByte(legacyMarker)
		if err := gob.NewEncoder(&buf).Encode(v); err != nil {
			panic(fmt.Sprintf("cluster: encode %T: %v", v, err))
		}
		return buf.Bytes()
	}
	t := reflect.TypeOf(v)
	marker := primeFor(t).marker
	pool := encPoolFor(t)
	s := pool.Get().(*encSession)
	s.buf.Reset()
	if err := s.enc.Encode(v); err != nil {
		// The stream state is unknown after a failed encode; drop the
		// session rather than repool it.
		panic(fmt.Sprintf("cluster: encode %T: %v", v, err)) // all payloads are gob-safe by construction
	}
	out := make([]byte, 1+s.buf.Len())
	out[0] = marker
	copy(out[1:], s.buf.Bytes())
	pool.Put(s)
	return out
}

// decode deserializes a wire payload through its type's pooled session.
// v must be a pointer to the concrete payload type. The marker byte
// routes between the session and legacy codecs and rejects a sender
// whose canonical prime disagrees with ours (codec drift — e.g. a wire
// type missing from wirePayloadPrototypes) instead of misdecoding. A
// failed decode discards the session (its stream state is unknown) and
// reports the error.
func decode(p []byte, v any) error {
	if len(p) == 0 {
		return fmt.Errorf("cluster: empty payload for %T", v)
	}
	marker, body := p[0], p[1:]
	if marker == legacyMarker {
		return gob.NewDecoder(bytes.NewReader(body)).Decode(v)
	}
	t := reflect.TypeOf(v)
	if t.Kind() != reflect.Pointer {
		return fmt.Errorf("cluster: decode into non-pointer %T", v)
	}
	if want := primeFor(t.Elem()).marker; marker != want {
		return fmt.Errorf("cluster: payload codec mismatch for %v (marker %#x, want %#x): sender and receiver disagree on the canonical wire-type registry", t.Elem(), marker, want)
	}
	pool := decPoolFor(t.Elem())
	s := pool.Get().(*decSession)
	s.src.buf = body
	s.src.off = 0
	if err := s.dec.Decode(v); err != nil {
		return err // session dropped: a mid-stream error poisons its state
	}
	s.src.buf = nil
	pool.Put(s)
	return nil
}
