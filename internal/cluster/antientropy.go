package cluster

import (
	"context"
	"fmt"

	"skute/internal/merkle"
	"skute/internal/placement"
	"skute/internal/ring"
	"skute/internal/transport"
)

// locate maps a storage key to its (ring, partition) coordinate. It is
// deliberately lock-free — the store write hook calls it under the
// engine's shard lock — which is safe because the rings map and every
// ring's token array are immutable after construction; only partition
// replica sets mutate, and Lookup never reads those.
func (n *Node) locate(sk string) (placement.Key, bool) {
	user, rid := splitStorageKey(sk)
	if rid == (ring.RingID{}) {
		return placement.Key{}, false
	}
	r := n.rings.Ring(rid)
	if r == nil {
		return placement.Key{}, false
	}
	return placement.Key{Ring: rid, Part: r.Lookup(ring.HashKey(user)).ID}, true
}

// treeFor returns the partition's incremental Merkle tree, creating an
// empty one on first touch.
func (n *Node) treeFor(id ring.RingID, part int) *merkle.Incremental {
	k := placement.Key{Ring: id, Part: part}
	n.tmu.RLock()
	t := n.trees[k]
	n.tmu.RUnlock()
	if t != nil {
		return t
	}
	n.tmu.Lock()
	defer n.tmu.Unlock()
	if t = n.trees[k]; t == nil {
		t = merkle.NewIncremental()
		n.trees[k] = t
	}
	return t
}

// initTrees seeds the per-partition trees from whatever the engine
// already holds (a WAL-recovered store) and installs the write hook
// that keeps them current on every accepted mutation. The hook fires
// under the engine's shard lock with the post-apply fingerprint, so the
// trees never lag the store and anti-entropy starts from always-current
// roots instead of a full rescan per round.
func (n *Node) initTrees() {
	for _, l := range n.eng.MerkleLeaves(nil) {
		if k, ok := n.locate(l.Key); ok {
			n.treeFor(k.Ring, k.Part).Update(l.Key, l.Hash)
		}
	}
	n.eng.SetWriteHook(func(key string, sum merkle.Digest, deleted bool) {
		k, ok := n.locate(key)
		if !ok {
			return
		}
		t := n.treeFor(k.Ring, k.Part)
		if deleted {
			t.Delete(key)
		} else {
			t.Update(key, sum)
		}
	})
}

// handleLeaves serves the Merkle leaves of a partition's local data. A
// request whose root matches ours short-circuits to Same — the O(1)
// steady-state path that skips both the leaf export and the transfer.
func (n *Node) handleLeaves(req leavesReq) (transport.Envelope, error) {
	if _, _, err := n.partition(req.Ring, req.Part); err != nil {
		return transport.Envelope{Kind: "ok", Payload: encode(leavesResp{})}, nil
	}
	t := n.treeFor(req.Ring, req.Part)
	if len(req.Root) == len(merkle.Digest{}) {
		var root merkle.Digest
		copy(root[:], req.Root)
		if root == t.Root() {
			return transport.Envelope{Kind: "ok", Payload: encode(leavesResp{Same: true})}, nil
		}
	}
	resp := leavesResp{}
	for _, l := range t.Leaves() {
		resp.Keys = append(resp.Keys, l.Key)
		h := make([]byte, len(l.Hash))
		copy(h, l.Hash[:])
		resp.Hashes = append(resp.Hashes, h)
	}
	return transport.Envelope{Kind: "ok", Payload: encode(resp)}, nil
}

// partitionLeaves exports the partition's Merkle leaves, key-sorted,
// straight from the incremental tree — no engine scan.
func (n *Node) partitionLeaves(id ring.RingID, part int) []merkle.Leaf {
	if _, _, err := n.partition(id, part); err != nil {
		return nil
	}
	return n.treeFor(id, part).Leaves()
}

// SyncPartition runs one round of Merkle anti-entropy between this node
// and the named peer for a partition both replicate. The write-hook-
// maintained roots make the common case one RPC: if the peer's root
// matches ours it answers Same and the round costs nothing further.
// Otherwise the differing keys are walked and both sides converge. It
// returns the number of keys repaired; the context bounds every
// exchange of the round.
func (n *Node) SyncPartition(ctx context.Context, id ring.RingID, part int, peer string) (int, error) {
	info, ok := n.info(peer)
	if !ok {
		return 0, fmt.Errorf("cluster: unknown peer %q", peer)
	}
	tree := n.treeFor(id, part)
	root := tree.Root()

	resp, err := n.tr.Call(ctx, info.Addr, transport.Envelope{
		Kind:    kindLeaves,
		Payload: encode(leavesReq{Ring: id, Part: part, Root: root[:]}),
	})
	if err != nil {
		return 0, err
	}
	var lr leavesResp
	if err := decode(resp.Payload, &lr); err != nil {
		return 0, err
	}
	if lr.Same {
		n.counters.AntiEntropyRootHits.Inc()
		return 0, nil
	}
	remoteLeaves := make([]merkle.Leaf, len(lr.Keys))
	for i, k := range lr.Keys {
		remoteLeaves[i].Key = k
		copy(remoteLeaves[i].Hash[:], lr.Hashes[i])
	}

	diff := merkle.DiffSorted(tree.Leaves(), remoteLeaves)
	repaired := 0
	for _, sk := range diff {
		// Pull the peer's versions and merge them locally.
		var gr getResp
		userKey, rid := splitStorageKey(sk)
		if rid != id {
			continue
		}
		r, err := n.tr.Call(ctx, info.Addr, transport.Envelope{
			Kind:    kindGet,
			Payload: encode(getReq{Ring: id, Key: userKey}),
		})
		if err != nil {
			continue
		}
		if err := decode(r.Payload, &gr); err != nil {
			continue
		}
		for _, v := range gr.Versions {
			_, _ = n.eng.Put(sk, v)
		}
		// Push the merged set back so the peer converges too.
		for _, v := range n.eng.Get(sk) {
			_, _ = n.tr.Call(ctx, info.Addr, transport.Envelope{
				Kind:    kindPut,
				Payload: encode(putReq{Ring: id, Key: userKey, Version: v}),
			})
		}
		repaired++
	}
	return repaired, nil
}

// handoffSync drains this node's copy of a partition into every alive
// surviving replica — one Merkle catch-up round per peer — before a
// departing replica deletes its local data. The adopt transfer is a
// cursor-ordered snapshot, so writes this node acknowledged while the
// pull ran may exist nowhere else yet; dropping without this drain lets
// a migration (or two replicas of the same partition migrating inside
// one epoch window) globally lose an acknowledged write. Best effort
// per peer: one reachable survivor receiving the drain is enough for
// anti-entropy and read repair to spread the version from there.
func (n *Node) handoffSync(ctx context.Context, id ring.RingID, part int) {
	e, ok := n.pmap.Get(id, part)
	if !ok {
		return
	}
	for _, peer := range e.Replicas {
		if peer == n.self.Name || !n.alive(peer) {
			continue
		}
		if pushed, err := n.SyncPartition(ctx, id, part, peer); err == nil && pushed > 0 {
			n.trace.Add("handoff", "%s#%d drained %d keys to %s", id, part, pushed, peer)
		}
	}
}

// RunAntiEntropy performs one anti-entropy round: for every partition
// this node replicates, it synchronizes with one alive peer replica
// (rotating deterministically by round). It returns the total keys
// repaired. The node runtime (Start) drives this on a timer; the
// context bounds the whole round.
func (n *Node) RunAntiEntropy(ctx context.Context, round int) (int, error) {
	type job struct {
		id   ring.RingID
		part int
		peer string
	}
	n.counters.AntiEntropyRounds.Inc()
	var jobs []job
	n.mu.RLock()
	for _, rid := range n.rings.IDs() {
		for _, p := range n.rings.Ring(rid).Partitions() {
			if !p.HasReplica(ring.ServerID(n.selfI)) || len(p.Replicas) < 2 {
				continue
			}
			peers := make([]string, 0, len(p.Replicas)-1)
			for _, id := range p.Replicas {
				if int(id) != n.selfI {
					peers = append(peers, n.nodeName(id))
				}
			}
			jobs = append(jobs, job{rid, p.ID, peers[round%len(peers)]})
		}
	}
	n.mu.RUnlock()

	total := 0
	var firstErr error
	for _, j := range jobs {
		if err := ctx.Err(); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			break
		}
		if !n.alive(j.peer) {
			continue
		}
		repaired, err := n.SyncPartition(ctx, j.id, j.part, j.peer)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		total += repaired
	}
	n.counters.AntiEntropyKeys.Add(int64(total))
	return total, firstErr
}

// splitStorageKey recovers (user key, ring id) from a storage key of the
// form app/class/key. Keys containing slashes survive because only the
// first two segments are ring metadata.
func splitStorageKey(sk string) (string, ring.RingID) {
	var id ring.RingID
	i := indexByte(sk, '/')
	if i < 0 {
		return sk, id
	}
	id.App = sk[:i]
	rest := sk[i+1:]
	j := indexByte(rest, '/')
	if j < 0 {
		return sk, ring.RingID{}
	}
	id.Class = rest[:j]
	return rest[j+1:], id
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}
