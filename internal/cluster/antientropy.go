package cluster

import (
	"context"
	"fmt"

	"skute/internal/merkle"
	"skute/internal/ring"
	"skute/internal/transport"
)

// handleLeaves serves the Merkle leaves of a partition's local data.
func (n *Node) handleLeaves(req leavesReq) (transport.Envelope, error) {
	leaves := n.partitionLeaves(req.Ring, req.Part)
	resp := leavesResp{}
	for _, l := range leaves {
		resp.Keys = append(resp.Keys, l.Key)
		h := make([]byte, len(l.Hash))
		copy(h, l.Hash[:])
		resp.Hashes = append(resp.Hashes, h)
	}
	return transport.Envelope{Kind: "ok", Payload: encode(resp)}, nil
}

// partitionLeaves exports the Merkle leaves of the partition's local keys.
func (n *Node) partitionLeaves(id ring.RingID, part int) []merkle.Leaf {
	_, p, err := n.partition(id, part)
	if err != nil {
		return nil
	}
	prefix := id.App + "/" + id.Class + "/"
	return n.eng.MerkleLeaves(func(sk string) bool {
		if len(sk) <= len(prefix) || sk[:len(prefix)] != prefix {
			return false
		}
		return p.Contains(ring.HashKey(sk[len(prefix):]))
	})
}

// handleFetchPartition streams every key/version of a partition.
func (n *Node) handleFetchPartition(req fetchPartReq) (transport.Envelope, error) {
	var resp fetchPartResp
	for _, sk := range n.keysOfPartition(req.Ring, req.Part) {
		resp.Items = append(resp.Items, kv{Key: sk, Versions: n.eng.Get(sk)})
	}
	return transport.Envelope{Kind: "ok", Payload: encode(resp)}, nil
}

// handleAdopt makes this node a replica of the partition: it pulls the
// data from the donor address and stores it. Membership is NOT mutated
// here — the coordinator stamps the versioned placement delta after the
// adopt succeeds and disseminates it (this node included), so the
// replica set changes only through the one Apply path.
func (n *Node) handleAdopt(ctx context.Context, req adoptReq) (transport.Envelope, error) {
	resp, err := n.tr.Call(ctx, req.FromAddr, transport.Envelope{
		Kind:    kindFetchPart,
		Payload: encode(fetchPartReq{Ring: req.Ring, Part: req.Part}),
	})
	if err != nil {
		return transport.Envelope{}, fmt.Errorf("cluster: adopt fetch from %s: %w", req.FromAddr, err)
	}
	var fetched fetchPartResp
	if err := decode(resp.Payload, &fetched); err != nil {
		return transport.Envelope{}, err
	}
	for _, item := range fetched.Items {
		for _, v := range item.Versions {
			if _, err := n.eng.Put(item.Key, v); err != nil {
				return transport.Envelope{}, err
			}
		}
	}
	return transport.Envelope{Kind: "ok"}, nil
}

// SyncPartition runs one round of Merkle anti-entropy between this node
// and the named peer for a partition both replicate: it exchanges trees,
// walks the differing keys and converges both sides. It returns the
// number of keys repaired. The context bounds every exchange of the
// round.
func (n *Node) SyncPartition(ctx context.Context, id ring.RingID, part int, peer string) (int, error) {
	info, ok := n.info(peer)
	if !ok {
		return 0, fmt.Errorf("cluster: unknown peer %q", peer)
	}
	local := merkle.Build(n.partitionLeaves(id, part))

	resp, err := n.tr.Call(ctx, info.Addr, transport.Envelope{
		Kind:    kindLeaves,
		Payload: encode(leavesReq{Ring: id, Part: part}),
	})
	if err != nil {
		return 0, err
	}
	var lr leavesResp
	if err := decode(resp.Payload, &lr); err != nil {
		return 0, err
	}
	remoteLeaves := make([]merkle.Leaf, len(lr.Keys))
	for i, k := range lr.Keys {
		remoteLeaves[i].Key = k
		copy(remoteLeaves[i].Hash[:], lr.Hashes[i])
	}
	remote := merkle.Build(remoteLeaves)

	diff := merkle.DiffKeys(local, remote)
	repaired := 0
	for _, sk := range diff {
		// Pull the peer's versions and merge them locally.
		var gr getResp
		userKey, rid := splitStorageKey(sk)
		if rid != id {
			continue
		}
		r, err := n.tr.Call(ctx, info.Addr, transport.Envelope{
			Kind:    kindGet,
			Payload: encode(getReq{Ring: id, Key: userKey}),
		})
		if err != nil {
			continue
		}
		if err := decode(r.Payload, &gr); err != nil {
			continue
		}
		for _, v := range gr.Versions {
			_, _ = n.eng.Put(sk, v)
		}
		// Push the merged set back so the peer converges too.
		for _, v := range n.eng.Get(sk) {
			_, _ = n.tr.Call(ctx, info.Addr, transport.Envelope{
				Kind:    kindPut,
				Payload: encode(putReq{Ring: id, Key: userKey, Version: v}),
			})
		}
		repaired++
	}
	return repaired, nil
}

// RunAntiEntropy performs one anti-entropy round: for every partition
// this node replicates, it synchronizes with one alive peer replica
// (rotating deterministically by round). It returns the total keys
// repaired. The node runtime (Start) drives this on a timer; the
// context bounds the whole round.
func (n *Node) RunAntiEntropy(ctx context.Context, round int) (int, error) {
	type job struct {
		id   ring.RingID
		part int
		peer string
	}
	var jobs []job
	n.mu.RLock()
	for _, rid := range n.rings.IDs() {
		for _, p := range n.rings.Ring(rid).Partitions() {
			if !p.HasReplica(ring.ServerID(n.selfI)) || len(p.Replicas) < 2 {
				continue
			}
			peers := make([]string, 0, len(p.Replicas)-1)
			for _, id := range p.Replicas {
				if int(id) != n.selfI {
					peers = append(peers, n.nodeName(id))
				}
			}
			jobs = append(jobs, job{rid, p.ID, peers[round%len(peers)]})
		}
	}
	n.mu.RUnlock()

	total := 0
	var firstErr error
	for _, j := range jobs {
		if err := ctx.Err(); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			break
		}
		if !n.alive(j.peer) {
			continue
		}
		repaired, err := n.SyncPartition(ctx, j.id, j.part, j.peer)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		total += repaired
	}
	n.counters.AntiEntropyKeys.Add(int64(total))
	return total, firstErr
}

// splitStorageKey recovers (user key, ring id) from a storage key of the
// form app/class/key. Keys containing slashes survive because only the
// first two segments are ring metadata.
func splitStorageKey(sk string) (string, ring.RingID) {
	var id ring.RingID
	i := indexByte(sk, '/')
	if i < 0 {
		return sk, id
	}
	id.App = sk[:i]
	rest := sk[i+1:]
	j := indexByte(rest, '/')
	if j < 0 {
		return sk, ring.RingID{}
	}
	id.Class = rest[:j]
	return rest[j+1:], id
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}
