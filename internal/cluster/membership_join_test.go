package cluster

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"skute/internal/agent"
	"skute/internal/economy"
	"skute/internal/membership"
	"skute/internal/ring"
	"skute/internal/store"
	"skute/internal/transport"
)

// joinTestConfig builds a small 3-node cluster with a single ring, the
// stage for the dynamic-membership tests: a 4th node joins through a
// seed, or one of the three dies and must be evicted.
func joinTestConfig(partitions, replicas int) Config {
	var nodes []NodeInfo
	conts := []string{"eu", "us", "ap"}
	for i := 0; i < 3; i++ {
		nodes = append(nodes, NodeInfo{
			Name:          fmt.Sprintf("n%d", i),
			Addr:          fmt.Sprintf("mem-n%d", i),
			LocPath:       fmt.Sprintf("%s/c%d/dc0/r0/k0/s%d", conts[i], i, i),
			Confidence:    1,
			MonthlyRent:   100,
			Capacity:      1 << 30,
			QueryCapacity: 1000,
		})
	}
	return Config{
		Nodes: nodes,
		Rings: []RingSpec{{App: "appJ", Class: "gold", Partitions: partitions, Replicas: replicas}},
	}
}

func bootJoinCluster(t *testing.T, cfg Config) (*transport.Memory, []*Node) {
	t.Helper()
	mesh := transport.NewMemory()
	t.Cleanup(func() { mesh.Close() })
	var nodes []*Node
	for _, ni := range cfg.Nodes {
		n, err := NewNode(cfg, ni.Name, mesh, store.NewMemory())
		if err != nil {
			t.Fatalf("NewNode(%s): %v", ni.Name, err)
		}
		nodes = append(nodes, n)
	}
	for _, n := range nodes {
		n.ConfirmPeers()
	}
	return mesh, nodes
}

// TestJoinNodeEndToEnd pins the acceptance path: a node booted with
// nothing but a seed address converges to the full member table and
// placement map, serves quorum reads as a coordinator, and — once the
// economy places partitions on it — receives the data through the
// throttled chunked-transfer path.
func TestJoinNodeEndToEnd(t *testing.T) {
	cfg := joinTestConfig(8, 2)
	cfg.TransferBytesPerSec = 64 << 20 // throttled wire path, fast enough for a test
	_, nodes := bootJoinCluster(t, cfg)
	id := ring.RingID{App: "appJ", Class: "gold"}
	const keys = 64
	for i := 0; i < keys; i++ {
		if err := nodes[0].Put(ctx, id, fmt.Sprintf("k-%d", i), []byte("v"), nil, WriteOptions{}); err != nil {
			t.Fatalf("seed write: %v", err)
		}
	}

	joiner, err := JoinNode(ctx, NodeInfo{
		Name: "n3", Addr: "mem-n3", LocPath: "eu/c9/dc1/r0/k0/s9",
		Confidence: 1, MonthlyRent: 10, Capacity: 1 << 30, QueryCapacity: 1000,
	}, "mem-n0", JoinOptions{TransferChunkItems: 8, TransferBytesPerSec: 64 << 20}, nodes[0].tr, store.NewMemory())
	if err != nil {
		t.Fatalf("JoinNode: %v", err)
	}

	// Full member table: the three originals plus the joiner itself.
	if got := joiner.Membership().Len(); got != 4 {
		t.Fatalf("joiner member table has %d entries, want 4", got)
	}
	// The seed spread the join record, so the whole cluster knows n3.
	for _, n := range nodes {
		if _, ok := n.Membership().Get("n3"); !ok {
			t.Fatalf("%s never heard of the joiner", n.Name())
		}
	}
	// The placement view matches the cluster's converged one.
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("k-%d", i)
		want, err := nodes[0].Replicas(id, key)
		if err != nil {
			t.Fatal(err)
		}
		got, err := joiner.Replicas(id, key)
		if err != nil {
			t.Fatalf("joiner Replicas(%s): %v", key, err)
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("placement diverged for %s: joiner %v, cluster %v", key, got, want)
		}
	}

	// One heartbeat round each way lifts probation, then the joiner
	// coordinates quorum reads against replicas it does not host.
	joiner.SendHeartbeats(ctx)
	for _, n := range nodes {
		n.SendHeartbeats(ctx)
	}
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("k-%d", i)
		res, err := joiner.Get(ctx, id, key, ReadOptions{})
		if err != nil {
			t.Fatalf("quorum read via joiner: %v", err)
		}
		if len(res.Values) != 1 || string(res.Values[0]) != "v" {
			t.Fatalf("read via joiner = %q", res.Values)
		}
	}

	// The joiner is the cheapest server by far; economic epochs migrate
	// partitions onto it and the data must arrive via chunked transfer.
	all := append(append([]*Node(nil), nodes...), joiner)
	moved := false
	for round := 0; round < 12 && !moved; round++ {
		for _, n := range all {
			if _, _, err := n.AnnounceRent(ctx, economy.DefaultRentParams()); err != nil {
				t.Fatalf("AnnounceRent: %v", err)
			}
		}
		for _, n := range all {
			if _, err := n.RunEconomicEpoch(ctx, agent.DefaultParams(), economy.DefaultRentParams()); err != nil {
				t.Fatalf("RunEconomicEpoch: %v", err)
			}
		}
		cnt, err := nodes[0].HostedCount("n3")
		if err != nil {
			t.Fatal(err)
		}
		moved = cnt > 0
	}
	if !moved {
		t.Fatal("economy never placed a partition on the cheap joiner")
	}
	if joiner.Counters().TransferChunks.Value() == 0 {
		t.Error("joiner adopted partitions without the chunked-transfer path")
	}
	if joiner.Counters().TransferItems.Value() == 0 {
		t.Error("chunked transfer moved zero items")
	}
	// Every key now replicated on the joiner is readable at All — the
	// transferred copy included.
	covered := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("k-%d", i)
		reps, err := joiner.Replicas(id, key)
		if err != nil {
			t.Fatal(err)
		}
		onJoiner := false
		for _, r := range reps {
			if r == "n3" {
				onJoiner = true
			}
		}
		if !onJoiner {
			continue
		}
		covered++
		res, err := joiner.Get(ctx, id, key, ReadOptions{Consistency: ConsistencyAll})
		if err != nil {
			t.Fatalf("All-read of transferred key %s: %v", key, err)
		}
		if len(res.Values) != 1 || string(res.Values[0]) != "v" {
			t.Fatalf("transferred key %s = %q", key, res.Values)
		}
	}
	if covered == 0 {
		t.Error("no key landed on a joiner-hosted partition despite the migration")
	}
}

// TestSuspicionDrivenEviction pins the failure-detector lifecycle with a
// fake clock: a hard-killed node (unreachable, no FailServer injection)
// progresses alive → suspect → dead on heartbeat silence alone, and the
// membership rounds then evict it from every replica set through the
// versioned placement map.
func TestSuspicionDrivenEviction(t *testing.T) {
	cfg := joinTestConfig(8, 2)
	cfg.SuspectAfter = time.Second
	cfg.DeadAfter = 2 * time.Second
	mesh, nodes := bootJoinCluster(t, cfg)
	id := ring.RingID{App: "appJ", Class: "gold"}

	// All three nodes share one fake clock.
	base := time.Now()
	var offset atomic.Int64
	now := func() time.Time { return base.Add(time.Duration(offset.Load())) }
	for _, n := range nodes {
		n.Now = now
		n.ConfirmPeers() // re-stamp confirmations at the fake clock's zero
	}
	for i := 0; i < 32; i++ {
		if err := nodes[0].Put(ctx, id, fmt.Sprintf("k-%d", i), []byte("v"), nil, WriteOptions{}); err != nil {
			t.Fatal(err)
		}
	}

	// n2 dies hard: unreachable, nobody calls Fail.
	mesh.SetDown("mem-n2", true)
	step := func() {
		for _, n := range nodes[:2] {
			n.SendHeartbeats(ctx)
			n.RunMembershipRound(ctx)
		}
	}

	offset.Store(int64(500 * time.Millisecond))
	step()
	if m, ok := nodes[0].Membership().Get("n2"); !ok || m.State != membership.Alive {
		t.Fatalf("n2 left alive state before the suspicion window: %+v", m)
	}

	offset.Store(int64(1500 * time.Millisecond)) // > SuspectAfter of silence
	step()
	if m, _ := nodes[0].Membership().Get("n2"); m.State != membership.Suspect {
		t.Fatalf("after %v of silence n2 = %v, want suspect", 1500*time.Millisecond, m.State)
	}

	offset.Store(int64(4 * time.Second)) // > SuspectAfter+DeadAfter
	step()
	step() // second round applies the peer's eviction deltas locally
	if m, _ := nodes[0].Membership().Get("n2"); m.State != membership.Dead {
		t.Fatalf("after the refutation grace n2 = %v, want dead", m.State)
	}
	// Evicted from every replica set, as seen from both survivors.
	for _, n := range nodes[:2] {
		cnt, err := n.HostedCount("n2")
		if err != nil {
			t.Fatal(err)
		}
		if cnt != 0 {
			t.Errorf("%s still sees n2 hosting %d vnodes after eviction", n.Name(), cnt)
		}
	}
	suspected := nodes[0].Counters().MembersSuspected.Value() + nodes[1].Counters().MembersSuspected.Value()
	dead := nodes[0].Counters().MembersDead.Value() + nodes[1].Counters().MembersDead.Value()
	evicted := nodes[0].Counters().MemberEvictions.Value() + nodes[1].Counters().MemberEvictions.Value()
	if suspected == 0 || dead == 0 || evicted == 0 {
		t.Errorf("lifecycle counters: suspected=%d dead=%d evicted=%d, want all > 0", suspected, dead, evicted)
	}
	// The survivors still serve every key (replicas 2, one survivor holds
	// each partition; One-level reads avoid the not-yet-repaired quorum).
	for i := 0; i < 32; i++ {
		res, err := nodes[0].Get(ctx, id, fmt.Sprintf("k-%d", i), ReadOptions{Consistency: ConsistencyOne})
		if err != nil || len(res.Values) != 1 {
			t.Fatalf("k-%d after eviction: %q, %v", i, res.Values, err)
		}
	}
}

// TestDeadRestartRefutesViaHeartbeatEcho pins the accusation echo: a
// node restarted from its descriptor after being declared dead never
// hears the death record through ordinary gossip — terminal members
// attract no heartbeats and its own stale records are rejected — so
// the heartbeat RESPONSE must carry the standing accusation back,
// letting the restarted node refute with a bumped incarnation that
// supersedes its death everywhere. (Found by driving the real
// binaries: kill -9 + restart left the node dead forever.)
func TestDeadRestartRefutesViaHeartbeatEcho(t *testing.T) {
	cfg := joinTestConfig(4, 2)
	mesh, nodes := bootJoinCluster(t, cfg)

	// n0 and n1 hold a standing death record for n2 at its incarnation.
	death := membership.Delta{Info: memberInfoOf(cfg.Nodes[2]), State: membership.Dead, Incarnation: 1}
	for _, n := range nodes[:2] {
		n.applyMemberDeltas(ctx, death)
	}

	// n2 "restarts": a fresh node from the same descriptor, back at
	// incarnation 1, with no idea it was ever declared dead. Serve
	// replaces the old handler on the mesh, like a rebind of the port.
	restarted, err := NewNode(cfg, "n2", mesh, store.NewMemory())
	if err != nil {
		t.Fatalf("restart n2: %v", err)
	}
	restarted.ConfirmPeers()

	// One beat round: the peers reject its stale alive@1 record but echo
	// dead@1 back; the refutation bumps past it and spreads.
	restarted.SendHeartbeats(ctx)

	if m, ok := restarted.Membership().Get("n2"); !ok || m.Incarnation < 2 || m.State != membership.Alive {
		t.Fatalf("restarted node never refuted its death: %+v", m)
	}
	for _, n := range nodes[:2] {
		m, _ := n.Membership().Get("n2")
		if m.State != membership.Alive || m.Incarnation < 2 {
			t.Fatalf("%s still sees n2 as %v@%d after the refutation", n.Name(), m.State, m.Incarnation)
		}
	}
	refuted := restarted.Counters().MemberRefutations.Value()
	if refuted == 0 {
		t.Error("refutation counter never moved")
	}
}

// flakyTransport injects faults into chunk fetches to exercise the
// resume cursor: after failAfter successful fetch-chunk calls, every
// further one fails until the fault is cleared.
type flakyTransport struct {
	transport.Transport
	failing atomic.Bool
	calls   atomic.Int64
	failAt  int64
}

func (f *flakyTransport) Call(ctx context.Context, addr string, env transport.Envelope) (transport.Envelope, error) {
	if env.Kind == kindFetchChunk && f.failing.Load() && f.calls.Add(1) > f.failAt {
		return transport.Envelope{}, fmt.Errorf("flaky: injected wire fault")
	}
	return f.Transport.Call(ctx, addr, env)
}

// TestPullPartitionChunkedResume pins the streaming-transfer mechanics:
// the pull arrives in bounded chunks, an interrupted pull keeps its
// cursor, and the retry resumes after the last applied key instead of
// restarting — no item crosses the wire twice.
func TestPullPartitionChunkedResume(t *testing.T) {
	cfg := joinTestConfig(1, 2) // single partition: every key transfers together
	_, nodes := bootJoinCluster(t, cfg)
	id := ring.RingID{App: "appJ", Class: "gold"}
	const items = 100
	for i := 0; i < items; i++ {
		if err := nodes[0].Put(ctx, id, fmt.Sprintf("k-%03d", i), []byte("value"), nil, WriteOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	reps, err := nodes[0].Replicas(id, "k-000")
	if err != nil {
		t.Fatal(err)
	}
	donorAddr := "mem-" + reps[0]

	flaky := &flakyTransport{Transport: nodes[0].tr, failAt: 2}
	joiner, err := JoinNode(ctx, NodeInfo{
		Name: "n3", Addr: "mem-n3", LocPath: "eu/c9/dc1/r0/k0/s9",
		Confidence: 1, MonthlyRent: 10, Capacity: 1 << 30, QueryCapacity: 1000,
	}, "mem-n0", JoinOptions{TransferChunkItems: 16}, flaky, store.NewMemory())
	if err != nil {
		t.Fatalf("JoinNode: %v", err)
	}

	// The wire dies after two chunks: 32 of 100 items land, the cursor
	// survives.
	flaky.failing.Store(true)
	if err := joiner.pullPartition(ctx, id, 0, donorAddr); err == nil {
		t.Fatal("interrupted pull reported success")
	}
	c := joiner.Counters()
	if got := c.TransferChunks.Value(); got != 2 {
		t.Fatalf("chunks before the fault = %d, want 2", got)
	}
	if got := c.TransferItems.Value(); got != 32 {
		t.Fatalf("items before the fault = %d, want 32", got)
	}
	if got := joiner.eng.Len(); got != 32 {
		t.Fatalf("engine holds %d keys mid-transfer, want 32", got)
	}

	// The retry resumes after the cursor and finishes the remaining 68
	// items — 100 total items pulled proves nothing re-crossed the wire.
	flaky.failing.Store(false)
	if err := joiner.pullPartition(ctx, id, 0, donorAddr); err != nil {
		t.Fatalf("resumed pull: %v", err)
	}
	if got := c.TransferResumes.Value(); got != 1 {
		t.Errorf("resumes = %d, want 1", got)
	}
	if got := c.TransferItems.Value(); got != items {
		t.Errorf("total items pulled = %d, want %d (resume must not re-transfer)", got, items)
	}
	if got := joiner.eng.Len(); got != items {
		t.Errorf("engine holds %d keys after resume, want %d", got, items)
	}
	// A fresh pull over complete data is a no-op cursor-wise: it starts
	// from scratch by design (cursor cleared on completion).
	joiner.xmu.Lock()
	pending := len(joiner.resume)
	joiner.xmu.Unlock()
	if pending != 0 {
		t.Errorf("%d resume cursors left after a completed pull", pending)
	}
}

// TestRateLimiterThrottles pins the donor-side token bucket: the first
// second of budget is free, overspend is paced, cancellation aborts.
func TestRateLimiterThrottles(t *testing.T) {
	if newRateLimiter(0) != nil {
		t.Fatal("zero rate must mean unlimited (nil limiter)")
	}
	var nilRL *rateLimiter
	if err := nilRL.wait(ctx, 1<<30); err != nil {
		t.Fatalf("nil limiter must never block: %v", err)
	}
	rl := newRateLimiter(1 << 20) // 1 MiB/s
	if err := rl.wait(ctx, 1<<20); err != nil {
		t.Fatalf("first-second budget: %v", err)
	}
	start := time.Now()
	if err := rl.wait(ctx, 1<<18); err != nil { // 256 KiB of debt ≈ 250ms
		t.Fatal(err)
	}
	if e := time.Since(start); e < 150*time.Millisecond {
		t.Errorf("overspent wait returned in %v, want ≥ ~250ms of pacing", e)
	}
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := rl.wait(cctx, 1<<20); err == nil {
		t.Error("cancelled wait returned nil")
	}
}

// BenchmarkJoinTransfer measures join-time partition-pull throughput
// over the in-memory mesh: one full 512-key partition streamed in
// chunks per iteration (unthrottled — the token bucket is pay-per-byte
// and nil here, so this is the mechanism's ceiling).
func BenchmarkJoinTransfer(b *testing.B) {
	mesh := transport.NewMemory()
	defer mesh.Close()
	cfg := joinTestConfig(1, 2)
	var nodes []*Node
	for _, ni := range cfg.Nodes {
		n, err := NewNode(cfg, ni.Name, mesh, store.NewMemory())
		if err != nil {
			b.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	for _, n := range nodes {
		n.ConfirmPeers()
	}
	id := ring.RingID{App: "appJ", Class: "gold"}
	const items = 512
	value := make([]byte, 256)
	for i := 0; i < items; i++ {
		if err := nodes[0].Put(ctx, id, fmt.Sprintf("k-%04d", i), value, nil, WriteOptions{}); err != nil {
			b.Fatal(err)
		}
	}
	reps, err := nodes[0].Replicas(id, "k-0000")
	if err != nil {
		b.Fatal(err)
	}
	donorAddr := "mem-" + reps[0]
	joiner, err := JoinNode(ctx, NodeInfo{
		Name: "n3", Addr: "mem-n3", LocPath: "eu/c9/dc1/r0/k0/s9",
		Confidence: 1, MonthlyRent: 10, Capacity: 1 << 30, QueryCapacity: 1000,
	}, "mem-n0", JoinOptions{TransferChunkItems: 64}, mesh, store.NewMemory())
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(items * len(value)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := joiner.pullPartition(ctx, id, 0, donorAddr); err != nil {
			b.Fatal(err)
		}
	}
}
