// Package gossip implements the heartbeat-based membership and failure
// detection of the Skute prototype: every node periodically announces
// itself to a few random peers; a node whose heartbeat has not been seen
// within the suspicion timeout is treated as down, and replica placement
// routes around it until it returns.
package gossip

import (
	"math/rand"
	"sort"
	"sync"
	"time"
)

// Detector tracks last-seen heartbeats. The clock is injected so tests
// and simulations can drive time deterministically.
type Detector struct {
	mu sync.RWMutex
	// lastSeen maps node name to the last heartbeat time.
	lastSeen map[string]time.Time
	// suspectAfter is how long a silent node stays "alive".
	suspectAfter time.Duration
}

// NewDetector returns a detector with the given suspicion timeout.
func NewDetector(suspectAfter time.Duration) *Detector {
	return &Detector{
		lastSeen:     make(map[string]time.Time),
		suspectAfter: suspectAfter,
	}
}

// Heartbeat records a sighting of the node at the given time. Heartbeats
// never move time backwards.
func (d *Detector) Heartbeat(node string, at time.Time) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if prev, ok := d.lastSeen[node]; !ok || at.After(prev) {
		d.lastSeen[node] = at
	}
}

// Alive reports whether the node's heartbeat is fresh at time now. An
// unknown node is not alive.
func (d *Detector) Alive(node string, now time.Time) bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	seen, ok := d.lastSeen[node]
	return ok && now.Sub(seen) <= d.suspectAfter
}

// Forget drops a node from the table (graceful leave).
func (d *Detector) Forget(node string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.lastSeen, node)
}

// Members returns every known node sorted by name and whether it is alive
// at time now.
func (d *Detector) Members(now time.Time) map[string]bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make(map[string]bool, len(d.lastSeen))
	for n, seen := range d.lastSeen {
		out[n] = now.Sub(seen) <= d.suspectAfter
	}
	return out
}

// AliveList returns the alive node names sorted.
func (d *Detector) AliveList(now time.Time) []string {
	members := d.Members(now)
	out := make([]string, 0, len(members))
	for n, alive := range members {
		if alive {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// Jittered spreads a loop interval by a random factor in
// [1-frac, 1+frac], so that the periodic gossip loops of a cluster
// booted in lockstep desynchronize instead of thundering together.
// frac is clamped to [0, 1); a non-positive d or frac returns d
// unchanged.
func Jittered(d time.Duration, frac float64, rng *rand.Rand) time.Duration {
	if d <= 0 || frac <= 0 {
		return d
	}
	if frac >= 1 {
		frac = 0.99
	}
	f := 1 + frac*(2*rng.Float64()-1)
	return time.Duration(float64(d) * f)
}

// PickPeers selects up to k distinct alive peers other than self, for
// heartbeat fan-out. The rng makes peer selection deterministic in tests.
func (d *Detector) PickPeers(self string, k int, now time.Time, rng *rand.Rand) []string {
	alive := d.AliveList(now)
	candidates := alive[:0:0]
	for _, n := range alive {
		if n != self {
			candidates = append(candidates, n)
		}
	}
	rng.Shuffle(len(candidates), func(i, j int) { candidates[i], candidates[j] = candidates[j], candidates[i] })
	if k > len(candidates) {
		k = len(candidates)
	}
	return candidates[:k]
}
