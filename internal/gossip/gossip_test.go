package gossip

import (
	"math/rand"
	"testing"
	"time"
)

var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func TestAliveWindow(t *testing.T) {
	d := NewDetector(10 * time.Second)
	if d.Alive("a", t0) {
		t.Error("unknown node alive")
	}
	d.Heartbeat("a", t0)
	if !d.Alive("a", t0.Add(10*time.Second)) {
		t.Error("node dead within the window")
	}
	if d.Alive("a", t0.Add(11*time.Second)) {
		t.Error("node alive past the window")
	}
	// A fresh heartbeat extends the lease.
	d.Heartbeat("a", t0.Add(8*time.Second))
	if !d.Alive("a", t0.Add(15*time.Second)) {
		t.Error("heartbeat did not extend liveness")
	}
}

func TestHeartbeatNeverRewinds(t *testing.T) {
	d := NewDetector(10 * time.Second)
	d.Heartbeat("a", t0.Add(time.Minute))
	d.Heartbeat("a", t0) // stale: ignored
	if !d.Alive("a", t0.Add(time.Minute+5*time.Second)) {
		t.Error("stale heartbeat rewound the lease")
	}
}

func TestForget(t *testing.T) {
	d := NewDetector(time.Minute)
	d.Heartbeat("a", t0)
	d.Forget("a")
	if d.Alive("a", t0) {
		t.Error("forgotten node alive")
	}
	if len(d.Members(t0)) != 0 {
		t.Error("forgotten node in members")
	}
}

func TestMembersAndAliveList(t *testing.T) {
	d := NewDetector(10 * time.Second)
	d.Heartbeat("b", t0)
	d.Heartbeat("a", t0)
	d.Heartbeat("stale", t0.Add(-time.Minute))
	m := d.Members(t0)
	if len(m) != 3 || !m["a"] || !m["b"] || m["stale"] {
		t.Errorf("members = %v", m)
	}
	al := d.AliveList(t0)
	if len(al) != 2 || al[0] != "a" || al[1] != "b" {
		t.Errorf("alive = %v", al)
	}
}

func TestPickPeers(t *testing.T) {
	d := NewDetector(time.Minute)
	for _, n := range []string{"self", "a", "b", "c", "d"} {
		d.Heartbeat(n, t0)
	}
	rng := rand.New(rand.NewSource(1))
	peers := d.PickPeers("self", 3, t0, rng)
	if len(peers) != 3 {
		t.Fatalf("peers = %v", peers)
	}
	seen := map[string]bool{}
	for _, p := range peers {
		if p == "self" {
			t.Error("picked self")
		}
		if seen[p] {
			t.Error("duplicate peer")
		}
		seen[p] = true
	}
	// Asking for more peers than exist returns all of them.
	all := d.PickPeers("self", 100, t0, rng)
	if len(all) != 4 {
		t.Errorf("all peers = %v", all)
	}
}

func TestJittered(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base := 100 * time.Millisecond
	for i := 0; i < 200; i++ {
		d := Jittered(base, 0.2, rng)
		if d < 80*time.Millisecond || d > 120*time.Millisecond {
			t.Fatalf("Jittered escaped the band: %v", d)
		}
	}
	// Degenerate inputs pass through.
	if d := Jittered(0, 0.2, rng); d != 0 {
		t.Errorf("Jittered(0) = %v", d)
	}
	if d := Jittered(base, 0, rng); d != base {
		t.Errorf("Jittered(frac=0) = %v", d)
	}
	// frac >= 1 is clamped so intervals can never reach zero or go
	// negative.
	for i := 0; i < 200; i++ {
		if d := Jittered(base, 5, rng); d <= 0 {
			t.Fatalf("clamped Jittered produced %v", d)
		}
	}
}
