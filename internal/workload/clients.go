package workload

import (
	"fmt"

	"skute/internal/topology"
)

// ClientDist models where the query clients of one partition sit. It
// drives Eq. 4 of the paper,
//
//	g_j = (sum_l q_l) / (1 + sum_l q_l * diversity(l, s_j)),
//
// the geographic preference of candidate server j: servers close to the
// bulk of the clients get g close to 1, far servers get g close to 0.
type ClientDist interface {
	// G returns the geographic preference weight of a server at the given
	// location, in (0, 1].
	G(server topology.Location) float64
}

// UniformClients is the paper's evaluation assumption (Section III-A):
// query clients uniformly spread over the world, for which the paper takes
// g_j = 1 for every server.
type UniformClients struct{}

// G implements ClientDist.
func (UniformClients) G(topology.Location) float64 { return 1 }

// RegionClients places query traffic at explicit client locations with
// per-location query counts and evaluates Eq. 4 exactly. Client locations
// are expressed as topology locations (a client "at" a country is a
// location whose finer levels never match any server, which Eq. 4 handles
// through the diversity term).
type RegionClients struct {
	locs    []topology.Location
	queries []float64
	total   float64
}

// NewRegionClients builds a distribution from parallel slices of client
// locations and their query counts.
func NewRegionClients(locs []topology.Location, queries []float64) (*RegionClients, error) {
	if len(locs) != len(queries) {
		return nil, fmt.Errorf("workload: %d locations but %d query counts", len(locs), len(queries))
	}
	if len(locs) == 0 {
		return nil, fmt.Errorf("workload: region client distribution needs at least one location")
	}
	rc := &RegionClients{
		locs:    append([]topology.Location(nil), locs...),
		queries: append([]float64(nil), queries...),
	}
	for _, q := range queries {
		if q < 0 {
			return nil, fmt.Errorf("workload: negative query count %v", q)
		}
		rc.total += q
	}
	if rc.total == 0 {
		return nil, fmt.Errorf("workload: region client distribution has zero total queries")
	}
	return rc, nil
}

// G implements ClientDist with Eq. 4.
func (rc *RegionClients) G(server topology.Location) float64 {
	var weighted float64
	for i, l := range rc.locs {
		weighted += rc.queries[i] * float64(topology.Diversity(l, server))
	}
	return rc.total / (1 + weighted)
}

// Total returns the total query count across client locations.
func (rc *RegionClients) Total() float64 { return rc.total }
