package workload

// Profile yields the mean total query rate for an epoch. It abstracts the
// global load shape of an experiment; per-partition rates are obtained by
// multiplying with the partitions' popularity weights.
type Profile interface {
	// Rate returns the mean number of queries in the given epoch.
	Rate(epoch int) float64
}

// Constant is a flat query profile (the paper's default: Poisson with mean
// 3000 queries/epoch).
type Constant float64

// Rate implements Profile.
func (c Constant) Rate(int) float64 { return float64(c) }

// Slashdot models the load peak of Section III-D: the mean rate climbs
// linearly from Base to Peak over RampEpochs starting at StartEpoch, then
// decreases linearly back to Base over DecayEpochs.
type Slashdot struct {
	Base        float64 // steady-state rate (3000 in the paper)
	Peak        float64 // spike rate (183000 in the paper)
	StartEpoch  int     // first epoch of the ramp (100 in the paper)
	RampEpochs  int     // epochs to reach the peak (25 in the paper)
	DecayEpochs int     // epochs to fall back to Base (250 in the paper)
}

// PaperSlashdot returns the exact spike of Section III-D.
func PaperSlashdot() Slashdot {
	return Slashdot{Base: 3000, Peak: 183000, StartEpoch: 100, RampEpochs: 25, DecayEpochs: 250}
}

// Rate implements Profile.
func (s Slashdot) Rate(epoch int) float64 {
	switch {
	case epoch < s.StartEpoch:
		return s.Base
	case epoch < s.StartEpoch+s.RampEpochs:
		frac := float64(epoch-s.StartEpoch+1) / float64(s.RampEpochs)
		return s.Base + (s.Peak-s.Base)*frac
	case epoch < s.StartEpoch+s.RampEpochs+s.DecayEpochs:
		frac := float64(epoch-s.StartEpoch-s.RampEpochs+1) / float64(s.DecayEpochs)
		return s.Peak - (s.Peak-s.Base)*frac
	default:
		return s.Base
	}
}

// InsertStream describes the storage-saturation workload of Section III-E:
// a constant stream of fixed-size inserts whose target partitions follow
// the popularity weights (Pareto-distributed, like the read load).
type InsertStream struct {
	PerEpoch  int   // inserts per epoch (2000 in the paper)
	ValueSize int64 // bytes per insert (500 KB in the paper)
}

// PaperInsertStream returns Section III-E's 2000 x 500 KB inserts/epoch.
func PaperInsertStream() InsertStream {
	return InsertStream{PerEpoch: 2000, ValueSize: 500 << 10}
}

// BytesPerEpoch is PerEpoch * ValueSize.
func (s InsertStream) BytesPerEpoch() int64 { return int64(s.PerEpoch) * s.ValueSize }
