package workload

import (
	"math"
	"math/rand"
	"time"
)

// Poisson draws a Poisson(lambda) variate. Small means use Knuth's
// product-of-uniforms method; large means (lambda >= 30) use the normal
// approximation with continuity correction, which is exact enough for the
// simulator (relative error < 1% on the tails we care about) and O(1).
func Poisson(rng *rand.Rand, lambda float64) int {
	switch {
	case lambda <= 0:
		return 0
	case lambda < 30:
		// Knuth: multiply uniforms until the product drops below e^-lambda.
		limit := math.Exp(-lambda)
		n := 0
		prod := rng.Float64()
		for prod > limit {
			n++
			prod *= rng.Float64()
		}
		return n
	default:
		x := rng.NormFloat64()*math.Sqrt(lambda) + lambda + 0.5
		if x < 0 {
			return 0
		}
		return int(x)
	}
}

// Interarrival draws the exponential gap to the next arrival of a
// Poisson process with the given rate (events per second) — the
// open-loop driver's clock. Non-positive rates yield a long pause (one
// second) rather than blocking forever, so a profile that dips to zero
// keeps polling for its next ramp.
func Interarrival(rng *rand.Rand, rate float64) time.Duration {
	if rate <= 0 {
		return time.Second
	}
	u := rng.Float64()
	for u == 0 { // -log(0) = +Inf
		u = rng.Float64()
	}
	return time.Duration(-math.Log(u) / rate * float64(time.Second))
}

// SplitPoisson draws per-class query counts for one epoch: the total load
// is Poisson(lambda) split across classes proportionally to weights, which
// is equivalent to independent Poisson draws with rates lambda*w_i. The
// weights need not be normalized.
func SplitPoisson(rng *rand.Rand, lambda float64, weights []float64) []int {
	var sum float64
	for _, w := range weights {
		sum += w
	}
	out := make([]int, len(weights))
	if sum <= 0 || lambda <= 0 {
		return out
	}
	for i, w := range weights {
		out[i] = Poisson(rng, lambda*w/sum)
	}
	return out
}
