package workload

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// Statistical generator tests: fixed seeds, so the draws — and the
// estimators below — are exactly reproducible; the tolerances are wide
// enough that any correct implementation passes and narrow enough that
// a wrong parameterization (shape/scale swapped, rate inverted, ramp
// off by an epoch) fails.

// TestParetoTailExponent recovers the tail index with the Hill
// estimator: for the k largest of n samples, the mean of
// log(x_(i)/x_(k+1)) estimates 1/alpha.
func TestParetoTailExponent(t *testing.T) {
	for _, shape := range []float64{1, 1.5, 2.5} {
		rng := rand.New(rand.NewSource(11))
		p := Pareto{Shape: shape, Scale: 50}
		n := 50000
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = p.Sample(rng)
		}
		sort.Float64s(xs) // ascending
		k := 2000
		ref := xs[n-k-1]
		var sum float64
		for i := n - k; i < n; i++ {
			sum += math.Log(xs[i] / ref)
		}
		alphaHat := float64(k) / sum
		if math.Abs(alphaHat-shape)/shape > 0.1 {
			t.Errorf("shape %v: Hill estimate %v (>10%% off)", shape, alphaHat)
		}
	}
}

// TestInterarrivalMean checks the exponential clock: mean gap 1/rate
// and the memoryless CDF at the median.
func TestInterarrivalMean(t *testing.T) {
	for _, rate := range []float64{50, 500, 5000} {
		rng := rand.New(rand.NewSource(12))
		n := 50000
		var sum float64
		median := math.Ln2 / rate
		below := 0
		for i := 0; i < n; i++ {
			gap := Interarrival(rng, rate).Seconds()
			if gap < 0 {
				t.Fatalf("negative gap %v", gap)
			}
			sum += gap
			if gap < median {
				below++
			}
		}
		mean := sum / float64(n)
		if math.Abs(mean-1/rate)*rate > 0.03 {
			t.Errorf("rate %v: mean gap %v, want ~%v", rate, mean, 1/rate)
		}
		if frac := float64(below) / float64(n); frac < 0.47 || frac > 0.53 {
			t.Errorf("rate %v: fraction below median = %v, want ~0.5", rate, frac)
		}
	}
}

func TestInterarrivalZeroRate(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	if got := Interarrival(rng, 0); got != time.Second {
		t.Errorf("zero-rate gap = %v, want 1s", got)
	}
	if got := Interarrival(rng, -5); got != time.Second {
		t.Errorf("negative-rate gap = %v, want 1s", got)
	}
}

// TestSlashdotSpikeShape pins the paper profile's geometry beyond the
// monotonicity already covered: peak position, ramp linearity, and the
// total excess load of the spike (the triangle area over the base).
func TestSlashdotSpikeShape(t *testing.T) {
	s := PaperSlashdot()
	// Linearity: equal increments across the ramp.
	inc := s.Rate(100) - s.Rate(99)
	for e := 100; e < 124; e++ {
		if d := s.Rate(e+1) - s.Rate(e); math.Abs(d-inc) > 1e-6 {
			t.Fatalf("ramp increment at %d = %v, want %v", e, d, inc)
		}
	}
	wantInc := (183000.0 - 3000.0) / 25
	if math.Abs(inc-wantInc) > 1e-6 {
		t.Errorf("ramp increment = %v, want %v", inc, wantInc)
	}
	// Excess area: sum over the spike of (rate - base) approximates the
	// triangle (peak-base) * (ramp+decay) / 2.
	var excess float64
	for e := 90; e < 400; e++ {
		excess += s.Rate(e) - s.Base
	}
	want := (s.Peak - s.Base) * float64(s.RampEpochs+s.DecayEpochs) / 2
	if math.Abs(excess-want)/want > 0.02 {
		t.Errorf("spike excess area = %v, want ~%v", excess, want)
	}
	// The peak epoch is exactly the end of the ramp.
	for e := 95; e < 380; e++ {
		if s.Rate(e) > s.Rate(124) {
			t.Fatalf("epoch %d rate %v above the ramp-end rate", e, s.Rate(e))
		}
	}
}

func TestDriverOpenLoop(t *testing.T) {
	var mu sync.Mutex
	got := map[string]uint64{}
	d := &Driver{
		Rate:         func(time.Duration) float64 { return 2000 },
		ReadFraction: 0.5,
		Keys:         []string{"a", "b", "c"},
		Weights:      []float64{8, 1, 1},
		Seed:         21,
		MaxInFlight:  32,
		Do: func(ctx context.Context, op Op) error {
			if !op.Read {
				// Concurrent writes may land out of order; the invariant
				// only needs the max acked sequence per key.
				mu.Lock()
				if op.Seq > got[op.Key] {
					got[op.Key] = op.Seq
				}
				mu.Unlock()
			}
			return nil
		},
	}
	rep := d.Run(context.Background(), 300*time.Millisecond)
	if rep.Issued < 100 {
		t.Fatalf("issued only %d ops at 2000/s over 300ms", rep.Issued)
	}
	if rep.Failed != 0 {
		t.Fatalf("failed %d ops", rep.Failed)
	}
	if rep.Acked != rep.Issued {
		t.Errorf("acked %d of %d", rep.Acked, rep.Issued)
	}
	if rep.Reads+rep.Writes != rep.Issued {
		t.Errorf("reads+writes = %d+%d != issued %d", rep.Reads, rep.Writes, rep.Issued)
	}
	// Read fraction within loose binomial bounds.
	if frac := float64(rep.Reads) / float64(rep.Issued); frac < 0.35 || frac > 0.65 {
		t.Errorf("read fraction = %v, want ~0.5", frac)
	}
	// The acked floor matches what Do saw.
	for k, seq := range rep.LastAcked {
		if got[k] != seq {
			t.Errorf("key %s: LastAcked %d but store saw %d", k, seq, got[k])
		}
	}
	if rep.Availability() != 1 {
		t.Errorf("availability = %v", rep.Availability())
	}
}

// TestDriverPopularitySkew checks the weighted key choice: with weights
// 8:1:1 the hot key should absorb roughly 80% of the traffic.
func TestDriverPopularitySkew(t *testing.T) {
	var mu sync.Mutex
	counts := map[string]int{}
	d := &Driver{
		Rate:         func(time.Duration) float64 { return 5000 },
		ReadFraction: 1,
		Keys:         []string{"hot", "cold1", "cold2"},
		Weights:      []float64{8, 1, 1},
		Seed:         22,
		Do: func(ctx context.Context, op Op) error {
			mu.Lock()
			counts[op.Key]++
			mu.Unlock()
			return nil
		},
	}
	rep := d.Run(context.Background(), 400*time.Millisecond)
	if rep.Issued < 500 {
		t.Fatalf("issued only %d", rep.Issued)
	}
	frac := float64(counts["hot"]) / float64(rep.Issued)
	if frac < 0.7 || frac > 0.9 {
		t.Errorf("hot-key fraction = %v, want ~0.8", frac)
	}
}

// TestDriverShedsWhenSaturated: a Do that blocks past the phase forces
// the in-flight cap to shed arrivals instead of queueing unboundedly.
func TestDriverShedsWhenSaturated(t *testing.T) {
	release := make(chan struct{})
	d := &Driver{
		Rate:        func(time.Duration) float64 { return 3000 },
		Keys:        []string{"k"},
		Seed:        23,
		MaxInFlight: 4,
		Do: func(ctx context.Context, op Op) error {
			<-release
			return errors.New("too slow")
		},
	}
	done := make(chan Report, 1)
	go func() { done <- d.Run(context.Background(), 200*time.Millisecond) }()
	time.Sleep(250 * time.Millisecond)
	close(release)
	rep := <-done
	if rep.Issued != 4 {
		t.Errorf("issued %d, want exactly the in-flight cap 4", rep.Issued)
	}
	if rep.Dropped < 50 {
		t.Errorf("dropped only %d arrivals while saturated", rep.Dropped)
	}
	if rep.Failed != 4 {
		t.Errorf("failed %d, want 4", rep.Failed)
	}
	if rep.Availability() != 0 {
		t.Errorf("availability = %v, want 0", rep.Availability())
	}
}

func TestDriverContextCancel(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	d := &Driver{
		Rate: func(time.Duration) float64 { return 1000 },
		Keys: []string{"k"},
		Seed: 24,
		Do:   func(ctx context.Context, op Op) error { return nil },
	}
	start := time.Now()
	d.Run(ctx, 10*time.Second)
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("Run outlived its context by %v", elapsed)
	}
}

func TestDriverSeqsChainAcrossRuns(t *testing.T) {
	run := func(start map[string]uint64) Report {
		d := &Driver{
			Rate:         func(time.Duration) float64 { return 1000 },
			ReadFraction: 0, // writes only: every op consumes a sequence
			Keys:         []string{"a", "b"},
			Seed:         7,
			MaxInFlight:  8,
			StartSeqs:    start,
			Do:           func(ctx context.Context, op Op) error { return nil },
		}
		return d.Run(context.Background(), 200*time.Millisecond)
	}
	first := run(nil)
	if first.LastSeqs["a"] == 0 || first.LastSeqs["a"] != first.LastAcked["a"] {
		t.Fatalf("first run seqs = %v, acked = %v", first.LastSeqs, first.LastAcked)
	}
	second := run(first.LastSeqs)
	for _, k := range []string{"a", "b"} {
		if second.LastAcked[k] <= first.LastAcked[k] {
			t.Fatalf("key %s: second run acked %d, must continue above first run's %d",
				k, second.LastAcked[k], first.LastAcked[k])
		}
	}
}
