package workload

import (
	"context"
	"errors"
	"math/rand"
	"sort"
	"sync"
	"time"

	"skute/internal/resilience"
)

// Open-loop driver: offered load arrives on an exponential clock at a
// caller-shaped rate, independent of how fast the system answers —
// the arrival process does not slow down when the store does, which is
// what makes an availability SLA measurable under stress (a closed
// loop would self-throttle and hide the violation). The scenario
// harness runs one Driver per workload phase over the real TCP client.

// Op is one operation the driver asks the system under test to perform.
type Op struct {
	// Read distinguishes a read (Get) from a write (Put).
	Read bool
	// Key is the target key, drawn from the configured popularity.
	Key string
	// Seq is the per-key write sequence number (1-based, monotonically
	// increasing per key; 0 for reads). Writers encode it into the
	// stored value so the no-lost-acked-writes invariant can compare
	// what the store returns against what was acknowledged. Writes to
	// the same key are serialized (seq assigned when the write actually
	// starts), because under last-write-wins a reordered lower sequence
	// would overwrite an acknowledged higher one and fake a data loss.
	Seq uint64
	// Consistency optionally names the read consistency level for
	// harnesses that support per-request overrides ("one", "quorum",
	// "all"; "" = harness default). The driver never sets it — the
	// scenario runner's Do wrapper stamps it from the phase spec.
	Consistency string
}

// Report summarizes one driver run.
type Report struct {
	Issued  int // ops handed to Do
	Acked   int // Do returned nil
	Failed  int // Do returned an error
	Dropped int // arrivals shed because MaxInFlight was reached
	Reads   int // read ops issued
	Writes  int // write ops issued
	// Overloaded counts failures that were explicit admission-gate sheds
	// (resilience.ErrOverloaded): the system failing FAST and cleanly.
	// Timeouts counts failures that burned their full deadline instead —
	// the collapse signature overload shedding exists to prevent. Both
	// are subsets of Failed.
	Overloaded int
	Timeouts   int
	// LastAcked maps each key to the highest write sequence number the
	// system acknowledged — the floor a durable store must return at or
	// above after the run.
	LastAcked map[string]uint64
	// LastSeqs maps each key to the highest write sequence number
	// ASSIGNED (acked or not). A caller running several drivers over
	// one key space feeds these into the next driver's StartSeqs —
	// sequences must stay monotonic across runs, or a later run's
	// restarted seq 1 overwrites (via read-modify-write domination) a
	// higher acked value while looking like data loss to an invariant
	// that only remembers the maximum.
	LastSeqs map[string]uint64
}

// Availability is the acked fraction of issued ops (1 when nothing
// was issued). Dropped arrivals count against neither side: they
// measure driver backpressure, not system failures.
func (r Report) Availability() float64 {
	if r.Issued == 0 {
		return 1
	}
	return float64(r.Acked) / float64(r.Issued)
}

// Driver generates open-loop load. All fields must be set before Run;
// the zero value is not usable.
type Driver struct {
	// Rate yields the offered ops/sec at the given elapsed time since
	// Run started, so one driver can follow a Slashdot ramp by mapping
	// elapsed time to profile epochs.
	Rate func(elapsed time.Duration) float64
	// ReadFraction in [0,1] is the probability an arrival is a read.
	ReadFraction float64
	// Keys and Weights define the popularity distribution (Weights need
	// not be normalized; nil Weights means uniform).
	Keys    []string
	Weights []float64
	// Seed makes the arrival process and key choices reproducible.
	Seed int64
	// MaxInFlight bounds concurrently outstanding ops; arrivals beyond
	// it are dropped (<= 0 selects 64).
	MaxInFlight int
	// StartSeqs seeds each key's write sequence (the first write to key
	// k gets StartSeqs[k]+1). Nil starts every key at 1. Chain drivers
	// over the same keys by passing the previous Report.LastSeqs.
	StartSeqs map[string]uint64
	// Do performs one op against the system under test.
	Do func(ctx context.Context, op Op) error
}

// Run offers load for the given duration (or until ctx ends) and
// reports what happened. It blocks until every in-flight op returns.
func (d *Driver) Run(ctx context.Context, dur time.Duration) Report {
	rng := rand.New(rand.NewSource(d.Seed))
	maxInFlight := d.MaxInFlight
	if maxInFlight <= 0 {
		maxInFlight = 64
	}
	picker := NewPicker(d.Keys, d.Weights)

	rep := Report{LastAcked: make(map[string]uint64)}
	// Per-key write serialization: holding the key's lock across Do
	// keeps sequence order equal to store arrival order, so the highest
	// acked sequence really is the last-write-wins survivor. Hot keys
	// therefore queue their writes — that shows up as in-flight
	// pressure (and eventually Dropped), never as reordering.
	type keyState struct {
		mu  sync.Mutex
		seq uint64
	}
	writers := make(map[string]*keyState, len(d.Keys))
	for _, k := range d.Keys {
		writers[k] = &keyState{seq: d.StartSeqs[k]}
	}
	var mu sync.Mutex // guards rep.Acked/Failed/LastAcked after dispatch
	var wg sync.WaitGroup
	slots := make(chan struct{}, maxInFlight)

	start := time.Now()
	deadline := start.Add(dur)
	timer := time.NewTimer(0)
	defer timer.Stop()
	<-timer.C

	// Arrivals follow a virtual schedule: each gap advances `next`
	// regardless of how long dispatch took, and the loop only sleeps
	// when ahead of it. Coarse timers therefore cost bursts, not
	// offered load — the open-loop property the SLA checks rely on.
	next := start
	for {
		if ctx.Err() != nil {
			break
		}
		next = next.Add(Interarrival(rng, d.Rate(next.Sub(start))))
		if next.After(deadline) {
			break
		}
		if wait := time.Until(next); wait > 0 {
			timer.Reset(wait)
			select {
			case <-ctx.Done():
				goto drain
			case <-timer.C:
			}
		}

		op := Op{Read: rng.Float64() < d.ReadFraction}
		op.Key = picker.Pick(rng.Float64())
		select {
		case slots <- struct{}{}:
		default:
			rep.Dropped++
			continue
		}
		rep.Issued++
		if op.Read {
			rep.Reads++
		} else {
			rep.Writes++
		}
		wg.Add(1)
		go func(op Op) {
			defer wg.Done()
			defer func() { <-slots }()
			if !op.Read {
				ks := writers[op.Key]
				ks.mu.Lock()
				defer ks.mu.Unlock()
				ks.seq++
				op.Seq = ks.seq
			}
			err := d.Do(ctx, op)
			mu.Lock()
			if err != nil {
				rep.Failed++
				switch {
				case errors.Is(err, resilience.ErrOverloaded):
					rep.Overloaded++
				case errors.Is(err, context.DeadlineExceeded):
					rep.Timeouts++
				}
			} else {
				rep.Acked++
				if !op.Read && op.Seq > rep.LastAcked[op.Key] {
					rep.LastAcked[op.Key] = op.Seq
				}
			}
			mu.Unlock()
		}(op)
	}
drain:
	wg.Wait()
	rep.LastSeqs = make(map[string]uint64, len(writers))
	for k, ks := range writers {
		if ks.seq > 0 {
			rep.LastSeqs[k] = ks.seq
		}
	}
	return rep
}

// Picker draws keys from a popularity distribution: the cumulative
// weight table is built once, each draw is a binary search. It is the
// exported form of the Driver's internal key choice, shared with
// internal/loadgen so the load generator offers exactly the popularity
// the scenario driver does.
type Picker struct {
	keys []string
	cum  []float64
}

// NewPicker builds a picker over the keys; nil or mismatched weights
// degrade to uniform (matching Driver semantics).
func NewPicker(keys []string, weights []float64) *Picker {
	return &Picker{keys: keys, cum: cumulative(weights, len(keys))}
}

// Pick maps u in [0,1) to a key by popularity.
func (p *Picker) Pick(u float64) string { return p.keys[pick(p.cum, u)] }

// cumulative builds the cumulative weight table for n keys; nil or
// mismatched weights degrade to uniform.
func cumulative(weights []float64, n int) []float64 {
	cum := make([]float64, n)
	if len(weights) != n {
		for i := range cum {
			cum[i] = float64(i+1) / float64(n)
		}
		return cum
	}
	var sum float64
	for _, w := range weights {
		sum += w
	}
	if sum <= 0 {
		for i := range cum {
			cum[i] = float64(i+1) / float64(n)
		}
		return cum
	}
	run := 0.0
	for i, w := range weights {
		run += w / sum
		cum[i] = run
	}
	cum[n-1] = 1
	return cum
}

// pick locates u in the cumulative table.
func pick(cum []float64, u float64) int {
	i := sort.SearchFloat64s(cum, u)
	if i >= len(cum) {
		i = len(cum) - 1
	}
	return i
}
