package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"skute/internal/topology"
)

func TestParetoValidate(t *testing.T) {
	bad := []Pareto{{Shape: 0, Scale: 1}, {Shape: 1, Scale: 0}, {Shape: -1, Scale: -1}}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate(%+v): want error", p)
		}
	}
	if err := PaperPopularity().Validate(); err != nil {
		t.Errorf("paper popularity invalid: %v", err)
	}
}

func TestParetoSampleAboveScale(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := PaperPopularity()
	for i := 0; i < 10000; i++ {
		if x := p.Sample(rng); x < p.Scale {
			t.Fatalf("sample %v below scale %v", x, p.Scale)
		}
	}
}

func TestParetoSampleMedian(t *testing.T) {
	// For Pareto(shape a, scale m) the median is m * 2^(1/a).
	rng := rand.New(rand.NewSource(2))
	p := Pareto{Shape: 2, Scale: 10}
	wantMedian := p.Scale * math.Pow(2, 1/p.Shape)
	n, below := 50000, 0
	for i := 0; i < n; i++ {
		if p.Sample(rng) < wantMedian {
			below++
		}
	}
	frac := float64(below) / float64(n)
	if frac < 0.48 || frac > 0.52 {
		t.Errorf("fraction below median = %v, want ~0.5", frac)
	}
}

func TestParetoWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	w, err := PaperPopularity().Weights(rng, 200, 1000)
	if err != nil {
		t.Fatalf("Weights: %v", err)
	}
	if len(w) != 200 {
		t.Fatalf("len = %d", len(w))
	}
	var sum float64
	for _, x := range w {
		if x <= 0 {
			t.Fatalf("non-positive weight %v", x)
		}
		sum += x
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("weights sum to %v, want 1", sum)
	}
	// Heavy tail: max weight should dominate min weight clearly.
	min, max := w[0], w[0]
	for _, x := range w {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	if max/min < 5 {
		t.Errorf("popularity not skewed: max/min = %v", max/min)
	}
}

func TestParetoWeightsErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	if _, err := PaperPopularity().Weights(rng, 0, 0); err == nil {
		t.Error("Weights(n=0): want error")
	}
	if _, err := (Pareto{}).Weights(rng, 5, 0); err == nil {
		t.Error("Weights with invalid distribution: want error")
	}
}

func TestParetoWeightsClamped(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := Pareto{Shape: 0.5, Scale: 1} // extremely heavy tail
	w, err := p.Weights(rng, 1000, 10)
	if err != nil {
		t.Fatal(err)
	}
	// With clamping at 10x scale no single weight can exceed
	// 10 / (1000 * 1) of the total in the worst case bound; just assert a
	// sane cap.
	for _, x := range w {
		if x > 0.05 {
			t.Fatalf("clamped weight %v unexpectedly large", x)
		}
	}
}

func TestPoissonMeanVariance(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, lambda := range []float64{0.5, 4, 25, 100, 3000} {
		n := 20000
		var sum, sumsq float64
		for i := 0; i < n; i++ {
			x := float64(Poisson(rng, lambda))
			sum += x
			sumsq += x * x
		}
		mean := sum / float64(n)
		variance := sumsq/float64(n) - mean*mean
		if math.Abs(mean-lambda) > 4*math.Sqrt(lambda/float64(n))+0.6 {
			t.Errorf("lambda=%v: mean=%v", lambda, mean)
		}
		if variance < lambda*0.9-1 || variance > lambda*1.1+1 {
			t.Errorf("lambda=%v: variance=%v", lambda, variance)
		}
	}
}

func TestPoissonEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	if Poisson(rng, 0) != 0 || Poisson(rng, -3) != 0 {
		t.Error("Poisson with non-positive lambda should be 0")
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		return Poisson(r, 50) >= 0 && Poisson(r, 3) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSplitPoisson(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	weights := []float64{4, 2, 1}
	var totals [3]float64
	rounds := 2000
	for i := 0; i < rounds; i++ {
		qs := SplitPoisson(rng, 700, weights)
		for j, q := range qs {
			totals[j] += float64(q)
		}
	}
	// Expect 4:2:1 split of 700 => 400/200/100 per round.
	want := [3]float64{400, 200, 100}
	for j := range totals {
		got := totals[j] / float64(rounds)
		if math.Abs(got-want[j]) > want[j]*0.05 {
			t.Errorf("class %d mean %v, want ~%v", j, got, want[j])
		}
	}
	// Degenerate inputs.
	zero := SplitPoisson(rng, 0, weights)
	for _, q := range zero {
		if q != 0 {
			t.Error("SplitPoisson with zero rate produced queries")
		}
	}
	zw := SplitPoisson(rng, 100, []float64{0, 0})
	for _, q := range zw {
		if q != 0 {
			t.Error("SplitPoisson with zero weights produced queries")
		}
	}
}

func TestConstantProfile(t *testing.T) {
	p := Constant(3000)
	for _, e := range []int{0, 1, 999} {
		if p.Rate(e) != 3000 {
			t.Fatalf("Rate(%d) = %v", e, p.Rate(e))
		}
	}
}

func TestSlashdotProfileShape(t *testing.T) {
	s := PaperSlashdot()
	if r := s.Rate(0); r != 3000 {
		t.Errorf("pre-spike rate = %v", r)
	}
	if r := s.Rate(99); r != 3000 {
		t.Errorf("epoch 99 rate = %v", r)
	}
	// Peak reached at the end of the ramp.
	if r := s.Rate(124); math.Abs(r-183000) > 1e-6 {
		t.Errorf("peak rate = %v, want 183000", r)
	}
	// Monotone rise during the ramp.
	for e := 100; e < 124; e++ {
		if s.Rate(e) >= s.Rate(e+1) {
			t.Fatalf("ramp not increasing at epoch %d", e)
		}
	}
	// Monotone decay afterwards.
	for e := 125; e < 374; e++ {
		if s.Rate(e) <= s.Rate(e+1) {
			t.Fatalf("decay not decreasing at epoch %d (%v -> %v)", e, s.Rate(e), s.Rate(e+1))
		}
	}
	if r := s.Rate(375); r != 3000 {
		t.Errorf("post-decay rate = %v, want 3000", r)
	}
	if r := s.Rate(10000); r != 3000 {
		t.Errorf("far-future rate = %v, want 3000", r)
	}
}

func TestInsertStream(t *testing.T) {
	s := PaperInsertStream()
	if s.PerEpoch != 2000 || s.ValueSize != 500<<10 {
		t.Fatalf("paper insert stream = %+v", s)
	}
	if got := s.BytesPerEpoch(); got != 2000*500<<10 {
		t.Errorf("BytesPerEpoch = %d", got)
	}
}

func TestUniformClientsG(t *testing.T) {
	loc := topology.Qualified("eu", "ch", "dc0", "room0", "rack0", "srv0")
	if g := (UniformClients{}).G(loc); g != 1 {
		t.Errorf("uniform G = %v, want 1", g)
	}
}

func TestRegionClientsG(t *testing.T) {
	euClient := topology.Qualified("eu", "ch", "client", "client", "client", "client")
	usClient := topology.Qualified("us", "us-east", "client", "client", "client", "client")
	rc, err := NewRegionClients(
		[]topology.Location{euClient, usClient},
		[]float64{900, 100},
	)
	if err != nil {
		t.Fatal(err)
	}
	if rc.Total() != 1000 {
		t.Errorf("Total = %v", rc.Total())
	}
	euServer := topology.Qualified("eu", "ch", "dc0", "room0", "rack0", "srv0")
	usServer := topology.Qualified("us", "us-east", "dc0", "room0", "rack0", "srv0")
	apServer := topology.Qualified("ap", "jp", "dc0", "room0", "rack0", "srv0")
	gEU, gUS, gAP := rc.G(euServer), rc.G(usServer), rc.G(apServer)
	// Most clients are in the EU country, so the EU server must be
	// preferred, then the US one, and a third-continent server last.
	if !(gEU > gUS && gUS > gAP) {
		t.Errorf("g ordering wrong: eu=%v us=%v ap=%v", gEU, gUS, gAP)
	}
	if gEU <= 0 || gEU > 1000 {
		t.Errorf("gEU out of range: %v", gEU)
	}
}

func TestRegionClientsErrors(t *testing.T) {
	loc := topology.Qualified("eu", "ch", "a", "b", "c", "d")
	if _, err := NewRegionClients([]topology.Location{loc}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths: want error")
	}
	if _, err := NewRegionClients(nil, nil); err == nil {
		t.Error("empty distribution: want error")
	}
	if _, err := NewRegionClients([]topology.Location{loc}, []float64{-1}); err == nil {
		t.Error("negative queries: want error")
	}
	if _, err := NewRegionClients([]topology.Location{loc}, []float64{0}); err == nil {
		t.Error("zero total queries: want error")
	}
}

func BenchmarkPoissonLarge(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Poisson(rng, 3000)
	}
}

func BenchmarkParetoSample(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	p := PaperPopularity()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Sample(rng)
	}
}
