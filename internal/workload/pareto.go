// Package workload provides the synthetic workload generators of the
// paper's evaluation (Section III-A): Pareto-distributed partition
// popularity, Poisson query arrivals, the Slashdot load spike, the
// saturation insert stream, and the geographic distribution of query
// clients (Eq. 4).
//
// All generators draw from a caller-supplied *rand.Rand so that every
// experiment is reproducible from its seed.
package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// Pareto samples a Pareto Type I distribution with the given shape and
// scale: P(X > x) = (Scale/x)^Shape for x >= Scale. The paper distributes
// partition popularity as Pareto(1, 50), i.e. shape 1 and scale 50: a
// heavy-tailed popularity profile where a few partitions attract most of
// the query load.
type Pareto struct {
	Shape float64 // tail index alpha > 0; smaller = heavier tail
	Scale float64 // minimum value x_m > 0
}

// PaperPopularity is the Pareto(1, 50) popularity distribution of
// Section III-A.
func PaperPopularity() Pareto { return Pareto{Shape: 1, Scale: 50} }

// Validate reports an error for non-positive parameters.
func (p Pareto) Validate() error {
	if p.Shape <= 0 || p.Scale <= 0 {
		return fmt.Errorf("workload: Pareto(shape=%v, scale=%v) requires positive parameters", p.Shape, p.Scale)
	}
	return nil
}

// Sample draws one value by inversion: x = scale / U^(1/shape).
func (p Pareto) Sample(rng *rand.Rand) float64 {
	u := rng.Float64()
	for u == 0 { // avoid +Inf
		u = rng.Float64()
	}
	return p.Scale / math.Pow(u, 1/p.Shape)
}

// Weights draws n popularity weights and normalizes them to sum to 1.
// Shape 1 has infinite mean, so individual draws are clamped to
// maxRatio times the scale (a standard truncation that keeps a single
// partition from absorbing essentially the whole workload while preserving
// the heavy tail). maxRatio <= 0 means no clamping.
func (p Pareto) Weights(rng *rand.Rand, n int, maxRatio float64) ([]float64, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("workload: need a positive number of weights, got %d", n)
	}
	w := make([]float64, n)
	var sum float64
	for i := range w {
		x := p.Sample(rng)
		if maxRatio > 0 && x > p.Scale*maxRatio {
			x = p.Scale * maxRatio
		}
		w[i] = x
		sum += x
	}
	for i := range w {
		w[i] /= sum
	}
	return w, nil
}
