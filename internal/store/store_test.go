package store

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"skute/internal/merkle"
	"skute/internal/vclock"
)

func ver(val string, clock vclock.VC) Version {
	return Version{Value: []byte(val), Clock: clock}
}

func TestPutGetBasic(t *testing.T) {
	e := NewMemory()
	if got := e.Get("k"); got != nil {
		t.Fatal("get of absent key != nil")
	}
	acc, err := e.Put("k", ver("v1", vclock.VC{"a": 1}))
	if err != nil || !acc {
		t.Fatalf("Put: %v %v", acc, err)
	}
	vs := e.Get("k")
	if len(vs) != 1 || string(vs[0].Value) != "v1" {
		t.Fatalf("Get = %+v", vs)
	}
	if e.Len() != 1 || e.Bytes() != 2 {
		t.Errorf("Len/Bytes = %d/%d", e.Len(), e.Bytes())
	}
}

func TestCausalOverwrite(t *testing.T) {
	e := NewMemory()
	e.Put("k", ver("old", vclock.VC{"a": 1}))
	acc, _ := e.Put("k", ver("new", vclock.VC{"a": 2}))
	if !acc {
		t.Fatal("descending write rejected")
	}
	vs := e.Get("k")
	if len(vs) != 1 || string(vs[0].Value) != "new" {
		t.Fatalf("after overwrite: %+v", vs)
	}
	if e.Bytes() != 3 {
		t.Errorf("Bytes = %d, want 3", e.Bytes())
	}
	// A stale write (older clock) must be a no-op.
	acc, _ = e.Put("k", ver("stale", vclock.VC{"a": 1}))
	if acc {
		t.Error("stale write accepted")
	}
	if string(e.Get("k")[0].Value) != "new" {
		t.Error("stale write changed state")
	}
	// An identical clock is also a no-op.
	if acc, _ := e.Put("k", ver("dup", vclock.VC{"a": 2})); acc {
		t.Error("duplicate clock accepted")
	}
}

func TestConcurrentSiblings(t *testing.T) {
	e := NewMemory()
	e.Put("k", ver("from-a", vclock.VC{"a": 1}))
	acc, _ := e.Put("k", ver("from-b", vclock.VC{"b": 1}))
	if !acc {
		t.Fatal("concurrent write rejected")
	}
	vs := e.Get("k")
	if len(vs) != 2 {
		t.Fatalf("want 2 siblings, got %+v", vs)
	}
	// A reconciled write dominating both collapses the siblings.
	merged := vclock.Merge(vs[0].Clock, vs[1].Clock).Tick("a")
	e.Put("k", ver("merged", merged))
	vs = e.Get("k")
	if len(vs) != 1 || string(vs[0].Value) != "merged" {
		t.Fatalf("after reconcile: %+v", vs)
	}
}

func TestTombstone(t *testing.T) {
	e := NewMemory()
	e.Put("k", ver("v", vclock.VC{"a": 1}))
	e.Put("k", Version{Tombstone: true, Clock: vclock.VC{"a": 2}})
	vs := e.Get("k")
	if len(vs) != 1 || !vs[0].Tombstone {
		t.Fatalf("tombstone not applied: %+v", vs)
	}
	if _, ok := Resolve(vs); ok {
		t.Error("tombstoned key resolved to a value")
	}
}

func TestResolve(t *testing.T) {
	vals, ok := Resolve([]Version{
		{Value: []byte("x"), Clock: vclock.VC{"a": 1}},
		{Value: []byte("y"), Clock: vclock.VC{"b": 1}},
	})
	if !ok || len(vals) != 2 {
		t.Errorf("Resolve = %q %v", vals, ok)
	}
	if _, ok := Resolve(nil); ok {
		t.Error("Resolve(nil) ok")
	}
}

func TestKeysSorted(t *testing.T) {
	e := NewMemory()
	for _, k := range []string{"c", "a", "b"} {
		e.Put(k, ver("v", vclock.VC{k: 1}))
	}
	ks := e.Keys()
	if len(ks) != 3 || ks[0] != "a" || ks[2] != "c" {
		t.Errorf("Keys = %v", ks)
	}
}

func TestByteAccounting(t *testing.T) {
	e := NewMemory()
	e.Put("k", ver("12345", vclock.VC{"a": 1}))
	e.Put("k2", ver("123", vclock.VC{"a": 1}))
	if e.Bytes() != 8 {
		t.Fatalf("Bytes = %d", e.Bytes())
	}
	// Overwrite shrinks.
	e.Put("k", ver("1", vclock.VC{"a": 2}))
	if e.Bytes() != 4 {
		t.Fatalf("Bytes after overwrite = %d", e.Bytes())
	}
	// Sibling adds.
	e.Put("k", ver("22", vclock.VC{"b": 1}))
	if e.Bytes() != 6 {
		t.Fatalf("Bytes after sibling = %d", e.Bytes())
	}
}

func TestWALPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "engine.wal")
	e, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	e.Put("a", ver("1", vclock.VC{"n": 1}))
	e.Put("b", ver("2", vclock.VC{"n": 2}))
	e.Put("a", ver("3", vclock.VC{"n": 3})) // overwrite
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if e2.Len() != 2 {
		t.Fatalf("recovered Len = %d", e2.Len())
	}
	if got := e2.Get("a"); len(got) != 1 || string(got[0].Value) != "3" {
		t.Fatalf("recovered a = %+v", got)
	}
	if got := e2.Get("b"); len(got) != 1 || string(got[0].Value) != "2" {
		t.Fatalf("recovered b = %+v", got)
	}
	// Stale writes rejected during replay keep accounting exact.
	if e2.Bytes() != 2 {
		t.Errorf("recovered Bytes = %d, want 2", e2.Bytes())
	}
}

func TestMerkleLeavesDetectDivergence(t *testing.T) {
	a, b := NewMemory(), NewMemory()
	for i := 0; i < 10; i++ {
		k := fmt.Sprintf("k%d", i)
		v := ver("same", vclock.VC{"n": uint64(i + 1)})
		a.Put(k, v)
		b.Put(k, v)
	}
	ta := merkle.Build(a.MerkleLeaves(nil))
	tb := merkle.Build(b.MerkleLeaves(nil))
	if ta.Root() != tb.Root() {
		t.Fatal("identical engines have different roots")
	}
	b.Put("k3", ver("diverged", vclock.VC{"n": 100}))
	tb = merkle.Build(b.MerkleLeaves(nil))
	diff := merkle.DiffKeys(ta, tb)
	if len(diff) != 1 || diff[0] != "k3" {
		t.Fatalf("diff = %v", diff)
	}
}

func TestMerkleLeavesFilter(t *testing.T) {
	e := NewMemory()
	e.Put("keep", ver("v", vclock.VC{"a": 1}))
	e.Put("drop", ver("v", vclock.VC{"a": 1}))
	leaves := e.MerkleLeaves(func(k string) bool { return k == "keep" })
	if len(leaves) != 1 || leaves[0].Key != "keep" {
		t.Errorf("filtered leaves = %+v", leaves)
	}
}

func TestGetReturnsCopy(t *testing.T) {
	e := NewMemory()
	e.Put("k", ver("v", vclock.VC{"a": 1}))
	vs := e.Get("k")
	vs[0].Value[0] = 'X' // mutating the copy must not corrupt the engine...
	vs[0].Tombstone = true
	fresh := e.Get("k")
	if fresh[0].Tombstone {
		t.Error("caller mutation of the slice leaked into the engine")
	}
	// Regression: the value bytes and clock must be deep copies too, not
	// aliases of engine state.
	if string(fresh[0].Value) != "v" {
		t.Errorf("caller mutation of Value leaked into the engine: %q", fresh[0].Value)
	}
	vs[0].Clock["a"] = 99
	if e.Get("k")[0].Clock["a"] != 1 {
		t.Error("caller mutation of Clock leaked into the engine")
	}
}

func TestPutDoesNotAliasCallerBuffer(t *testing.T) {
	e := NewMemory()
	buf := []byte("original")
	e.Put("k", ver(string(buf), nil))
	v := Version{Value: buf, Clock: vclock.VC{"a": 1}}
	e.Put("k2", v)
	buf[0] = 'X' // callers reuse write buffers; the engine must not see it
	if got := e.Get("k2"); string(got[0].Value) != "original" {
		t.Errorf("stored value aliases the caller buffer: %q", got[0].Value)
	}
}

func TestConcurrentAccess(t *testing.T) {
	e := NewMemory()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			node := fmt.Sprintf("n%d", n)
			for j := 0; j < 100; j++ {
				k := fmt.Sprintf("k%d", j%10)
				e.Put(k, ver("v", vclock.VC{node: uint64(j + 1)}))
				e.Get(k)
				e.Bytes()
			}
		}(i)
	}
	wg.Wait()
	if e.Len() != 10 {
		t.Errorf("Len = %d", e.Len())
	}
}

// TestWALReplayMatchesConcurrentState is the regression test for the WAL
// ordering race: with appends outside the engine lock, two racing
// mutations of one key could reach the log in the opposite order they
// were applied and replay to a different state. Now records are appended
// under the shard lock, so whatever state the live engine ends up in, a
// reopen must reproduce it bit-for-bit (Merkle root and byte accounting).
func TestWALReplayMatchesConcurrentState(t *testing.T) {
	path := filepath.Join(t.TempDir(), "engine.wal")
	e, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			node := fmt.Sprintf("n%d", g)
			for j := 1; j <= 60; j++ {
				k := fmt.Sprintf("k%d", j%7)
				if g == 0 && j%9 == 0 {
					// Drops race the puts: the one mutation pair whose
					// replay outcome actually depends on log order.
					if _, err := e.Drop(k); err != nil {
						t.Errorf("Drop: %v", err)
					}
					continue
				}
				if _, err := e.Put(k, ver(fmt.Sprintf("%s-%d", node, j), vclock.VC{node: uint64(j)})); err != nil {
					t.Errorf("Put: %v", err)
				}
			}
		}(g)
	}
	wg.Wait()

	liveRoot := merkle.Build(e.MerkleLeaves(nil)).Root()
	liveBytes, liveLen := e.Bytes(), e.Len()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if root := merkle.Build(e2.MerkleLeaves(nil)).Root(); root != liveRoot {
		t.Error("replayed state diverges from the live engine state")
	}
	if e2.Bytes() != liveBytes || e2.Len() != liveLen {
		t.Errorf("replayed accounting %d bytes/%d keys, live %d/%d", e2.Bytes(), e2.Len(), liveBytes, liveLen)
	}
}

func TestShardedAccountingUnderParallelLoad(t *testing.T) {
	e := NewMemory()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			node := fmt.Sprintf("n%d", g)
			for j := 1; j <= 200; j++ {
				e.Put(fmt.Sprintf("key-%d-%d", g, j), ver("0123456789", vclock.VC{node: uint64(j)}))
			}
		}(g)
	}
	wg.Wait()
	if e.Len() != 8*200 {
		t.Errorf("Len = %d, want %d", e.Len(), 8*200)
	}
	if e.Bytes() != int64(8*200*10) {
		t.Errorf("Bytes = %d, want %d", e.Bytes(), 8*200*10)
	}
	for g := 0; g < 8; g++ {
		if _, err := e.Drop(fmt.Sprintf("key-%d-1", g)); err != nil {
			t.Fatal(err)
		}
	}
	if e.Bytes() != int64(8*199*10) {
		t.Errorf("Bytes after drops = %d, want %d", e.Bytes(), 8*199*10)
	}
}

func BenchmarkPut(b *testing.B) {
	e := NewMemory()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Put(fmt.Sprintf("k%d", i%1000), ver("value-bytes", vclock.VC{"n": uint64(i + 1)}))
	}
}

func BenchmarkGet(b *testing.B) {
	e := NewMemory()
	for i := 0; i < 1000; i++ {
		e.Put(fmt.Sprintf("k%d", i), ver("value-bytes", vclock.VC{"n": uint64(i + 1)}))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Get(fmt.Sprintf("k%d", i%1000))
	}
}
