package store

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"skute/internal/merkle"
	"skute/internal/snapshot"
	"skute/internal/vclock"
	"skute/internal/wal"
)

// dirs returns fresh wal and snapshot directories for one durable engine.
func dirs(t testing.TB) (walDir, snapDir string) {
	t.Helper()
	base := t.TempDir()
	return filepath.Join(base, "wal"), filepath.Join(base, "snaps")
}

// fingerprint captures everything a restore must reproduce.
func fingerprint(e *Engine) (root merkle.Digest, bytes int64, keys int) {
	return merkle.Build(e.MerkleLeaves(nil)).Root(), e.Bytes(), e.Len()
}

func TestCheckpointRestoreRoundTrip(t *testing.T) {
	walDir, snapDir := dirs(t)
	opts := Options{WAL: wal.Options{SegmentBytes: 512}}
	e, err := RestoreOptions(walDir, snapDir, opts)
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 30; i++ {
		k := fmt.Sprintf("k%d", i%10) // overwrites: history > live data
		if _, err := e.Put(k, ver(fmt.Sprintf("v%d", i), vclock.VC{"n": uint64(i + 1)})); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Drop("k9"); err != nil {
		t.Fatal(err)
	}
	seq1, err := e.Checkpoint(snapDir)
	if err != nil {
		t.Fatalf("first Checkpoint: %v", err)
	}
	if seq1 == 0 {
		t.Fatal("checkpoint covered seq 0")
	}

	// Tail writes after the first checkpoint, then a second checkpoint,
	// then more tail — the realistic steady state.
	for i := 30; i < 40; i++ {
		e.Put(fmt.Sprintf("k%d", i%10), ver(fmt.Sprintf("v%d", i), vclock.VC{"n": uint64(i + 1)}))
	}
	seq2, err := e.Checkpoint(snapDir)
	if err != nil {
		t.Fatalf("second Checkpoint: %v", err)
	}
	if seq2 <= seq1 {
		t.Fatalf("checkpoint seqs not increasing: %d then %d", seq1, seq2)
	}
	e.Put("tail-key", ver("tail", vclock.VC{"t": 1}))

	root, liveBytes, liveKeys := fingerprint(e)
	d := e.Durability()
	if d.Checkpoints != 2 || d.LastCheckpointSeq != seq2 {
		t.Errorf("Durability = %+v", d)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := RestoreOptions(walDir, snapDir, opts)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	defer r.Close()
	rRoot, rBytes, rKeys := fingerprint(r)
	if rRoot != root || rBytes != liveBytes || rKeys != liveKeys {
		t.Fatalf("restored (%x, %d bytes, %d keys) != live (%x, %d, %d)",
			rRoot, rBytes, rKeys, root, liveBytes, liveKeys)
	}
	rd := r.Durability()
	if rd.SnapshotSeq != seq2 {
		t.Errorf("restored from snapshot seq %d, want %d", rd.SnapshotSeq, seq2)
	}
	if rd.TailRecords != 1 {
		t.Errorf("replayed %d tail records, want 1 (the post-checkpoint put)", rd.TailRecords)
	}
	// The WAL is retained back to the OLDER snapshot generation, so the
	// records between the two checkpoints are scanned but skipped.
	if rd.TailSkipped == 0 {
		t.Error("expected skipped records (WAL retained to the older snapshot)")
	}
}

func TestRestoreFallsBackToOlderSnapshot(t *testing.T) {
	walDir, snapDir := dirs(t)
	opts := Options{WAL: wal.Options{SegmentBytes: 256}}
	e, err := RestoreOptions(walDir, snapDir, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		e.Put(fmt.Sprintf("k%d", i), ver("v1", vclock.VC{"n": uint64(i + 1)}))
	}
	if _, err := e.Checkpoint(snapDir); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		e.Put(fmt.Sprintf("k%d", i), ver("v2", vclock.VC{"n": uint64(100 + i)}))
	}
	seq2, err := e.Checkpoint(snapDir)
	if err != nil {
		t.Fatal(err)
	}
	e.Put("post", ver("p", vclock.VC{"p": 1}))
	root, liveBytes, liveKeys := fingerprint(e)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the newest snapshot: restore must fall back to the older
	// generation and recover the difference from the retained WAL tail.
	newest := filepath.Join(snapDir, fmt.Sprintf("snap-%020d.skt", seq2))
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0xFF
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := RestoreOptions(walDir, snapDir, opts)
	if err != nil {
		t.Fatalf("Restore with corrupt newest snapshot: %v", err)
	}
	defer r.Close()
	rRoot, rBytes, rKeys := fingerprint(r)
	if rRoot != root || rBytes != liveBytes || rKeys != liveKeys {
		t.Fatal("fallback restore diverged from pre-crash state")
	}
	if rd := r.Durability(); rd.SnapshotSeq >= seq2 {
		t.Errorf("restored from snapshot seq %d, want the older generation", rd.SnapshotSeq)
	}
}

func TestRestoreRefusesGappedLog(t *testing.T) {
	walDir, snapDir := dirs(t)
	e, err := Restore(walDir, snapDir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		e.Put(fmt.Sprintf("k%d", i), ver("v", vclock.VC{"n": uint64(i + 1)}))
	}
	if _, err := e.Checkpoint(snapDir); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	// Lose every snapshot: the WAL alone no longer reaches back to seq 1.
	if err := os.RemoveAll(snapDir); err != nil {
		t.Fatal(err)
	}
	if _, err := Restore(walDir, snapDir); err == nil {
		t.Fatal("Restore booted from a truncated WAL with no snapshot")
	}
}

// TestLegacySingleFileWALUpgrade: an engine whose WAL was written by the
// pre-segmented single-file format (magic|length|crc|payload frames, no
// sequence numbers) must open in place with all its records, migrated
// into the directory format.
func TestLegacySingleFileWALUpgrade(t *testing.T) {
	path := filepath.Join(t.TempDir(), "node.wal")
	var file []byte
	frame := func(rec walRecord) {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(rec); err != nil {
			t.Fatal(err)
		}
		var hdr [12]byte
		binary.LittleEndian.PutUint32(hdr[0:4], 0x534b5457)
		binary.LittleEndian.PutUint32(hdr[4:8], uint32(buf.Len()))
		binary.LittleEndian.PutUint32(hdr[8:12], crc32.ChecksumIEEE(buf.Bytes()))
		file = append(file, hdr[:]...)
		file = append(file, buf.Bytes()...)
	}
	frame(walRecord{Key: "a", Version: ver("1", vclock.VC{"n": 1})})
	frame(walRecord{Key: "b", Version: ver("2", vclock.VC{"n": 2})})
	frame(walRecord{Key: "a", Version: ver("3", vclock.VC{"n": 3})}) // overwrite
	frame(walRecord{Key: "b", Drop: true})
	if err := os.WriteFile(path, file, 0o644); err != nil {
		t.Fatal(err)
	}

	e, err := Open(path)
	if err != nil {
		t.Fatalf("Open on legacy single-file WAL: %v", err)
	}
	defer e.Close()
	if got := e.Get("a"); len(got) != 1 || string(got[0].Value) != "3" {
		t.Fatalf("migrated a = %+v", got)
	}
	if got := e.Get("b"); got != nil {
		t.Fatalf("dropped key survived migration: %+v", got)
	}
	if e.Len() != 1 {
		t.Fatalf("migrated Len = %d", e.Len())
	}
	// And the engine keeps working durably in the new format.
	if _, err := e.Put("c", ver("new", vclock.VC{"n": 4})); err != nil {
		t.Fatal(err)
	}
}

// TestRestoreRefusesWALBehindSnapshot: a wiped or mismatched WAL
// directory sits behind the snapshot's sequence number. Booting would
// re-issue sequence numbers the snapshot already covers, and the NEXT
// restart would then skip those acknowledged writes as "already in the
// snapshot" — silent data loss. Restore must refuse instead.
func TestRestoreRefusesWALBehindSnapshot(t *testing.T) {
	walDir, snapDir := dirs(t)
	e, err := Restore(walDir, snapDir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		e.Put(fmt.Sprintf("k%d", i), ver("v", vclock.VC{"n": uint64(i + 1)}))
	}
	if _, err := e.Checkpoint(snapDir); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	// Lose the WAL volume: the snapshot survives, the log restarts at 1.
	if err := os.RemoveAll(walDir); err != nil {
		t.Fatal(err)
	}
	if _, err := Restore(walDir, snapDir); err == nil {
		t.Fatal("Restore booted with a WAL behind the snapshot (seq reuse)")
	}
}

// TestKillAndRestart simulates a crash (no Close): every acknowledged
// write must survive through snapshot + tail replay, checksums verified
// along both paths.
func TestKillAndRestart(t *testing.T) {
	walDir, snapDir := dirs(t)
	opts := Options{WAL: wal.Options{SegmentBytes: 512}}
	e, err := RestoreOptions(walDir, snapDir, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		if _, err := e.Put(fmt.Sprintf("k%d", i%8), ver(fmt.Sprintf("v%d", i), vclock.VC{"n": uint64(i + 1)})); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Checkpoint(snapDir); err != nil {
		t.Fatal(err)
	}
	for i := 25; i < 32; i++ {
		if _, err := e.Put(fmt.Sprintf("k%d", i%8), ver(fmt.Sprintf("v%d", i), vclock.VC{"n": uint64(i + 1)})); err != nil {
			t.Fatal(err)
		}
	}
	root, liveBytes, liveKeys := fingerprint(e)
	// Crash: no Close, no final flush. Every Put above was acknowledged,
	// so group commit has already fsynced it.

	r, err := RestoreOptions(walDir, snapDir, opts)
	if err != nil {
		t.Fatalf("Restore after kill: %v", err)
	}
	defer r.Close()
	rRoot, rBytes, rKeys := fingerprint(r)
	if rRoot != root || rBytes != liveBytes || rKeys != liveKeys {
		t.Fatal("state lost across kill-and-restart")
	}
	if rd := r.Durability(); rd.SnapshotSeq == 0 {
		t.Error("restart did not use the snapshot")
	}
}

// TestCheckpointUnderConcurrentWrites is the race test of the
// checkpoint's copy-on-read design: writers keep mutating every shard
// while checkpoints run; afterwards a restore must reproduce the final
// state exactly, and every intermediate snapshot must have been readable
// (a consistent point-in-time view, not a torn one).
func TestCheckpointUnderConcurrentWrites(t *testing.T) {
	walDir, snapDir := dirs(t)
	opts := Options{WAL: wal.Options{SegmentBytes: 4096}}
	e, err := RestoreOptions(walDir, snapDir, opts)
	if err != nil {
		t.Fatal(err)
	}

	const writers, perW = 8, 120
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			node := fmt.Sprintf("n%d", g)
			for j := 1; j <= perW; j++ {
				k := fmt.Sprintf("k%d", j%13)
				if g == 0 && j%11 == 0 {
					if _, err := e.Drop(k); err != nil {
						t.Errorf("Drop: %v", err)
					}
					continue
				}
				if _, err := e.Put(k, ver(fmt.Sprintf("%s-%d", node, j), vclock.VC{node: uint64(j)})); err != nil {
					t.Errorf("Put: %v", err)
				}
			}
		}(g)
	}
	// Checkpoints race the writers.
	ckptDone := make(chan error, 1)
	go func() {
		for i := 0; i < 5; i++ {
			if _, err := e.Checkpoint(snapDir); err != nil {
				ckptDone <- err
				return
			}
			// Each snapshot written mid-storm must validate cleanly.
			if _, _, err := snapshot.Latest(snapDir); err != nil {
				ckptDone <- fmt.Errorf("mid-storm snapshot unreadable: %w", err)
				return
			}
		}
		ckptDone <- nil
	}()
	wg.Wait()
	if err := <-ckptDone; err != nil {
		t.Fatal(err)
	}

	root, liveBytes, liveKeys := fingerprint(e)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := RestoreOptions(walDir, snapDir, opts)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	defer r.Close()
	rRoot, rBytes, rKeys := fingerprint(r)
	if rRoot != root || rBytes != liveBytes || rKeys != liveKeys {
		t.Fatalf("restored (%d bytes, %d keys) != live (%d, %d) — checkpoint raced writers into an inconsistent view",
			rBytes, rKeys, liveBytes, liveKeys)
	}
}

// TestRecoveryBoundedByLiveData is the tentpole property: after a
// checkpoint, restart replays the post-checkpoint tail only, not the
// whole overwrite history.
func TestRecoveryBoundedByLiveData(t *testing.T) {
	walDir, snapDir := dirs(t)
	opts := Options{WAL: wal.Options{SegmentBytes: 8 << 10}}
	e, err := RestoreOptions(walDir, snapDir, opts)
	if err != nil {
		t.Fatal(err)
	}
	const keys, rounds = 50, 80 // 4000 records of history, 50 live keys
	for r := 1; r <= rounds; r++ {
		for k := 0; k < keys; k++ {
			if _, err := e.Put(fmt.Sprintf("k%d", k), ver(fmt.Sprintf("r%d", r), vclock.VC{"n": uint64(r)})); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := e.Checkpoint(snapDir); err != nil {
		t.Fatal(err)
	}
	const tail = 7
	for i := 0; i < tail; i++ {
		e.Put(fmt.Sprintf("k%d", i), ver("tail", vclock.VC{"n": rounds + 1}))
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := RestoreOptions(walDir, snapDir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	d := r.Durability()
	if d.TailRecords != tail {
		t.Errorf("replayed %d records, want the %d-record tail (history is %d records)",
			d.TailRecords, tail, keys*rounds)
	}
	// First checkpoint retains no older generation, so nothing to skip.
	if d.TailSkipped != 0 {
		t.Errorf("skipped %d records, want 0 after a truncating checkpoint", d.TailSkipped)
	}
	if d.SnapshotSeq == 0 {
		t.Error("restore did not load the snapshot")
	}
	if r.Len() != keys {
		t.Errorf("restored %d keys, want %d", r.Len(), keys)
	}
}

// BenchmarkRecovery measures restart cost after heavy overwrite history:
// 100k overwrites of 1k keys (1 KiB values). full-replay reboots from the
// complete WAL; checkpointed takes one checkpoint first, so the reboot
// reads only the snapshot (≈ live data) plus the empty tail. The
// disk-bytes/op and replayed-records/op metrics expose the O(history) →
// O(live) drop.
func BenchmarkRecovery(b *testing.B) {
	const (
		liveKeys  = 1000
		overwrite = 100 // rounds; total records = liveKeys * overwrite
		valueSize = 1024
	)
	value := make([]byte, valueSize)
	build := func(b *testing.B, walDir, snapDir string, checkpoint bool) {
		b.Helper()
		e, err := Restore(walDir, snapDir)
		if err != nil {
			b.Fatal(err)
		}
		// Parallel writers drive group commit so setup is fsync-bound per
		// batch, not per record. Keys are partitioned per goroutine so
		// each key's clocks ascend.
		const writers = 16
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for r := 1; r <= overwrite; r++ {
					for k := w; k < liveKeys; k += writers {
						if _, err := e.Put(fmt.Sprintf("key-%04d", k), ver(string(value), vclock.VC{"n": uint64(r)})); err != nil {
							b.Error(err)
							return
						}
					}
				}
			}(w)
		}
		wg.Wait()
		if checkpoint {
			if _, err := e.Checkpoint(snapDir); err != nil {
				b.Fatal(err)
			}
		}
		if err := e.Close(); err != nil {
			b.Fatal(err)
		}
	}

	for _, mode := range []string{"full-replay", "checkpointed"} {
		b.Run(mode, func(b *testing.B) {
			walDir, snapDir := dirs(b)
			build(b, walDir, snapDir, mode == "checkpointed")
			diskBytes := float64(treeSize(b, walDir) + treeSize(b, snapDir))
			b.ResetTimer()
			var replayed, skipped int64
			for i := 0; i < b.N; i++ {
				e, err := Restore(walDir, snapDir)
				if err != nil {
					b.Fatal(err)
				}
				d := e.Durability()
				replayed, skipped = d.TailRecords, d.TailSkipped
				if n := e.Len(); n != liveKeys {
					b.Fatalf("recovered %d keys, want %d", n, liveKeys)
				}
				if err := e.Close(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(diskBytes, "disk-bytes/op")
			b.ReportMetric(float64(replayed+skipped), "replayed-records/op")
		})
	}
}

// treeSize sums the file sizes under dir.
func treeSize(tb testing.TB, dir string) int64 {
	tb.Helper()
	var total int64
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0
		}
		tb.Fatal(err)
	}
	for _, e := range entries {
		fi, err := e.Info()
		if err == nil {
			total += fi.Size()
		}
	}
	return total
}

// copyTree copies the regular files of src into a fresh dst directory —
// a point-in-time picture of the on-disk state, i.e. what a crash leaves.
func copyTree(t testing.TB, src, dst string) {
	t.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCheckpointWithPendingRecordSurvivesCrash pins the two halves of the
// checkpoint protocol that make the crash-right-after-checkpoint window
// safe. A record can be sitting in the group-commit queue (enqueued, not
// yet fsynced) when a checkpoint starts: (1) the anchor is the sequence
// number durably flushed BEFORE the shard copies — never the last
// assigned one, which the recovered log might not contain — and (2) the
// checkpoint's Flush drains the queue before the snapshot is written, so
// by the time the snapshot exists the log durably covers everything the
// copies could contain. A crash immediately after the checkpoint must
// then restore cleanly, replaying the drained record from the tail.
func TestCheckpointWithPendingRecordSurvivesCrash(t *testing.T) {
	walDir, snapDir := dirs(t)
	e, err := Restore(walDir, snapDir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := e.Put(fmt.Sprintf("k%d", i), ver(fmt.Sprintf("v%d", i), vclock.VC{"n": uint64(i + 1)})); err != nil {
			t.Fatal(err)
		}
	}
	flushedBefore := e.log.LastFlushed()

	// A write stuck in the group-commit queue: enqueued but its fsync
	// round has not run yet.
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(walRecord{Key: "pending", Version: ver("p", vclock.VC{"p": 1})}); err != nil {
		t.Fatal(err)
	}
	tkt, err := e.log.Enqueue(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}

	seq, err := e.Checkpoint(snapDir)
	if err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if seq != flushedBefore {
		t.Fatalf("checkpoint anchored at %d, want the pre-checkpoint flushed seq %d", seq, flushedBefore)
	}
	if seq >= tkt.Seq() {
		t.Fatalf("checkpoint anchor %d covers record %d that was unflushed at anchor time", seq, tkt.Seq())
	}
	// The checkpoint drained the queue: the pending record is durable.
	if flushed := e.log.LastFlushed(); flushed < tkt.Seq() {
		t.Fatalf("checkpoint left enqueued record %d unflushed (LastFlushed %d)", tkt.Seq(), flushed)
	}

	// The on-disk state right now is what a crash immediately after the
	// checkpoint leaves behind. Snapshot it and boot from the copy.
	base := t.TempDir()
	crashWal, crashSnap := filepath.Join(base, "wal"), filepath.Join(base, "snaps")
	copyTree(t, walDir, crashWal)
	copyTree(t, snapDir, crashSnap)

	r, err := Restore(crashWal, crashSnap)
	if err != nil {
		t.Fatalf("Restore after crash right after checkpoint: %v", err)
	}
	defer r.Close()
	if r.Len() != 6 {
		t.Fatalf("restored %d keys, want the 5 puts + the drained pending record", r.Len())
	}
	for i := 0; i < 5; i++ {
		if vs := r.Get(fmt.Sprintf("k%d", i)); len(vs) != 1 || string(vs[0].Value) != fmt.Sprintf("v%d", i) {
			t.Fatalf("restored k%d = %v", i, vs)
		}
	}
	// The drained record sits past the anchor, so it comes back via tail
	// replay even though the snapshot may not contain it.
	if vs := r.Get("pending"); len(vs) != 1 || string(vs[0].Value) != "p" {
		t.Fatalf("restored pending = %v", vs)
	}

	// The live engine is still healthy: the ticket's Commit is a no-op
	// (already flushed) and the log continues past the checkpoint.
	if err := e.log.Commit(tkt); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}
