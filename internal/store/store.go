// Package store implements the versioned in-memory key-value engine of
// one Skute prototype node: multi-version values ordered by vector clocks
// (concurrent writes become siblings, as in Dynamo), tombstoned deletes,
// byte-accurate size accounting for the economy, optional write-ahead
// logging for crash recovery, and Merkle-leaf export for anti-entropy.
//
// The engine is sharded: keys hash (FNV-1a) onto a fixed set of shards,
// each with its own lock and byte accounting, so concurrent readers and
// writers of different keys proceed without contending on a global lock.
//
// Durability is bounded: Checkpoint writes a point-in-time snapshot of
// every shard (internal/snapshot) anchored at a write-ahead-log sequence
// number, then truncates the log segments the snapshot covers
// (internal/wal), so the on-disk footprint and the restart cost of
// Restore are proportional to the live data plus the post-checkpoint log
// tail, never to the full write history. Checkpoint does not stop the
// world — each shard is copied under its own read lock while writers to
// other shards proceed — and the resulting snapshot is still a consistent
// recovery point (see DESIGN.md, "Durability").
package store

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"skute/internal/merkle"
	"skute/internal/parallel"
	"skute/internal/snapshot"
	"skute/internal/telemetry"
	"skute/internal/vclock"
	"skute/internal/wal"
)

// Version is one causally distinct value of a key.
type Version struct {
	Value     []byte
	Clock     vclock.VC
	Tombstone bool
}

// fingerprint hashes the version for Merkle leaves.
func (v Version) fingerprint() merkle.Digest {
	tomb := []byte{0}
	if v.Tombstone {
		tomb[0] = 1
	}
	return merkle.HashValue(v.Value, []byte(v.Clock.String()), tomb)
}

// clone returns a version sharing no mutable state with v.
func (v Version) clone() Version {
	c := Version{Clock: v.Clock.Clone(), Tombstone: v.Tombstone}
	if v.Value != nil {
		c.Value = append([]byte(nil), v.Value...)
	}
	return c
}

// shardCount is the number of engine shards; a power of two so the shard
// index is a mask of the key hash.
const shardCount = 32

// shard holds one slice of the key space under its own lock.
type shard struct {
	mu   sync.RWMutex
	data map[string][]Version
	// bytes is updated under mu but read lock-free by Engine.Bytes.
	bytes atomic.Int64
}

// Engine is the storage engine of one node. It is safe for concurrent
// use: keys are spread over shardCount independently locked shards.
type Engine struct {
	shards [shardCount]shard
	log    *wal.Log // nil for a purely in-memory engine
	// hook, when set, observes every accepted mutation (see SetWriteHook).
	hook WriteHook

	ckptMu sync.Mutex // serializes checkpoints
	statMu sync.Mutex // guards dur
	dur    DurabilityStats
}

// DurabilityStats are the checkpoint/recovery counters of an engine,
// exported through the admin endpoint. The Snapshot*/Tail* fields
// describe the last boot; the Checkpoint*/Segments* fields accumulate
// over the engine's lifetime; the WAL* fields are read live.
type DurabilityStats struct {
	SnapshotSeq   uint64 // WAL seq of the snapshot loaded at boot (0 = cold boot)
	SnapshotBytes int64  // size of that snapshot file
	TailRecords   int64  // WAL records replayed at boot (past the snapshot)
	TailSkipped   int64  // WAL records skipped at boot (already in the snapshot)
	TailBytes     int64  // payload bytes replayed at boot

	Checkpoints         int64  // checkpoints taken since boot
	LastCheckpointSeq   uint64 // WAL seq the newest checkpoint covers
	LastCheckpointBytes int64  // size of the newest snapshot file
	SegmentsReclaimed   int64  // WAL segment files deleted by checkpoints

	WALRecords  int64 // records appended + replayed (live)
	WALSyncs    int64 // fsyncs issued by group commit (live)
	WALSegments int   // segment files, including the active one (live)
}

// shardOf maps a key to its shard by FNV-1a hash.
func (e *Engine) shardOf(key string) *shard {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &e.shards[h&(shardCount-1)]
}

// NewMemory returns an engine without a write-ahead log.
func NewMemory() *Engine {
	e := &Engine{}
	for i := range e.shards {
		e.shards[i].data = make(map[string][]Version)
	}
	return e
}

// walRecord is the gob frame appended to the log per accepted write. Drop
// records remove the key outright (replica handoff, not a user delete).
type walRecord struct {
	Key     string
	Version Version
	Drop    bool
}

// Options tunes the durable boot paths; the zero value selects the
// defaults.
type Options struct {
	WAL wal.Options
}

// Open returns an engine backed by the write-ahead log directory at
// walDir, replaying every record — Restore without a snapshot directory.
func Open(walDir string) (*Engine, error) {
	return RestoreOptions(walDir, "", Options{})
}

// Restore boots an engine from its snapshot directory and write-ahead
// log: it loads the newest valid snapshot (if any) and then replays only
// the log tail past the snapshot's sequence number, so restart cost is
// bounded by live data plus the records written since the last
// Checkpoint. Records the snapshot already covers are skipped by
// sequence number; re-replaying ones the snapshot raced past is harmless
// because vector-clock application is idempotent. An empty snapDir skips
// snapshots entirely.
func Restore(walDir, snapDir string) (*Engine, error) {
	return RestoreOptions(walDir, snapDir, Options{})
}

// RestoreOptions is Restore with explicit tuning.
func RestoreOptions(walDir, snapDir string, o Options) (*Engine, error) {
	e := NewMemory()
	var snapSeq uint64
	if snapDir != "" {
		info, blobs, err := snapshot.Latest(snapDir)
		switch {
		case err == nil:
			if err := e.loadSnapshot(blobs); err != nil {
				return nil, err
			}
			snapSeq = info.Seq
			e.dur.SnapshotSeq = info.Seq
			e.dur.SnapshotBytes = info.Bytes
		case errors.Is(err, snapshot.ErrNoSnapshot):
			// Cold boot (or every snapshot generation corrupt): fall back
			// to full WAL replay; the gap check below catches the case
			// where the WAL alone is no longer enough.
		default:
			return nil, err
		}
	}
	l, err := wal.OpenOptions(walDir, o.WAL, func(seq uint64, payload []byte) error {
		if seq <= snapSeq {
			e.dur.TailSkipped++
			return nil
		}
		var rec walRecord
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); err != nil {
			return fmt.Errorf("store: decode wal record %d: %w", seq, err)
		}
		s := e.shardOf(rec.Key)
		if rec.Drop {
			s.drop(rec.Key)
		} else {
			// Freshly gob-decoded, uniquely owned: no defensive copy.
			s.apply(rec.Key, rec.Version, false)
		}
		e.dur.TailRecords++
		e.dur.TailBytes += int64(len(payload))
		return nil
	})
	if err != nil {
		return nil, err
	}
	// A log whose history was truncated needs a snapshot covering the
	// truncation point; booting without one would silently lose data.
	if first := l.FirstSeq(); first > snapSeq+1 {
		l.Close()
		return nil, fmt.Errorf("store: wal starts at seq %d but newest usable snapshot covers seq %d — refusing a partial restore", first, snapSeq)
	}
	// Conversely, a log that sits BEHIND the snapshot (lost volume, wrong
	// -wal path, operator wipe) would re-issue sequence numbers the
	// snapshot already covers; the next restore would then skip those
	// acknowledged writes as "already in the snapshot". Refuse now rather
	// than acknowledge writes a later boot will silently drop.
	if last := l.LastSeq(); last < snapSeq {
		l.Close()
		return nil, fmt.Errorf("store: wal ends at seq %d but the snapshot covers seq %d — wal and snapshot directories do not belong together", last, snapSeq)
	}
	e.log = l
	return e, nil
}

// loadSnapshot fills the engine's shards from decoded snapshot payloads
// (one gob-encoded key→sibling-set map per saved shard, decoded
// concurrently). Keys are redistributed through shardOf, so the engine's
// shard count may differ from the snapshot's.
func (e *Engine) loadSnapshot(blobs [][]byte) error {
	maps := make([]map[string][]Version, len(blobs))
	errs := make([]error, len(blobs))
	parallel.ForEach(len(blobs), 0, func(i int) {
		if len(blobs[i]) == 0 {
			return
		}
		if err := gob.NewDecoder(bytes.NewReader(blobs[i])).Decode(&maps[i]); err != nil {
			errs[i] = err
		}
	})
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("store: decode snapshot shard %d: %w", i, err)
		}
	}
	for _, m := range maps {
		for k, vs := range m {
			s := e.shardOf(k)
			s.data[k] = vs
			var b int64
			for _, v := range vs {
				b += int64(len(v.Value))
			}
			s.bytes.Add(b)
		}
	}
	return nil
}

// Checkpoint writes a snapshot of the whole engine into snapDir and
// truncates the write-ahead log segments it covers, bounding both the
// on-disk footprint and the next restart's replay work. It does not stop
// the world: the snapshot anchor is the log's last durably flushed
// sequence number (every record at or below it is already applied,
// because a record is only flushed after Enqueue, and Enqueue happens
// under its shard's write lock after applying), and each shard is then
// copied under its own read lock — writers to other shards never block,
// and writers to the same shard only wait for a map copy, not for
// encoding or disk I/O. Records past the anchor — enqueued but not yet
// flushed, or landing while later shards were copied — may or may not be
// caught in the copies; either way replay past the anchor reproduces the
// exact engine state because version application is idempotent and
// replay happens in log order. Anchoring at the flushed (not the last
// assigned) sequence number also keeps the snapshot within what the log
// durably holds: a crash right after the snapshot renames into place can
// never leave it claiming records the recovered log lacks, which Restore
// would refuse as a mismatched wal/snapshot pair.
//
// It returns the sequence number the snapshot covers. Concurrent
// checkpoints are serialized.
func (e *Engine) Checkpoint(snapDir string) (uint64, error) {
	if e.log == nil {
		return 0, errors.New("store: checkpoint requires a write-ahead log")
	}
	e.ckptMu.Lock()
	defer e.ckptMu.Unlock()

	// A failed log means some writes were applied in memory but will never
	// be durable — their callers saw an error. Baking that state into a
	// snapshot would resurrect them on the next boot, so refuse.
	if err := e.log.Err(); err != nil {
		return 0, fmt.Errorf("store: refusing checkpoint on a failed wal: %w", err)
	}

	seq := e.log.LastFlushed()
	blobs := make([][]byte, shardCount)
	errs := make([]error, shardCount)
	parallel.ForEach(shardCount, 0, func(i int) {
		s := &e.shards[i]
		// Copy-on-read: stored sibling slices are never mutated in place
		// (apply builds fresh slices), so a shallow map copy is a stable
		// point-in-time view and encoding can run outside the lock.
		s.mu.RLock()
		m := make(map[string][]Version, len(s.data))
		for k, vs := range s.data {
			m[k] = vs
		}
		s.mu.RUnlock()
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(m); err != nil {
			errs[i] = err
			return
		}
		blobs[i] = buf.Bytes()
	})
	for i, err := range errs {
		if err != nil {
			return 0, fmt.Errorf("store: encode checkpoint shard %d: %w", i, err)
		}
	}

	// Drain the group-commit queue before writing the snapshot: any record
	// the copies can contain was enqueued before its shard was copied, so
	// after a successful Flush everything in the blobs is durably logged —
	// a write whose commit round failed (its caller saw an error) can
	// never be baked into a snapshot and resurrected on a later boot.
	if err := e.log.Flush(); err != nil {
		return 0, fmt.Errorf("store: refusing checkpoint on a failed wal: %w", err)
	}
	info, err := snapshot.Write(snapDir, seq, blobs)
	if err != nil {
		return 0, err
	}
	// The snapshot is durable from here on: record it before retention and
	// log reclamation, which can fail independently — the counters must
	// reflect the checkpoint that exists on disk either way.
	e.statMu.Lock()
	e.dur.Checkpoints++
	e.dur.LastCheckpointSeq = seq
	e.dur.LastCheckpointBytes = info.Bytes
	e.statMu.Unlock()
	// Retain the log back to the OLDEST snapshot generation still on disk,
	// not just the one written above: if the newest snapshot is later
	// found corrupt, Restore falls back to the previous generation, which
	// is only usable while the log still covers the span between them.
	retained, err := snapshot.Prune(snapDir, snapshot.KeepGenerations)
	if err != nil {
		// Without knowing what pruning kept, the safe truncation anchor is
		// unknown — skip reclamation this round rather than guess.
		return seq, fmt.Errorf("store: checkpoint written but snapshot pruning failed: %w", err)
	}
	anchor := seq + 1
	if len(retained) > 0 {
		anchor = retained[0].Seq + 1
	}
	removed, err := e.log.TruncateBefore(anchor)
	if err != nil {
		// The snapshot is durable; only log reclamation failed. Surface
		// the error but report the covered sequence number.
		return seq, fmt.Errorf("store: checkpoint written but wal truncation failed: %w", err)
	}

	e.statMu.Lock()
	e.dur.SegmentsReclaimed += int64(removed)
	e.statMu.Unlock()
	return seq, nil
}

// Durability returns the engine's checkpoint/recovery counters, with the
// live WAL fields filled in.
func (e *Engine) Durability() DurabilityStats {
	e.statMu.Lock()
	d := e.dur
	e.statMu.Unlock()
	if e.log != nil {
		d.WALRecords = e.log.Records()
		d.WALSyncs = e.log.Syncs()
		d.WALSegments = e.log.Segments()
	}
	return d
}

// FsyncLatency exposes the WAL's commit-fsync histogram, or nil for a
// purely in-memory engine (which has no durability stall to measure).
func (e *Engine) FsyncLatency() *telemetry.Histogram {
	if e.log == nil {
		return nil
	}
	return e.log.FsyncLatency()
}

// Close closes the underlying log, if any.
func (e *Engine) Close() error {
	if e.log != nil {
		return e.log.Close()
	}
	return nil
}

// WriteHook observes every accepted mutation of the engine: sum is the
// Merkle-leaf fingerprint of the key's POST-apply sibling set (the same
// digest MerkleLeaves exports), and deleted marks a Drop that removed
// the key outright. The hook is invoked under the mutated shard's write
// lock — immediately after the mutation applies, so concurrent writers
// of the same key deliver their fingerprints in apply order — and must
// therefore be fast and must not call back into the engine. WAL replay
// and snapshot load at boot do not fire the hook (install it after
// Restore and seed from a scan).
type WriteHook func(key string, sum merkle.Digest, deleted bool)

// SetWriteHook installs the mutation observer. It must be called before
// the engine is shared across goroutines (boot time); passing nil
// removes the hook.
func (e *Engine) SetWriteHook(h WriteHook) { e.hook = h }

// leafSum fingerprints a sibling set into its Merkle-leaf hash; caller
// holds the shard lock (or owns vs).
func leafSum(vs []Version) merkle.Digest {
	parts := make([][]byte, 0, len(vs))
	for _, v := range vs {
		d := v.fingerprint()
		parts = append(parts, d[:])
	}
	return merkle.HashValue(parts...)
}

// Get returns the current sibling set of the key (no tombstones filtered;
// callers decide). The result is a deep copy: mutating the returned
// values or clocks cannot corrupt engine state.
func (e *Engine) Get(key string) []Version {
	s := e.shardOf(key)
	s.mu.RLock()
	defer s.mu.RUnlock()
	vs := s.data[key]
	if len(vs) == 0 {
		return nil
	}
	out := make([]Version, len(vs))
	for i, v := range vs {
		out[i] = v.clone()
	}
	return out
}

// Put applies a version to the key under vector-clock causality: versions
// dominated by the new clock are dropped, a version dominating the new
// one makes the put a no-op, and concurrent versions coexist as siblings.
// It reports whether the version was accepted (i.e. changed state).
//
// The WAL record is enqueued under the shard lock — pinning the log order
// of same-key records to the order they were applied, so a crash replay
// reconstructs the exact engine state — but the fsync wait (group commit)
// happens after the lock is released, so readers of the shard never stall
// behind a write's disk flush. Records of different keys commute on
// replay, so cross-shard ordering is unconstrained.
//
// The record is encoded and size-checked BEFORE the version is applied
// (wasting the encode when causality rejects the write): once a version
// is applied, its record must reach the log, or a write whose caller saw
// an error would live on in memory and be baked into the next snapshot.
// With the encode hoisted out, Enqueue under the lock can only fail by
// poisoning the whole log — and a poisoned log refuses to checkpoint.
func (e *Engine) Put(key string, v Version) (bool, error) {
	var buf bytes.Buffer
	if e.log != nil {
		if err := gob.NewEncoder(&buf).Encode(walRecord{Key: key, Version: v}); err != nil {
			return false, fmt.Errorf("store: encode wal record: %w", err)
		}
		if buf.Len() > wal.MaxRecordSize {
			return false, fmt.Errorf("store: wal record of %d bytes exceeds max %d", buf.Len(), wal.MaxRecordSize)
		}
	}
	s := e.shardOf(key)
	s.mu.Lock()
	accepted := s.apply(key, v, true)
	if accepted && e.hook != nil {
		e.hook(key, leafSum(s.data[key]), false)
	}
	if !accepted || e.log == nil {
		s.mu.Unlock()
		return accepted, nil
	}
	t, err := e.log.Enqueue(buf.Bytes())
	s.mu.Unlock()
	if err != nil {
		return accepted, err
	}
	return accepted, e.log.Commit(t)
}

// apply merges the version into the sibling set; caller holds mu. With
// copyIn, the stored version is a private deep copy, so later caller-side
// mutation of the value or clock cannot reach in; WAL replay passes false
// because decoded records are already uniquely owned.
func (s *shard) apply(key string, v Version, copyIn bool) bool {
	old := s.data[key]
	kept := old[:0:0]
	for _, o := range old {
		switch v.Clock.Compare(o.Clock) {
		case vclock.After:
			// new version supersedes o: drop o
			s.bytes.Add(-int64(len(o.Value)))
		case vclock.Equal, vclock.Before:
			// existing state already covers the write
			return false
		default: // concurrent: keep as sibling
			kept = append(kept, o)
		}
	}
	if copyIn {
		v = v.clone()
	}
	kept = append(kept, v)
	sort.Slice(kept, func(i, j int) bool { return kept[i].Clock.String() < kept[j].Clock.String() })
	s.data[key] = kept
	s.bytes.Add(int64(len(v.Value)))
	return true
}

// Drop removes a key and all its versions outright — used when a replica
// hands its partition off to another node, as opposed to a user-visible
// delete (which writes a tombstone through Put). It returns the bytes
// freed. Like Put, the WAL record is enqueued under the shard lock (log
// order = apply order) and committed outside it, and encoded before the
// drop is applied so no error path leaves applied-but-unlogged state.
func (e *Engine) Drop(key string) (int64, error) {
	var buf bytes.Buffer
	if e.log != nil {
		if err := gob.NewEncoder(&buf).Encode(walRecord{Key: key, Drop: true}); err != nil {
			return 0, fmt.Errorf("store: encode drop record: %w", err)
		}
		if buf.Len() > wal.MaxRecordSize {
			return 0, fmt.Errorf("store: wal record of %d bytes exceeds max %d", buf.Len(), wal.MaxRecordSize)
		}
	}
	s := e.shardOf(key)
	s.mu.Lock()
	freed, existed := s.drop(key)
	if existed && e.hook != nil {
		e.hook(key, merkle.Digest{}, true)
	}
	if !existed || e.log == nil {
		s.mu.Unlock()
		return freed, nil
	}
	t, err := e.log.Enqueue(buf.Bytes())
	s.mu.Unlock()
	if err != nil {
		return freed, err
	}
	return freed, e.log.Commit(t)
}

// drop removes the key; caller holds mu. existed distinguishes a real
// removal from a miss (a tombstone-only key frees zero bytes but still
// existed — it must still be logged and reported to the write hook).
func (s *shard) drop(key string) (freed int64, existed bool) {
	vs, existed := s.data[key]
	for _, v := range vs {
		freed += int64(len(v.Value))
	}
	delete(s.data, key)
	s.bytes.Add(-freed)
	return freed, existed
}

// MergeSiblings folds a set of versions gathered from several replicas
// into the minimal causally consistent sibling set: versions dominated by
// another version are dropped, duplicates collapse, concurrent versions
// survive. The output aliases the input versions — it is a pure function
// over caller-owned data, never over engine internals.
func MergeSiblings(versions []Version) []Version {
	var out []Version
	for _, v := range versions {
		dominated := false
		kept := out[:0] // in-place filter; writes trail the read index
		for _, o := range out {
			switch v.Clock.Compare(o.Clock) {
			case vclock.After:
				continue // o dominated: drop
			case vclock.Equal, vclock.Before:
				dominated = true
			}
			kept = append(kept, o)
		}
		out = kept
		if !dominated {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Clock.String() < out[j].Clock.String() })
	return out
}

// Keys returns all keys (including tombstoned ones), sorted.
func (e *Engine) Keys() []string {
	var ks []string
	for i := range e.shards {
		s := &e.shards[i]
		s.mu.RLock()
		for k := range s.data {
			ks = append(ks, k)
		}
		s.mu.RUnlock()
	}
	sort.Strings(ks)
	return ks
}

// Len returns the number of live keys.
func (e *Engine) Len() int {
	n := 0
	for i := range e.shards {
		s := &e.shards[i]
		s.mu.RLock()
		n += len(s.data)
		s.mu.RUnlock()
	}
	return n
}

// Bytes returns the stored value bytes (the economy's storage usage). It
// sums the per-shard counters without taking any lock, so a read racing
// concurrent writes sees some interleaving of them — exact whenever the
// engine is quiescent, which is when the economy reads it.
func (e *Engine) Bytes() int64 {
	var total int64
	for i := range e.shards {
		total += e.shards[i].bytes.Load()
	}
	return total
}

// MerkleLeaves exports one leaf per key in the half-open hash range
// filter (nil filter = all keys), fingerprinting the full sibling set, for
// anti-entropy tree building.
func (e *Engine) MerkleLeaves(filter func(key string) bool) []merkle.Leaf {
	var leaves []merkle.Leaf
	for i := range e.shards {
		s := &e.shards[i]
		s.mu.RLock()
		for k, vs := range s.data {
			if filter != nil && !filter(k) {
				continue
			}
			leaves = append(leaves, merkle.Leaf{Key: k, Hash: leafSum(vs)})
		}
		s.mu.RUnlock()
	}
	return leaves
}

// Resolve returns the visible value of a sibling set after last-writer
// convention is NOT applied: if exactly one non-tombstone version exists
// it is returned; multiple concurrent versions are all returned for the
// client to reconcile. ok is false when the key is absent or fully
// tombstoned. The values alias the input versions (which Engine.Get
// already deep-copied).
func Resolve(vs []Version) (values [][]byte, ok bool) {
	for _, v := range vs {
		if !v.Tombstone {
			values = append(values, v.Value)
		}
	}
	return values, len(values) > 0
}
