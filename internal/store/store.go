// Package store implements the versioned in-memory key-value engine of
// one Skute prototype node: multi-version values ordered by vector clocks
// (concurrent writes become siblings, as in Dynamo), tombstoned deletes,
// byte-accurate size accounting for the economy, optional write-ahead
// logging for crash recovery, and Merkle-leaf export for anti-entropy.
package store

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
	"sync"

	"skute/internal/merkle"
	"skute/internal/vclock"
	"skute/internal/wal"
)

// Version is one causally distinct value of a key.
type Version struct {
	Value     []byte
	Clock     vclock.VC
	Tombstone bool
}

// fingerprint hashes the version for Merkle leaves.
func (v Version) fingerprint() merkle.Digest {
	tomb := []byte{0}
	if v.Tombstone {
		tomb[0] = 1
	}
	return merkle.HashValue(v.Value, []byte(v.Clock.String()), tomb)
}

// Engine is the storage engine of one node. It is safe for concurrent
// use.
type Engine struct {
	mu    sync.RWMutex
	data  map[string][]Version
	bytes int64
	log   *wal.Log // nil for a purely in-memory engine
}

// NewMemory returns an engine without a write-ahead log.
func NewMemory() *Engine {
	return &Engine{data: make(map[string][]Version)}
}

// walRecord is the gob frame appended to the log per accepted write. Drop
// records remove the key outright (replica handoff, not a user delete).
type walRecord struct {
	Key     string
	Version Version
	Drop    bool
}

// Open returns an engine backed by the write-ahead log at path, replaying
// any existing records.
func Open(path string) (*Engine, error) {
	e := &Engine{data: make(map[string][]Version)}
	l, err := wal.Open(path, func(payload []byte) error {
		var rec walRecord
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); err != nil {
			return fmt.Errorf("store: decode wal record: %w", err)
		}
		if rec.Drop {
			e.dropLocked(rec.Key)
		} else {
			e.applyLocked(rec.Key, rec.Version)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	e.log = l
	return e, nil
}

// Close closes the underlying log, if any.
func (e *Engine) Close() error {
	if e.log != nil {
		return e.log.Close()
	}
	return nil
}

// Get returns the current sibling set of the key (no tombstones filtered;
// callers decide). The returned slice is a copy.
func (e *Engine) Get(key string) []Version {
	e.mu.RLock()
	defer e.mu.RUnlock()
	vs := e.data[key]
	if len(vs) == 0 {
		return nil
	}
	out := make([]Version, len(vs))
	copy(out, vs)
	return out
}

// Put applies a version to the key under vector-clock causality: versions
// dominated by the new clock are dropped, a version dominating the new
// one makes the put a no-op, and concurrent versions coexist as siblings.
// It reports whether the version was accepted (i.e. changed state).
func (e *Engine) Put(key string, v Version) (bool, error) {
	e.mu.Lock()
	accepted := e.applyLocked(key, v)
	e.mu.Unlock()
	if accepted && e.log != nil {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(walRecord{Key: key, Version: v}); err != nil {
			return accepted, fmt.Errorf("store: encode wal record: %w", err)
		}
		if err := e.log.Append(buf.Bytes()); err != nil {
			return accepted, err
		}
	}
	return accepted, nil
}

// applyLocked merges the version into the sibling set; caller holds mu.
func (e *Engine) applyLocked(key string, v Version) bool {
	old := e.data[key]
	kept := old[:0:0]
	for _, o := range old {
		switch v.Clock.Compare(o.Clock) {
		case vclock.After:
			// new version supersedes o: drop o
			e.bytes -= int64(len(o.Value))
		case vclock.Equal, vclock.Before:
			// existing state already covers the write
			return false
		default: // concurrent: keep as sibling
			kept = append(kept, o)
		}
	}
	kept = append(kept, v)
	sort.Slice(kept, func(i, j int) bool { return kept[i].Clock.String() < kept[j].Clock.String() })
	e.data[key] = kept
	e.bytes += int64(len(v.Value))
	return true
}

// Drop removes a key and all its versions outright — used when a replica
// hands its partition off to another node, as opposed to a user-visible
// delete (which writes a tombstone through Put). It returns the bytes
// freed.
func (e *Engine) Drop(key string) (int64, error) {
	e.mu.Lock()
	freed := e.dropLocked(key)
	e.mu.Unlock()
	if freed > 0 && e.log != nil {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(walRecord{Key: key, Drop: true}); err != nil {
			return freed, fmt.Errorf("store: encode drop record: %w", err)
		}
		if err := e.log.Append(buf.Bytes()); err != nil {
			return freed, err
		}
	}
	return freed, nil
}

// dropLocked removes the key; caller holds mu.
func (e *Engine) dropLocked(key string) int64 {
	var freed int64
	for _, v := range e.data[key] {
		freed += int64(len(v.Value))
	}
	delete(e.data, key)
	e.bytes -= freed
	return freed
}

// MergeSiblings folds a set of versions gathered from several replicas
// into the minimal causally consistent sibling set: versions dominated by
// another version are dropped, duplicates collapse, concurrent versions
// survive.
func MergeSiblings(versions []Version) []Version {
	var out []Version
	for _, v := range versions {
		dominated := false
		kept := out[:0] // in-place filter; writes trail the read index
		for _, o := range out {
			switch v.Clock.Compare(o.Clock) {
			case vclock.After:
				continue // o dominated: drop
			case vclock.Equal, vclock.Before:
				dominated = true
			}
			kept = append(kept, o)
		}
		out = kept
		if !dominated {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Clock.String() < out[j].Clock.String() })
	return out
}

// Keys returns all keys (including tombstoned ones), sorted.
func (e *Engine) Keys() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	ks := make([]string, 0, len(e.data))
	for k := range e.data {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// Len returns the number of live keys.
func (e *Engine) Len() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.data)
}

// Bytes returns the stored value bytes (the economy's storage usage).
func (e *Engine) Bytes() int64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.bytes
}

// MerkleLeaves exports one leaf per key in the half-open hash range
// filter (nil filter = all keys), fingerprinting the full sibling set, for
// anti-entropy tree building.
func (e *Engine) MerkleLeaves(filter func(key string) bool) []merkle.Leaf {
	e.mu.RLock()
	defer e.mu.RUnlock()
	leaves := make([]merkle.Leaf, 0, len(e.data))
	for k, vs := range e.data {
		if filter != nil && !filter(k) {
			continue
		}
		parts := make([][]byte, 0, len(vs))
		for _, v := range vs {
			d := v.fingerprint()
			parts = append(parts, d[:])
		}
		leaves = append(leaves, merkle.Leaf{Key: k, Hash: merkle.HashValue(parts...)})
	}
	return leaves
}

// Resolve returns the visible value of a sibling set after last-writer
// convention is NOT applied: if exactly one non-tombstone version exists
// it is returned; multiple concurrent versions are all returned for the
// client to reconcile. ok is false when the key is absent or fully
// tombstoned.
func Resolve(vs []Version) (values [][]byte, ok bool) {
	for _, v := range vs {
		if !v.Tombstone {
			values = append(values, v.Value)
		}
	}
	return values, len(values) > 0
}
