package store

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"skute/internal/merkle"
	"skute/internal/vclock"
)

// hookTree wires an engine's write hook into an incremental Merkle tree
// the way cluster.Node does.
func hookTree(e *Engine) *merkle.Incremental {
	tree := merkle.NewIncremental()
	e.SetWriteHook(func(key string, sum merkle.Digest, deleted bool) {
		if deleted {
			tree.Delete(key)
		} else {
			tree.Update(key, sum)
		}
	})
	return tree
}

// rebuildFromScan builds the reference tree from a full MerkleLeaves
// scan — what anti-entropy did before incremental maintenance.
func rebuildFromScan(e *Engine) *merkle.Incremental {
	tree := merkle.NewIncremental()
	for _, l := range e.MerkleLeaves(nil) {
		tree.Update(l.Key, l.Hash)
	}
	return tree
}

// TestWriteHookMaintainsMerkleTree is the store-level half of the
// incremental-maintenance property: a hook-fed tree stays
// digest-identical to a from-scratch scan across randomized puts,
// causal overwrites, tombstones and drops.
func TestWriteHookMaintainsMerkleTree(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	e := NewMemory()
	tree := hookTree(e)
	clocks := make(map[string]vclock.VC)
	for op := 0; op < 500; op++ {
		key := fmt.Sprintf("key-%d", rng.Intn(60))
		switch rng.Intn(5) {
		case 0: // drop (replica handoff)
			if _, err := e.Drop(key); err != nil {
				t.Fatal(err)
			}
			delete(clocks, key)
		case 1: // tombstone
			c := clocks[key].Clone()
			c.Tick("n0")
			clocks[key] = c
			if _, err := e.Put(key, Version{Clock: c, Tombstone: true}); err != nil {
				t.Fatal(err)
			}
		default: // put/overwrite
			c := clocks[key].Clone()
			c.Tick("n0")
			clocks[key] = c
			v := Version{Value: []byte(fmt.Sprintf("v%d", op)), Clock: c}
			if _, err := e.Put(key, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	if tree.Root() != rebuildFromScan(e).Root() {
		t.Fatalf("hook-maintained tree diverged from full scan")
	}
}

// TestWriteHookRejectedPutLeavesTreeUntouched: a causally dominated put
// is not a mutation and must not fire the hook.
func TestWriteHookRejectedPutLeavesTreeUntouched(t *testing.T) {
	e := NewMemory()
	tree := hookTree(e)
	c := vclock.VC{}.Clone()
	c.Tick("n0")
	c.Tick("n0")
	if _, err := e.Put("k", Version{Value: []byte("new"), Clock: c}); err != nil {
		t.Fatal(err)
	}
	root := tree.Root()
	old := vclock.VC{}.Clone()
	old.Tick("n0")
	accepted, err := e.Put("k", Version{Value: []byte("stale"), Clock: old})
	if err != nil || accepted {
		t.Fatalf("dominated put should be rejected: accepted=%v err=%v", accepted, err)
	}
	if tree.Root() != root {
		t.Fatalf("rejected put changed the tree")
	}
	if _, err := e.Drop("absent"); err != nil {
		t.Fatal(err)
	}
	if tree.Root() != root {
		t.Fatalf("missed drop changed the tree")
	}
}

// TestWriteHookConcurrentWriters races writers across shards and keys
// (run under -race in CI): the hook fires under the shard lock with the
// post-apply fingerprint, so the tree must converge to the scan even
// when the same key is contended.
func TestWriteHookConcurrentWriters(t *testing.T) {
	e := NewMemory()
	tree := hookTree(e)
	const writers = 8
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			node := fmt.Sprintf("n%d", w)
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("key-%d", i%30) // contended across writers
				c := vclock.VC{}.Clone()
				for j := 0; j <= i; j++ {
					c.Tick(node)
				}
				if _, err := e.Put(key, Version{Value: []byte(node), Clock: c}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if tree.Root() != rebuildFromScan(e).Root() {
		t.Fatalf("concurrent writes desynced tree from engine")
	}
}
