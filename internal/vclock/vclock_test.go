package vclock

import (
	"testing"
	"testing/quick"
)

func TestTickAndGet(t *testing.T) {
	v := New().Tick("a").Tick("a").Tick("b")
	if v.Get("a") != 2 || v.Get("b") != 1 || v.Get("c") != 0 {
		t.Errorf("clock = %v", v)
	}
	var nilClock VC
	ticked := nilClock.Tick("x")
	if ticked.Get("x") != 1 {
		t.Error("Tick on nil clock failed")
	}
}

func TestCompare(t *testing.T) {
	a := VC{"a": 1}
	b := VC{"a": 2}
	c := VC{"b": 1}
	cases := []struct {
		x, y VC
		want Ordering
	}{
		{a, a.Clone(), Equal},
		{a, b, Before},
		{b, a, After},
		{a, c, Concurrent},
		{c, a, Concurrent},
		{nil, nil, Equal},
		{nil, a, Before},
		{a, nil, After},
		{VC{"a": 1, "b": 2}, VC{"a": 2, "b": 1}, Concurrent},
		{VC{"a": 1, "b": 1}, VC{"a": 1, "b": 2}, Before},
	}
	for i, cse := range cases {
		if got := cse.x.Compare(cse.y); got != cse.want {
			t.Errorf("case %d: %v.Compare(%v) = %v, want %v", i, cse.x, cse.y, got, cse.want)
		}
	}
}

func TestDescends(t *testing.T) {
	a := VC{"a": 1}
	b := VC{"a": 2, "b": 1}
	if !b.Descends(a) || a.Descends(b) {
		t.Error("Descends wrong for ordered clocks")
	}
	if !a.Descends(a.Clone()) {
		t.Error("clock must descend its equal")
	}
	if a.Descends(VC{"b": 1}) {
		t.Error("concurrent clocks must not descend each other")
	}
}

func TestMerge(t *testing.T) {
	a := VC{"a": 3, "b": 1}
	b := VC{"a": 1, "c": 2}
	m := Merge(a, b)
	want := VC{"a": 3, "b": 1, "c": 2}
	if m.Compare(want) != Equal {
		t.Errorf("Merge = %v, want %v", m, want)
	}
	if !m.Descends(a) || !m.Descends(b) {
		t.Error("merged clock must descend both inputs")
	}
	// Merge must not alias its inputs.
	m.Tick("a")
	if a["a"] != 3 {
		t.Error("Merge aliased input")
	}
}

func TestCloneIndependent(t *testing.T) {
	a := VC{"a": 1}
	c := a.Clone()
	c.Tick("a")
	if a["a"] != 1 {
		t.Error("Clone aliased input")
	}
}

func TestString(t *testing.T) {
	v := VC{"b": 2, "a": 1}
	if got := v.String(); got != "{a:1, b:2}" {
		t.Errorf("String = %q", got)
	}
	if got := (VC{}).String(); got != "{}" {
		t.Errorf("empty String = %q", got)
	}
	if Ordering(99).String() == "" {
		t.Error("unknown ordering string empty")
	}
	for o, s := range map[Ordering]string{Equal: "equal", Before: "before", After: "after", Concurrent: "concurrent"} {
		if o.String() != s {
			t.Errorf("%d.String() = %q", int(o), o.String())
		}
	}
}

// buildVC maps quick-generated data onto a small clock space.
func buildVC(ticks []uint8) VC {
	nodes := []string{"a", "b", "c"}
	v := New()
	for i, n := range ticks {
		for j := 0; j < int(n%4); j++ {
			v.Tick(nodes[i%len(nodes)])
		}
	}
	return v
}

func TestComparePropertyAntisymmetric(t *testing.T) {
	f := func(x, y []uint8) bool {
		a, b := buildVC(x), buildVC(y)
		ab, ba := a.Compare(b), b.Compare(a)
		switch ab {
		case Equal:
			return ba == Equal
		case Before:
			return ba == After
		case After:
			return ba == Before
		default:
			return ba == Concurrent
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMergePropertyUpperBound(t *testing.T) {
	f := func(x, y []uint8) bool {
		a, b := buildVC(x), buildVC(y)
		m := Merge(a, b)
		return m.Descends(a) && m.Descends(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestTickPropertyStrictlyAfter(t *testing.T) {
	f := func(x []uint8) bool {
		a := buildVC(x)
		b := a.Clone().Tick("a")
		return b.Compare(a) == After && a.Compare(b) == Before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
