// Package vclock implements vector clocks for the Skute prototype store.
// Each replica coordinator increments its own component on every write;
// comparing clocks decides whether two versions of a key are ordered
// (one supersedes the other) or concurrent (siblings the client must
// reconcile), exactly as in Dynamo-style stores.
package vclock

import (
	"fmt"
	"sort"
	"strings"
)

// VC maps a node name to its logical counter. The zero value (nil map) is
// a valid, empty clock.
type VC map[string]uint64

// New returns an empty clock.
func New() VC { return make(VC) }

// Clone returns an independent copy.
func (v VC) Clone() VC {
	c := make(VC, len(v))
	for k, n := range v {
		c[k] = n
	}
	return c
}

// Tick increments the component of the node and returns the clock for
// chaining. Tick on a nil clock allocates.
func (v VC) Tick(node string) VC {
	if v == nil {
		v = New()
	}
	v[node]++
	return v
}

// Get returns the counter of the node (0 when absent).
func (v VC) Get(node string) uint64 { return v[node] }

// Ordering is the result of comparing two vector clocks.
type Ordering int

// Orderings.
const (
	Equal Ordering = iota
	Before
	After
	Concurrent
)

// String implements fmt.Stringer.
func (o Ordering) String() string {
	switch o {
	case Equal:
		return "equal"
	case Before:
		return "before"
	case After:
		return "after"
	case Concurrent:
		return "concurrent"
	default:
		return fmt.Sprintf("ordering(%d)", int(o))
	}
}

// Compare returns the causal relation of v to other: Before when v
// happened-before other, After when it supersedes it, Equal for identical
// clocks, Concurrent otherwise.
func (v VC) Compare(other VC) Ordering {
	vLess, oLess := false, false // some component strictly smaller
	for k, n := range v {
		if on := other[k]; n > on {
			oLess = true
		} else if n < on {
			vLess = true
		}
	}
	for k, on := range other {
		if n := v[k]; on > n {
			vLess = true
		} else if on < n {
			oLess = true
		}
	}
	switch {
	case vLess && oLess:
		return Concurrent
	case vLess:
		return Before
	case oLess:
		return After
	default:
		return Equal
	}
}

// Descends reports whether v causally dominates or equals other, i.e.
// accepting a write carrying clock v may overwrite a version carrying
// other.
func (v VC) Descends(other VC) bool {
	o := v.Compare(other)
	return o == Equal || o == After
}

// Merge returns a new clock with the component-wise maximum of both
// clocks — the clock of a reconciled value.
func Merge(a, b VC) VC {
	m := make(VC, len(a)+len(b))
	for k, n := range a {
		m[k] = n
	}
	for k, n := range b {
		if n > m[k] {
			m[k] = n
		}
	}
	return m
}

// String renders the clock deterministically, e.g. "{a:1, b:3}".
func (v VC) String() string {
	keys := make([]string, 0, len(v))
	for k := range v {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s:%d", k, v[k])
	}
	b.WriteByte('}')
	return b.String()
}
