package merkle

import (
	"crypto/sha256"
	"sort"
	"sync"
)

// Incremental is a write-maintained Merkle tree: a canonical binary
// hash-trie keyed by the bits of sha256(key). Where Tree is rebuilt
// from a full scan per anti-entropy round, Incremental absorbs every
// store write as it happens in O(depth) ≈ O(log n), so comparing two
// replicas starts from an always-current root.
//
// The shape is canonical — determined solely by the key set, never by
// the insertion or deletion order: a leaf lives at the shallowest depth
// where its hash-path prefix is unique among present keys (inserts
// split at the first diverging bit; deletes hoist a lone leaf back up).
// Two replicas holding the same (key, fingerprint) pairs therefore
// agree on the root byte-for-byte, which is what lets anti-entropy
// short-circuit on root equality.
//
// Leaf and interior hashes reuse the package's hashLeaf/hashPair
// formulas, but the shape differs from Tree's balanced array form, so
// Incremental roots only compare against other Incremental roots.
// Incremental is safe for concurrent use.
type Incremental struct {
	mu    sync.RWMutex
	root  *trieNode
	count int
}

// trieNode is one trie node: a leaf (leaf != nil) or an interior node
// with up to two children (a nil child hashes as zeroDigest).
type trieNode struct {
	leaf  *Leaf
	child [2]*trieNode
	hash  Digest
}

// NewIncremental returns an empty tree.
func NewIncremental() *Incremental {
	return &Incremental{}
}

// pathBit extracts bit i (big-endian) of the key digest.
func pathBit(d Digest, i int) int {
	return int(d[i/8]>>(7-i%8)) & 1
}

func keyDigest(key string) Digest {
	return Digest(sha256.Sum256([]byte(key)))
}

func (n *trieNode) rehash() {
	left, right := zeroDigest, zeroDigest
	if n.child[0] != nil {
		left = n.child[0].hash
	}
	if n.child[1] != nil {
		right = n.child[1].hash
	}
	n.hash = hashPair(left, right)
}

// Update inserts the key or replaces its fingerprint.
func (t *Incremental) Update(key string, hash Digest) {
	kd := keyDigest(key)
	leaf := &trieNode{leaf: &Leaf{Key: key, Hash: hash}}
	leaf.hash = hashLeaf(*leaf.leaf)

	t.mu.Lock()
	defer t.mu.Unlock()
	if t.root == nil {
		t.root = leaf
		t.count = 1
		return
	}
	// Descend to the insertion point, remembering the path for the
	// hash fix-up on the way back.
	var path []*trieNode
	node := t.root
	depth := 0
	for node.leaf == nil {
		path = append(path, node)
		b := pathBit(kd, depth)
		if node.child[b] == nil {
			node.child[b] = leaf
			t.count++
			leaf = nil
			break
		}
		node = node.child[b]
		depth++
	}
	if leaf != nil {
		if node.leaf.Key == key {
			// Overwrite in place.
			node.leaf.Hash = hash
			node.hash = hashLeaf(*node.leaf)
		} else {
			// Split: both keys share the path down to depth; build the
			// interior chain to their first diverging bit.
			old := node
			od := keyDigest(old.leaf.Key)
			top := &trieNode{}
			if len(path) == 0 {
				t.root = top
			} else {
				parent := path[len(path)-1]
				parent.child[pathBit(kd, depth-1)] = top
			}
			cur := top
			for d := depth; ; d++ {
				ob, nb := pathBit(od, d), pathBit(kd, d)
				path = append(path, cur)
				if ob != nb {
					cur.child[ob] = old
					cur.child[nb] = leaf
					break
				}
				next := &trieNode{}
				cur.child[ob] = next
				cur = next
			}
			t.count++
		}
	}
	for i := len(path) - 1; i >= 0; i-- {
		path[i].rehash()
	}
}

// Delete removes the key; absent keys are a no-op.
func (t *Incremental) Delete(key string) {
	kd := keyDigest(key)
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.root == nil {
		return
	}
	if t.root.leaf != nil {
		if t.root.leaf.Key == key {
			t.root = nil
			t.count = 0
		}
		return
	}
	var path []*trieNode
	node := t.root
	depth := 0
	for node.leaf == nil {
		path = append(path, node)
		node = node.child[pathBit(kd, depth)]
		if node == nil {
			return
		}
		depth++
	}
	if node.leaf.Key != key {
		return
	}
	t.count--
	parent := path[len(path)-1]
	parent.child[pathBit(kd, depth-1)] = nil
	// Collapse upward: an interior node left with no children vanishes;
	// one left with a lone LEAF child is replaced by that leaf (the
	// leaf's unique-prefix depth shrank). A lone interior child stays —
	// it still separates two or more deeper keys.
	for i := len(path) - 1; i >= 0; i-- {
		n := path[i]
		var only *trieNode
		children := 0
		for _, c := range n.child {
			if c != nil {
				children++
				only = c
			}
		}
		if children >= 2 || (children == 1 && only.leaf == nil) {
			break
		}
		var replacement *trieNode // children == 0
		if children == 1 {
			replacement = only // lone leaf hoists up
		}
		if i == 0 {
			t.root = replacement
		} else {
			up := path[i-1]
			for b := range up.child {
				if up.child[b] == n {
					up.child[b] = replacement
				}
			}
		}
		path = path[:i]
	}
	for i := len(path) - 1; i >= 0; i-- {
		path[i].rehash()
	}
}

// Root returns the current root digest; the zero Digest when empty.
func (t *Incremental) Root() Digest {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.root == nil {
		return zeroDigest
	}
	return t.root.hash
}

// Len returns the number of keys.
func (t *Incremental) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.count
}

// Leaves returns every (key, fingerprint) pair sorted by key — the
// exchange format of anti-entropy (trie order is hash order, so the
// export re-sorts lexicographically for DiffSorted and pagination).
func (t *Incremental) Leaves() []Leaf {
	t.mu.RLock()
	out := make([]Leaf, 0, t.count)
	var walk func(n *trieNode)
	walk = func(n *trieNode) {
		if n == nil {
			return
		}
		if n.leaf != nil {
			out = append(out, *n.leaf)
			return
		}
		walk(n.child[0])
		walk(n.child[1])
	}
	walk(t.root)
	t.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// LeavesAfter returns up to max leaves with keys strictly greater than
// after, in key order — the pagination primitive of chunked partition
// transfer. max <= 0 means no limit.
func (t *Incremental) LeavesAfter(after string, max int) []Leaf {
	ls := t.Leaves()
	i := sort.Search(len(ls), func(i int) bool { return ls[i].Key > after })
	ls = ls[i:]
	if max > 0 && len(ls) > max {
		ls = ls[:max]
	}
	return ls
}

// DiffSorted returns the union of keys whose fingerprints differ
// between two key-sorted leaf lists, including keys present on only one
// side — DiffKeys for exported Incremental leaves.
func DiffSorted(a, b []Leaf) []string {
	var diff []string
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		la, lb := a[i], b[j]
		switch {
		case la.Key == lb.Key:
			if la.Hash != lb.Hash {
				diff = append(diff, la.Key)
			}
			i++
			j++
		case la.Key < lb.Key:
			diff = append(diff, la.Key)
			i++
		default:
			diff = append(diff, lb.Key)
			j++
		}
	}
	for ; i < len(a); i++ {
		diff = append(diff, a[i].Key)
	}
	for ; j < len(b); j++ {
		diff = append(diff, b[j].Key)
	}
	return diff
}
