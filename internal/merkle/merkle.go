// Package merkle implements the Merkle trees the Skute prototype uses for
// anti-entropy: two replicas of a partition exchange trees over their key
// range and walk mismatching branches to find exactly the keys whose
// versions differ, synchronizing with bandwidth proportional to the
// divergence instead of the partition size.
package merkle

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// Digest is the node hash type.
type Digest [sha256.Size]byte

// zeroDigest marks empty subtrees.
var zeroDigest Digest

// Leaf is one (key, version-fingerprint) pair of the tree. The version
// fingerprint should cover the value and its clock, e.g. a hash of both.
type Leaf struct {
	Key  string
	Hash Digest
}

// HashValue fingerprints a value and its version metadata into a leaf
// hash.
func HashValue(parts ...[]byte) Digest {
	h := sha256.New()
	var lenBuf [8]byte
	for _, p := range parts {
		binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(p)))
		h.Write(lenBuf[:]) // length-prefix to avoid concatenation ambiguity
		h.Write(p)
	}
	var d Digest
	copy(d[:], h.Sum(nil))
	return d
}

// Tree is a balanced binary hash tree over sorted leaves. Interior nodes
// hash their children; comparing two trees' roots answers "identical?" in
// O(1), and DiffKeys walks only mismatching branches.
type Tree struct {
	leaves []Leaf     // sorted by key
	levels [][]Digest // levels[0] = leaf hashes, last = [root]
}

// Build constructs a tree over the leaves; input order does not matter.
func Build(leaves []Leaf) *Tree {
	ls := append([]Leaf(nil), leaves...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	t := &Tree{leaves: ls}
	level := make([]Digest, len(ls))
	for i, l := range ls {
		level[i] = hashLeaf(l)
	}
	t.levels = append(t.levels, level)
	for len(level) > 1 {
		next := make([]Digest, (len(level)+1)/2)
		for i := range next {
			if 2*i+1 < len(level) {
				next[i] = hashPair(level[2*i], level[2*i+1])
			} else {
				next[i] = hashPair(level[2*i], zeroDigest)
			}
		}
		t.levels = append(t.levels, next)
		level = next
	}
	return t
}

func hashLeaf(l Leaf) Digest {
	return HashValue([]byte("leaf"), []byte(l.Key), l.Hash[:])
}

func hashPair(a, b Digest) Digest {
	return HashValue([]byte("node"), a[:], b[:])
}

// Root returns the root digest; the zero Digest for an empty tree.
func (t *Tree) Root() Digest {
	if len(t.leaves) == 0 {
		return zeroDigest
	}
	return t.levels[len(t.levels)-1][0]
}

// Len returns the number of leaves.
func (t *Tree) Len() int { return len(t.leaves) }

// Keys returns the sorted leaf keys.
func (t *Tree) Keys() []string {
	ks := make([]string, len(t.leaves))
	for i, l := range t.leaves {
		ks[i] = l.Key
	}
	return ks
}

// DiffKeys returns the union of keys whose leaf hashes differ between the
// two trees, including keys present in only one tree. Both key lists are
// sorted, so the walk is a linear merge guided by subtree equality: equal
// roots short-circuit to nothing.
func DiffKeys(a, b *Tree) []string {
	if a.Root() == b.Root() {
		return nil
	}
	var diff []string
	i, j := 0, 0
	for i < len(a.leaves) && j < len(b.leaves) {
		la, lb := a.leaves[i], b.leaves[j]
		switch {
		case la.Key == lb.Key:
			if la.Hash != lb.Hash {
				diff = append(diff, la.Key)
			}
			i++
			j++
		case la.Key < lb.Key:
			diff = append(diff, la.Key)
			i++
		default:
			diff = append(diff, lb.Key)
			j++
		}
	}
	for ; i < len(a.leaves); i++ {
		diff = append(diff, a.leaves[i].Key)
	}
	for ; j < len(b.leaves); j++ {
		diff = append(diff, b.leaves[j].Key)
	}
	return diff
}

// Proof is the authentication path of one leaf: the sibling digests from
// the leaf to the root. It lets a replica prove a key's version to a peer
// that only knows the root.
type Proof struct {
	Leaf     Leaf
	Siblings []Digest
	Index    int // leaf position in the sorted order
}

// Prove returns the inclusion proof of the key, or false when absent.
func (t *Tree) Prove(key string) (Proof, bool) {
	idx := sort.Search(len(t.leaves), func(i int) bool { return t.leaves[i].Key >= key })
	if idx == len(t.leaves) || t.leaves[idx].Key != key {
		return Proof{}, false
	}
	p := Proof{Leaf: t.leaves[idx], Index: idx}
	pos := idx
	for lv := 0; lv < len(t.levels)-1; lv++ {
		sib := pos ^ 1
		if sib < len(t.levels[lv]) {
			p.Siblings = append(p.Siblings, t.levels[lv][sib])
		} else {
			p.Siblings = append(p.Siblings, zeroDigest)
		}
		pos /= 2
	}
	return p, true
}

// Verify checks an inclusion proof against a root digest.
func Verify(root Digest, p Proof) bool {
	h := hashLeaf(p.Leaf)
	pos := p.Index
	for _, sib := range p.Siblings {
		if pos%2 == 0 {
			h = hashPair(h, sib)
		} else {
			h = hashPair(sib, h)
		}
		pos /= 2
	}
	return h == root
}
