package merkle

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func rebuildIncremental(state map[string]Digest) *Incremental {
	t := NewIncremental()
	for k, h := range state {
		t.Update(k, h)
	}
	return t
}

// TestIncrementalMatchesRebuild is the maintenance property: after any
// randomized sequence of puts, overwrites and deletes, the
// write-maintained tree is digest-identical to a from-scratch rebuild
// of the surviving state — i.e. the shape is canonical and no update
// leaves stale hashes behind.
func TestIncrementalMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		inc := NewIncremental()
		state := make(map[string]Digest)
		ops := 200 + rng.Intn(200)
		for op := 0; op < ops; op++ {
			key := fmt.Sprintf("key-%d", rng.Intn(80))
			switch rng.Intn(3) {
			case 0, 1: // put or overwrite
				h := HashValue([]byte(key), []byte{byte(op), byte(trial)})
				inc.Update(key, h)
				state[key] = h
			case 2:
				inc.Delete(key)
				delete(state, key)
			}
		}
		if inc.Len() != len(state) {
			t.Fatalf("trial %d: len %d, want %d", trial, inc.Len(), len(state))
		}
		ref := rebuildIncremental(state)
		if inc.Root() != ref.Root() {
			t.Fatalf("trial %d: maintained root %x != rebuilt root %x", trial, inc.Root(), ref.Root())
		}
		if diff := DiffSorted(inc.Leaves(), ref.Leaves()); len(diff) != 0 {
			t.Fatalf("trial %d: leaves diverge on %v", trial, diff)
		}
	}
}

// TestIncrementalInsertionOrderIndependent pins the canonical-shape
// claim directly: permuting the insertion order never changes the root.
func TestIncrementalInsertionOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	keys := make([]string, 64)
	for i := range keys {
		keys[i] = fmt.Sprintf("user/%04d", i)
	}
	want := zeroDigest
	for trial := 0; trial < 5; trial++ {
		rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
		inc := NewIncremental()
		for _, k := range keys {
			inc.Update(k, HashValue([]byte(k)))
		}
		if trial == 0 {
			want = inc.Root()
		} else if inc.Root() != want {
			t.Fatalf("trial %d: root depends on insertion order", trial)
		}
	}
}

func TestIncrementalDeleteToEmpty(t *testing.T) {
	inc := NewIncremental()
	keys := []string{"a", "b", "c", "d", "e"}
	for _, k := range keys {
		inc.Update(k, HashValue([]byte(k)))
	}
	inc.Delete("nope") // absent key: no-op
	for _, k := range keys {
		inc.Delete(k)
	}
	if inc.Len() != 0 || inc.Root() != zeroDigest {
		t.Fatalf("emptied tree should be zero: len=%d root=%x", inc.Len(), inc.Root())
	}
	inc.Delete("a") // delete on empty: no-op
}

func TestIncrementalLeavesAfter(t *testing.T) {
	inc := NewIncremental()
	for i := 0; i < 10; i++ {
		k := fmt.Sprintf("k%02d", i)
		inc.Update(k, HashValue([]byte(k)))
	}
	page := inc.LeavesAfter("", 4)
	if len(page) != 4 || page[0].Key != "k00" || page[3].Key != "k03" {
		t.Fatalf("first page wrong: %v", page)
	}
	page = inc.LeavesAfter("k03", 4)
	if len(page) != 4 || page[0].Key != "k04" {
		t.Fatalf("second page wrong: %v", page)
	}
	page = inc.LeavesAfter("k07", 0)
	if len(page) != 2 || page[1].Key != "k09" {
		t.Fatalf("tail page wrong: %v", page)
	}
	if got := inc.LeavesAfter("k99", 4); len(got) != 0 {
		t.Fatalf("past-the-end page should be empty: %v", got)
	}
}

// TestIncrementalConcurrentWriters hammers the tree from several
// goroutines (run under -race in CI) and checks the final root against
// a rebuild of the expected survivor set.
func TestIncrementalConcurrentWriters(t *testing.T) {
	inc := NewIncremental()
	const writers = 8
	const perWriter = 300
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWriter; i++ {
				key := fmt.Sprintf("w%d/key-%d", w, rng.Intn(40))
				if rng.Intn(4) == 0 {
					inc.Delete(key)
				} else {
					inc.Update(key, HashValue([]byte(key), []byte{byte(i)}))
				}
				// Interleave reads with the writes.
				if i%50 == 0 {
					inc.Root()
					inc.Leaves()
				}
			}
		}(w)
	}
	wg.Wait()

	// Replay each writer's deterministic sequence serially to get the
	// expected final state (writers touch disjoint key spaces, so the
	// interleaving cannot change the outcome).
	state := make(map[string]Digest)
	for w := 0; w < writers; w++ {
		rng := rand.New(rand.NewSource(int64(w)))
		for i := 0; i < perWriter; i++ {
			key := fmt.Sprintf("w%d/key-%d", w, rng.Intn(40))
			if rng.Intn(4) == 0 {
				delete(state, key)
			} else {
				state[key] = HashValue([]byte(key), []byte{byte(i)})
			}
		}
	}
	if inc.Root() != rebuildIncremental(state).Root() {
		t.Fatalf("concurrent writes corrupted the tree")
	}
}

// BenchmarkIncrementalRebuild1000 is the cost one anti-entropy round
// used to pay per partition before incremental maintenance: a full tree
// rebuild over every key.
func BenchmarkIncrementalRebuild1000(b *testing.B) {
	keys := make([]string, 1000)
	sums := make([]Digest, 1000)
	for i := range keys {
		keys[i] = fmt.Sprintf("key%04d", i)
		sums[i] = HashValue([]byte(keys[i]))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := NewIncremental()
		for j, k := range keys {
			t.Update(k, sums[j])
		}
		_ = t.Root()
	}
}

// BenchmarkIncrementalUpdate1000 is the amortized replacement: one
// write-hook update (plus the root read the anti-entropy fast path
// uses) against a standing 1000-key tree.
func BenchmarkIncrementalUpdate1000(b *testing.B) {
	t := NewIncremental()
	sums := make([]Digest, 1000)
	for i := range sums {
		k := fmt.Sprintf("key%04d", i)
		sums[i] = HashValue([]byte(k))
		t.Update(k, sums[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Update(fmt.Sprintf("key%04d", i%1000), sums[(i+1)%1000])
		_ = t.Root()
	}
}
