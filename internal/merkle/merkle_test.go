package merkle

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func leaf(key, val string) Leaf {
	return Leaf{Key: key, Hash: HashValue([]byte(val))}
}

func TestRootDeterministicAndOrderInsensitive(t *testing.T) {
	a := Build([]Leaf{leaf("a", "1"), leaf("b", "2"), leaf("c", "3")})
	b := Build([]Leaf{leaf("c", "3"), leaf("a", "1"), leaf("b", "2")})
	if a.Root() != b.Root() {
		t.Error("root depends on insertion order")
	}
	if a.Len() != 3 {
		t.Errorf("Len = %d", a.Len())
	}
	if got := a.Keys(); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Errorf("Keys = %v", got)
	}
}

func TestEmptyTree(t *testing.T) {
	e := Build(nil)
	if e.Root() != (Digest{}) {
		t.Error("empty root not zero")
	}
	if d := DiffKeys(e, Build(nil)); d != nil {
		t.Errorf("diff of empties = %v", d)
	}
	if d := DiffKeys(e, Build([]Leaf{leaf("x", "1")})); !reflect.DeepEqual(d, []string{"x"}) {
		t.Errorf("diff empty vs one = %v", d)
	}
}

func TestRootChangesWithAnyLeaf(t *testing.T) {
	base := Build([]Leaf{leaf("a", "1"), leaf("b", "2")})
	changedVal := Build([]Leaf{leaf("a", "1"), leaf("b", "CHANGED")})
	extraKey := Build([]Leaf{leaf("a", "1"), leaf("b", "2"), leaf("c", "3")})
	if base.Root() == changedVal.Root() {
		t.Error("value change not reflected in root")
	}
	if base.Root() == extraKey.Root() {
		t.Error("added key not reflected in root")
	}
}

func TestDiffKeys(t *testing.T) {
	a := Build([]Leaf{leaf("a", "1"), leaf("b", "2"), leaf("c", "3"), leaf("d", "4")})
	b := Build([]Leaf{leaf("a", "1"), leaf("b", "DIFF"), leaf("d", "4"), leaf("e", "5")})
	got := DiffKeys(a, b)
	want := []string{"b", "c", "e"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("DiffKeys = %v, want %v", got, want)
	}
	// Symmetric.
	if !reflect.DeepEqual(DiffKeys(b, a), want) {
		t.Error("DiffKeys not symmetric")
	}
	// Identical trees short-circuit.
	if DiffKeys(a, Build([]Leaf{leaf("d", "4"), leaf("c", "3"), leaf("b", "2"), leaf("a", "1")})) != nil {
		t.Error("identical trees diffed")
	}
}

func TestDiffKeysProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func() bool {
		// Build two maps with controlled overlap, diff manually, compare.
		ma := map[string]string{}
		mb := map[string]string{}
		for i := 0; i < rng.Intn(30); i++ {
			k := fmt.Sprintf("k%d", rng.Intn(20))
			v := fmt.Sprintf("v%d", rng.Intn(3))
			ma[k] = v
			if rng.Intn(2) == 0 {
				mb[k] = v
			} else if rng.Intn(2) == 0 {
				mb[k] = v + "x"
			}
		}
		toLeaves := func(m map[string]string) []Leaf {
			var ls []Leaf
			for k, v := range m {
				ls = append(ls, leaf(k, v))
			}
			return ls
		}
		want := map[string]bool{}
		for k, v := range ma {
			if bv, ok := mb[k]; !ok || bv != v {
				want[k] = true
			}
		}
		for k := range mb {
			if _, ok := ma[k]; !ok {
				want[k] = true
			}
		}
		got := DiffKeys(Build(toLeaves(ma)), Build(toLeaves(mb)))
		if len(got) != len(want) {
			return false
		}
		if !sort.StringsAreSorted(got) {
			return false
		}
		for _, k := range got {
			if !want[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestProveVerify(t *testing.T) {
	var leaves []Leaf
	for i := 0; i < 13; i++ { // odd count exercises the padding path
		leaves = append(leaves, leaf(fmt.Sprintf("key%02d", i), fmt.Sprintf("val%d", i)))
	}
	tree := Build(leaves)
	for _, l := range leaves {
		p, ok := tree.Prove(l.Key)
		if !ok {
			t.Fatalf("Prove(%s) failed", l.Key)
		}
		if !Verify(tree.Root(), p) {
			t.Fatalf("Verify(%s) failed", l.Key)
		}
		// A tampered leaf hash must not verify.
		p.Leaf.Hash[0] ^= 1
		if Verify(tree.Root(), p) {
			t.Fatalf("tampered proof for %s verified", l.Key)
		}
	}
	if _, ok := tree.Prove("absent"); ok {
		t.Error("proof produced for absent key")
	}
}

func TestProofAgainstWrongRoot(t *testing.T) {
	a := Build([]Leaf{leaf("a", "1"), leaf("b", "2")})
	other := Build([]Leaf{leaf("a", "1"), leaf("b", "3")})
	p, _ := a.Prove("a")
	if Verify(other.Root(), p) {
		t.Error("proof verified against foreign root")
	}
}

func TestHashValueLengthPrefixing(t *testing.T) {
	// ("ab","c") must hash differently from ("a","bc").
	if HashValue([]byte("ab"), []byte("c")) == HashValue([]byte("a"), []byte("bc")) {
		t.Error("concatenation ambiguity in HashValue")
	}
}

func BenchmarkBuild1000(b *testing.B) {
	leaves := make([]Leaf, 1000)
	for i := range leaves {
		leaves[i] = leaf(fmt.Sprintf("key%04d", i), fmt.Sprintf("val%d", i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(leaves)
	}
}

func BenchmarkDiff1000(b *testing.B) {
	la := make([]Leaf, 1000)
	lb := make([]Leaf, 1000)
	for i := range la {
		la[i] = leaf(fmt.Sprintf("key%04d", i), "same")
		lb[i] = la[i]
	}
	lb[500] = leaf("key0500", "different")
	ta, tb := Build(la), Build(lb)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(DiffKeys(ta, tb)) != 1 {
			b.Fatal("wrong diff")
		}
	}
}
