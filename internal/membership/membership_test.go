package membership

import (
	"testing"
	"time"
)

func info(name string) Info {
	return Info{
		Name:          name,
		Addr:          name + ":addr",
		LocPath:       "eu/ch/zrh/dc1/r1/" + name,
		Confidence:    0.95,
		MonthlyRent:   100,
		Capacity:      1 << 30,
		QueryCapacity: 1000,
	}
}

func TestSeedPeerStartsInProbation(t *testing.T) {
	now := time.Unix(1000, 0)
	tb := New(info("n0"), 10*time.Second, 20*time.Second)
	tb.SeedPeer(info("n1"), now)

	m, ok := tb.Get("n1")
	if !ok {
		t.Fatalf("seeded peer missing")
	}
	if !m.Probation() {
		t.Fatalf("seeded peer should be in probation, got %+v", m)
	}
	if tb.Alive("n1", now) {
		t.Fatalf("probation peer must not count as alive")
	}
	if !tb.Alive("n0", now) {
		t.Fatalf("owner must always be alive to itself")
	}

	tb.Confirm("n1", now.Add(time.Second))
	if !tb.Alive("n1", now.Add(time.Second)) {
		t.Fatalf("confirmed peer should be alive")
	}
}

func TestTickSuspectsThenKills(t *testing.T) {
	now := time.Unix(1000, 0)
	tb := New(info("n0"), 10*time.Second, 20*time.Second)
	tb.SeedPeer(info("n1"), now)
	tb.Confirm("n1", now)

	s, d := tb.Tick(now.Add(5 * time.Second))
	if len(s) != 0 || len(d) != 0 {
		t.Fatalf("fresh member transitioned early: suspects=%v deads=%v", s, d)
	}

	s, _ = tb.Tick(now.Add(11 * time.Second))
	if len(s) != 1 || s[0].Info.Name != "n1" || s[0].State != Suspect {
		t.Fatalf("expected n1 suspected, got %v", s)
	}
	if tb.Alive("n1", now.Add(11*time.Second)) {
		t.Fatalf("suspect must not be alive")
	}

	// Not yet past suspectAfter+deadAfter.
	_, d = tb.Tick(now.Add(25 * time.Second))
	if len(d) != 0 {
		t.Fatalf("member declared dead before grace expired: %v", d)
	}

	_, d = tb.Tick(now.Add(31 * time.Second))
	if len(d) != 1 || d[0].Info.Name != "n1" || d[0].State != Dead {
		t.Fatalf("expected n1 dead, got %v", d)
	}
	m, _ := tb.Get("n1")
	if m.State != Dead {
		t.Fatalf("record not dead: %+v", m)
	}
}

func TestProbationPeerEventuallyDies(t *testing.T) {
	now := time.Unix(1000, 0)
	tb := New(info("n0"), 10*time.Second, 20*time.Second)
	tb.SeedPeer(info("n1"), now)

	s, _ := tb.Tick(now.Add(11 * time.Second))
	if len(s) != 1 {
		t.Fatalf("unconfirmed peer should still be suspected, got %v", s)
	}
	_, d := tb.Tick(now.Add(31 * time.Second))
	if len(d) != 1 {
		t.Fatalf("unconfirmed peer should die, got %v", d)
	}
}

func TestConfirmClearsLocalSuspicion(t *testing.T) {
	now := time.Unix(1000, 0)
	tb := New(info("n0"), 10*time.Second, 20*time.Second)
	tb.SeedPeer(info("n1"), now)
	tb.Confirm("n1", now)
	tb.Tick(now.Add(11 * time.Second))

	tb.Confirm("n1", now.Add(12*time.Second))
	if !tb.Alive("n1", now.Add(12*time.Second)) {
		t.Fatalf("direct contact should clear suspicion")
	}
	m, _ := tb.Get("n1")
	if m.State != Alive {
		t.Fatalf("state not restored: %+v", m)
	}
}

func TestConfirmDoesNotResurrectDead(t *testing.T) {
	now := time.Unix(1000, 0)
	tb := New(info("n0"), 10*time.Second, 20*time.Second)
	tb.SeedPeer(info("n1"), now)
	tb.Fail("n1")
	tb.Confirm("n1", now)
	if tb.Alive("n1", now) {
		t.Fatalf("confirm must not resurrect a dead member")
	}
}

func TestMergePrecedence(t *testing.T) {
	now := time.Unix(1000, 0)
	tb := New(info("n0"), 10*time.Second, 20*time.Second)

	if got := tb.Apply(Delta{Info: info("n1"), State: Alive, Incarnation: 3}, now); got != Applied {
		t.Fatalf("new record: got %v", got)
	}
	// Same incarnation, worse state wins.
	if got := tb.Apply(Delta{Info: info("n1"), State: Suspect, Incarnation: 3}, now); got != Applied {
		t.Fatalf("worse state at same incarnation should apply, got %v", got)
	}
	// Same incarnation, better state loses.
	if got := tb.Apply(Delta{Info: info("n1"), State: Alive, Incarnation: 3}, now); got != Stale {
		t.Fatalf("better state at same incarnation should be stale, got %v", got)
	}
	// Higher incarnation wins regardless.
	if got := tb.Apply(Delta{Info: info("n1"), State: Alive, Incarnation: 4}, now); got != Applied {
		t.Fatalf("higher incarnation should apply, got %v", got)
	}
	m, _ := tb.Get("n1")
	if m.State != Alive || m.Incarnation != 4 {
		t.Fatalf("unexpected record %+v", m)
	}
	// Exact duplicate.
	if got := tb.Apply(Delta{Info: info("n1"), State: Alive, Incarnation: 4}, now); got != Duplicate {
		t.Fatalf("duplicate should report Duplicate")
	}
	// Dead beats Left at same incarnation; Left beats Suspect.
	if got := tb.Apply(Delta{Info: info("n1"), State: Left, Incarnation: 4}, now); got != Applied {
		t.Fatalf("left should beat alive, got %v", got)
	}
	if got := tb.Apply(Delta{Info: info("n1"), State: Suspect, Incarnation: 4}, now); got != Stale {
		t.Fatalf("suspect should lose to left, got %v", got)
	}
	if got := tb.Apply(Delta{Info: info("n1"), State: Dead, Incarnation: 4}, now); got != Applied {
		t.Fatalf("dead should beat left, got %v", got)
	}
}

func TestRefutation(t *testing.T) {
	now := time.Unix(1000, 0)
	tb := New(info("n0"), 10*time.Second, 20*time.Second)

	got := tb.Apply(Delta{Info: info("n0"), State: Suspect, Incarnation: 1}, now)
	if got != Refuted {
		t.Fatalf("self-suspicion should be refuted, got %v", got)
	}
	d := tb.SelfDelta()
	if d.State != Alive || d.Incarnation != 2 {
		t.Fatalf("refutation should bump incarnation: %+v", d)
	}
	// A stale accusation at a lower incarnation is just stale.
	if got := tb.Apply(Delta{Info: info("n0"), State: Dead, Incarnation: 1}, now); got != Stale {
		t.Fatalf("stale accusation should be Stale, got %v", got)
	}
	// Server-assigned fresh alive incarnation lands (join response path).
	if got := tb.Apply(Delta{Info: info("n0"), State: Alive, Incarnation: 9}, now); got != Applied {
		t.Fatalf("fresh self alive incarnation should apply, got %v", got)
	}
	if d := tb.SelfDelta(); d.Incarnation != 9 {
		t.Fatalf("incarnation not adopted: %+v", d)
	}
}

func TestResurrectionResetsConfirmation(t *testing.T) {
	now := time.Unix(1000, 0)
	tb := New(info("n0"), 10*time.Second, 20*time.Second)
	tb.SeedPeer(info("n1"), now)
	tb.Confirm("n1", now)
	tb.Apply(Delta{Info: info("n1"), State: Dead, Incarnation: 1}, now)

	// Rejoin at a fresh incarnation: record applies but the member must
	// re-earn direct confirmation.
	if got := tb.Apply(Delta{Info: info("n1"), State: Alive, Incarnation: 2}, now); got != Applied {
		t.Fatalf("rejoin should apply, got %v", got)
	}
	m, _ := tb.Get("n1")
	if !m.Probation() {
		t.Fatalf("rejoined member should be in probation: %+v", m)
	}
}

func TestDigestConvergence(t *testing.T) {
	now := time.Unix(1000, 0)
	a := New(info("n0"), 10*time.Second, 20*time.Second)
	b := New(info("n1"), 10*time.Second, 20*time.Second)

	if a.Digest() == b.Digest() {
		t.Fatalf("different views should differ")
	}
	for _, d := range a.Deltas() {
		b.Apply(d, now)
	}
	for _, d := range b.Deltas() {
		a.Apply(d, now)
	}
	if a.Digest() != b.Digest() {
		t.Fatalf("converged views should share a digest:\n a=%v\n b=%v", a.Members(), b.Members())
	}

	// Local-only confirmation must not change the digest.
	before := a.Digest()
	a.Confirm("n1", now)
	if a.Digest() != before {
		t.Fatalf("confirmation is local-only and must not affect the digest")
	}
}

func TestFailReviveRoundTrip(t *testing.T) {
	now := time.Unix(1000, 0)
	tb := New(info("n0"), 10*time.Second, 20*time.Second)
	tb.SeedPeer(info("n1"), now)
	tb.Confirm("n1", now)

	tb.Fail("n1")
	if tb.Alive("n1", now) {
		t.Fatalf("failed member still alive")
	}
	tb.Revive("n1", now)
	if !tb.Alive("n1", now) {
		t.Fatalf("revived member not alive")
	}
	m, _ := tb.Get("n1")
	if m.Incarnation != 2 {
		t.Fatalf("revive should bump incarnation: %+v", m)
	}
	// Reviving an alive member is idempotent on incarnation.
	tb.Revive("n1", now)
	if m, _ := tb.Get("n1"); m.Incarnation != 2 {
		t.Fatalf("revive of alive member must not bump incarnation: %+v", m)
	}
}

func TestLeave(t *testing.T) {
	tb := New(info("n0"), 10*time.Second, 20*time.Second)
	d := tb.Leave()
	if d.State != Left || d.Incarnation != 2 {
		t.Fatalf("unexpected leave delta %+v", d)
	}
	other := New(info("n1"), 10*time.Second, 20*time.Second)
	other.Apply(d, time.Unix(1000, 0))
	if m, _ := other.Get("n0"); m.State != Left {
		t.Fatalf("leave did not propagate: %+v", m)
	}
	if got := other.GossipPeers(); len(got) != 0 {
		t.Fatalf("left member must not be a gossip target: %v", got)
	}
}
