// Package membership implements the SWIM-style dynamic member table of
// the Skute prototype: who is in the cluster, where they listen, and
// how alive they currently look.
//
// Unlike the boot-time descriptor it replaces, the table is a gossiped,
// monotonically converging data structure. Every member record carries
// an incarnation number stamped only by the member itself; state
// changes merge under the SWIM precedence order — a higher incarnation
// always wins, and at equal incarnations the "worse" state wins
// (alive < suspect < left < dead) — so every node resolves concurrent
// observations to the same record without coordination. A member that
// sees itself suspected or declared dead refutes by bumping its own
// incarnation, which supersedes the accusation everywhere it gossips.
//
// Liveness has two layers. The gossiped State is the cluster-wide
// verdict (alive, suspect, dead, left). Locally, each node also tracks
// whether it has *direct* evidence of a peer — a heartbeat received or
// an RPC answered. A member known only through gossip (or the boot
// list) sits in probation: its State is Alive but Alive() reports
// false, so it attracts no quorum or standby traffic until the first
// successful heartbeat exchange proves the process is actually up.
//
// Dissemination mirrors internal/placement: heartbeats piggyback the
// sender's own record plus a table digest, and a digest mismatch
// triggers a full delta pull — anti-entropy for the member list.
package membership

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"skute/internal/topology"
)

// State is the gossiped liveness verdict of a member.
type State uint8

const (
	// Alive: the member is (believed) up. Whether it serves traffic
	// locally additionally requires direct confirmation (see Member.
	// Confirmed).
	Alive State = iota
	// Suspect: heartbeats stale past the suspicion timeout; the member
	// gets a grace window to refute before it is declared dead.
	Suspect
	// Left: the member departed gracefully (drained and announced).
	Left
	// Dead: the member failed to refute suspicion in time (or a peer
	// declared it failed). Its partitions are re-placed by the economy.
	Dead
)

// String names the state.
func (s State) String() string {
	switch s {
	case Alive:
		return "alive"
	case Suspect:
		return "suspect"
	case Left:
		return "left"
	case Dead:
		return "dead"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// precedence orders states at equal incarnation: the worse verdict
// wins, so a death cannot be undone without a fresh incarnation.
func (s State) precedence() int { return int(s) }

// Info is the gossiped metadata of one member — everything a peer needs
// to route to it, price it and place replicas on it. It travels inside
// every member delta, so a node joined via one seed learns the full
// descriptor of every peer without a shared boot file.
type Info struct {
	Name        string
	Addr        string
	LocPath     string
	Confidence  float64
	MonthlyRent float64
	// Capacity is the storage capacity in bytes (rent storage term).
	Capacity int64
	// QueryCapacity is the per-epoch query capacity (rent load term).
	QueryCapacity float64
}

// Validate rejects metadata the placement machinery cannot use.
func (i Info) Validate() error {
	if i.Name == "" || i.Addr == "" {
		return fmt.Errorf("membership: member needs a name and an address")
	}
	if _, err := topology.ParsePath(i.LocPath); err != nil {
		return fmt.Errorf("membership: member %s: %w", i.Name, err)
	}
	if i.Confidence < 0 || i.Confidence > 1 {
		return fmt.Errorf("membership: member %s confidence %v outside [0,1]", i.Name, i.Confidence)
	}
	if i.MonthlyRent <= 0 || i.Capacity <= 0 || i.QueryCapacity <= 0 {
		return fmt.Errorf("membership: member %s needs positive rent, capacity and query capacity", i.Name)
	}
	return nil
}

// Delta is one member record as it travels between nodes. Like a
// placement delta it is a full record, not an increment: applying it is
// idempotent and order-independent under the precedence merge.
type Delta struct {
	Info        Info
	State       State
	Incarnation uint64
}

// supersedes reports whether the delta wins over the current record.
func (d Delta) supersedes(state State, inc uint64) bool {
	if d.Incarnation != inc {
		return d.Incarnation > inc
	}
	return d.State.precedence() > state.precedence()
}

// Member is one entry of the table as seen locally: the gossiped record
// plus this node's direct-contact evidence.
type Member struct {
	Info        Info
	State       State
	Incarnation uint64
	// Confirmed reports direct contact: this node has exchanged a
	// heartbeat (or any RPC) with the member. An unconfirmed Alive
	// member is in probation and does not serve traffic from here.
	Confirmed bool
	// LastHeard is the local time of the freshest liveness evidence
	// (direct contact, or record arrival for unconfirmed members).
	LastHeard time.Time
}

// Probation reports whether the member is alive-but-unconfirmed.
func (m Member) Probation() bool { return m.State == Alive && !m.Confirmed }

// Outcome classifies one Apply.
type Outcome int

const (
	// Applied: the delta won the precedence merge and replaced the record.
	Applied Outcome = iota
	// Duplicate: the delta carries exactly the current stamp.
	Duplicate
	// Stale: the delta lost the merge.
	Stale
	// Refuted: the delta accused this node itself of being suspect or
	// dead; the table bumped its own incarnation past the accusation.
	// The caller should gossip the refreshed self record.
	Refuted
	// Rejected: the delta's metadata failed validation.
	Rejected
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case Applied:
		return "applied"
	case Duplicate:
		return "duplicate"
	case Stale:
		return "stale"
	case Refuted:
		return "refuted"
	case Rejected:
		return "rejected"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// Table is one node's view of the cluster membership, safe for
// concurrent use. The node's own record is special: only the table
// owner ever bumps its incarnation (join, refutation, graceful leave).
type Table struct {
	mu      sync.RWMutex
	self    string
	members map[string]*Member
	// suspectAfter is how long a confirmed member may stay silent
	// before Tick suspects it; deadAfter is the additional refutation
	// grace before a suspect is declared dead.
	suspectAfter time.Duration
	deadAfter    time.Duration
	// digest caches the gossiped-state fingerprint between mutations.
	digest   uint64
	digestOK bool
}

// New returns a table whose only entry is the owner itself: alive,
// confirmed, incarnation 1.
func New(self Info, suspectAfter, deadAfter time.Duration) *Table {
	if suspectAfter <= 0 {
		suspectAfter = 10 * time.Second
	}
	if deadAfter <= 0 {
		deadAfter = 3 * suspectAfter
	}
	t := &Table{
		self:         self.Name,
		members:      make(map[string]*Member),
		suspectAfter: suspectAfter,
		deadAfter:    deadAfter,
	}
	t.members[self.Name] = &Member{Info: self, State: Alive, Incarnation: 1, Confirmed: true}
	return t
}

// SetTimeouts adjusts the suspicion windows (a joiner adopts the
// cluster's values from the join response).
func (t *Table) SetTimeouts(suspectAfter, deadAfter time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if suspectAfter > 0 {
		t.suspectAfter = suspectAfter
	}
	if deadAfter > 0 {
		t.deadAfter = deadAfter
	}
}

// Self returns the owner's name.
func (t *Table) Self() string { return t.self }

// SeedPeer installs a boot-descriptor peer: alive at incarnation 1 but
// UNCONFIRMED — probation until the first successful heartbeat
// exchange, so a just-booted node does not route traffic to peers that
// may never have started.
func (t *Table) SeedPeer(info Info, at time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.members[info.Name]; ok {
		return
	}
	t.members[info.Name] = &Member{Info: info, State: Alive, Incarnation: 1, LastHeard: at}
	t.digestOK = false
}

// Apply merges one gossiped record. A record accusing the owner itself
// of suspicion or death is refuted: the owner's incarnation jumps past
// the accusation and the outcome tells the caller to spread the
// refreshed self record.
func (t *Table) Apply(d Delta, at time.Time) Outcome {
	if err := d.Info.Validate(); err != nil {
		return Rejected
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	cur, ok := t.members[d.Info.Name]
	if d.Info.Name == t.self {
		// Only the owner stamps its own record — with one exception: a
		// join response hands the joiner its server-assigned fresh
		// incarnation, which must land for a rejoin to supersede the
		// old death record everywhere.
		if d.State == Alive && d.Incarnation > cur.Incarnation {
			cur.Incarnation = d.Incarnation
			cur.State = Alive
			t.digestOK = false
			return Applied
		}
		if d.State != Alive && d.Incarnation >= cur.Incarnation {
			cur.Incarnation = d.Incarnation + 1
			cur.State = Alive
			t.digestOK = false
			return Refuted
		}
		return Stale
	}
	if !ok {
		m := &Member{Info: d.Info, State: d.State, Incarnation: d.Incarnation, LastHeard: at}
		t.members[d.Info.Name] = m
		t.digestOK = false
		return Applied
	}
	if d.Incarnation == cur.Incarnation && d.State == cur.State {
		return Duplicate
	}
	if !d.supersedes(cur.State, cur.Incarnation) {
		return Stale
	}
	cur.Info = d.Info
	cur.Incarnation = d.Incarnation
	// A record that resurrects the member (fresh incarnation, alive)
	// resets direct-contact evidence: the rejoined process must prove
	// itself again before it attracts traffic from here.
	if d.State == Alive && cur.State != Alive {
		cur.Confirmed = false
		cur.LastHeard = at
	}
	cur.State = d.State
	t.digestOK = false
	return Applied
}

// Confirm records direct contact with a member: a heartbeat received
// from it, or an RPC it answered. Confirmation ends probation and, for
// a locally suspected member, restores Alive at the same incarnation
// (the gossip layer converges the cluster-wide verdict; fresh direct
// evidence always trumps a stale local suspicion). Dead and Left stay
// terminal — only a fresh incarnation (rejoin) undoes them.
func (t *Table) Confirm(name string, at time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	m, ok := t.members[name]
	if !ok || m.State == Dead || m.State == Left {
		return
	}
	if m.State == Suspect {
		m.State = Alive
		t.digestOK = false
	}
	m.Confirmed = true
	if at.After(m.LastHeard) {
		m.LastHeard = at
	}
}

// Fail force-marks a member dead at its current incarnation — the
// explicit churn-injection path (skute.Cluster.FailServer); the organic
// path is Tick's alive→suspect→dead progression.
func (t *Table) Fail(name string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	m, ok := t.members[name]
	if !ok || name == t.self || m.State == Dead || m.State == Left {
		return
	}
	m.State = Dead
	t.digestOK = false
}

// Revive force-marks a member alive and confirmed at a fresh
// incarnation — the counterpart of Fail for scripted churn. Every peer
// applying the same revival computes the same incarnation, so the
// records converge.
func (t *Table) Revive(name string, at time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	m, ok := t.members[name]
	if !ok {
		return
	}
	if m.State != Alive {
		m.State = Alive
		m.Incarnation++
	}
	m.Confirmed = true
	if at.After(m.LastHeard) {
		m.LastHeard = at
	}
	t.digestOK = false
}

// Leave marks the owner as gracefully departed and returns the record
// to gossip on the way out.
func (t *Table) Leave() Delta {
	t.mu.Lock()
	defer t.mu.Unlock()
	m := t.members[t.self]
	m.Incarnation++
	m.State = Left
	t.digestOK = false
	return Delta{Info: m.Info, State: Left, Incarnation: m.Incarnation}
}

// Tick advances the local failure detector: confirmed members silent
// past the suspicion timeout become Suspect; suspects silent past the
// additional grace become Dead. Members still in probation follow the
// same clock — a peer that never confirmed within the windows is
// suspected and then declared dead, so a node that died right after
// joining is still evicted. It returns the records that changed, for
// the caller to gossip and act on (eviction).
func (t *Table) Tick(now time.Time) (suspects, deads []Delta) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for name, m := range t.members {
		if name == t.self {
			continue
		}
		switch m.State {
		case Alive:
			if now.Sub(m.LastHeard) > t.suspectAfter {
				m.State = Suspect
				t.digestOK = false
				suspects = append(suspects, Delta{Info: m.Info, State: Suspect, Incarnation: m.Incarnation})
			}
		case Suspect:
			if now.Sub(m.LastHeard) > t.suspectAfter+t.deadAfter {
				m.State = Dead
				t.digestOK = false
				deads = append(deads, Delta{Info: m.Info, State: Dead, Incarnation: m.Incarnation})
			}
		}
	}
	return suspects, deads
}

// Alive reports whether the member currently serves traffic from this
// node's point of view: gossip-alive, directly confirmed, and fresh.
// The owner always trusts itself.
func (t *Table) Alive(name string, now time.Time) bool {
	if name == t.self {
		return true
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	m, ok := t.members[name]
	return ok && m.State == Alive && m.Confirmed && now.Sub(m.LastHeard) <= t.suspectAfter
}

// Info returns the member's metadata.
func (t *Table) Info(name string) (Info, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	m, ok := t.members[name]
	if !ok {
		return Info{}, false
	}
	return m.Info, true
}

// Get returns the member's full local record.
func (t *Table) Get(name string) (Member, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	m, ok := t.members[name]
	if !ok {
		return Member{}, false
	}
	return *m, true
}

// AliveNames returns the names currently alive (owner included), sorted.
func (t *Table) AliveNames(now time.Time) []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []string
	for name, m := range t.members {
		if name == t.self || (m.State == Alive && m.Confirmed && now.Sub(m.LastHeard) <= t.suspectAfter) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// GossipPeers returns the metadata of every non-terminal peer — the
// heartbeat fan-out targets. Suspects are included (the beat doubles as
// the refutation probe) and so are probation members (the beat is
// exactly what confirms them); Dead and Left are not contacted.
func (t *Table) GossipPeers() []Info {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]Info, 0, len(t.members))
	for name, m := range t.members {
		if name == t.self || m.State == Dead || m.State == Left {
			continue
		}
		out = append(out, m.Info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Members returns a snapshot of every record, sorted by name.
func (t *Table) Members() []Member {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]Member, 0, len(t.members))
	for _, m := range t.members {
		out = append(out, *m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Info.Name < out[j].Info.Name })
	return out
}

// SelfDelta returns the owner's current record for piggybacking on
// heartbeats.
func (t *Table) SelfDelta() Delta {
	t.mu.RLock()
	defer t.mu.RUnlock()
	m := t.members[t.self]
	return Delta{Info: m.Info, State: m.State, Incarnation: m.Incarnation}
}

// Deltas exports every record (gossiped fields only), sorted by name —
// the payload of a digest-mismatch pull and of a join response.
func (t *Table) Deltas() []Delta {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]Delta, 0, len(t.members))
	for _, m := range t.members {
		out = append(out, Delta{Info: m.Info, State: m.State, Incarnation: m.Incarnation})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Info.Name < out[j].Info.Name })
	return out
}

// Digest fingerprints the gossiped state of the table: every (name,
// state, incarnation, addr) folds into one 64-bit hash in name order.
// Local-only fields (confirmation, last-heard) are excluded, so two
// nodes with the same cluster-wide view agree byte-for-byte. The result
// is cached between mutations.
func (t *Table) Digest() uint64 {
	t.mu.RLock()
	if t.digestOK {
		d := t.digest
		t.mu.RUnlock()
		return d
	}
	t.mu.RUnlock()
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.digestOK {
		return t.digest
	}
	names := make([]string, 0, len(t.members))
	for name := range t.members {
		names = append(names, name)
	}
	sort.Strings(names)
	h := fnv.New64a()
	for _, name := range names {
		m := t.members[name]
		fmt.Fprintf(h, "%s:%d:%d:%s;", name, m.State, m.Incarnation, m.Info.Addr)
	}
	t.digest = h.Sum64()
	t.digestOK = true
	return t.digest
}

// Len returns the number of records (terminal states included).
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.members)
}
