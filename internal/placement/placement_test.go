package placement

import (
	"fmt"
	"sync"
	"testing"

	"skute/internal/ring"
)

var gold = ring.RingID{App: "appA", Class: "gold"}
var plat = ring.RingID{App: "appB", Class: "plat"}

func seeded() *Map {
	m := NewMap()
	m.Seed(gold, 0, []string{"n0", "n1"})
	m.Seed(gold, 1, []string{"n1", "n2"})
	m.Seed(plat, 0, []string{"n0", "n1", "n2"})
	return m
}

func TestSeedAndGet(t *testing.T) {
	m := seeded()
	e, ok := m.Get(gold, 0)
	if !ok || e.Version != 1 || e.Origin != "" || fmt.Sprint(e.Replicas) != "[n0 n1]" {
		t.Fatalf("seeded entry = %+v, %v", e, ok)
	}
	if _, ok := m.Get(gold, 99); ok {
		t.Error("unknown partition found")
	}
	if m.Len() != 3 {
		t.Errorf("Len = %d", m.Len())
	}
	// Get returns a copy, not the internal slice.
	e.Replicas[0] = "mutated"
	if e2, _ := m.Get(gold, 0); e2.Replicas[0] != "n0" {
		t.Error("Get aliases internal replica slice")
	}
}

func TestProposeBumpsVersion(t *testing.T) {
	m := seeded()
	d := m.Propose(gold, 0, "n0", []string{"n0", "n1", "n3"})
	if d.Version != 2 || d.Origin != "n0" {
		t.Fatalf("delta = %+v", d)
	}
	e, _ := m.Get(gold, 0)
	if e.Version != 2 || fmt.Sprint(e.Replicas) != "[n0 n1 n3]" {
		t.Fatalf("entry after propose = %+v", e)
	}
	d2 := m.Propose(gold, 0, "n1", []string{"n1", "n3"})
	if d2.Version != 3 {
		t.Fatalf("second propose version = %d", d2.Version)
	}
}

func TestApplyLastWriterWins(t *testing.T) {
	m := seeded()
	newer := Delta{Ring: gold, Part: 0, Replicas: []string{"n2", "n3"}, Version: 3, Origin: "n2"}
	if got := m.Apply(newer); got != Applied {
		t.Fatalf("newer delta = %v", got)
	}
	// A stale delta (the version-2 step we never saw) must be rejected.
	stale := Delta{Ring: gold, Part: 0, Replicas: []string{"n0", "n9"}, Version: 2, Origin: "n0"}
	if got := m.Apply(stale); got != Stale {
		t.Fatalf("stale delta = %v", got)
	}
	e, _ := m.Get(gold, 0)
	if e.Version != 3 || fmt.Sprint(e.Replicas) != "[n2 n3]" {
		t.Fatalf("stale delta mutated the entry: %+v", e)
	}
	// Redelivery of the current stamp is a duplicate, not a change.
	if got := m.Apply(newer); got != Duplicate {
		t.Fatalf("redelivery = %v", got)
	}
}

func TestApplyTieBreaksOnOrigin(t *testing.T) {
	// Two concurrent proposals at the same version from different
	// origins: every node must resolve to the same winner (larger
	// origin), regardless of arrival order.
	a := Delta{Ring: gold, Part: 0, Replicas: []string{"n0", "n3"}, Version: 2, Origin: "n1"}
	b := Delta{Ring: gold, Part: 0, Replicas: []string{"n0", "n4"}, Version: 2, Origin: "n5"}

	m1 := seeded()
	m1.Apply(a)
	if got := m1.Apply(b); got != Applied {
		t.Fatalf("higher origin after lower = %v", got)
	}
	m2 := seeded()
	m2.Apply(b)
	if got := m2.Apply(a); got != Stale {
		t.Fatalf("lower origin after higher = %v", got)
	}
	e1, _ := m1.Get(gold, 0)
	e2, _ := m2.Get(gold, 0)
	if fmt.Sprint(e1.Replicas) != fmt.Sprint(e2.Replicas) || e1.Origin != "n5" {
		t.Fatalf("orders diverged: %+v vs %+v", e1, e2)
	}
}

func TestApplyUnknownKey(t *testing.T) {
	m := NewMap()
	d := Delta{Ring: gold, Part: 7, Replicas: []string{"n1"}, Version: 4, Origin: "n1"}
	if got := m.Apply(d); got != Applied {
		t.Fatalf("apply to empty map = %v", got)
	}
	if e, ok := m.Get(gold, 7); !ok || e.Version != 4 {
		t.Fatalf("entry after apply = %+v, %v", e, ok)
	}
}

func TestDigestMatchesIffEntriesMatch(t *testing.T) {
	a, b := seeded(), seeded()
	if len(a.Digest().Mismatch(b.Digest())) != 0 {
		t.Fatal("identical maps produce mismatched digests")
	}
	b.Apply(Delta{Ring: gold, Part: 1, Replicas: []string{"n3", "n4"}, Version: 2, Origin: "n3"})
	mm := a.Digest().Mismatch(b.Digest())
	if len(mm) != 1 || mm[0] != gold {
		t.Fatalf("mismatch = %v, want [gold]", mm)
	}
	// Converge a and the digests agree again.
	for _, d := range b.Deltas(gold) {
		a.Apply(d)
	}
	if mm := a.Digest().Mismatch(b.Digest()); len(mm) != 0 {
		t.Fatalf("digests still differ after convergence: %v", mm)
	}
}

func TestDigestMismatchOneSided(t *testing.T) {
	a := seeded()
	empty := NewMap()
	mm := a.Digest().Mismatch(empty.Digest())
	if len(mm) != 2 {
		t.Fatalf("one-sided mismatch = %v", mm)
	}
	if mm2 := empty.Digest().Mismatch(a.Digest()); len(mm2) != 2 {
		t.Fatalf("reverse one-sided mismatch = %v", mm2)
	}
}

func TestDeltasDeterministicAndFiltered(t *testing.T) {
	m := seeded()
	all := m.Deltas()
	if len(all) != 3 {
		t.Fatalf("Deltas() = %d entries", len(all))
	}
	if all[0].Ring != gold || all[0].Part != 0 || all[2].Ring != plat {
		t.Fatalf("Deltas not sorted: %v", all)
	}
	goldOnly := m.Deltas(gold)
	if len(goldOnly) != 2 {
		t.Fatalf("Deltas(gold) = %d entries", len(goldOnly))
	}
	// Round-trip: applying a map's own deltas to a fresh map reproduces it.
	m2 := NewMap()
	for _, d := range all {
		if got := m2.Apply(d); got != Applied {
			t.Fatalf("round-trip apply of %s = %v", d, got)
		}
	}
	if len(m.Digest().Mismatch(m2.Digest())) != 0 {
		t.Fatal("round-tripped map has a different digest")
	}
}

func TestConcurrentApplyRaceClean(t *testing.T) {
	m := seeded()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				m.Apply(Delta{
					Ring: gold, Part: i % 2,
					Replicas: []string{fmt.Sprintf("n%d", w)},
					Version:  uint64(i), Origin: fmt.Sprintf("n%d", w),
				})
				m.Digest()
				m.Get(gold, 0)
				m.Deltas(gold)
			}
		}(w)
	}
	wg.Wait()
	// Highest (version, origin) wins in the end.
	e, _ := m.Get(gold, 1)
	if e.Version != 49 || e.Origin != "n7" {
		t.Fatalf("final entry = %+v, want v49@n7", e)
	}
}

func TestDigestSum(t *testing.T) {
	a, b := seeded(), seeded()
	if a.Digest().Sum() != b.Digest().Sum() {
		t.Fatal("identical maps disagree on Sum")
	}
	b.Propose(gold, 0, "n3", []string{"n3"})
	if a.Digest().Sum() == b.Digest().Sum() {
		t.Fatal("diverged maps agree on Sum")
	}
	// Convergence through Apply restores agreement.
	for _, d := range b.Deltas() {
		a.Apply(d)
	}
	if a.Digest().Sum() != b.Digest().Sum() {
		t.Fatal("converged maps disagree on Sum")
	}
	if (Digest{}).Sum() != (Digest{}).Sum() {
		t.Fatal("empty digest Sum not deterministic")
	}
}
