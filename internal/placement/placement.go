// Package placement holds the versioned cluster placement map of the
// Skute prototype: which servers replicate which partition of which
// virtual ring, stamped so that the control plane converges under churn.
//
// Every (ring, partition) entry carries a monotonically increasing
// version plus the name of the node that proposed it. A replica-set
// change (adopt, migrate, suicide) is a Delta — the full new replica
// set at version+1 — merged everywhere through last-writer-wins: the
// higher version wins, and equal versions from different proposers
// break the tie on the larger origin name, so every node resolves a
// conflict to the same winner without coordination. Stale deltas
// (late, reordered or replayed) are rejected instead of silently
// resurrecting a replica the cluster already moved away.
//
// Dissemination is gossip-shaped: heartbeats piggyback a per-ring
// Digest (a fingerprint of every entry's version stamp), and a node
// that sees a foreign digest differing from its own pulls the peer's
// entries for the mismatched rings and merges them — anti-entropy for
// the control plane, mirroring what Merkle trees do for the data plane.
package placement

import (
	"fmt"
	"hash"
	"hash/fnv"
	"sort"
	"sync"

	"skute/internal/ring"
)

// Key identifies one placement entry: a partition of a virtual ring.
type Key struct {
	Ring ring.RingID
	Part int
}

// Entry is the current replica set of one partition with its version
// stamp.
type Entry struct {
	// Replicas are the node names holding a copy, in placement order.
	Replicas []string
	// Version increases by one with every accepted change of this
	// partition's replica set. The seeded bootstrap layout is version 1.
	Version uint64
	// Origin names the node that proposed this version ("" for the
	// deterministic bootstrap seed). It breaks ties between concurrent
	// proposals at the same version.
	Origin string
}

// Delta is one versioned replica-set change as it travels between
// nodes: the full replica set the origin proposed, not an incremental
// add/remove, so applying it is idempotent and order-independent
// under the last-writer-wins merge.
type Delta struct {
	Ring     ring.RingID
	Part     int
	Replicas []string
	Version  uint64
	Origin   string
}

// Key returns the entry key of the delta.
func (d Delta) Key() Key { return Key{Ring: d.Ring, Part: d.Part} }

// String renders the delta for logs and errors.
func (d Delta) String() string {
	return fmt.Sprintf("%s#%d v%d@%s %v", d.Ring, d.Part, d.Version, d.Origin, d.Replicas)
}

// supersedes reports whether the delta wins over the entry under the
// last-writer-wins order: higher version first, larger origin on a tie.
func (d Delta) supersedes(e Entry) bool {
	if d.Version != e.Version {
		return d.Version > e.Version
	}
	return d.Origin > e.Origin
}

// Outcome classifies one Apply.
type Outcome int

const (
	// Applied: the delta was newer and replaced the entry.
	Applied Outcome = iota
	// Duplicate: the delta carries exactly the entry's version stamp —
	// an idempotent redelivery, not an error.
	Duplicate
	// Stale: the delta lost the last-writer-wins comparison; accepting
	// it would resurrect a superseded replica set.
	Stale
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case Applied:
		return "applied"
	case Duplicate:
		return "duplicate"
	case Stale:
		return "stale"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// Digest fingerprints a map per ring: every entry's (partition,
// version, origin, replicas) folds into one 64-bit hash per ring, small
// enough to piggyback on every heartbeat. Equal digests mean the two
// maps agree on the ring; a mismatch triggers a delta pull.
type Digest map[ring.RingID]uint64

// Mismatch returns the rings whose fingerprints differ between the two
// digests (a ring present on only one side counts), sorted for
// deterministic iteration.
func (d Digest) Mismatch(other Digest) []ring.RingID {
	var out []ring.RingID
	for id, h := range d {
		if oh, ok := other[id]; !ok || oh != h {
			out = append(out, id)
		}
	}
	for id := range other {
		if _, ok := d[id]; !ok {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].App != out[j].App {
			return out[i].App < out[j].App
		}
		return out[i].Class < out[j].Class
	})
	return out
}

// Sum folds the per-ring fingerprints into one order-independent
// 64-bit value — a whole-map fingerprint cheap enough to export on
// every stats scrape. Two digests with equal Sum agree on every ring
// (up to hash collision), so scenario invariants compare a single
// number per node to decide placement convergence.
func (d Digest) Sum() uint64 {
	ids := make([]ring.RingID, 0, len(d))
	for id := range d {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if ids[i].App != ids[j].App {
			return ids[i].App < ids[j].App
		}
		return ids[i].Class < ids[j].Class
	})
	h := fnv.New64a()
	for _, id := range ids {
		fmt.Fprintf(h, "%s/%s:%d;", id.App, id.Class, d[id])
	}
	return h.Sum64()
}

// Map is the placement table, safe for concurrent use. Mutations go
// through Seed (bootstrap), Propose (a local decision) and Apply (a
// delta received from a peer); reads through Get, Deltas and Digest.
type Map struct {
	mu      sync.RWMutex
	entries map[Key]Entry
	// digest caches the per-ring fingerprints between mutations: the
	// map is hashed on every heartbeat sent, received and served, but
	// changes only when a mutation lands. nil = recompute.
	digest Digest
}

// NewMap returns an empty placement map.
func NewMap() *Map {
	return &Map{entries: make(map[Key]Entry)}
}

// Seed installs the deterministic bootstrap replica set of a partition
// at version 1 with the empty origin. Every node seeds the identical
// layout from the shared descriptor, so seeded entries never conflict;
// any real proposal (version >= 2, or version 1 from a named origin)
// supersedes the seed.
func (m *Map) Seed(id ring.RingID, part int, replicas []string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.entries[Key{Ring: id, Part: part}] = Entry{
		Replicas: append([]string(nil), replicas...),
		Version:  1,
	}
	m.digest = nil
}

// Get returns the current entry of a partition.
func (m *Map) Get(id ring.RingID, part int) (Entry, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	e, ok := m.entries[Key{Ring: id, Part: part}]
	if !ok {
		return Entry{}, false
	}
	e.Replicas = append([]string(nil), e.Replicas...)
	return e, true
}

// Stamp returns just the version stamp of a partition's entry without
// copying the replica slice. It is the freshness predicate of the
// coordinator read lease: a cached read (or a lease-served local read)
// is current exactly while the stamp it was minted under still matches,
// so any accepted delta — an epoch decision, a membership eviction, a
// join transfer — invalidates it in O(1) at the next comparison, with
// no active scan of cached state. A partition with no accepted delta
// yet is still on the deterministic initial placement every node
// derives from the descriptor; its stamp is (0, ""), and the first
// real delta (version >= 1) mismatches it like any other change.
func (m *Map) Stamp(id ring.RingID, part int) (version uint64, origin string) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	e := m.entries[Key{Ring: id, Part: part}]
	return e.Version, e.Origin
}

// Propose stamps a new replica set for the partition: version is the
// current entry's version plus one, origin is the proposing node. The
// proposal is applied locally and returned as the delta to disseminate.
func (m *Map) Propose(id ring.RingID, part int, origin string, replicas []string) Delta {
	m.mu.Lock()
	defer m.mu.Unlock()
	k := Key{Ring: id, Part: part}
	d := Delta{
		Ring:     id,
		Part:     part,
		Replicas: append([]string(nil), replicas...),
		Version:  m.entries[k].Version + 1,
		Origin:   origin,
	}
	m.entries[k] = Entry{Replicas: d.Replicas, Version: d.Version, Origin: d.Origin}
	m.digest = nil
	return d
}

// Apply merges one delta under last-writer-wins and reports what
// happened. Only Applied changes the map.
func (m *Map) Apply(d Delta) Outcome {
	m.mu.Lock()
	defer m.mu.Unlock()
	k := d.Key()
	cur, ok := m.entries[k]
	if ok {
		if d.Version == cur.Version && d.Origin == cur.Origin {
			return Duplicate
		}
		if !d.supersedes(cur) {
			return Stale
		}
	}
	m.entries[k] = Entry{
		Replicas: append([]string(nil), d.Replicas...),
		Version:  d.Version,
		Origin:   d.Origin,
	}
	m.digest = nil
	return Applied
}

// Deltas exports the entries of the given rings (all rings when none
// are named) as deltas, sorted by (ring, partition) for deterministic
// wire payloads.
func (m *Map) Deltas(ids ...ring.RingID) []Delta {
	m.mu.RLock()
	defer m.mu.RUnlock()
	want := make(map[ring.RingID]bool, len(ids))
	for _, id := range ids {
		want[id] = true
	}
	var out []Delta
	for k, e := range m.entries {
		if len(ids) > 0 && !want[k.Ring] {
			continue
		}
		out = append(out, Delta{
			Ring:     k.Ring,
			Part:     k.Part,
			Replicas: append([]string(nil), e.Replicas...),
			Version:  e.Version,
			Origin:   e.Origin,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Ring != out[j].Ring {
			return out[i].Ring.String() < out[j].Ring.String()
		}
		return out[i].Part < out[j].Part
	})
	return out
}

// Digest fingerprints the map per ring. Entries fold in partition
// order, so two maps with identical entries produce identical digests.
// The result is cached between mutations and shared: callers must
// treat it as read-only.
func (m *Map) Digest() Digest {
	m.mu.RLock()
	if d := m.digest; d != nil {
		m.mu.RUnlock()
		return d
	}
	m.mu.RUnlock()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.digest != nil {
		return m.digest
	}
	keys := make([]Key, 0, len(m.entries))
	for k := range m.entries {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Ring != keys[j].Ring {
			return keys[i].Ring.String() < keys[j].Ring.String()
		}
		return keys[i].Part < keys[j].Part
	})
	hashes := make(map[ring.RingID]hash.Hash64, 4)
	for _, k := range keys {
		h, ok := hashes[k.Ring]
		if !ok {
			h = fnv.New64a()
			hashes[k.Ring] = h
		}
		e := m.entries[k]
		fmt.Fprintf(h, "%d:%d:%s:", k.Part, e.Version, e.Origin)
		for _, r := range e.Replicas {
			fmt.Fprintf(h, "%s,", r)
		}
		_, _ = h.Write([]byte{';'})
	}
	d := make(Digest, len(hashes))
	for id, h := range hashes {
		d[id] = h.Sum64()
	}
	m.digest = d
	return d
}

// Len returns the number of entries.
func (m *Map) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.entries)
}
