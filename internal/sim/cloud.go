package sim

import (
	"fmt"
	"math/rand"

	"skute/internal/agent"
	"skute/internal/availability"
	"skute/internal/economy"
	"skute/internal/ring"
	"skute/internal/server"
	"skute/internal/topology"
	"skute/internal/workload"
)

// vkey identifies one virtual node: a partition replica on a server.
type vkey struct {
	part int
	srv  ring.ServerID
}

// appState is the simulator's view of one application's virtual ring.
type appState struct {
	spec      AppSpec
	threshold float64
	ring      *ring.Ring
	// popularity holds the unnormalized popularity weight of each live
	// partition; splitting a partition halves the weight into both
	// children.
	popularity map[int]float64
	sizes      map[int]int64
	vnodes     map[vkey]*agent.VNode
	// queries is the per-partition query count of the current epoch.
	queries map[int]int
	// serverLoad is the per-server query traffic of this ring in the
	// current epoch, for the Fig. 4 metric.
	serverLoad map[ring.ServerID]float64
	// vqueries is the per-replica query share of the current epoch.
	vqueries vnodeQueries
	// gcache holds the epoch's normalized geographic preference of every
	// alive server for this application's clients (1 for the best-placed
	// server), refreshed at the start of each epoch.
	gcache map[ring.ServerID]float64
}

// Cloud is a running simulation: the cloud of servers, the virtual rings
// and the virtual economy, advanced epoch by epoch.
type Cloud struct {
	cfg   Config
	rng   *rand.Rand
	epoch int

	servers []*server.Server // dense by ServerID; failed servers stay
	board   *economy.Board
	rings   *ring.MultiRing
	apps    []*appState

	// next location slot for servers added by upgrade events
	addSeq int

	// queueScratch is reused across epochs for the decision queue.
	queueScratch []decisionRef

	// Cumulative counters.
	insertAttempts int64
	insertFailures int64
	lostPartitions int64
	migrations     int64
	replications   int64
	suicides       int64
}

// New builds the cloud, assigns price classes, creates the virtual rings
// and places one initial replica per partition on a random server. The
// replication process that brings every partition up to its SLA then runs
// inside the first epochs (Fig. 2's startup phase).
func New(cfg Config) (*Cloud, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Cloud{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		board: economy.NewBoard(),
		rings: ring.NewMultiRing(),
	}

	sites := topology.MustBuild(cfg.Topology)
	// Price classes: exactly ExpensiveFraction of the servers, chosen by a
	// seeded shuffle, pay the expensive rent.
	expensive := make([]bool, len(sites))
	nExp := int(cfg.ExpensiveFraction * float64(len(sites)))
	perm := c.rng.Perm(len(sites))
	for i := 0; i < nExp; i++ {
		expensive[perm[i]] = true
	}
	for i, site := range sites {
		rent := cfg.CheapRent
		if expensive[i] {
			rent = cfg.ExpensiveRent
		}
		srv, err := server.New(ring.ServerID(i), site.Loc, site.Confidence, rent, cfg.Capacities)
		if err != nil {
			return nil, err
		}
		c.servers = append(c.servers, srv)
	}

	for _, spec := range cfg.Apps {
		r, err := c.rings.Add(spec.RingID(), spec.Partitions)
		if err != nil {
			return nil, err
		}
		weights, err := spec.Popularity.Weights(c.rng, spec.Partitions, spec.PopClamp)
		if err != nil {
			return nil, err
		}
		st := &appState{
			spec:       spec,
			threshold:  availability.ThresholdForReplicas(spec.TargetReplicas),
			ring:       r,
			popularity: make(map[int]float64, spec.Partitions),
			sizes:      make(map[int]int64, spec.Partitions),
			vnodes:     make(map[vkey]*agent.VNode),
			queries:    make(map[int]int),
			serverLoad: make(map[ring.ServerID]float64),
		}
		if st.spec.Clients == nil {
			st.spec.Clients = workload.UniformClients{}
		}
		for i, p := range r.Partitions() {
			st.popularity[p.ID] = weights[i]
			st.sizes[p.ID] = spec.PartitionSize
			if err := c.placeInitial(st, p); err != nil {
				return nil, err
			}
		}
		c.apps = append(c.apps, st)
	}

	// First board announcement: rents of an idle cloud.
	c.announceRents()
	return c, nil
}

// placeInitial puts the first replica of a partition on a random server
// with room.
func (c *Cloud) placeInitial(st *appState, p *ring.Partition) error {
	size := st.sizes[p.ID]
	for attempts := 0; attempts < 4*len(c.servers); attempts++ {
		srv := c.servers[c.rng.Intn(len(c.servers))]
		if srv.CanHost(size) {
			if err := srv.Store(size); err != nil {
				return err
			}
			p.AddReplica(srv.ID())
			st.vnodes[vkey{p.ID, srv.ID()}] = &agent.VNode{
				Ring: st.spec.RingID(), Partition: p.ID, Server: srv.ID(), Size: size,
			}
			return nil
		}
	}
	return fmt.Errorf("sim: no server can host the initial replica of partition %d (%d bytes)", p.ID, size)
}

// Epoch returns the number of completed epochs.
func (c *Cloud) Epoch() int { return c.epoch }

// Config returns the simulation configuration.
func (c *Cloud) Config() Config { return c.cfg }

// Servers returns the dense server list (failed servers included).
func (c *Cloud) Servers() []*server.Server { return c.servers }

// Board returns the rent board.
func (c *Cloud) Board() *economy.Board { return c.board }

// server returns the server with the id; ids are dense slice indexes.
func (c *Cloud) server(id ring.ServerID) *server.Server { return c.servers[int(id)] }

// hostsOf builds the availability view of a partition's replica set.
func (c *Cloud) hostsOf(p *ring.Partition) []availability.Host {
	return c.appendHosts(make([]availability.Host, 0, len(p.Replicas)), p)
}

// appendHosts appends the partition's replica hosts to dst.
func (c *Cloud) appendHosts(dst []availability.Host, p *ring.Partition) []availability.Host {
	for _, id := range p.Replicas {
		s := c.server(id)
		dst = append(dst, availability.Host{ID: id, Loc: s.Location(), Conf: s.Confidence()})
	}
	return dst
}

// refreshG recomputes the app's normalized geographic preference for
// every alive server: Eq. 4's raw g, divided by the maximum over the
// alive cloud, so the best-placed server weighs 1 and distance discounts
// from there. The uniform distribution of the paper's evaluation yields 1
// everywhere (Section III-A: "g_j is 1 for any server j").
func (c *Cloud) refreshG(st *appState) {
	if st.gcache == nil {
		st.gcache = make(map[ring.ServerID]float64, len(c.servers))
	} else {
		clear(st.gcache)
	}
	var max float64
	for _, s := range c.servers {
		if !s.Alive() {
			continue
		}
		g := st.spec.Clients.G(s.Location())
		st.gcache[s.ID()] = g
		if g > max {
			max = g
		}
	}
	if max > 0 {
		for id := range st.gcache {
			st.gcache[id] /= max
		}
	}
}

// gOf returns the cached normalized preference of a server.
func (st *appState) gOf(id ring.ServerID) float64 { return st.gcache[id] }

// baseCandidates lists every alive server with its announced rent and the
// app's geographic preference, computed once per epoch per app; per-vnode
// filtering (hosting, storage, bandwidth) happens in candidatesFor.
func (c *Cloud) baseCandidates(st *appState) []availability.Candidate {
	cands := make([]availability.Candidate, 0, len(c.servers))
	for _, s := range c.servers {
		if !s.Alive() {
			continue
		}
		rent, ok := c.board.Rent(s.ID())
		if !ok {
			continue
		}
		cands = append(cands, availability.Candidate{
			Host: availability.Host{ID: s.ID(), Loc: s.Location(), Conf: s.Confidence()},
			Rent: rent,
			G:    st.gOf(s.ID()),
		})
	}
	return cands
}

// candidatesFor filters the epoch's base candidates down to the servers
// able to receive a replica of the partition right now: not already
// hosting it, with storage room and remaining replication bandwidth. The
// bandwidth filter spreads simultaneous placement decisions over the
// cloud instead of letting every partition target the one cheapest server.
// The result is appended into scratch, which is returned re-sliced.
func (c *Cloud) candidatesFor(base []availability.Candidate, p *ring.Partition, size int64, scratch []availability.Candidate) []availability.Candidate {
	scratch = scratch[:0]
	for _, cand := range base {
		s := c.server(cand.ID)
		if p.HasReplica(cand.ID) || !s.CanHost(size) || s.ReplBudget() < size {
			continue
		}
		scratch = append(scratch, cand)
	}
	return scratch
}

// announceRents publishes every alive server's virtual rent for the next
// epoch (Eq. 1), computed from the current epoch's storage usage and query
// load, and drops failed servers from the board.
func (c *Cloud) announceRents() {
	for _, s := range c.servers {
		if !s.Alive() {
			c.board.Forget(s.ID())
			continue
		}
		up := c.cfg.Rent.UsagePrice(s.MonthlyRent())
		c.board.Announce(s.ID(), c.cfg.Rent.Rent(up, s.StorageUsage(), s.QueryLoad()))
	}
}
