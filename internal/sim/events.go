package sim

import (
	"fmt"

	"skute/internal/ring"
	"skute/internal/server"
	"skute/internal/topology"
)

// applyEvents executes the cloud events scheduled for the current epoch.
func (c *Cloud) applyEvents() {
	for _, e := range c.cfg.Events {
		if e.Epoch != c.epoch {
			continue
		}
		switch e.Kind {
		case AddServers:
			for i := 0; i < e.Count; i++ {
				c.addServer()
			}
		case FailServers:
			c.failServers(e.Count)
		case FailZone:
			c.failZone(e.Zone)
		}
	}
}

// addServer racks a brand-new server into a random existing rack (a
// resource upgrade, Section III-C), assigns its price class with the
// configured probability and announces its idle rent so that agents can
// immediately consider it.
func (c *Cloud) addServer() {
	// Borrow the rack path of a random existing server.
	donor := c.servers[c.rng.Intn(len(c.servers))]
	loc := donor.Location()
	id := ring.ServerID(len(c.servers))
	newLoc := loc.WithLevel(topology.Server, loc.At(topology.Rack)+"/"+fmt.Sprintf("srv-up%d", c.addSeq))
	c.addSeq++

	rent := c.cfg.CheapRent
	if c.rng.Float64() < c.cfg.ExpensiveFraction {
		rent = c.cfg.ExpensiveRent
	}
	srv, err := server.New(id, newLoc, donor.Confidence(), rent, c.cfg.Capacities)
	if err != nil {
		panic(err) // capacities were validated at construction
	}
	c.servers = append(c.servers, srv)
	up := c.cfg.Rent.UsagePrice(srv.MonthlyRent())
	c.board.Announce(id, c.cfg.Rent.Rent(up, 0, 0))
}

// failServers takes count random alive servers down. All replicas they
// hosted vanish; partitions that lose their last replica are counted as
// lost (the situation the availability SLAs exist to prevent).
func (c *Cloud) failServers(count int) {
	alive := make([]*server.Server, 0, len(c.servers))
	for _, s := range c.servers {
		if s.Alive() {
			alive = append(alive, s)
		}
	}
	if count > len(alive) {
		count = len(alive)
	}
	perm := c.rng.Perm(len(alive))
	for i := 0; i < count; i++ {
		c.failOne(alive[perm[i]])
	}
}

// failOne takes a single server down and strips its replicas.
func (c *Cloud) failOne(s *server.Server) {
	s.Fail()
	c.board.Forget(s.ID())
	for _, st := range c.apps {
		for _, p := range st.ring.Partitions() {
			if p.RemoveReplica(s.ID()) {
				delete(st.vnodes, vkey{p.ID, s.ID()})
				if len(p.Replicas) == 0 {
					c.lostPartitions++
				}
			}
		}
	}
}

// failZone picks a random alive server and fails every alive server that
// shares its location label at the given level — e.g. FailZone(Rack)
// models the "rack failure: 40-80 machines instantly go down" scenario of
// the paper's introduction.
func (c *Cloud) failZone(level topology.Level) {
	var alive []*server.Server
	for _, s := range c.servers {
		if s.Alive() {
			alive = append(alive, s)
		}
	}
	if len(alive) == 0 {
		return
	}
	anchor := alive[c.rng.Intn(len(alive))]
	for _, s := range alive {
		if topology.SameAt(s.Location(), anchor.Location(), level) {
			c.failOne(s)
		}
	}
}
