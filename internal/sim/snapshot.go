package sim

import (
	"skute/internal/availability"
	"skute/internal/metrics"
	"skute/internal/parallel"
	"skute/internal/ring"
	"skute/internal/topology"
)

// VNodeCounts reports how many virtual nodes each alive server hosts,
// split by price class — the quantity behind Fig. 2 ("number of virtual
// nodes per server").
type VNodeCounts struct {
	PerServer map[ring.ServerID]int
	Cheap     metrics.Summary // summary over cheap (100$) servers
	Expensive metrics.Summary // summary over expensive (125$) servers
}

// VNodeCounts computes the current per-server virtual-node census.
func (c *Cloud) VNodeCounts() VNodeCounts {
	per := make(map[ring.ServerID]int)
	for _, st := range c.apps {
		for k := range st.vnodes {
			per[k.srv]++
		}
	}
	var cheap, exp []float64
	for _, s := range c.servers {
		if !s.Alive() {
			continue
		}
		n := float64(per[s.ID()])
		if s.MonthlyRent() > c.cfg.CheapRent {
			exp = append(exp, n)
		} else {
			cheap = append(cheap, n)
		}
	}
	return VNodeCounts{
		PerServer: per,
		Cheap:     metrics.Summarize(cheap),
		Expensive: metrics.Summarize(exp),
	}
}

// VNodesPerRing returns the total virtual nodes of each ring in the order
// of Config.Apps — Fig. 3's series.
func (c *Cloud) VNodesPerRing() []int {
	out := make([]int, len(c.apps))
	for i, st := range c.apps {
		out[i] = len(st.vnodes)
	}
	return out
}

// RingLoadStats summarizes the per-server query load of one ring in the
// current epoch — Fig. 4's series ("average query load per virtual ring
// per server"). Servers with zero traffic of the ring are included so the
// average reflects the whole alive cloud.
func (c *Cloud) RingLoadStats() []metrics.Summary {
	out := make([]metrics.Summary, len(c.apps))
	for i, st := range c.apps {
		var loads []float64
		for _, s := range c.servers {
			if s.Alive() {
				loads = append(loads, st.serverLoad[s.ID()])
			}
		}
		out[i] = metrics.Summarize(loads)
	}
	return out
}

// StorageStats aggregates cloud storage — Fig. 5's series.
type StorageStats struct {
	UsedBytes      int64
	CapacityBytes  int64
	UsedFraction   float64
	InsertAttempts int64
	InsertFailures int64
	// PerServerUsage summarizes the per-alive-server usage fractions;
	// its CV is the storage balance metric.
	PerServerUsage metrics.Summary
}

// StorageStats computes the current storage aggregate over alive servers.
func (c *Cloud) StorageStats() StorageStats {
	var st StorageStats
	var fracs []float64
	for _, s := range c.servers {
		if !s.Alive() {
			continue
		}
		st.UsedBytes += s.UsedStorage()
		st.CapacityBytes += s.Capacities().Storage
		fracs = append(fracs, s.StorageUsage())
	}
	if st.CapacityBytes > 0 {
		st.UsedFraction = float64(st.UsedBytes) / float64(st.CapacityBytes)
	}
	st.InsertAttempts = c.insertAttempts
	st.InsertFailures = c.insertFailures
	st.PerServerUsage = metrics.Summarize(fracs)
	return st
}

// AvailabilityStats reports SLA compliance for one ring: how many
// partitions currently satisfy their availability threshold.
type AvailabilityStats struct {
	Partitions int
	Violations int
	MinAvail   float64
	Threshold  float64
}

// AvailabilityStats evaluates Eq. 2 for every partition of every ring, in
// the order of Config.Apps. Eq. 2 is quadratic in the replica count and
// runs over every partition (hundreds at paper scale), so the per-
// partition evaluations — pure reads of the replica table — are spread
// over a worker pool; the reduction stays sequential and deterministic.
func (c *Cloud) AvailabilityStats() []AvailabilityStats {
	out := make([]AvailabilityStats, len(c.apps))
	for i, st := range c.apps {
		a := AvailabilityStats{Threshold: st.threshold, MinAvail: -1}
		parts := st.ring.Partitions()
		avs := make([]float64, len(parts))
		parallel.ForEach(len(parts), 0, func(j int) {
			avs[j] = availability.Of(c.hostsOf(parts[j]))
		})
		for _, av := range avs {
			a.Partitions++
			if av < st.threshold {
				a.Violations++
			}
			if a.MinAvail < 0 || av < a.MinAvail {
				a.MinAvail = av
			}
		}
		out[i] = a
	}
	return out
}

// Ops reports the cumulative structural operations the economy performed.
type Ops struct {
	Replications   int64
	Migrations     int64
	Suicides       int64
	LostPartitions int64
}

// Ops returns the cumulative operation counters.
func (c *Cloud) Ops() Ops {
	return Ops{
		Replications:   c.replications,
		Migrations:     c.migrations,
		Suicides:       c.suicides,
		LostPartitions: c.lostPartitions,
	}
}

// ReplicaContinents counts, per application (in Config.Apps order), how
// many partition replicas sit on each continent — the geographic
// placement metric of the "geo" experiment.
func (c *Cloud) ReplicaContinents() []map[string]int {
	out := make([]map[string]int, len(c.apps))
	for ai, st := range c.apps {
		counts := make(map[string]int)
		for k := range st.vnodes {
			counts[c.server(k.srv).Location().At(topology.Continent)]++
		}
		out[ai] = counts
	}
	return out
}

// MonthlyCost returns the data owner's current real monthly bill: the sum
// of the monthly rents of every server hosting at least one replica —
// the quantity the economy minimizes subject to the SLAs.
func (c *Cloud) MonthlyCost() float64 {
	hosting := make(map[ring.ServerID]bool)
	for _, st := range c.apps {
		for k := range st.vnodes {
			hosting[k.srv] = true
		}
	}
	var cost float64
	for id := range hosting {
		cost += c.server(id).MonthlyRent()
	}
	return cost
}

// AliveServers counts the servers currently up.
func (c *Cloud) AliveServers() int {
	n := 0
	for _, s := range c.servers {
		if s.Alive() {
			n++
		}
	}
	return n
}
