// Package sim is the discrete-epoch simulator of the paper's evaluation
// (Section III): a cloud of geographically distributed servers, several
// applications with differentiated availability SLAs, Pareto/Poisson query
// workloads, and the per-epoch virtual-node decision loop. All experiments
// of the paper (Figs. 2-5) run on this simulator through the drivers in
// internal/experiments.
package sim

import (
	"fmt"

	"skute/internal/agent"
	"skute/internal/economy"
	"skute/internal/ring"
	"skute/internal/server"
	"skute/internal/topology"
	"skute/internal/workload"
)

// AppSpec describes one application (data owner) renting the cloud: its
// availability class and the workload its data attracts.
type AppSpec struct {
	Name string
	// Class names the availability level (one virtual ring per class).
	Class string
	// TargetReplicas sizes the availability threshold: the SLA is
	// satisfied by this many geographically well-spread replicas
	// (2, 3 and 4 for the paper's three applications).
	TargetReplicas int
	// Partitions is the initial number of data partitions (200 in the
	// paper).
	Partitions int
	// PartitionSize is the initial bytes per partition.
	PartitionSize int64
	// LoadShare is the fraction of the global query load attracted by
	// this application (4/7, 2/7, 1/7 in the Slashdot experiment).
	LoadShare float64
	// Popularity draws the per-partition query weights.
	Popularity workload.Pareto
	// PopClamp truncates popularity draws at PopClamp*scale (0 = none).
	PopClamp float64
	// Clients is the geographic distribution of this application's query
	// clients; nil means the paper's uniform assumption (g = 1).
	Clients workload.ClientDist
}

// RingID returns the virtual ring identity of the application.
func (a AppSpec) RingID() ring.RingID { return ring.RingID{App: a.Name, Class: a.Class} }

// EventKind distinguishes the cloud events of Section III-C.
type EventKind int

// Event kinds.
const (
	AddServers  EventKind = iota // resource upgrade: new servers join
	FailServers                  // correlated failure: random servers vanish
	FailZone                     // correlated failure: one whole zone goes down
)

// Event is a scheduled change of the cloud at the start of an epoch.
// FailZone ignores Count and fails every server sharing the Zone level
// (e.g. a rack or a datacenter) of a randomly chosen alive server — the
// PDU/rack failure scenario of the paper's introduction.
type Event struct {
	Epoch int
	Kind  EventKind
	Count int
	Zone  topology.Level
}

// PolicyKind selects the replica-management policy; the non-economic ones
// exist as baselines for the ablation experiments.
type PolicyKind int

// Policies.
const (
	// Economic is Skute's virtual economy (Section II).
	Economic PolicyKind = iota
	// RandomPlacement keeps TargetReplicas copies per partition, placing
	// each on a random capable server; no migration, no economics.
	RandomPlacement
	// CountOnly keeps TargetReplicas copies per partition on the cheapest
	// capable servers, ignoring geographic diversity.
	CountOnly
)

// Config assembles a full simulation.
type Config struct {
	Seed int64

	Topology   topology.Spec
	Capacities server.Capacities

	Rent  economy.RentParams
	Agent agent.Params

	// CheapRent/ExpensiveRent are the two real monthly price classes
	// (100$ and 125$ in the paper); ExpensiveFraction of the servers get
	// the expensive one (0.3 in the paper).
	CheapRent         float64
	ExpensiveRent     float64
	ExpensiveFraction float64

	Apps    []AppSpec
	Profile workload.Profile

	// Inserts, when PerEpoch > 0, runs the storage-saturation workload of
	// Section III-E.
	Inserts workload.InsertStream

	// MaxPartitionSize splits a partition in two when its data exceeds it
	// (256 MB in the paper).
	MaxPartitionSize int64

	// ConsistencyCost is the extra per-epoch cost of keeping one more
	// replica consistent, charged against profit-driven replication.
	ConsistencyCost float64

	// Policy selects the replica-management policy (default Economic).
	Policy PolicyKind

	Events []Event
}

// PaperConfig returns the evaluation setup of Section III-A: 200 servers
// over 10 countries, 3 applications with availability levels satisfied by
// 2, 3 and 4 replicas, 200 partitions each, Pareto(1,50) popularity,
// Poisson(3000) queries/epoch, uniform clients, 70%/30% price classes.
// The load shares default to the Slashdot experiment's 4/7, 2/7, 1/7.
func PaperConfig() Config {
	apps := make([]AppSpec, 3)
	shares := []float64{4.0 / 7, 2.0 / 7, 1.0 / 7}
	for i := range apps {
		apps[i] = AppSpec{
			Name:           fmt.Sprintf("app%d", i+1),
			Class:          fmt.Sprintf("ring%d", i),
			TargetReplicas: i + 2,
			Partitions:     200,
			PartitionSize:  80 << 20, // fits both bandwidth budgets (300/100 MB per epoch)
			LoadShare:      shares[i],
			Popularity:     workload.PaperPopularity(),
			PopClamp:       1000,
			Clients:        workload.UniformClients{},
		}
	}
	return Config{
		Seed:              1,
		Topology:          topology.PaperSpec(),
		Capacities:        server.PaperCapacities(),
		Rent:              economy.DefaultRentParams(),
		Agent:             agent.DefaultParams(),
		CheapRent:         100,
		ExpensiveRent:     125,
		ExpensiveFraction: 0.3,
		Apps:              apps,
		Profile:           workload.Constant(3000),
		MaxPartitionSize:  256 << 20,
		ConsistencyCost:   0.5,
	}
}

// Validate rejects configurations the simulator cannot run.
func (c Config) Validate() error {
	if err := c.Topology.Validate(); err != nil {
		return err
	}
	if err := c.Capacities.Validate(); err != nil {
		return err
	}
	if err := c.Rent.Validate(); err != nil {
		return err
	}
	if err := c.Agent.Validate(); err != nil {
		return err
	}
	if c.CheapRent <= 0 || c.ExpensiveRent <= 0 {
		return fmt.Errorf("sim: rents must be positive (%v, %v)", c.CheapRent, c.ExpensiveRent)
	}
	if c.ExpensiveFraction < 0 || c.ExpensiveFraction > 1 {
		return fmt.Errorf("sim: expensive fraction %v outside [0,1]", c.ExpensiveFraction)
	}
	if len(c.Apps) == 0 {
		return fmt.Errorf("sim: need at least one application")
	}
	for i, a := range c.Apps {
		if a.Name == "" || a.Class == "" {
			return fmt.Errorf("sim: app %d needs a name and a class", i)
		}
		if a.TargetReplicas < 1 {
			return fmt.Errorf("sim: app %q target replicas %d < 1", a.Name, a.TargetReplicas)
		}
		if a.Partitions < 1 {
			return fmt.Errorf("sim: app %q needs at least one partition", a.Name)
		}
		if a.PartitionSize <= 0 {
			return fmt.Errorf("sim: app %q partition size must be positive", a.Name)
		}
		if a.LoadShare < 0 {
			return fmt.Errorf("sim: app %q negative load share", a.Name)
		}
		if err := a.Popularity.Validate(); err != nil {
			return err
		}
	}
	if c.Profile == nil {
		return fmt.Errorf("sim: nil query profile")
	}
	if c.MaxPartitionSize <= 0 {
		return fmt.Errorf("sim: max partition size must be positive")
	}
	if c.ConsistencyCost < 0 {
		return fmt.Errorf("sim: negative consistency cost")
	}
	for _, e := range c.Events {
		if e.Epoch < 0 || e.Count < 0 {
			return fmt.Errorf("sim: malformed event %+v", e)
		}
	}
	return nil
}
