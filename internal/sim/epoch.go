package sim

import (
	"sort"

	"skute/internal/agent"
	"skute/internal/availability"
	"skute/internal/ring"
	"skute/internal/workload"
)

// Step advances the simulation by one epoch:
//
//  1. scheduled cloud events (server upgrades/failures) take effect;
//  2. per-epoch bandwidth budgets and query counters reset;
//  3. the query workload of the epoch arrives and is routed to replicas;
//  4. the insert workload (if any) arrives; partitions over the size cap
//     split;
//  5. every virtual node runs the Section II-C decision process, in a
//     seeded random order, and its decision executes immediately subject
//     to the bandwidth and storage budgets ("all transfers complete
//     within the epoch", Section III-A);
//  6. every server announces its virtual rent for the next epoch (Eq. 1).
func (c *Cloud) Step() {
	c.applyEvents()

	for _, s := range c.servers {
		s.BeginEpoch()
	}
	for _, st := range c.apps {
		clear(st.queries)
		clear(st.serverLoad)
		c.refreshG(st)
	}

	c.routeQueries()
	c.runInserts()
	c.runDecisions()
	c.announceRents()
	c.epoch++
}

// Run advances n epochs, invoking hook (when non-nil) after each one.
func (c *Cloud) Run(n int, hook func(*Cloud)) {
	for i := 0; i < n; i++ {
		c.Step()
		if hook != nil {
			hook(c)
		}
	}
}

// vnodeQueries returns the per-replica query share of the epoch, keyed by
// vnode.
type vnodeQueries map[vkey]float64

// routeQueries draws the epoch's query load (profile rate x app share,
// split over partitions by popularity, Poisson noise per partition) and
// routes each partition's queries to its replicas proportionally to the
// replicas' geographic preference (uniform clients = even split).
func (c *Cloud) routeQueries() {
	rate := c.cfg.Profile.Rate(c.epoch)
	var gs []float64
	for _, st := range c.apps {
		if st.vqueries == nil {
			st.vqueries = make(vnodeQueries, len(st.vnodes))
		} else {
			clear(st.vqueries)
		}
		appRate := rate * st.spec.LoadShare
		if appRate <= 0 {
			continue
		}
		var wsum float64
		for _, w := range st.popularity {
			wsum += w
		}
		if wsum <= 0 {
			continue
		}
		for _, p := range st.ring.Partitions() {
			q := workload.Poisson(c.rng, appRate*st.popularity[p.ID]/wsum)
			if q == 0 || len(p.Replicas) == 0 {
				continue
			}
			st.queries[p.ID] = q
			// Route proportionally to each replica's geographic
			// preference.
			if cap(gs) < len(p.Replicas) {
				gs = make([]float64, len(p.Replicas))
			} else {
				gs = gs[:len(p.Replicas)]
			}
			var gsum float64
			for i, id := range p.Replicas {
				gs[i] = st.gOf(id)
				gsum += gs[i]
			}
			for i, id := range p.Replicas {
				share := float64(q) / float64(len(p.Replicas))
				if gsum > 0 {
					share = float64(q) * gs[i] / gsum
				}
				c.server(id).AddQueries(share)
				st.serverLoad[id] += share
				st.vqueries[vkey{p.ID, id}] += share
			}
		}
	}
}

// runInserts executes the storage-saturation workload: each insert picks
// an application proportionally to load share and a partition
// proportionally to popularity, then must land on every replica of the
// partition; if any replica's server is full the insert fails (Fig. 5
// counts these). Partitions exceeding the size cap split afterwards.
func (c *Cloud) runInserts() {
	if c.cfg.Inserts.PerEpoch <= 0 {
		return
	}
	appCum := make([]float64, len(c.apps))
	var total float64
	for i, st := range c.apps {
		total += st.spec.LoadShare
		appCum[i] = total
	}
	// Per-app cumulative popularity over live partitions, in sorted
	// partition-id order for determinism.
	type pcum struct {
		ids []int
		cum []float64
	}
	cums := make([]pcum, len(c.apps))
	for i, st := range c.apps {
		ids := make([]int, 0, len(st.popularity))
		for id := range st.popularity {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		cum := make([]float64, len(ids))
		var s float64
		for j, id := range ids {
			s += st.popularity[id]
			cum[j] = s
		}
		cums[i] = pcum{ids: ids, cum: cum}
	}

	size := c.cfg.Inserts.ValueSize
	for n := 0; n < c.cfg.Inserts.PerEpoch; n++ {
		c.insertAttempts++
		ai := 0
		if total > 0 {
			x := c.rng.Float64() * total
			ai = sort.SearchFloat64s(appCum, x)
			if ai == len(appCum) {
				ai = len(appCum) - 1
			}
		}
		st := c.apps[ai]
		pc := cums[ai]
		if len(pc.ids) == 0 || pc.cum[len(pc.cum)-1] <= 0 {
			c.insertFailures++
			continue
		}
		x := c.rng.Float64() * pc.cum[len(pc.cum)-1]
		pi := sort.SearchFloat64s(pc.cum, x)
		if pi == len(pc.ids) {
			pi = len(pc.ids) - 1
		}
		p := st.ring.Get(pc.ids[pi])
		if p == nil || len(p.Replicas) == 0 {
			c.insertFailures++
			continue
		}
		// The insert must fit on every replica.
		ok := true
		for _, id := range p.Replicas {
			if !c.server(id).CanHost(size) {
				ok = false
				break
			}
		}
		if !ok {
			c.insertFailures++
			continue
		}
		for _, id := range p.Replicas {
			if err := c.server(id).Store(size); err != nil {
				// CanHost was checked; a failure here is a bug.
				panic(err)
			}
			if v := st.vnodes[vkey{p.ID, id}]; v != nil {
				v.Size += size
			}
		}
		st.sizes[p.ID] += size
	}

	c.splitOversized()
}

// splitOversized splits every partition whose data exceeds the cap,
// halving size and popularity into the two children, and repeats until no
// partition is oversized: a partition that absorbed several times the cap
// within one epoch must end the epoch fully divided, otherwise it can
// outgrow the migration bandwidth budget and become unmovable. The
// children stay on the same servers (total stored bytes are unchanged),
// each child getting its own fresh virtual-node agents.
func (c *Cloud) splitOversized() {
	for _, st := range c.apps {
		for {
			// Collect first: splitting mutates the ring's partition list.
			var oversized []*ring.Partition
			for _, p := range st.ring.Partitions() {
				if st.sizes[p.ID] > c.cfg.MaxPartitionSize {
					oversized = append(oversized, p)
				}
			}
			if len(oversized) == 0 {
				break
			}
			progressed := c.splitBatch(st, oversized)
			if !progressed {
				break // only unsplittable hash ranges remain
			}
		}
	}
}

// splitBatch splits each partition once; it reports whether any split
// succeeded.
func (c *Cloud) splitBatch(st *appState, oversized []*ring.Partition) bool {
	progressed := false
	{
		for _, p := range oversized {
			np, err := st.ring.Split(p)
			if err != nil {
				continue // unsplittable hash range; keep the fat partition
			}
			progressed = true
			half := st.sizes[p.ID] / 2
			st.sizes[np.ID] = half
			st.sizes[p.ID] -= half
			w := st.popularity[p.ID] / 2
			st.popularity[np.ID] = w
			st.popularity[p.ID] = w
			for _, id := range p.Replicas {
				old := st.vnodes[vkey{p.ID, id}]
				if old != nil {
					old.Size = st.sizes[p.ID]
				}
				st.vnodes[vkey{np.ID, id}] = &agent.VNode{
					Ring: st.spec.RingID(), Partition: np.ID, Server: id, Size: half,
				}
			}
		}
	}
	return progressed
}

// decisionRef orders the epoch's decision queue.
type decisionRef struct {
	app int
	key vkey
}

// runDecisions runs Section II-C for every virtual node in a seeded random
// order. Decisions execute immediately and sequentially, so later agents
// observe the effects of earlier ones — the paper's uncoordinated agents
// observing board and ring metadata — which prevents, e.g., every replica
// of an under-replicated partition replicating in the same epoch.
func (c *Cloud) runDecisions() {
	queue := c.queueScratch[:0]
	for ai, st := range c.apps {
		for k := range st.vnodes {
			queue = append(queue, decisionRef{ai, k})
		}
	}
	c.queueScratch = queue
	sort.Slice(queue, func(i, j int) bool {
		if queue[i].app != queue[j].app {
			return queue[i].app < queue[j].app
		}
		if queue[i].key.part != queue[j].key.part {
			return queue[i].key.part < queue[j].key.part
		}
		return queue[i].key.srv < queue[j].key.srv
	})
	c.rng.Shuffle(len(queue), func(i, j int) { queue[i], queue[j] = queue[j], queue[i] })

	minRent := c.board.MinRent()
	bases := make([][]availability.Candidate, len(c.apps))
	for ai, st := range c.apps {
		bases[ai] = c.baseCandidates(st)
	}
	scratch := make([]availability.Candidate, 0, len(c.servers))
	hostScratch := make([]availability.Host, 0, 8)
	for _, ref := range queue {
		st := c.apps[ref.app]
		v, ok := st.vnodes[ref.key]
		if !ok || v.Server != ref.key.srv {
			continue // removed or migrated earlier this epoch
		}
		p := st.ring.Get(v.Partition)
		if p == nil || !p.HasReplica(v.Server) {
			continue
		}
		self := c.server(v.Server)
		rent, _ := c.board.Rent(v.Server)
		hostScratch = c.appendHosts(hostScratch[:0], p)
		in := agent.Inputs{
			Threshold:       st.threshold,
			Hosts:           hostScratch,
			Candidates:      c.candidatesFor(bases[ref.app], p, v.Size, scratch),
			Queries:         st.vqueries[ref.key],
			StoragePressure: self.StorageUsage(),
			G:               st.gOf(v.Server),
			Rent:            rent,
			MinRent:         minRent,
			ConsistencyCost: c.cfg.ConsistencyCost * float64(len(p.Replicas)),
		}
		var d agent.Decision
		switch c.cfg.Policy {
		case RandomPlacement:
			d = c.randomPlacementDecision(st, p, in)
		case CountOnly:
			d = c.countOnlyDecision(st, p, in)
		default:
			d = v.Decide(c.cfg.Agent, in)
		}
		c.execute(st, p, v, d, in)
	}
}

// retargetMigration re-applies the agent's migration rule (strictly
// cheaper, availability preserved) restricted to servers that can still
// accept the transfer this epoch, reserving the budget on success.
func (c *Cloud) retargetMigration(v *agent.VNode, in agent.Inputs) (ring.ServerID, bool) {
	others := make([]availability.Host, 0, len(in.Hosts))
	for _, h := range in.Hosts {
		if h.ID != v.Server {
			others = append(others, h)
		}
	}
	feasible := make([]availability.Candidate, 0, len(in.Candidates))
	for _, cand := range in.Candidates {
		s := c.server(cand.ID)
		if cand.Rent < in.Rent && s.CanHost(v.Size) && s.MigrBudget() >= v.Size &&
			availability.With(others, cand.Host) >= in.Threshold {
			feasible = append(feasible, cand)
		}
	}
	best, ok := availability.Best(others, feasible)
	if !ok {
		return 0, false
	}
	if !c.server(best.ID).ReserveMigration(v.Size) {
		return 0, false
	}
	return best.ID, true
}

// randomPlacementDecision is the ablation baseline that keeps
// TargetReplicas copies per partition on uniformly random capable servers
// and never migrates or deletes.
func (c *Cloud) randomPlacementDecision(st *appState, p *ring.Partition, in agent.Inputs) agent.Decision {
	if len(p.Replicas) >= st.spec.TargetReplicas || len(in.Candidates) == 0 {
		return agent.Decision{Action: agent.Hold}
	}
	pick := in.Candidates[c.rng.Intn(len(in.Candidates))]
	return agent.Decision{Action: agent.Replicate, Target: pick.ID}
}

// countOnlyDecision is the ablation baseline that keeps TargetReplicas
// copies per partition on the cheapest capable servers, ignoring
// geographic diversity entirely.
func (c *Cloud) countOnlyDecision(st *appState, p *ring.Partition, in agent.Inputs) agent.Decision {
	if len(p.Replicas) >= st.spec.TargetReplicas || len(in.Candidates) == 0 {
		return agent.Decision{Action: agent.Hold}
	}
	best := in.Candidates[0]
	for _, cand := range in.Candidates[1:] {
		if cand.Rent < best.Rent || (cand.Rent == best.Rent && cand.ID < best.ID) {
			best = cand
		}
	}
	return agent.Decision{Action: agent.Replicate, Target: best.ID}
}

// execute applies one decision, enforcing the per-epoch bandwidth budgets
// and storage capacities; decisions that do not fit are dropped (the agent
// retries next epoch). A migration whose target has exhausted its
// migration budget is retargeted to the best remaining feasible candidate
// (Eq. 3 over budget-holding servers): with ticked prices many candidates
// score identically, and without retargeting every evicting node of a
// filling server herds onto one destination that can absorb only a single
// transfer per epoch.
func (c *Cloud) execute(st *appState, p *ring.Partition, v *agent.VNode, d agent.Decision, in agent.Inputs) {
	switch d.Action {
	case agent.Replicate:
		t := c.server(d.Target)
		if !t.CanHost(v.Size) || !t.ReserveReplication(v.Size) {
			return
		}
		if err := t.Store(v.Size); err != nil {
			return
		}
		p.AddReplica(d.Target)
		st.vnodes[vkey{p.ID, d.Target}] = &agent.VNode{
			Ring: st.spec.RingID(), Partition: p.ID, Server: d.Target, Size: v.Size,
		}
		v.Ledger.Reset()
		c.replications++

	case agent.Migrate:
		t := c.server(d.Target)
		if !t.CanHost(v.Size) || !t.ReserveMigration(v.Size) {
			target, ok := c.retargetMigration(v, in)
			if !ok {
				return
			}
			d.Target = target
			t = c.server(d.Target)
		}
		if err := t.Store(v.Size); err != nil {
			return
		}
		c.server(v.Server).Release(v.Size)
		p.ReplaceReplica(v.Server, d.Target)
		delete(st.vnodes, vkey{p.ID, v.Server})
		v.Server = d.Target
		st.vnodes[vkey{p.ID, d.Target}] = v
		v.Ledger.Reset()
		c.migrations++

	case agent.Suicide:
		if len(p.Replicas) <= 1 {
			return // never delete the last copy
		}
		c.server(v.Server).Release(v.Size)
		p.RemoveReplica(v.Server)
		delete(st.vnodes, vkey{p.ID, v.Server})
		c.suicides++

	case agent.Hold:
	}
}
