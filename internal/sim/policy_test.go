package sim

import (
	"testing"

	"skute/internal/topology"
)

func TestRandomPlacementPolicyKeepsCounts(t *testing.T) {
	cfg := smallConfig()
	cfg.Policy = RandomPlacement
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Run(30, nil)
	for ai, st := range c.apps {
		target := st.spec.TargetReplicas
		for _, p := range st.ring.Partitions() {
			if len(p.Replicas) != target {
				t.Errorf("app %d partition %d: %d replicas, want exactly %d", ai, p.ID, len(p.Replicas), target)
			}
		}
	}
	// Random placement never migrates or suicides.
	ops := c.Ops()
	if ops.Migrations != 0 || ops.Suicides != 0 {
		t.Errorf("random placement performed %d migrations / %d suicides", ops.Migrations, ops.Suicides)
	}
	assertStorageConsistent(t, c)
}

func TestCountOnlyPolicyIgnoresDiversity(t *testing.T) {
	cfg := smallConfig()
	cfg.Policy = CountOnly
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Run(30, nil)
	// Counts are met...
	for ai, st := range c.apps {
		for _, p := range st.ring.Partitions() {
			if len(p.Replicas) != st.spec.TargetReplicas {
				t.Errorf("app %d partition %d: %d replicas", ai, p.ID, len(p.Replicas))
			}
		}
	}
	// ...but cheapest-first placement co-locates replicas, so at least
	// some partitions must violate the diversity threshold (with 20
	// servers and cheap ones clustered, co-location is guaranteed for
	// the 3-replica ring).
	viol := 0
	for _, a := range c.AvailabilityStats() {
		viol += a.Violations
	}
	if viol == 0 {
		t.Error("count-only placement satisfied every diversity threshold; ablation has no teeth")
	}
}

func TestFailZoneTakesDownWholeRack(t *testing.T) {
	cfg := smallConfig()
	cfg.Events = []Event{{Epoch: 10, Kind: FailZone, Zone: topology.Rack}}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Run(11, nil)
	// smallConfig has 2 servers per rack: exactly one rack (2 servers)
	// must be down.
	if got := c.AliveServers(); got != 18 {
		t.Errorf("alive after rack failure = %d, want 18", got)
	}
	// The two dead servers share a rack.
	var downLocs []string
	for _, s := range c.Servers() {
		if !s.Alive() {
			downLocs = append(downLocs, s.Location().At(topology.Rack))
		}
	}
	if len(downLocs) != 2 || downLocs[0] != downLocs[1] {
		t.Errorf("dead servers not rack-correlated: %v", downLocs)
	}
}

func TestFailZoneDatacenterRecovery(t *testing.T) {
	cfg := smallConfig()
	cfg.Events = []Event{{Epoch: 20, Kind: FailZone, Zone: topology.Datacenter}}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Run(60, nil)
	// Diversity-aware placement never co-locates a whole partition in one
	// datacenter, so a DC failure must lose nothing and recover fully.
	if lost := c.Ops().LostPartitions; lost != 0 {
		t.Errorf("datacenter failure lost %d partitions despite diversity placement", lost)
	}
	for i, a := range c.AvailabilityStats() {
		if a.Violations != 0 {
			t.Errorf("ring %d: %d violations after DC failure recovery", i, a.Violations)
		}
	}
}
