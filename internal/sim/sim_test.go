package sim

import (
	"testing"

	"skute/internal/agent"
	"skute/internal/economy"
	"skute/internal/server"
	"skute/internal/topology"
	"skute/internal/workload"
)

// smallConfig is a scaled-down paper cloud that converges in a few dozen
// epochs: 20 servers over 5 continents, 2 apps with SLAs of 2 and 3
// replicas, 16 partitions each.
func smallConfig() Config {
	apps := []AppSpec{
		{
			Name: "app1", Class: "gold", TargetReplicas: 2, Partitions: 16,
			PartitionSize: 1 << 20, LoadShare: 2.0 / 3,
			Popularity: workload.PaperPopularity(), PopClamp: 1000,
			Clients: workload.UniformClients{},
		},
		{
			Name: "app2", Class: "platinum", TargetReplicas: 3, Partitions: 16,
			PartitionSize: 1 << 20, LoadShare: 1.0 / 3,
			Popularity: workload.PaperPopularity(), PopClamp: 1000,
			Clients: workload.UniformClients{},
		},
	}
	return Config{
		Seed: 42,
		Topology: topology.Spec{
			Continents: 5, CountriesPerCont: 1, DCsPerCountry: 1,
			RoomsPerDC: 1, RacksPerRoom: 2, ServersPerRack: 2,
		},
		Capacities: server.Capacities{
			Storage:       64 << 20,
			ReplBandwidth: 8 << 20,
			MigrBandwidth: 4 << 20,
			QueryCapacity: 200,
		},
		Rent:              economy.DefaultRentParams(),
		Agent:             agent.DefaultParams(),
		CheapRent:         100,
		ExpensiveRent:     125,
		ExpensiveFraction: 0.3,
		Apps:              apps,
		Profile:           workload.Constant(300),
		MaxPartitionSize:  4 << 20,
		ConsistencyCost:   0.25,
	}
}

func TestConfigValidate(t *testing.T) {
	good := smallConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("small config invalid: %v", err)
	}
	if err := PaperConfig().Validate(); err != nil {
		t.Fatalf("paper config invalid: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.Topology.Continents = 0 },
		func(c *Config) { c.Capacities.Storage = 0 },
		func(c *Config) { c.Rent.EpochsPerMonth = 0 },
		func(c *Config) { c.Agent.F = 0 },
		func(c *Config) { c.CheapRent = 0 },
		func(c *Config) { c.ExpensiveFraction = 1.5 },
		func(c *Config) { c.Apps = nil },
		func(c *Config) { c.Apps[0].Name = "" },
		func(c *Config) { c.Apps[0].TargetReplicas = 0 },
		func(c *Config) { c.Apps[0].Partitions = 0 },
		func(c *Config) { c.Apps[0].PartitionSize = 0 },
		func(c *Config) { c.Apps[0].LoadShare = -1 },
		func(c *Config) { c.Apps[0].Popularity.Shape = 0 },
		func(c *Config) { c.Profile = nil },
		func(c *Config) { c.MaxPartitionSize = 0 },
		func(c *Config) { c.ConsistencyCost = -1 },
		func(c *Config) { c.Events = []Event{{Epoch: -1}} },
	}
	for i, mut := range mutations {
		c := smallConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d: want validation error", i)
		}
		if _, err := New(c); err == nil {
			t.Errorf("mutation %d: New accepted invalid config", i)
		}
	}
}

func TestNewInitialPlacement(t *testing.T) {
	c, err := New(smallConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for ai, st := range c.apps {
		for _, p := range st.ring.Partitions() {
			if len(p.Replicas) != 1 {
				t.Errorf("app %d partition %d initial replicas = %d, want 1", ai, p.ID, len(p.Replicas))
			}
		}
	}
	assertStorageConsistent(t, c)
	if c.Board().Len() != 20 {
		t.Errorf("board has %d servers, want 20", c.Board().Len())
	}
	if c.AliveServers() != 20 {
		t.Errorf("alive = %d", c.AliveServers())
	}
}

// assertStorageConsistent checks the core accounting invariant: every
// server's used storage equals the sum of the sizes of the vnodes it
// hosts, and every vnode size matches its partition size.
func assertStorageConsistent(t *testing.T, c *Cloud) {
	t.Helper()
	want := make(map[int]int64)
	for _, st := range c.apps {
		for k, v := range st.vnodes {
			if v.Size != st.sizes[k.part] {
				t.Fatalf("vnode %v size %d != partition size %d", k, v.Size, st.sizes[k.part])
			}
			want[int(k.srv)] += v.Size
		}
	}
	for _, s := range c.Servers() {
		if !s.Alive() {
			continue
		}
		if s.UsedStorage() != want[int(s.ID())] {
			t.Fatalf("server %d used %d, vnodes account %d", s.ID(), s.UsedStorage(), want[int(s.ID())])
		}
	}
}

// assertReplicaSetsMatchVNodes checks ring metadata and agents agree.
func assertReplicaSetsMatchVNodes(t *testing.T, c *Cloud) {
	t.Helper()
	for ai, st := range c.apps {
		n := 0
		for _, p := range st.ring.Partitions() {
			for _, id := range p.Replicas {
				n++
				if _, ok := st.vnodes[vkey{p.ID, id}]; !ok {
					t.Fatalf("app %d partition %d replica on %d has no vnode", ai, p.ID, id)
				}
			}
		}
		if n != len(st.vnodes) {
			t.Fatalf("app %d: %d replicas but %d vnodes", ai, n, len(st.vnodes))
		}
	}
}

func TestConvergenceToSLA(t *testing.T) {
	c, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	c.Run(60, nil)
	for i, st := range c.AvailabilityStats() {
		if st.Violations != 0 {
			t.Errorf("ring %d: %d/%d partitions below threshold %v (min avail %v)",
				i, st.Violations, st.Partitions, st.Threshold, st.MinAvail)
		}
	}
	assertStorageConsistent(t, c)
	assertReplicaSetsMatchVNodes(t, c)
	// Replica counts should sit at or slightly above the SLA target.
	for ai, st := range c.apps {
		target := st.spec.TargetReplicas
		for _, p := range st.ring.Partitions() {
			if len(p.Replicas) < target {
				t.Errorf("app %d partition %d has %d replicas, SLA needs %d", ai, p.ID, len(p.Replicas), target)
			}
			if len(p.Replicas) > target+3 {
				t.Errorf("app %d partition %d over-replicated: %d replicas", ai, p.ID, len(p.Replicas))
			}
		}
	}
	if c.Epoch() != 60 {
		t.Errorf("Epoch = %d", c.Epoch())
	}
}

func TestDeterminism(t *testing.T) {
	run := func() ([]int, Ops) {
		c, err := New(smallConfig())
		if err != nil {
			t.Fatal(err)
		}
		c.Run(30, nil)
		return c.VNodesPerRing(), c.Ops()
	}
	a1, o1 := run()
	a2, o2 := run()
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("ring %d vnodes differ across runs: %d vs %d", i, a1[i], a2[i])
		}
	}
	if o1 != o2 {
		t.Fatalf("ops differ: %+v vs %+v", o1, o2)
	}
}

func TestFailureRecovery(t *testing.T) {
	cfg := smallConfig()
	cfg.Events = []Event{{Epoch: 40, Kind: FailServers, Count: 4}}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Run(40, nil)
	preOps := c.Ops()
	c.Run(40, nil)
	if c.AliveServers() != 16 {
		t.Fatalf("alive after failure = %d, want 16", c.AliveServers())
	}
	// A simultaneous 4-of-20 failure can statistically wipe both replicas
	// of a 2-replica partition (~3% per partition); such lost partitions
	// have no surviving agent and stay violated forever. Everything else
	// must recover.
	lost := int(c.Ops().LostPartitions)
	if lost > 2 {
		t.Fatalf("lost %d partitions; more than the statistical tail allows", lost)
	}
	viol := 0
	for _, st := range c.AvailabilityStats() {
		viol += st.Violations
	}
	if viol != lost {
		t.Errorf("%d violations after recovery, want exactly the %d lost partitions", viol, lost)
	}
	if got := c.Ops(); got.Replications <= preOps.Replications {
		t.Error("failure recovery performed no replications")
	}
	assertStorageConsistent(t, c)
	assertReplicaSetsMatchVNodes(t, c)
}

func TestAddServersEvent(t *testing.T) {
	cfg := smallConfig()
	cfg.Events = []Event{{Epoch: 30, Kind: AddServers, Count: 5}}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Run(30, nil)
	before := 0
	for _, n := range c.VNodesPerRing() {
		before += n
	}
	c.Run(30, nil)
	if c.AliveServers() != 25 {
		t.Fatalf("alive = %d, want 25", c.AliveServers())
	}
	after := 0
	for _, n := range c.VNodesPerRing() {
		after += n
	}
	// Fig. 3: adding resources must not inflate the replica population.
	if diff := after - before; diff > before/5 || diff < -before/5 {
		t.Errorf("vnode total moved from %d to %d after upgrade", before, after)
	}
	assertStorageConsistent(t, c)
}

func TestCheapServersPreferred(t *testing.T) {
	cfg := smallConfig()
	cfg.Seed = 7
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Run(80, nil)
	counts := c.VNodeCounts()
	if counts.Cheap.N == 0 || counts.Expensive.N == 0 {
		t.Skip("seed produced a single price class")
	}
	if counts.Cheap.Mean <= counts.Expensive.Mean {
		t.Errorf("cheap servers host %.2f vnodes on average, expensive %.2f; economy should prefer cheap",
			counts.Cheap.Mean, counts.Expensive.Mean)
	}
}

func TestInsertsAndSplit(t *testing.T) {
	cfg := smallConfig()
	cfg.Inserts = workload.InsertStream{PerEpoch: 40, ValueSize: 64 << 10}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	partsBefore := c.rings.TotalPartitions()
	c.Run(60, nil)
	st := c.StorageStats()
	if st.InsertAttempts != 40*60 {
		t.Errorf("attempts = %d, want %d", st.InsertAttempts, 40*60)
	}
	if st.InsertFailures != 0 {
		t.Errorf("insert failures = %d with %.0f%% storage used", st.InsertFailures, st.UsedFraction*100)
	}
	if got := c.rings.TotalPartitions(); got <= partsBefore {
		t.Errorf("no partition split despite inserts: %d partitions", got)
	}
	assertStorageConsistent(t, c)
	assertReplicaSetsMatchVNodes(t, c)
}

func TestSlashdotAdaptation(t *testing.T) {
	cfg := smallConfig()
	cfg.Profile = workload.Slashdot{
		Base: 300, Peak: 6000, StartEpoch: 40, RampEpochs: 5, DecayEpochs: 30,
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Run(40, nil)
	base := 0
	for _, n := range c.VNodesPerRing() {
		base += n
	}
	c.Run(15, nil) // through the peak
	peak := 0
	for _, n := range c.VNodesPerRing() {
		peak += n
	}
	if peak <= base {
		t.Errorf("no replication under the spike: %d -> %d vnodes", base, peak)
	}
	c.Run(120, nil) // decay and settle
	settled := 0
	for _, n := range c.VNodesPerRing() {
		settled += n
	}
	if settled >= peak {
		t.Errorf("surplus replicas never suicided: peak %d, settled %d", peak, settled)
	}
	assertStorageConsistent(t, c)
}

func TestMonthlyCostTracksHostingSet(t *testing.T) {
	c, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	cost := c.MonthlyCost()
	if cost <= 0 {
		t.Fatalf("monthly cost = %v", cost)
	}
	// Upper bound: every server rented at the expensive price.
	if max := float64(len(c.Servers())) * 125; cost > max {
		t.Errorf("cost %v exceeds all-server bound %v", cost, max)
	}
}

func TestRingLoadStatsShape(t *testing.T) {
	c, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	c.Run(10, nil)
	stats := c.RingLoadStats()
	if len(stats) != 2 {
		t.Fatalf("stats for %d rings", len(stats))
	}
	// App 1 attracts 2x the load of app 2.
	if stats[0].Mean <= stats[1].Mean {
		t.Errorf("ring load means %v vs %v; app1 should dominate", stats[0].Mean, stats[1].Mean)
	}
}

func TestEventEpochIsExact(t *testing.T) {
	cfg := smallConfig()
	cfg.Events = []Event{{Epoch: 5, Kind: FailServers, Count: 100}} // fail everything
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Run(5, nil)
	if c.AliveServers() != 20 {
		t.Fatalf("event fired early: alive = %d", c.AliveServers())
	}
	c.Step()
	if c.AliveServers() != 0 {
		t.Fatalf("event did not fire: alive = %d", c.AliveServers())
	}
}

func BenchmarkEpochSmall(b *testing.B) {
	c, err := New(smallConfig())
	if err != nil {
		b.Fatal(err)
	}
	c.Run(40, nil) // settle first
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Step()
	}
}
