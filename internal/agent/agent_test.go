package agent

import (
	"testing"

	"skute/internal/availability"
	"skute/internal/economy"
	"skute/internal/ring"
	"skute/internal/topology"
)

func host(id int, cont string) availability.Host {
	return availability.Host{
		ID:   ring.ServerID(id),
		Conf: 1,
		Loc:  topology.Qualified(cont, "cn", "dc", "rm", "rk", "sv"),
	}
}

func cand(id int, cont string, rent float64) availability.Candidate {
	return availability.Candidate{Host: host(id, cont), Rent: rent, G: 1}
}

func params() Params {
	return Params{F: 2, Utility: economy.UtilityParams{ValuePerQuery: 1}, ReplicationSurplus: 1.5}
}

func TestActionString(t *testing.T) {
	want := map[Action]string{Hold: "hold", Replicate: "replicate", Migrate: "migrate", Suicide: "suicide", Action(9): "action(9)"}
	for a, s := range want {
		if a.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(a), a.String(), s)
		}
	}
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	bad := []Params{
		{F: 0, Utility: economy.UtilityParams{ValuePerQuery: 1}, ReplicationSurplus: 1},
		{F: 1, Utility: economy.UtilityParams{ValuePerQuery: 1}, ReplicationSurplus: 0.5},
		{F: 1, Utility: economy.UtilityParams{ValuePerQuery: 0}, ReplicationSurplus: 1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestAvailabilityRepairHasPriority(t *testing.T) {
	v := &VNode{Server: 1}
	in := Inputs{
		Threshold:  availability.ThresholdForReplicas(2), // needs 2 replicas
		Hosts:      []availability.Host{host(1, "eu")},   // only self
		Candidates: []availability.Candidate{cand(2, "eu", 1), cand(3, "us", 5)},
		Queries:    0, Rent: 100, MinRent: 1, G: 1,
	}
	d := v.Decide(params(), in)
	if d.Action != Replicate {
		t.Fatalf("action = %v, want replicate", d.Action)
	}
	if d.Target != 3 {
		t.Errorf("target = %d, want the cross-continent server 3", d.Target)
	}
	// The repair path must not touch the ledger.
	if v.Ledger.NegativeRun() != 0 {
		t.Error("repair decision pushed a balance")
	}
}

func TestAvailabilityRepairStarved(t *testing.T) {
	v := &VNode{Server: 1}
	in := Inputs{
		Threshold: availability.ThresholdForReplicas(2),
		Hosts:     []availability.Host{host(1, "eu")},
	}
	if d := v.Decide(params(), in); d.Action != Hold {
		t.Errorf("no candidates: action = %v, want hold", d.Action)
	}
}

func TestSuicideWhenRedundant(t *testing.T) {
	v := &VNode{Server: 3}
	// Three cross-continent replicas, threshold for 2: removing self keeps
	// availability at 63 >= 59.85.
	hosts := []availability.Host{host(1, "eu"), host(2, "us"), host(3, "ap")}
	in := Inputs{
		Threshold: availability.ThresholdForReplicas(2),
		Hosts:     hosts,
		Queries:   0, G: 1,
		Rent:    10,
		MinRent: 1, // utility floors at 1, balance = 1-10 = -9
	}
	p := params()
	d := v.Decide(p, in)
	if d.Action != Hold {
		t.Fatalf("first deficit epoch: %v, want hold", d.Action)
	}
	d = v.Decide(p, in)
	if d.Action != Suicide {
		t.Fatalf("after F deficits: %v, want suicide", d.Action)
	}
}

func TestMigrateWhenNeededElsewhere(t *testing.T) {
	v := &VNode{Server: 2}
	// Two replicas, threshold 2: removing self would violate, so the
	// deficit node must migrate, and only to a cheaper server.
	hosts := []availability.Host{host(1, "eu"), host(2, "us")}
	in := Inputs{
		Threshold:  availability.ThresholdForReplicas(2),
		Hosts:      hosts,
		Candidates: []availability.Candidate{cand(5, "ap", 4), cand(6, "af", 20)},
		Queries:    0, G: 1,
		Rent:    10,
		MinRent: 1,
	}
	p := params()
	_ = v.Decide(p, in)
	d := v.Decide(p, in)
	if d.Action != Migrate {
		t.Fatalf("action = %v, want migrate", d.Action)
	}
	if d.Target != 5 {
		t.Errorf("target = %d, want cheaper server 5 (rent 4 < 10)", d.Target)
	}
}

func TestNoMigrationWithoutCheaperServer(t *testing.T) {
	v := &VNode{Server: 2}
	hosts := []availability.Host{host(1, "eu"), host(2, "us")}
	in := Inputs{
		Threshold:  availability.ThresholdForReplicas(2),
		Hosts:      hosts,
		Candidates: []availability.Candidate{cand(5, "ap", 50)}, // more expensive
		Queries:    0, G: 1,
		Rent:    10,
		MinRent: 1,
	}
	p := params()
	_ = v.Decide(p, in)
	if d := v.Decide(p, in); d.Action != Hold {
		t.Errorf("no cheaper candidate: %v, want hold", d.Action)
	}
}

func TestUtilityFloorPreventsChurn(t *testing.T) {
	// A node on the cheapest server with zero queries floors its utility
	// at the min rent: balance 0, never a deficit, never migrates.
	v := &VNode{Server: 1}
	hosts := []availability.Host{host(1, "eu"), host(2, "us")}
	in := Inputs{
		Threshold:  availability.ThresholdForReplicas(2),
		Hosts:      hosts,
		Candidates: []availability.Candidate{cand(5, "ap", 0.5)},
		Queries:    0, G: 1,
		Rent:    2,
		MinRent: 2, // this is the cheapest server
	}
	p := params()
	for i := 0; i < 10; i++ {
		if d := v.Decide(p, in); d.Action != Hold {
			t.Fatalf("epoch %d: %v, want hold", i, d.Action)
		}
	}
	if v.Ledger.NegativeRun() != 0 {
		t.Error("floored node accumulated deficits")
	}
}

func TestProfitReplication(t *testing.T) {
	v := &VNode{Server: 1}
	hosts := []availability.Host{host(1, "eu"), host(2, "us")}
	in := Inputs{
		Threshold:       availability.ThresholdForReplicas(2),
		Hosts:           hosts,
		Candidates:      []availability.Candidate{cand(5, "ap", 4)},
		Queries:         100, // utility 100
		G:               1,
		Rent:            10,
		MinRent:         1,
		ConsistencyCost: 2,
	}
	p := params()
	d := v.Decide(p, in)
	if d.Action != Hold {
		t.Fatalf("first profit epoch: %v, want hold (hysteresis)", d.Action)
	}
	d = v.Decide(p, in)
	if d.Action != Replicate || d.Target != 5 {
		t.Fatalf("after F profits: %v -> %d, want replicate -> 5", d.Action, d.Target)
	}
	if d.Balance != 90 {
		t.Errorf("balance = %v, want 90", d.Balance)
	}
}

func TestProfitReplicationRequiresSurplus(t *testing.T) {
	v := &VNode{Server: 1}
	hosts := []availability.Host{host(1, "eu"), host(2, "us")}
	in := Inputs{
		Threshold:       availability.ThresholdForReplicas(2),
		Hosts:           hosts,
		Candidates:      []availability.Candidate{cand(5, "ap", 9)},
		Queries:         12, // utility 12 < 1.5*(9+2)=16.5
		G:               1,
		Rent:            10,
		MinRent:         1,
		ConsistencyCost: 2,
	}
	p := params()
	_ = v.Decide(p, in)
	if d := v.Decide(p, in); d.Action != Hold {
		t.Errorf("insufficient surplus: %v, want hold", d.Action)
	}
}

func TestMixedBalancesResetHysteresis(t *testing.T) {
	v := &VNode{Server: 1}
	hosts := []availability.Host{host(1, "eu"), host(2, "us")}
	p := params()
	deficit := Inputs{
		Threshold: availability.ThresholdForReplicas(2),
		Hosts:     hosts, Rent: 10, MinRent: 1, G: 1,
	}
	profit := deficit
	profit.Queries = 100
	_ = v.Decide(p, deficit)
	_ = v.Decide(p, profit) // breaks the deficit run
	if d := v.Decide(p, deficit); d.Action != Hold {
		t.Errorf("after run break: %v, want hold", d.Action)
	}
}

func TestEmergencyEvictionBypassesHysteresis(t *testing.T) {
	v := &VNode{Server: 2}
	hosts := []availability.Host{host(1, "eu"), host(2, "us")}
	p := params()
	p.EvictionPressure = 0.9
	in := Inputs{
		Threshold:       availability.ThresholdForReplicas(2),
		Hosts:           hosts,
		Candidates:      []availability.Candidate{cand(5, "ap", 4)},
		Queries:         1000, // wildly profitable — eviction must still win
		G:               1,
		Rent:            10,
		MinRent:         1,
		StoragePressure: 0.95,
	}
	d := v.Decide(p, in)
	if d.Action != Migrate || d.Target != 5 {
		t.Fatalf("under storage pressure: %v -> %d, want migrate -> 5", d.Action, d.Target)
	}
	// Below the pressure threshold the same node holds (first profitable
	// epoch, hysteresis).
	in.StoragePressure = 0.5
	if d := v.Decide(p, in); d.Action != Hold {
		t.Errorf("below pressure: %v, want hold", d.Action)
	}
}

func TestEvictionDisabledByZeroPressure(t *testing.T) {
	v := &VNode{Server: 2}
	hosts := []availability.Host{host(1, "eu"), host(2, "us")}
	p := params() // EvictionPressure unset -> disabled
	in := Inputs{
		Threshold:       availability.ThresholdForReplicas(2),
		Hosts:           hosts,
		Candidates:      []availability.Candidate{cand(5, "ap", 4)},
		Queries:         1000,
		G:               1,
		Rent:            10,
		MinRent:         1,
		StoragePressure: 1.0,
	}
	if d := v.Decide(p, in); d.Action != Hold {
		t.Errorf("eviction disabled: %v, want hold", d.Action)
	}
}

func TestEvictionRespectsAvailability(t *testing.T) {
	v := &VNode{Server: 2}
	hosts := []availability.Host{host(1, "eu"), host(2, "us")}
	p := params()
	p.EvictionPressure = 0.9
	// Only candidate shares the remaining replica's continent: moving
	// there would break the threshold, so the node must stay put.
	in := Inputs{
		Threshold:       availability.ThresholdForReplicas(2),
		Hosts:           hosts,
		Candidates:      []availability.Candidate{cand(5, "eu", 1)},
		StoragePressure: 0.99,
		G:               1, Rent: 10, MinRent: 1,
	}
	if d := v.Decide(p, in); d.Action == Migrate {
		t.Error("eviction migrated into an SLA violation")
	}
}

func TestSelfLookup(t *testing.T) {
	v := &VNode{Server: 7}
	hosts := []availability.Host{host(7, "eu"), host(2, "us")}
	if h, ok := v.Self(hosts); !ok || h.ID != 7 {
		t.Error("Self failed to find the node")
	}
	if _, ok := v.Self(hosts[1:]); ok {
		t.Error("Self found a node that is not in the view")
	}
	if id := v.ID(); id == "" {
		t.Error("empty vnode id")
	}
}

func TestDecisionBalanceReported(t *testing.T) {
	v := &VNode{Server: 1}
	hosts := []availability.Host{host(1, "eu"), host(2, "us")}
	in := Inputs{
		Threshold: availability.ThresholdForReplicas(2),
		Hosts:     hosts,
		Queries:   30, G: 0.5, Rent: 5, MinRent: 1,
	}
	d := v.Decide(params(), in)
	if d.Balance != 10 { // 30*0.5*1(value) - 5
		t.Errorf("balance = %v, want 10", d.Balance)
	}
	if v.Ledger.Wealth() != 10 {
		t.Errorf("wealth = %v, want 10", v.Ledger.Wealth())
	}
}

func BenchmarkDecideHold(b *testing.B) {
	v := &VNode{Server: 1}
	hosts := []availability.Host{host(1, "eu"), host(2, "us"), host(3, "ap")}
	cands := make([]availability.Candidate, 50)
	for i := range cands {
		cands[i] = cand(10+i, "af", float64(i))
	}
	in := Inputs{
		Threshold: availability.ThresholdForReplicas(2),
		Hosts:     hosts, Candidates: cands,
		Queries: 10, G: 1, Rent: 5, MinRent: 1,
	}
	p := params()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Decide(p, in)
		v.Ledger.Reset()
	}
}
