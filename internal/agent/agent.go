// Package agent implements the heart of Skute: the autonomous virtual-node
// optimizer of Section II-C. One agent exists per replica of each data
// partition; at the end of every epoch it decides — with no global
// coordination — whether to replicate, migrate, suicide (delete its
// replica) or do nothing, based on the partition's estimated availability
// and its own economic balance.
//
// The agent is a pure decision function: the surrounding environment (the
// simulator, or a live cluster) gathers the Inputs, executes the returned
// Decision and owns all side effects. That keeps the decision logic
// independently testable and reusable between the simulation and the
// prototype store.
package agent

import (
	"fmt"

	"skute/internal/availability"
	"skute/internal/economy"
	"skute/internal/ring"
)

// Action enumerates what a virtual node can do with its replica at an
// epoch boundary.
type Action int

// Possible actions, in the paper's terminology.
const (
	Hold Action = iota // keep the replica where it is
	Replicate
	Migrate
	Suicide
)

// String implements fmt.Stringer.
func (a Action) String() string {
	switch a {
	case Hold:
		return "hold"
	case Replicate:
		return "replicate"
	case Migrate:
		return "migrate"
	case Suicide:
		return "suicide"
	default:
		return fmt.Sprintf("action(%d)", int(a))
	}
}

// Decision is the agent's verdict for one epoch. Target is meaningful for
// Replicate and Migrate. Balance reports the epoch's net benefit (Eq. 5)
// after the utility floor, for observability.
type Decision struct {
	Action  Action
	Target  ring.ServerID
	Balance float64
}

// Params are the fixed knobs of the decision process.
type Params struct {
	// F is the hysteresis window: a node must run a negative (positive)
	// balance for F consecutive epochs before it may migrate/suicide
	// (replicate for profit).
	F int
	// Utility converts query traffic to money.
	Utility economy.UtilityParams
	// ReplicationSurplus is the factor by which the node's utility must
	// exceed the candidate's rent plus the consistency cost before a
	// profit-driven replication is allowed (>= 1; the "enough popularity
	// to compensate" test of Section II-C).
	ReplicationSurplus float64
	// EvictionPressure is the storage usage of the node's own server
	// beyond which it migrates immediately, bypassing the F-epoch
	// hysteresis (0 disables). It is the emergency end of Eq. 1's
	// storage-pressure signal: without it, a server absorbing a hot
	// partition's inserts fills faster than the deficit hysteresis can
	// react, and inserts start failing long before the cloud is full.
	EvictionPressure float64
	// NoUtilityFloor disables the anti-churn floor that clamps a node's
	// utility at the board's cheapest rent. Only the "ablation-floor"
	// experiment sets this; the paper's system always floors.
	NoUtilityFloor bool
}

// DefaultParams mirror the simulation configuration: a 3-epoch
// hysteresis, a 1.5x surplus requirement and emergency eviction at 92%
// local storage usage.
func DefaultParams() Params {
	return Params{F: 3, Utility: economy.DefaultUtilityParams(), ReplicationSurplus: 1.5, EvictionPressure: 0.92}
}

// Validate reports an error for unusable parameters.
func (p Params) Validate() error {
	if p.F < 1 {
		return fmt.Errorf("agent: hysteresis F must be >= 1, got %d", p.F)
	}
	if p.ReplicationSurplus < 1 {
		return fmt.Errorf("agent: replication surplus must be >= 1, got %v", p.ReplicationSurplus)
	}
	if p.Utility.ValuePerQuery <= 0 {
		return fmt.Errorf("agent: value per query must be positive, got %v", p.Utility.ValuePerQuery)
	}
	if p.EvictionPressure < 0 || p.EvictionPressure > 1 {
		return fmt.Errorf("agent: eviction pressure %v outside [0,1]", p.EvictionPressure)
	}
	return nil
}

// Inputs is everything the agent observes at an epoch boundary. The
// environment fills it from the board, the ring metadata and its own
// accounting; no field requires global coordination (hosts and candidates
// come from the partition's replica metadata and the rent board).
type Inputs struct {
	// Threshold is the minimum availability the partition's ring promises.
	Threshold float64
	// Hosts is the partition's current replica set, including this node.
	Hosts []availability.Host
	// Candidates are servers able to receive a new replica right now:
	// alive, not already hosting the partition, with storage room. Rent
	// and G must be filled by the environment.
	Candidates []availability.Candidate
	// Queries is the query traffic this replica served during the epoch.
	Queries float64
	// StoragePressure is the storage usage fraction of this replica's own
	// server, for the emergency-eviction check.
	StoragePressure float64
	// G is the geographic preference of this replica's server for the
	// partition's clients (Eq. 4), in (0, 1] after normalization.
	G float64
	// Rent is this server's announced virtual rent for the epoch.
	Rent float64
	// MinRent is the cheapest rent on the board — the utility floor.
	MinRent float64
	// ConsistencyCost is the extra per-epoch cost one more replica would
	// add for keeping the partition consistent (update fan-out).
	ConsistencyCost float64
}

// VNode is one replica agent: its identity plus its economic memory.
type VNode struct {
	Ring      ring.RingID
	Partition int
	Server    ring.ServerID
	Size      int64 // bytes of partition data this replica holds

	Ledger economy.Ledger
}

// ID renders a debugging identity like "app0/gold#12@srv4".
func (v *VNode) ID() string {
	return fmt.Sprintf("%s#%d@srv%d", v.Ring, v.Partition, v.Server)
}

// Self returns this node's entry in the replica host list, or false when
// the environment handed an inconsistent view that no longer contains it.
func (v *VNode) Self(hosts []availability.Host) (availability.Host, bool) {
	for _, h := range hosts {
		if h.ID == v.Server {
			return h, true
		}
	}
	return availability.Host{}, false
}

// Decide runs Section II-C for one epoch and updates the ledger. The
// sequence is exactly the paper's:
//
//  1. If the partition's availability is below the threshold, replicate to
//     the candidate maximizing Eq. 3 (availability first, cost second).
//  2. Otherwise account the epoch balance b = u - c with the utility
//     floored at the board's cheapest rent.
//  3. After F consecutive deficits: suicide if the partition stays
//     available without this replica; otherwise migrate to a cheaper
//     server chosen by Eq. 3 among candidates cheaper than the current
//     rent.
//  4. After F consecutive profits: replicate if the node's utility covers
//     the new rent plus the consistency cost with the configured surplus.
func (v *VNode) Decide(p Params, in Inputs) Decision {
	avail := availability.Of(in.Hosts)

	// Step 1 — availability repair has absolute priority and bypasses the
	// economics.
	if avail < in.Threshold {
		if best, ok := availability.Best(in.Hosts, in.Candidates); ok {
			return Decision{Action: Replicate, Target: best.ID}
		}
		return Decision{Action: Hold} // starved: no candidate can help this epoch
	}

	// Emergency eviction — the server is about to run out of storage.
	// Waiting out the deficit hysteresis would let inserts fail, so the
	// node leaves now (to a cheaper server: under Eq. 1 a fuller server
	// is pricier, so "cheaper" is "emptier" when storage dominates).
	if p.EvictionPressure > 0 && in.StoragePressure >= p.EvictionPressure {
		if best, ok := v.migrationTarget(in); ok {
			return Decision{Action: Migrate, Target: best.ID}
		}
	}

	// Step 2 — economics. The utility floor (min rent on the board) stops
	// unpopular nodes from migrating indefinitely: at the cheapest server
	// their balance is non-negative by construction.
	u := p.Utility.Utility(in.Queries, in.G)
	if u < in.MinRent && !p.NoUtilityFloor {
		u = in.MinRent
	}
	balance := u - in.Rent
	v.Ledger.Push(balance)

	// Step 3 — sustained deficit: leave.
	if v.Ledger.NegativeRun() >= p.F {
		if availability.Without(in.Hosts, v.Server) >= in.Threshold {
			return Decision{Action: Suicide, Balance: balance}
		}
		if best, ok := v.migrationTarget(in); ok {
			return Decision{Action: Migrate, Target: best.ID, Balance: balance}
		}
		return Decision{Action: Hold, Balance: balance}
	}

	// (step 4 follows below)
	return v.decideProfit(p, in, u, balance)
}

// migrationTarget applies Eq. 3 over the replica set without this node,
// restricted to strictly cheaper servers whose location keeps the
// partition above its threshold — keeping availability is the
// non-negotiable first priority of the decision process.
func (v *VNode) migrationTarget(in Inputs) (availability.Candidate, bool) {
	others := make([]availability.Host, 0, len(in.Hosts)-1)
	for _, h := range in.Hosts {
		if h.ID != v.Server {
			others = append(others, h)
		}
	}
	cheaper := make([]availability.Candidate, 0, len(in.Candidates))
	for _, c := range in.Candidates {
		if c.Rent < in.Rent && availability.With(others, c.Host) >= in.Threshold {
			cheaper = append(cheaper, c)
		}
	}
	return availability.Best(others, cheaper)
}

// decideProfit is step 4 of the decision process; u is the floored
// utility of the epoch.
func (v *VNode) decideProfit(p Params, in Inputs, u, balance float64) Decision {
	// Step 4 — sustained profit: replicate when popularity pays for it.
	if v.Ledger.PositiveRun() >= p.F {
		if best, ok := availability.Best(in.Hosts, in.Candidates); ok {
			if u >= p.ReplicationSurplus*(best.Rent+in.ConsistencyCost) {
				return Decision{Action: Replicate, Target: best.ID, Balance: balance}
			}
		}
	}

	return Decision{Action: Hold, Balance: balance}
}
