// Package resilience is the overload-protection layer of the repository:
// the mechanisms that keep a saturated node shedding work fast instead of
// queueing it into timeout collapse, and keep clients from amplifying an
// overload with retries.
//
// Three cooperating pieces, each usable on its own:
//
//   - Gate — server-side admission control. A bounded in-flight gate with
//     priority classes (background anti-entropy/transfer/epoch traffic
//     sheds first, then reads, then writes; membership heartbeats are
//     never shed) and deadline-aware rejection: work whose remaining
//     context budget cannot cover the observed service time of its class
//     (tracked in internal/telemetry histograms) is refused immediately
//     with ErrOverloaded rather than admitted to time out.
//
//   - Breaker / BreakerSet — per-peer circuit breakers with the classic
//     closed → open → half-open lifecycle, fed by call outcomes (errors
//     and, when SlowAfter is set, successful-but-slow RTTs). The cluster
//     read path consults them to order replica fan-out and hedged-read
//     backups away from sick peers; coordinator selection skips open
//     peers entirely.
//
//   - RetryPolicy / RetryBudget — client-side retries with exponential
//     backoff and full jitter, spent from a token-bucket budget that
//     deposits a fraction of a token per first attempt. When every
//     replica is overloaded the budget caps total wire calls at
//     (1+ratio)·requests plus a small burst, so retries can never turn
//     an overload into a storm.
//
// ErrOverloaded is the package's retryable sentinel; internal/cluster
// registers it on the wire-code registry so it round-trips the TCP
// transport and clients can re-route to another replica instead of
// retrying the same saturated node.
package resilience
