package resilience

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestRetryBudgetBounds(t *testing.T) {
	b := NewRetryBudget(0.5, 2)
	// Starts at the burst cap: 2 retries available.
	if !b.Allow() || !b.Allow() {
		t.Fatal("fresh budget refused its burst")
	}
	if b.Allow() {
		t.Fatal("empty budget allowed a retry")
	}
	// Two first attempts deposit 0.5 each — one whole token.
	b.OnAttempt()
	if b.Allow() {
		t.Fatal("half a token bought a retry")
	}
	b.OnAttempt()
	if !b.Allow() {
		t.Fatal("a whole deposited token refused a retry")
	}
}

func TestRetryDelayJitterBounds(t *testing.T) {
	p := RetryPolicy{BaseDelay: 4 * time.Millisecond, MaxDelay: 16 * time.Millisecond}
	for retry := 1; retry <= 6; retry++ {
		ceil := 4 * time.Millisecond << (retry - 1)
		if ceil > 16*time.Millisecond {
			ceil = 16 * time.Millisecond
		}
		for i := 0; i < 200; i++ {
			if d := p.Delay(retry); d < 0 || d > ceil {
				t.Fatalf("Delay(%d) = %v outside [0, %v]", retry, d, ceil)
			}
		}
	}
}

func TestRetryRespectsDeadline(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, BaseDelay: 50 * time.Millisecond, MaxDelay: 50 * time.Millisecond}
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	if p.Retry(ctx, 1) {
		t.Fatal("Retry slept past an expired deadline")
	}
	canceled, stop := context.WithCancel(context.Background())
	stop()
	if p.Retry(canceled, 1) {
		t.Fatal("Retry proceeded on a canceled context")
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 3, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond}
	ctx := context.Background()
	attempts := 1
	for p.Retry(ctx, attempts) {
		attempts++
	}
	if attempts != 3 {
		t.Fatalf("made %d attempts, want 3", attempts)
	}
}

// TestRetryAmplificationBounded is the no-retry-storm guarantee: when
// every call fails retryably (all replicas overloaded), total wire calls
// stay within the budget's (1+ratio)·requests + burst envelope instead
// of multiplying by MaxAttempts.
func TestRetryAmplificationBounded(t *testing.T) {
	const (
		requests = 400
		ratio    = 0.1
		burst    = 10
		workers  = 8
	)
	budget := NewRetryBudget(ratio, burst)
	p := RetryPolicy{MaxAttempts: 4, BaseDelay: time.Microsecond, MaxDelay: 10 * time.Microsecond, Budget: budget}

	var mu sync.Mutex
	wireCalls := 0
	ctx := context.Background()

	var wg sync.WaitGroup
	per := requests / workers
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < per; r++ {
				budget.OnAttempt()
				for attempt := 1; ; attempt++ {
					mu.Lock()
					wireCalls++
					mu.Unlock()
					// The call always fails retryably.
					if !p.Retry(ctx, attempt) {
						break
					}
				}
			}
		}()
	}
	wg.Wait()

	limit := requests + int(float64(requests)*ratio) + burst
	if wireCalls > limit {
		t.Fatalf("retry storm: %d wire calls for %d requests (budget limit %d)", wireCalls, requests, limit)
	}
	if wireCalls < requests {
		t.Fatalf("wire calls %d below request count %d — first attempts went missing", wireCalls, requests)
	}
	// Without a budget the same loop would make MaxAttempts·requests
	// calls; make sure the bound is meaningfully below that.
	if worst := requests * 4; limit >= worst {
		t.Fatalf("test misconfigured: budget limit %d not below unbudgeted worst case %d", limit, worst)
	}
}
