package resilience

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestGatePriorityThresholds(t *testing.T) {
	g := NewGate(10, nil)
	ctx := context.Background()

	// Fill to 5 (the background limit) with writes.
	var releases []func()
	for i := 0; i < 5; i++ {
		rel, err := g.Enter(ctx, Write)
		if err != nil {
			t.Fatalf("write %d rejected below the gate: %v", i, err)
		}
		releases = append(releases, rel)
	}
	if _, err := g.Enter(ctx, Background); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("background admitted at 50%% of the gate (err=%v)", err)
	}
	// Reads still fit until 90%.
	for i := 0; i < 4; i++ {
		rel, err := g.Enter(ctx, Read)
		if err != nil {
			t.Fatalf("read %d rejected below 90%%: %v", i, err)
		}
		releases = append(releases, rel)
	}
	if _, err := g.Enter(ctx, Read); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("read admitted at 90%% of the gate (err=%v)", err)
	}
	// The last slot belongs to writes.
	rel, err := g.Enter(ctx, Write)
	if err != nil {
		t.Fatalf("write rejected with a slot free: %v", err)
	}
	releases = append(releases, rel)
	if _, err := g.Enter(ctx, Write); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("write admitted past the gate (err=%v)", err)
	}
	// Critical traffic ignores the gate entirely.
	rel, err = g.Enter(ctx, Critical)
	if err != nil {
		t.Fatalf("critical rejected: %v", err)
	}
	releases = append(releases, rel)

	for _, rel := range releases {
		rel()
	}
	if got := g.Inflight(); got != 0 {
		t.Fatalf("inflight after all releases = %d, want 0", got)
	}
	if g.Shed(Background) != 1 || g.Shed(Read) != 1 || g.Shed(Write) != 1 {
		t.Fatalf("shed counters = bg:%d read:%d write:%d, want 1 each",
			g.Shed(Background), g.Shed(Read), g.Shed(Write))
	}
	// Releasing twice must not underflow the gate.
	releases[0]()
	if got := g.Inflight(); got != 0 {
		t.Fatalf("inflight after double release = %d, want 0", got)
	}
}

func TestGateDeadlineAwareRejection(t *testing.T) {
	clk := newFakeClock()
	g := NewGate(100, clk.Now)

	// Teach the gate that writes take ~10ms.
	ctx := context.Background()
	for i := 0; i < estimateMinSamples; i++ {
		rel, err := g.Enter(ctx, Write)
		if err != nil {
			t.Fatalf("training write rejected: %v", err)
		}
		clk.Advance(10 * time.Millisecond)
		rel()
	}
	clk.Advance(estimateRefresh) // let the estimate cache refresh
	// Prime the estimate (first call past the refresh recomputes it).
	dl, cancel := context.WithDeadline(ctx, clk.Now().Add(time.Hour))
	rel, err := g.Enter(dl, Write)
	if err != nil {
		t.Fatalf("write with generous deadline rejected: %v", err)
	}
	rel()
	cancel()

	// 1ms of budget cannot cover a 10ms median service time.
	dl, cancel = context.WithDeadline(ctx, clk.Now().Add(time.Millisecond))
	defer cancel()
	if _, err := g.Enter(dl, Write); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("doomed write admitted (err=%v)", err)
	}
	if g.ShedLate() != 1 {
		t.Fatalf("ShedLate = %d, want 1", g.ShedLate())
	}
	// A request with budget to spare is admitted.
	dl2, cancel2 := context.WithDeadline(ctx, clk.Now().Add(time.Second))
	defer cancel2()
	rel, err = g.Enter(dl2, Write)
	if err != nil {
		t.Fatalf("write with 1s budget rejected: %v", err)
	}
	rel()
	// Critical ignores the deadline check too.
	rel, err = g.Enter(dl, Critical)
	if err != nil {
		t.Fatalf("critical rejected on deadline: %v", err)
	}
	rel()
}

func TestGateNilAdmitsEverything(t *testing.T) {
	var g *Gate
	rel, err := g.Enter(context.Background(), Background)
	if err != nil {
		t.Fatalf("nil gate rejected: %v", err)
	}
	rel()
	if NewGate(0, nil) != nil {
		t.Fatal("NewGate(0) should return the nil (disabled) gate")
	}
}

func TestGateConcurrent(t *testing.T) {
	g := NewGate(8, nil)
	var wg sync.WaitGroup
	var admitted, shed sync.Map
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				rel, err := g.Enter(context.Background(), Priority(i%3))
				if err != nil {
					shed.Store(id*1000+i, true)
					continue
				}
				admitted.Store(id*1000+i, true)
				if got := g.Inflight(); got < 1 || got > 8 {
					t.Errorf("inflight = %d outside [1,8]", got)
				}
				rel()
			}
		}(w)
	}
	wg.Wait()
	if got := g.Inflight(); got != 0 {
		t.Fatalf("inflight after drain = %d, want 0", got)
	}
}
