package resilience

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"
)

var errPeer = errors.New("peer exploded")

// fakeClock is a manually-advanced clock for deterministic breaker tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestBreakerLifecycle(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker("n1", BreakerConfig{Failures: 3, OpenFor: time.Second, Now: clk.Now})

	if b.State() != BreakerClosed {
		t.Fatalf("new breaker state = %v, want closed", b.State())
	}
	// Failures below the threshold keep it closed; a success resets.
	b.Record(errPeer, 0)
	b.Record(errPeer, 0)
	b.Record(nil, 0)
	b.Record(errPeer, 0)
	b.Record(errPeer, 0)
	if b.State() != BreakerClosed {
		t.Fatalf("state after interleaved success = %v, want closed", b.State())
	}
	b.Record(errPeer, 0)
	if b.State() != BreakerOpen {
		t.Fatalf("state after 3 consecutive failures = %v, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker allowed a call inside the open window")
	}
	// After OpenFor, exactly one probe goes through.
	clk.Advance(time.Second + time.Millisecond)
	if !b.Allow() {
		t.Fatal("breaker refused the half-open probe after the open window")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state during probe = %v, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("breaker allowed a second concurrent half-open probe")
	}
	// Failed probe re-opens for a full window.
	b.Record(errPeer, 0)
	if b.State() != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("re-opened breaker allowed a call immediately")
	}
	clk.Advance(time.Second + time.Millisecond)
	if !b.Allow() {
		t.Fatal("breaker refused the second probe")
	}
	b.Record(nil, 0)
	if b.State() != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", b.State())
	}
	if !b.Allow() {
		t.Fatal("closed breaker refused a call")
	}
}

func TestBreakerSlowCallsTrip(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker("n1", BreakerConfig{Failures: 2, OpenFor: time.Second, SlowAfter: 10 * time.Millisecond, Now: clk.Now})
	b.Record(nil, 50*time.Millisecond)
	b.Record(nil, 50*time.Millisecond)
	if b.State() != BreakerOpen {
		t.Fatalf("state after 2 slow successes = %v, want open (SlowAfter=10ms, rtt=50ms)", b.State())
	}
}

func TestBreakerCanceledCallsDoNotCount(t *testing.T) {
	b := NewBreaker("n1", BreakerConfig{Failures: 1})
	for i := 0; i < 10; i++ {
		b.Record(context.Canceled, 0)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state after canceled calls = %v, want closed", b.State())
	}
}

// TestBreakerPropertyMatchesModel drives the breaker with a random
// outcome/clock schedule and cross-checks every observable against an
// independent reference model of the closed→open→half-open machine.
func TestBreakerPropertyMatchesModel(t *testing.T) {
	const (
		failures = 3
		openFor  = 100 * time.Millisecond
		rounds   = 5000
	)
	rng := rand.New(rand.NewSource(7))
	clk := newFakeClock()
	b := NewBreaker("n1", BreakerConfig{Failures: failures, OpenFor: openFor, Now: clk.Now})

	// Reference model.
	state := BreakerClosed
	fails := 0
	var openUntil time.Time
	probing := false

	for i := 0; i < rounds; i++ {
		switch rng.Intn(3) {
		case 0: // advance the clock
			clk.Advance(time.Duration(rng.Intn(int(openFor) * 2)))
		case 1: // attempt a call
			got := b.Allow()
			want := false
			switch state {
			case BreakerClosed:
				want = true
			case BreakerOpen:
				if !clk.Now().Before(openUntil) {
					state, probing, want = BreakerHalfOpen, true, true
				}
			case BreakerHalfOpen:
				if !probing {
					probing, want = true, true
				}
			}
			if got != want {
				t.Fatalf("round %d: Allow() = %v, model says %v (state %v)", i, got, want, state)
			}
		case 2: // record an outcome
			var err error
			if rng.Intn(2) == 0 {
				err = errPeer
			}
			b.Record(err, 0)
			switch state {
			case BreakerClosed:
				if err == nil {
					fails = 0
				} else if fails++; fails >= failures {
					state, openUntil, probing = BreakerOpen, clk.Now().Add(openFor), false
				}
			case BreakerHalfOpen:
				probing = false
				if err != nil {
					state, openUntil = BreakerOpen, clk.Now().Add(openFor)
				} else {
					state, fails = BreakerClosed, 0
				}
			}
		}
		if got := b.State(); got != state {
			t.Fatalf("round %d: State() = %v, model says %v", i, got, state)
		}
	}
}

// TestBreakerSetConcurrent hammers one set from many goroutines so the
// race detector can inspect the locking.
func TestBreakerSetConcurrent(t *testing.T) {
	s := NewBreakerSet(BreakerConfig{Failures: 3, OpenFor: time.Millisecond})
	peers := []string{"a", "b", "c"}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 2000; i++ {
				peer := peers[rng.Intn(len(peers))]
				if s.Allow(peer) {
					var err error
					if rng.Intn(3) == 0 {
						err = errPeer
					}
					s.Record(peer, err, time.Duration(rng.Intn(1000)))
				}
				s.State(peer)
				if i%500 == 0 {
					s.Snapshot()
				}
			}
		}(int64(g))
	}
	wg.Wait()
	if snap := s.Snapshot(); len(snap) != len(peers) {
		t.Fatalf("snapshot covers %d peers, want %d", len(snap), len(peers))
	}
}

func TestBreakerSetTransitionHook(t *testing.T) {
	var mu sync.Mutex
	transitions := 0
	s := NewBreakerSet(BreakerConfig{
		Failures: 1,
		OpenFor:  time.Hour,
		OnTransition: func(peer string, from, to BreakerState) {
			mu.Lock()
			transitions++
			mu.Unlock()
			if peer != "a" {
				t.Errorf("transition for peer %q, want a", peer)
			}
		},
	})
	s.Record("a", errPeer, 0)
	mu.Lock()
	defer mu.Unlock()
	if transitions != 1 {
		t.Fatalf("observed %d transitions, want 1 (closed→open)", transitions)
	}
}

func TestNilBreakerIsNoop(t *testing.T) {
	var b *Breaker
	if !b.Allow() {
		t.Fatal("nil breaker refused")
	}
	b.Record(errPeer, 0)
	if b.State() != BreakerClosed {
		t.Fatal("nil breaker not closed")
	}
	var s *BreakerSet
	if !s.Allow("x") {
		t.Fatal("nil set refused")
	}
	s.Record("x", errPeer, 0)
	if s.Snapshot() != nil {
		t.Fatal("nil set snapshot not nil")
	}
}
