package resilience

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"skute/internal/metrics"
	"skute/internal/telemetry"
)

// ErrOverloaded reports that a node refused work at admission: its
// in-flight gate was full for the request's priority class, or the
// request's remaining deadline could not cover the observed service
// time. It is a fast-fail signal — the work was never started — so the
// correct client reaction is to re-route to another replica or
// coordinator (with backoff), never to retry the same node immediately.
var ErrOverloaded = errors.New("resilience: node overloaded, request shed")

// Priority classes order which traffic a saturated node sheds first.
// Lower values shed earlier: a class is admitted only while the node's
// total in-flight count is below that class's share of the gate.
type Priority uint8

const (
	// Background is anti-entropy, partition transfer, epoch/economy and
	// placement-announce traffic: all of it retries on its own schedule,
	// so it is the first thing an overloaded node drops (at half the
	// gate).
	Background Priority = iota
	// Read is client read traffic, shed at 90% of the gate so that a
	// saturated node keeps a sliver of capacity for writes.
	Read
	// Write is client write/delete traffic, shed only when the gate is
	// fully spent.
	Write
	// Critical is membership traffic (heartbeats, suspicion refutation,
	// join/leave gossip): shedding it under load would turn an overload
	// into a false-suspicion cascade, so it is admitted unconditionally
	// (it still counts against the gate other classes see).
	Critical
	numPriorities
)

// String names the class for counters and logs.
func (p Priority) String() string {
	switch p {
	case Background:
		return "background"
	case Read:
		return "read"
	case Write:
		return "write"
	case Critical:
		return "critical"
	}
	return "unknown"
}

// estimateRefresh bounds how often a class's service-time estimate is
// recomputed from its histogram (a ~1k-bucket scan); estimateMinSamples
// is how many observations a class needs before deadline-aware
// rejection trusts the estimate.
const (
	estimateRefresh    = 250 * time.Millisecond
	estimateMinSamples = 32
)

// Gate is a bounded in-flight admission gate with priority classes and
// deadline-aware rejection. Enter is a few atomic ops on the admit path;
// the returned release closure records the observed service time into a
// per-class telemetry histogram, which in turn feeds the deadline check
// for later arrivals. A nil *Gate admits everything, so callers can wire
// it unconditionally and disable shedding by construction.
type Gate struct {
	max int64
	now func() time.Time

	inflight atomic.Int64

	hists [numPriorities]*telemetry.Histogram
	est   [numPriorities]atomic.Int64 // cached p50 service ns
	estAt [numPriorities]atomic.Int64 // unixnano of last estimate refresh

	admitted [numPriorities]metrics.Counter
	shed     [numPriorities]metrics.Counter
	shedLate metrics.Counter // deadline-aware rejections (subset of shed)
}

// NewGate builds a gate admitting at most maxInflight concurrent
// requests (Critical traffic may exceed it). maxInflight <= 0 returns
// nil — a gate that admits everything. now defaults to time.Now.
func NewGate(maxInflight int, now func() time.Time) *Gate {
	if maxInflight <= 0 {
		return nil
	}
	if now == nil {
		now = time.Now
	}
	g := &Gate{max: int64(maxInflight), now: now}
	for i := range g.hists {
		g.hists[i] = telemetry.NewHistogram()
	}
	return g
}

// limit returns the in-flight count at or above which class p is shed.
func (g *Gate) limit(p Priority) int64 {
	switch p {
	case Background:
		return g.max / 2
	case Read:
		return g.max * 9 / 10
	default: // Write; Critical never consults a limit
		return g.max
	}
}

// Enter asks to admit one request of class p. On admission it returns a
// release closure (which must run exactly once, when the request
// finishes) and nil. On rejection it returns ErrOverloaded with no
// closure: either the in-flight count reached the class limit, or the
// context's remaining deadline is smaller than the class's observed
// median service time — in which case admitting the request would only
// burn capacity on work doomed to time out.
func (g *Gate) Enter(ctx context.Context, p Priority) (release func(), err error) {
	if g == nil {
		return func() {}, nil
	}
	if p != Critical {
		if dl, ok := ctx.Deadline(); ok {
			if need := g.estimate(p); need > 0 && dl.Sub(g.now()) < time.Duration(need) {
				g.shedLate.Inc()
				g.shed[p].Inc()
				return nil, ErrOverloaded
			}
		}
	}
	cur := g.inflight.Add(1)
	if p != Critical && cur > g.limit(p) {
		g.inflight.Add(-1)
		g.shed[p].Inc()
		return nil, ErrOverloaded
	}
	g.admitted[p].Inc()
	start := g.now()
	var done atomic.Bool
	return func() {
		if !done.CompareAndSwap(false, true) {
			return
		}
		g.inflight.Add(-1)
		g.hists[p].Record(g.now().Sub(start).Nanoseconds())
	}, nil
}

// estimate returns the cached median service time (ns) for class p,
// refreshing it from the class histogram at most every estimateRefresh.
// It returns 0 — "no opinion, admit" — until the class has recorded
// estimateMinSamples observations.
func (g *Gate) estimate(p Priority) int64 {
	nowNS := g.now().UnixNano()
	last := g.estAt[p].Load()
	if nowNS-last >= int64(estimateRefresh) && g.estAt[p].CompareAndSwap(last, nowNS) {
		var est int64
		if h := g.hists[p]; h.Count() >= estimateMinSamples {
			est = h.Snapshot().Quantile(0.50)
		}
		g.est[p].Store(est)
	}
	return g.est[p].Load()
}

// Inflight reports the current admitted in-flight count.
func (g *Gate) Inflight() int64 {
	if g == nil {
		return 0
	}
	return g.inflight.Load()
}

// Admitted and Shed report the per-class admission counters; ShedLate
// reports how many of the sheds were deadline-aware rejections. All are
// nil-safe, returning 0.
func (g *Gate) Admitted(p Priority) int64 {
	if g == nil {
		return 0
	}
	return g.admitted[p].Value()
}

// Shed reports how many class-p requests were refused at admission.
func (g *Gate) Shed(p Priority) int64 {
	if g == nil {
		return 0
	}
	return g.shed[p].Value()
}

// ShedLate reports the deadline-aware subset of the sheds.
func (g *Gate) ShedLate() int64 {
	if g == nil {
		return 0
	}
	return g.shedLate.Value()
}

// RegisterTelemetry attaches the per-class service-time histograms to a
// registry as admission_<class>_ns, so GET /metrics exposes the same
// observations the deadline-aware check runs on. Nil-safe.
func (g *Gate) RegisterTelemetry(reg *telemetry.Registry) {
	if g == nil || reg == nil {
		return
	}
	for p := Priority(0); p < numPriorities; p++ {
		reg.Register("admission_"+p.String()+"_ns", g.hists[p])
	}
}
