package resilience

import (
	"context"
	"errors"
	"sync"
	"time"
)

// BreakerState is one of the classic circuit-breaker states.
type BreakerState uint8

const (
	// BreakerClosed passes traffic and counts consecutive failures.
	BreakerClosed BreakerState = iota
	// BreakerOpen refuses traffic until the open window elapses.
	BreakerOpen
	// BreakerHalfOpen lets exactly one probe through; its outcome
	// decides between closing and re-opening.
	BreakerHalfOpen
)

// String names the state for counters and logs.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig tunes a Breaker or BreakerSet. The zero value is usable:
// every field has a sensible default.
type BreakerConfig struct {
	// Failures is how many consecutive failures open the breaker
	// (default 5).
	Failures int
	// OpenFor is how long an opened breaker refuses traffic before
	// letting a half-open probe through (default 2s).
	OpenFor time.Duration
	// SlowAfter, when positive, makes a successful call slower than
	// this count as a failure — the signal that routes around a peer
	// that is up but sick. Zero disables latency-based tripping.
	SlowAfter time.Duration
	// Now overrides the clock (tests); defaults to time.Now.
	Now func() time.Time
	// OnTransition, when set, observes every state change. It runs with
	// the breaker lock held, so it must be cheap (bump a counter).
	OnTransition func(peer string, from, to BreakerState)
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Failures <= 0 {
		c.Failures = 5
	}
	if c.OpenFor <= 0 {
		c.OpenFor = 2 * time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Breaker is a single peer's circuit breaker. All methods are safe for
// concurrent use. A nil *Breaker always allows and ignores outcomes, so
// optional wiring can call through unconditionally.
type Breaker struct {
	cfg  BreakerConfig
	peer string

	mu        sync.Mutex
	state     BreakerState
	fails     int
	openUntil time.Time
	probing   bool
}

// NewBreaker builds a closed breaker for one peer.
func NewBreaker(peer string, cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults(), peer: peer}
}

// Allow reports whether a call to the peer should proceed. Open breakers
// refuse until OpenFor has elapsed, then admit exactly one half-open
// probe at a time; everything else queues behind the probe's outcome.
func (b *Breaker) Allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.cfg.Now().Before(b.openUntil) {
			return false
		}
		b.transition(BreakerHalfOpen)
		b.probing = true
		return true
	default: // BreakerHalfOpen
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Record feeds one call outcome. err == context.Canceled does not count
// against the peer (the caller gave up, the peer may be fine); any other
// error does, as does a successful call slower than SlowAfter. rtt may
// be zero when unknown.
func (b *Breaker) Record(err error, rtt time.Duration) {
	if b == nil {
		return
	}
	failure := err != nil && !errors.Is(err, context.Canceled)
	if !failure && b.cfg.SlowAfter > 0 && rtt > b.cfg.SlowAfter {
		failure = true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		if !failure {
			b.fails = 0
			return
		}
		b.fails++
		if b.fails >= b.cfg.Failures {
			b.open()
		}
	case BreakerHalfOpen:
		b.probing = false
		if failure {
			b.open()
			return
		}
		b.fails = 0
		b.transition(BreakerClosed)
	case BreakerOpen:
		// Stragglers from calls admitted before the trip; the open
		// window already expresses the verdict.
	}
}

// open moves to BreakerOpen and arms the re-probe window. Caller holds
// the lock.
func (b *Breaker) open() {
	b.openUntil = b.cfg.Now().Add(b.cfg.OpenFor)
	b.probing = false
	b.transition(BreakerOpen)
}

// transition applies a state change and notifies the hook. Caller holds
// the lock.
func (b *Breaker) transition(to BreakerState) {
	if b.state == to {
		return
	}
	from := b.state
	b.state = to
	if b.cfg.OnTransition != nil {
		b.cfg.OnTransition(b.peer, from, to)
	}
}

// State reports the current state, advancing Open to HalfOpen eligibility
// lazily (the state only changes inside Allow, so State is read-only).
func (b *Breaker) State() BreakerState {
	if b == nil {
		return BreakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// BreakerSet is a lazily-populated breaker per peer, sharing one config.
// A nil *BreakerSet allows everything, so callers wire it
// unconditionally.
type BreakerSet struct {
	cfg BreakerConfig

	mu sync.RWMutex
	m  map[string]*Breaker
}

// NewBreakerSet builds an empty set.
func NewBreakerSet(cfg BreakerConfig) *BreakerSet {
	return &BreakerSet{cfg: cfg.withDefaults(), m: make(map[string]*Breaker)}
}

// For returns (creating on first use) the peer's breaker.
func (s *BreakerSet) For(peer string) *Breaker {
	if s == nil {
		return nil
	}
	s.mu.RLock()
	b := s.m[peer]
	s.mu.RUnlock()
	if b != nil {
		return b
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if b = s.m[peer]; b == nil {
		b = NewBreaker(peer, s.cfg)
		s.m[peer] = b
	}
	return b
}

// Allow reports whether a call to the peer should proceed.
func (s *BreakerSet) Allow(peer string) bool { return s.For(peer).Allow() }

// Record feeds one call outcome for the peer.
func (s *BreakerSet) Record(peer string, err error, rtt time.Duration) {
	s.For(peer).Record(err, rtt)
}

// State reports the peer's current state (closed for unknown peers).
func (s *BreakerSet) State(peer string) BreakerState {
	if s == nil {
		return BreakerClosed
	}
	s.mu.RLock()
	b := s.m[peer]
	s.mu.RUnlock()
	return b.State()
}

// Snapshot returns the current state per known peer, for admin surfaces.
func (s *BreakerSet) Snapshot() map[string]BreakerState {
	if s == nil {
		return nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]BreakerState, len(s.m))
	for peer, b := range s.m {
		out[peer] = b.State()
	}
	return out
}
