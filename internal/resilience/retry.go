package resilience

import (
	"context"
	"math/rand/v2"
	"sync"
	"time"
)

// RetryBudget is a token bucket that bounds how many retries a client
// may spend relative to the first attempts it makes: every first attempt
// deposits Ratio tokens (capped at Burst), every retry withdraws one
// whole token. With ratio r, total wire calls over any window are at
// most (1+r)·firstAttempts + Burst — an overloaded cluster sees load
// shrink toward the offered rate instead of multiplying by the retry
// count. All methods are nil-safe; a nil budget always allows.
type RetryBudget struct {
	mu     sync.Mutex
	tokens float64
	ratio  float64
	burst  float64
}

// NewRetryBudget builds a budget depositing ratio tokens per first
// attempt with the given burst cap. ratio <= 0 defaults to 0.1 (one
// retry per ten requests), burst <= 0 defaults to 10. The bucket starts
// full so cold-start blips can still retry.
func NewRetryBudget(ratio, burst float64) *RetryBudget {
	if ratio <= 0 {
		ratio = 0.1
	}
	if burst <= 0 {
		burst = 10
	}
	return &RetryBudget{tokens: burst, ratio: ratio, burst: burst}
}

// OnAttempt credits the budget for one first attempt.
func (b *RetryBudget) OnAttempt() {
	if b == nil {
		return
	}
	b.mu.Lock()
	if b.tokens += b.ratio; b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.mu.Unlock()
}

// Allow withdraws one token for a retry, reporting whether the budget
// could afford it.
func (b *RetryBudget) Allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// RetryPolicy is exponential backoff with full jitter, spent from an
// optional shared RetryBudget. The zero value retries like the old
// transport loop (up to 3 attempts) but with jittered, deadline-aware
// pacing instead of an immediate tight loop.
type RetryPolicy struct {
	// MaxAttempts bounds total attempts including the first
	// (default 3).
	MaxAttempts int
	// BaseDelay seeds the exponential backoff (default 1ms); the delay
	// before retry n is uniform in [0, min(MaxDelay, BaseDelay·2^(n-1))].
	BaseDelay time.Duration
	// MaxDelay caps the backoff ceiling (default 100ms).
	MaxDelay time.Duration
	// Budget, when set, is the shared token bucket retries spend from.
	Budget *RetryBudget
}

func (p RetryPolicy) maxAttempts() int {
	if p.MaxAttempts <= 0 {
		return 3
	}
	return p.MaxAttempts
}

// Delay returns the full-jitter backoff before retry number retry
// (1-based: the delay between the first failure and the second attempt
// is Delay(1)).
func (p RetryPolicy) Delay(retry int) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = time.Millisecond
	}
	ceil := p.MaxDelay
	if ceil <= 0 {
		ceil = 100 * time.Millisecond
	}
	for i := 1; i < retry && base < ceil; i++ {
		base *= 2
	}
	if base > ceil {
		base = ceil
	}
	return time.Duration(rand.Int64N(int64(base) + 1))
}

// Retry decides whether a failed attempt (attempt 1-based attempts made
// so far) should be retried, and if so sleeps the jittered backoff
// first. It returns false — give up, surface the error — when attempts
// are exhausted, the budget has no token, the context is done, or the
// context's deadline cannot cover the backoff sleep. The jittered sleep
// is what prevents a mass connection break from re-converging into a
// synchronized retry burst.
func (p RetryPolicy) Retry(ctx context.Context, attempt int) bool {
	if attempt >= p.maxAttempts() || ctx.Err() != nil {
		return false
	}
	if !p.Budget.Allow() {
		return false
	}
	d := p.Delay(attempt)
	if dl, ok := ctx.Deadline(); ok && time.Until(dl) <= d {
		return false
	}
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
