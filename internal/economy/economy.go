// Package economy implements the virtual economy of Skute: the per-epoch
// virtual rent of a server (Eq. 1), the board where rents are announced,
// the utility a virtual node earns from queries, and the balance ledger
// that drives the replicate/migrate/suicide decisions (Eq. 5).
//
// Monetary units are abstract: the virtual rent approximates the epoch
// share of the real monthly rent the data owner pays, and utility is query
// traffic "normalized to monetary units" through a configurable value per
// query.
package economy

import (
	"fmt"
	"math"

	"skute/internal/ring"
)

// RentParams hold the normalizing factors of Eq. 1 and the epoch/month
// conversion used to derive the marginal usage price from the real monthly
// rent.
type RentParams struct {
	Alpha          float64 // weight of storage usage in the rent
	Beta           float64 // weight of query load in the rent
	EpochsPerMonth float64 // how many epochs one real billing month spans
	// PriceTick quantizes announced rents to multiples of this amount
	// (0 = continuous prices). Ticked prices give the cheap end of the
	// market a shared minimum, which is what lets the utility floor of
	// Section II-C pin unpopular virtual nodes instead of letting them
	// chase epsilon-cheaper servers forever.
	PriceTick float64
}

// DefaultRentParams returns the parameters used by the paper-scale
// simulations: alpha and beta chosen so that a full server roughly doubles
// its rent, 30 epochs per month (an epoch "day"), and a 0.25 price tick.
func DefaultRentParams() RentParams {
	return RentParams{Alpha: 1, Beta: 1, EpochsPerMonth: 30, PriceTick: 0.25}
}

// Validate reports an error for non-positive or negative parameters.
func (p RentParams) Validate() error {
	if p.Alpha < 0 || p.Beta < 0 {
		return fmt.Errorf("economy: alpha/beta must be non-negative: %+v", p)
	}
	if p.EpochsPerMonth <= 0 {
		return fmt.Errorf("economy: epochs per month must be positive: %+v", p)
	}
	if p.PriceTick < 0 {
		return fmt.Errorf("economy: price tick must be non-negative: %+v", p)
	}
	return nil
}

// UsagePrice is the marginal usage price "up" of Eq. 1: the epoch share of
// the server's real monthly rent.
func (p RentParams) UsagePrice(monthlyRent float64) float64 {
	return monthlyRent / p.EpochsPerMonth
}

// Rent computes Eq. 1: c = up * (1 + alpha*storage_usage + beta*query_load),
// rounded up to the next price tick when one is configured. Usage and load
// are clamped below at 0 so that accounting glitches can never produce a
// rent below the usage price.
func (p RentParams) Rent(usagePrice, storageUsage, queryLoad float64) float64 {
	if storageUsage < 0 {
		storageUsage = 0
	}
	if queryLoad < 0 {
		queryLoad = 0
	}
	c := usagePrice * (1 + p.Alpha*storageUsage + p.Beta*queryLoad)
	if p.PriceTick > 0 {
		c = math.Ceil(c/p.PriceTick) * p.PriceTick
	}
	return c
}

// UtilityParams convert query traffic into monetary utility.
type UtilityParams struct {
	// ValuePerQuery is the utility of one answered query at geographic
	// preference g = 1 (clients next door).
	ValuePerQuery float64
}

// DefaultUtilityParams calibrates the value per query so that a partition
// receiving the mean paper load (3000 queries / 200 partitions = 15
// queries/epoch) roughly pays the cheap server's base rent
// (100$/30 epochs ~ 3.33): slightly popular partitions profit, unpopular
// ones run a deficit — the tension the economy needs.
func DefaultUtilityParams() UtilityParams {
	return UtilityParams{ValuePerQuery: 0.25}
}

// Utility computes u(pop, g): the epoch query load of the partition scaled
// by the geographic preference g of the serving node and normalized to
// monetary units. Replies served near the clients (g -> 1) are worth their
// full value; distant replicas earn proportionally less, mirroring the
// paper's "inversely proportional to the average distance of the client
// locations" utility.
func (p UtilityParams) Utility(queries, g float64) float64 {
	if queries < 0 || g < 0 {
		return 0
	}
	return p.ValuePerQuery * queries * g
}

// Board is the per-cloud blackboard (an elected server in the paper) where
// every server's virtual rent for the next epoch is announced. The board
// also exposes the cheapest announced rent, which the agents use as the
// utility floor that stops unpopular virtual nodes from migrating forever.
type Board struct {
	rents map[ring.ServerID]float64
}

// NewBoard returns an empty board.
func NewBoard() *Board {
	return &Board{rents: make(map[ring.ServerID]float64)}
}

// Announce publishes the rent of a server for the coming epoch.
func (b *Board) Announce(id ring.ServerID, rent float64) {
	b.rents[id] = rent
}

// Forget removes a server (failed or decommissioned) from the board.
func (b *Board) Forget(id ring.ServerID) {
	delete(b.rents, id)
}

// Rent returns the announced rent of the server.
func (b *Board) Rent(id ring.ServerID) (float64, bool) {
	r, ok := b.rents[id]
	return r, ok
}

// Len returns the number of announced servers.
func (b *Board) Len() int { return len(b.rents) }

// MinRent returns the cheapest announced rent, or 0 when the board is
// empty.
func (b *Board) MinRent() float64 {
	if len(b.rents) == 0 {
		return 0
	}
	min := math.Inf(1)
	for _, r := range b.rents {
		if r < min {
			min = r
		}
	}
	return min
}

// Ledger tracks a virtual node's balance history: its cumulative wealth
// and the lengths of the current positive and negative balance runs, which
// implement the "for the last f epochs" hysteresis of Section II-C.
type Ledger struct {
	wealth float64
	posRun int
	negRun int
}

// Push records the net balance of one epoch.
func (l *Ledger) Push(balance float64) {
	l.wealth += balance
	switch {
	case balance > 0:
		l.posRun++
		l.negRun = 0
	case balance < 0:
		l.negRun++
		l.posRun = 0
	default:
		l.posRun = 0
		l.negRun = 0
	}
}

// Wealth returns the cumulative net benefit of the node's lifetime.
func (l *Ledger) Wealth() float64 { return l.wealth }

// NegativeRun returns the number of consecutive trailing epochs with a
// negative balance.
func (l *Ledger) NegativeRun() int { return l.negRun }

// PositiveRun returns the number of consecutive trailing epochs with a
// positive balance.
func (l *Ledger) PositiveRun() int { return l.posRun }

// Reset clears the runs but keeps the wealth; used after a migration or a
// replication so that the fresh placement gets a full observation window
// before the next decision.
func (l *Ledger) Reset() {
	l.posRun = 0
	l.negRun = 0
}
