package economy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRentParamsValidate(t *testing.T) {
	if err := DefaultRentParams().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	bad := []RentParams{
		{Alpha: -1, Beta: 1, EpochsPerMonth: 30},
		{Alpha: 1, Beta: -1, EpochsPerMonth: 30},
		{Alpha: 1, Beta: 1, EpochsPerMonth: 0},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate(%+v): want error", p)
		}
	}
}

func TestUsagePrice(t *testing.T) {
	p := RentParams{Alpha: 1, Beta: 1, EpochsPerMonth: 30}
	if got := p.UsagePrice(100); math.Abs(got-100.0/30) > 1e-12 {
		t.Errorf("UsagePrice(100) = %v", got)
	}
}

func TestRentEquationOne(t *testing.T) {
	p := RentParams{Alpha: 2, Beta: 3, EpochsPerMonth: 30}
	// c = up * (1 + 2*0.5 + 3*0.25) = up * 2.75
	got := p.Rent(4, 0.5, 0.25)
	if math.Abs(got-11) > 1e-12 {
		t.Errorf("Rent = %v, want 11", got)
	}
	// An idle empty server pays exactly the usage price.
	if got := p.Rent(4, 0, 0); got != 4 {
		t.Errorf("idle rent = %v, want 4", got)
	}
	// Negative inputs clamp to zero rather than discounting the rent.
	if got := p.Rent(4, -1, -1); got != 4 {
		t.Errorf("clamped rent = %v, want 4", got)
	}
}

func TestRentMonotonicProperty(t *testing.T) {
	p := DefaultRentParams()
	f := func(su, ql, dsu, dql float64) bool {
		su, ql = math.Abs(math.Mod(su, 10)), math.Abs(math.Mod(ql, 10))
		dsu, dql = math.Abs(math.Mod(dsu, 10)), math.Abs(math.Mod(dql, 10))
		base := p.Rent(3, su, ql)
		return p.Rent(3, su+dsu, ql+dql) >= base-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestUtility(t *testing.T) {
	u := UtilityParams{ValuePerQuery: 0.5}
	if got := u.Utility(100, 1); got != 50 {
		t.Errorf("Utility(100,1) = %v", got)
	}
	if got := u.Utility(100, 0.5); got != 25 {
		t.Errorf("Utility(100,0.5) = %v", got)
	}
	if u.Utility(-5, 1) != 0 || u.Utility(5, -1) != 0 {
		t.Error("negative inputs must yield zero utility")
	}
}

func TestBoard(t *testing.T) {
	b := NewBoard()
	if b.MinRent() != 0 || b.Len() != 0 {
		t.Error("empty board state wrong")
	}
	b.Announce(1, 5)
	b.Announce(2, 3)
	b.Announce(3, 9)
	if b.Len() != 3 {
		t.Errorf("Len = %d", b.Len())
	}
	if r, ok := b.Rent(2); !ok || r != 3 {
		t.Errorf("Rent(2) = %v, %v", r, ok)
	}
	if _, ok := b.Rent(42); ok {
		t.Error("Rent of unknown server reported ok")
	}
	if b.MinRent() != 3 {
		t.Errorf("MinRent = %v", b.MinRent())
	}
	b.Forget(2)
	if b.MinRent() != 5 {
		t.Errorf("MinRent after Forget = %v", b.MinRent())
	}
	// Re-announcing overwrites.
	b.Announce(1, 1)
	if b.MinRent() != 1 {
		t.Errorf("MinRent after re-announce = %v", b.MinRent())
	}
}

func TestLedgerRuns(t *testing.T) {
	var l Ledger
	for i := 0; i < 3; i++ {
		l.Push(-1)
	}
	if l.NegativeRun() != 3 || l.PositiveRun() != 0 {
		t.Errorf("runs = +%d/-%d", l.PositiveRun(), l.NegativeRun())
	}
	l.Push(2)
	if l.NegativeRun() != 0 || l.PositiveRun() != 1 {
		t.Errorf("after positive: +%d/-%d", l.PositiveRun(), l.NegativeRun())
	}
	if math.Abs(l.Wealth()-(-1)) > 1e-12 {
		t.Errorf("wealth = %v, want -1", l.Wealth())
	}
	l.Push(0)
	if l.NegativeRun() != 0 || l.PositiveRun() != 0 {
		t.Error("zero balance must reset both runs")
	}
	l.Push(5)
	l.Reset()
	if l.PositiveRun() != 0 {
		t.Error("Reset did not clear runs")
	}
	if math.Abs(l.Wealth()-4) > 1e-12 {
		t.Errorf("Reset must keep wealth, got %v", l.Wealth())
	}
}

func TestLedgerRunProperty(t *testing.T) {
	// After any sequence, at most one of the runs is non-zero.
	f := func(balances []float64) bool {
		var l Ledger
		for _, b := range balances {
			l.Push(b)
		}
		return l.PositiveRun() == 0 || l.NegativeRun() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkRent(b *testing.B) {
	p := DefaultRentParams()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Rent(3.33, 0.4, 0.7)
	}
}
