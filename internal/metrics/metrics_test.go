package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestSeriesBasics(t *testing.T) {
	var s Series
	if s.Last() != 0 {
		t.Error("Last of empty series != 0")
	}
	s.Add(1)
	s.Add(2)
	s.Add(3)
	if s.Len() != 3 || s.At(1) != 2 || s.Last() != 3 {
		t.Errorf("series state wrong: %+v", s)
	}
}

func TestSeriesWindow(t *testing.T) {
	s := Series{Values: []float64{0, 1, 2, 3, 4}}
	if got := s.Window(1, 3); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("Window(1,3) = %v", got)
	}
	if got := s.Window(-5, 100); len(got) != 5 {
		t.Errorf("clamped window = %v", got)
	}
	if got := s.Window(4, 2); got != nil {
		t.Errorf("inverted window = %v, want nil", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.Stddev-2) > 1e-9 {
		t.Errorf("stddev = %v, want 2", s.Stddev)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
	if s.P50 != 4 {
		t.Errorf("p50 = %v", s.P50)
	}
	if s.P95imp != 9 {
		t.Errorf("p95 = %v", s.P95imp)
	}
	if math.Abs(s.CV()-0.4) > 1e-9 {
		t.Errorf("cv = %v, want 0.4", s.CV())
	}
}

func TestSummarizeEmptyAndZeroMean(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.CV() != 0 {
		t.Errorf("empty summary = %+v", s)
	}
	z := Summarize([]float64{-1, 1})
	if z.CV() != 0 {
		t.Errorf("CV with zero mean = %v, want 0", z.CV())
	}
}

func TestTableSeriesIdentityAndOrder(t *testing.T) {
	tab := NewTable()
	a := tab.Series("alpha")
	b := tab.Series("beta")
	if tab.Series("alpha") != a {
		t.Error("Series not idempotent")
	}
	a.Add(1)
	b.Add(2)
	b.Add(3)
	names := tab.Names()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "beta" {
		t.Errorf("Names = %v", names)
	}
	if tab.Rows() != 2 {
		t.Errorf("Rows = %d", tab.Rows())
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable()
	tab.Series("x").Add(1)
	tab.Series("x").Add(2.5)
	tab.Series("y").Add(7)
	csv := tab.CSV()
	want := "epoch,x,y\n0,1,7\n1,2.5,\n"
	if csv != want {
		t.Errorf("CSV =\n%q\nwant\n%q", csv, want)
	}
}

func TestTableRender(t *testing.T) {
	tab := NewTable()
	for i := 0; i < 10; i++ {
		tab.Series("v").Add(float64(i))
	}
	out := tab.Render(4)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// header + epochs 0,4,8 and the forced last row 9.
	if len(lines) != 5 {
		t.Fatalf("Render(4) lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[len(lines)-1], "9") {
		t.Errorf("last row missing: %q", lines[len(lines)-1])
	}
	if !strings.Contains(lines[0], "epoch") || !strings.Contains(lines[0], "v") {
		t.Errorf("header = %q", lines[0])
	}
	// every < 1 falls back to printing everything.
	if n := len(strings.Split(strings.TrimSpace(tab.Render(0)), "\n")); n != 11 {
		t.Errorf("Render(0) lines = %d, want 11", n)
	}
}

func TestRegistryCountersAndGauges(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("writes_total")
	c.Inc()
	c.Add(4)
	if r.Counter("writes_total") != c {
		t.Error("Counter did not return the existing counter")
	}
	live := int64(7)
	r.Gauge("live_value", func() int64 { return live })
	snap := r.Snapshot()
	if snap["writes_total"] != 5 || snap["live_value"] != 7 {
		t.Errorf("snapshot = %v", snap)
	}
	live = 9
	if r.Snapshot()["live_value"] != 9 {
		t.Error("gauge not sampled live")
	}
	c.Set(100)
	if r.Snapshot()["writes_total"] != 100 {
		t.Error("Set not visible")
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "writes_total" || names[1] != "live_value" {
		t.Errorf("names = %v", names)
	}
}
