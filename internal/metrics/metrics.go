// Package metrics provides the observability toolkit of the repository,
// two halves with distinct consumers:
//
//   - Series, Summary and Table: the time-series and summary-statistics
//     types the simulator and experiment drivers use to capture and render
//     the series behind each figure of the paper (see EXPERIMENTS.md).
//   - Counter, Gauge and Registry: the live operational counters a running
//     node exports — cmd/skuted registers its WAL, checkpoint and recovery
//     counters here and internal/httpadmin serves the registry's snapshot
//     as JSON on GET /counters.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a cumulative int64 metric, safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Set overwrites the counter — for mirrored values maintained elsewhere.
func (c *Counter) Set(v int64) { c.v.Store(v) }

// Value returns the current value.
func (c *Counter) Value() int64 { return c.v.Load() }

// Registry is a named collection of counters and gauges, snapshotted as a
// whole by the admin endpoint. The zero value is not usable; call
// NewRegistry.
type Registry struct {
	mu       sync.Mutex
	names    []string // insertion order, for stable rendering
	counters map[string]*Counter
	gauges   map[string]func() int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]func() int64),
	}
}

// Counter returns (creating on first use) the counter with the name.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{}
	if _, isGauge := r.gauges[name]; !isGauge {
		r.names = append(r.names, name)
	}
	r.counters[name] = c
	return c
}

// Gauge registers a function sampled at every Snapshot — the natural fit
// for values owned by another subsystem (engine byte counts, WAL segment
// counts). Registering a name twice replaces the function.
func (r *Registry) Gauge(name string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, seen := r.gauges[name]; !seen {
		if _, isCounter := r.counters[name]; !isCounter {
			r.names = append(r.names, name)
		}
	}
	r.gauges[name] = fn
}

// Names returns the registered metric names in insertion order.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.names...)
}

// Snapshot samples every counter and gauge. Gauge functions run without
// the registry lock held, so they may themselves take locks.
func (r *Registry) Snapshot() map[string]int64 {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	gauges := make(map[string]func() int64, len(r.gauges))
	for n, fn := range r.gauges {
		gauges[n] = fn
	}
	r.mu.Unlock()

	out := make(map[string]int64, len(counters)+len(gauges))
	for n, c := range counters {
		out[n] = c.Value()
	}
	for n, fn := range gauges {
		out[n] = fn()
	}
	return out
}

// Series is a named sequence of float64 samples indexed by epoch. Appends
// must be in epoch order; gaps are not supported because the simulator
// samples every epoch.
type Series struct {
	Name   string
	Values []float64
}

// Add appends a sample.
func (s *Series) Add(v float64) { s.Values = append(s.Values, v) }

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Values) }

// At returns the sample of the given epoch; it panics on out-of-range
// access like a slice would.
func (s *Series) At(epoch int) float64 { return s.Values[epoch] }

// Last returns the most recent sample, or 0 for an empty series.
func (s *Series) Last() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	return s.Values[len(s.Values)-1]
}

// Window returns the samples in [from, to), clamped to the available
// range.
func (s *Series) Window(from, to int) []float64 {
	if from < 0 {
		from = 0
	}
	if to > len(s.Values) {
		to = len(s.Values)
	}
	if from >= to {
		return nil
	}
	return s.Values[from:to]
}

// Summary holds the usual descriptive statistics of a sample.
type Summary struct {
	N           int
	Mean        float64
	Stddev      float64
	Min         float64
	Max         float64
	P50, P95imp float64 // medians/percentiles by nearest-rank
}

// Summarize computes descriptive statistics; an empty sample yields a zero
// Summary.
func Summarize(xs []float64) Summary {
	var s Summary
	s.N = len(xs)
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	var sq float64
	for _, x := range xs {
		d := x - s.Mean
		sq += d * d
	}
	s.Stddev = math.Sqrt(sq / float64(s.N))
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.P50 = sorted[(s.N-1)/2]
	s.P95imp = sorted[int(math.Ceil(0.95*float64(s.N)))-1]
	return s
}

// CV returns the coefficient of variation (stddev/mean), the simulator's
// balance metric; 0 when the mean is 0.
func (s Summary) CV() float64 {
	if s.Mean == 0 {
		return 0
	}
	return s.Stddev / s.Mean
}

// Table is an ordered collection of equally long series, rendered as CSV
// or an aligned text table with an epoch column. It is the exchange format
// between experiment drivers, the CLI and EXPERIMENTS.md.
type Table struct {
	series []*Series
	byName map[string]*Series
}

// NewTable returns an empty table.
func NewTable() *Table {
	return &Table{byName: make(map[string]*Series)}
}

// Series returns (creating on first use) the series with the name,
// preserving insertion order for rendering.
func (t *Table) Series(name string) *Series {
	if s, ok := t.byName[name]; ok {
		return s
	}
	s := &Series{Name: name}
	t.series = append(t.series, s)
	t.byName[name] = s
	return s
}

// Names returns the series names in insertion order.
func (t *Table) Names() []string {
	out := make([]string, len(t.series))
	for i, s := range t.series {
		out[i] = s.Name
	}
	return out
}

// Rows returns the maximum series length.
func (t *Table) Rows() int {
	n := 0
	for _, s := range t.series {
		if s.Len() > n {
			n = s.Len()
		}
	}
	return n
}

// CSV renders the table with an "epoch" first column. Missing trailing
// samples of shorter series render as empty cells.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString("epoch")
	for _, s := range t.series {
		b.WriteByte(',')
		b.WriteString(s.Name)
	}
	b.WriteByte('\n')
	for r := 0; r < t.Rows(); r++ {
		fmt.Fprintf(&b, "%d", r)
		for _, s := range t.series {
			b.WriteByte(',')
			if r < s.Len() {
				fmt.Fprintf(&b, "%g", s.Values[r])
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Render prints every nth row as an aligned text table, always including
// the last row; n <= 1 prints everything.
func (t *Table) Render(every int) string {
	if every < 1 {
		every = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%8s", "epoch")
	for _, s := range t.series {
		fmt.Fprintf(&b, " %14s", s.Name)
	}
	b.WriteByte('\n')
	rows := t.Rows()
	for r := 0; r < rows; r++ {
		if r%every != 0 && r != rows-1 {
			continue
		}
		fmt.Fprintf(&b, "%8d", r)
		for _, s := range t.series {
			if r < s.Len() {
				fmt.Fprintf(&b, " %14.3f", s.Values[r])
			} else {
				fmt.Fprintf(&b, " %14s", "")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
