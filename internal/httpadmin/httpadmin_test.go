package httpadmin

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"skute/internal/metrics"
	"skute/internal/telemetry"
)

type snapshot struct {
	Name string
	Keys int
}

func testHandler() http.Handler {
	reg := metrics.NewRegistry()
	reg.Counter("checkpoints_total").Add(3)
	reg.Gauge("wal_segments", func() int64 { return 2 })
	trace := TraceFunc(func() any {
		return []map[string]string{{"node": "n0", "kind": "epoch", "detail": "repairs=1"}}
	})
	tel := telemetry.NewRegistry()
	h := tel.Histogram("cluster_get_default_ns")
	for i := 1; i <= 100; i++ {
		h.Record(int64(i) * int64(time.Millisecond))
	}
	tel.Counter("load_errors_total").Add(1)
	return Handler(StatsFunc(func() any { return snapshot{Name: "n0", Keys: 42} }), reg, trace, tel)
}

func TestHealthz(t *testing.T) {
	srv := httptest.NewServer(testHandler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "ok\n" {
		t.Errorf("body = %q", body)
	}
}

func TestStats(t *testing.T) {
	srv := httptest.NewServer(testHandler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
	var got snapshot
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Name != "n0" || got.Keys != 42 {
		t.Errorf("snapshot = %+v", got)
	}
}

func TestUnknownPathAndMethod(t *testing.T) {
	srv := httptest.NewServer(testHandler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path status = %d", resp.StatusCode)
	}
	post, err := http.Post(srv.URL+"/stats", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /stats status = %d", post.StatusCode)
	}
}

func TestCounters(t *testing.T) {
	srv := httptest.NewServer(testHandler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/counters")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got map[string]int64
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got["checkpoints_total"] != 3 || got["wal_segments"] != 2 {
		t.Errorf("counters = %v", got)
	}
}

func TestTrace(t *testing.T) {
	srv := httptest.NewServer(testHandler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got []map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0]["kind"] != "epoch" {
		t.Errorf("trace = %v", got)
	}
}

func TestMetricsJSON(t *testing.T) {
	srv := httptest.NewServer(testHandler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
	var got struct {
		Histograms map[string]telemetry.Stats `json:"histograms"`
		Counters   map[string]int64           `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	st, ok := got.Histograms["cluster_get_default_ns"]
	if !ok {
		t.Fatalf("histogram missing: %v", got.Histograms)
	}
	if st.Count != 100 || st.P50NS <= 0 || st.P99NS < st.P50NS {
		t.Errorf("stats = %+v", st)
	}
	if got.Counters["load_errors_total"] != 1 {
		t.Errorf("counters = %v", got.Counters)
	}
}

func TestMetricsText(t *testing.T) {
	srv := httptest.NewServer(testHandler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics?format=text")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "cluster_get_default_ns") || !strings.Contains(string(body), "p99=") {
		t.Errorf("text body = %q", body)
	}
}

func TestMetricsNilRegistry(t *testing.T) {
	srv := httptest.NewServer(Handler(StatsFunc(func() any { return 1 }), nil, nil, nil))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestTraceNilSource(t *testing.T) {
	srv := httptest.NewServer(Handler(StatsFunc(func() any { return 1 }), nil, nil, nil))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got []any
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("nil-source trace = %v", got)
	}
}

func TestCountersNilRegistry(t *testing.T) {
	srv := httptest.NewServer(Handler(StatsFunc(func() any { return 1 }), nil, nil, nil))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/counters")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got map[string]int64
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("nil registry counters = %v", got)
	}
}

func TestServeLifecycle(t *testing.T) {
	errs := make(chan error, 1)
	srv := Serve("127.0.0.1:0", StatsFunc(func() any { return 1 }), nil, nil, nil, errs)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errs:
		t.Fatalf("unexpected error: %v", err)
	default:
	}
}
