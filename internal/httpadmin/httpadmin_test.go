package httpadmin

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

type snapshot struct {
	Name string
	Keys int
}

func testHandler() http.Handler {
	return Handler(StatsFunc(func() any { return snapshot{Name: "n0", Keys: 42} }))
}

func TestHealthz(t *testing.T) {
	srv := httptest.NewServer(testHandler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "ok\n" {
		t.Errorf("body = %q", body)
	}
}

func TestStats(t *testing.T) {
	srv := httptest.NewServer(testHandler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
	var got snapshot
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Name != "n0" || got.Keys != 42 {
		t.Errorf("snapshot = %+v", got)
	}
}

func TestUnknownPathAndMethod(t *testing.T) {
	srv := httptest.NewServer(testHandler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path status = %d", resp.StatusCode)
	}
	post, err := http.Post(srv.URL+"/stats", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /stats status = %d", post.StatusCode)
	}
}

func TestServeLifecycle(t *testing.T) {
	errs := make(chan error, 1)
	srv := Serve("127.0.0.1:0", StatsFunc(func() any { return 1 }), errs)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errs:
		t.Fatalf("unexpected error: %v", err)
	default:
	}
}
