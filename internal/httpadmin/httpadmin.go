// Package httpadmin exposes a Skute prototype node's observability
// snapshot over HTTP: /healthz for liveness probes and /stats for the
// full JSON snapshot (storage, membership, per-ring SLA compliance).
// cmd/skuted mounts it behind the -admin flag.
package httpadmin

import (
	"encoding/json"
	"net/http"
)

// StatsSource abstracts the node so the package does not import cluster
// types directly (and tests can fake it).
type StatsSource interface {
	// Stats returns any JSON-encodable snapshot.
	Stats() any
}

// StatsFunc adapts a function to StatsSource.
type StatsFunc func() any

// Stats implements StatsSource.
func (f StatsFunc) Stats() any { return f() }

// Handler returns the admin mux: GET /healthz -> 200 "ok", GET /stats ->
// the JSON snapshot.
func Handler(src StatsSource) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(src.Stats()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	return mux
}

// Serve starts the admin endpoint on addr in a goroutine and returns the
// server for shutdown. Errors after startup are delivered to errs if
// non-nil.
func Serve(addr string, src StatsSource, errs chan<- error) *http.Server {
	srv := &http.Server{Addr: addr, Handler: Handler(src)}
	go func() {
		err := srv.ListenAndServe()
		if err != nil && err != http.ErrServerClosed && errs != nil {
			errs <- err
		}
	}()
	return srv
}
