// Package httpadmin exposes a Skute prototype node's observability
// surface over HTTP:
//
//	GET /healthz   liveness probe, 200 "ok"
//	GET /stats     full JSON snapshot (storage, membership, per-ring SLA)
//	GET /counters  live operational counters from a metrics.Registry:
//	               durability (WAL appends and fsyncs, checkpoints
//	               taken, recovery replay sizes) and control plane
//	               (epoch decisions, placement deltas applied vs.
//	               rejected-stale, gossip reconcile rounds)
//	GET /trace     the node's bounded control-plane decision trace as a
//	               JSON array, oldest first — the scenario harness
//	               scrapes and correlates it across nodes on failure
//	GET /metrics   latency histograms (transport RTT, coordinator per-op
//	               per-consistency, WAL fsync) from a telemetry.Registry;
//	               JSON by default, aligned plain text with
//	               ?format=text or an Accept: text/plain header
//
// cmd/skuted mounts it behind the -admin flag. The package deliberately
// depends on interfaces, not cluster types, so tests can fake the node.
package httpadmin

import (
	"encoding/json"
	"net/http"
	"strings"

	"skute/internal/metrics"
	"skute/internal/telemetry"
)

// StatsSource abstracts the node so the package does not import cluster
// types directly (and tests can fake it).
type StatsSource interface {
	// Stats returns any JSON-encodable snapshot.
	Stats() any
}

// StatsFunc adapts a function to StatsSource.
type StatsFunc func() any

// Stats implements StatsSource.
func (f StatsFunc) Stats() any { return f() }

// TraceSource yields the node's decision-trace events (any JSON-encodable
// slice). A nil source serves an empty array.
type TraceSource interface {
	TraceEvents() any
}

// TraceFunc adapts a function to TraceSource.
type TraceFunc func() any

// TraceEvents implements TraceSource.
func (f TraceFunc) TraceEvents() any { return f() }

// Handler returns the admin mux. reg may be nil, in which case /counters
// serves an empty object; trace may be nil, in which case /trace serves
// an empty array; tel may be nil, in which case /metrics serves an empty
// snapshot.
func Handler(src StatsSource, reg *metrics.Registry, trace TraceSource, tel *telemetry.Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, src.Stats())
	})
	mux.HandleFunc("GET /counters", func(w http.ResponseWriter, r *http.Request) {
		snap := map[string]int64{}
		if reg != nil {
			snap = reg.Snapshot()
		}
		writeJSON(w, snap)
	})
	mux.HandleFunc("GET /trace", func(w http.ResponseWriter, r *http.Request) {
		var evs any
		if trace != nil {
			evs = trace.TraceEvents()
		}
		if evs == nil {
			evs = []struct{}{}
		}
		writeJSON(w, evs)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		var snap telemetry.SnapshotStats
		if tel != nil {
			snap = tel.Snapshot()
		}
		if r.URL.Query().Get("format") == "text" ||
			strings.HasPrefix(r.Header.Get("Accept"), "text/plain") {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_, _ = w.Write([]byte(snap.Text()))
			return
		}
		writeJSON(w, snap.JSON())
	})
	return mux
}

// writeJSON renders v as indented JSON.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// Serve starts the admin endpoint on addr in a goroutine and returns the
// server for shutdown. Errors after startup are delivered to errs if
// non-nil.
func Serve(addr string, src StatsSource, reg *metrics.Registry, trace TraceSource, tel *telemetry.Registry, errs chan<- error) *http.Server {
	srv := &http.Server{Addr: addr, Handler: Handler(src, reg, trace, tel)}
	go func() {
		err := srv.ListenAndServe()
		if err != nil && err != http.ErrServerClosed && errs != nil {
			errs <- err
		}
	}()
	return srv
}
