package experiments

import (
	"fmt"

	"skute/internal/sim"
	"skute/internal/topology"
	"skute/internal/workload"
)

// Geo demonstrates the second advantage the paper claims for per-
// application virtual rings (Section I): geographical data placement.
// One application's clients sit almost entirely in Europe while another's
// sit in Asia; Eq. 4 weights candidate servers by client proximity, so
// each application's replicas drift toward its own region without
// affecting the other — impossible if both shared one ring.
func Geo(s Scale) (*Result, error) {
	cfg := baseConfig(s)
	// Two applications with identical SLAs but opposite client bases.
	cfg.Apps = cfg.Apps[:2]
	euClients, err := workload.NewRegionClients(
		[]topology.Location{
			topology.Qualified("ct0", "clients", "x", "x", "x", "x"), // continent ct0 = "Europe"
			topology.Qualified("ct2", "clients", "x", "x", "x", "x"),
		},
		[]float64{95, 5},
	)
	if err != nil {
		return nil, err
	}
	apClients, err := workload.NewRegionClients(
		[]topology.Location{
			topology.Qualified("ct2", "clients", "x", "x", "x", "x"), // continent ct2 = "Asia"
			topology.Qualified("ct0", "clients", "x", "x", "x", "x"),
		},
		[]float64{95, 5},
	)
	if err != nil {
		return nil, err
	}
	cfg.Apps[0].Name, cfg.Apps[0].Clients, cfg.Apps[0].LoadShare = "eu-app", euClients, 0.5
	cfg.Apps[1].Name, cfg.Apps[1].Clients, cfg.Apps[1].LoadShare = "ap-app", apClients, 0.5
	// Geography only matters economically when query utility is material:
	// run a hot, steady load so a replica far from the clients visibly
	// underearns its near siblings (Eq. 4 routing + utility).
	if s == Paper {
		cfg.Profile = workload.Constant(30000)
	} else {
		cfg.Profile = workload.Constant(3000)
	}

	c, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{ID: "geo", Title: "Geographic placement: replicas drift toward each application's clients"}
	res.Table = newFigTable()

	epochs := horizon(s, 240)
	c.Run(epochs, func(c *sim.Cloud) {
		for ai, frac := range regionFractions(c) {
			res.Table.Series(fmt.Sprintf("%s_home_fraction", cfg.Apps[ai].Name)).Add(frac)
		}
	})

	final := regionFractions(c)
	// The SLA itself caps the home fraction: a k-replica partition must
	// spread its replicas over k continents, so at most 1/k of them can
	// sit with the clients (50% for eu-app's 2 replicas, 33% for ap-app's
	// 3). A uniform placement over 5 continents would give ~20%.
	maxEU := 1.0 / float64(cfg.Apps[0].TargetReplicas)
	maxAP := 1.0 / float64(cfg.Apps[1].TargetReplicas)
	res.notef("replicas on the home continent: eu-app %.0f%% (SLA cap %.0f%%), ap-app %.0f%% (cap %.0f%%); uniform placement would give ~20%%",
		final[0]*100, maxEU*100, final[1]*100, maxAP*100)
	res.fact("eu_home_fraction", final[0])
	res.fact("ap_home_fraction", final[1])
	res.fact("eu_home_cap", maxEU)
	res.fact("ap_home_cap", maxAP)
	viol := 0
	for _, a := range c.AvailabilityStats() {
		viol += a.Violations
	}
	res.fact("final_violations", float64(viol))
	res.notef("availability violations at the end: %d (geo attraction must not break the SLAs)", viol)
	return res, nil
}

// regionFractions reports, per app, the fraction of its replicas hosted
// on the app's home continent (ct0 for app 0, ct2 for app 1).
func regionFractions(c *sim.Cloud) []float64 {
	homes := []string{"ct0", "ct2"}
	out := make([]float64, 2)
	counts := c.ReplicaContinents()
	for ai := range out {
		var home, total float64
		for cont, n := range counts[ai] {
			total += float64(n)
			if cont == homes[ai] {
				home += float64(n)
			}
		}
		if total > 0 {
			out[ai] = home / total
		}
	}
	return out
}
