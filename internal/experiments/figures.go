package experiments

import (
	"fmt"

	"skute/internal/sim"
	"skute/internal/workload"
)

// Fig2 reproduces "Replication process at startup: the number of virtual
// nodes per server" (Section III-B). Starting from one replica per
// partition, the virtual nodes replicate up to their SLAs and then migrate
// toward cheap servers until the system reaches equilibrium, where fewer
// virtual nodes reside at expensive (125$) servers than at cheap (100$)
// ones.
func Fig2(s Scale) (*Result, error) {
	cfg := baseConfig(s)
	c, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{ID: "fig2", Title: "Startup replication and convergence: virtual nodes per server"}
	res.Table = newFigTable()
	epochs := horizon(s, 300)
	c.Run(epochs, func(c *sim.Cloud) {
		vc := c.VNodeCounts()
		res.Table.Series("vnodes_per_cheap_server").Add(vc.Cheap.Mean)
		res.Table.Series("vnodes_per_expensive_server").Add(vc.Expensive.Mean)
		total := 0
		for _, n := range c.VNodesPerRing() {
			total += n
		}
		res.Table.Series("vnodes_total").Add(float64(total))
	})

	vc := c.VNodeCounts()
	res.notef("equilibrium vnodes/server: cheap %.2f vs expensive %.2f (paper: fewer vnodes on expensive servers)",
		vc.Cheap.Mean, vc.Expensive.Mean)
	res.fact("vnodes_cheap_mean", vc.Cheap.Mean)
	res.fact("vnodes_expensive_mean", vc.Expensive.Mean)
	viol := 0
	for i, a := range c.AvailabilityStats() {
		res.notef("ring %d: %d/%d partitions below threshold %.1f at the end", i, a.Violations, a.Partitions, a.Threshold)
		viol += a.Violations
	}
	res.fact("final_violations", float64(viol))
	ops := c.Ops()
	res.notef("ops: %d replications, %d migrations, %d suicides", ops.Replications, ops.Migrations, ops.Suicides)
	return res, nil
}

// Fig3 reproduces "Total (per ring) number of virtual nodes upon upgrades
// and failures" (Section III-C): 20 new servers join at epoch 100 and 20
// servers fail at epoch 200 (scaled proportionally at Quick). The vnode
// totals stay flat through the upgrade and recover after the failure.
func Fig3(s Scale) (*Result, error) {
	cfg := baseConfig(s)
	epochs := horizon(s, 300)
	upgrade, failure := epochs/3, 2*epochs/3
	count := 20
	if s == Quick {
		count = 3
	}
	cfg.Events = []sim.Event{
		{Epoch: upgrade, Kind: sim.AddServers, Count: count},
		{Epoch: failure, Kind: sim.FailServers, Count: count},
	}
	c, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{ID: "fig3", Title: "Per-ring virtual-node totals under server upgrades and failures"}
	res.Table = newFigTable()

	var atUpgrade, postUpgrade, atFailure, final []int
	c.Run(epochs, func(c *sim.Cloud) {
		per := c.VNodesPerRing()
		for i, n := range per {
			res.Table.Series(ringSeries(cfg, i)).Add(float64(n))
		}
		res.Table.Series("alive_servers").Add(float64(c.AliveServers()))
		// Events apply at the start of the step that advances Epoch()
		// past their epoch, so Epoch()==upgrade is the last pre-upgrade
		// observation and Epoch()==failure+1 the first post-failure one.
		switch c.Epoch() {
		case upgrade:
			atUpgrade = per
		case failure:
			postUpgrade = per
		case failure + 1:
			atFailure = per
		case epochs:
			final = per
		}
	})

	for i := range cfg.Apps {
		res.notef("ring %d vnodes: %d at upgrade -> %d before failure (flat), %d right after failure -> %d recovered",
			i, atUpgrade[i], postUpgrade[i], atFailure[i], final[i])
		res.fact(fmt.Sprintf("ring%d_at_upgrade", i), float64(atUpgrade[i]))
		res.fact(fmt.Sprintf("ring%d_pre_failure", i), float64(postUpgrade[i]))
		res.fact(fmt.Sprintf("ring%d_post_failure", i), float64(atFailure[i]))
		res.fact(fmt.Sprintf("ring%d_final", i), float64(final[i]))
	}
	res.notef("lost partitions: %d (partitions whose whole replica set was hit by the simultaneous failure)", c.Ops().LostPartitions)
	res.fact("lost_partitions", float64(c.Ops().LostPartitions))
	viol := 0
	for i, a := range c.AvailabilityStats() {
		res.notef("ring %d final violations: %d/%d", i, a.Violations, a.Partitions)
		viol += a.Violations
	}
	res.fact("final_violations", float64(viol))
	return res, nil
}

// Fig4 reproduces "Average query load per virtual ring per server over
// time" (Section III-D): the mean rate climbs from 3000 to 183000
// queries/epoch in 25 epochs and decays back over 250 epochs, with 4/7,
// 2/7 and 1/7 of the load attracted by applications 1, 2 and 3. Per-server
// load stays balanced (bounded coefficient of variation) throughout.
func Fig4(s Scale) (*Result, error) {
	cfg := baseConfig(s)
	var prof workload.Slashdot
	var epochs int
	if s == Paper {
		prof = workload.PaperSlashdot()
		epochs = 400
	} else {
		prof = workload.Slashdot{Base: 300, Peak: 18300, StartEpoch: 40, RampEpochs: 10, DecayEpochs: 60}
		epochs = 130
	}
	cfg.Profile = prof
	c, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{ID: "fig4", Title: "Average query load per virtual ring per server through a Slashdot spike"}
	res.Table = newFigTable()

	var peakCV float64
	c.Run(epochs, func(c *sim.Cloud) {
		stats := c.RingLoadStats()
		for i, st := range stats {
			res.Table.Series(ringSeries(cfg, i) + "_load").Add(st.Mean)
		}
		res.Table.Series("total_rate").Add(prof.Rate(c.Epoch() - 1))
		cv := stats[0].CV()
		res.Table.Series("ring0_load_cv").Add(cv)
		if cv > peakCV && c.Epoch() > prof.StartEpoch {
			peakCV = cv
		}
	})

	res.notef("peak per-server load CV of ring 0 during/after the spike: %.2f (balanced if bounded)", peakCV)
	stats := c.RingLoadStats()
	if stats[2].Mean > 0 {
		res.notef("final mean load ratio ring0:ring1:ring2 = %.1f:%.1f:1 (paper splits load 4:2:1)",
			stats[0].Mean/stats[2].Mean, stats[1].Mean/stats[2].Mean)
	}
	ops := c.Ops()
	res.notef("spike handled with %d replications and %d suicides in total", ops.Replications, ops.Suicides)
	return res, nil
}

// Fig5 reproduces "Storage saturation: insert failures" (Section III-E):
// a constant Pareto-distributed insert stream saturates the cloud; the
// economy keeps storage balanced so the first insert failures appear only
// near full utilization (~96% in the paper).
func Fig5(s Scale) (*Result, error) {
	cfg := baseConfig(s)
	var maxEpochs int
	if s == Paper {
		// Shrink per-server storage so saturation arrives within a
		// tractable number of epochs while keeping 200 servers; the
		// paper's absolute capacities are not specified. The split cap
		// drops to 128 MB so that split children (~64 MB) always fit the
		// 100 MB/epoch migration budget and stay mobile.
		cfg.Capacities.Storage = 2 << 30
		cfg.MaxPartitionSize = 128 << 20
		cfg.Inserts = workload.PaperInsertStream()
		maxEpochs = 400
	} else {
		cfg.Inserts = workload.InsertStream{PerEpoch: 200, ValueSize: 64 << 10}
		maxEpochs = 220
	}
	c, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{ID: "fig5", Title: "Storage saturation: used capacity and insert failures"}
	res.Table = newFigTable()

	firstFailureUtil := -1.0
	var prevFailures int64
	for i := 0; i < maxEpochs; i++ {
		c.Step()
		st := c.StorageStats()
		res.Table.Series("used_fraction").Add(st.UsedFraction)
		res.Table.Series("insert_failures").Add(float64(st.InsertFailures))
		res.Table.Series("usage_cv").Add(st.PerServerUsage.CV())
		if st.InsertFailures > prevFailures && firstFailureUtil < 0 {
			firstFailureUtil = st.UsedFraction
		}
		prevFailures = st.InsertFailures
		if st.UsedFraction > 0.99 {
			break
		}
	}

	st := c.StorageStats()
	if firstFailureUtil >= 0 {
		res.notef("first insert failure at %.1f%% total utilization (paper: no losses up to ~96%%)", firstFailureUtil*100)
	} else {
		res.notef("no insert failures up to %.1f%% total utilization", st.UsedFraction*100)
	}
	res.notef("final: %.1f%% used, %d/%d inserts failed, per-server usage CV %.2f",
		st.UsedFraction*100, st.InsertFailures, st.InsertAttempts, st.PerServerUsage.CV())
	return res, nil
}

// ringSeries names a ring's series after its application.
func ringSeries(cfg sim.Config, i int) string {
	return cfg.Apps[i].Name
}
