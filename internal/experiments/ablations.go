package experiments

import (
	"skute/internal/sim"
	"skute/internal/topology"
)

// AblationPlacement compares the virtual economy against the
// RandomPlacement baseline at identical seeds and horizons: both maintain
// the SLA replica counts, but the economy concentrates replicas on cheap
// servers, lowering the data owner's real monthly bill, while random
// placement rents servers indiscriminately.
func AblationPlacement(s Scale) (*Result, error) {
	epochs := horizon(s, 200)
	res := &Result{ID: "ablation-placement", Title: "Economy vs. random placement: monthly cost and SLA compliance"}
	res.Table = newFigTable()

	run := func(policy sim.PolicyKind, label string) (*sim.Cloud, error) {
		cfg := baseConfig(s)
		cfg.Policy = policy
		c, err := sim.New(cfg)
		if err != nil {
			return nil, err
		}
		c.Run(epochs, func(c *sim.Cloud) {
			res.Table.Series("cost_" + label).Add(c.MonthlyCost())
		})
		return c, nil
	}

	eco, err := run(sim.Economic, "economy")
	if err != nil {
		return nil, err
	}
	rnd, err := run(sim.RandomPlacement, "random")
	if err != nil {
		return nil, err
	}

	ecoCost, rndCost := eco.MonthlyCost(), rnd.MonthlyCost()
	res.notef("final monthly cost: economy %.0f$ vs random %.0f$", ecoCost, rndCost)
	// Per-replica economics: the economy may keep more replicas (popular
	// partitions replicate for profit), so compare the price mix too.
	ev, rv := eco.VNodeCounts(), rnd.VNodeCounts()
	res.notef("vnodes per cheap/expensive server: economy %.1f/%.1f, random %.1f/%.1f",
		ev.Cheap.Mean, ev.Expensive.Mean, rv.Cheap.Mean, rv.Expensive.Mean)
	for i, a := range eco.AvailabilityStats() {
		b := rnd.AvailabilityStats()[i]
		res.notef("ring %d violations: economy %d/%d, random %d/%d", i, a.Violations, a.Partitions, b.Violations, b.Partitions)
	}
	return res, nil
}

// AblationDiversity compares diversity-aware placement (Eq. 2/Eq. 3)
// against the CountOnly baseline under a correlated zone failure: a whole
// datacenter goes down mid-run. Count-only placement satisfies replica
// counts but co-locates replicas, so the zone failure destroys partitions
// or leaves them exposed; diversity-aware placement spreads replicas so
// the same failure loses nothing.
func AblationDiversity(s Scale) (*Result, error) {
	epochs := horizon(s, 200)
	failAt := epochs / 2
	res := &Result{ID: "ablation-diversity", Title: "Diversity-aware vs. count-only placement under a datacenter failure"}
	res.Table = newFigTable()

	run := func(policy sim.PolicyKind, label string) (*sim.Cloud, error) {
		cfg := baseConfig(s)
		cfg.Policy = policy
		cfg.Events = []sim.Event{{Epoch: failAt, Kind: sim.FailZone, Zone: topology.Datacenter}}
		c, err := sim.New(cfg)
		if err != nil {
			return nil, err
		}
		c.Run(epochs, func(c *sim.Cloud) {
			viol := 0
			for _, a := range c.AvailabilityStats() {
				viol += a.Violations
			}
			res.Table.Series("violations_" + label).Add(float64(viol))
			res.Table.Series("lost_" + label).Add(float64(c.Ops().LostPartitions))
		})
		return c, nil
	}

	div, err := run(sim.Economic, "diversity")
	if err != nil {
		return nil, err
	}
	cnt, err := run(sim.CountOnly, "countonly")
	if err != nil {
		return nil, err
	}

	res.notef("partitions lost to the datacenter failure: diversity-aware %d, count-only %d",
		div.Ops().LostPartitions, cnt.Ops().LostPartitions)
	dv, cv := 0, 0
	for _, a := range div.AvailabilityStats() {
		dv += a.Violations
	}
	for _, a := range cnt.AvailabilityStats() {
		cv += a.Violations
	}
	res.notef("final availability violations: diversity-aware %d, count-only %d", dv, cv)
	return res, nil
}

// AblationFloor measures the anti-churn effect of the utility floor
// (Section II-C: "sets lowest utility value to the current lowest virtual
// rent price to prevent unpopular nodes from migrating indefinitely"):
// with the floor disabled, unpopular virtual nodes run perpetual deficits
// and keep migrating toward ever-cheaper servers.
func AblationFloor(s Scale) (*Result, error) {
	epochs := horizon(s, 200)
	res := &Result{ID: "ablation-floor", Title: "Utility floor on/off: migration churn of unpopular virtual nodes"}
	res.Table = newFigTable()

	run := func(noFloor bool, label string) (*sim.Cloud, error) {
		cfg := baseConfig(s)
		cfg.Agent.NoUtilityFloor = noFloor
		c, err := sim.New(cfg)
		if err != nil {
			return nil, err
		}
		c.Run(epochs, func(c *sim.Cloud) {
			res.Table.Series("migrations_" + label).Add(float64(c.Ops().Migrations))
		})
		return c, nil
	}

	floored, err := run(false, "floor")
	if err != nil {
		return nil, err
	}
	unfloored, err := run(true, "nofloor")
	if err != nil {
		return nil, err
	}

	fm, um := floored.Ops().Migrations, unfloored.Ops().Migrations
	res.notef("total migrations over %d epochs: floor %d vs no floor %d", epochs, fm, um)
	// Churn rate over the second half, after startup transients.
	half := epochs / 2
	fRate := float64(fm-int64(res.Table.Series("migrations_floor").At(half))) / float64(epochs-half)
	uRate := float64(um-int64(res.Table.Series("migrations_nofloor").At(half))) / float64(epochs-half)
	res.notef("steady-state migrations/epoch: floor %.2f vs no floor %.2f", fRate, uRate)
	return res, nil
}
