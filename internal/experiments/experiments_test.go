package experiments

import (
	"fmt"
	"strings"
	"testing"
)

func TestIDsAndDispatch(t *testing.T) {
	ids := IDs()
	if len(ids) != 8 {
		t.Fatalf("IDs = %v", ids)
	}
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatal("IDs not sorted")
		}
	}
	if _, err := Run("nope", Quick); err == nil {
		t.Error("unknown id: want error")
	}
}

func TestScaleString(t *testing.T) {
	if Quick.String() != "quick" || Paper.String() != "paper" {
		t.Error("scale strings wrong")
	}
}

func TestFig2Quick(t *testing.T) {
	res, err := Fig2(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.Rows() == 0 || len(res.Notes) == 0 {
		t.Fatal("empty result")
	}
	cheap := res.Table.Series("vnodes_per_cheap_server")
	exp := res.Table.Series("vnodes_per_expensive_server")
	if cheap.Last() <= exp.Last() {
		t.Errorf("cheap servers host %.2f vnodes, expensive %.2f; want cheap > expensive",
			cheap.Last(), exp.Last())
	}
	// The vnode total must grow from startup (replication) and then
	// stabilize: the last quarter should move less than the first quarter.
	tot := res.Table.Series("vnodes_total")
	n := tot.Len()
	firstDelta := tot.At(n/4) - tot.At(0)
	lastDelta := tot.At(n-1) - tot.At(3*n/4)
	if firstDelta <= 0 {
		t.Errorf("no startup replication: delta %v", firstDelta)
	}
	if abs(lastDelta) >= firstDelta {
		t.Errorf("no convergence: early delta %v, late delta %v", firstDelta, lastDelta)
	}
}

func TestFig3Quick(t *testing.T) {
	res, err := Fig3(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.Rows() == 0 {
		t.Fatal("empty table")
	}
	alive := res.Table.Series("alive_servers")
	if alive.At(0) != 20 {
		t.Errorf("initial alive = %v", alive.At(0))
	}
	if alive.Last() != 20+3-3 {
		t.Errorf("final alive = %v, want 20", alive.Last())
	}
	// Ring totals must recover to at least their SLA baselines.
	for _, app := range []string{"app1", "app2", "app3"} {
		s := res.Table.Series(app)
		if s.Len() == 0 {
			t.Fatalf("missing series for %s", app)
		}
	}
	// A simultaneous 3-of-20 server failure can statistically wipe both
	// replicas of a 2-replica partition; tolerate that tail but nothing
	// systematic.
	if lost := res.Facts["lost_partitions"]; lost > 2 {
		t.Errorf("lost %v partitions, want <= 2 (statistical tail only)", lost)
	}
	// Fig. 3's headline: vnode totals recover after the failure. Compare
	// per-ring final counts to pre-failure counts, excluding rings that
	// lost partitions outright.
	if res.Facts["lost_partitions"] == 0 {
		for i := 0; i < 3; i++ {
			pre := res.Facts[fmt.Sprintf("ring%d_pre_failure", i)]
			fin := res.Facts[fmt.Sprintf("ring%d_final", i)]
			if fin < pre*0.9 {
				t.Errorf("ring %d did not recover: %v -> %v vnodes", i, pre, fin)
			}
		}
	}
	if strings.TrimSpace(strings.Join(res.Notes, "")) == "" {
		t.Error("no notes produced")
	}
}

func TestFig4Quick(t *testing.T) {
	res, err := Fig4(Quick)
	if err != nil {
		t.Fatal(err)
	}
	load0 := res.Table.Series("app1_load")
	rate := res.Table.Series("total_rate")
	if load0.Len() == 0 || rate.Len() != load0.Len() {
		t.Fatal("series shape wrong")
	}
	// Per-server ring-0 load must track the spike: higher at the peak
	// than at the start.
	peakEpoch := 0
	for i := 0; i < rate.Len(); i++ {
		if rate.At(i) > rate.At(peakEpoch) {
			peakEpoch = i
		}
	}
	if load0.At(peakEpoch) <= load0.At(5) {
		t.Errorf("ring0 load at peak %.1f <= pre-spike %.1f", load0.At(peakEpoch), load0.At(5))
	}
	// Load balance: CV stays bounded through the spike.
	cv := res.Table.Series("ring0_load_cv")
	for i := peakEpoch; i < cv.Len(); i++ {
		if cv.At(i) > 3.5 {
			t.Errorf("epoch %d: ring0 load CV %.2f, load not balanced", i, cv.At(i))
		}
	}
}

func TestFig5Quick(t *testing.T) {
	res, err := Fig5(Quick)
	if err != nil {
		t.Fatal(err)
	}
	used := res.Table.Series("used_fraction")
	fails := res.Table.Series("insert_failures")
	if used.Len() == 0 {
		t.Fatal("empty series")
	}
	// The cloud fills steadily; replica suicides may release a little
	// storage, but never more than a few percent at once.
	for i := 1; i < used.Len(); i++ {
		if used.At(i) < used.At(i-1)-0.05 {
			t.Fatalf("used fraction dropped at %d: %v -> %v", i, used.At(i-1), used.At(i))
		}
	}
	if used.Last() <= used.At(0) {
		t.Fatalf("cloud did not fill: %v -> %v", used.At(0), used.Last())
	}
	// Failures only appear near saturation (the Fig. 5 shape; the knee's
	// exact position varies with scale — see EXPERIMENTS.md).
	for i := 0; i < used.Len(); i++ {
		if used.At(i) < 0.7 && fails.At(i) > 0 {
			t.Errorf("insert failure at only %.1f%% utilization", used.At(i)*100)
			break
		}
	}
	if used.Last() < 0.5 {
		t.Errorf("saturation run ended at %.1f%% used; expected to fill the cloud", used.Last()*100)
	}
}

func TestAblationPlacementQuick(t *testing.T) {
	res, err := AblationPlacement(Quick)
	if err != nil {
		t.Fatal(err)
	}
	eco := res.Table.Series("cost_economy")
	rnd := res.Table.Series("cost_random")
	if eco.Len() == 0 || rnd.Len() != eco.Len() {
		t.Fatal("cost series wrong")
	}
	if eco.Last() > rnd.Last() {
		t.Errorf("economy cost %.0f$ > random %.0f$; economy should be cheaper or equal", eco.Last(), rnd.Last())
	}
}

func TestAblationDiversityQuick(t *testing.T) {
	res, err := AblationDiversity(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.Series("lost_diversity").Last() != 0 {
		t.Errorf("diversity-aware placement lost %v partitions", res.Table.Series("lost_diversity").Last())
	}
	// The count-only baseline must end with at least as many violations or
	// losses as the diversity-aware system.
	dl := res.Table.Series("lost_diversity").Last()
	cl := res.Table.Series("lost_countonly").Last()
	dv := res.Table.Series("violations_diversity").Last()
	cv := res.Table.Series("violations_countonly").Last()
	if cl+cv < dl+dv {
		t.Errorf("count-only (%v lost, %v violations) beat diversity (%v, %v)", cl, cv, dl, dv)
	}
}

func TestGeoQuick(t *testing.T) {
	res, err := Geo(Quick)
	if err != nil {
		t.Fatal(err)
	}
	// Each app's replicas must gravitate toward its home continent well
	// above the uniform 20%, without breaking any SLA.
	if eu := res.Facts["eu_home_fraction"]; eu < 0.25 {
		t.Errorf("eu-app home fraction = %.2f, want > 0.25", eu)
	}
	if ap := res.Facts["ap_home_fraction"]; ap < 0.25 {
		t.Errorf("ap-app home fraction = %.2f, want > 0.25", ap)
	}
	if v := res.Facts["final_violations"]; v != 0 {
		t.Errorf("geo attraction broke %v SLAs", v)
	}
	// The series must exist for the whole horizon (the transient start can
	// legitimately sit above the SLA-capped equilibrium, so no
	// monotonicity is asserted).
	if res.Table.Series("eu-app_home_fraction").Len() == 0 {
		t.Error("missing home-fraction series")
	}
}

func TestAblationFloorQuick(t *testing.T) {
	res, err := AblationFloor(Quick)
	if err != nil {
		t.Fatal(err)
	}
	fm := res.Table.Series("migrations_floor").Last()
	um := res.Table.Series("migrations_nofloor").Last()
	// The floor's anti-churn effect is small in this reproduction (see
	// EXPERIMENTS.md); assert the floor never makes churn meaningfully
	// worse rather than a strict ordering that noise can flip.
	if um < fm*0.9 {
		t.Errorf("no-floor migrations %v < 90%% of floored %v; floor unexpectedly harmful", um, fm)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
