package snapshot

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func shardsFor(n int, tag string) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("%s-shard-%d-payload", tag, i))
	}
	return out
}

func TestWriteLatestRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "snaps")
	shards := shardsFor(8, "v1")
	shards[3] = nil // empty shards are legal
	info, err := Write(dir, 42, shards)
	if err != nil {
		t.Fatalf("Write: %v", err)
	}
	if info.Seq != 42 || info.Bytes <= 0 {
		t.Fatalf("Write info = %+v", info)
	}

	got, loaded, err := Latest(dir)
	if err != nil {
		t.Fatalf("Latest: %v", err)
	}
	if got.Seq != 42 {
		t.Errorf("Latest seq = %d", got.Seq)
	}
	if len(loaded) != len(shards) {
		t.Fatalf("loaded %d shards, want %d", len(loaded), len(shards))
	}
	for i := range shards {
		if !bytes.Equal(loaded[i], shards[i]) {
			t.Errorf("shard %d = %q, want %q", i, loaded[i], shards[i])
		}
	}
}

func TestLatestPicksNewest(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "snaps")
	if _, err := Write(dir, 10, shardsFor(4, "old")); err != nil {
		t.Fatal(err)
	}
	if _, err := Write(dir, 20, shardsFor(4, "new")); err != nil {
		t.Fatal(err)
	}
	info, shards, err := Latest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.Seq != 20 || string(shards[0]) != "new-shard-0-payload" {
		t.Fatalf("Latest = seq %d shard0 %q", info.Seq, shards[0])
	}
}

func TestCorruptNewestFallsBackToOlder(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "snaps")
	if _, err := Write(dir, 10, shardsFor(4, "old")); err != nil {
		t.Fatal(err)
	}
	newest, err := Write(dir, 20, shardsFor(4, "new"))
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte: the shard CRC must reject the file.
	data, err := os.ReadFile(newest.Path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0xFF
	if err := os.WriteFile(newest.Path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	info, shards, err := Latest(dir)
	if err != nil {
		t.Fatalf("Latest with corrupt newest: %v", err)
	}
	if info.Seq != 10 || string(shards[0]) != "old-shard-0-payload" {
		t.Fatalf("fallback = seq %d shard0 %q", info.Seq, shards[0])
	}
}

func TestCorruptHeaderRejected(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "snaps")
	info, err := Write(dir, 7, shardsFor(2, "x"))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(info.Path)
	data[9] ^= 0xFF // inside the seq field, guarded by the header CRC
	os.WriteFile(info.Path, data, 0o644)
	if _, _, err := Latest(dir); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("Latest on corrupt header = %v, want ErrNoSnapshot", err)
	}
}

func TestTruncatedFileRejected(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "snaps")
	info, err := Write(dir, 7, shardsFor(4, "x"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(info.Path, info.Bytes-5); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Latest(dir); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("Latest on truncated file = %v, want ErrNoSnapshot", err)
	}
}

func TestEmptyDirIsErrNoSnapshot(t *testing.T) {
	if _, _, err := Latest(filepath.Join(t.TempDir(), "missing")); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("Latest on missing dir = %v, want ErrNoSnapshot", err)
	}
}

func TestPruneKeepsNewestGenerations(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "snaps")
	for seq := uint64(1); seq <= 5; seq++ {
		if _, err := Write(dir, seq*10, shardsFor(2, "gen")); err != nil {
			t.Fatal(err)
		}
	}
	retained, err := Prune(dir, KeepGenerations)
	if err != nil {
		t.Fatal(err)
	}
	infos, err := List(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != KeepGenerations {
		t.Fatalf("kept %d snapshots, want %d", len(infos), KeepGenerations)
	}
	if infos[len(infos)-1].Seq != 50 {
		t.Errorf("newest kept = %d, want 50", infos[len(infos)-1].Seq)
	}
	// Prune reports exactly the generations it left on disk, oldest
	// first — the anchor the store's log truncation relies on.
	if len(retained) != len(infos) || retained[0].Seq != infos[0].Seq || retained[len(retained)-1].Seq != 50 {
		t.Errorf("Prune retained %+v, disk has %+v", retained, infos)
	}
	// No temp files left behind.
	tmps, _ := filepath.Glob(filepath.Join(dir, ".snap-*.tmp"))
	if len(tmps) != 0 {
		t.Errorf("leftover temp files: %v", tmps)
	}
}

func TestCrashLeavesPreviousSnapshotIntact(t *testing.T) {
	// Simulate a crash mid-write: a partial temp file must be invisible to
	// Latest and not shadow the good snapshot.
	dir := filepath.Join(t.TempDir(), "snaps")
	if _, err := Write(dir, 10, shardsFor(2, "good")); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, ".snap-123.tmp"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	info, _, err := Latest(dir)
	if err != nil || info.Seq != 10 {
		t.Fatalf("Latest = %+v, %v", info, err)
	}
	// The next successful checkpoint sweeps the crashed attempt's temp
	// file instead of leaking a full engine image per crash.
	if _, err := Write(dir, 20, shardsFor(2, "next")); err != nil {
		t.Fatal(err)
	}
	if tmps, _ := filepath.Glob(filepath.Join(dir, ".snap-*.tmp")); len(tmps) != 0 {
		t.Errorf("stale temp files not swept: %v", tmps)
	}
}
