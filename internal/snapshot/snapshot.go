// Package snapshot reads and writes the point-in-time checkpoint files of
// the Skute storage engine. A snapshot captures every shard of the engine
// at a write-ahead-log sequence number: restoring the snapshot and
// replaying only the log records after that sequence number reproduces the
// engine, which is what keeps a node's restart time proportional to its
// live data instead of its whole write history (see DESIGN.md,
// "Durability").
//
// Snapshot files are versioned, checksummed and crash-safe: they are
// written to a temporary file, fsynced, and atomically renamed into place
// as snap-<seq>.skt, so a crash mid-checkpoint leaves the previous
// snapshot untouched. Every shard payload carries its own CRC, computed
// and verified concurrently via internal/parallel; a corrupt newest
// snapshot makes Latest fall back to the next older one.
//
// File layout (little endian):
//
//	magic   uint32  0x534b534e ("SKSN")
//	version uint32  format version (currently 1)
//	seq     uint64  WAL sequence number the snapshot covers
//	nshards uint32  number of shard payloads
//	crc32   uint32  IEEE CRC of the 20 header bytes above
//	then, per shard:
//	  length uint32
//	  crc32  uint32  IEEE CRC of the payload
//	  payload []byte
package snapshot

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"skute/internal/fsutil"
	"skute/internal/parallel"
)

const magic uint32 = 0x534b534e

// Version is the current snapshot format version.
const Version = 1

const headerSize = 24
const shardHeaderSize = 8

// MaxShardSize bounds one shard payload (1 GiB); larger lengths found
// while reading are treated as corruption.
const MaxShardSize = 1 << 30

// ErrNoSnapshot is returned by Latest when the directory holds no valid
// snapshot.
var ErrNoSnapshot = errors.New("snapshot: none found")

// KeepGenerations is how many snapshot generations a checkpoint retains:
// the one it just wrote plus one fallback in case the newest is later
// found corrupt.
const KeepGenerations = 2

// Info describes one snapshot file.
type Info struct {
	Seq   uint64 // WAL sequence number the snapshot covers
	Path  string
	Bytes int64 // file size
}

// fileName returns the snapshot file name for a sequence number.
func fileName(seq uint64) string {
	return fmt.Sprintf("snap-%020d.skt", seq)
}

// parseName extracts the sequence number from a snapshot file name.
func parseName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, ".skt") {
		return 0, false
	}
	n, err := strconv.ParseUint(name[len("snap-"):len(name)-len(".skt")], 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// List returns the snapshot files of dir in ascending sequence order,
// without validating their contents. A missing directory is an empty
// list.
func List(dir string) ([]Info, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("snapshot: read dir %s: %w", dir, err)
	}
	var infos []Info
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		seq, ok := parseName(e.Name())
		if !ok {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			continue
		}
		infos = append(infos, Info{Seq: seq, Path: filepath.Join(dir, e.Name()), Bytes: fi.Size()})
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Seq < infos[j].Seq })
	return infos, nil
}

// Write atomically writes a snapshot of the shard payloads covering the
// given WAL sequence number. Shard CRCs are computed concurrently. The
// returned Info points at the renamed final file. Write only writes:
// retention is the caller's separate Prune call, so a retention failure
// can never masquerade as a failed write of a snapshot that is in fact
// durably on disk.
func Write(dir string, seq uint64, shards [][]byte) (Info, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return Info{}, fmt.Errorf("snapshot: mkdir %s: %w", dir, err)
	}

	crcs := make([]uint32, len(shards))
	parallel.ForEach(len(shards), 0, func(i int) {
		crcs[i] = crc32.ChecksumIEEE(shards[i])
	})

	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], magic)
	binary.LittleEndian.PutUint32(hdr[4:8], Version)
	binary.LittleEndian.PutUint64(hdr[8:16], seq)
	binary.LittleEndian.PutUint32(hdr[16:20], uint32(len(shards)))
	binary.LittleEndian.PutUint32(hdr[20:24], crc32.ChecksumIEEE(hdr[0:20]))

	// Sweep temp files a crashed checkpoint left behind: every name-based
	// scan skips them, so each would otherwise leak a full engine image —
	// worst when the crash was ENOSPC and every retry leaks another.
	if stale, gerr := filepath.Glob(filepath.Join(dir, ".snap-*.tmp")); gerr == nil {
		for _, p := range stale {
			os.Remove(p)
		}
	}

	final := filepath.Join(dir, fileName(seq))
	tmp, err := os.CreateTemp(dir, ".snap-*.tmp")
	if err != nil {
		return Info{}, fmt.Errorf("snapshot: create temp in %s: %w", dir, err)
	}
	tmpName := tmp.Name()
	cleanup := func() { os.Remove(tmpName) }
	// Stream header and shards straight to the file — the payloads are
	// already the dominant memory cost, so never concatenate a second
	// whole-snapshot buffer.
	w := bufio.NewWriterSize(tmp, 1<<20)
	total := int64(0)
	writeAll := func(p []byte) error {
		n, err := w.Write(p)
		total += int64(n)
		return err
	}
	werr := writeAll(hdr[:])
	var sh [shardHeaderSize]byte
	for i := 0; i < len(shards) && werr == nil; i++ {
		binary.LittleEndian.PutUint32(sh[0:4], uint32(len(shards[i])))
		binary.LittleEndian.PutUint32(sh[4:8], crcs[i])
		if werr = writeAll(sh[:]); werr == nil {
			werr = writeAll(shards[i])
		}
	}
	if werr == nil {
		werr = w.Flush()
	}
	if werr != nil {
		tmp.Close()
		cleanup()
		return Info{}, fmt.Errorf("snapshot: write %s: %w", tmpName, werr)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		cleanup()
		return Info{}, fmt.Errorf("snapshot: sync %s: %w", tmpName, err)
	}
	if err := tmp.Close(); err != nil {
		cleanup()
		return Info{}, fmt.Errorf("snapshot: close %s: %w", tmpName, err)
	}
	if err := os.Rename(tmpName, final); err != nil {
		cleanup()
		return Info{}, fmt.Errorf("snapshot: rename into place: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return Info{}, err
	}
	return Info{Seq: seq, Path: final, Bytes: total}, nil
}

// Prune removes all but the newest keep snapshot files of dir and returns
// the retained generations in ascending sequence order.
func Prune(dir string, keep int) ([]Info, error) {
	infos, err := List(dir)
	if err != nil {
		return nil, err
	}
	if keep < 1 {
		keep = 1
	}
	drop := len(infos) - keep
	if drop < 0 {
		drop = 0
	}
	for i := 0; i < drop; i++ {
		if err := os.Remove(infos[i].Path); err != nil && !os.IsNotExist(err) {
			return nil, fmt.Errorf("snapshot: prune %s: %w", infos[i].Path, err)
		}
	}
	return infos[drop:], nil
}

// Latest loads the newest valid snapshot of dir, verifying the header and
// every shard CRC (concurrently). A snapshot that fails validation is
// skipped in favor of the next older one — the crash-window fallback —
// and ErrNoSnapshot is returned when none validates (or none exists).
func Latest(dir string) (Info, [][]byte, error) {
	infos, err := List(dir)
	if err != nil {
		return Info{}, nil, err
	}
	var lastErr error = ErrNoSnapshot
	for i := len(infos) - 1; i >= 0; i-- {
		shards, err := load(infos[i])
		if err != nil {
			lastErr = err
			continue
		}
		return infos[i], shards, nil
	}
	if !errors.Is(lastErr, ErrNoSnapshot) {
		lastErr = fmt.Errorf("%w (newest rejected: %v)", ErrNoSnapshot, lastErr)
	}
	return Info{}, nil, lastErr
}

// load reads and fully validates one snapshot file.
func load(info Info) ([][]byte, error) {
	data, err := os.ReadFile(info.Path)
	if err != nil {
		return nil, fmt.Errorf("snapshot: read %s: %w", info.Path, err)
	}
	if len(data) < headerSize {
		return nil, fmt.Errorf("snapshot: %s truncated header", info.Path)
	}
	if binary.LittleEndian.Uint32(data[0:4]) != magic {
		return nil, fmt.Errorf("snapshot: %s bad magic", info.Path)
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != Version {
		return nil, fmt.Errorf("snapshot: %s format version %d, want %d", info.Path, v, Version)
	}
	if crc32.ChecksumIEEE(data[0:20]) != binary.LittleEndian.Uint32(data[20:24]) {
		return nil, fmt.Errorf("snapshot: %s corrupt header", info.Path)
	}
	if seq := binary.LittleEndian.Uint64(data[8:16]); seq != info.Seq {
		return nil, fmt.Errorf("snapshot: %s header seq %d does not match file name", info.Path, seq)
	}
	nshards := binary.LittleEndian.Uint32(data[16:20])

	shards := make([][]byte, nshards)
	want := make([]uint32, nshards)
	off := headerSize
	for i := range shards {
		if len(data)-off < shardHeaderSize {
			return nil, fmt.Errorf("snapshot: %s truncated at shard %d", info.Path, i)
		}
		length := binary.LittleEndian.Uint32(data[off : off+4])
		if length > MaxShardSize || int(length) > len(data)-off-shardHeaderSize {
			return nil, fmt.Errorf("snapshot: %s shard %d truncated or oversized", info.Path, i)
		}
		want[i] = binary.LittleEndian.Uint32(data[off+4 : off+8])
		off += shardHeaderSize
		shards[i] = data[off : off+int(length)]
		off += int(length)
	}
	if off != len(data) {
		return nil, fmt.Errorf("snapshot: %s has %d trailing bytes", info.Path, len(data)-off)
	}

	// Verify every shard CRC concurrently; any mismatch rejects the file.
	bad := make([]bool, nshards)
	parallel.ForEach(int(nshards), 0, func(i int) {
		bad[i] = crc32.ChecksumIEEE(shards[i]) != want[i]
	})
	for i, b := range bad {
		if b {
			return nil, fmt.Errorf("snapshot: %s shard %d checksum mismatch", info.Path, i)
		}
	}
	return shards, nil
}

// syncDir fsyncs a directory so renames survive a crash.
func syncDir(dir string) error {
	if err := fsutil.SyncDir(dir); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	return nil
}
