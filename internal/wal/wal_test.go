package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func openCollect(t *testing.T, path string) (*Log, [][]byte) {
	t.Helper()
	var got [][]byte
	l, err := Open(path, func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, got
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, got := openCollect(t, path)
	if len(got) != 0 {
		t.Fatal("fresh log replayed records")
	}
	records := [][]byte{[]byte("one"), []byte("two"), {}, []byte("four4")}
	for _, r := range records {
		if err := l.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if l.Records() != 4 {
		t.Errorf("Records = %d", l.Records())
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, got := openCollect(t, path)
	defer l2.Close()
	if len(got) != len(records) {
		t.Fatalf("replayed %d records, want %d", len(got), len(records))
	}
	for i := range records {
		if !bytes.Equal(got[i], records[i]) {
			t.Errorf("record %d = %q, want %q", i, got[i], records[i])
		}
	}
	if l2.Records() != 4 {
		t.Errorf("Records after replay = %d", l2.Records())
	}
}

func TestTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, _ := openCollect(t, path)
	if err := l.Append([]byte("intact")); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("will-be-torn")); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Tear the last record by chopping bytes off the end.
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	l2, got := openCollect(t, path)
	if len(got) != 1 || string(got[0]) != "intact" {
		t.Fatalf("replayed %v, want just [intact]", got)
	}
	// The log must now be appendable and the torn record gone for good.
	if err := l2.Append([]byte("after-recovery")); err != nil {
		t.Fatal(err)
	}
	l2.Close()

	l3, got := openCollect(t, path)
	defer l3.Close()
	if len(got) != 2 || string(got[1]) != "after-recovery" {
		t.Fatalf("after recovery replayed %q", got)
	}
}

func TestCorruptPayloadTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, _ := openCollect(t, path)
	if err := l.Append([]byte("good")); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("bad-payload")); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Flip a byte inside the second record's payload.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, got := openCollect(t, path)
	defer l2.Close()
	if len(got) != 1 || string(got[0]) != "good" {
		t.Fatalf("replayed %q, want [good]", got)
	}
}

func TestGarbageFileReplaysNothing(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	if err := os.WriteFile(path, []byte("this is not a wal file at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, got := openCollect(t, path)
	defer l.Close()
	if len(got) != 0 {
		t.Fatalf("garbage replayed %d records", len(got))
	}
	if err := l.Append([]byte("fresh")); err != nil {
		t.Fatal(err)
	}
}

func TestOversizeRecordRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, _ := openCollect(t, path)
	defer l.Close()
	big := make([]byte, MaxRecordSize+1)
	if err := l.Append(big); err == nil {
		t.Error("oversize append accepted")
	}
}

func TestClosedLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, _ := openCollect(t, path)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
	if err := l.Append([]byte("x")); err != ErrClosed {
		t.Errorf("append after close: %v, want ErrClosed", err)
	}
}

func TestReplayCallbackError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, _ := openCollect(t, path)
	l.Append([]byte("x"))
	l.Close()
	_, err := Open(path, func([]byte) error { return fmt.Errorf("boom") })
	if err == nil {
		t.Fatal("replay error not propagated")
	}
}

func TestConcurrentAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, _ := openCollect(t, path)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				if err := l.Append([]byte(fmt.Sprintf("g%d-%d", n, j))); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	l.Close()
	l2, got := openCollect(t, path)
	defer l2.Close()
	if len(got) != 200 {
		t.Fatalf("replayed %d records, want 200", len(got))
	}
}

// TestGroupCommitDurabilityAndOrder drives many concurrent appenders and
// checks the group-commit invariants: every acknowledged record survives
// replay, each goroutine's records appear in its append order (an append
// returns only after its record is durable), and the log never issued
// more fsyncs than records.
func TestGroupCommitDurabilityAndOrder(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, _ := openCollect(t, path)
	const goroutines, perG = 8, 40
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				if err := l.Append([]byte(fmt.Sprintf("g%d-%d", g, j))); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if l.Records() != goroutines*perG {
		t.Errorf("Records = %d, want %d", l.Records(), goroutines*perG)
	}
	if s := l.Syncs(); s < 1 || s > l.Records() {
		t.Errorf("Syncs = %d outside [1, %d]", s, l.Records())
	}
	l.Close()

	l2, got := openCollect(t, path)
	defer l2.Close()
	if len(got) != goroutines*perG {
		t.Fatalf("replayed %d records, want %d", len(got), goroutines*perG)
	}
	next := make([]int, goroutines)
	for _, rec := range got {
		var g, j int
		if _, err := fmt.Sscanf(string(rec), "g%d-%d", &g, &j); err != nil {
			t.Fatalf("unparseable record %q", rec)
		}
		if j != next[g] {
			t.Fatalf("goroutine %d records out of order: got %d, want %d", g, j, next[g])
		}
		next[g]++
	}
}

func TestCloseDrainsEnqueuedRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, _ := openCollect(t, path)
	if _, err := l.Enqueue([]byte("parked")); err != nil {
		t.Fatal(err)
	}
	// Close before anyone Commits: the record must still be flushed.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, got := openCollect(t, path)
	defer l2.Close()
	if len(got) != 1 || string(got[0]) != "parked" {
		t.Fatalf("replayed %q, want [parked]", got)
	}
}

func BenchmarkAppend1KB(b *testing.B) {
	path := filepath.Join(b.TempDir(), "wal")
	l, err := Open(path, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	payload := make([]byte, 1024)
	b.SetBytes(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.Append(payload); err != nil {
			b.Fatal(err)
		}
	}
}
